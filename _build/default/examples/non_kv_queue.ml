(* Scenario: non-key-value programs (§7.7). The persistent array and
   queue use print-style operations as the output-equivalence anchor.
   The array carries the known realloc-ordering bug; the queue is clean. *)

module W = Witcher

let () =
  print_endline "Non-KV programs: persistent array (buggy) and queue (clean)\n";
  let cfg =
    { W.Engine.default_cfg with
      workload = { W.Workload.default with n_ops = 150; p_scan = 0.15;
                   p_query = 0.15 } }
  in
  List.iter
    (fun store_name ->
       let e = Option.get (Stores.Registry.find store_name) in
       let r = W.Engine.run ~cfg (e.buggy ()) in
       Printf.printf "%s\n" (W.Report.result_row r);
       List.iteri
         (fun i rep ->
            Printf.printf "  %2d. %s\n" (i + 1)
              (Fmt.str "%a" W.Cluster.pp_report rep))
         r.bug_reports;
       print_newline ())
    [ "p-array"; "p-queue" ]
