(* Scenario: performance-bug audit (§4.5). Runs only the trace-based
   performance detector over the Memcached port and prints every
   unpersisted / extra-flush / extra-fence / extra-logging site — the
   paper's P-U / P-EFL / P-EFE / P-EL classes — without any crash
   simulation. *)

module W = Witcher

let () =
  print_endline "Performance-bug audit of the Memcached port\n";
  let module S = (val Stores.Memcache_like.buggy ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 300 })
  in
  let recorded = W.Driver.record (module S) ops in
  let perf = W.Perf.detect recorded.trace in
  List.iter
    (fun (label, c) ->
       Printf.printf "%s: %d site(s), %d dynamic occurrence(s)\n" label
         (W.Perf.n_bugs c) (W.Perf.n_occurrences c);
       List.iter
         (fun (sid, n) -> Printf.printf "    %-44s x%d\n" sid n)
         (W.Perf.bug_sites c);
       print_newline ())
    [ "P-U   unpersisted NVM data (belongs in DRAM)", perf.p_u;
      "P-EFL extra flushes", perf.p_efl;
      "P-EFE extra fences", perf.p_efe;
      "P-EL  extra undo logging", perf.p_el ];
  print_endline
    "(The paper found 29 unpersisted statistics counters in pmem-Memcached;\n\
     the port reproduces that stats page.)"
