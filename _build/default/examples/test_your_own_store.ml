(* Scenario: test a store you wrote yourself.

   Witcher's public interface for a system under test is
   Witcher.Store_intf.S: creation, post-crash open (recovery), and the
   key-value operations, all performed through the instrumented Nvm.Ctx.
   This example implements a small persistent "record log" store inline:
   inserts append (key, value) records guarded by a persisted count, and
   updates overwrite the newest record's value in place — but the update
   path only fences, never flushes (a classic missing persistence
   primitive). The pipeline finds it without any annotation. *)

module W = Witcher
open Nvm

module Naive_log = struct
  let name = "naive-log"
  let pool_size = 1024 * 1024
  let supports_scan = false

  type t = { ctx : Ctx.t; pool : Pmdk.Pool.t }

  (* root object: count(8); records at a fixed arena: (key 8 | value 8) *)

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    { ctx; pool }

  let open_ ctx = { ctx; pool = Pmdk.Pool.open_ ctx }

  let count t = Ctx.read_u64 t.ctx ~sid:"log:count" (Pmdk.Pool.root t.pool)
  let arena t = Pmdk.Pool.root t.pool + 64
  let rec_addr t i = arena t + (i * 16)

  let pad v =
    if String.length v >= 8 then String.sub v 0 8
    else v ^ String.make (8 - String.length v) '\000'

  let append t k v =
    let c = count t in
    let i = Tv.value c in
    let a = rec_addr t i in
    Ctx.write_u64 t.ctx ~sid:"log:rec.key" a (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:"log:rec.value" (a + 8) (Tv.blob (pad v));
    Ctx.persist t.ctx ~sid:"log:rec.persist" a 16;
    Ctx.write_u64 t.ctx ~sid:"log:count.bump" (Pmdk.Pool.root t.pool)
      (Tv.add c Tv.one);
    Ctx.persist t.ctx ~sid:"log:count.persist" (Pmdk.Pool.root t.pool) 8

  (* BUG: the in-place overwrite is fenced but never flushed; the new
     value can evaporate on crash long after the operation returned. *)
  let overwrite t i v =
    Ctx.write_bytes t.ctx ~sid:"log:update.value" (rec_addr t i + 8)
      (Tv.blob (pad v));
    Ctx.fence t.ctx ~sid:"log:update.fence_only"

  (* Newest record below the count wins. Reads follow the guarded-read
     discipline: the value is read only under the key comparison, so
     inference learns P(value) -hb-> W(key) and P(record) -hb-> W(count). *)
  let find t k =
    let c = count t in
    let n = Tv.value c in
    Ctx.with_guard t.ctx (Tv.taint c) (fun () ->
        let rec go i best =
          if i >= n then best
          else begin
            let key = Ctx.read_u64 t.ctx ~sid:"log:find.key" (rec_addr t i) in
            let best =
              Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
                ~then_:(fun () ->
                    let raw =
                      Tv.blob_value
                        (Ctx.read_bytes t.ctx ~sid:"log:find.value"
                           (rec_addr t i + 8) 8)
                    in
                    let rec len j =
                      if j > 0 && raw.[j - 1] = '\000' then len (j - 1) else j
                    in
                    Some (String.sub raw 0 (len 8)))
                ~else_:(fun () -> best)
            in
            go (i + 1) best
          end
        in
        go 0 None)

  (* like find, but returning the record index *)
  let find_index t k =
    let c = count t in
    let n = Tv.value c in
    Ctx.with_guard t.ctx (Tv.taint c) (fun () ->
        let rec go i best =
          if i >= n then best
          else begin
            let key = Ctx.read_u64 t.ctx ~sid:"log:findi.key" (rec_addr t i) in
            let best = if Tv.value key = k then Some i else best in
            go (i + 1) best
          end
        in
        go 0 None)

  let exec t op =
    match op with
    | W.Op.Insert (k, v) -> append t k v; W.Output.Ok
    | W.Op.Update (k, v) ->
      (match find_index t k with
       | Some i when find t k <> Some "" -> overwrite t i v; W.Output.Ok
       | Some _ | None -> W.Output.Not_found)
    | W.Op.Delete k ->
      (match find t k with
       | Some v when v <> "" -> append t k ""; W.Output.Ok
       | Some _ | None -> W.Output.Not_found)
    | W.Op.Query k ->
      (match find t k with
       | Some v when v <> "" -> W.Output.Found v
       | Some _ | None -> W.Output.Not_found)
    | W.Op.Scan _ -> W.Output.Fail "unsupported"
end

let () =
  print_endline "Testing a user-defined store (a naive append log)\n";
  let cfg =
    { W.Engine.default_cfg with
      workload = W.Workload.no_scan { W.Workload.default with n_ops = 100 } }
  in
  let r = W.Engine.run ~cfg (module Naive_log) in
  Printf.printf "%s\n%s\n\n" (W.Report.result_header ()) (W.Report.result_row r);
  List.iteri
    (fun i rep ->
       Printf.printf "%2d. %s\n" (i + 1) (Fmt.str "%a" W.Cluster.pp_report rep))
    r.bug_reports;
  print_endline
    "\nThe unflushed in-place update is caught without any annotation: a\n\
     crash image taken at a later operation's fence drops the volatile\n\
     value, and the resumed run diverges from both oracles."
