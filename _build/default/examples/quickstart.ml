(* Quickstart: run the Witcher pipeline end to end on one store.

     dune exec examples/quickstart.exe

   Picks the as-published Level Hashing port, generates a 150-operation
   random test case, and prints every crash-consistency root cause the
   pipeline finds — including the two bugs of the paper's Figure 1. *)

module W = Witcher

let () =
  print_endline "Witcher quickstart: testing Level Hashing (as published)\n";
  let cfg =
    { W.Engine.default_cfg with
      workload = { W.Workload.default with n_ops = 150 } }
  in
  let result = W.Engine.run ~cfg (Stores.Level_hash.buggy ()) in
  Printf.printf
    "trace: %d events | %d ordering + %d atomicity conditions inferred\n"
    result.trace_len result.n_ord_conds result.n_atom_conds;
  Printf.printf
    "crash images: %d generated, %d tested, %d failed output equivalence\n\n"
    result.images_generated result.images_tested result.n_mismatch;
  Printf.printf "%d correctness root cause(s):\n" (List.length result.bug_reports);
  List.iteri
    (fun i rep ->
       Printf.printf "%2d. %s\n" (i + 1) (Fmt.str "%a" W.Cluster.pp_report rep))
    result.bug_reports;
  print_newline ();
  print_endline "Now the repaired variant (must be clean):";
  let fixed = W.Engine.run ~cfg (Stores.Level_hash.fixed ()) in
  Printf.printf "  C-O=%d C-A=%d mismatches=%d\n" fixed.c_o fixed.c_a
    fixed.n_mismatch
