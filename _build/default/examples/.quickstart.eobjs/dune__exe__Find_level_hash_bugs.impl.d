examples/find_level_hash_bugs.ml: Array List Nvm Pmem Printf Stores String Witcher
