examples/quickstart.mli:
