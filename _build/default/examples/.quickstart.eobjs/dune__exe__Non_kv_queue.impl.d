examples/non_kv_queue.ml: Fmt List Option Printf Stores Witcher
