examples/test_your_own_store.ml: Ctx Fmt List Nvm Pmdk Printf String Tv Witcher
