examples/non_kv_queue.mli:
