examples/perf_audit.ml: List Printf Stores Witcher
