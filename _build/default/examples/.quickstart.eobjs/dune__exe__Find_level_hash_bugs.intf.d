examples/find_level_hash_bugs.mli:
