examples/test_your_own_store.mli:
