examples/quickstart.ml: Fmt List Printf Stores Witcher
