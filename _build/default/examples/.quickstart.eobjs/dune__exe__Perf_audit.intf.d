examples/perf_audit.mli:
