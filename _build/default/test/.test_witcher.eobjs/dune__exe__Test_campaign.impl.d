test/test_campaign.ml: Alcotest Campaign Filename In_channel List Option Printf Random Result Stores String Sys Unix Witcher
