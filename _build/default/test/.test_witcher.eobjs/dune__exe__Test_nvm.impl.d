test/test_nvm.ml: Alcotest Crash_sim Ctx List Nvm Pmem QCheck2 QCheck_alcotest String Taint Trace Tv Vec
