test/test_engine.ml: Alcotest Array Ctx Hashtbl List Nvm Option Pmem Printf QCheck2 QCheck_alcotest Stores String Tv Witcher
