test/test_pmdk.ml: Alcotest Crash_sim Ctx Nvm Pmdk Pmem String Trace Tv Witcher
