test/test_infer_gen.ml: Alcotest Ctx List Nvm Option Pmdk Pmem Stores Tv Witcher
