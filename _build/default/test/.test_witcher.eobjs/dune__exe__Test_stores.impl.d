test/test_stores.ml: Alcotest Array Hashtbl List Nvm Option Printf QCheck2 QCheck_alcotest Stores Witcher
