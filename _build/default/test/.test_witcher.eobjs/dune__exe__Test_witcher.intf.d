test/test_witcher.mli:
