test/test_witcher.ml: Alcotest Test_campaign Test_engine Test_infer_gen Test_nvm Test_pmdk Test_stores
