(* Functional tests for every tested NVM program: each store must behave
   like a model map over its supported operations, in both the
   as-published (buggy) and repaired configurations — crash-consistency
   defects must never change failure-free semantics. Includes qcheck
   properties over random op sequences and persistence-reload checks. *)

module W = Witcher
module R = Stores.Registry

let model_outputs ops =
  let m = Hashtbl.create 64 in
  List.map
    (fun op ->
       match op with
       | W.Op.Insert (k, v) -> Hashtbl.replace m k v; W.Output.Ok
       | W.Op.Update (k, v) ->
         if Hashtbl.mem m k then (Hashtbl.replace m k v; W.Output.Ok)
         else W.Output.Not_found
       | W.Op.Delete k ->
         if Hashtbl.mem m k then (Hashtbl.remove m k; W.Output.Ok)
         else W.Output.Not_found
       | W.Op.Query k ->
         (match Hashtbl.find_opt m k with
          | Some v -> W.Output.Found v
          | None -> W.Output.Not_found)
       | W.Op.Scan (k, n) ->
         let keys =
           Hashtbl.fold (fun k' _ acc -> if k' >= k then k' :: acc else acc) m []
           |> List.sort compare
           |> List.filteri (fun i _ -> i < n)
         in
         W.Output.Vals (List.map (Hashtbl.find m) keys))
    ops

let run_against_model store ops =
  let module S = (val (store : W.Store_intf.instance)) in
  let r = W.Driver.record (module S) ops in
  let expected = Array.of_list (model_outputs ops) in
  let rec first_bad i =
    if i >= Array.length expected then None
    else if not (W.Output.equal r.outputs.(i) expected.(i)) then
      Some
        (Printf.sprintf "op%d %s: got %s want %s" (i + 1)
           (W.Op.desc (List.nth ops i))
           (W.Output.to_string r.outputs.(i))
           (W.Output.to_string expected.(i)))
    else first_bad (i + 1)
  in
  first_bad 0

let functional_case name store ~n_ops ~seed =
  Alcotest.test_case name `Quick (fun () ->
      let module S = (val (store : W.Store_intf.instance)) in
      let wl = { W.Workload.default with n_ops; seed } in
      let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
      match run_against_model store (W.Workload.generate wl) with
      | None -> ()
      | Some msg -> Alcotest.fail msg)

(* Reload check: record a run, reopen the final image, and verify every
   live key is still there (durability of the committed state). *)
let reload_case name (e : R.entry) =
  Alcotest.test_case (name ^ " reload") `Quick (fun () ->
      let store = e.fixed () in
      let module S = (val store) in
      let wl = { W.Workload.default with n_ops = 120 } in
      let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
      let ops = W.Workload.generate wl in
      let r = W.Driver.record (module S) ops in
      (* final model state *)
      let m = Hashtbl.create 64 in
      List.iter
        (fun op ->
           match op with
           | W.Op.Insert (k, v) -> Hashtbl.replace m k v
           | W.Op.Update (k, v) -> if Hashtbl.mem m k then Hashtbl.replace m k v
           | W.Op.Delete k -> Hashtbl.remove m k
           | W.Op.Query _ | W.Op.Scan _ -> ())
        ops;
      let img = Nvm.Pmem.of_snapshot r.final_image in
      let queries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] in
      let got =
        W.Driver.resume (module S) ~image:img
          ~ops:(Array.of_list (List.map (fun (k, _) -> W.Op.Query k) queries))
          ~from_op:0 ~fuel:3_000_000
      in
      List.iteri
        (fun i (k, v) ->
           Alcotest.(check string)
             (Printf.sprintf "key %d survives reload" k)
             (W.Output.to_string (W.Output.Found v))
             (W.Output.to_string got.(i)))
        queries)

(* qcheck: arbitrary op sequences agree with the model. *)
let op_gen =
  let open QCheck2.Gen in
  let key = int_range 1 40 in
  let value = map (Printf.sprintf "v%04d") (int_range 0 9999) in
  frequency
    [ (4, map2 (fun k v -> W.Op.Insert (k, v)) key value);
      (2, map2 (fun k v -> W.Op.Update (k, v)) key value);
      (2, map (fun k -> W.Op.Delete k) key);
      (3, map (fun k -> W.Op.Query k) key) ]

let model_property name mk =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:(name ^ " = model (random ops)") ~count:30
       QCheck2.Gen.(list_size (int_range 1 80) op_gen)
       (fun ops -> run_against_model (mk ()) ops = None))

(* Dense small-keyspace workloads hammer collision/rebalance paths. *)
let dense_case name store =
  Alcotest.test_case (name ^ " dense keys") `Quick (fun () ->
      let module S = (val (store : W.Store_intf.instance)) in
      let wl =
        { W.Workload.default with n_ops = 250; key_space = 60; seed = 9 }
      in
      let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
      match run_against_model store (W.Workload.generate wl) with
      | None -> ()
      | Some msg -> Alcotest.fail msg)

let kv_suites =
  List.concat_map
    (fun (e : R.entry) ->
       if e.group = R.Non_kv then []
       else
         [ functional_case (e.name ^ " buggy") (e.buggy ()) ~n_ops:250 ~seed:42;
           functional_case (e.name ^ " fixed") (e.fixed ()) ~n_ops:250 ~seed:42;
           functional_case (e.name ^ " seed2") (e.buggy ()) ~n_ops:250 ~seed:1337;
           dense_case e.name (e.buggy ());
           reload_case e.name e;
           model_property e.name e.fixed ])
    R.all

(* Non-KV programs have their own semantics. *)
let test_pqueue () =
  let e = Option.get (R.find "p-queue") in
  let module S = (val e.buggy ()) in
  let ops =
    [ W.Op.Insert (1, "aa"); W.Op.Insert (2, "bb"); W.Op.Query 0;
      W.Op.Delete 0; W.Op.Query 0; W.Op.Insert (3, "cc");
      W.Op.Scan (0, 0); W.Op.Delete 0; W.Op.Delete 0; W.Op.Delete 0 ]
  in
  let r = W.Driver.record (module S) ops in
  let expect =
    [ W.Output.Ok; W.Output.Ok; W.Output.Found "aa"; W.Output.Found "aa";
      W.Output.Found "bb"; W.Output.Ok; W.Output.Vals [ "bb"; "cc" ];
      W.Output.Found "bb"; W.Output.Found "cc"; W.Output.Not_found ]
  in
  List.iteri
    (fun i e ->
       Alcotest.(check string) (Printf.sprintf "op%d" i)
         (W.Output.to_string e) (W.Output.to_string r.outputs.(i)))
    expect

let test_parray () =
  let e = Option.get (R.find "p-array") in
  let module S = (val e.fixed ()) in
  let ops =
    [ W.Op.Insert (3, "xx"); W.Op.Query 3; W.Op.Insert (200, "yy");
      W.Op.Query 200; W.Op.Scan (0, 0); W.Op.Delete 3; W.Op.Query 3 ]
  in
  let r = W.Driver.record (module S) ops in
  let expect =
    [ W.Output.Ok; W.Output.Found "xx"; W.Output.Ok; W.Output.Found "yy";
      W.Output.Vals [ "xx"; "yy" ]; W.Output.Ok; W.Output.Not_found ]
  in
  List.iteri
    (fun i e ->
       Alcotest.(check string) (Printf.sprintf "op%d" i)
         (W.Output.to_string e) (W.Output.to_string r.outputs.(i)))
    expect

let suite =
  kv_suites
  @ [ Alcotest.test_case "p-queue semantics" `Quick test_pqueue;
      Alcotest.test_case "p-array semantics" `Quick test_parray ]
