bin/debug_images.ml: Array Filename Nvm Printf Stores String Sys Witcher
