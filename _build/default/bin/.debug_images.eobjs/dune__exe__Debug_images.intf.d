bin/debug_images.mli:
