(* The witcher command-line tool: run the crash-consistency pipeline on
   any registered store, inspect traces, or list the registry.

     witcher list
     witcher run -s level-hash [--fixed] [-n 300] [--seed 7] [-v]
     witcher trace -s cceh -n 20 [--head 80]
     witcher perf -s memcached -n 200
*)

module W = Witcher
module R = Stores.Registry

let store_arg =
  let open Cmdliner in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "store" ] ~docv:"NAME"
        ~doc:"Store to test (see $(b,witcher list)).")

let ops_arg =
  let open Cmdliner in
  Arg.(value & opt int 200 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations in the test case.")

let seed_arg =
  let open Cmdliner in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let fixed_arg =
  let open Cmdliner in
  Arg.(value & flag & info [ "fixed" ] ~doc:"Test the repaired variant instead of the as-published one.")

let verbose_arg =
  let open Cmdliner in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every failing cluster, not just root causes.")

let max_images_arg =
  let open Cmdliner in
  Arg.(value & opt int 4000 & info [ "max-images" ] ~docv:"N" ~doc:"Crash-image test budget.")

let lookup name =
  match R.find name with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown store %S; try `witcher list`\n" name;
    exit 2

let engine_cfg ~ops ~seed ~max_images =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops = ops; seed };
    crash = { W.Crash_gen.default_cfg with max_images } }

let list_cmd () =
  Printf.printf "%-16s %-13s %-4s %s\n" "name" "group" "lib" "construct";
  List.iter
    (fun (e : R.entry) ->
       Printf.printf "%-16s %-13s %-4s %s\n" e.name (R.group_name e.group)
         (match e.lib with `LL -> "LL" | `TX -> "TX")
         e.construct)
    R.all

let run_cmd store fixed ops seed max_images verbose =
  let e = lookup store in
  let instance = if fixed then e.fixed () else e.buggy () in
  let r = W.Engine.run ~cfg:(engine_cfg ~ops ~seed ~max_images) instance in
  print_endline (W.Report.result_header ());
  print_endline (W.Report.result_row r);
  print_newline ();
  if r.bug_reports = [] then
    print_endline "No crash-consistency bugs detected."
  else begin
    Printf.printf "%d correctness root cause(s):\n" (List.length r.bug_reports);
    List.iteri
      (fun i rep ->
         Printf.printf "%2d. %s\n" (i + 1) (Fmt.str "%a" W.Cluster.pp_report rep))
      r.bug_reports
  end;
  if verbose then begin
    Printf.printf "\nAll %d clusters:\n" (List.length r.all_clusters);
    List.iter
      (fun rep -> Printf.printf "  %s\n" (Fmt.str "%a" W.Cluster.pp_report rep))
      r.all_clusters
  end;
  print_newline ();
  print_string (W.Report.bug_list r)

let trace_cmd store ops seed head =
  let e = lookup store in
  let module S = (val e.buggy ()) in
  let wl = { W.Workload.default with n_ops = ops; seed } in
  let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
  let r = W.Driver.record (module S) (W.Workload.generate wl) in
  let loads, stores, flushes, fences = Nvm.Trace.stats r.trace in
  Printf.printf "trace: %d events (%d loads, %d stores, %d flushes, %d fences)\n"
    (Nvm.Trace.length r.trace) loads stores flushes fences;
  let n = min head (Nvm.Trace.length r.trace) in
  for i = 0 to n - 1 do
    Format.printf "%a@." Nvm.Trace.pp_event (Nvm.Trace.get r.trace i)
  done

let perf_cmd store ops seed =
  let e = lookup store in
  let module S = (val e.buggy ()) in
  let wl = { W.Workload.default with n_ops = ops; seed } in
  let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
  let r = W.Driver.record (module S) (W.Workload.generate wl) in
  let perf = W.Perf.detect r.trace in
  List.iter
    (fun (kind, c) ->
       Printf.printf "%s: %d bug site(s), %d occurrence(s)\n" kind
         (W.Perf.n_bugs c) (W.Perf.n_occurrences c);
       List.iter
         (fun (sid, n) -> Printf.printf "  %-48s x%d\n" sid n)
         (W.Perf.bug_sites c))
    [ "P-U (unpersisted)", perf.p_u;
      "P-EFL (extra flush)", perf.p_efl;
      "P-EFE (extra fence)", perf.p_efe;
      "P-EL (extra logging)", perf.p_el ]

open Cmdliner

let list_t = Term.(const list_cmd $ const ())
let run_t =
  Term.(const run_cmd $ store_arg $ fixed_arg $ ops_arg $ seed_arg
        $ max_images_arg $ verbose_arg)
let trace_t =
  let head =
    Arg.(value & opt int 60 & info [ "head" ] ~docv:"N" ~doc:"Events to print.")
  in
  Term.(const trace_cmd $ store_arg $ ops_arg $ seed_arg $ head)
let perf_t = Term.(const perf_cmd $ store_arg $ ops_arg $ seed_arg)

let cmds =
  [ Cmd.v (Cmd.info "list" ~doc:"List the registered NVM programs.") list_t;
    Cmd.v (Cmd.info "run" ~doc:"Run the full Witcher pipeline on a store.") run_t;
    Cmd.v (Cmd.info "trace" ~doc:"Record and print an instrumented trace.") trace_t;
    Cmd.v (Cmd.info "perf" ~doc:"Run only the performance-bug detector.") perf_t ]

let () =
  let info =
    Cmd.info "witcher" ~version:"1.0.0"
      ~doc:"Systematic crash-consistency testing for (simulated) NVM key-value stores"
  in
  exit (Cmd.eval (Cmd.group info cmds))
