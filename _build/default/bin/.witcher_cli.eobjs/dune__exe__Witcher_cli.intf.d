bin/witcher_cli.mli:
