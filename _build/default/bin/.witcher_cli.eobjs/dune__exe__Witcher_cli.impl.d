bin/witcher_cli.ml: Arg Campaign Cmd Cmdliner Filename Fmt Format List Manpage Nvm Printf Stores Term Witcher
