bin/witcher_cli.ml: Arg Cmd Cmdliner Fmt Format List Nvm Printf Stores Term Witcher
