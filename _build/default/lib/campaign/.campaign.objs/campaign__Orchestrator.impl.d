lib/campaign/orchestrator.ml: Aggregate Filename Hashtbl Job Journal Jsonx List Pool Printf Stores Sys Unix Witcher
