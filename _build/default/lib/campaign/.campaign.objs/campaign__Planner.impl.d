lib/campaign/planner.ml: Job List Printf Stores String
