lib/campaign/pool.ml: Buffer Bytes Hashtbl Job Jsonx List Printexc Printf Queue Result String Sys Unix
