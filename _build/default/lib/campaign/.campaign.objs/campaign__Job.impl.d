lib/campaign/job.ml: Digest Jsonx Option Printf
