lib/campaign/journal.ml: Hashtbl Job Jsonx List Pool String Sys Witcher
