lib/campaign/jsonx.ml: Buffer Char Float List Option Printf String
