lib/campaign/aggregate.ml: Buffer Hashtbl Job Journal Jsonx List Printf String
