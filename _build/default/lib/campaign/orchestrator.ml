(* Campaign orchestration: plan -> (resume filter) -> fork pool ->
   journal -> aggregate. This is the `witcher campaign` entry point and
   the piece the tests drive directly. *)

module W = Witcher

type cfg = {
  j : int;                  (* worker processes *)
  timeout : float;          (* per-job wall-clock budget, seconds *)
  out_dir : string;
  resume : bool;
  progress : string -> unit;  (* one line per finished job *)
}

let default_cfg =
  { j = 1; timeout = 300.; out_dir = "campaign-out"; resume = false;
    progress = ignore }

type summary = {
  executed : int;           (* jobs actually run this invocation *)
  skipped : int;            (* jobs satisfied by the journal (--resume) *)
  records : Journal.record list;  (* full journal after the run *)
  aggregate : Aggregate.t;
  elapsed : float;
  journal_path : string;
  report_txt_path : string;
  report_json_path : string;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

(* What one worker does: look the store up, build the engine config the
   job spec describes, run the pipeline, return the per-job JSON. Runs
   inside the forked child. *)
let default_run_job (spec : Job.spec) =
  match Stores.Registry.find spec.store with
  | None -> failwith ("unknown store " ^ spec.store)
  | Some e ->
    let instance =
      match spec.variant with
      | Job.Buggy -> e.buggy ()
      | Job.Fixed -> e.fixed ()
    in
    let cfg =
      { W.Engine.default_cfg with
        workload = { W.Workload.default with n_ops = spec.n_ops;
                     seed = spec.seed };
        crash = { W.Crash_gen.default_cfg with max_images = spec.max_images } }
    in
    Journal.result_json (W.Engine.run ~cfg instance)

let progress_line (jr : Pool.job_result) =
  let tag =
    match jr.outcome with
    | Pool.Ok _ -> "ok"
    | Pool.Failed _ -> "FAILED"
    | Pool.Timeout -> "TIMEOUT"
  in
  let detail =
    match jr.outcome with Pool.Failed m -> " (" ^ m ^ ")" | _ -> ""
  in
  Printf.sprintf "[%-7s] %s %.1fs%s" tag (Job.describe jr.spec) jr.t_wall
    detail

(* Run [jobs] under [cfg]. [run_job] defaults to the registry-backed
   engine runner; the tests substitute hostile ones. *)
let run_matrix ?(run_job = default_run_job) (cfg : cfg) ~jobs =
  mkdir_p cfg.out_dir;
  let journal_path = Filename.concat cfg.out_dir "journal.jsonl" in
  let prior = if cfg.resume then Journal.load journal_path else [] in
  if not cfg.resume && Sys.file_exists journal_path then
    Sys.remove journal_path;
  let done_keys = Journal.completed_keys prior in
  let to_run, skipped =
    List.partition (fun s -> not (Hashtbl.mem done_keys (Job.key s))) jobs
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 journal_path
  in
  let t0 = Unix.gettimeofday () in
  let executed = ref 0 in
  Pool.run ~jobs:to_run ~j:cfg.j ~timeout:cfg.timeout ~run_job
    ~on_done:(fun jr ->
        incr executed;
        let record =
          Journal.record ~spec:jr.spec ~t_wall:jr.t_wall jr.outcome
        in
        Journal.append oc record;
        cfg.progress (progress_line jr));
  close_out oc;
  let elapsed = Unix.gettimeofday () -. t0 in
  let records = Journal.load journal_path in
  (* Aggregate only this campaign's matrix (not unrelated journal rows),
     in matrix order; if a key appears twice — a timed-out job re-run on
     resume — the later record wins. *)
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (r : Journal.record) -> Hashtbl.replace by_key r.key r)
    records;
  let matrix_records =
    List.filter_map (fun s -> Hashtbl.find_opt by_key (Job.key s)) jobs
  in
  let aggregate = Aggregate.of_records matrix_records in
  let report_txt_path = Filename.concat cfg.out_dir "report.txt" in
  let report_json_path = Filename.concat cfg.out_dir "report.json" in
  let txt = Aggregate.to_text ~elapsed ~j:cfg.j aggregate in
  let oc = open_out report_txt_path in
  output_string oc txt;
  close_out oc;
  let oc = open_out report_json_path in
  output_string oc (Jsonx.to_string (Aggregate.to_json ~elapsed ~j:cfg.j aggregate));
  output_char oc '\n';
  close_out oc;
  { executed = !executed;
    skipped = List.length skipped;
    records = matrix_records;
    aggregate;
    elapsed;
    journal_path;
    report_txt_path;
    report_json_path }
