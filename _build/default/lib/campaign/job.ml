(* A campaign job: one (store, variant, seed, engine-config) cell of the
   evaluation matrix. Jobs carry a stable content-derived key so that a
   journal written by one sweep can be resumed by a later one: the key
   depends only on what the job *is*, never on when or where it ran. *)

type variant = Buggy | Fixed

type spec = {
  store : string;
  variant : variant;
  seed : int;
  n_ops : int;
  max_images : int;
}

let variant_name = function Buggy -> "buggy" | Fixed -> "fixed"

let variant_of_string = function
  | "buggy" -> Some Buggy
  | "fixed" -> Some Fixed
  | _ -> None

(* Bump the version tag if the fields that define a job ever change
   meaning; old journal entries then no longer match and re-run. *)
let key spec =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "witcher-job-v1|%s|%s|%d|%d|%d" spec.store
          (variant_name spec.variant)
          spec.seed spec.n_ops spec.max_images))

let describe spec =
  Printf.sprintf "%s/%s seed=%d n=%d" spec.store
    (variant_name spec.variant)
    spec.seed spec.n_ops

let to_json spec =
  Jsonx.Obj
    [ ("store", Jsonx.Str spec.store);
      ("variant", Jsonx.Str (variant_name spec.variant));
      ("seed", Jsonx.Int spec.seed);
      ("n_ops", Jsonx.Int spec.n_ops);
      ("max_images", Jsonx.Int spec.max_images) ]

let of_json j =
  match
    ( Option.bind (Jsonx.member "store" j) Jsonx.to_str_opt,
      Option.bind (Jsonx.member "variant" j) Jsonx.to_str_opt )
  with
  | Some store, Some v ->
    (match variant_of_string v with
     | None -> Error ("bad variant " ^ v)
     | Some variant ->
       Ok
         { store;
           variant;
           seed = Jsonx.int_field j "seed";
           n_ops = Jsonx.int_field j "n_ops";
           max_images = Jsonx.int_field j "max_images" })
  | _ -> Error "job spec missing store/variant"
