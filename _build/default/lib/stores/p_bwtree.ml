(* P-BwTree — the RECIPE conversion of the Bw-Tree (paper row "P-BwTree",
   bugs 28-29). The Bw-Tree never updates pages in place: every mutation
   prepends a delta record to a per-page chain reachable from a mapping
   table. We keep the essential shape: a hash-distributed mapping table
   whose entries head chains of delta records (insert / delete / update),
   with lookups replaying the chain from the newest delta.

   Seeded defects (both C-O "missing persistence primitives"):
   - [insert_noflush] (bug 28): the insert delta's payload is never
     flushed before the chain head is persisted to point at it.
   - [delete_noflush] (bug 29): same for the delete delta — the tombstone
     can vanish while the head already skips to it, resurrecting the key.

   The fixed variant persists every delta before publishing it with the
   atomic head store. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  insert_noflush : bool;
  delete_noflush : bool;
}

let buggy_cfg = { insert_noflush = true; delete_noflush = true }
let fixed_cfg = { insert_noflush = false; delete_noflush = false }

let n_pages = 64
let val_len = 8

(* delta: kind(8: 1=insert/update, 2=delete) | key(8) | value(8) | next(8) *)
let d_kind = 0
let d_key = 8
let d_val = 16
let d_next = 24
let delta_len = 32

let hash k = (k * 0x9E3779B1) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "p-bwtree"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: mapping table ptr *)
  let mapping t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"bw:root.mapping" (Pmdk.Pool.root t.pool))

  let head_addr t k = mapping t + (hash k mod n_pages * 8)

  let create_table ctx pool =
    let tbl = Pmdk.Alloc.zalloc pool (n_pages * 8) in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"bw:create.root" r (Tv.const tbl);
    Ctx.persist ctx ~sid:"bw:create.root_persist" r 8

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    create_table ctx pool;
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"bw:open.root" r)) then
      create_table ctx pool;
    { ctx; pool }

  (* Prepend a delta record and publish it as the new chain head. *)
  let prepend t k ~kind ~v ~noflush ~sid_prefix =
    let ha = head_addr t k in
    let head = Ctx.read_u64 t.ctx ~sid:(sid_prefix ^ ".head") ha in
    let d = Pmdk.Alloc.alloc t.pool delta_len in
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".kind") (d + d_kind) (Tv.const kind);
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".key") (d + d_key) (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:(sid_prefix ^ ".value") (d + d_val)
      (Tv.blob (pad_value v));
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".next") (d + d_next) head;
    if not noflush then
      Ctx.persist t.ctx ~sid:(sid_prefix ^ ".persist") d delta_len;
    (* BUG when [noflush] (bugs 28-29, C-O): the head below is persisted
       while the delta it points at is not. *)
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".publish") ha (Tv.const d);
    Ctx.persist t.ctx ~sid:(sid_prefix ^ ".publish_persist") ha 8

  (* Replay the chain from the newest delta; the first record for [k]
     wins. Reads are guarded pointer-chases through [d_next]. *)
  let find t k ~found =
    let ha = head_addr t k in
    let rec walk d =
      if d = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"bw:find.key" (d + d_key) in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () ->
                let kind = Ctx.read_u64 t.ctx ~sid:"bw:find.kind" (d + d_kind) in
                if Tv.value kind = 2 then Some `Deleted else Some (`Found (found d)))
            ~else_:(fun () -> None)
        with
        | Some r -> Some r
        | None ->
          walk (Tv.value (Ctx.read_ptr t.ctx ~sid:"bw:find.next" (d + d_next)))
      end
    in
    walk (Tv.value (Ctx.read_ptr t.ctx ~sid:"bw:find.head" ha))

  let read_value t d =
    strip_value
      (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"bw:read.value" (d + d_val) 8))

  let present t k =
    match find t k ~found:(fun _ -> ()) with
    | Some (`Found ()) -> true
    | Some `Deleted | None -> false

  let insert t k v =
    prepend t k ~kind:1 ~v ~noflush:cfg.insert_noflush ~sid_prefix:"bw:insert";
    Output.Ok

  let update t k v =
    if present t k then begin
      prepend t k ~kind:1 ~v ~noflush:false ~sid_prefix:"bw:update";
      Output.Ok
    end
    else Output.Not_found

  let delete t k =
    if present t k then begin
      prepend t k ~kind:2 ~v:"" ~noflush:cfg.delete_noflush ~sid_prefix:"bw:delete";
      Output.Ok
    end
    else Output.Not_found

  let query t k =
    match find t k ~found:(fun d -> read_value t d) with
    | Some (`Found v) -> Output.Found v
    | Some `Deleted | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
