(* The tested-program registry: the paper's Table 3, plus fixed variants
   used by the property tests and the two §7.7 non-key-value programs.
   [buggy] selects the as-published (defective) configuration; [fixed]
   the repaired one. *)

type group = Kv_index | Recipe | Pmdk_example | Server | Non_kv

type entry = {
  name : string;
  group : group;
  lib : [ `LL | `TX ];  (* low-level primitives vs transactions *)
  construct : string;
  paper_bug_ids : int list;  (* Table 4 rows seeded in the buggy variant *)
  buggy : unit -> Witcher.Store_intf.instance;
  fixed : unit -> Witcher.Store_intf.instance;
}

let group_name = function
  | Kv_index -> "NVM KV Index"
  | Recipe -> "RECIPE"
  | Pmdk_example -> "PMDK"
  | Server -> "Server"
  | Non_kv -> "Non-KV"

let all : entry list =
  [ { name = "libpmemobj"; group = Pmdk_example; lib = `TX;
      construct = "pool/heap management"; paper_bug_ids = [ 1 ];
      buggy = Btree_tx.libpmemobj; fixed = Btree_tx.fixed };
    { name = "woart"; group = Kv_index; lib = `LL; construct = "radix tree";
      paper_bug_ids = [ 2 ]; buggy = Woart.buggy; fixed = Woart.fixed };
    { name = "wort"; group = Kv_index; lib = `LL; construct = "radix tree";
      paper_bug_ids = []; buggy = Wort.buggy; fixed = Wort.fixed };
    { name = "fast-fair"; group = Kv_index; lib = `LL; construct = "B+ tree";
      paper_bug_ids = [ 3; 4; 5; 6 ]; buggy = Fast_fair.buggy;
      fixed = Fast_fair.fixed };
    { name = "level-hash"; group = Kv_index; lib = `LL;
      construct = "hash table"; paper_bug_ids = [ 7; 9; 17; 19; 22 ];
      buggy = Level_hash.buggy; fixed = Level_hash.fixed };
    { name = "cceh"; group = Kv_index; lib = `LL; construct = "hash table";
      paper_bug_ids = [ 24; 25 ]; buggy = Cceh.buggy; fixed = Cceh.fixed };
    { name = "p-art"; group = Recipe; lib = `LL; construct = "radix tree";
      paper_bug_ids = [ 26; 27 ]; buggy = P_art.buggy; fixed = P_art.fixed };
    { name = "p-bwtree"; group = Recipe; lib = `LL; construct = "B+tree-like";
      paper_bug_ids = [ 28; 29 ]; buggy = P_bwtree.buggy;
      fixed = P_bwtree.fixed };
    { name = "p-clht"; group = Recipe; lib = `LL; construct = "hash table";
      paper_bug_ids = [ 30; 31 ]; buggy = P_clht.base; fixed = P_clht.fixed };
    { name = "p-clht-aga"; group = Recipe; lib = `LL; construct = "hash table";
      paper_bug_ids = [ 32; 33 ]; buggy = P_clht.aga; fixed = P_clht.fixed };
    { name = "p-clht-aga-tx"; group = Recipe; lib = `TX;
      construct = "hash table"; paper_bug_ids = [ 34; 35 ];
      buggy = P_clht.aga_tx; fixed = P_clht.fixed };
    { name = "p-hot"; group = Recipe; lib = `LL; construct = "trie";
      paper_bug_ids = [ 36; 37; 38 ]; buggy = P_hot.buggy; fixed = P_hot.fixed };
    { name = "p-masstree"; group = Recipe; lib = `LL;
      construct = "B tree + trie"; paper_bug_ids = [ 39 ];
      buggy = P_masstree.buggy; fixed = P_masstree.fixed };
    { name = "b-tree"; group = Pmdk_example; lib = `TX; construct = "B tree";
      paper_bug_ids = [ 40 ]; buggy = Btree_tx.buggy; fixed = Btree_tx.fixed };
    { name = "c-tree"; group = Pmdk_example; lib = `TX;
      construct = "crit-bit tree"; paper_bug_ids = [];
      buggy = Ctree_tx.buggy; fixed = Ctree_tx.fixed };
    { name = "rb-tree"; group = Pmdk_example; lib = `TX;
      construct = "red-black tree"; paper_bug_ids = [ 41 ];
      buggy = Rbtree_tx.buggy; fixed = Rbtree_tx.fixed };
    { name = "rb-tree-aga"; group = Pmdk_example; lib = `TX;
      construct = "red-black tree"; paper_bug_ids = [ 42; 43 ];
      buggy = Rbtree_tx.aga; fixed = Rbtree_tx.fixed };
    { name = "hashmap-tx"; group = Pmdk_example; lib = `TX;
      construct = "hash table"; paper_bug_ids = [ 44 ];
      buggy = Hashmap_tx.buggy; fixed = Hashmap_tx.fixed };
    { name = "hashmap-atomic"; group = Pmdk_example; lib = `LL;
      construct = "hash table"; paper_bug_ids = [ 45; 46 ];
      buggy = Hashmap_atomic.buggy; fixed = Hashmap_atomic.fixed };
    { name = "memcached"; group = Server; lib = `LL; construct = "hash table";
      paper_bug_ids = [ 47 ]; buggy = Memcache_like.buggy;
      fixed = Memcache_like.fixed };
    { name = "redis"; group = Server; lib = `TX; construct = "hash table";
      paper_bug_ids = []; buggy = Redis_like.buggy; fixed = Redis_like.fixed };
    { name = "p-array"; group = Non_kv; lib = `LL; construct = "array";
      (* the 7.7 known bug (pmdk#4927 class) sits outside Table 4's
         numbering; 0 marks it *)
      paper_bug_ids = [ 0 ]; buggy = Parray.buggy; fixed = Parray.fixed };
    { name = "p-queue"; group = Non_kv; lib = `LL; construct = "queue";
      paper_bug_ids = []; buggy = Pqueue.buggy; fixed = Pqueue.fixed };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let kv_entries = List.filter (fun e -> e.group <> Non_kv) all
