(* P-HOT — the RECIPE conversion of the Height-Optimized Trie (paper row
   "P-Hot", bugs 36-38). We keep the structural essence relevant to the
   bugs: a binary trie over key bits whose interior nodes are two-entry
   nodes (the original's TwoEntriesNode) carrying a discriminating bit
   index and two children; leaves hold the key and value.

   Seeded defects (all C-O "missing persistence primitives", three
   distinct sites as in the paper):
   - [node_noflush]   (bug 36, TwoEntriesNode.hpp): a freshly built
     two-entry node is published in the parent without being flushed.
   - [update_noflush] (bug 37, HOTRowexNode.hpp): the in-place value
     update is only fenced, never flushed.
   - [root_noflush]   (bug 38, HOTRowex.hpp): the root-replacement path
     publishes an unflushed node as the new root. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  node_noflush : bool;
  update_noflush : bool;
  root_noflush : bool;
}

let buggy_cfg = { node_noflush = true; update_noflush = true; root_noflush = true }
let fixed_cfg = { node_noflush = false; update_noflush = false; root_noflush = false }

let key_bits = 16
let key_mask = (1 lsl key_bits) - 1
let val_len = 8

(* interior: tag(8)=1 | bit(8) | left(8) | right(8) ; leaf: tag(8)=2 | key(8) | value(8) *)
let node_len = 32
let leaf_len = 24

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "p-hot"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let bit_of k b = (k lsr (key_bits - 1 - b)) land 1

  let root_slot t = Pmdk.Pool.root t.pool

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    { ctx; pool }

  let tag_of t n = Tv.value (Ctx.read_u64 t.ctx ~sid:"hot:node.tag" n)
  let node_bit t n = Tv.value (Ctx.read_u64 t.ctx ~sid:"hot:node.bit" (n + 8))

  let child_slot t n k =
    if bit_of k (node_bit t n) = 0 then n + 16 else n + 24

  let mk_leaf t k v =
    let leaf = Pmdk.Alloc.alloc t.pool leaf_len in
    Ctx.write_u64 t.ctx ~sid:"hot:mkleaf.tag" leaf (Tv.const 2);
    Ctx.write_u64 t.ctx ~sid:"hot:mkleaf.key" (leaf + 8) (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:"hot:mkleaf.value" (leaf + 16)
      (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"hot:mkleaf.persist" leaf leaf_len;
    leaf

  (* Descend to the slot for [k]: the pointer slot plus the leaf it holds
     (None when the slot is empty, e.g. after a delete). *)
  let descend t k =
    let rec go slot =
      let n = Tv.value (Ctx.read_ptr t.ctx ~sid:"hot:walk.ptr" slot) in
      if n = 0 then (slot, None)
      else if tag_of t n = 2 then (slot, Some n)
      else go (child_slot t n k)
    in
    go (root_slot t)

  let leaf_key t leaf = Ctx.read_u64 t.ctx ~sid:"hot:leaf.key" (leaf + 8)

  (* First bit position where [a] and [b] differ. *)
  let crit_bit a b =
    let x = a lxor b in
    let rec go i = if (x lsr (key_bits - 1 - i)) land 1 = 1 then i else go (i + 1) in
    go 0

  (* Build a two-entry node over an existing leaf and a new one, then
     publish it in [slot]. *)
  let split_leaf t slot old_leaf k v =
    let ok = Tv.value (leaf_key t old_leaf) in
    let nk = k land key_mask in
    let bit = crit_bit ok nk in
    let nleaf = mk_leaf t nk v in
    let node = Pmdk.Alloc.alloc t.pool node_len in
    Ctx.write_u64 t.ctx ~sid:"hot:mknode.tag" node Tv.one;
    Ctx.write_u64 t.ctx ~sid:"hot:mknode.bit" (node + 8) (Tv.const bit);
    let l, r = if bit_of nk bit = 0 then (nleaf, old_leaf) else (old_leaf, nleaf) in
    Ctx.write_u64 t.ctx ~sid:"hot:mknode.left" (node + 16) (Tv.const l);
    Ctx.write_u64 t.ctx ~sid:"hot:mknode.right" (node + 24) (Tv.const r);
    let is_root = slot = root_slot t in
    if is_root then begin
      if not cfg.root_noflush then
        (* BUG when absent (bug 38, C-O): unflushed node published as root *)
        Ctx.persist t.ctx ~sid:"hot:mknode.root_persist" node node_len
    end
    else if not cfg.node_noflush then
      (* BUG when absent (bug 36, C-O): unflushed two-entry node *)
      Ctx.persist t.ctx ~sid:"hot:mknode.persist" node node_len;
    Ctx.write_u64 t.ctx
      ~sid:(if is_root then "hot:publish.root" else "hot:publish.node")
      slot (Tv.const node);
    Ctx.persist t.ctx ~sid:"hot:publish.persist" slot 8

  let insert t k v =
    let k = k land key_mask in
    match descend t k with
    | slot, None ->
      (* empty slot (fresh trie or a deleted leaf): plant the leaf here *)
      let leaf = mk_leaf t k v in
      Ctx.write_u64 t.ctx ~sid:"hot:insert.first" slot (Tv.const leaf);
      Ctx.persist t.ctx ~sid:"hot:insert.first_persist" slot 8;
      Output.Ok
    | slot, Some leaf ->
      let key = leaf_key t leaf in
      Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
        ~then_:(fun () ->
            Ctx.write_bytes t.ctx ~sid:"hot:insert.upsert" (leaf + 16)
              (Tv.blob (pad_value v));
            Ctx.persist t.ctx ~sid:"hot:insert.upsert_persist" (leaf + 16) 8;
            Output.Ok)
        ~else_:(fun () ->
            split_leaf t slot leaf k v;
            Output.Ok)

  let with_exact t k ~found =
    match descend t (k land key_mask) with
    | _, None -> None
    | slot, Some leaf ->
      let key = leaf_key t leaf in
      Ctx.if_ t.ctx (Tv.eq key (Tv.const (k land key_mask)))
        ~then_:(fun () -> Some (found slot leaf))
        ~else_:(fun () -> None)

  let update t k v =
    match
      with_exact t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"hot:update.value" (leaf + 16)
            (Tv.blob (pad_value v));
          if cfg.update_noflush then
            (* BUG (bug 37, C-O): fence without flush *)
            Ctx.fence t.ctx ~sid:"hot:update.fence_only"
          else
            Ctx.persist t.ctx ~sid:"hot:update.persist" (leaf + 16) 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  (* Delete replaces the leaf pointer with the null sentinel; readers
     treat an empty slot as absent, so the single store is atomic. *)
  let delete t k =
    match
      with_exact t k ~found:(fun slot _leaf ->
          Ctx.write_u64 t.ctx ~sid:"hot:delete.unlink" slot Tv.zero;
          Ctx.persist t.ctx ~sid:"hot:delete.persist" slot 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    match
      with_exact t k ~found:(fun _slot leaf ->
          strip_value
            (Tv.blob_value
               (Ctx.read_bytes t.ctx ~sid:"hot:read.value" (leaf + 16) 8)))
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
