(* P-CLHT — the RECIPE conversion of the Cache-Line Hash Table (paper rows
   "P-CLHT", "P-CLHT-Aga", "P-CLHT-Aga-TX"; bugs 30-35). Buckets are one
   cache line: three key/value slots plus a chain pointer; the key is the
   slot's guardian (readers compare the key before reading the value).
   A table that grows too dense is rehashed into a table twice the size
   and published by a root-pointer swap.

   The paper tested three configurations, which map to [variant]:
   - [Base]   (bugs 30-31, C-O): the slot-claim paths — in-bucket and
     chain-append — omit the flush of the value / of the fresh bucket, so
     the guardian key can persist while its protected data does not.
   - [Aga]    (bugs 32-33, C-O): the claim paths are fixed, but the
     rehash loop writes the new table without any flush; only the root
     swap is persisted, so a crash right after the swap loses keys en
     masse.
   - [Aga_tx] (bugs 34-35 + 2x P-EL): updates run inside PMDK
     transactions which redundantly log the slot (extra logging), while
     the rehash keeps the Aga missing flushes.
   - [Fixed]: everything ordered; rehash is copy-on-write + atomic swap. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type variant = Base | Aga | Aga_tx | Fixed

let slots = 3
let slot_len = 16
let bucket_len = 8 + (slots * slot_len)  (* next ptr | slots *)
let initial_n = 16
let val_len = 8

let hash k = (k * 0x85EBCA77) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val variant : variant end) = struct
  let name =
    match C.variant with
    | Base -> "p-clht"
    | Aga -> "p-clht-aga"
    | Aga_tx -> "p-clht-aga-tx"
    | Fixed -> "p-clht-fixed"

  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let variant = C.variant

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
    mutable items : int;  (* volatile item count driving rehash *)
  }

  (* table struct: nbuckets | buckets base *)
  let table_n t tbl = Tv.value (Ctx.read_u64 t.ctx ~sid:"clht:table.n" tbl)
  let table_buckets t tbl =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"clht:table.buckets" (tbl + 8))

  let root_table t =
    let r = Pmdk.Pool.root t.pool in
    Tv.value (Ctx.read_ptr t.ctx ~sid:"clht:root.table" r)

  let bucket_addr t tbl k =
    let n = table_n t tbl in
    table_buckets t tbl + (hash k mod n * bucket_len)

  let next_of t b = Tv.value (Ctx.read_ptr t.ctx ~sid:"clht:bucket.next" b)
  let slot_addr b i = b + 8 + (i * slot_len)

  let alloc_table t ~n =
    let tbl = Pmdk.Alloc.zalloc t.pool 16 in
    let buckets = Pmdk.Alloc.zalloc t.pool (n * bucket_len) in
    Ctx.write_u64 t.ctx ~sid:"clht:mktable.n" tbl (Tv.const n);
    Ctx.write_u64 t.ctx ~sid:"clht:mktable.buckets" (tbl + 8) (Tv.const buckets);
    Ctx.persist t.ctx ~sid:"clht:mktable.persist" tbl 16;
    tbl

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool; items = 0 } in
    let tbl = alloc_table t ~n:initial_n in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"clht:create.root" r (Tv.const tbl);
    Ctx.persist ctx ~sid:"clht:create.root_persist" r 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool; items = 0 } in
    if variant = Aga_tx || variant = Fixed then Pmdk.Tx.recover pool;
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"clht:open.root" r)) then begin
      let tbl = alloc_table t ~n:initial_n in
      Ctx.write_u64 ctx ~sid:"clht:recover.root" r (Tv.const tbl);
      Ctx.persist ctx ~sid:"clht:recover.root_persist" r 8
    end;
    t

  (* Find the slot holding [k]; guarded read through the key. *)
  let find_slot t k ~found =
    let tbl = root_table t in
    let rec chain b =
      if b = 0 then None
      else begin
        let rec probe i =
          if i >= slots then chain (next_of t b)
          else begin
            let a = slot_addr b i in
            let key = Ctx.read_u64 t.ctx ~sid:"clht:find.key" a in
            match
              Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
                ~then_:(fun () -> Some (found a))
                ~else_:(fun () -> None)
            with
            | Some r -> Some r
            | None -> probe (i + 1)
          end
        in
        probe 0
      end
    in
    chain (bucket_addr t tbl k)

  let read_value t a =
    strip_value
      (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"clht:read.value" (a + 8) 8))

  (* Claim slot [a]: value first, then the guardian key. Bug 30's shape:
     the value flush is missing, only the key is persisted. *)
  let claim_slot t a k v =
    Ctx.write_bytes t.ctx ~sid:"clht:insert.value" (a + 8)
      (Tv.blob (pad_value v));
    if variant <> Base then
      Ctx.persist t.ctx ~sid:"clht:insert.value_persist" (a + 8) 8;
    Ctx.write_u64 t.ctx ~sid:"clht:insert.key" a (Tv.const k);
    Ctx.persist t.ctx ~sid:"clht:insert.key_persist" a 8

  (* Append a fresh chain bucket holding (k, v) behind [b]. Bug 31's
     shape: the bucket body is never flushed before it is linked. *)
  let append_bucket t b k v =
    let nb = Pmdk.Alloc.zalloc t.pool bucket_len in
    Ctx.write_bytes t.ctx ~sid:"clht:append.value" (slot_addr nb 0 + 8)
      (Tv.blob (pad_value v));
    Ctx.write_u64 t.ctx ~sid:"clht:append.key" (slot_addr nb 0) (Tv.const k);
    if variant <> Base then
      Ctx.persist t.ctx ~sid:"clht:append.persist" nb bucket_len;
    Ctx.write_u64 t.ctx ~sid:"clht:append.link" b (Tv.const nb);
    Ctx.persist t.ctx ~sid:"clht:append.link_persist" b 8

  let insert_into t k v =
    let tbl = root_table t in
    let rec chain b =
      let rec probe i =
        if i >= slots then begin
          let nxt = next_of t b in
          if nxt = 0 then append_bucket t b k v else chain nxt
        end
        else begin
          let a = slot_addr b i in
          let key = Ctx.read_u64 t.ctx ~sid:"clht:insert.probe" a in
          if not (Tv.to_bool key) then claim_slot t a k v else probe (i + 1)
        end
      in
      probe 0
    in
    chain (bucket_addr t tbl k)

  (* Rehash into a table twice the size. Aga's shape (bugs 32-33): the new
     buckets are written with no flush at all; only the swap persists. *)
  let rehash t =
    let tbl = root_table t in
    let n = table_n t tbl in
    let ntbl = alloc_table t ~n:(2 * n) in
    let buckets = table_buckets t tbl in
    let copy_value = variant = Base || variant = Fixed in
    let nbuckets = table_buckets t ntbl in
    let place k v =
      let nn = 2 * n in
      let b0 = nbuckets + (hash k mod nn * bucket_len) in
      let rec chain b =
        let rec probe i =
          if i >= slots then begin
            let nxt = next_of t b in
            if nxt = 0 then begin
              let nb = Pmdk.Alloc.zalloc t.pool bucket_len in
              Ctx.write_bytes t.ctx ~sid:"clht:rehash.chain_value"
                (slot_addr nb 0 + 8) v;
              Ctx.write_u64 t.ctx ~sid:"clht:rehash.chain_key" (slot_addr nb 0)
                (Tv.const k);
              if copy_value then
                Ctx.persist t.ctx ~sid:"clht:rehash.chain_persist" nb bucket_len;
              Ctx.write_u64 t.ctx ~sid:"clht:rehash.chain_link" b (Tv.const nb);
              if copy_value then
                Ctx.persist t.ctx ~sid:"clht:rehash.chain_link_persist" b 8
            end
            else chain nxt
          end
          else begin
            let a = slot_addr b i in
            let key = Ctx.read_u64 t.ctx ~sid:"clht:rehash.probe" a in
            if not (Tv.to_bool key) then begin
              Ctx.write_bytes t.ctx ~sid:"clht:rehash.value" (a + 8) v;
              Ctx.write_u64 t.ctx ~sid:"clht:rehash.key" a (Tv.const k);
              if copy_value then
                (* BUG when absent (bugs 32-35, C-O): no flush of the new
                   slot before the table swap becomes durable. *)
                Ctx.persist t.ctx ~sid:"clht:rehash.slot_persist" a slot_len
            end
            else probe (i + 1)
          end
        in
        probe 0
      in
      chain b0
    in
    for i = 0 to n - 1 do
      let rec walk b =
        if b <> 0 then begin
          for j = 0 to slots - 1 do
            let a = slot_addr b j in
            let key = Ctx.read_u64 t.ctx ~sid:"clht:rehash.src_key" a in
            Ctx.when_ t.ctx key (fun () ->
                let v = Ctx.read_bytes t.ctx ~sid:"clht:rehash.src_val" (a + 8) 8 in
                place (Tv.value key) v)
          done;
          walk (next_of t b)
        end
      in
      walk (buckets + (i * bucket_len))
    done;
    let r = Pmdk.Pool.root t.pool in
    Ctx.write_u64 t.ctx ~sid:"clht:rehash.swap" r (Tv.const ntbl);
    Ctx.persist t.ctx ~sid:"clht:rehash.swap_persist" r 8

  let maybe_rehash t =
    let tbl = root_table t in
    let n = table_n t tbl in
    if t.items > 2 * slots * n / 3 then rehash t

  (* The Aga-TX variant wraps the mutation in a transaction and logs the
     bucket — then logs the slot again, PMDK-style extra logging (P-EL). *)
  let with_tx t b f =
    if variant = Aga_tx then
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx b bucket_len;
          (* BUG (P-EL): the slot range is inside the bucket just logged. *)
          Pmdk.Tx.add_range tx (slot_addr b 0) slot_len;
          f ())
    else f ()

  let insert t k v =
    match
      find_slot t k ~found:(fun a ->
          Ctx.write_bytes t.ctx ~sid:"clht:insert.upsert" (a + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"clht:insert.upsert_persist" (a + 8) 8)
    with
    | Some () -> Output.Ok
    | None ->
    maybe_rehash t;
    let tbl = root_table t in
    let b = bucket_addr t tbl k in
    with_tx t b (fun () -> insert_into t k v);
    t.items <- t.items + 1;
    Output.Ok

  let update t k v =
    match
      find_slot t k ~found:(fun a ->
          let doit () =
            Ctx.write_bytes t.ctx ~sid:"clht:update.value" (a + 8)
              (Tv.blob (pad_value v));
            Ctx.persist t.ctx ~sid:"clht:update.persist" (a + 8) 8
          in
          if variant = Aga_tx then
            Pmdk.Tx.run t.pool (fun tx ->
                Pmdk.Tx.add_range tx a slot_len;
                (* BUG (P-EL): the value range is inside the slot. *)
                Pmdk.Tx.add_range tx (a + 8) 8;
                doit ())
          else doit ())
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match
      find_slot t k ~found:(fun a ->
          Ctx.write_u64 t.ctx ~sid:"clht:delete.key" a Tv.zero;
          Ctx.persist t.ctx ~sid:"clht:delete.persist" a 8)
    with
    | Some () -> t.items <- t.items - 1; Output.Ok
    | None -> Output.Not_found

  let query t k =
    match find_slot t k ~found:(fun a -> read_value t a) with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make variant : Witcher.Store_intf.instance =
  let module M = Make (struct let variant = variant end) in
  (module M)

let base () = make Base
let aga () = make Aga
let aga_tx () = make Aga_tx
let fixed () = make Fixed
