(* PMDK example Hashmap-atomic (paper row "Hashmap-atomic", bugs 45-46).
   A chained hash table built on low-level atomic stores instead of
   transactions. Entry references are PMDK-style two-word OIDs
   (pool tag | offset): a reference is live only when the tag matches.

   Entry: key(8) | value(8) | next tag(8) | next off(8).
   Bucket heads are the same two-word pairs.

   Seeded defects (both C-A):
   - [create_atomic] (bug 45, "atomicity when creating hashmap"): table
     creation stores the bucket-array pointer and the bucket count with
     no ordering between them; a crash can persist the count while the
     pointer stays null, and every later operation indexes off address
     zero — an inconsistent structure from the first fence on.
   - [oid_atomic]    (bug 46, "atomicity when assigning pool id and
     offset"): linking an entry writes the OID's two words as two stores
     behind one fence; crashing in between publishes a tag whose offset
     is stale — the reader dereferences the wrong entry.

   The fixed variants store the pair with a single 16-byte (one-store)
   write, the "merge to word size" strategy of §7.2, and order creation
   stores pointer-first. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  create_atomic : bool;
  oid_atomic : bool;
}

let buggy_cfg = { create_atomic = true; oid_atomic = true }
let fixed_cfg = { create_atomic = false; oid_atomic = false }

let n_buckets = 64
let val_len = 8
let oid_tag = 0x1D

let e_key = 0
let e_val = 8
let e_next = 16  (* tag | off *)
let entry_len = 32

let hash k = (k * 0x85EBCA77) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "hashmap-atomic"
  let pool_size = 4 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: buckets ptr(8) | nbuckets(8) *)

  let create_table t =
    let r = Pmdk.Pool.root t.pool in
    let b = Pmdk.Alloc.zalloc t.pool (n_buckets * 16) in
    if cfg.create_atomic then begin
      (* BUG (bug 45, C-A): pointer and count persist in one breath. *)
      Ctx.write_u64 t.ctx ~sid:"ha:create.buckets" r (Tv.const b);
      Ctx.write_u64 t.ctx ~sid:"ha:create.nbuckets" (r + 8)
        (Tv.const n_buckets);
      Ctx.flush_range t.ctx ~sid:"ha:create.flush" r 16;
      Ctx.fence t.ctx ~sid:"ha:create.fence"
    end
    else begin
      Ctx.write_u64 t.ctx ~sid:"ha:create.buckets" r (Tv.const b);
      Ctx.persist t.ctx ~sid:"ha:create.buckets_persist" r 8;
      Ctx.write_u64 t.ctx ~sid:"ha:create.nbuckets" (r + 8)
        (Tv.const n_buckets);
      Ctx.persist t.ctx ~sid:"ha:create.nbuckets_persist" (r + 8) 8
    end

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    create_table t;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not cfg.create_atomic then begin
      (* fixed recovery: pointer-first ordering means a null pointer is
         the only possible partial state — re-create *)
      if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"ha:open.buckets" r)) then
        create_table t
    end;
    t

  (* Read a two-word OID; valid only when the tag matches. The tag read
     guards the offset read (guarded protection on the pair). *)
  let read_oid t ~sid addr =
    let tag = Ctx.read_u64 t.ctx ~sid:(sid ^ ".tag") addr in
    Ctx.if_ t.ctx (Tv.eq tag (Tv.const oid_tag))
      ~then_:(fun () ->
          let off = Ctx.read_ptr t.ctx ~sid:(sid ^ ".off") (addr + 8) in
          Tv.value off)
      ~else_:(fun () -> 0)

  (* Store a two-word OID. Fixed: one 16-byte store. Buggy (bug 46): two
     stores, offset last, one trailing fence. *)
  let write_oid t ~sid addr target =
    if target = 0 then begin
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".clear_tag") addr Tv.zero;
      Ctx.persist t.ctx ~sid:(sid ^ ".clear_persist") addr 8
    end
    else if cfg.oid_atomic then begin
      (* BUG (bug 46, C-A): the OID is assigned in phases — invalidate,
         set the offset, revalidate — behind a single fence. A crash can
         persist the invalidated tag alone, dropping the whole chain, or
         the new tag without the offset. *)
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".clear") addr Tv.zero;
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".off") (addr + 8) (Tv.const target);
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".tag") addr (Tv.const oid_tag);
      Ctx.flush_range t.ctx ~sid:(sid ^ ".flush") addr 16;
      Ctx.fence t.ctx ~sid:(sid ^ ".fence")
    end
    else begin
      let b = Bytes.create 16 in
      Bytes.set_int64_le b 0 (Int64.of_int oid_tag);
      Bytes.set_int64_le b 8 (Int64.of_int target);
      Ctx.write_bytes t.ctx ~sid:(sid ^ ".pair") addr
        (Tv.blob (Bytes.to_string b));
      Ctx.persist t.ctx ~sid:(sid ^ ".pair_persist") addr 16
    end

  let buckets t =
    let r = Pmdk.Pool.root t.pool in
    let n = Ctx.read_u64 t.ctx ~sid:"ha:root.nbuckets" (r + 8) in
    let b = Ctx.read_ptr t.ctx ~sid:"ha:root.buckets" r in
    if not (Tv.to_bool n) then None else Some (Tv.value b)

  let bucket_addr t k =
    match buckets t with
    | None -> None
    | Some b -> Some (b + (hash k mod n_buckets * 16))

  let find t k =
    match bucket_addr t k with
    | None -> None
    | Some slot ->
      let rec go slot =
        let e = read_oid t ~sid:"ha:find.oid" slot in
        if e = 0 then None
        else begin
          let key = Ctx.read_u64 t.ctx ~sid:"ha:find.key" (e + e_key) in
          match
            Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
              ~then_:(fun () -> Some (slot, e))
              ~else_:(fun () -> None)
          with
          | Some r -> Some r
          | None -> go (e + e_next)
        end
      in
      go slot

  let insert t k v =
    match find t k with
    | Some (_, e) ->
      Ctx.write_bytes t.ctx ~sid:"ha:insert.upsert" (e + e_val)
        (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"ha:insert.upsert_persist" (e + e_val) 8;
      Output.Ok
    | None ->
      (match bucket_addr t k with
       | None -> Output.Fail "no-table"
       | Some slot ->
         let head = read_oid t ~sid:"ha:insert.head" slot in
         let e = Pmdk.Alloc.zalloc t.pool entry_len in
         Ctx.write_u64 t.ctx ~sid:"ha:insert.key" (e + e_key) (Tv.const k);
         Ctx.write_bytes t.ctx ~sid:"ha:insert.value" (e + e_val)
           (Tv.blob (pad_value v));
         if head <> 0 then begin
           let b = Bytes.create 16 in
           Bytes.set_int64_le b 0 (Int64.of_int oid_tag);
           Bytes.set_int64_le b 8 (Int64.of_int head);
           Ctx.write_bytes t.ctx ~sid:"ha:insert.next" (e + e_next)
             (Tv.blob (Bytes.to_string b))
         end;
         Ctx.persist t.ctx ~sid:"ha:insert.persist" e entry_len;
         write_oid t ~sid:"ha:insert.link" slot e;
         Output.Ok)

  let update t k v =
    match find t k with
    | Some (_, e) ->
      Ctx.write_bytes t.ctx ~sid:"ha:update.value" (e + e_val)
        (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"ha:update.persist" (e + e_val) 8;
      Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match find t k with
    | Some (slot, e) ->
      let nxt = read_oid t ~sid:"ha:delete.next" (e + e_next) in
      write_oid t ~sid:"ha:delete.unlink" slot nxt;
      Output.Ok
    | None -> Output.Not_found

  let query t k =
    match find t k with
    | Some (_, e) ->
      Output.Found
        (strip_value
           (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"ha:read.value" (e + e_val) 8)))
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
