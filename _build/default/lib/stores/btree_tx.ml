(* PMDK example B-Tree (paper row "B-Tree", bug 40 + five P-EL findings).
   A textbook count-based B-tree whose crash consistency comes entirely
   from PMDK undo-log transactions: every reachable node is add_range'd
   before it is modified, so in-place shifts are safe.

   Seeded defects:
   - [parent_unlogged] (bug 40, C-A "missing logging in a transaction"):
     the split path modifies the parent (separator insert, shifts)
     without logging it; recovery rolls the leaf back but leaves the
     half-shifted parent — an inconsistent structure.
   - [extra_logging] (P-EL x5): five call sites re-log ranges that are
     already covered by the enclosing node log, the classic PMDK
     redundant-undo-logging performance bug.

   This store doubles as the paper's "libpmemobj" row: built with
   [alloc_bug:true] the app code is clean and the only defect is the
   allocator's persistence-ordering bug (paper bug 1, PMDK issue 4945). *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  parent_unlogged : bool;
  extra_logging : bool;
  alloc_bug : bool;
}

let buggy_cfg = { parent_unlogged = true; extra_logging = true; alloc_bug = false }
let fixed_cfg = { parent_unlogged = false; extra_logging = false; alloc_bug = false }
let libpmemobj_cfg = { parent_unlogged = false; extra_logging = false; alloc_bug = true }

let cap = 8
let val_len = 8

let n_is_leaf = 0
let n_count = 8
let n_leftmost = 16
let n_entries = 32
let entry_len = 16
let node_len = n_entries + ((cap + 1) * entry_len)

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg val name : string end) = struct
  let name = C.name
  let pool_size = 8 * 1024 * 1024
  let supports_scan = true

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let entry_addr node i = node + n_entries + (i * entry_len)

  let is_leaf t n =
    Tv.to_bool (Ctx.read_u64 t.ctx ~sid:"bt:node.is_leaf" (n + n_is_leaf))

  let count_of t n = Ctx.read_u64 t.ctx ~sid:"bt:node.count" (n + n_count)

  let read_key t ~sid n i = Ctx.read_u64 t.ctx ~sid (entry_addr n i)
  let read_val t ~sid n i = Ctx.read_u64 t.ctx ~sid (entry_addr n i + 8)

  let alloc_node t ~leaf =
    let n = Pmdk.Alloc.zalloc t.pool node_len in
    Ctx.write_u64 t.ctx ~sid:"bt:mknode.is_leaf" (n + n_is_leaf)
      (Tv.const (if leaf then 1 else 0));
    Ctx.persist t.ctx ~sid:"bt:mknode.persist" n 32;
    n

  let root_addr t = Pmdk.Pool.root t.pool

  let pool_cfg () =
    { Pmdk.Pool.alloc_bug = cfg.alloc_bug }

  let create ctx =
    let pool = Pmdk.Pool.create ~cfg:(pool_cfg ()) ctx ~root_size:16 in
    let t = { ctx; pool } in
    let leaf = alloc_node t ~leaf:true in
    Ctx.write_u64 ctx ~sid:"bt:create.root" (root_addr t) (Tv.const leaf);
    Ctx.persist ctx ~sid:"bt:create.root_persist" (root_addr t) 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ~cfg:(pool_cfg ()) ctx in
    Pmdk.Tx.recover pool;
    let t = { ctx; pool } in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"bt:open.root" (root_addr t)))
    then begin
      let leaf = alloc_node t ~leaf:true in
      Ctx.write_u64 ctx ~sid:"bt:recover.root" (root_addr t) (Tv.const leaf);
      Ctx.persist ctx ~sid:"bt:recover.root_persist" (root_addr t) 8
    end;
    t

  let log_node tx node = Pmdk.Tx.add_range tx node node_len

  (* sorted position of k among entries *)
  let position t node k =
    let cnt = min (Tv.value (count_of t node)) cap in
    let rec go i =
      if i >= cnt then i
      else if Tv.value (read_key t ~sid:"bt:pos.key" node i) >= k then i
      else go (i + 1)
    in
    go 0

  let child_for t n k =
    let cnt = count_of t n in
    let m = min (Tv.value cnt) cap in
    Ctx.with_guard t.ctx (Tv.taint cnt) (fun () ->
        let rec go i best =
          if i >= m then best
          else begin
            let key = read_key t ~sid:"bt:descend.key" n i in
            if Tv.value key <= k then
              go (i + 1) (Tv.value (read_val t ~sid:"bt:descend.child" n i))
            else best
          end
        in
        go 0
          (Tv.value (Ctx.read_ptr t.ctx ~sid:"bt:descend.leftmost" (n + n_leftmost))))

  let find_leaf t k =
    let rec go n path =
      if is_leaf t n then (n, path)
      else go (child_for t n k) (n :: path)
    in
    go (Tv.value (Ctx.read_ptr t.ctx ~sid:"bt:root" (root_addr t))) []

  let leaf_find t leaf k =
    let cnt = count_of t leaf in
    let m = min (Tv.value cnt) cap in
    Ctx.with_guard t.ctx (Tv.taint cnt) (fun () ->
        let rec go i =
          if i >= m then None
          else begin
            let key = read_key t ~sid:"bt:find.key" leaf i in
            match
              Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
                ~then_:(fun () -> Some i)
                ~else_:(fun () -> None)
            with
            | Some i -> Some i
            | None -> go (i + 1)
          end
        in
        go 0)

  (* In-place sorted insert under the protection of the node's undo log. *)
  let insert_entry t tx node ~k ~v ~sid_prefix =
    log_node tx node;
    if cfg.extra_logging then
      (* BUG (P-EL): the entry region is inside the node just logged. *)
      Pmdk.Tx.add_range tx (entry_addr node 0) entry_len;
    let cnt = Tv.value (count_of t node) in
    let pos = position t node k in
    for i = cnt - 1 downto pos do
      let key = Tv.value (read_key t ~sid:(sid_prefix ^ ".shift_rdk") node i) in
      let v =
        Ctx.read_bytes t.ctx ~sid:(sid_prefix ^ ".shift_rdv")
          (entry_addr node i + 8) 8
      in
      if cfg.extra_logging then
        (* BUG (P-EL): per-entry re-logging during the shift. *)
        Pmdk.Tx.add_range tx (entry_addr node (i + 1)) entry_len;
      Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".shift_key")
        (entry_addr node (i + 1)) (Tv.const key);
      Ctx.write_bytes t.ctx ~sid:(sid_prefix ^ ".shift_val")
        (entry_addr node (i + 1) + 8) v
    done;
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".key") (entry_addr node pos)
      (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:(sid_prefix ^ ".val") (entry_addr node pos + 8)
      (Tv.blob (pad_value v));
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".count") (node + n_count)
      (Tv.const (cnt + 1))

  (* Split [node]; separator goes to the parent (or a new root). All
     modified pre-existing nodes must be logged — the parent is not when
     [parent_unlogged] (bug 40). *)
  let rec split t tx node path =
    let leaf = is_leaf t node in
    let cnt = Tv.value (count_of t node) in
    let mid = cnt / 2 in
    let sep = Tv.value (read_key t ~sid:"bt:split.sep" node mid) in
    let nnew = alloc_node t ~leaf in
    let from = if leaf then mid else mid + 1 in
    for i = from to cnt - 1 do
      let key = Tv.value (read_key t ~sid:"bt:split.rdk" node i) in
      let v = Ctx.read_bytes t.ctx ~sid:"bt:split.rdv" (entry_addr node i + 8) 8 in
      Ctx.write_u64 t.ctx ~sid:"bt:split.copy_key" (entry_addr nnew (i - from))
        (Tv.const key);
      Ctx.write_bytes t.ctx ~sid:"bt:split.copy_val"
        (entry_addr nnew (i - from) + 8) v
    done;
    if not leaf then begin
      let mc = Tv.value (read_val t ~sid:"bt:split.midchild" node mid) in
      Ctx.write_u64 t.ctx ~sid:"bt:split.leftmost" (nnew + n_leftmost)
        (Tv.const mc)
    end;
    Ctx.write_u64 t.ctx ~sid:"bt:split.new_count" (nnew + n_count)
      (Tv.const (cnt - from));
    Ctx.persist t.ctx ~sid:"bt:split.new_persist" nnew node_len;
    log_node tx node;
    if cfg.extra_logging then
      (* BUG (P-EL): the count is inside the logged node. *)
      Pmdk.Tx.add_range tx (node + n_count) 8;
    Ctx.write_u64 t.ctx ~sid:"bt:split.truncate" (node + n_count)
      (Tv.const mid);
    (match path with
     | parent :: rest ->
       if Tv.value (count_of t parent) >= cap then split t tx parent rest;
       (* re-descend for the right parent after a potential split above *)
       let parent =
         let rec again n =
           if is_leaf t n then n
           else begin
             let c = child_for t n sep in
             if c = node || c = nnew then n else again c
           end
         in
         again
           (Tv.value (Ctx.read_ptr t.ctx ~sid:"bt:split.reroot" (root_addr t)))
       in
       if not cfg.parent_unlogged then log_node tx parent
       else
         (* BUG (bug 40, C-A): the parent is modified without logging. *)
         ();
       let cnt = Tv.value (count_of t parent) in
       let pos = position t parent sep in
       for i = cnt - 1 downto pos do
         let key = Tv.value (read_key t ~sid:"bt:parent.shift_rdk" parent i) in
         let v = Tv.value (read_val t ~sid:"bt:parent.shift_rdv" parent i) in
         Ctx.write_u64 t.ctx ~sid:"bt:parent.shift_key"
           (entry_addr parent (i + 1)) (Tv.const key);
         Ctx.write_u64 t.ctx ~sid:"bt:parent.shift_val"
           (entry_addr parent (i + 1) + 8) (Tv.const v)
       done;
       Ctx.write_u64 t.ctx ~sid:"bt:parent.key" (entry_addr parent pos)
         (Tv.const sep);
       Ctx.write_u64 t.ctx ~sid:"bt:parent.val" (entry_addr parent pos + 8)
         (Tv.const nnew);
       Ctx.write_u64 t.ctx ~sid:"bt:parent.count" (parent + n_count)
         (Tv.const (cnt + 1))
     | [] ->
       let root = alloc_node t ~leaf:false in
       Ctx.write_u64 t.ctx ~sid:"bt:rootsplit.leftmost" (root + n_leftmost)
         (Tv.const node);
       Ctx.write_u64 t.ctx ~sid:"bt:rootsplit.key" (entry_addr root 0)
         (Tv.const sep);
       Ctx.write_u64 t.ctx ~sid:"bt:rootsplit.child" (entry_addr root 0 + 8)
         (Tv.const nnew);
       Ctx.write_u64 t.ctx ~sid:"bt:rootsplit.count" (root + n_count) Tv.one;
       Ctx.persist t.ctx ~sid:"bt:rootsplit.persist" root node_len;
       Pmdk.Tx.add_range tx (root_addr t) 8;
       Ctx.write_u64 t.ctx ~sid:"bt:rootsplit.swap" (root_addr t)
         (Tv.const root))

  let insert t k v =
    let leaf0, _ = find_leaf t k in
    match leaf_find t leaf0 k with
    | Some i ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (entry_addr leaf0 i + 8) 8;
          if cfg.extra_logging then
            (* BUG (P-EL): same range logged twice back to back. *)
            Pmdk.Tx.add_range tx (entry_addr leaf0 i + 8) 8;
          Ctx.write_bytes t.ctx ~sid:"bt:insert.upsert" (entry_addr leaf0 i + 8)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None ->
      Pmdk.Tx.run t.pool (fun tx ->
          let leaf, path = find_leaf t k in
          if Tv.value (count_of t leaf) >= cap then begin
            split t tx leaf path;
            let leaf, _ = find_leaf t k in
            insert_entry t tx leaf ~k ~v ~sid_prefix:"bt:insert"
          end
          else insert_entry t tx leaf ~k ~v ~sid_prefix:"bt:insert");
      Output.Ok

  let update t k v =
    let leaf, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some i ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (entry_addr leaf i + 8) 8;
          if cfg.extra_logging then
            (* BUG (P-EL): redundant re-log of the value word. *)
            Pmdk.Tx.add_range tx (entry_addr leaf i + 8) 8;
          Ctx.write_bytes t.ctx ~sid:"bt:update.val" (entry_addr leaf i + 8)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None -> Output.Not_found

  let delete t k =
    let leaf, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some pos ->
      Pmdk.Tx.run t.pool (fun tx ->
          log_node tx leaf;
          if cfg.extra_logging then
            (* BUG (P-EL): the shifted region is inside the logged node. *)
            Pmdk.Tx.add_range tx (entry_addr leaf pos) entry_len;
          let cnt = Tv.value (count_of t leaf) in
          for i = pos to cnt - 2 do
            let key = Tv.value (read_key t ~sid:"bt:delete.shift_rdk" leaf (i + 1)) in
            let v =
              Ctx.read_bytes t.ctx ~sid:"bt:delete.shift_rdv"
                (entry_addr leaf (i + 1) + 8) 8
            in
            Ctx.write_u64 t.ctx ~sid:"bt:delete.shift_key" (entry_addr leaf i)
              (Tv.const key);
            Ctx.write_bytes t.ctx ~sid:"bt:delete.shift_val"
              (entry_addr leaf i + 8) v
          done;
          Ctx.write_u64 t.ctx ~sid:"bt:delete.count" (leaf + n_count)
            (Tv.const (cnt - 1)));
      Output.Ok
    | None -> Output.Not_found

  let query t k =
    let leaf, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some i ->
      Output.Found
        (strip_value
           (Tv.blob_value
              (Ctx.read_bytes t.ctx ~sid:"bt:read.val" (entry_addr leaf i + 8) 8)))
    | None -> Output.Not_found

  (* In-order range scan. *)
  let scan t start count =
    let out = ref [] and seen = ref 0 in
    let rec walk n =
      if n <> 0 && !seen < count then begin
        let cnt = min (Tv.value (count_of t n)) cap in
        if is_leaf t n then begin
          let rec entries i =
            if i < cnt && !seen < count then begin
              let key = Tv.value (read_key t ~sid:"bt:scan.key" n i) in
              if key >= start then begin
                incr seen;
                out :=
                  strip_value
                    (Tv.blob_value
                       (Ctx.read_bytes t.ctx ~sid:"bt:scan.val"
                          (entry_addr n i + 8) 8))
                  :: !out
              end;
              entries (i + 1)
            end
          in
          entries 0
        end
        else begin
          walk (Tv.value (Ctx.read_ptr t.ctx ~sid:"bt:scan.leftmost" (n + n_leftmost)));
          let rec kids i =
            if i < cnt && !seen < count then begin
              walk (Tv.value (read_val t ~sid:"bt:scan.child" n i));
              kids (i + 1)
            end
          in
          kids 0
        end
      end
    in
    walk (Tv.value (Ctx.read_ptr t.ctx ~sid:"bt:scan.root" (root_addr t)));
    Output.Vals (List.rev !out)

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan (k, n) -> scan t k n
end

let make ?(cfg = buggy_cfg) ?(name = "b-tree") () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg let name = name end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
let libpmemobj () = make ~cfg:libpmemobj_cfg ~name:"libpmemobj" ()
