(* PMDK example C-Tree (paper row "C-Tree"): a crit-bit tree where every
   mutation is a single logged pointer update plus freshly allocated
   nodes. The paper found no bugs in it (Table 5 reports zeros across the
   board), and this port keeps it that way — it serves as the negative
   control for the whole pipeline: Witcher must report nothing.

   Interior node: tag(8)=1 | crit bit(8) | left(8) | right(8).
   Leaf: tag(8)=2 | key(8) | value(8 bytes payload). *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

let key_bits = 16
let key_mask = (1 lsl key_bits) - 1
let val_len = 8
let node_len = 32
let leaf_len = 24

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module M = struct
  let name = "c-tree"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let bit_of k b = (k lsr (key_bits - 1 - b)) land 1
  let root_slot t = Pmdk.Pool.root t.pool

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    Pmdk.Tx.recover pool;
    { ctx; pool }

  let tag_of t n = Tv.value (Ctx.read_u64 t.ctx ~sid:"ct:node.tag" n)
  let node_bit t n = Tv.value (Ctx.read_u64 t.ctx ~sid:"ct:node.bit" (n + 8))

  let child_slot t n k =
    if bit_of k (node_bit t n) = 0 then n + 16 else n + 24

  let descend t k =
    let rec go slot =
      let n = Tv.value (Ctx.read_ptr t.ctx ~sid:"ct:walk.ptr" slot) in
      if n = 0 then (slot, None)
      else if tag_of t n = 2 then (slot, Some n)
      else go (child_slot t n k)
    in
    go (root_slot t)

  let leaf_key t leaf = Ctx.read_u64 t.ctx ~sid:"ct:leaf.key" (leaf + 8)

  let mk_leaf t k v =
    let leaf = Pmdk.Alloc.alloc t.pool leaf_len in
    Ctx.write_u64 t.ctx ~sid:"ct:mkleaf.tag" leaf (Tv.const 2);
    Ctx.write_u64 t.ctx ~sid:"ct:mkleaf.key" (leaf + 8) (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:"ct:mkleaf.value" (leaf + 16)
      (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"ct:mkleaf.persist" leaf leaf_len;
    leaf

  let crit_bit a b =
    let x = a lxor b in
    let rec go i =
      if (x lsr (key_bits - 1 - i)) land 1 = 1 then i else go (i + 1)
    in
    go 0

  let insert t k v =
    let k = k land key_mask in
    let slot, leaf = descend t k in
    match leaf with
    | None ->
      Pmdk.Tx.run t.pool (fun tx ->
          let nleaf = mk_leaf t k v in
          Pmdk.Tx.add_range tx slot 8;
          Ctx.write_u64 t.ctx ~sid:"ct:insert.plant" slot (Tv.const nleaf));
      Output.Ok
    | Some leaf ->
      let key = leaf_key t leaf in
      Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
        ~then_:(fun () ->
            Pmdk.Tx.run t.pool (fun tx ->
                Pmdk.Tx.add_range tx (leaf + 16) 8;
                Ctx.write_bytes t.ctx ~sid:"ct:insert.upsert" (leaf + 16)
                  (Tv.blob (pad_value v)));
            Output.Ok)
        ~else_:(fun () ->
            (* create an interior node over old and new leaf, publish it
               with one logged pointer store *)
            Pmdk.Tx.run t.pool (fun tx ->
                let ok = Tv.value (leaf_key t leaf) in
                let bit = crit_bit ok k in
                let nleaf = mk_leaf t k v in
                let node = Pmdk.Alloc.alloc t.pool node_len in
                Ctx.write_u64 t.ctx ~sid:"ct:mknode.tag" node Tv.one;
                Ctx.write_u64 t.ctx ~sid:"ct:mknode.bit" (node + 8)
                  (Tv.const bit);
                let l, r =
                  if bit_of k bit = 0 then (nleaf, leaf) else (leaf, nleaf)
                in
                Ctx.write_u64 t.ctx ~sid:"ct:mknode.left" (node + 16) (Tv.const l);
                Ctx.write_u64 t.ctx ~sid:"ct:mknode.right" (node + 24) (Tv.const r);
                Ctx.persist t.ctx ~sid:"ct:mknode.persist" node node_len;
                Pmdk.Tx.add_range tx slot 8;
                Ctx.write_u64 t.ctx ~sid:"ct:insert.publish" slot (Tv.const node));
            Output.Ok)

  let with_exact t k ~found =
    match descend t (k land key_mask) with
    | _, None -> None
    | slot, Some leaf ->
      let key = leaf_key t leaf in
      Ctx.if_ t.ctx (Tv.eq key (Tv.const (k land key_mask)))
        ~then_:(fun () -> Some (found slot leaf))
        ~else_:(fun () -> None)

  let update t k v =
    match
      with_exact t k ~found:(fun _slot leaf ->
          Pmdk.Tx.run t.pool (fun tx ->
              Pmdk.Tx.add_range tx (leaf + 16) 8;
              Ctx.write_bytes t.ctx ~sid:"ct:update.value" (leaf + 16)
                (Tv.blob (pad_value v))))
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match
      with_exact t k ~found:(fun slot _leaf ->
          Pmdk.Tx.run t.pool (fun tx ->
              Pmdk.Tx.add_range tx slot 8;
              Ctx.write_u64 t.ctx ~sid:"ct:delete.unlink" slot Tv.zero))
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    match
      with_exact t k ~found:(fun _slot leaf ->
          strip_value
            (Tv.blob_value
               (Ctx.read_bytes t.ctx ~sid:"ct:read.value" (leaf + 16) 8)))
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make () : Witcher.Store_intf.instance = (module M)
let buggy = make
let fixed = make
