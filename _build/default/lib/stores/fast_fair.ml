(* FAST-FAIR persistent B+tree (Hwang et al., FAST '18; paper rows
   "Fast Fair", bugs 3-6). The design's hallmark is *failure-atomic
   shifting*: in-node inserts and deletes move whole 16-byte entries with
   single atomic stores, leaving at worst a transient duplicate that
   readers tolerate, so no logging is needed. Leaves carry a right-sibling
   pointer; a reader that misses a key at a just-split leaf follows the
   sibling chain — the "inconsistency tolerable" design that makes naive
   bug detectors report false positives (§7.1) and that output equivalence
   checking correctly accepts.

   Node layout (16-aligned):
     +0  is_leaf   +8  nentries region is implicit (null-terminated)
     +16 sibling   +24 leftmost child (inner nodes)
     +32 entries: (max_entries + 1) x 16 bytes [key:8 | ptr:8], ptr = 0
         terminates the array.
   Leaf entry ptr -> value blob [len:8 | bytes:16].

   Seeded defects:
   - [insert_noflush] (bug 3, C-O): the in-leaf insert omits the flush of
     the entry region; the new entry can stay volatile across later
     durable operations and vanish on crash.
   - [delete_tear]    (bug 4, C-A): the shift-left after a delete moves
     key and pointer with two separate 8-byte stores; a crash between
     them permanently binds a key to its neighbour's value — a partial
     inconsistency the reader never recovers.
   - [split_order]    (bug 5, C-A): node split publishes the new node (in
     the parent / as the new root) before the node's contents are
     durable; resuming can dereference a garbage pointer and crash, the
     "root connects to a sibling" illegal state of §7.2.
   - [merge_order]    (bug 6, C-A): the empty-leaf merge unlinks the right
     sibling from the parent before the borrowed entries are durable,
     losing its keys. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  insert_noflush : bool;
  delete_tear : bool;
  split_order : bool;
  merge_order : bool;
}

let buggy_cfg =
  { insert_noflush = true; delete_tear = true; split_order = true;
    merge_order = true }

let fixed_cfg =
  { insert_noflush = false; delete_tear = false; split_order = false;
    merge_order = false }

let max_entries = 8
let n_is_leaf = 0
let n_sibling = 16
let n_leftmost = 24
let n_entries = 32
let entry_len = 16
let node_len = n_entries + ((max_entries + 1) * entry_len)

let blob_len = 24  (* len:8 | bytes:16 *)
let val_max = 16

module Make (C : sig val cfg : cfg end) = struct
  let name = "fast-fair"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = true

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let entry_addr node i = node + n_entries + (i * entry_len)

  let read_ptr t ~sid node i =
    Ctx.read_u64 t.ctx ~sid (entry_addr node i + 8)
  let read_key t ~sid node i = Ctx.read_u64 t.ctx ~sid (entry_addr node i)

  (* One atomic 16-byte entry store (the node is 16-aligned). *)
  let write_entry t ~sid node i ~key ~ptr =
    let b = Bytes.create entry_len in
    Bytes.set_int64_le b 0 (Int64.of_int key);
    Bytes.set_int64_le b 8 (Int64.of_int ptr);
    Ctx.write_bytes t.ctx ~sid (entry_addr node i) (Tv.blob (Bytes.to_string b))

  (* The torn variant: two separate 8-byte stores (bug 4's shape). *)
  let write_entry_torn t ~sid node i ~key ~ptr =
    Ctx.write_u64 t.ctx ~sid:(sid ^ ".key") (entry_addr node i) (Tv.const key);
    Ctx.write_u64 t.ctx ~sid:(sid ^ ".ptr") (entry_addr node i + 8) (Tv.const ptr)

  let is_leaf t node =
    Tv.to_bool (Ctx.read_u64 t.ctx ~sid:"ff:node.is_leaf" (node + n_is_leaf))

  let sibling t node =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"ff:node.sibling" (node + n_sibling))

  (* Number of live entries: scan to the null pointer. *)
  let count_entries t node =
    let rec go i =
      if i > max_entries then i
      else if Tv.to_bool (read_ptr t ~sid:"ff:count.ptr" node i) then go (i + 1)
      else i
    in
    go 0

  let alloc_node t ~leaf =
    let node = Pmdk.Alloc.zalloc t.pool node_len in
    Ctx.write_u64 t.ctx ~sid:"ff:mknode.is_leaf" (node + n_is_leaf)
      (Tv.const (if leaf then 1 else 0));
    Ctx.persist t.ctx ~sid:"ff:mknode.persist" node 32;
    node

  let root_addr t = Pmdk.Pool.root t.pool

  let read_root t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"ff:root" (root_addr t))

  let set_root t node ~persist_first ~sid =
    if persist_first then
      Ctx.persist t.ctx ~sid:(sid ^ ".node_persist") node node_len;
    Ctx.write_u64 t.ctx ~sid:(sid ^ ".swap") (root_addr t) (Tv.const node);
    Ctx.persist t.ctx ~sid:(sid ^ ".swap_persist") (root_addr t) 8

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let leaf = alloc_node t ~leaf:true in
    set_root t leaf ~persist_first:true ~sid:"ff:create";
    t

  (* Recovery for interrupted splits (the paper's fix strategy for bug 5:
     "inconsistency-recoverable design"). A crash between a split's
     sibling-link and its truncate leaves a leaf that overlaps its right
     sibling; the stale left copies would diverge from the authoritative
     sibling once updated. Completing the truncation restores the leaf
     chain's key order. Interrupted *inner* splits are harmless: descent
     never uses inner siblings and the leaf chain remains complete. *)
  let heal t =
    let rec leftmost_leaf node =
      if node = 0 || is_leaf t node then node
      else
        leftmost_leaf
          (Tv.value (Ctx.read_ptr t.ctx ~sid:"ff:heal.leftmost" (node + n_leftmost)))
    in
    let max_live_key node =
      let rec go i acc =
        if i > max_entries then acc
        else if not (Tv.to_bool (read_ptr t ~sid:"ff:heal.ptr" node i)) then acc
        else go (i + 1) (max acc (Tv.value (read_key t ~sid:"ff:heal.key" node i)))
      in
      go 0 min_int
    in
    let rec chain leaf fuel =
      if leaf <> 0 && fuel > 0 then begin
        let rs = sibling t leaf in
        if rs <> 0 then begin
          let rsp = read_ptr t ~sid:"ff:heal.rs_ptr" rs 0 in
          if Tv.to_bool rsp then begin
            let rs_first = Tv.value (read_key t ~sid:"ff:heal.rs_key" rs 0) in
            if max_live_key leaf >= rs_first then begin
              (* complete the interrupted truncation *)
              let rec find_pos i =
                if i > max_entries then i
                else if not (Tv.to_bool (read_ptr t ~sid:"ff:heal.pos_ptr" leaf i))
                then i
                else if Tv.value (read_key t ~sid:"ff:heal.pos_key" leaf i)
                        >= rs_first then i
                else find_pos (i + 1)
              in
              let pos = find_pos 0 in
              write_entry t ~sid:"ff:heal.truncate" leaf pos ~key:0 ~ptr:0;
              Ctx.persist t.ctx ~sid:"ff:heal.truncate_persist"
                (entry_addr leaf pos) entry_len
            end
          end
        end;
        chain rs (fuel - 1)
      end
    in
    chain (leftmost_leaf (read_root t)) 10_000

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"ff:open.root" (root_addr t)))
    then begin
      let leaf = alloc_node t ~leaf:true in
      set_root t leaf ~persist_first:true ~sid:"ff:recover"
    end
    else if not (cfg.split_order || cfg.insert_noflush || cfg.delete_tear
                 || cfg.merge_order) then
      heal t;
    t

  (* --- value blobs --- *)

  let pad v =
    if String.length v >= val_max then String.sub v 0 val_max
    else v ^ String.make (val_max - String.length v) '\000'

  let write_blob t v =
    let blob = Pmdk.Alloc.alloc t.pool blob_len in
    Ctx.write_u64 t.ctx ~sid:"ff:blob.len" blob
      (Tv.const (min (String.length v) val_max));
    Ctx.write_bytes t.ctx ~sid:"ff:blob.bytes" (blob + 8) (Tv.blob (pad v));
    Ctx.persist t.ctx ~sid:"ff:blob.persist" blob blob_len;
    blob

  let read_blob t ptr =
    let len = Tv.value (Ctx.read_u64 t.ctx ~sid:"ff:blob.read_len" ptr) in
    if len < 0 || len > val_max then
      raise (Pmem.Fault { addr = ptr; len })
    else begin
      let b = Ctx.read_bytes t.ctx ~sid:"ff:blob.read_bytes" (ptr + 8) len in
      Tv.blob_value b
    end

  (* --- descent --- *)

  (* Child of an inner node for key [k]: leftmost if k < keys[0], else the
     last entry with key <= k. Reads are guarded by the entry pointers. *)
  let child_for t node k =
    let rec go i best =
      if i > max_entries then best
      else begin
        let p = read_ptr t ~sid:"ff:descend.ptr" node i in
        Ctx.if_ t.ctx p
          ~then_:(fun () ->
              let key = read_key t ~sid:"ff:descend.key" node i in
              if Tv.value key <= k then go (i + 1) (Tv.value p) else best)
          ~else_:(fun () -> best)
      end
    in
    let leftmost =
      Tv.value (Ctx.read_ptr t.ctx ~sid:"ff:descend.leftmost" (node + n_leftmost))
    in
    go 0 leftmost

  (* Descend to the leaf that should hold [k]; returns the leaf and the
     path of inner nodes (root first). *)
  let find_leaf t k =
    let rec go node path =
      if is_leaf t node then (node, path)
      else go (child_for t node k) (node :: path)
    in
    go (read_root t) []

  (* Find [k] in a leaf, tolerating transient duplicates; if [k] exceeds
     every key present, follow the sibling chain (FAST-FAIR reads). *)
  let rec leaf_find t leaf k =
    let rec go i max_seen =
      if i > max_entries then `Check_sibling max_seen
      else begin
        let p = Ctx.read_ptr t.ctx ~sid:"ff:find.ptr" (entry_addr leaf i + 8) in
        match
          Ctx.if_ t.ctx p
            ~then_:(fun () ->
                let key = read_key t ~sid:"ff:find.key" leaf i in
                Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
                  ~then_:(fun () -> `Found (i, Tv.value p))
                  ~else_:(fun () -> `Next (max max_seen (Tv.value key))))
            ~else_:(fun () -> `Check_sibling max_seen)
        with
        | `Found _ as f -> f
        | `Next m -> go (i + 1) m
        | `Check_sibling _ as c -> c
      end
    in
    match go 0 min_int with
    | `Found (i, p) -> Some (leaf, i, p)
    | `Check_sibling max_seen ->
      let sib = sibling t leaf in
      if sib <> 0 && k > max_seen then leaf_find t sib k else None

  (* --- failure-atomic in-node insert / delete --- *)

  (* Sorted position for [k] among the live entries. *)
  let position t node k =
    let rec go i =
      if i > max_entries then i
      else if not (Tv.to_bool (read_ptr t ~sid:"ff:pos.ptr" node i)) then i
      else if Tv.value (read_key t ~sid:"ff:pos.key" node i) >= k then i
      else go (i + 1)
    in
    go 0

  (* Shift entries [pos..n) one slot right (rightmost first, whole-entry
     atomic stores: at any crash point the array is sorted with at most a
     duplicate, which readers skip), then plant the new entry. *)
  (* Failure-Atomic ShifT (FAST): slot [j]'s old content is destroyed only
     after its copy at [j + 1] is durable. Within one cache line, TSO
     store order already guarantees this; when the shift crosses a line
     boundary the destination line is flushed and fenced first. *)
  let boundary_persist t node j ~sid =
    if Pmem.line_of_addr (entry_addr node j)
       <> Pmem.line_of_addr (entry_addr node (j + 1)) then begin
      Ctx.flush t.ctx ~sid (entry_addr node (j + 1));
      Ctx.fence t.ctx ~sid
    end

  let insert_entry t node ~k ~ptr ~sid_prefix =
    let n = count_entries t node in
    assert (n <= max_entries);
    let careful = not cfg.insert_noflush in
    (* Re-terminate past the new end first: slots beyond the current
       terminator may hold stale entries from earlier shifts, and this
       write is invisible until the shift reaches slot [n]. *)
    if n + 1 <= max_entries then
      write_entry t ~sid:(sid_prefix ^ ".term") node (n + 1) ~key:0 ~ptr:0;
    let pos = position t node k in
    for i = n - 1 downto pos do
      if careful then boundary_persist t node (i + 1) ~sid:(sid_prefix ^ ".boundary");
      let key = Tv.value (read_key t ~sid:(sid_prefix ^ ".shift_rdk") node i) in
      let p = Tv.value (read_ptr t ~sid:(sid_prefix ^ ".shift_rdp") node i) in
      write_entry t ~sid:(sid_prefix ^ ".shift") node (i + 1) ~key ~ptr:p
    done;
    if careful then boundary_persist t node pos ~sid:(sid_prefix ^ ".boundary");
    write_entry t ~sid:(sid_prefix ^ ".entry") node pos ~key:k ~ptr;
    if cfg.insert_noflush then
      (* BUG (bug 3, C-O): neither the boundary flushes of FAST nor a
         final flush of the entry region — only a fence, which persists
         nothing that was never flushed. *)
      Ctx.fence t.ctx ~sid:(sid_prefix ^ ".fence_only")
    else begin
      Ctx.flush_range t.ctx ~sid:(sid_prefix ^ ".flush")
        (entry_addr node pos) ((n - pos + 2) * entry_len);
      Ctx.fence t.ctx ~sid:(sid_prefix ^ ".fence")
    end

  (* Remove the entry at [pos] by shifting left. Fixed: whole-entry atomic
     moves. Buggy: torn key/ptr stores (bug 4). *)
  let remove_entry t node pos ~sid_prefix =
    let n = count_entries t node in
    for i = pos to n - 1 do
      (* Slot [i]'s incoming copy destroys its old content, which the
         previous iteration already copied to [i - 1]; make that copy
         durable across a line boundary first (FAST, leftward). *)
      if not cfg.delete_tear && i > pos
      && Pmem.line_of_addr (entry_addr node i)
         <> Pmem.line_of_addr (entry_addr node (i - 1)) then begin
        Ctx.flush t.ctx ~sid:(sid_prefix ^ ".boundary") (entry_addr node (i - 1));
        Ctx.fence t.ctx ~sid:(sid_prefix ^ ".boundary")
      end;
      if i + 1 >= max_entries + 1 then
        write_entry t ~sid:(sid_prefix ^ ".clear") node i ~key:0 ~ptr:0
      else begin
        let key = Tv.value (read_key t ~sid:(sid_prefix ^ ".shift_rdk") node (i + 1)) in
        let p = Tv.value (read_ptr t ~sid:(sid_prefix ^ ".shift_rdp") node (i + 1)) in
        if cfg.delete_tear then
          (* BUG (bug 4, C-A): key and pointer move in two separate
             stores; a crash in between binds a key to its neighbour's
             value, and nothing ever repairs it. *)
          write_entry_torn t ~sid:(sid_prefix ^ ".shift_torn") node i ~key ~ptr:p
        else
          write_entry t ~sid:(sid_prefix ^ ".shift") node i ~key ~ptr:p
      end
    done;
    Ctx.flush_range t.ctx ~sid:(sid_prefix ^ ".flush")
      (entry_addr node pos) ((n - pos) * entry_len);
    Ctx.fence t.ctx ~sid:(sid_prefix ^ ".fence")

  (* --- split --- *)

  (* Split [node]; returns (separator key, new right node). For leaves the
     separator is copied (B+-tree); for inner nodes it moves up and the
     middle child becomes the new node's leftmost. *)
  let split_node t node =
    let leaf = is_leaf t node in
    let nnew = alloc_node t ~leaf in
    let mid =
      if not leaf then max_entries / 2
      else begin
        (* Never separate duplicate copies of a key (a tolerated crash
           left-over): all copies must land on one side so the separator
           routes every reader to them. *)
        let key_at i = Tv.value (read_key t ~sid:"ff:split.scan_key" node i) in
        let n = count_entries t node in
        let rec up m =
          if m >= n then
            let rec down m =
              if m <= 1 then max_entries / 2
              else if key_at m <> key_at (m - 1) then m
              else down (m - 1)
            in
            down (max_entries / 2)
          else if key_at m <> key_at (m - 1) then m
          else up (m + 1)
        in
        up (max_entries / 2)
      end
    in
    let sep = Tv.value (read_key t ~sid:"ff:split.sep" node mid) in
    let from = if leaf then mid else mid + 1 in
    let rec copy i j =
      if i <= max_entries
      && Tv.to_bool (read_ptr t ~sid:"ff:split.src_ptr" node i) then begin
        let key = Tv.value (read_key t ~sid:"ff:split.src_key" node i) in
        let p = Tv.value (read_ptr t ~sid:"ff:split.src_ptr2" node i) in
        write_entry t ~sid:"ff:split.copy" nnew j ~key ~ptr:p;
        copy (i + 1) (j + 1)
      end
    in
    copy from 0;
    if not leaf then begin
      let midp = Tv.value (read_ptr t ~sid:"ff:split.mid_child" node mid) in
      Ctx.write_u64 t.ctx ~sid:"ff:split.leftmost" (nnew + n_leftmost)
        (Tv.const midp)
    end;
    let sib = sibling t node in
    Ctx.write_u64 t.ctx ~sid:"ff:split.sibling" (nnew + n_sibling) (Tv.const sib);
    if not cfg.split_order then
      (* Fixed: the new node is durable before anything points at it. *)
      Ctx.persist t.ctx ~sid:"ff:split.new_persist" nnew node_len;
    (* Link into the sibling chain, then truncate the old node. *)
    Ctx.write_u64 t.ctx ~sid:"ff:split.link" (node + n_sibling) (Tv.const nnew);
    Ctx.persist t.ctx ~sid:"ff:split.link_persist" (node + n_sibling) 8;
    write_entry t ~sid:"ff:split.truncate" node mid ~key:0 ~ptr:0;
    Ctx.persist t.ctx ~sid:"ff:split.truncate_persist" (entry_addr node mid)
      entry_len;
    (sep, nnew)

  (* FAIR write-path tolerance: if [k] lies beyond every key in this node
     and a right sibling exists — the node split but an ancestor doesn't
     know yet — move right before inserting. The predicate must be
     exactly the reader's (leaf_find follows the sibling iff k exceeds
     the node's maximum), otherwise writes land where reads never look. *)
  let rec chase_right t node k =
    let sib = sibling t node in
    if sib = 0 then node
    else begin
      let rec max_key i acc =
        if i > max_entries then acc
        else if not (Tv.to_bool (read_ptr t ~sid:"ff:chase.ptr" node i)) then acc
        else
          max_key (i + 1)
            (max acc (Tv.value (read_key t ~sid:"ff:chase.key" node i)))
      in
      if k > max_key 0 min_int then chase_right t sib k else node
    end

  (* Insert (k, ptr) into [node], splitting up the [path] as needed. *)
  let rec insert_into t node path ~k ~ptr ~sid_prefix =
    let node = chase_right t node k in
    if count_entries t node >= max_entries then begin
      let sep, nnew = split_node t node in
      (match path with
       | parent :: rest ->
         insert_into t parent rest ~k:sep ~ptr:nnew ~sid_prefix:"ff:parent"
       | [] ->
         if read_root t = node then begin
           (* Root split: fresh root over [node] and [nnew]. BUG (bug 5,
              C-A): with [split_order] the root pointer swaps before the
              new root's contents are durable — after a crash the root is
              garbage and every operation faults. *)
           let root = alloc_node t ~leaf:false in
           Ctx.write_u64 t.ctx ~sid:"ff:rootsplit.leftmost" (root + n_leftmost)
             (Tv.const node);
           write_entry t ~sid:"ff:rootsplit.entry" root 0 ~key:sep ~ptr:nnew;
           set_root t root ~persist_first:(not cfg.split_order) ~sid:"ff:rootsplit"
         end
         (* else: a chased node with no recorded ancestors split; the new
            sibling stays chain-reachable and readers tolerate it *));
      (* Retry in the correct half. *)
      let target = if k >= sep then nnew else node in
      insert_entry t (chase_right t target k) ~k ~ptr ~sid_prefix
    end
    else insert_entry t node ~k ~ptr ~sid_prefix

  (* --- merge (empty-leaf absorption) --- *)

  (* After a delete empties [leaf], absorb the right sibling if it shares
     [parent]: copy its entries in, bypass it in the sibling chain, and
     drop its separator from the parent. *)
  let try_merge t leaf parent =
    let rs = sibling t leaf in
    if rs = 0 then ()
    else begin
      (* Only merge when the parent's entry points at [rs]. *)
      let rec parent_pos i =
        if i > max_entries then None
        else if not (Tv.to_bool (read_ptr t ~sid:"ff:merge.p_ptr" parent i)) then None
        else if Tv.value (read_ptr t ~sid:"ff:merge.p_ptr2" parent i) = rs then Some i
        else parent_pos (i + 1)
      in
      match parent_pos 0 with
      | None -> ()
      | Some pos ->
        let unlink () =
          Ctx.write_u64 t.ctx ~sid:"ff:merge.bypass" (leaf + n_sibling)
            (Tv.const (sibling t rs));
          Ctx.persist t.ctx ~sid:"ff:merge.bypass_persist" (leaf + n_sibling) 8;
          remove_entry t parent pos ~sid_prefix:"ff:merge.parent"
        in
        if cfg.merge_order then begin
          (* BUG (bug 6, C-A): the sibling is unlinked before its borrowed
             entries are durable; a crash loses every key it held. *)
          unlink ();
          let n = count_entries t rs in
          if n + 1 <= max_entries then
            write_entry t ~sid:"ff:merge.term" leaf (n + 1) ~key:0 ~ptr:0;
          if n <= max_entries then
            write_entry t ~sid:"ff:merge.term2" leaf n ~key:0 ~ptr:0;
          for i = n - 1 downto 0 do
            let key = Tv.value (read_key t ~sid:"ff:merge.rdk" rs i) in
            let p = Tv.value (read_ptr t ~sid:"ff:merge.rdp" rs i) in
            write_entry t ~sid:"ff:merge.copy" leaf i ~key ~ptr:p
          done;
          Ctx.flush_range t.ctx ~sid:"ff:merge.flush" (entry_addr leaf 0)
            (n * entry_len);
          Ctx.fence t.ctx ~sid:"ff:merge.fence"
        end
        else begin
          (* Fixed: stage everything beyond slot 0 and make it durable,
             then publish with the slot-0 store (the leaf is invisible
             while slot 0 still terminates it), then unlink. *)
          let n = count_entries t rs in
          if n + 1 <= max_entries then
            write_entry t ~sid:"ff:merge.term" leaf (n + 1) ~key:0 ~ptr:0;
          if n <= max_entries then
            write_entry t ~sid:"ff:merge.term2" leaf n ~key:0 ~ptr:0;
          for i = n - 1 downto 1 do
            let key = Tv.value (read_key t ~sid:"ff:merge.rdk" rs i) in
            let p = Tv.value (read_ptr t ~sid:"ff:merge.rdp" rs i) in
            write_entry t ~sid:"ff:merge.copy" leaf i ~key ~ptr:p
          done;
          Ctx.flush_range t.ctx ~sid:"ff:merge.flush" (entry_addr leaf 0)
            (min (n + 2) (max_entries + 1) * entry_len);
          Ctx.fence t.ctx ~sid:"ff:merge.fence";
          if n > 0 then begin
            let key = Tv.value (read_key t ~sid:"ff:merge.rdk" rs 0) in
            let p = Tv.value (read_ptr t ~sid:"ff:merge.rdp" rs 0) in
            write_entry t ~sid:"ff:merge.publish" leaf 0 ~key ~ptr:p;
            Ctx.persist t.ctx ~sid:"ff:merge.publish_persist"
              (entry_addr leaf 0) entry_len
          end;
          unlink ()
        end
    end

  (* --- operations --- *)

  let insert t k v =
    let leaf0, _ = find_leaf t k in
    match leaf_find t leaf0 k with
    | Some (node, i, _) ->
      (* Upsert: swing the value pointer, as update does. *)
      let blob = write_blob t v in
      Ctx.write_u64 t.ctx ~sid:"ff:insert.upsert" (entry_addr node i + 8)
        (Tv.const blob);
      Ctx.persist t.ctx ~sid:"ff:insert.upsert_persist" (entry_addr node i + 8) 8;
      Output.Ok
    | None ->
      let blob = write_blob t v in
      let leaf, path = find_leaf t k in
      insert_into t leaf path ~k ~ptr:blob ~sid_prefix:"ff:insert";
      Output.Ok

  let update t k v =
    let leaf, _ = find_leaf t k in
    match leaf_find t leaf k with
    | None -> Output.Not_found
    | Some (node, i, _) ->
      let blob = write_blob t v in
      Ctx.write_u64 t.ctx ~sid:"ff:update.ptr" (entry_addr node i + 8)
        (Tv.const blob);
      Ctx.persist t.ctx ~sid:"ff:update.persist" (entry_addr node i + 8) 8;
      Output.Ok

  (* Delete every copy of [k]: a tolerated crash may have left a duplicate
     entry, and removing only the first would resurrect the key with a
     stale value. *)
  let delete t k =
    let rec drop_all rounds last =
      if rounds > 2 * max_entries then last
      else begin
        let leaf, path = find_leaf t k in
        match leaf_find t leaf k with
        | None -> last
        | Some (node, i, _) ->
          remove_entry t node i ~sid_prefix:"ff:delete";
          drop_all (rounds + 1) (Some (node, path))
      end
    in
    match drop_all 0 None with
    | None -> Output.Not_found
    | Some (node, path) ->
      (match path with
       | parent :: _ when count_entries t node = 0 -> try_merge t node parent
       | _ -> ());
      Output.Ok

  let query t k =
    let leaf, _ = find_leaf t k in
    match leaf_find t leaf k with
    | None -> Output.Not_found
    | Some (_, _, ptr) -> Output.Found (read_blob t ptr)

  (* Range scan: walk the leaf level through the sibling chain, skipping
     duplicate keys (tolerated transient states). *)
  let scan t start count =
    let leaf, _ = find_leaf t start in
    let out = ref [] and seen = ref 0 and last_key = ref min_int in
    let rec walk node =
      if node <> 0 && !seen < count then begin
        let rec entries i =
          if i <= max_entries && !seen < count then begin
            let p = read_ptr t ~sid:"ff:scan.ptr" node i in
            if Tv.to_bool p then begin
              let key = Tv.value (read_key t ~sid:"ff:scan.key" node i) in
              if key >= start && key <> !last_key then begin
                last_key := key;
                incr seen;
                out := read_blob t (Tv.value p) :: !out
              end;
              entries (i + 1)
            end
          end
        in
        entries 0;
        if !seen < count then walk (sibling t node)
      end
    in
    walk leaf;
    Output.Vals (List.rev !out)

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan (k, n) -> scan t k n
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
