(* CCEH — Cacheline-Conscious Extendible Hashing (Nam et al., FAST '19;
   paper row "CCEH", bugs 24-25). A directory of 2^G segment pointers
   indexed by the top G bits of the hash; each segment holds fixed slots
   and a local depth. Splitting a segment rewrites 2^(G - L) directory
   entries; doubling the directory bumps G.

   Key 0 is the empty sentinel (workload keys start at 1); a slot is
   claimed by persisting the value before the key, and readers validate
   the key before reading the value (guarded protection).

   Seeded defects:
   - [split_atomic] (bug 24, C-A): the split *moves* entries — slots are
     invalidated in the old segment before the new segments are durable,
     and only the first half of the rewritten directory entries is
     flushed; a crash strands directory entries on a gutted segment.
   - [depth_order]  (bug 25, C-A): the old segment's local depth is
     bumped and persisted before the directory rewrite; after a crash the
     split looks complete, later splits compute the wrong directory
     range, and inserts fail — the "partial inconsistency is never
     recovered / unexpected op failure" of the paper.

   The fixed variant splits copy-on-write (the old segment keeps its
   entries), publishes each directory entry with an atomic persisted
   store, and doubles the directory behind a single atomic root update. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  split_atomic : bool;
  depth_order : bool;
}

let buggy_cfg = { split_atomic = true; depth_order = true }
let fixed_cfg = { split_atomic = false; depth_order = false }

let slots = 16
let probe_window = 8
let slot_len = 16  (* key 8 | value 8 *)
let seg_header = 16  (* local depth | pad *)
let seg_len = seg_header + (slots * slot_len)
let initial_depth = 2
let hash_bits = 30
let val_len = 8

let hash k = (k * 0x9E3779B1) land ((1 lsl hash_bits) - 1)

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "cceh"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: dir ptr | global depth (updated together, one 16B store) *)
  let root_dir t =
    let r = Pmdk.Pool.root t.pool in
    let dir = Tv.value (Ctx.read_ptr t.ctx ~sid:"cceh:root.dir" r) in
    let gd = Tv.value (Ctx.read_u64 t.ctx ~sid:"cceh:root.gd" (r + 8)) in
    (dir, gd)

  let set_root t dir gd ~sid =
    let r = Pmdk.Pool.root t.pool in
    let b = Bytes.create 16 in
    Bytes.set_int64_le b 0 (Int64.of_int dir);
    Bytes.set_int64_le b 8 (Int64.of_int gd);
    Ctx.write_bytes t.ctx ~sid r (Tv.blob (Bytes.to_string b));
    Ctx.persist t.ctx ~sid:(sid ^ "_persist") r 16

  let slot_addr seg i = seg + seg_header + (i * slot_len)

  let local_depth t seg =
    Tv.value (Ctx.read_u64 t.ctx ~sid:"cceh:seg.depth" seg)

  let alloc_segment t ~depth =
    let seg = Pmdk.Alloc.zalloc t.pool seg_len in
    Ctx.write_u64 t.ctx ~sid:"cceh:mkseg.depth" seg (Tv.const depth);
    Ctx.persist t.ctx ~sid:"cceh:mkseg.persist" seg 8;
    seg

  let dir_entry_addr dir idx = dir + (idx * 8)

  let create_table t =
    let n = 1 lsl initial_depth in
    let dir = Pmdk.Alloc.zalloc t.pool (n * 8) in
    for i = 0 to n - 1 do
      let seg = alloc_segment t ~depth:initial_depth in
      Ctx.write_u64 t.ctx ~sid:"cceh:create.dirent" (dir_entry_addr dir i)
        (Tv.const seg)
    done;
    Ctx.persist t.ctx ~sid:"cceh:create.dir_persist" dir (n * 8);
    set_root t dir initial_depth ~sid:"cceh:create.root"

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    create_table t;
    t

  (* Directory recovery (fixed variant only — its absence in the original
     is part of bug 25): a crash mid-split can leave a chunk of directory
     entries partly rewritten. Every chunk is forced back to the segment
     its first entry names, at that segment's own local depth; a partial
     split is thereby rolled back (the old segment still holds every
     entry, since fixed splits are copy-on-write). *)
  let recover_directory t =
    let dir, gd = root_dir t in
    let n = 1 lsl gd in
    let entry j =
      Tv.value
        (Ctx.read_u64 t.ctx ~sid:"cceh:recover.ent" (dir_entry_addr dir j))
    in
    let rec fix idx =
      if idx < n then begin
        let seg = entry idx in
        let ld = local_depth t seg in
        let chunk = max 1 (1 lsl (gd - max 0 (min gd ld))) in
        let first = idx land lnot (chunk - 1) in
        (* The coarsest (minimum-depth) segment in the chunk is the
           pre-split owner; a mixed chunk rolls back to it. *)
        let coarsest = ref seg and coarsest_ld = ref ld in
        for j = first to first + chunk - 1 do
          let s = entry j in
          if s <> !coarsest then begin
            let l = local_depth t s in
            if l < !coarsest_ld then begin
              coarsest := s;
              coarsest_ld := l
            end
          end
        done;
        let dirty = ref false in
        for j = first to first + chunk - 1 do
          if entry j <> !coarsest then begin
            dirty := true;
            Ctx.write_u64 t.ctx ~sid:"cceh:recover.fix" (dir_entry_addr dir j)
              (Tv.const !coarsest)
          end
        done;
        if !dirty then
          Ctx.persist t.ctx ~sid:"cceh:recover.persist"
            (dir_entry_addr dir first) (chunk * 8);
        fix (first + chunk)
      end
    in
    fix 0

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"cceh:open.dir" r)) then
      create_table t
    else if not (cfg.split_atomic || cfg.depth_order) then
      recover_directory t;
    t

  let dir_index gd h = h lsr (hash_bits - gd)

  let segment_for t k =
    let dir, gd = root_dir t in
    let idx = dir_index gd (hash k) in
    let seg =
      Tv.value
        (Ctx.read_ptr t.ctx ~sid:"cceh:lookup.dirent" (dir_entry_addr dir idx))
    in
    (dir, gd, idx, seg)

  (* Probe the window for [k]; calls [found] under the key guard. *)
  let probe_find t seg k ~found =
    let start = hash k land (slots - 1) in
    let rec go i =
      if i >= probe_window then None
      else begin
        let a = slot_addr seg ((start + i) land (slots - 1)) in
        let key = Ctx.read_u64 t.ctx ~sid:"cceh:probe.key" a in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () -> Some (found a))
            ~else_:(fun () -> None)
        with
        | Some r -> Some r
        | None -> go (i + 1)
      end
    in
    go 0

  let read_value t a =
    strip_value
      (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"cceh:read.value" (a + 8) 8))

  (* Claim an empty slot: value first, then the guardian key. *)
  let write_slot t a k v =
    Ctx.write_bytes t.ctx ~sid:"cceh:insert.value" (a + 8)
      (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"cceh:insert.value_persist" (a + 8) 8;
    Ctx.write_u64 t.ctx ~sid:"cceh:insert.key" a (Tv.const k);
    Ctx.persist t.ctx ~sid:"cceh:insert.key_persist" a 8

  let try_insert_seg t seg k v =
    let start = hash k land (slots - 1) in
    let rec go i =
      if i >= probe_window then false
      else begin
        let a = slot_addr seg ((start + i) land (slots - 1)) in
        let key = Ctx.read_u64 t.ctx ~sid:"cceh:insert.probe" a in
        if not (Tv.to_bool key) then begin
          write_slot t a k v;
          true
        end
        else go (i + 1)
      end
    in
    go 0

  (* Rewrite every directory entry in [idx]'s chunk that points at the old
     segment. [flush_all] = false reproduces bug 24's missing flush. *)
  let rewrite_dir t dir gd ld old_seg s0 s1 ~flush_all =
    let chunk = 1 lsl (gd - ld) in
    (* First entry of the chunk: clear the low gd-ld bits. *)
    let some_idx =
      (* find one index pointing at old_seg by scanning (bounded) *)
      let n = 1 lsl gd in
      let rec find i =
        if i >= n then 0
        else if
          Tv.value
            (Ctx.read_u64 t.ctx ~sid:"cceh:split.scan" (dir_entry_addr dir i))
          = old_seg
        then i
        else find (i + 1)
      in
      find 0
    in
    let first = some_idx land lnot (chunk - 1) in
    for j = 0 to chunk - 1 do
      let idx = first + j in
      (* Lower half of the chunk -> s0, upper half -> s1. *)
      let target = if j < chunk / 2 then s0 else s1 in
      Ctx.write_u64 t.ctx ~sid:"cceh:split.dirent" (dir_entry_addr dir idx)
        (Tv.const target);
      if flush_all || j < chunk / 2 then
        Ctx.flush t.ctx ~sid:"cceh:split.dirent_flush" (dir_entry_addr dir idx)
    done;
    Ctx.fence t.ctx ~sid:"cceh:split.dirent_fence"

  let split t k =
    let dir, gd, _idx, seg = segment_for t k in
    let ld = local_depth t seg in
    if ld >= gd then begin
      (* Double the directory: copy every entry twice, publish with one
         atomic root update. Crashing in between leaves the old root. *)
      let n = 1 lsl gd in
      let ndir = Pmdk.Alloc.zalloc t.pool (2 * n * 8) in
      for i = 0 to n - 1 do
        let s =
          Ctx.read_u64 t.ctx ~sid:"cceh:double.read" (dir_entry_addr dir i)
        in
        Ctx.write_u64 t.ctx ~sid:"cceh:double.lo" (dir_entry_addr ndir (2 * i)) s;
        Ctx.write_u64 t.ctx ~sid:"cceh:double.hi"
          (dir_entry_addr ndir ((2 * i) + 1)) s
      done;
      Ctx.persist t.ctx ~sid:"cceh:double.persist" ndir (2 * n * 8);
      set_root t ndir (gd + 1) ~sid:"cceh:double.root"
    end
    else begin
      (* Segment split. Entries are distributed by the (ld+1)-th hash bit. *)
      let s0 = alloc_segment t ~depth:(ld + 1) in
      let s1 = alloc_segment t ~depth:(ld + 1) in
      if cfg.depth_order then begin
        (* BUG (bug 25, C-A): the old segment's depth is bumped and made
           durable before the directory changes; a crash leaves a segment
           that claims to be split while the directory disagrees. *)
        Ctx.write_u64 t.ctx ~sid:"cceh:split.depth_early" seg (Tv.const (ld + 1));
        Ctx.persist t.ctx ~sid:"cceh:split.depth_early_persist" seg 8
      end;
      for i = 0 to slots - 1 do
        let a = slot_addr seg i in
        let key = Ctx.read_u64 t.ctx ~sid:"cceh:split.key" a in
        Ctx.when_ t.ctx key (fun () ->
            let v = Ctx.read_bytes t.ctx ~sid:"cceh:split.value" (a + 8) 8 in
            let bit = (hash (Tv.value key) lsr (hash_bits - ld - 1)) land 1 in
            let target = if bit = 0 then s0 else s1 in
            let start = hash (Tv.value key) land (slots - 1) in
            let rec place j =
              if j < slots then begin
                let b = slot_addr target ((start + j) land (slots - 1)) in
                let kk = Ctx.read_u64 t.ctx ~sid:"cceh:split.probe" b in
                if not (Tv.to_bool kk) then begin
                  Ctx.write_bytes t.ctx ~sid:"cceh:split.copy_val" (b + 8) v;
                  Ctx.write_u64 t.ctx ~sid:"cceh:split.copy_key" b key
                end
                else place (j + 1)
              end
            in
            place 0;
            if cfg.split_atomic then
              (* BUG (bug 24, C-A): the entry is *moved* — the source slot
                 is invalidated while the copy may still be volatile. *)
              Ctx.write_u64 t.ctx ~sid:"cceh:split.invalidate" a Tv.zero)
      done;
      if not cfg.split_atomic then begin
        Ctx.persist t.ctx ~sid:"cceh:split.s0_persist" s0 seg_len;
        Ctx.persist t.ctx ~sid:"cceh:split.s1_persist" s1 seg_len
      end
      else
        Ctx.fence t.ctx ~sid:"cceh:split.fence_only";
      rewrite_dir t dir gd ld seg s0 s1 ~flush_all:(not cfg.split_atomic)
    end

  let insert t k v =
    let _, _, _, seg0 = segment_for t k in
    match
      probe_find t seg0 k ~found:(fun a ->
          Ctx.write_bytes t.ctx ~sid:"cceh:insert.upsert" (a + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"cceh:insert.upsert_persist" (a + 8) 8)
    with
    | Some () -> Output.Ok
    | None ->
    let rec attempt tries =
      if tries > 6 then Output.Fail "full"
      else begin
        let _, _, _, seg = segment_for t k in
        if try_insert_seg t seg k v then Output.Ok
        else begin
          split t k;
          attempt (tries + 1)
        end
      end
    in
    attempt 0

  let update t k v =
    let _, _, _, seg = segment_for t k in
    match
      probe_find t seg k ~found:(fun a ->
          Ctx.write_bytes t.ctx ~sid:"cceh:update.value" (a + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"cceh:update.persist" (a + 8) 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    let _, _, _, seg = segment_for t k in
    match
      probe_find t seg k ~found:(fun a ->
          Ctx.write_u64 t.ctx ~sid:"cceh:delete.key" a Tv.zero;
          Ctx.persist t.ctx ~sid:"cceh:delete.persist" a 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    let _, _, _, seg = segment_for t k in
    match probe_find t seg k ~found:(fun a -> read_value t a) with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
