(* PMDK example Hashmap-TX (paper row "Hashmap-TX", bug 44). A chained
   hash table whose mutations run inside undo-log transactions.

   Entry: key(8) | value(8) | next(8). The allocator's free list reuses
   the first word of a freed block, clobbering the key — harmless once
   the entry is truly unreachable.

   Seeded defect ([use_after_free], bug 44, C-O "use-after-free", fix
   strategy "copy before free"): delete frees the entry *before* reading
   its next pointer to unlink it. Sequentially this works (the word is
   still intact), but the free-list push persists immediately, so a crash
   between it and the unlink leaves the entry simultaneously linked in
   the chain and available for reallocation; the next insert recycles it
   and the chain is corrupted — lost keys, unexpected op failures. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { use_after_free : bool }

let buggy_cfg = { use_after_free = true }
let fixed_cfg = { use_after_free = false }

let n_buckets = 64
let val_len = 8

let e_key = 0
let e_val = 8
let e_next = 16
let entry_len = 24

let hash k = (k * 0x9E3779B1) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "hashmap-tx"
  let pool_size = 4 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let buckets t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"hm:root.buckets" (Pmdk.Pool.root t.pool))

  let bucket_addr t k = buckets t + (hash k mod n_buckets * 8)

  let create_table ctx pool =
    let b = Pmdk.Alloc.zalloc pool (n_buckets * 8) in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"hm:create.buckets" r (Tv.const b);
    Ctx.persist ctx ~sid:"hm:create.persist" r 8

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    create_table ctx pool;
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    Pmdk.Tx.recover pool;
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"hm:open.buckets" (Pmdk.Pool.root pool)))
    then create_table ctx pool;
    { ctx; pool }

  (* Find entry for [k]: returns (slot pointing at entry, entry). *)
  let find t k =
    let rec go slot =
      let e = Tv.value (Ctx.read_ptr t.ctx ~sid:"hm:find.entry" slot) in
      if e = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"hm:find.key" (e + e_key) in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () -> Some (slot, e))
            ~else_:(fun () -> None)
        with
        | Some r -> Some r
        | None -> go (e + e_next)
      end
    in
    go (bucket_addr t k)

  let insert t k v =
    match find t k with
    | Some (_, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (e + e_val) 8;
          Ctx.write_bytes t.ctx ~sid:"hm:insert.upsert" (e + e_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None ->
      Pmdk.Tx.run t.pool (fun tx ->
          let slot = bucket_addr t k in
          let head = Ctx.read_u64 t.ctx ~sid:"hm:insert.head" slot in
          let e = Pmdk.Alloc.zalloc t.pool entry_len in
          Ctx.write_u64 t.ctx ~sid:"hm:insert.key" (e + e_key) (Tv.const k);
          Ctx.write_bytes t.ctx ~sid:"hm:insert.value" (e + e_val)
            (Tv.blob (pad_value v));
          Ctx.write_u64 t.ctx ~sid:"hm:insert.next" (e + e_next) head;
          Ctx.persist t.ctx ~sid:"hm:insert.persist" e entry_len;
          Pmdk.Tx.add_range tx slot 8;
          Ctx.write_u64 t.ctx ~sid:"hm:insert.link" slot (Tv.const e));
      Output.Ok

  let update t k v =
    match find t k with
    | Some (_, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (e + e_val) 8;
          Ctx.write_bytes t.ctx ~sid:"hm:update.value" (e + e_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match find t k with
    | Some (slot, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          if cfg.use_after_free then begin
            (* BUG (bug 44, C-O): free first, read the freed entry's next
               pointer after. The free-list push is durable immediately;
               the unlink below is not — a crash in between leaves [e]
               both linked and reusable. *)
            Pmdk.Alloc.free t.pool e;
            let nxt = Ctx.read_u64 t.ctx ~sid:"hm:delete.next_uaf" (e + e_next) in
            Pmdk.Tx.add_range tx slot 8;
            Ctx.write_u64 t.ctx ~sid:"hm:delete.unlink" slot nxt;
            Ctx.persist t.ctx ~sid:"hm:delete.unlink_persist" slot 8
          end
          else begin
            (* fix: copy before free, and defer the free past commit *)
            let nxt = Ctx.read_u64 t.ctx ~sid:"hm:delete.next" (e + e_next) in
            Pmdk.Tx.add_range tx slot 8;
            Ctx.write_u64 t.ctx ~sid:"hm:delete.unlink" slot nxt;
            Ctx.persist t.ctx ~sid:"hm:delete.unlink_persist" slot 8
          end);
      (* PMDK's tx_free takes effect at commit; freeing before commit
         would let a rollback resurrect a reusable entry. *)
      if not cfg.use_after_free then Pmdk.Alloc.free t.pool e;
      Output.Ok
    | None -> Output.Not_found

  let query t k =
    match find t k with
    | Some (_, e) ->
      Output.Found
        (strip_value
           (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"hm:read.value" (e + e_val) 8)))
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
