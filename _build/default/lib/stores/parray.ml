(* Persistent array — the PMDK example of §7.7 (non-key-value programs).
   A growable cell array: root holds (capacity | cells pointer); growing
   reallocates the cell block and copies.

   Operation mapping (the paper's extended template driver): Insert and
   Update write cell [k mod range] (growing if needed), Delete clears it,
   Query reads it, and Scan is the example's "print" operation — the
   output equivalence anchor — listing all populated cells.

   Seeded defect ([realloc_order], the known bug of §7.7, pmdk#4927
   class): reallocation persists the enlarged capacity *before* the new
   cell pointer is durable; after a crash the capacity promises cells the
   old block does not have, and accesses run off its end. The fixed
   variant publishes (capacity, pointer) with one atomic 16-byte store. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { realloc_order : bool }

let buggy_cfg = { realloc_order = true }
let fixed_cfg = { realloc_order = false }

let range = 256
let initial_cap = 16
let val_len = 8

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "p-array"
  let pool_size = 2 * 1024 * 1024
  let supports_scan = true

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: cap(8) | cells ptr(8) *)

  let mk_cells t n =
    Pmdk.Alloc.zalloc t.pool (n * val_len)

  let publish t cap cells ~sid =
    if cfg.realloc_order then begin
      (* BUG (pmdk#4927 class, C-O/C-A): capacity becomes durable first. *)
      let r = Pmdk.Pool.root t.pool in
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".cap") r (Tv.const cap);
      Ctx.persist t.ctx ~sid:(sid ^ ".cap_persist") r 8;
      Ctx.write_u64 t.ctx ~sid:(sid ^ ".cells") (r + 8) (Tv.const cells);
      Ctx.persist t.ctx ~sid:(sid ^ ".cells_persist") (r + 8) 8
    end
    else begin
      let r = Pmdk.Pool.root t.pool in
      let b = Bytes.create 16 in
      Bytes.set_int64_le b 0 (Int64.of_int cap);
      Bytes.set_int64_le b 8 (Int64.of_int cells);
      Ctx.write_bytes t.ctx ~sid:(sid ^ ".pair") r (Tv.blob (Bytes.to_string b));
      Ctx.persist t.ctx ~sid:(sid ^ ".pair_persist") r 16
    end

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    publish t initial_cap (mk_cells t initial_cap) ~sid:"pa:create";
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"pa:open.cap" r)) then
      publish t initial_cap (mk_cells t initial_cap) ~sid:"pa:recover";
    t

  let geometry t =
    let r = Pmdk.Pool.root t.pool in
    let cap = Ctx.read_u64 t.ctx ~sid:"pa:root.cap" r in
    let cells = Ctx.read_ptr t.ctx ~sid:"pa:root.cells" (r + 8) in
    (Tv.value cap, Tv.value cells, Taint.union (Tv.taint cap) (Tv.taint cells))

  let cell_addr cells i = cells + (i * val_len)

  (* Grow to at least [need] cells: fresh block, copy, publish. *)
  let grow t need =
    let cap, cells, _ = geometry t in
    let rec next n = if n >= need then n else next (2 * n) in
    let ncap = next (max cap 1) in
    let ncells = mk_cells t ncap in
    for i = 0 to cap - 1 do
      let v = Ctx.read_bytes t.ctx ~sid:"pa:grow.read" (cell_addr cells i) val_len in
      Ctx.write_bytes t.ctx ~sid:"pa:grow.copy" (cell_addr ncells i) v
    done;
    if not cfg.realloc_order then
      Ctx.persist t.ctx ~sid:"pa:grow.copy_persist" ncells (ncap * val_len);
    publish t ncap ncells ~sid:"pa:grow"

  let idx_of k = k mod range

  let set t k v ~sid =
    let i = idx_of k in
    let cap, cells, g = geometry t in
    Ctx.with_guard t.ctx g (fun () ->
        if i >= cap then begin
          grow t (i + 1);
          let _, cells', _ = geometry t in
          Ctx.write_bytes t.ctx ~sid (cell_addr cells' i)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:(sid ^ "_persist") (cell_addr cells' i) val_len
        end
        else begin
          Ctx.write_bytes t.ctx ~sid (cell_addr cells i)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:(sid ^ "_persist") (cell_addr cells i) val_len
        end);
    Output.Ok

  let get t k =
    let i = idx_of k in
    let cap, cells, g = geometry t in
    Ctx.with_guard t.ctx g (fun () ->
        if i >= cap then Output.Not_found
        else begin
          let v =
            strip_value
              (Tv.blob_value
                 (Ctx.read_bytes t.ctx ~sid:"pa:get.cell" (cell_addr cells i)
                    val_len))
          in
          if v = "" then Output.Not_found else Output.Found v
        end)

  let clear t k =
    let i = idx_of k in
    let cap, cells, g = geometry t in
    Ctx.with_guard t.ctx g (fun () ->
        if i >= cap then Output.Not_found
        else begin
          let old =
            strip_value
              (Tv.blob_value
                 (Ctx.read_bytes t.ctx ~sid:"pa:clear.read" (cell_addr cells i)
                    val_len))
          in
          if old = "" then Output.Not_found
          else begin
            Ctx.write_bytes t.ctx ~sid:"pa:clear.cell" (cell_addr cells i)
              (Tv.blob (String.make val_len '\000'));
            Ctx.persist t.ctx ~sid:"pa:clear.persist" (cell_addr cells i)
              val_len;
            Output.Ok
          end
        end)

  (* The example's print operation: list every populated cell in order. *)
  let print t =
    let cap, cells, g = geometry t in
    Ctx.with_guard t.ctx g (fun () ->
        let out = ref [] in
        for i = cap - 1 downto 0 do
          let v =
            strip_value
              (Tv.blob_value
                 (Ctx.read_bytes t.ctx ~sid:"pa:print.cell" (cell_addr cells i)
                    val_len))
          in
          if v <> "" then out := v :: !out
        done;
        Output.Vals !out)

  let exec t op =
    match op with
    | Op.Insert (k, v) -> set t k v ~sid:"pa:set.cell"
    | Op.Update (k, v) -> set t k v ~sid:"pa:update.cell"
    | Op.Delete k -> clear t k
    | Op.Query k -> get t k
    | Op.Scan (_, _) -> print t
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
