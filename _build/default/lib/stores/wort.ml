(* WORT — Write-Optimal Radix Tree (Lee et al., FAST '17; paper row
   "WORT"). A fixed-fanout radix tree over the key's nibbles. Every
   structural change boils down to allocate-and-initialize new nodes and
   then publish them with a single atomic 8-byte pointer store — the
   "write optimal" property that makes the design crash-consistent
   without logging. Matching Table 5, WORT has no correctness bugs; it
   carries one unpersisted counter (P-U) and one redundant flush (P-EFL),
   the two performance findings the paper reports. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

let fanout = 16
let bits = 4
let levels = 4  (* 16-bit keyspace *)
let node_len = fanout * 8
let leaf_len = 16  (* key 8 | value 8 *)
let val_len = 8
let key_mask = (1 lsl (bits * levels)) - 1

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module M = struct
  let name = "wort"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: root node ptr | item counter (never flushed: P-U) *)

  let nibble k level = (k lsr (bits * (levels - 1 - level))) land (fanout - 1)

  let child_addr node i = node + (i * 8)

  let alloc_node t =
    let node = Pmdk.Alloc.zalloc t.pool node_len in
    node

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let root = alloc_node t in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"wort:create.root" r (Tv.const root);
    Ctx.persist ctx ~sid:"wort:create.root_persist" r 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"wort:open.root" r)) then begin
      let root = alloc_node t in
      Ctx.write_u64 ctx ~sid:"wort:recover.root" r (Tv.const root);
      Ctx.persist ctx ~sid:"wort:recover.root_persist" r 8
    end;
    t

  let root_node t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"wort:root" (Pmdk.Pool.root t.pool))

  let bump_counter t =
    let a = Pmdk.Pool.root t.pool + 8 in
    let c = Ctx.read_u64 t.ctx ~sid:"wort:counter.read" a in
    (* P-U: the item counter lives in NVM and is never flushed. *)
    Ctx.write_u64 t.ctx ~sid:"wort:counter.update" a (Tv.add c Tv.one)

  (* Walk to the slot that holds (or would hold) [k]'s leaf pointer. *)
  let slot_for t k ~make =
    let k = k land key_mask in
    let rec go node level =
      let slot = child_addr node (nibble k level) in
      if level = levels - 1 then Some slot
      else begin
        let child = Tv.value (Ctx.read_ptr t.ctx ~sid:"wort:walk.child" slot) in
        if child <> 0 then go child (level + 1)
        else if not make then None
        else begin
          (* Allocate-then-link: the fresh node is durable (zalloc) before
             the single atomic pointer store publishes it. *)
          let fresh = alloc_node t in
          Ctx.write_u64 t.ctx ~sid:"wort:link.child" slot (Tv.const fresh);
          Ctx.persist t.ctx ~sid:"wort:link.persist" slot 8;
          go fresh (level + 1)
        end
      end
    in
    go (root_node t) 0

  let leaf_of t slot =
    let leaf = Tv.value (Ctx.read_ptr t.ctx ~sid:"wort:leaf.ptr" slot) in
    if leaf = 0 then None else Some leaf

  let write_leaf t k v =
    let leaf = Pmdk.Alloc.alloc t.pool leaf_len in
    Ctx.write_u64 t.ctx ~sid:"wort:leaf.key" leaf (Tv.const (k land key_mask));
    Ctx.write_bytes t.ctx ~sid:"wort:leaf.value" (leaf + 8)
      (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"wort:leaf.persist" leaf leaf_len;
    leaf

  let insert t k v =
    match slot_for t k ~make:true with
    | None -> Output.Fail "unreachable"
    | Some slot ->
      (match leaf_of t slot with
       | Some leaf ->
         Ctx.write_bytes t.ctx ~sid:"wort:insert.overwrite" (leaf + 8)
           (Tv.blob (pad_value v));
         Ctx.persist t.ctx ~sid:"wort:insert.overwrite_persist" (leaf + 8) 8
       | None ->
         let leaf = write_leaf t k v in
         Ctx.write_u64 t.ctx ~sid:"wort:insert.link" slot (Tv.const leaf);
         Ctx.persist t.ctx ~sid:"wort:insert.link_persist" slot 8;
         (* P-EFL: the slot line was just flushed by the persist above. *)
         Ctx.flush t.ctx ~sid:"wort:insert.extra_flush" slot;
         bump_counter t);
      Output.Ok

  let with_leaf t k ~found =
    match slot_for t k ~make:false with
    | None -> None
    | Some slot ->
      (match leaf_of t slot with
       | None -> None
       | Some leaf ->
         let key = Ctx.read_u64 t.ctx ~sid:"wort:find.key" leaf in
         Ctx.if_ t.ctx (Tv.eq key (Tv.const (k land key_mask)))
           ~then_:(fun () -> Some (found slot leaf))
           ~else_:(fun () -> None))

  let update t k v =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"wort:update.value" (leaf + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"wort:update.persist" (leaf + 8) 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match
      with_leaf t k ~found:(fun slot _leaf ->
          Ctx.write_u64 t.ctx ~sid:"wort:delete.unlink" slot Tv.zero;
          Ctx.persist t.ctx ~sid:"wort:delete.persist" slot 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          strip_value
            (Tv.blob_value
               (Ctx.read_bytes t.ctx ~sid:"wort:read.value" (leaf + 8) 8)))
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make () : Witcher.Store_intf.instance = (module M)
let buggy = make
let fixed = make
