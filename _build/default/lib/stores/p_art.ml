(* P-ART — the RECIPE conversion of the Adaptive Radix Tree (paper row
   "P-ART", bugs 26-27). Interior nodes keep an explicit entry count and
   parallel key/child arrays; readers scan entries below the count, so
   the count is the guardian of every entry (N4.cpp / N16.cpp in the
   original).

   Seeded defect ([count_atomic], bugs 26-27, C-A "atomicity between
   metadata and key-value"): appending an entry bumps the count in the
   same epoch as the entry stores, with one trailing fence — the count
   can persist while the entry does not, so readers chase a garbage
   (null or stale) child. Two code paths carry the bug, matching the two
   paper sites: the small-node append (N4) and the large-node append
   (N16, used after growth).

   The fixed variant persists the entry, fences, and only then bumps and
   persists the count. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { count_atomic : bool }

let buggy_cfg = { count_atomic = true }
let fixed_cfg = { count_atomic = false }

let bits = 4
let levels = 4
let key_mask = (1 lsl (bits * levels)) - 1
let val_len = 8

(* node: type(8) | count(8) | keys (16 x 1B) | children (16 x 8B) *)
let n_type = 0
let n_count = 8
let n_keys = 16
let n_children = 32
let node_cap_small = 4
let node_cap_big = 16
let node_len = n_children + (16 * 8)
let leaf_len = 16

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "p-art"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let nibble k level = (k lsr (bits * (levels - 1 - level))) land 15

  let alloc_node t ~cap =
    let node = Pmdk.Alloc.zalloc t.pool node_len in
    Ctx.write_u64 t.ctx ~sid:"part:mknode.type" (node + n_type) (Tv.const cap);
    Ctx.persist t.ctx ~sid:"part:mknode.persist" node 16;
    node

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let root = alloc_node t ~cap:node_cap_big in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"part:create.root" r (Tv.const root);
    Ctx.persist ctx ~sid:"part:create.root_persist" r 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"part:open.root" r)) then begin
      let root = alloc_node t ~cap:node_cap_big in
      Ctx.write_u64 ctx ~sid:"part:recover.root" r (Tv.const root);
      Ctx.persist ctx ~sid:"part:recover.root_persist" r 8
    end;
    t

  let root_node t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"part:root" (Pmdk.Pool.root t.pool))

  let count_of t node = Ctx.read_u64 t.ctx ~sid:"part:node.count" (node + n_count)
  let cap_of t node =
    Tv.value (Ctx.read_u64 t.ctx ~sid:"part:node.type" (node + n_type))

  let key_addr node i = node + n_keys + i
  let child_addr node i = node + n_children + (i * 8)

  (* Scan entries below count for [nib]: the count read guards every
     entry read (PO3: entries must persist before the count). Entries
     whose child is still the null sentinel (an interrupted append) are
     skipped, not treated as terminal. *)
  let find_entry t node nib =
    let cnt = count_of t node in
    let n = min (Tv.value cnt) 16 in
    Ctx.with_guard t.ctx (Tv.taint cnt) (fun () ->
        let rec go i =
          if i >= n then None
          else begin
            let kb = Ctx.read_u8 t.ctx ~sid:"part:find.keybyte" (key_addr node i) in
            match
              Ctx.if_ t.ctx (Tv.eq kb (Tv.const nib))
                ~then_:(fun () ->
                    let ch = Ctx.read_ptr t.ctx ~sid:"part:find.child" (child_addr node i) in
                    if Tv.value ch = 0 then None
                    else Some (child_addr node i, Tv.value ch))
                ~else_:(fun () -> None)
            with
            | Some _ as r -> r
            | None -> go (i + 1)
          end
        in
        go 0)

  (* Append (nib -> child): entry stores, then the count bump. The buggy
     shape persists everything behind one fence. *)
  let append_child t node nib child ~sid_prefix =
    let cnt = count_of t node in
    let i = Tv.value cnt in
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".child") (child_addr node i)
      (Tv.const child);
    Ctx.write_u8 t.ctx ~sid:(sid_prefix ^ ".keybyte") (key_addr node i)
      (Tv.const nib);
    if cfg.count_atomic then begin
      (* BUG (bugs 26-27, C-A): entry and count race to NVM. *)
      Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".count") (node + n_count)
        (Tv.add cnt Tv.one);
      Ctx.flush_range t.ctx ~sid:(sid_prefix ^ ".flush") node node_len;
      Ctx.fence t.ctx ~sid:(sid_prefix ^ ".fence")
    end
    else begin
      Ctx.persist t.ctx ~sid:(sid_prefix ^ ".entry_persist") (child_addr node i) 8;
      Ctx.persist t.ctx ~sid:(sid_prefix ^ ".key_persist") (key_addr node i) 1;
      Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".count") (node + n_count)
        (Tv.add cnt Tv.one);
      Ctx.persist t.ctx ~sid:(sid_prefix ^ ".count_persist") (node + n_count) 8
    end

  (* Grow a full small node into a big one (always ordered; P-ART's bug
     is in the append, not the growth). *)
  let grow t node parent_slot =
    let big = alloc_node t ~cap:node_cap_big in
    let n = min (Tv.value (count_of t node)) 16 in
    for i = 0 to n - 1 do
      let kb = Ctx.read_u8 t.ctx ~sid:"part:grow.keybyte" (key_addr node i) in
      let ch = Ctx.read_u64 t.ctx ~sid:"part:grow.child" (child_addr node i) in
      Ctx.write_u8 t.ctx ~sid:"part:grow.copy_key" (key_addr big i) kb;
      Ctx.write_u64 t.ctx ~sid:"part:grow.copy_child" (child_addr big i) ch
    done;
    Ctx.write_u64 t.ctx ~sid:"part:grow.count" (big + n_count) (Tv.const n);
    Ctx.persist t.ctx ~sid:"part:grow.persist" big node_len;
    Ctx.write_u64 t.ctx ~sid:"part:grow.swap" parent_slot (Tv.const big);
    Ctx.persist t.ctx ~sid:"part:grow.swap_persist" parent_slot 8;
    big

  (* For the write path: an entry for [nib] whose child is still null (an
     interrupted link or a delete) is reused rather than duplicated. *)
  let find_null_entry t node nib =
    let cnt = min (Tv.value (count_of t node)) 16 in
    let rec go i =
      if i >= cnt then None
      else if
        Tv.value (Ctx.read_u8 t.ctx ~sid:"part:reuse.keybyte" (key_addr node i))
        = nib
        && Tv.value
             (Ctx.read_u64 t.ctx ~sid:"part:reuse.child" (child_addr node i))
           = 0
      then Some (child_addr node i)
      else go (i + 1)
    in
    go 0

  let slot_for t k ~make =
    let k = k land key_mask in
    let rec go node parent_slot level =
      let nib = nibble k level in
      match find_entry t node nib with
      | Some (slot, child) ->
        if level = levels - 1 then Some slot
        else go child slot (level + 1)
      | None ->
        if not make then None
        else begin
          match find_null_entry t node nib with
          | Some slot ->
            if level = levels - 1 then Some slot
            else begin
              let fresh = alloc_node t ~cap:node_cap_small in
              Ctx.write_u64 t.ctx ~sid:"part:reuse.link" slot (Tv.const fresh);
              Ctx.persist t.ctx ~sid:"part:reuse.link_persist" slot 8;
              go fresh slot (level + 1)
            end
          | None ->
          let cnt = Tv.value (count_of t node) in
          let cap =
            let c = cap_of t node in
            if c = node_cap_small then node_cap_small else node_cap_big
          in
          let node, cap =
            if cnt >= cap then (grow t node parent_slot, node_cap_big)
            else (node, cap)
          in
          let sid_prefix =
            if cap = node_cap_small then "part:n4app" else "part:n16app"
          in
          let i = Tv.value (count_of t node) in
          if level = levels - 1 then begin
            (* leaf level: append a null child; the caller links the leaf *)
            append_child t node nib 0 ~sid_prefix;
            Some (child_addr node i)
          end
          else begin
            let fresh = alloc_node t ~cap:node_cap_small in
            append_child t node nib fresh ~sid_prefix;
            go fresh (child_addr node i) (level + 1)
          end
        end
    in
    go (root_node t) (Pmdk.Pool.root t.pool) 0

  let with_leaf t k ~found =
    match slot_for t k ~make:false with
    | None -> None
    | Some slot ->
      let leaf = Tv.value (Ctx.read_ptr t.ctx ~sid:"part:leaf.ptr" slot) in
      if leaf = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"part:find.key" leaf in
        Ctx.if_ t.ctx (Tv.eq key (Tv.const (k land key_mask)))
          ~then_:(fun () -> Some (found slot leaf))
          ~else_:(fun () -> None)
      end

  let write_leaf t k v =
    let leaf = Pmdk.Alloc.alloc t.pool leaf_len in
    Ctx.write_u64 t.ctx ~sid:"part:leaf.key" leaf (Tv.const (k land key_mask));
    Ctx.write_bytes t.ctx ~sid:"part:leaf.value" (leaf + 8)
      (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"part:leaf.persist" leaf leaf_len;
    leaf

  let insert t k v =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"part:insert.upsert" (leaf + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"part:insert.upsert_persist" (leaf + 8) 8)
    with
    | Some () -> Output.Ok
    | None ->
      (match slot_for t k ~make:true with
       | None -> Output.Fail "unreachable"
       | Some slot ->
         let leaf = write_leaf t k v in
         Ctx.write_u64 t.ctx ~sid:"part:insert.link" slot (Tv.const leaf);
         if cfg.count_atomic then
           (* BUG (bugs 26-27, C-A): the entry's key byte and count are
              made durable by the append's node flush, but the key-value
              link itself is left to a bare fence — metadata and KV race. *)
           Ctx.fence t.ctx ~sid:"part:insert.link_fence_only"
         else
           Ctx.persist t.ctx ~sid:"part:insert.link_persist" slot 8;
         Output.Ok)

  let update t k v =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"part:update.value" (leaf + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"part:update.persist" (leaf + 8) 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match
      with_leaf t k ~found:(fun slot _leaf ->
          Ctx.write_u64 t.ctx ~sid:"part:delete.unlink" slot Tv.zero;
          Ctx.persist t.ctx ~sid:"part:delete.persist" slot 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          strip_value
            (Tv.blob_value
               (Ctx.read_bytes t.ctx ~sid:"part:read.value" (leaf + 8) 8)))
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
