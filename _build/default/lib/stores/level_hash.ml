(* Level Hashing (Zuo et al., OSDI '18; paper rows "Level Hash", bugs
   7-23). A two-level hash table: a top level of [n] buckets and a bottom
   level of [n/2] buckets; every key hashes to two top buckets and their
   two bottom buckets. Each bucket holds [assoc] slots, each guarded by a
   one-byte token (0 = empty): the "guarded protection" pattern of §3.1.1.

   Seeded defects (all flag-controlled; [buggy] turns them all on):

   - [insert_order]   (Figure 1(b), bugs 7-8, C-O): log-free insert writes
     key/value and then the token *before* any flush, so the token can
     persist while the slot does not — a query after the crash returns a
     garbage (stale) value.
   - [update_atomic]  (Figure 1(c), bugs 9, 19-23, C-A): log-free update
     writes the new slot and flips the old and new tokens assuming the two
     one-byte stores persist atomically; crashing between them loses or
     duplicates the key.
   - [movement_order] (bugs 14-15, C-O/C-A): when all candidate buckets
     are full, one resident item is moved to its alternate bucket; the old
     token is cleared before the moved copy is durable.
   - [rehash_clear]   (bugs 17-18, C-A): in-place rehashing clears source
     tokens while the re-inserted copies are still volatile; a crash
     before the table swap loses keys from the still-live old table.
   - [extra_flush]    (P-EFL): insert re-flushes the token line.
   - Item counters live in NVM but are never flushed (P-U), as in the
     paper's 11 unpersisted bugs for this store.

   The fixed variant persists key/value before the token (write ordering),
   updates in place (one sub-line store is atomic), rehashes out of place
   and publishes the new table with a single persisted root-pointer swap. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  insert_order : bool;
  update_atomic : bool;
  movement_order : bool;
  rehash_clear : bool;
  extra_flush : bool;
}

let buggy_cfg =
  { insert_order = true; update_atomic = true; movement_order = true;
    rehash_clear = true; extra_flush = true }

let fixed_cfg =
  { insert_order = false; update_atomic = false; movement_order = false;
    rehash_clear = false; extra_flush = false }

let assoc = 4
let key_len = 8
let val_len = 16
let slot_len = key_len + val_len
let bucket_len = 8 + (assoc * slot_len)  (* 8 token bytes (4 used) + slots *)
let initial_n = 8

(* table struct *)
let t_n = 0
let t_top = 8
let t_bottom = 16
let t_items = 24
let table_len = 32

let hash1 k = (k * 0x9E3779B1) land 0x3FFFFFFF
let hash2 k = ((k * 0x85EBCA77) lxor 0x165667B1) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "level-hash"
  let pool_size = 4 * 1024 * 1024
  let supports_scan = false

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let cfg = C.cfg

  (* --- layout helpers --- *)

  let token_addr bucket j = bucket + j
  let slot_addr bucket j = bucket + 8 + (j * slot_len)
  let key_addr bucket j = slot_addr bucket j
  let val_addr bucket j = slot_addr bucket j + key_len

  let root_table t =
    let root = Pmdk.Pool.root t.pool in
    Tv.value (Ctx.read_ptr t.ctx ~sid:"lh:root.table" root)

  let table_n t table = Tv.value (Ctx.read_u64 t.ctx ~sid:"lh:table.n" (table + t_n))
  let table_top t table = Tv.value (Ctx.read_ptr t.ctx ~sid:"lh:table.top" (table + t_top))
  let table_bottom t table =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"lh:table.bottom" (table + t_bottom))

  (* Candidate buckets for a key: two top, two bottom. *)
  let candidates t table k =
    let n = table_n t table in
    let top = table_top t table and bottom = table_bottom t table in
    let nb = n / 2 in
    let b1 = top + (hash1 k mod n * bucket_len) in
    let b2 = top + (hash2 k mod n * bucket_len) in
    let b3 = bottom + (hash1 k mod nb * bucket_len) in
    let b4 = bottom + (hash2 k mod nb * bucket_len) in
    [ b1; b2; b3; b4 ]

  let alloc_table t ~n =
    let table = Pmdk.Alloc.zalloc t.pool table_len in
    let top = Pmdk.Alloc.zalloc t.pool (n * bucket_len) in
    let bottom = Pmdk.Alloc.zalloc t.pool (n / 2 * bucket_len) in
    Ctx.write_u64 t.ctx ~sid:"lh:mktable.n" (table + t_n) (Tv.const n);
    Ctx.write_u64 t.ctx ~sid:"lh:mktable.top" (table + t_top) (Tv.const top);
    Ctx.write_u64 t.ctx ~sid:"lh:mktable.bottom" (table + t_bottom) (Tv.const bottom);
    Ctx.write_u64 t.ctx ~sid:"lh:mktable.items" (table + t_items) Tv.zero;
    Ctx.persist t.ctx ~sid:"lh:mktable.persist" table table_len;
    table

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let table = alloc_table t ~n:initial_n in
    let root = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"lh:create.root" root (Tv.const table);
    Ctx.persist ctx ~sid:"lh:create.root_persist" root 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    (* Creation recovery: the pool header is valid but the root table
       pointer never became durable — finish initialization. Past this
       point level hashing has no recovery code; it relies on its write
       ordering. *)
    let root = Pmdk.Pool.root pool in
    let table = Ctx.read_u64 ctx ~sid:"lh:open.table" root in
    if not (Tv.to_bool table) then begin
      let tbl = alloc_table t ~n:initial_n in
      Ctx.write_u64 ctx ~sid:"lh:recover.root" root (Tv.const tbl);
      Ctx.persist ctx ~sid:"lh:recover.root_persist" root 8
    end;
    t

  (* Bump the in-NVM item counter; never flushed (seeded P-U). *)
  let count_items t table delta =
    let c = Ctx.read_u64 t.ctx ~sid:"lh:items.read" (table + t_items) in
    Ctx.write_u64 t.ctx ~sid:"lh:items.update" (table + t_items)
      (Tv.add c (Tv.const delta))

  (* Find the slot holding [k]: guarded reads (token, then key). Calls
     [found bucket j] under the guard; returns its result or None. *)
  let find_slot t table k ~found =
    let rec buckets = function
      | [] -> None
      | b :: rest ->
        let rec slots j =
          if j >= assoc then buckets rest
          else begin
            let tok = Ctx.read_u8 t.ctx ~sid:"lh:find.token" (token_addr b j) in
            match
              Ctx.if_ t.ctx tok
                ~then_:(fun () ->
                    let kv = Ctx.read_u64 t.ctx ~sid:"lh:find.key" (key_addr b j) in
                    Ctx.if_ t.ctx (Tv.eq kv (Tv.const k))
                      ~then_:(fun () -> Some (found b j))
                      ~else_:(fun () -> None))
                ~else_:(fun () -> None)
            with
            | Some r -> Some r
            | None -> slots (j + 1)
          end
        in
        slots 0
    in
    buckets (candidates t table k)

  let read_value t b j =
    let v = Ctx.read_bytes t.ctx ~sid:"lh:read.value" (val_addr b j) val_len in
    strip_value (Tv.blob_value v)

  (* Write a key/value pair and raise the token.

     Buggy order (Figure 1(b)): stores first, flushes after the token
     store, so the token can persist ahead of the slot.
     Fixed order: slot persisted before the token is written. *)
  let write_slot t b j k v ~sid_prefix =
    let sid s = sid_prefix ^ s in
    Ctx.write_u64 t.ctx ~sid:(sid ".key") (key_addr b j) (Tv.const k);
    Ctx.write_bytes t.ctx ~sid:(sid ".value") (val_addr b j)
      (Tv.blob (pad_value v));
    if cfg.insert_order then begin
      Ctx.write_u8 t.ctx ~sid:(sid ".token") (token_addr b j) Tv.one;
      Ctx.flush_range t.ctx ~sid:(sid ".flush_slot") (slot_addr b j) slot_len;
      Ctx.fence t.ctx ~sid:(sid ".fence1");
      Ctx.flush t.ctx ~sid:(sid ".flush_token") (token_addr b j);
      if cfg.extra_flush then
        (* BUG (P-EFL): the token line was just flushed. *)
        Ctx.flush t.ctx ~sid:(sid ".extra_flush") (token_addr b j);
      Ctx.fence t.ctx ~sid:(sid ".fence2")
    end
    else begin
      Ctx.persist t.ctx ~sid:(sid ".persist_slot") (slot_addr b j) slot_len;
      Ctx.write_u8 t.ctx ~sid:(sid ".token") (token_addr b j) Tv.one;
      Ctx.persist t.ctx ~sid:(sid ".persist_token") (token_addr b j) 1
    end

  let try_insert_at t table k v ~sid_prefix =
    let rec buckets = function
      | [] -> false
      | b :: rest ->
        let rec slots j =
          if j >= assoc then buckets rest
          else begin
            let tok = Ctx.read_u8 t.ctx ~sid:"lh:insert.probe_token" (token_addr b j) in
            let empty =
              Ctx.if_ t.ctx tok ~then_:(fun () -> false) ~else_:(fun () -> true)
            in
            if empty then begin
              Ctx.with_guard t.ctx (Tv.taint tok) (fun () ->
                  write_slot t b j k v ~sid_prefix);
              count_items t table 1;
              true
            end
            else slots (j + 1)
          end
        in
        slots 0
    in
    buckets (candidates t table k)

  (* Bottom-to-top movement: evict slot 0 of the first candidate bucket to
     its alternate bucket to make room. Only present in the buggy
     configuration (the fixed variant goes straight to rehash). *)
  let try_movement t table k =
    match candidates t table k with
    | [] -> false
    | b :: _ ->
      let j = 0 in
      let vic_k = Tv.value (Ctx.read_u64 t.ctx ~sid:"lh:move.vic_key" (key_addr b j)) in
      let vic_v =
        Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"lh:move.vic_val" (val_addr b j) val_len)
      in
      let alts = List.filter (fun b' -> b' <> b) (candidates t table vic_k) in
      let rec place = function
        | [] -> false
        | b' :: rest ->
          let rec slots jj =
            if jj >= assoc then place rest
            else begin
              let tok =
                Ctx.read_u8 t.ctx ~sid:"lh:move.probe_token" (token_addr b' jj)
              in
              if not (Tv.to_bool tok) then begin
                (* BUG (movement_order, C-O/C-A): the old token is cleared
                   before the moved copy is durable. *)
                Ctx.write_u64 t.ctx ~sid:"lh:move.key" (key_addr b' jj)
                  (Tv.const vic_k);
                Ctx.write_bytes t.ctx ~sid:"lh:move.value" (val_addr b' jj)
                  (Tv.blob vic_v);
                Ctx.write_u8 t.ctx ~sid:"lh:move.new_token" (token_addr b' jj)
                  Tv.one;
                Ctx.write_u8 t.ctx ~sid:"lh:move.clear_old" (token_addr b j)
                  Tv.zero;
                Ctx.flush_range t.ctx ~sid:"lh:move.flush_slot"
                  (slot_addr b' jj) slot_len;
                Ctx.flush t.ctx ~sid:"lh:move.flush_new_token" (token_addr b' jj);
                Ctx.flush t.ctx ~sid:"lh:move.flush_old_token" (token_addr b j);
                Ctx.fence t.ctx ~sid:"lh:move.fence";
                true
              end
              else slots (jj + 1)
            end
          in
          slots 0
      in
      place alts

  (* Rehash into a table twice the size.

     Buggy: old tokens are cleared as items are copied (rehash_clear); a
     crash before the root swap resumes on the old table with holes.
     Fixed: the old table is left untouched and the new table is published
     with one persisted root-pointer store. *)
  let rehash t =
    let table = root_table t in
    let n = table_n t table in
    let new_table = alloc_table t ~n:(2 * n) in
    let copy_bucket b =
      for j = 0 to assoc - 1 do
        let tok = Ctx.read_u8 t.ctx ~sid:"lh:rehash.token" (token_addr b j) in
        Ctx.when_ t.ctx tok (fun () ->
            let k = Tv.value (Ctx.read_u64 t.ctx ~sid:"lh:rehash.key" (key_addr b j)) in
            let v = read_value t b j in
            ignore (try_insert_at t new_table k v ~sid_prefix:"lh:rehash.ins");
            if cfg.rehash_clear then
              (* BUG (C-A): the source token is cleared while the copy in
                 the new table may still be volatile and the root still
                 points at the old table. *)
              Ctx.write_u8 t.ctx ~sid:"lh:rehash.clear_old" (token_addr b j)
                Tv.zero)
      done
    in
    let top = table_top t table and bottom = table_bottom t table in
    for i = 0 to n - 1 do copy_bucket (top + (i * bucket_len)) done;
    for i = 0 to (n / 2) - 1 do copy_bucket (bottom + (i * bucket_len)) done;
    if cfg.rehash_clear then
      Ctx.fence t.ctx ~sid:"lh:rehash.clear_fence";
    let root = Pmdk.Pool.root t.pool in
    Ctx.write_u64 t.ctx ~sid:"lh:rehash.swap" root (Tv.const new_table);
    Ctx.persist t.ctx ~sid:"lh:rehash.swap_persist" root 8

  let insert t k v =
    let table0 = root_table t in
    match find_slot t table0 k ~found:(fun b j -> (b, j)) with
    | Some (b, j) ->
      (* Upsert: the key exists, overwrite in place. *)
      Ctx.write_bytes t.ctx ~sid:"lh:insert.upsert" (val_addr b j)
        (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"lh:insert.upsert_persist" (val_addr b j) val_len;
      Output.Ok
    | None ->
    let rec attempt tries =
      if tries > 3 then Output.Fail "full"
      else begin
        let table = root_table t in
        if try_insert_at t table k v ~sid_prefix:"lh:insert" then Output.Ok
        else if cfg.movement_order && try_movement t table k then attempt (tries + 1)
        else begin
          rehash t;
          attempt (tries + 1)
        end
      end
    in
    attempt 0

  let update t k v =
    let table = root_table t in
    let target = find_slot t table k ~found:(fun b j -> (b, j)) in
    match target with
    | None -> Output.Not_found
    | Some (b, j) ->
      if cfg.update_atomic then begin
        (* Opportunistic log-free update (Figure 1(c)): copy into an empty
           slot of the same bucket and flip the two tokens; the flushes
           come after both token stores. *)
        let rec empty_slot jj =
          if jj >= assoc then None
          else begin
            let tok = Ctx.read_u8 t.ctx ~sid:"lh:update.probe_token" (token_addr b jj) in
            if not (Tv.to_bool tok) then Some jj else empty_slot (jj + 1)
          end
        in
        match empty_slot 0 with
        | Some jj ->
          Ctx.write_u64 t.ctx ~sid:"lh:update.key" (key_addr b jj) (Tv.const k);
          Ctx.write_bytes t.ctx ~sid:"lh:update.value" (val_addr b jj)
            (Tv.blob (pad_value v));
          Ctx.write_u8 t.ctx ~sid:"lh:update.clear_old" (token_addr b j) Tv.zero;
          Ctx.write_u8 t.ctx ~sid:"lh:update.set_new" (token_addr b jj) Tv.one;
          Ctx.flush_range t.ctx ~sid:"lh:update.flush_slot" (slot_addr b jj) slot_len;
          Ctx.flush t.ctx ~sid:"lh:update.flush_tokens" (token_addr b j);
          Ctx.flush t.ctx ~sid:"lh:update.flush_tokens2" (token_addr b jj);
          Ctx.fence t.ctx ~sid:"lh:update.fence";
          Output.Ok
        | None ->
          (* In-place overwrite without ordering care. *)
          Ctx.write_bytes t.ctx ~sid:"lh:update.inplace" (val_addr b j)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"lh:update.inplace_persist" (val_addr b j) val_len;
          Output.Ok
      end
      else begin
        Ctx.write_bytes t.ctx ~sid:"lh:update.inplace" (val_addr b j)
          (Tv.blob (pad_value v));
        Ctx.persist t.ctx ~sid:"lh:update.inplace_persist" (val_addr b j) val_len;
        Output.Ok
      end

  let delete t k =
    let table = root_table t in
    match find_slot t table k ~found:(fun b j -> (b, j)) with
    | None -> Output.Not_found
    | Some (b, j) ->
      Ctx.write_u8 t.ctx ~sid:"lh:delete.token" (token_addr b j) Tv.zero;
      Ctx.persist t.ctx ~sid:"lh:delete.persist" (token_addr b j) 1;
      count_items t table (-1);
      Output.Ok

  let query t k =
    let table = root_table t in
    match find_slot t table k ~found:(fun b j -> read_value t b j) with
    | None -> Output.Not_found
    | Some v -> Output.Found v

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
