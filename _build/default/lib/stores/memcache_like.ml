(* pmem-Memcached (paper row "Memcached", bug 47 + 29 unpersisted
   counters). Memcached's PMDK port keeps only the item hash table in NVM
   — the rest of the server state is volatile — but the port also left a
   large block of statistics counters in the persistent heap without ever
   flushing them: the paper's 29 P-U findings. We reproduce both: a
   chained item table plus a stats page of NVM counters bumped on every
   command and never flushed.

   Seeded defect ([link_noflush], bug 47, items.c:538, C-O "missing
   persistence primitives"): linking a fresh item into its bucket chain
   persists the chain head but never the item itself. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { link_noflush : bool }

let buggy_cfg = { link_noflush = true }
let fixed_cfg = { link_noflush = false }

let n_buckets = 64
let val_len = 8

let i_key = 0
let i_val = 8
let i_next = 16
let item_len = 24

(* The stats page: one 8-byte counter per field, bumped in ops and never
   flushed — each is a distinct P-U site, like the paper's 29. *)
let stat_names =
  [ "cmd_get"; "cmd_set"; "cmd_delete"; "cmd_update"; "get_hits";
    "get_misses"; "delete_hits"; "delete_misses"; "update_hits";
    "update_misses"; "set_hits"; "total_items"; "curr_items"; "curr_bytes";
    "bytes_read"; "bytes_written"; "expired_unfetched"; "evicted";
    "evicted_unfetched"; "reclaimed"; "touch_hits"; "touch_misses";
    "incr_hits"; "incr_misses"; "decr_hits"; "decr_misses"; "cas_hits";
    "cas_misses"; "conn_yields" ]

let hash k = (k * 0x9E3779B1) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "memcached"
  let pool_size = 4 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: buckets ptr(8) | stats base(8) *)

  let create_state ctx pool =
    let b = Pmdk.Alloc.zalloc pool (n_buckets * 8) in
    let stats = Pmdk.Alloc.zalloc pool (List.length stat_names * 8) in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"mc:create.stats" (r + 8) (Tv.const stats);
    Ctx.persist ctx ~sid:"mc:create.stats_persist" (r + 8) 8;
    Ctx.write_u64 ctx ~sid:"mc:create.buckets" r (Tv.const b);
    Ctx.persist ctx ~sid:"mc:create.buckets_persist" r 8

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    create_state ctx pool;
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"mc:open.buckets" (Pmdk.Pool.root pool)))
    then create_state ctx pool;
    { ctx; pool }

  let stat_index n =
    let rec go i = function
      | [] -> 0
      | x :: rest -> if String.equal x n then i else go (i + 1) rest
    in
    go 0 stat_names

  (* Bump an NVM stats counter; never flushed (P-U, one site per stat). *)
  let bump t stat =
    let r = Pmdk.Pool.root t.pool in
    let base = Tv.value (Ctx.read_u64 t.ctx ~sid:"mc:stats.base" (r + 8)) in
    let a = base + (stat_index stat * 8) in
    let c = Ctx.read_u64 t.ctx ~sid:("mc:stats.read_" ^ stat) a in
    Ctx.write_u64 t.ctx ~sid:("mc:stats." ^ stat) a (Tv.add c Tv.one)

  let buckets t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"mc:root.buckets" (Pmdk.Pool.root t.pool))

  let bucket_addr t k = buckets t + (hash k mod n_buckets * 8)

  let find t k =
    let rec go slot =
      let e = Tv.value (Ctx.read_ptr t.ctx ~sid:"mc:find.item" slot) in
      if e = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"mc:find.key" (e + i_key) in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () -> Some (slot, e))
            ~else_:(fun () -> None)
        with
        | Some r -> Some r
        | None -> go (e + i_next)
      end
    in
    go (bucket_addr t k)

  let insert t k v =
    bump t "cmd_set";
    bump t "bytes_read";
    match find t k with
    | Some (_, e) ->
      bump t "set_hits";
      Ctx.write_bytes t.ctx ~sid:"mc:insert.upsert" (e + i_val)
        (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"mc:insert.upsert_persist" (e + i_val) 8;
      Output.Ok
    | None ->
      bump t "total_items";
      bump t "curr_items";
      bump t "curr_bytes";
      let slot = bucket_addr t k in
      let head = Ctx.read_u64 t.ctx ~sid:"mc:insert.head" slot in
      let e = Pmdk.Alloc.zalloc t.pool item_len in
      Ctx.write_u64 t.ctx ~sid:"mc:insert.key" (e + i_key) (Tv.const k);
      Ctx.write_bytes t.ctx ~sid:"mc:insert.value" (e + i_val)
        (Tv.blob (pad_value v));
      Ctx.write_u64 t.ctx ~sid:"mc:insert.next" (e + i_next) head;
      if not cfg.link_noflush then
        Ctx.persist t.ctx ~sid:"mc:insert.item_persist" e item_len;
      (* BUG when [link_noflush] (bug 47, C-O): the head below is durable
         while the item it references is not. *)
      Ctx.write_u64 t.ctx ~sid:"mc:insert.link" slot (Tv.const e);
      Ctx.persist t.ctx ~sid:"mc:insert.link_persist" slot 8;
      Output.Ok

  let update t k v =
    bump t "cmd_update";
    match find t k with
    | Some (_, e) ->
      bump t "update_hits";
      bump t "bytes_written";
      Ctx.write_bytes t.ctx ~sid:"mc:update.value" (e + i_val)
        (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"mc:update.persist" (e + i_val) 8;
      Output.Ok
    | None ->
      bump t "update_misses";
      Output.Not_found

  let delete t k =
    bump t "cmd_delete";
    match find t k with
    | Some (slot, e) ->
      bump t "delete_hits";
      bump t "evicted";
      bump t "reclaimed";
      let nxt = Ctx.read_u64 t.ctx ~sid:"mc:delete.next" (e + i_next) in
      Ctx.write_u64 t.ctx ~sid:"mc:delete.unlink" slot nxt;
      Ctx.persist t.ctx ~sid:"mc:delete.unlink_persist" slot 8;
      Output.Ok
    | None ->
      bump t "delete_misses";
      Output.Not_found

  let query t k =
    bump t "cmd_get";
    match find t k with
    | Some (_, e) ->
      bump t "get_hits";
      bump t "bytes_written";
      Output.Found
        (strip_value
           (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"mc:read.value" (e + i_val) 8)))
    | None ->
      bump t "get_misses";
      Output.Not_found

  (* Exercise the remaining counter sites deterministically so the paper's
     full P-U surface appears in the trace (Memcached touches these on
     maintenance paths). *)
  let background t k =
    if k land 7 = 0 then begin
      bump t "expired_unfetched";
      bump t "evicted_unfetched";
      bump t "touch_hits";
      bump t "touch_misses";
      bump t "incr_hits";
      bump t "incr_misses";
      bump t "decr_hits";
      bump t "decr_misses";
      bump t "cas_hits";
      bump t "cas_misses";
      bump t "conn_yields"
    end

  let exec t op =
    match op with
    | Op.Insert (k, v) -> background t k; insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
