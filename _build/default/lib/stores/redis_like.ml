(* pmem-Redis (paper row "Redis"): a transactional dict port. The paper
   found no correctness or performance bugs in it — but §7.6 discusses a
   *benign* pattern that made the annotation-based tools report a false
   positive: after allocating the (already zeroed) root object, Redis
   zeroes it again *outside* any transaction. The unprotected store
   violates a likely-atomicity condition, Witcher tests it, and output
   equivalence shows no divergence (old value and new value are both
   zero), pruning the false positive.

   We reproduce the dict (chained, fully logged mutations) and the benign
   unprotected zeroing store at creation, labelled "redis:init.zero_root"
   so the §7.6 comparison bench can point at it. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

let n_buckets = 128
let val_len = 8

let e_key = 0
let e_val = 8
let e_next = 16
let entry_len = 24

let hash k = (k * 0x85EBCA77) land 0x3FFFFFFF

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module M = struct
  let name = "redis"
  let pool_size = 4 * 1024 * 1024
  let supports_scan = false

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let create_dict ctx pool =
    let b = Pmdk.Alloc.zalloc pool (n_buckets * 8) in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"redis:create.dict" r (Tv.const b);
    Ctx.persist ctx ~sid:"redis:create.dict_persist" r 8

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    (* Benign §7.6 pattern: re-zero the freshly zeroed root object,
       outside any transaction. Old and new values are both zero, so no
       crash state can diverge — but an annotation-based checker flags
       this unprotected NVM update as a bug. *)
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"redis:init.zero_root" r Tv.zero;
    Ctx.write_u64 ctx ~sid:"redis:init.zero_root2" (r + 8) Tv.zero;
    Ctx.persist ctx ~sid:"redis:init.zero_persist" r 16;
    create_dict ctx pool;
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    Pmdk.Tx.recover pool;
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"redis:open.dict" (Pmdk.Pool.root pool)))
    then create_dict ctx pool;
    { ctx; pool }

  let bucket_addr t k =
    let b =
      Tv.value (Ctx.read_ptr t.ctx ~sid:"redis:root.dict" (Pmdk.Pool.root t.pool))
    in
    b + (hash k mod n_buckets * 8)

  let find t k =
    let rec go slot =
      let e = Tv.value (Ctx.read_ptr t.ctx ~sid:"redis:find.entry" slot) in
      if e = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"redis:find.key" (e + e_key) in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () -> Some (slot, e))
            ~else_:(fun () -> None)
        with
        | Some r -> Some r
        | None -> go (e + e_next)
      end
    in
    go (bucket_addr t k)

  let insert t k v =
    match find t k with
    | Some (_, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (e + e_val) 8;
          Ctx.write_bytes t.ctx ~sid:"redis:insert.upsert" (e + e_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None ->
      Pmdk.Tx.run t.pool (fun tx ->
          let slot = bucket_addr t k in
          let head = Ctx.read_u64 t.ctx ~sid:"redis:insert.head" slot in
          let e = Pmdk.Alloc.zalloc t.pool entry_len in
          Ctx.write_u64 t.ctx ~sid:"redis:insert.key" (e + e_key) (Tv.const k);
          Ctx.write_bytes t.ctx ~sid:"redis:insert.value" (e + e_val)
            (Tv.blob (pad_value v));
          Ctx.write_u64 t.ctx ~sid:"redis:insert.next" (e + e_next) head;
          Ctx.persist t.ctx ~sid:"redis:insert.persist" e entry_len;
          Pmdk.Tx.add_range tx slot 8;
          Ctx.write_u64 t.ctx ~sid:"redis:insert.link" slot (Tv.const e));
      Output.Ok

  let update t k v =
    match find t k with
    | Some (_, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (e + e_val) 8;
          Ctx.write_bytes t.ctx ~sid:"redis:update.value" (e + e_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match find t k with
    | Some (slot, e) ->
      Pmdk.Tx.run t.pool (fun tx ->
          let nxt = Ctx.read_u64 t.ctx ~sid:"redis:delete.next" (e + e_next) in
          Pmdk.Tx.add_range tx slot 8;
          Ctx.write_u64 t.ctx ~sid:"redis:delete.unlink" slot nxt);
      (* free only after the commit is durable (tx_free semantics) *)
      Pmdk.Alloc.free t.pool e;
      Output.Ok
    | None -> Output.Not_found

  let query t k =
    match find t k with
    | Some (_, e) ->
      Output.Found
        (strip_value
           (Tv.blob_value
              (Ctx.read_bytes t.ctx ~sid:"redis:read.value" (e + e_val) 8)))
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make () : Witcher.Store_intf.instance = (module M)
let buggy = make
let fixed = make
