(* WOART — Write-Optimal Adaptive Radix Tree (Lee et al., FAST '17; paper
   row "WOART", bug 2). Like WORT but with adaptive nodes: a small node
   holds up to four (nibble, child) entries and grows into a full
   16-fanout node when it overflows.

   Seeded defect:
   - [grow_order] (bug 2, C-A "atomicity in node split"): growing a
     node-4 into a node-16 publishes the new node in the parent *before*
     the node-16's contents are durable; a crash leaves the parent
     pointing at a half-initialized node, losing the whole subtree.

   The fixed variant persists the node-16 before the atomic parent swap
   (the old node-4 is left untouched, so a crash before the swap is a
   clean rollback). Entry insertion into a node-4 is guardian-ordered:
   the child pointer is persisted before the key byte that makes the
   entry visible. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { grow_order : bool }

let buggy_cfg = { grow_order = true }
let fixed_cfg = { grow_order = false }

let bits = 4
let levels = 4
let fanout = 16
let key_mask = (1 lsl (bits * levels)) - 1
let val_len = 8

(* node4: type(8) | keybytes(8: 4 used, 0xff = empty) | 4 children *)
let n4_len = 16 + (4 * 8)
(* node16: type(8) | 16 children indexed by nibble *)
let n16_len = 8 + (fanout * 8)
let leaf_len = 16

let type_n4 = 4
let type_n16 = 16

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "woart"
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let nibble k level = (k lsr (bits * (levels - 1 - level))) land (fanout - 1)

  let node_type t node =
    Tv.value (Ctx.read_u64 t.ctx ~sid:"woart:node.type" node)

  let n4_keybyte_addr node i = node + 8 + i
  let n4_child_addr node i = node + 16 + (i * 8)
  let n16_child_addr node i = node + 8 + (i * 8)

  let alloc_n4 t =
    let node = Pmdk.Alloc.zalloc t.pool n4_len in
    Ctx.write_u64 t.ctx ~sid:"woart:mkn4.type" node (Tv.const type_n4);
    (* empty key bytes are 0xff *)
    Ctx.write_bytes t.ctx ~sid:"woart:mkn4.keys" (node + 8)
      (Tv.blob (String.make 8 '\xff'));
    Ctx.persist t.ctx ~sid:"woart:mkn4.persist" node 16;
    node

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let root = alloc_n4 t in
    let r = Pmdk.Pool.root pool in
    Ctx.write_u64 ctx ~sid:"woart:create.root" r (Tv.const root);
    Ctx.persist ctx ~sid:"woart:create.root_persist" r 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    let r = Pmdk.Pool.root pool in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"woart:open.root" r)) then begin
      let root = alloc_n4 t in
      Ctx.write_u64 ctx ~sid:"woart:recover.root" r (Tv.const root);
      Ctx.persist ctx ~sid:"woart:recover.root_persist" r 8
    end;
    t

  let root_node t =
    Tv.value (Ctx.read_ptr t.ctx ~sid:"woart:root" (Pmdk.Pool.root t.pool))

  (* Child slot for nibble [nib] in a node-4: scan the key bytes (guarded
     by each byte read). Returns the child slot address, or None. *)
  let n4_find t node nib =
    let rec go i =
      if i >= 4 then None
      else begin
        let kb = Ctx.read_u8 t.ctx ~sid:"woart:n4.keybyte" (n4_keybyte_addr node i) in
        Ctx.if_ t.ctx (Tv.eq kb (Tv.const nib))
          ~then_:(fun () -> Some (n4_child_addr node i))
          ~else_:(fun () -> go (i + 1))
      end
    in
    go 0

  let n4_free_slot t node =
    let rec go i =
      if i >= 4 then None
      else begin
        let kb = Ctx.read_u8 t.ctx ~sid:"woart:n4.probe" (n4_keybyte_addr node i) in
        if Tv.value kb = 0xff then Some i else go (i + 1)
      end
    in
    go 0

  (* Add (nib -> child) to a node-4 slot: child pointer first (durable),
     then the guardian key byte. *)
  let n4_add t node i nib child =
    Ctx.write_u64 t.ctx ~sid:"woart:n4add.child" (n4_child_addr node i)
      (Tv.const child);
    Ctx.persist t.ctx ~sid:"woart:n4add.child_persist" (n4_child_addr node i) 8;
    Ctx.write_u8 t.ctx ~sid:"woart:n4add.keybyte" (n4_keybyte_addr node i)
      (Tv.const nib);
    Ctx.persist t.ctx ~sid:"woart:n4add.keybyte_persist"
      (n4_keybyte_addr node i) 1

  (* Grow a full node-4 into a node-16 and swap it into [parent_slot]. *)
  let grow t node parent_slot =
    let n16 = Pmdk.Alloc.zalloc t.pool n16_len in
    Ctx.write_u64 t.ctx ~sid:"woart:grow.type" n16 (Tv.const type_n16);
    for i = 0 to 3 do
      let kb = Ctx.read_u8 t.ctx ~sid:"woart:grow.keybyte" (n4_keybyte_addr node i) in
      Ctx.when_ t.ctx (Tv.ne kb (Tv.const 0xff)) (fun () ->
          let child = Ctx.read_u64 t.ctx ~sid:"woart:grow.child" (n4_child_addr node i) in
          Ctx.write_u64 t.ctx ~sid:"woart:grow.copy"
            (n16_child_addr n16 (Tv.value kb)) child)
    done;
    if cfg.grow_order then
      (* BUG (bug 2, C-A): the parent is repointed while the node-16's
         entries may still be volatile. *)
      Ctx.fence t.ctx ~sid:"woart:grow.fence_only"
    else
      Ctx.persist t.ctx ~sid:"woart:grow.persist" n16 n16_len;
    Ctx.write_u64 t.ctx ~sid:"woart:grow.swap" parent_slot (Tv.const n16);
    Ctx.persist t.ctx ~sid:"woart:grow.swap_persist" parent_slot 8;
    n16

  (* Walk to the leaf slot for [k]. [make] allocates missing interior
     nodes (fresh node-4s) and grows full ones. *)
  let slot_for t k ~make =
    let k = k land key_mask in
    let rec go node parent_slot level =
      let nib = nibble k level in
      let ty = node_type t node in
      let slot =
        if ty = type_n16 then Some (n16_child_addr node nib)
        else
          match n4_find t node nib with
          | Some s -> Some s
          | None ->
            if not make then None
            else begin
              match n4_free_slot t node with
              | Some i ->
                (* Claim the key byte; the child slot still holds the null
                   sentinel, which every reader treats as absent, so the
                   claim is safe to persist before the child is linked. *)
                Ctx.write_u8 t.ctx ~sid:"woart:n4.claim"
                  (n4_keybyte_addr node i) (Tv.const nib);
                Ctx.persist t.ctx ~sid:"woart:n4.claim_persist"
                  (n4_keybyte_addr node i) 1;
                Some (n4_child_addr node i)
              | None ->
                let n16 = grow t node parent_slot in
                Some (n16_child_addr n16 nib)
            end
      in
      match slot with
      | None -> None
      | Some slot ->
        if level = levels - 1 then Some slot
        else begin
          let child = Tv.value (Ctx.read_ptr t.ctx ~sid:"woart:walk.child" slot) in
          if child <> 0 then go child slot (level + 1)
          else if not make then None
          else begin
            let fresh = alloc_n4 t in
            Ctx.write_u64 t.ctx ~sid:"woart:link.child" slot (Tv.const fresh);
            Ctx.persist t.ctx ~sid:"woart:link.persist" slot 8;
            go fresh slot (level + 1)
          end
        end
    in
    go (root_node t) (Pmdk.Pool.root t.pool) 0

  let with_leaf t k ~found =
    match slot_for t k ~make:false with
    | None -> None
    | Some slot ->
      let leaf = Tv.value (Ctx.read_ptr t.ctx ~sid:"woart:leaf.ptr" slot) in
      if leaf = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"woart:find.key" leaf in
        Ctx.if_ t.ctx (Tv.eq key (Tv.const (k land key_mask)))
          ~then_:(fun () -> Some (found slot leaf))
          ~else_:(fun () -> None)
      end

  let insert t k v =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"woart:insert.upsert" (leaf + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"woart:insert.upsert_persist" (leaf + 8) 8)
    with
    | Some () -> Output.Ok
    | None ->
      (match slot_for t k ~make:true with
       | None -> Output.Fail "unreachable"
       | Some slot ->
         let leaf = Pmdk.Alloc.alloc t.pool leaf_len in
         Ctx.write_u64 t.ctx ~sid:"woart:leaf.key" leaf
           (Tv.const (k land key_mask));
         Ctx.write_bytes t.ctx ~sid:"woart:leaf.value" (leaf + 8)
           (Tv.blob (pad_value v));
         Ctx.persist t.ctx ~sid:"woart:leaf.persist" leaf leaf_len;
         Ctx.write_u64 t.ctx ~sid:"woart:insert.link" slot (Tv.const leaf);
         Ctx.persist t.ctx ~sid:"woart:insert.link_persist" slot 8;
         Output.Ok)

  let update t k v =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          Ctx.write_bytes t.ctx ~sid:"woart:update.value" (leaf + 8)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"woart:update.persist" (leaf + 8) 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let delete t k =
    match
      with_leaf t k ~found:(fun slot _leaf ->
          Ctx.write_u64 t.ctx ~sid:"woart:delete.unlink" slot Tv.zero;
          Ctx.persist t.ctx ~sid:"woart:delete.persist" slot 8)
    with
    | Some () -> Output.Ok
    | None -> Output.Not_found

  let query t k =
    match
      with_leaf t k ~found:(fun _slot leaf ->
          strip_value
            (Tv.blob_value
               (Ctx.read_bytes t.ctx ~sid:"woart:read.value" (leaf + 8) 8)))
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
