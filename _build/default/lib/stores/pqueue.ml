(* Persistent queue — the PMDK example of §7.7 (non-key-value programs).
   A ring buffer with persistent head/tail cursors. The paper found no
   bugs in the queue; it serves as the second non-KV target for the
   extended template driver.

   Operation mapping: Insert enqueues the value, Delete dequeues (and
   returns the dequeued value), Query peeks at the front, Scan is the
   example's "print" operation listing the live contents front-to-back.

   Crash consistency: a slot is persisted before the tail cursor that
   makes it visible (the cursor is the guardian); dequeue only moves the
   head cursor. Both cursor stores are single atomic words. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

let capacity = 1024
let val_len = 8

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module M = struct
  let name = "p-queue"
  let pool_size = 2 * 1024 * 1024
  let supports_scan = true

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  (* root object: head(8) | tail(8); buffer allocated behind it *)

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let buf = Pmdk.Alloc.zalloc pool (capacity * val_len) in
    let r = Pmdk.Pool.root pool in
    (* stash the buffer pointer right after the root object fields by
       convention: head | tail live in the root object, the buffer is the
       first allocation, so its address is deterministic; we keep it in
       the pool header's root_size slot-free area via a third word *)
    ignore buf;
    Ctx.persist ctx ~sid:"pq:create.persist" r 16;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    { ctx; pool }

  (* The buffer is the first allocation after the 16-byte root object. *)
  let buf_addr t =
    Pmdk.Pool.root t.pool + 16 + Pmdk.Layout.block_header

  let head t = Ctx.read_u64 t.ctx ~sid:"pq:head" (Pmdk.Pool.root t.pool)
  let tail t = Ctx.read_u64 t.ctx ~sid:"pq:tail" (Pmdk.Pool.root t.pool + 8)

  let slot_addr t pos = buf_addr t + (pos mod capacity * val_len)

  let enqueue t v =
    let h = head t and tl = tail t in
    if Tv.value tl - Tv.value h >= capacity then Output.Fail "full"
    else begin
      let a = slot_addr t (Tv.value tl) in
      Ctx.write_bytes t.ctx ~sid:"pq:enqueue.slot" a (Tv.blob (pad_value v));
      Ctx.persist t.ctx ~sid:"pq:enqueue.slot_persist" a val_len;
      Ctx.write_u64 t.ctx ~sid:"pq:enqueue.tail" (Pmdk.Pool.root t.pool + 8)
        (Tv.add tl Tv.one);
      Ctx.persist t.ctx ~sid:"pq:enqueue.tail_persist"
        (Pmdk.Pool.root t.pool + 8) 8;
      Output.Ok
    end

  let front t ~found =
    let h = head t and tl = tail t in
    Ctx.if_ t.ctx (Tv.lt h tl)
      ~then_:(fun () ->
          let a = slot_addr t (Tv.value h) in
          let v =
            strip_value
              (Tv.blob_value
                 (Ctx.read_bytes t.ctx ~sid:"pq:front.slot" a val_len))
          in
          Some (found h v))
      ~else_:(fun () -> None)

  let dequeue t =
    match
      front t ~found:(fun h v ->
          Ctx.write_u64 t.ctx ~sid:"pq:dequeue.head" (Pmdk.Pool.root t.pool)
            (Tv.add h Tv.one);
          Ctx.persist t.ctx ~sid:"pq:dequeue.persist" (Pmdk.Pool.root t.pool) 8;
          v)
    with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let peek t =
    match front t ~found:(fun _ v -> v) with
    | Some v -> Output.Found v
    | None -> Output.Not_found

  let print t =
    let h = head t and tl = tail t in
    Ctx.with_guard t.ctx (Taint.union (Tv.taint h) (Tv.taint tl)) (fun () ->
        let out = ref [] in
        for pos = Tv.value tl - 1 downto Tv.value h do
          let a = slot_addr t pos in
          out :=
            strip_value
              (Tv.blob_value
                 (Ctx.read_bytes t.ctx ~sid:"pq:print.slot" a val_len))
            :: !out
        done;
        Output.Vals !out)

  let exec t op =
    match op with
    | Op.Insert (_, v) -> enqueue t v
    | Op.Update (_, v) -> enqueue t v
    | Op.Delete _ -> dequeue t
    | Op.Query _ -> peek t
    | Op.Scan _ -> print t
end

let make () : Witcher.Store_intf.instance = (module M)
let buggy = make
let fixed = make
