(* PMDK example RB-Tree (paper rows "RB-Tree" and "RB-Tree-Aga", bugs
   41-43). A red-black tree whose every mutation runs in a PMDK undo-log
   transaction; crash consistency therefore hinges on logging each node
   *before* modifying it. Deletion tombstones the value (a re-insert
   revives the node), so the rotation-heavy path is insert fixup.

   Node: red(8) | left(8) | right(8) | parent(8) | key(8) | value(8B).

   Seeded defects (all C-A "missing logging in a transaction"):
   - [rotate_unlogged]  (bug 41, RB-Tree): rotations relink three nodes
     but log only the pivot — the child and parent pointer updates of the
     other two are unlogged, so recovery leaves a half-rotated tree.
   - [fixup_unlogged]   (bug 42, RB-Tree-Aga): the recolor writes in the
     insert fixup are unlogged.
   - [link_unlogged]    (bug 43, RB-Tree-Aga): the parent link of a newly
     attached node is written without logging the parent. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = {
  rotate_unlogged : bool;
  fixup_unlogged : bool;
  link_unlogged : bool;
}

let rb_cfg = { rotate_unlogged = true; fixup_unlogged = false; link_unlogged = false }
let aga_cfg = { rotate_unlogged = false; fixup_unlogged = true; link_unlogged = true }
let fixed_cfg = { rotate_unlogged = false; fixup_unlogged = false; link_unlogged = false }

let val_len = 8

let f_red = 0
let f_left = 8
let f_right = 16
let f_parent = 24
let f_key = 32
let f_val = 40
let node_len = 48

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg val name : string end) = struct
  let name = C.name
  let pool_size = 8 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let root_slot t = Pmdk.Pool.root t.pool

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    { ctx; pool }

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    Pmdk.Tx.recover pool;
    { ctx; pool }

  let get t ~sid n off = Tv.value (Ctx.read_u64 t.ctx ~sid (n + off))
  let getp t ~sid n off = Tv.value (Ctx.read_ptr t.ctx ~sid (n + off))
  let set t ~sid n off v = Ctx.write_u64 t.ctx ~sid (n + off) (Tv.const v)

  let log_field t tx n off ~skip =
    ignore t;
    if not skip then Pmdk.Tx.add_range tx (n + off) 8

  let root t = getp t ~sid:"rb:root" (root_slot t) 0

  (* Replace the child pointer of [parent] (or the root slot) that points
     at [old] with [next]. *)
  let replace_child t tx parent old next ~skip_log =
    if parent = 0 then begin
      if not skip_log then Pmdk.Tx.add_range tx (root_slot t) 8;
      set t ~sid:"rb:relink.root" (root_slot t) 0 next
    end
    else if getp t ~sid:"rb:relink.left" parent f_left = old then begin
      log_field t tx parent f_left ~skip:skip_log;
      set t ~sid:"rb:relink.set_left" parent f_left next
    end
    else begin
      log_field t tx parent f_right ~skip:skip_log;
      set t ~sid:"rb:relink.set_right" parent f_right next
    end

  (* Left rotation around [x]; [rotate_unlogged] logs only x itself. *)
  let rotate_left t tx x =
    let y = getp t ~sid:"rb:rot.y" x f_right in
    let yl = getp t ~sid:"rb:rot.yl" y f_left in
    let p = getp t ~sid:"rb:rot.p" x f_parent in
    Pmdk.Tx.add_range tx x node_len;
    (* BUG (bug 41, C-A): y and the parent are modified unlogged. *)
    log_field t tx y f_left ~skip:cfg.rotate_unlogged;
    log_field t tx y f_parent ~skip:cfg.rotate_unlogged;
    set t ~sid:"rb:rot.x_right" x f_right yl;
    if yl <> 0 then begin
      log_field t tx yl f_parent ~skip:cfg.rotate_unlogged;
      set t ~sid:"rb:rot.yl_parent" yl f_parent x
    end;
    set t ~sid:"rb:rot.y_left" y f_left x;
    set t ~sid:"rb:rot.y_parent" y f_parent p;
    set t ~sid:"rb:rot.x_parent" x f_parent y;
    replace_child t tx p x y ~skip_log:cfg.rotate_unlogged

  let rotate_right t tx x =
    let y = getp t ~sid:"rb:rot.y2" x f_left in
    let yr = getp t ~sid:"rb:rot.yr" y f_right in
    let p = getp t ~sid:"rb:rot.p2" x f_parent in
    Pmdk.Tx.add_range tx x node_len;
    log_field t tx y f_right ~skip:cfg.rotate_unlogged;
    log_field t tx y f_parent ~skip:cfg.rotate_unlogged;
    set t ~sid:"rb:rot.x_left" x f_left yr;
    if yr <> 0 then begin
      log_field t tx yr f_parent ~skip:cfg.rotate_unlogged;
      set t ~sid:"rb:rot.yr_parent" yr f_parent x
    end;
    set t ~sid:"rb:rot.y_right" y f_right x;
    set t ~sid:"rb:rot.y_parent2" y f_parent p;
    set t ~sid:"rb:rot.x_parent2" x f_parent y;
    replace_child t tx p x y ~skip_log:cfg.rotate_unlogged

  let is_red t n = n <> 0 && get t ~sid:"rb:node.red" n f_red = 1

  let set_color t tx n red ~buggy =
    if n <> 0 then begin
      (* BUG when [buggy] (bug 42, C-A): recolor without logging. *)
      log_field t tx n f_red ~skip:buggy;
      set t ~sid:"rb:fixup.color" n f_red (if red then 1 else 0)
    end

  (* Standard insert fixup. *)
  let rec fixup t tx z =
    let p = getp t ~sid:"rb:fix.p" z f_parent in
    if p = 0 then set_color t tx z false ~buggy:false  (* root is black *)
    else if is_red t p then begin
      let g = getp t ~sid:"rb:fix.g" p f_parent in
      if g = 0 then set_color t tx p false ~buggy:cfg.fixup_unlogged
      else begin
        let p_is_left = getp t ~sid:"rb:fix.gl" g f_left = p in
        let uncle =
          if p_is_left then getp t ~sid:"rb:fix.u" g f_right
          else getp t ~sid:"rb:fix.u2" g f_left
        in
        if is_red t uncle then begin
          set_color t tx p false ~buggy:cfg.fixup_unlogged;
          set_color t tx uncle false ~buggy:cfg.fixup_unlogged;
          set_color t tx g true ~buggy:cfg.fixup_unlogged;
          fixup t tx g
        end
        else begin
          let z, p =
            if p_is_left && getp t ~sid:"rb:fix.zr" p f_right = z then begin
              rotate_left t tx p;
              (p, getp t ~sid:"rb:fix.np" p f_parent)
            end
            else if (not p_is_left) && getp t ~sid:"rb:fix.zl" p f_left = z
            then begin
              rotate_right t tx p;
              (p, getp t ~sid:"rb:fix.np2" p f_parent)
            end
            else (z, p)
          in
          ignore z;
          set_color t tx p false ~buggy:cfg.fixup_unlogged;
          set_color t tx g true ~buggy:cfg.fixup_unlogged;
          if p_is_left then rotate_right t tx g else rotate_left t tx g
        end
      end
    end

  let find t k =
    let rec go n =
      if n = 0 then None
      else begin
        let key = Ctx.read_u64 t.ctx ~sid:"rb:find.key" (n + f_key) in
        match
          Ctx.if_ t.ctx (Tv.eq key (Tv.const k))
            ~then_:(fun () -> Some n)
            ~else_:(fun () -> None)
        with
        | Some n -> Some n
        | None ->
          if Tv.value key > k then go (getp t ~sid:"rb:find.left" n f_left)
          else go (getp t ~sid:"rb:find.right" n f_right)
      end
    in
    go (root t)

  let value_of t n =
    let v = Ctx.read_bytes t.ctx ~sid:"rb:read.value" (n + f_val) 8 in
    let s = strip_value (Tv.blob_value v) in
    if s = "" then None else Some s

  let insert t k v =
    match find t k with
    | Some n ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (n + f_val) 8;
          Ctx.write_bytes t.ctx ~sid:"rb:insert.upsert" (n + f_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | None ->
      Pmdk.Tx.run t.pool (fun tx ->
          (* fresh node: red, value set, parented below *)
          let z = Pmdk.Alloc.zalloc t.pool node_len in
          set t ~sid:"rb:insert.red" z f_red 1;
          set t ~sid:"rb:insert.key" z f_key k;
          Ctx.write_bytes t.ctx ~sid:"rb:insert.value" (z + f_val)
            (Tv.blob (pad_value v));
          Ctx.persist t.ctx ~sid:"rb:insert.node_persist" z node_len;
          (* BST attach *)
          let rec place n =
            let key = get t ~sid:"rb:insert.probe" n f_key in
            if k < key then begin
              let l = getp t ~sid:"rb:insert.l" n f_left in
              if l = 0 then begin
                set t ~sid:"rb:insert.parent" z f_parent n;
                Ctx.persist t.ctx ~sid:"rb:insert.parent_persist"
                  (z + f_parent) 8;
                (* BUG when [link_unlogged] (bug 43, C-A). *)
                log_field t tx n f_left ~skip:cfg.link_unlogged;
                set t ~sid:"rb:insert.attach_l" n f_left z
              end
              else place l
            end
            else begin
              let r = getp t ~sid:"rb:insert.r" n f_right in
              if r = 0 then begin
                set t ~sid:"rb:insert.parent2" z f_parent n;
                Ctx.persist t.ctx ~sid:"rb:insert.parent2_persist"
                  (z + f_parent) 8;
                log_field t tx n f_right ~skip:cfg.link_unlogged;
                set t ~sid:"rb:insert.attach_r" n f_right z
              end
              else place r
            end
          in
          let rt = root t in
          if rt = 0 then begin
            set t ~sid:"rb:insert.root_black" z f_red 0;
            Ctx.persist t.ctx ~sid:"rb:insert.root_black_persist" (z + f_red) 8;
            Pmdk.Tx.add_range tx (root_slot t) 8;
            set t ~sid:"rb:insert.root" (root_slot t) 0 z
          end
          else begin
            place rt;
            fixup t tx z
          end);
      Output.Ok

  let update t k v =
    match find t k with
    | Some n when value_of t n <> None ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (n + f_val) 8;
          Ctx.write_bytes t.ctx ~sid:"rb:update.value" (n + f_val)
            (Tv.blob (pad_value v)));
      Output.Ok
    | Some _ | None -> Output.Not_found

  (* Tombstone delete: clear the value; a later insert revives it. *)
  let delete t k =
    match find t k with
    | Some n when value_of t n <> None ->
      Pmdk.Tx.run t.pool (fun tx ->
          Pmdk.Tx.add_range tx (n + f_val) 8;
          Ctx.write_bytes t.ctx ~sid:"rb:delete.tombstone" (n + f_val)
            (Tv.blob (String.make 8 '\000')));
      Output.Ok
    | Some _ | None -> Output.Not_found

  let query t k =
    match find t k with
    | Some n ->
      (match value_of t n with
       | Some v -> Output.Found v
       | None -> Output.Not_found)
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = rb_cfg) ?(name = "rb-tree") () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg let name = name end) in
  (module M)

let buggy () = make ~cfg:rb_cfg ()
let aga () = make ~cfg:aga_cfg ~name:"rb-tree-aga" ()
let fixed () = make ~cfg:fixed_cfg ()
