(* P-Masstree — the RECIPE conversion of Masstree (paper row "P-Masstree",
   bug 39). We keep the Masstree leaf discipline that matters here: nodes
   hold an explicit count guarding *unsorted* entries. Readers scan
   entries below the count (the newest match wins, null value pointers
   are tombstones), so every mutation is a guardian-ordered append:
   persist the entry, then bump the count. Inner nodes are unsorted too —
   routing picks the entry with the largest key <= k — so installing a
   separator is also an append.

   Splits are copy-on-write: live entries are distributed into two fresh
   leaves; the separator/upper-leaf pair is appended to the parent first
   (old leaf still serves both halves), then the parent's child pointer
   swings atomically to the lower leaf.

   Seeded defect ([split_atomic], bug 39, C-A "atomicity in node
   splitting"): the buggy split compacts the old leaf *in place* and
   truncates its count in the same unfenced breath as the unpersisted new
   leaf — a crash loses the moved upper half or tears the compaction. *)

open Nvm
module Op = Witcher.Op
module Output = Witcher.Output

type cfg = { split_atomic : bool }

let buggy_cfg = { split_atomic = true }
let fixed_cfg = { split_atomic = false }

let cap = 14
let val_len = 8

(* node: is_leaf(8) | count(8) | leftmost(8) | pad(8) | entries cap x 16 *)
let n_is_leaf = 0
let n_count = 8
let n_leftmost = 16
let n_entries = 32
let entry_len = 16
let node_len = n_entries + (cap * entry_len)

let pad_value v =
  if String.length v >= val_len then String.sub v 0 val_len
  else v ^ String.make (val_len - String.length v) '\000'

let strip_value v =
  let rec len i = if i > 0 && v.[i - 1] = '\000' then len (i - 1) else i in
  String.sub v 0 (len (String.length v))

module Make (C : sig val cfg : cfg end) = struct
  let name = "p-masstree"
  let pool_size = 16 * 1024 * 1024
  let supports_scan = false

  let cfg = C.cfg

  type t = {
    ctx : Ctx.t;
    pool : Pmdk.Pool.t;
  }

  let entry_addr node i = node + n_entries + (i * entry_len)

  let is_leaf t n =
    Tv.to_bool (Ctx.read_u64 t.ctx ~sid:"mt:node.is_leaf" (n + n_is_leaf))

  let count_of t n = Ctx.read_u64 t.ctx ~sid:"mt:node.count" (n + n_count)

  let read_key t ~sid n i = Ctx.read_u64 t.ctx ~sid (entry_addr n i)
  let read_val t ~sid n i = Ctx.read_u64 t.ctx ~sid (entry_addr n i + 8)

  let alloc_node t ~leaf =
    let n = Pmdk.Alloc.zalloc t.pool node_len in
    Ctx.write_u64 t.ctx ~sid:"mt:mknode.is_leaf" (n + n_is_leaf)
      (Tv.const (if leaf then 1 else 0));
    Ctx.persist t.ctx ~sid:"mt:mknode.persist" n 32;
    n

  let root_addr t = Pmdk.Pool.root t.pool

  let create ctx =
    let pool = Pmdk.Pool.create ctx ~root_size:16 in
    let t = { ctx; pool } in
    let leaf = alloc_node t ~leaf:true in
    Ctx.write_u64 ctx ~sid:"mt:create.root" (root_addr t) (Tv.const leaf);
    Ctx.persist ctx ~sid:"mt:create.root_persist" (root_addr t) 8;
    t

  let open_ ctx =
    let pool = Pmdk.Pool.open_ ctx in
    let t = { ctx; pool } in
    if not (Tv.to_bool (Ctx.read_u64 ctx ~sid:"mt:open.root" (root_addr t)))
    then begin
      let leaf = alloc_node t ~leaf:true in
      Ctx.write_u64 ctx ~sid:"mt:recover.root" (root_addr t) (Tv.const leaf);
      Ctx.persist ctx ~sid:"mt:recover.root_persist" (root_addr t) 8
    end;
    t

  (* Inner routing over unsorted separators: the entry with the largest
     key <= k wins; the count read guards the scan. *)
  let child_for t n k =
    let cnt = count_of t n in
    let m = min (Tv.value cnt) cap in
    Ctx.with_guard t.ctx (Tv.taint cnt) (fun () ->
        let lm =
          Tv.value (Ctx.read_ptr t.ctx ~sid:"mt:descend.leftmost" (n + n_leftmost))
        in
        let rec go i best_key best =
          if i >= m then best
          else begin
            let key = Tv.value (read_key t ~sid:"mt:descend.key" n i) in
            if key <= k && key >= best_key then
              go (i + 1) key
                (Tv.value (read_val t ~sid:"mt:descend.child" n i))
            else go (i + 1) best_key best
          end
        in
        go 0 min_int lm)

  (* Path entries: (node, slot address of the pointer we followed). *)
  let find_leaf t k =
    let rec go n slot path =
      if is_leaf t n then (n, slot, path)
      else begin
        let child = child_for t n k in
        (* locate the slot we came through so splits can swing it *)
        let cslot =
          let m = min (Tv.value (count_of t n)) cap in
          let rec scan i =
            if i >= m then n + n_leftmost
            else if Tv.value (read_val t ~sid:"mt:path.child" n i) = child then
              entry_addr n i + 8
            else scan (i + 1)
          in
          scan 0
        in
        go child cslot ((n, cslot) :: path)
      end
    in
    go (Tv.value (Ctx.read_ptr t.ctx ~sid:"mt:root" (root_addr t)))
      (root_addr t) []

  (* Scan a leaf's unsorted entries; the newest match wins. *)
  let leaf_find t leaf k =
    let cnt = count_of t leaf in
    let m = min (Tv.value cnt) cap in
    Ctx.with_guard t.ctx (Tv.taint cnt) (fun () ->
        let rec go i best =
          if i >= m then best
          else begin
            let key = read_key t ~sid:"mt:find.key" leaf i in
            let best = if Tv.value key = k then Some i else best in
            go (i + 1) best
          end
        in
        go 0 None)

  let value_blob t leaf i =
    let p =
      Tv.value (Ctx.read_ptr t.ctx ~sid:"mt:read.vptr" (entry_addr leaf i + 8))
    in
    if p = 0 then None
    else
      Some
        (strip_value
           (Tv.blob_value (Ctx.read_bytes t.ctx ~sid:"mt:read.value" (p + 8) 8)))

  let write_blob t v =
    let b = Pmdk.Alloc.alloc t.pool 16 in
    Ctx.write_u64 t.ctx ~sid:"mt:blob.len" b (Tv.const (String.length v));
    Ctx.write_bytes t.ctx ~sid:"mt:blob.bytes" (b + 8) (Tv.blob (pad_value v));
    Ctx.persist t.ctx ~sid:"mt:blob.persist" b 16;
    b

  (* Guardian-ordered append: entry persisted, then the count. *)
  let append_entry t node ~k ~ptr ~sid_prefix =
    let cnt = count_of t node in
    let i = Tv.value cnt in
    assert (i < cap);
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".key") (entry_addr node i)
      (Tv.const k);
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".vptr") (entry_addr node i + 8)
      (Tv.const ptr);
    Ctx.persist t.ctx ~sid:(sid_prefix ^ ".entry_persist") (entry_addr node i)
      entry_len;
    Ctx.write_u64 t.ctx ~sid:(sid_prefix ^ ".count") (node + n_count)
      (Tv.add cnt Tv.one);
    Ctx.persist t.ctx ~sid:(sid_prefix ^ ".count_persist") (node + n_count) 8

  (* Live (key, value-ptr) pairs of a leaf: newest wins, tombstones drop. *)
  let live_entries t leaf =
    let cnt = Tv.value (count_of t leaf) in
    let live = ref [] in
    for i = cnt - 1 downto 0 do
      let key = Tv.value (read_key t ~sid:"mt:split.key" leaf i) in
      let p = Tv.value (read_val t ~sid:"mt:split.vptr" leaf i) in
      if not (List.mem_assoc key !live) then live := (key, p) :: !live
    done;
    List.sort compare (List.filter (fun (_, p) -> p <> 0) !live)

  let fill_leaf t leaf entries =
    List.iteri
      (fun i (k, p) ->
         Ctx.write_u64 t.ctx ~sid:"mt:split.fill_key" (entry_addr leaf i)
           (Tv.const k);
         Ctx.write_u64 t.ctx ~sid:"mt:split.fill_vptr" (entry_addr leaf i + 8)
           (Tv.const p))
      entries;
    Ctx.write_u64 t.ctx ~sid:"mt:split.fill_count" (leaf + n_count)
      (Tv.const (List.length entries))

  (* Split the root of [path] handling: append (sep -> upper) into the
     parent, splitting ancestors as needed; returns unit. *)
  let rec install_sep t path ~sep ~upper =
    match path with
    | (parent, _) :: rest ->
      if Tv.value (count_of t parent) >= cap then begin
        split_inner t parent rest;
        (* after an inner split, re-route from the closest ancestor *)
        let target =
          match rest with
          | _ ->
            (* re-descend from the root to the inner node for [sep] *)
            let rec go n =
              if is_leaf t n then None
              else begin
                let child = child_for t n sep in
                if is_leaf t child then Some n
                else go child
              end
            in
            go (Tv.value (Ctx.read_ptr t.ctx ~sid:"mt:resep.root" (root_addr t)))
        in
        (match target with
         | Some p -> append_entry t p ~k:sep ~ptr:upper ~sid_prefix:"mt:sep"
         | None -> ())
      end
      else append_entry t parent ~k:sep ~ptr:upper ~sid_prefix:"mt:sep"
    | [] -> ()

  (* Copy-on-write inner split: entries with key < sep stay, the rest move
     to a fresh inner node appended to the grandparent. *)
  and split_inner t node path =
    let cnt = Tv.value (count_of t node) in
    let entries =
      List.init cnt (fun i ->
          ( Tv.value (read_key t ~sid:"mt:isplit.rdk" node i),
            Tv.value (read_val t ~sid:"mt:isplit.rdv" node i) ))
      |> List.sort compare
    in
    let mid = cnt / 2 in
    let sep, mid_child = List.nth entries mid in
    let lower = List.filteri (fun i _ -> i < mid) entries in
    let upper = List.filteri (fun i _ -> i > mid) entries in
    let nlow = alloc_node t ~leaf:false in
    let nup = alloc_node t ~leaf:false in
    let lm = Tv.value (Ctx.read_ptr t.ctx ~sid:"mt:isplit.lm" (node + n_leftmost)) in
    Ctx.write_u64 t.ctx ~sid:"mt:isplit.low_lm" (nlow + n_leftmost) (Tv.const lm);
    fill_leaf t nlow lower;
    Ctx.write_u64 t.ctx ~sid:"mt:isplit.up_lm" (nup + n_leftmost)
      (Tv.const mid_child);
    fill_leaf t nup upper;
    if not cfg.split_atomic then begin
      Ctx.persist t.ctx ~sid:"mt:isplit.low_persist" nlow node_len;
      Ctx.persist t.ctx ~sid:"mt:isplit.up_persist" nup node_len
    end;
    publish_split t node path ~sep ~lower:nlow ~upper:nup

  (* Publish a split: install (sep -> upper) in the parent, then swing the
     slot that pointed at [node] to [lower]. For the root, build a fresh
     root and swap the root pointer. *)
  and publish_split t node path ~sep ~lower ~upper =
    match path with
    | [] ->
      let root = alloc_node t ~leaf:false in
      Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.leftmost" (root + n_leftmost)
        (Tv.const lower);
      Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.key" (entry_addr root 0)
        (Tv.const sep);
      Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.child" (entry_addr root 0 + 8)
        (Tv.const upper);
      Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.count" (root + n_count) Tv.one;
      if not cfg.split_atomic then
        Ctx.persist t.ctx ~sid:"mt:rootsplit.persist" root node_len;
      Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.swap" (root_addr t) (Tv.const root);
      Ctx.persist t.ctx ~sid:"mt:rootsplit.swap_persist" (root_addr t) 8;
      ignore node
    | (_parent, slot) :: _ ->
      install_sep t path ~sep ~upper;
      Ctx.write_u64 t.ctx ~sid:"mt:split.swing" slot (Tv.const lower);
      Ctx.persist t.ctx ~sid:"mt:split.swing_persist" slot 8

  (* Leaf split. Fixed: copy-on-write into two fresh leaves. Buggy
     (bug 39): in-place compaction with an early, unordered truncate. *)
  and split_leaf t leaf path =
    let live = live_entries t leaf in
    (* Only redistribute keys the parent still routes here: after an
       interrupted earlier split, keys already routed to the published
       upper leaf must not be resurrected from this node's stale copies. *)
    let live =
      if cfg.split_atomic then live
      else
        List.filter
          (fun (k, _) ->
             let l, _, _ = find_leaf t k in
             l = leaf)
          live
    in
    let m = List.length live in
    let lower = List.filteri (fun i _ -> i < (m + 1) / 2) live in
    let upper = List.filteri (fun i _ -> i >= (m + 1) / 2) live in
    if cfg.split_atomic then begin
      (* BUG (bug 39, C-A): new leaf unpersisted, old leaf compacted and
         truncated in place, all behind one trailing fence. *)
      let nleaf = alloc_node t ~leaf:true in
      fill_leaf t nleaf upper;
      (match upper, path with
       | (sep, _) :: _, (_ :: _) -> install_sep t path ~sep ~upper:nleaf
       | (sep, _) :: _, [] ->
         (* root leaf: build a new root — unpersisted before the swap,
            part of the same broken split *)
         let root = alloc_node t ~leaf:false in
         Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.leftmost" (root + n_leftmost)
           (Tv.const leaf);
         Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.key" (entry_addr root 0)
           (Tv.const sep);
         Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.child" (entry_addr root 0 + 8)
           (Tv.const nleaf);
         Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.count" (root + n_count) Tv.one;
         Ctx.write_u64 t.ctx ~sid:"mt:rootsplit.swap" (root_addr t)
           (Tv.const root);
         Ctx.persist t.ctx ~sid:"mt:rootsplit.swap_persist" (root_addr t) 8
       | [], _ -> ());
      List.iteri
        (fun i (k, p) ->
           Ctx.write_u64 t.ctx ~sid:"mt:split.compact_key" (entry_addr leaf i)
             (Tv.const k);
           Ctx.write_u64 t.ctx ~sid:"mt:split.compact_vptr"
             (entry_addr leaf i + 8) (Tv.const p))
        lower;
      Ctx.write_u64 t.ctx ~sid:"mt:split.truncate" (leaf + n_count)
        (Tv.const (List.length lower));
      Ctx.fence t.ctx ~sid:"mt:split.fence_only"
    end
    else begin
      match upper with
      | [] ->
        (* everything is dead or tiny: compact copy-on-write *)
        let nleaf = alloc_node t ~leaf:true in
        fill_leaf t nleaf lower;
        Ctx.persist t.ctx ~sid:"mt:compact.persist" nleaf node_len;
        publish_swing t leaf path nleaf
      | (sep, _) :: _ ->
        let nlow = alloc_node t ~leaf:true in
        let nup = alloc_node t ~leaf:true in
        fill_leaf t nlow lower;
        fill_leaf t nup upper;
        Ctx.persist t.ctx ~sid:"mt:split.low_persist" nlow node_len;
        Ctx.persist t.ctx ~sid:"mt:split.up_persist" nup node_len;
        publish_split t leaf path ~sep ~lower:nlow ~upper:nup
    end

  and publish_swing t _old path nleaf =
    match path with
    | [] ->
      Ctx.write_u64 t.ctx ~sid:"mt:compact.swap" (root_addr t) (Tv.const nleaf);
      Ctx.persist t.ctx ~sid:"mt:compact.swap_persist" (root_addr t) 8
    | (_parent, slot) :: _ ->
      Ctx.write_u64 t.ctx ~sid:"mt:compact.swing" slot (Tv.const nleaf);
      Ctx.persist t.ctx ~sid:"mt:compact.swing_persist" slot 8

  let insert t k v =
    let leaf, _slot, path = find_leaf t k in
    match leaf_find t leaf k with
    | Some i when Option.is_some (value_blob t leaf i) ->
      let b = write_blob t v in
      Ctx.write_u64 t.ctx ~sid:"mt:insert.upsert" (entry_addr leaf i + 8)
        (Tv.const b);
      Ctx.persist t.ctx ~sid:"mt:insert.upsert_persist" (entry_addr leaf i + 8) 8;
      Output.Ok
    | _ ->
      (* A split's swing can be superseded when the parent itself split;
         retry until the target leaf has room. *)
      let rec ensure leaf path tries =
        if Tv.value (count_of t leaf) < cap || tries > 4 then leaf
        else begin
          split_leaf t leaf path;
          let leaf', _, path' = find_leaf t k in
          ensure leaf' path' (tries + 1)
        end
      in
      let leaf = ensure leaf path 0 in
      if Tv.value (count_of t leaf) >= cap then Output.Fail "full"
      else begin
        let b = write_blob t v in
        append_entry t leaf ~k ~ptr:b ~sid_prefix:"mt:insert";
        Output.Ok
      end

  let update t k v =
    let leaf, _, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some i when Option.is_some (value_blob t leaf i) ->
      let b = write_blob t v in
      Ctx.write_u64 t.ctx ~sid:"mt:update.vptr" (entry_addr leaf i + 8)
        (Tv.const b);
      Ctx.persist t.ctx ~sid:"mt:update.persist" (entry_addr leaf i + 8) 8;
      Output.Ok
    | _ -> Output.Not_found

  let delete t k =
    let leaf, _, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some i when Option.is_some (value_blob t leaf i) ->
      Ctx.write_u64 t.ctx ~sid:"mt:delete.tombstone" (entry_addr leaf i + 8)
        Tv.zero;
      Ctx.persist t.ctx ~sid:"mt:delete.persist" (entry_addr leaf i + 8) 8;
      Output.Ok
    | _ -> Output.Not_found

  let query t k =
    let leaf, _, _ = find_leaf t k in
    match leaf_find t leaf k with
    | Some i ->
      (match value_blob t leaf i with
       | Some v -> Output.Found v
       | None -> Output.Not_found)
    | None -> Output.Not_found

  let exec t op =
    match op with
    | Op.Insert (k, v) -> insert t k v
    | Op.Update (k, v) -> update t k v
    | Op.Delete k -> delete t k
    | Op.Query k -> query t k
    | Op.Scan _ -> Output.Fail "scan-unsupported"
end

let make ?(cfg = buggy_cfg) () : Witcher.Store_intf.instance =
  let module M = Make (struct let cfg = cfg end) in
  (module M)

let buggy () = make ~cfg:buggy_cfg ()
let fixed () = make ~cfg:fixed_cfg ()
