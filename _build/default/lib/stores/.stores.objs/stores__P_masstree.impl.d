lib/stores/p_masstree.ml: Ctx List Nvm Option Pmdk String Tv Witcher
