lib/stores/btree_tx.ml: Ctx List Nvm Pmdk String Tv Witcher
