lib/stores/hashmap_atomic.ml: Bytes Ctx Int64 Nvm Pmdk String Tv Witcher
