lib/stores/level_hash.ml: Ctx List Nvm Pmdk String Tv Witcher
