lib/stores/p_art.ml: Ctx Nvm Pmdk String Tv Witcher
