lib/stores/p_hot.ml: Ctx Nvm Pmdk String Tv Witcher
