lib/stores/redis_like.ml: Ctx Nvm Pmdk String Tv Witcher
