lib/stores/ctree_tx.ml: Ctx Nvm Pmdk String Tv Witcher
