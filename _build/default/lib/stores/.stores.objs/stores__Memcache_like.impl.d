lib/stores/memcache_like.ml: Ctx List Nvm Pmdk String Tv Witcher
