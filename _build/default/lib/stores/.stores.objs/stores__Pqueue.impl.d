lib/stores/pqueue.ml: Ctx Nvm Pmdk String Taint Tv Witcher
