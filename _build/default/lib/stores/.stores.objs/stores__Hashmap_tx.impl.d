lib/stores/hashmap_tx.ml: Ctx Nvm Pmdk String Tv Witcher
