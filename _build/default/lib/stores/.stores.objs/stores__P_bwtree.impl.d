lib/stores/p_bwtree.ml: Ctx Nvm Pmdk String Tv Witcher
