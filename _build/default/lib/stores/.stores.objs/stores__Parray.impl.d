lib/stores/parray.ml: Bytes Ctx Int64 Nvm Pmdk String Taint Tv Witcher
