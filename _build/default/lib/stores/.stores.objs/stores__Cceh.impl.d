lib/stores/cceh.ml: Bytes Ctx Int64 Nvm Pmdk String Tv Witcher
