lib/stores/rbtree_tx.ml: Ctx Nvm Pmdk String Tv Witcher
