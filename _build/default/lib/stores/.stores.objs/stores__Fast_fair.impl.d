lib/stores/fast_fair.ml: Bytes Ctx Int64 List Nvm Pmdk Pmem String Tv Witcher
