lib/stores/p_clht.ml: Ctx Nvm Pmdk String Tv Witcher
