lib/stores/woart.ml: Ctx Nvm Pmdk String Tv Witcher
