lib/stores/wort.ml: Ctx Nvm Pmdk String Tv Witcher
