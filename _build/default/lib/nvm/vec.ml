(* A minimal growable array. OCaml 5.1 predates Stdlib.Dynarray, and the
   trace recorder needs amortized O(1) append over hundreds of thousands of
   events, so we carry our own. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let clear t = t.len <- 0
