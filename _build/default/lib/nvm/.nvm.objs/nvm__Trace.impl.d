lib/nvm/trace.ml: Fmt Taint Vec
