lib/nvm/pmem.ml: Bytes Char Int64 String
