lib/nvm/crash_sim.ml: Hashtbl Int List Pmem Random Set Trace Vec
