lib/nvm/taint.ml: Fmt Int List Set
