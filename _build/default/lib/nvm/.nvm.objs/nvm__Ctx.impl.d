lib/nvm/ctx.ml: Bytes Char Int64 Pmem String Taint Trace Tv
