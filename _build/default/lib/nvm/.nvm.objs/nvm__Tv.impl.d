lib/nvm/tv.ml: Fmt String Taint
