lib/nvm/vec.ml: Array List
