(* Execution traces. Every instrumented NVM access appends one event; the
   Witcher pipeline (inference, crash-image generation, performance-bug
   detection) consumes the trace post hoc, mirroring §4.1 of the paper.

   A [sid] is the static-instruction-id analogue: a stable source-site
   label such as "level_hash:insert.token". Events carry the dynamic trace
   id (tid), which is the event's index in the trace. *)

type store_ev = {
  s_tid : int;
  s_sid : string;
  s_addr : int;
  s_len : int;
  s_data : string;
  s_dd : Taint.t;  (* loads the stored value is data-dependent on *)
  s_cd : Taint.t;  (* loads the store is control-dependent on *)
  s_op : int;      (* index of the enclosing test-case operation *)
}

type load_ev = {
  l_tid : int;
  l_sid : string;
  l_addr : int;
  l_len : int;
  l_cd : Taint.t;
  l_op : int;
}

type event =
  | Load of load_ev
  | Store of store_ev
  | Flush of { f_tid : int; f_sid : string; f_line : int; f_op : int }
  | Fence of { n_tid : int; n_sid : string; n_op : int }
  | Log_range of { g_tid : int; g_sid : string; g_addr : int; g_len : int; g_tx : int; g_op : int }
  | Tx_begin of { t_tid : int; t_tx : int; t_op : int }
  | Tx_commit of { t_tid : int; t_tx : int; t_op : int }
  | Tx_abort of { t_tid : int; t_tx : int; t_op : int }
  | Op_begin of { o_tid : int; o_index : int; o_desc : string }
  | Op_end of { o_tid : int; o_index : int }

type t = {
  events : event Vec.t;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_flushes : int;
  mutable n_fences : int;
}

let dummy_event = Fence { n_tid = -1; n_sid = ""; n_op = -1 }

let create () =
  { events = Vec.create ~dummy:dummy_event;
    n_loads = 0; n_stores = 0; n_flushes = 0; n_fences = 0 }

let length t = Vec.length t.events
let get t i = Vec.get t.events i
let iter f t = Vec.iter f t.events
let iteri f t = Vec.iteri f t.events

let next_tid t = Vec.length t.events

let push t ev =
  (match ev with
   | Load _ -> t.n_loads <- t.n_loads + 1
   | Store _ -> t.n_stores <- t.n_stores + 1
   | Flush _ -> t.n_flushes <- t.n_flushes + 1
   | Fence _ -> t.n_fences <- t.n_fences + 1
   | _ -> ());
  Vec.push t.events ev

let tid_of = function
  | Load l -> l.l_tid
  | Store s -> s.s_tid
  | Flush f -> f.f_tid
  | Fence f -> f.n_tid
  | Log_range g -> g.g_tid
  | Tx_begin x -> x.t_tid
  | Tx_commit x -> x.t_tid
  | Tx_abort x -> x.t_tid
  | Op_begin o -> o.o_tid
  | Op_end o -> o.o_tid

let op_of = function
  | Load l -> l.l_op
  | Store s -> s.s_op
  | Flush f -> f.f_op
  | Fence f -> f.n_op
  | Log_range g -> g.g_op
  | Tx_begin x -> x.t_op
  | Tx_commit x -> x.t_op
  | Tx_abort x -> x.t_op
  | Op_begin o -> o.o_index
  | Op_end o -> o.o_index

let stats t = (t.n_loads, t.n_stores, t.n_flushes, t.n_fences)

let pp_event ppf = function
  | Load l -> Fmt.pf ppf "%6d L  %s @%d+%d" l.l_tid l.l_sid l.l_addr l.l_len
  | Store s -> Fmt.pf ppf "%6d S  %s @%d+%d" s.s_tid s.s_sid s.s_addr s.s_len
  | Flush f -> Fmt.pf ppf "%6d FL %s line=%d" f.f_tid f.f_sid f.f_line
  | Fence f -> Fmt.pf ppf "%6d FE %s" f.n_tid f.n_sid
  | Log_range g -> Fmt.pf ppf "%6d LG %s @%d+%d tx=%d" g.g_tid g.g_sid g.g_addr g.g_len g.g_tx
  | Tx_begin x -> Fmt.pf ppf "%6d TB tx=%d" x.t_tid x.t_tx
  | Tx_commit x -> Fmt.pf ppf "%6d TC tx=%d" x.t_tid x.t_tx
  | Tx_abort x -> Fmt.pf ppf "%6d TA tx=%d" x.t_tid x.t_tx
  | Op_begin o -> Fmt.pf ppf "%6d OB #%d %s" o.o_tid o.o_index o.o_desc
  | Op_end o -> Fmt.pf ppf "%6d OE #%d" o.o_tid o.o_index
