(* Tainted values: an integer (or byte blob) carrying the set of NVM loads
   it was computed from. All arithmetic unions taints, so data dependencies
   survive arbitrary OCaml computation between a load and a store — this is
   the dynamic analogue of the paper's memory-level data-flow analysis. *)

type t = {
  v : int;
  taint : Taint.t;
}

type blob = {
  data : string;
  btaint : Taint.t;
}

let make ?(taint = Taint.empty) v = { v; taint }
let const v = { v; taint = Taint.empty }
let zero = const 0
let one = const 1

let value t = t.v
let taint t = t.taint
let to_bool t = t.v <> 0
let retaint t taint = { t with taint = Taint.union t.taint taint }

let lift2 op a b = { v = op a.v b.v; taint = Taint.union a.taint b.taint }

let add = lift2 ( + )
let sub = lift2 ( - )
let mul = lift2 ( * )
let div = lift2 ( / )
let rem = lift2 (fun a b -> a mod b)
let logand = lift2 ( land )
let logor = lift2 ( lor )
let logxor = lift2 ( lxor )
let shift_left a n = { a with v = a.v lsl n }
let shift_right a n = { a with v = a.v lsr n }

(* Comparisons yield tainted booleans (0/1) so they can guard Ctx.if_. *)
let bool_ taint b = { v = (if b then 1 else 0); taint }

let eq a b = bool_ (Taint.union a.taint b.taint) (a.v = b.v)
let ne a b = bool_ (Taint.union a.taint b.taint) (a.v <> b.v)
let lt a b = bool_ (Taint.union a.taint b.taint) (a.v < b.v)
let le a b = bool_ (Taint.union a.taint b.taint) (a.v <= b.v)
let gt a b = bool_ (Taint.union a.taint b.taint) (a.v > b.v)
let ge a b = bool_ (Taint.union a.taint b.taint) (a.v >= b.v)
let not_ a = { a with v = (if a.v = 0 then 1 else 0) }
let and_ = lift2 (fun a b -> if a <> 0 && b <> 0 then 1 else 0)
let or_ = lift2 (fun a b -> if a <> 0 || b <> 0 then 1 else 0)

(* Blobs: strings with a single taint for the whole buffer. Key/value
   payloads in the stores are blobs; per-byte taint would buy nothing for
   the inference rules, which work at the granularity of accesses. *)

let blob ?(taint = Taint.empty) data = { data; btaint = taint }
let blob_value b = b.data
let blob_taint b = b.btaint
let blob_equal a b =
  bool_ (Taint.union a.btaint b.btaint) (String.equal a.data b.data)

let pp ppf t = Fmt.pf ppf "%d%a" t.v Taint.pp t.taint
