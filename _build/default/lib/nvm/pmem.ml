(* The simulated NVM pool: a bounded, byte-addressable image. In PMDK an
   NVM image is a regular file holding the persistent heap (§4.3 fn. 3);
   here it is a [Bytes.t] that can be snapshotted, diffed and rebuilt from
   a chosen set of persisted stores.

   Out-of-bounds accesses raise [Fault], the simulated segmentation fault:
   resuming from a corrupted crash image may follow garbage pointers, and
   the paper treats such visible crashes as detected inconsistencies. *)

exception Fault of { addr : int; len : int }

type t = {
  buf : Bytes.t;
  size : int;
}

let line_size = 64
let line_of_addr addr = addr lsr 6

let create size =
  if size <= 0 then invalid_arg "Pmem.create";
  { buf = Bytes.make size '\000'; size }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    raise (Fault { addr; len })

let read_u64 t addr =
  check t addr 8;
  Int64.to_int (Bytes.get_int64_le t.buf addr)

let write_u64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.buf addr (Int64.of_int v)

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.buf addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.set t.buf addr (Char.chr (v land 0xff))

let read_bytes t addr len =
  check t addr len;
  Bytes.sub_string t.buf addr len

let write_bytes t addr s =
  let len = String.length s in
  check t addr len;
  Bytes.blit_string s 0 t.buf addr len

let snapshot t = Bytes.to_string t.buf

let of_snapshot s =
  { buf = Bytes.of_string s; size = String.length s }

let copy t = { buf = Bytes.copy t.buf; size = t.size }
