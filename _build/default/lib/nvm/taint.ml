(* Taint sets identify the NVM loads a value derives from. Each element is
   the trace id (tid) of a Load event. Taint flows through Tv arithmetic
   and through control-dependency scopes in Ctx; a Store event records the
   taint of the stored value (data dependency) and of the enclosing branch
   guards (control dependency). These edges are exactly the Persistence
   Program Dependence Graph of Witcher §4.2.2. *)

module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let union = S.union
let add = S.add
let mem = S.mem
let elements = S.elements
let cardinal = S.cardinal
let fold = S.fold
let of_list = S.of_list
let equal = S.equal

let union_list = List.fold_left union empty

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
