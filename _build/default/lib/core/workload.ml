(* Random test-case generation (§7.1). Witcher needs a deterministic test
   case with good coverage; the paper assigns a higher probability to
   fresh keys for insert and to already-used keys for delete / update /
   query / scan, so dependent operations are meaningful and rebalancing
   (rehash, split/merge) is actually triggered. Generation is fully
   determined by [seed]. *)

type cfg = {
  n_ops : int;
  key_space : int;          (* keys drawn from [1, key_space] *)
  value_len : int;
  seed : int;
  p_insert : float;
  p_update : float;
  p_delete : float;
  p_query : float;
  p_scan : float;           (* set 0. for stores without range scans *)
}

let default =
  { n_ops = 200; key_space = 10_000; value_len = 8; seed = 42;
    p_insert = 0.5; p_update = 0.1; p_delete = 0.1; p_query = 0.25;
    p_scan = 0.05 }

let no_scan cfg =
  { cfg with p_query = cfg.p_query +. cfg.p_scan; p_scan = 0. }

let value_of cfg rng k =
  let tag = Random.State.int rng 0x10000 in
  let s = Printf.sprintf "v%dk%x" k tag in
  if String.length s >= cfg.value_len then String.sub s 0 cfg.value_len
  else s ^ String.make (cfg.value_len - String.length s) '_'

let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let live = Hashtbl.create 64 in
  let live_list = ref [] in  (* keys ever inserted, for biased picking *)
  let fresh_key () =
    let rec go tries =
      let k = 1 + Random.State.int rng cfg.key_space in
      if Hashtbl.mem live k && tries < 20 then go (tries + 1) else k
    in
    go 0
  in
  let used_key () =
    match !live_list with
    | [] -> 1 + Random.State.int rng cfg.key_space
    | l -> List.nth l (Random.State.int rng (List.length l))
  in
  let pick () =
    let r = Random.State.float rng 1.0 in
    if r < cfg.p_insert then begin
      let k = fresh_key () in
      if not (Hashtbl.mem live k) then begin
        Hashtbl.replace live k ();
        live_list := k :: !live_list
      end;
      Op.Insert (k, value_of cfg rng k)
    end
    else if r < cfg.p_insert +. cfg.p_update then
      Op.Update (used_key (), value_of cfg rng 0)
    else if r < cfg.p_insert +. cfg.p_update +. cfg.p_delete then begin
      let k = used_key () in
      Hashtbl.remove live k;
      Op.Delete k
    end
    else if r < cfg.p_insert +. cfg.p_update +. cfg.p_delete +. cfg.p_query then
      Op.Query (used_key ())
    else
      Op.Scan (used_key (), 1 + Random.State.int rng 8)
  in
  List.init cfg.n_ops (fun _ -> pick ())
