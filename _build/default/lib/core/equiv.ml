(* Output equivalence checking (§4.4). A crash NVM image is consistent iff
   the execution resumed from it produces, for every operation after the
   crashed one, the same outputs as one of the two oracles:

   - committed: the crashed operation fully executed — the outputs of the
     original no-crash run;
   - rolled back: the crashed operation never executed — the outputs of a
     fresh run with that operation removed.

   Divergence from both is a true crash-consistency bug (no false
   positives). Rolled-back oracles are memoized per crashed operation. *)

type verdict =
  | Consistent
  | Inconsistent of {
      first_diff : int;           (* trace op index of first diverging op *)
      got : Output.t;
      expect_committed : Output.t;
      expect_rolled_back : Output.t;
      crashed : bool;             (* resumption crashed visibly *)
    }

type t = {
  store : Store_intf.instance;
  ops : Op.t array;
  committed : Output.t array;   (* outputs of ops.(i), trace index i+1 *)
  rolled_back : (int, Output.t array) Hashtbl.t;  (* crash op -> oracle *)
  fuel : int;
}

let create ?(fuel = 3_000_000) store ~ops ~committed =
  { store; ops; committed; rolled_back = Hashtbl.create 64; fuel }

(* Oracle for a crash at trace op index k: outputs of ops after k when
   op k is rolled back. k = 0 (creation) rolls back to the committed
   behaviour (the pool is simply re-created). *)
let rolled_back_oracle t k =
  match Hashtbl.find_opt t.rolled_back k with
  | Some o -> o
  | None ->
    let n = Array.length t.ops in
    let oracle =
      if k = 0 then Array.sub t.committed 0 n
      else begin
        let ops' =
          List.filteri (fun i _ -> i <> k - 1) (Array.to_list t.ops)
        in
        let outs = Driver.run_quiet t.store ops' in
        (* outputs for ops k+1..n are at positions k-1 .. n-2 *)
        Array.sub outs (k - 1) (n - k)
      end
    in
    Hashtbl.replace t.rolled_back k oracle;
    oracle

let check t ~img ~crash_op =
  let n = Array.length t.ops in
  let k = crash_op in
  let got =
    Driver.resume t.store ~image:img ~ops:t.ops ~from_op:k ~fuel:t.fuel
  in
  let suffix_len = n - k in
  let committed_suffix i = t.committed.(k + i) in
  let rb = rolled_back_oracle t k in
  let matches oracle_at =
    let rec go i = i >= suffix_len || (Output.equal got.(i) (oracle_at i) && go (i + 1)) in
    go 0
  in
  if matches committed_suffix || matches (fun i -> rb.(i)) then Consistent
  else begin
    (* First index diverging from both oracles, for the report. *)
    let rec first i =
      if i >= suffix_len then 0
      else if not (Output.equal got.(i) (committed_suffix i))
           && not (Output.equal got.(i) rb.(i)) then i
      else first (i + 1)
    in
    (* The runs may diverge from the two oracles at different indices; for
       reporting pick the first index differing from the committed oracle,
       falling back to the first differing from rolled-back. *)
    let i = first 0 in
    let crashed =
      Array.exists (function Output.Crashed _ -> true | _ -> false) got
    in
    Inconsistent
      { first_diff = k + i + 1;
        got = (if suffix_len > 0 then got.(i) else Output.Ok);
        expect_committed = (if suffix_len > 0 then committed_suffix i else Output.Ok);
        expect_rolled_back = (if suffix_len > 0 then rb.(i) else Output.Ok);
        crashed }
  end
