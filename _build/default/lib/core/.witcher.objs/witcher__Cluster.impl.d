lib/core/cluster.ml: Crash_gen Equiv Fmt Hashtbl Infer List Output String
