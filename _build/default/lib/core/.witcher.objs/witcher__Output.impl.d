lib/core/output.ml: Fmt List String
