lib/core/workload.ml: Hashtbl List Op Printf Random String
