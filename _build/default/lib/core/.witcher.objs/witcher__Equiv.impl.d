lib/core/equiv.ml: Array Driver Hashtbl List Op Output Store_intf
