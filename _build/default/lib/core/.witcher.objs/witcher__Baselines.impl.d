lib/core/baselines.ml: Crash_sim Hashtbl Infer List Nvm Option Perf Pmdk Pmem String Trace
