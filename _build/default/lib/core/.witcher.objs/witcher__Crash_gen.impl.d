lib/core/crash_gen.ml: Crash_sim Hashtbl Infer List Nvm Option Pmem Trace
