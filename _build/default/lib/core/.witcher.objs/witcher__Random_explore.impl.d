lib/core/random_explore.ml: Crash_sim Equiv Hashtbl Nvm Pmem Random Trace
