lib/core/store_intf.ml: Nvm Op Output
