lib/core/op.ml: Fmt Printf
