lib/core/infer.ml: Hashtbl List Nvm
