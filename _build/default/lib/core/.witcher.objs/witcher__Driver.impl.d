lib/core/driver.ml: Array Ctx List Nvm Op Output Pmdk Pmem Printexc Printf Store_intf Trace
