lib/core/report.ml: Array Buffer Cluster Engine Fmt List Perf Printf String Yat
