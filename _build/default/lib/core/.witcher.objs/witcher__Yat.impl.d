lib/core/yat.ml: Array Crash_sim Hashtbl List Nvm Pmem Trace
