lib/core/engine.ml: Array Cluster Crash_gen Driver Equiv Hashtbl Infer List Nvm Op Perf Store_intf Unix Workload
