lib/core/perf.ml: Hashtbl List Nvm Option
