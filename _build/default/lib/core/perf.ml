(* Trace-based performance-bug detection (§4.5). No crash simulation is
   needed; a single walk tracking the persistence state in program order
   finds:

   - P-U   unpersisted: a store never covered by any flush by the end of
           the trace — the data behaves as volatile and should live in
           DRAM;
   - P-EFL extra flush: a flush of a line with no unflushed dirty store;
   - P-EFE extra fence: a fence with no preceding flush since the last
           fence;
   - P-EL  extra logging: a tx_add_range whose region was already fully
           logged in the same transaction.

   Like the paper we report *bugs* as distinct static sites; raw dynamic
   occurrence counts are kept for the reports. *)

type counts = {
  sites : (string, int) Hashtbl.t;  (* sid -> occurrences *)
}

type t = {
  p_u : counts;
  p_efl : counts;
  p_efe : counts;
  p_el : counts;
}

let mk () = { sites = Hashtbl.create 16 }

let hit c sid =
  Hashtbl.replace c.sites sid (1 + Option.value ~default:0 (Hashtbl.find_opt c.sites sid))

let n_bugs c = Hashtbl.length c.sites
let n_occurrences c = Hashtbl.fold (fun _ n acc -> acc + n) c.sites 0
let bug_sites c =
  Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) c.sites []
  |> List.sort compare

type line_track = {
  mutable unflushed : (int * string) list;  (* store tid, sid: dirty, no flush yet *)
}

let detect (trace : Nvm.Trace.t) =
  let t = { p_u = mk (); p_efl = mk (); p_efe = mk (); p_el = mk () } in
  let lines : (int, line_track) Hashtbl.t = Hashtbl.create 1024 in
  let flush_since_fence = ref 0 in
  (* Per transaction: logged intervals (addr, len). *)
  let tx_logs : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let line_of addr = Nvm.Pmem.line_of_addr addr in
  let track line =
    match Hashtbl.find_opt lines line with
    | Some l -> l
    | None ->
      let l = { unflushed = [] } in
      Hashtbl.add lines line l;
      l
  in
  Nvm.Trace.iter
    (fun ev ->
       match ev with
       | Nvm.Trace.Store s ->
         let l = track (line_of s.s_addr) in
         l.unflushed <- (s.s_tid, s.s_sid) :: l.unflushed
       | Nvm.Trace.Flush f ->
         incr flush_since_fence;
         let l = track f.f_line in
         if l.unflushed = [] then hit t.p_efl f.f_sid
         else l.unflushed <- []
       | Nvm.Trace.Fence f ->
         if !flush_since_fence = 0 then hit t.p_efe f.n_sid;
         flush_since_fence := 0
       | Nvm.Trace.Log_range g ->
         let logs =
           match Hashtbl.find_opt tx_logs g.g_tx with
           | Some l -> l
           | None ->
             let l = ref [] in
             Hashtbl.add tx_logs g.g_tx l;
             l
         in
         let covered =
           (* fully contained in the union of previously logged ranges;
              we check containment in a single range, which matches the
              redundant-logging pattern in practice *)
           List.exists
             (fun (a, len) -> g.g_addr >= a && g.g_addr + g.g_len <= a + len)
             !logs
         in
         if covered then hit t.p_el g.g_sid
         else logs := (g.g_addr, g.g_len) :: !logs
       | _ -> ())
    trace;
  (* Anything still unflushed at the end never gets persisted: P-U. *)
  Hashtbl.iter
    (fun _ l ->
       List.iter (fun (_tid, sid) -> hit t.p_u sid) l.unflushed)
    lines;
  t
