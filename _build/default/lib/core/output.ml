(* Operation outputs. Output equivalence checking compares these values
   verbatim between the post-crash execution and the oracles, so users
   never specify what the "correct" output is (§6: E_NOTFOUND vs NULL does
   not matter, only that test and oracle agree). [Crashed] marks a visible
   failure (simulated segfault, exhausted fuel, corrupt pool) during the
   post-crash run; oracles never contain it, so it always diverges. *)

type t =
  | Ok
  | Not_found
  | Found of string
  | Vals of string list
  | Fail of string
  | Crashed of string

let equal a b =
  match a, b with
  | Ok, Ok | Not_found, Not_found -> true
  | Found x, Found y -> String.equal x y
  | Vals x, Vals y -> (try List.for_all2 String.equal x y with Invalid_argument _ -> false)
  | Fail x, Fail y -> String.equal x y
  | Crashed _, _ | _, Crashed _ -> false
  | (Ok | Not_found | Found _ | Vals _ | Fail _), _ -> false

(* Post-crash values can be raw garbage bytes; keep reports text-safe. *)
let printable s =
  String.map (fun c -> if c >= ' ' && c < '\127' then c else '?') s

let to_string = function
  | Ok -> "ok"
  | Not_found -> "notfound"
  | Found v -> "found:" ^ printable v
  | Vals vs -> "vals:[" ^ String.concat ";" (List.map printable vs) ^ "]"
  | Fail m -> "fail:" ^ m
  | Crashed m -> "CRASHED:" ^ m

let pp ppf t = Fmt.string ppf (to_string t)
