(* The interface every tested NVM program implements — the analogue of the
   paper's template driver with placeholders for initialization, recovery
   and operations (§6).

   [create] builds a fresh store in an empty pool. [open_] attaches to an
   existing pool image (possibly a crash image) and runs the program's
   recovery code, if any. Both receive the instrumented context through
   which every NVM access must go. *)

module type S = sig
  val name : string

  (** Pool size in bytes; the driver allocates the simulated NVM image. *)
  val pool_size : int

  (** Whether range scans are meaningful for this design (hash tables
      typically say [false]). *)
  val supports_scan : bool

  type t

  val create : Nvm.Ctx.t -> t

  (** Attach to an existing image and run recovery. May raise (corrupt
      pool, fault): the driver reports that as a visible crash. *)
  val open_ : Nvm.Ctx.t -> t

  val exec : t -> Op.t -> Output.t
end

type instance = (module S)
