(* Inference of likely-correctness conditions (§4.2, Table 2).

   The trace already carries the Persistence Program Dependence Graph: a
   Store event's [s_dd] / [s_cd] are the NVM loads its value / enclosing
   branch guards derive from, and a Load event's [l_cd] are the guards of
   a guarded read. The rules:

   PO1  W(Y) -dd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO2  W(Y) -cd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO3  R(Y) -cd-> R(X)   ==>  P(Y) -hb-> W(X)   (X is a guardian)
   PA1  two guardians X, Y ==>  AP(X, Y)

   A condition is stored as {watch; req}: when a store to [watch] is
   observed, the latest store to [req] must already be persisted —
   otherwise an NVM state where the watch-store persisted and the
   req-store did not violates the condition. For PO1/PO2, watch = Y and
   req = X; for PO3 the guardian is the watched side (watch = X, req = Y).

   Conditions are keyed by dynamic NVM address ranges (cells), like the
   paper, so counts in Table 5 grow with the trace. *)

type rule = PO1 | PO2 | PO3

let rule_name = function PO1 -> "PO1" | PO2 -> "PO2" | PO3 -> "PO3"

type cell = {
  c_addr : int;
  c_len : int;
  c_sid : string;
}

type po = {
  watch : cell;
  req : cell;
  rule : rule;
}

type t = {
  po_index : (int, po list ref) Hashtbl.t;  (* 8-byte word of watch -> conds *)
  guardian_index : (int, cell list ref) Hashtbl.t;  (* word -> guardian cells *)
  mutable n_guardians : int;
  mutable n_po1 : int;
  mutable n_po2 : int;
  mutable n_po3 : int;
}

let n_ordering t = t.n_po1 + t.n_po2 + t.n_po3
let n_atomicity t = t.n_guardians * (t.n_guardians - 1) / 2
let n_guardians t = t.n_guardians

let overlap a1 l1 a2 l2 = a1 < a2 + l2 && a2 < a1 + l1

let words addr len =
  let first = addr lsr 3 and last = (addr + len - 1) lsr 3 in
  List.init (last - first + 1) (fun i -> first + i)

let cell_of_load (l : Nvm.Trace.load_ev) =
  { c_addr = l.l_addr; c_len = l.l_len; c_sid = l.l_sid }

let add_po t seen ~watch ~req rule =
  if not (overlap watch.c_addr watch.c_len req.c_addr req.c_len) then begin
    let key = (watch.c_addr, watch.c_len, req.c_addr, req.c_len, rule) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      (match rule with
       | PO1 -> t.n_po1 <- t.n_po1 + 1
       | PO2 -> t.n_po2 <- t.n_po2 + 1
       | PO3 -> t.n_po3 <- t.n_po3 + 1);
      let cond = { watch; req; rule } in
      List.iter
        (fun w ->
           match Hashtbl.find_opt t.po_index w with
           | Some l -> l := cond :: !l
           | None -> Hashtbl.add t.po_index w (ref [ cond ]))
        (words watch.c_addr watch.c_len)
    end
  end

let add_guardian t seen_g cell =
  let key = (cell.c_addr, cell.c_len) in
  if not (Hashtbl.mem seen_g key) then begin
    Hashtbl.add seen_g key ();
    t.n_guardians <- t.n_guardians + 1;
    List.iter
      (fun w ->
         match Hashtbl.find_opt t.guardian_index w with
         | Some l -> l := cell :: !l
         | None -> Hashtbl.add t.guardian_index w (ref [ cell ]))
      (words cell.c_addr cell.c_len)
  end

let infer (trace : Nvm.Trace.t) =
  let t =
    { po_index = Hashtbl.create 4096;
      guardian_index = Hashtbl.create 256;
      n_guardians = 0; n_po1 = 0; n_po2 = 0; n_po3 = 0 }
  in
  let seen = Hashtbl.create 8192 in
  let seen_g = Hashtbl.create 256 in
  let load_of tid =
    match Nvm.Trace.get trace tid with
    | Nvm.Trace.Load l -> Some l
    | _ -> None
  in
  Nvm.Trace.iter
    (fun ev ->
       match ev with
       | Nvm.Trace.Store s ->
         let y = { c_addr = s.s_addr; c_len = s.s_len; c_sid = s.s_sid } in
         Nvm.Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some l -> add_po t seen ~watch:y ~req:(cell_of_load l) PO1
              | None -> ())
           s.s_dd ();
         Nvm.Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some l -> add_po t seen ~watch:y ~req:(cell_of_load l) PO2
              | None -> ())
           s.s_cd ()
       | Nvm.Trace.Load l when not (Nvm.Taint.is_empty l.l_cd) ->
         let y = cell_of_load l in
         Nvm.Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some g ->
                let x = cell_of_load g in
                if not (overlap x.c_addr x.c_len y.c_addr y.c_len) then begin
                  add_po t seen ~watch:x ~req:y PO3;
                  add_guardian t seen_g x
                end
              | None -> ())
           l.l_cd ()
       | _ -> ())
    trace;
  t

(* Conditions whose watch cell overlaps a store to [addr,len). *)
let conds_for t addr len =
  List.concat_map
    (fun w ->
       match Hashtbl.find_opt t.po_index w with
       | Some l -> List.filter (fun c -> overlap c.watch.c_addr c.watch.c_len addr len) !l
       | None -> [])
    (words addr len)

(* Guardian cells overlapping a store to [addr,len). *)
let guardians_for t addr len =
  List.concat_map
    (fun w ->
       match Hashtbl.find_opt t.guardian_index w with
       | Some l -> List.filter (fun c -> overlap c.c_addr c.c_len addr len) !l
       | None -> [])
    (words addr len)
