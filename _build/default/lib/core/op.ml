(* Key-value operations: the well-known store interface Witcher's template
   driver exercises (§6). Keys are integers, values short strings. *)

type t =
  | Insert of int * string
  | Update of int * string
  | Delete of int
  | Query of int
  | Scan of int * int  (* start key, count *)

type kind = K_insert | K_update | K_delete | K_query | K_scan

let kind = function
  | Insert _ -> K_insert
  | Update _ -> K_update
  | Delete _ -> K_delete
  | Query _ -> K_query
  | Scan _ -> K_scan

let kind_name = function
  | K_insert -> "insert"
  | K_update -> "update"
  | K_delete -> "delete"
  | K_query -> "query"
  | K_scan -> "scan"

let desc t =
  match t with
  | Insert (k, v) -> Printf.sprintf "insert(%d,%s)" k v
  | Update (k, v) -> Printf.sprintf "update(%d,%s)" k v
  | Delete k -> Printf.sprintf "delete(%d)" k
  | Query k -> Printf.sprintf "query(%d)" k
  | Scan (k, n) -> Printf.sprintf "scan(%d,%d)" k n

let pp ppf t = Fmt.string ppf (desc t)
