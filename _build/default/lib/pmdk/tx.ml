(* Undo-log transactions, the libpmemobj-TX analogue. The protocol:

   begin:      tx_state := 1 (persisted), empty log.
   add_range:  append [addr|len|old bytes] to the log arena and persist the
               entry *before* bumping the persisted entry count — only then
               may the caller modify the range (undo-logging rule).
   commit:     persist every logged range, fence, then tx_state := 0.
   recovery:   if tx_state = 1, the crash hit an open transaction: apply
               undo entries in reverse, persist, then tx_state := 0.

   Applications that modify a range without logging it first (the paper's
   "missing logging in a transaction" bugs, IDs 40-43) leave recovery
   unable to roll the range back, which Witcher exposes as an output
   divergence. Each add_range also emits a Log_range trace event so the
   performance detector can flag redundant logging (P-EL). *)

open Nvm

exception Log_full

type t = {
  pool : Pool.t;
  id : int;
}

let ctx t = Pool.ctx t.pool

let begin_ pool =
  let c = Pool.ctx pool in
  let id = Ctx.fresh_tx c in
  Ctx.write_u64 c ~sid:"pmdk:tx.begin_count" Layout.off_tx_count (Tv.const 0);
  Ctx.write_u64 c ~sid:"pmdk:tx.begin_tail" Layout.off_tx_tail
    (Tv.const Layout.log_area);
  Ctx.write_u64 c ~sid:"pmdk:tx.begin_state" Layout.off_tx_state (Tv.const 1);
  Ctx.persist c ~sid:"pmdk:tx.begin_persist" Layout.off_tx_state 24;
  Ctx.tx_begin c ~tx:id;
  { pool; id }

let add_range t addr len =
  let c = ctx t in
  Ctx.log_range c ~sid:"pmdk:tx.add_range" ~tx:t.id addr len;
  let tail = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.tail" Layout.off_tx_tail) in
  if tail + 16 + len > Layout.log_area + Layout.log_size then raise Log_full;
  let old = Ctx.read_bytes c ~sid:"pmdk:tx.old_data" addr len in
  Ctx.write_u64 c ~sid:"pmdk:tx.entry_addr" tail (Tv.const addr);
  Ctx.write_u64 c ~sid:"pmdk:tx.entry_len" (tail + 8) (Tv.const len);
  Ctx.write_bytes c ~sid:"pmdk:tx.entry_data" (tail + 16) old;
  Ctx.persist c ~sid:"pmdk:tx.entry_persist" tail (16 + len);
  let count = Ctx.read_u64 c ~sid:"pmdk:tx.count" Layout.off_tx_count in
  Ctx.write_u64 c ~sid:"pmdk:tx.count_bump" Layout.off_tx_count
    (Tv.add count Tv.one);
  Ctx.write_u64 c ~sid:"pmdk:tx.tail_bump" Layout.off_tx_tail
    (Tv.const (tail + 16 + len));
  Ctx.persist c ~sid:"pmdk:tx.count_persist" Layout.off_tx_count 16

(* Persist all logged ranges, then retire the log. *)
let commit t =
  let c = ctx t in
  let count = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.commit_count" Layout.off_tx_count) in
  let rec flush_entries i tail =
    if i < count then begin
      let addr = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.commit_addr" tail) in
      let len = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.commit_len" (tail + 8)) in
      Ctx.flush_range c ~sid:"pmdk:tx.commit_flush" addr len;
      flush_entries (i + 1) (tail + 16 + len)
    end
  in
  flush_entries 0 Layout.log_area;
  Ctx.fence c ~sid:"pmdk:tx.commit_fence";
  Ctx.write_u64 c ~sid:"pmdk:tx.commit_state" Layout.off_tx_state (Tv.const 0);
  Ctx.persist c ~sid:"pmdk:tx.commit_persist" Layout.off_tx_state 8;
  Ctx.tx_commit c ~tx:t.id

(* Roll back immediately using the in-pool log (explicit abort). *)
let apply_undo c =
  let count = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.rec_count" Layout.off_tx_count) in
  (* Collect entry offsets in append order, then undo in reverse. *)
  let rec offsets i tail acc =
    if i >= count then acc
    else begin
      let len = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.rec_len" (tail + 8)) in
      offsets (i + 1) (tail + 16 + len) (tail :: acc)
    end
  in
  List.iter
    (fun tail ->
       let addr = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.rec_addr" tail) in
       let len = Tv.value (Ctx.read_u64 c ~sid:"pmdk:tx.rec_len2" (tail + 8)) in
       let old = Ctx.read_bytes c ~sid:"pmdk:tx.rec_data" (tail + 16) len in
       Ctx.write_bytes c ~sid:"pmdk:tx.rec_undo" addr old;
       Ctx.persist c ~sid:"pmdk:tx.rec_persist" addr len)
    (offsets 0 Layout.log_area []);
  Ctx.write_u64 c ~sid:"pmdk:tx.rec_state" Layout.off_tx_state (Tv.const 0);
  Ctx.persist c ~sid:"pmdk:tx.rec_state_persist" Layout.off_tx_state 8

let abort t =
  let c = ctx t in
  apply_undo c;
  Ctx.tx_abort c ~tx:t.id

(* Post-crash recovery; stores call this from their [recover]. *)
let recover pool =
  let c = Pool.ctx pool in
  let state = Ctx.read_u64 c ~sid:"pmdk:tx.rec_check" Layout.off_tx_state in
  if Tv.to_bool state then apply_undo c

(* Run [f] in a transaction; an exception aborts (rolls back) and
   re-raises. *)
let run pool f =
  let t = begin_ pool in
  match f t with
  | v -> commit t; v
  | exception e -> abort t; raise e
