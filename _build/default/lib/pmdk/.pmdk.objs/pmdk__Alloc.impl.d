lib/pmdk/alloc.ml: Ctx Layout Nvm Pmem Pool String Tv
