lib/pmdk/layout.ml:
