lib/pmdk/pool.ml: Ctx Layout Nvm Pmem Tv
