lib/pmdk/tx.ml: Ctx Layout List Nvm Pool Tv
