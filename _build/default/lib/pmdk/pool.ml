(* Persistent memory pool management, the libpmemobj analogue. A pool owns
   a header, an undo-log arena (see Tx) and a heap (see Alloc). Stores
   obtain their root object via [root] and never touch the header
   directly.

   [alloc_bug] reproduces the paper's Bug #1 ("incorrect persistence order
   in allocation", PMDK issue 4945, Priority 1 showstopper): the allocator
   hands out a block before its bump pointer is durable, so an application
   pointer to the block can persist while the allocator metadata does not;
   after the crash, the same region is handed out again. *)

open Nvm

type config = {
  alloc_bug : bool;
}

let default_config = { alloc_bug = false }

type t = {
  ctx : Ctx.t;
  cfg : config;
}

exception Corrupt_pool of string

let ctx t = t.ctx
let config t = t.cfg

let read t ~sid off = Ctx.read_u64 t.ctx ~sid off
let write t ~sid off v = Ctx.write_u64 t.ctx ~sid off (Tv.const v)

let create ?(cfg = default_config) ctx ~root_size =
  let t = { ctx; cfg } in
  let root_size = Layout.align16 root_size in
  let root = Layout.heap_start + Layout.block_header in
  write t ~sid:"pmdk:create.root" Layout.off_root root;
  write t ~sid:"pmdk:create.root_size" Layout.off_root_size root_size;
  Ctx.write_u64 ctx ~sid:"pmdk:create.block_size"
    Layout.heap_start (Tv.const root_size);
  write t ~sid:"pmdk:create.alloc_head" Layout.off_alloc_head
    (root + root_size);
  write t ~sid:"pmdk:create.free_head" Layout.off_free_head 0;
  write t ~sid:"pmdk:create.tx_state" Layout.off_tx_state 0;
  write t ~sid:"pmdk:create.tx_count" Layout.off_tx_count 0;
  write t ~sid:"pmdk:create.tx_tail" Layout.off_tx_tail Layout.log_area;
  Ctx.persist ctx ~sid:"pmdk:create.persist" 0 64;
  (* The magic is persisted last: a pool missing it is simply re-created,
     which makes pool creation itself crash-consistent. *)
  write t ~sid:"pmdk:create.magic" Layout.off_magic Layout.magic;
  Ctx.persist ctx ~sid:"pmdk:create.persist_magic" Layout.off_magic 8;
  t

let is_initialized ctx =
  Pmem.read_u64 (Ctx.pmem ctx) Layout.off_magic = Layout.magic

let open_ ?(cfg = default_config) ctx =
  let t = { ctx; cfg } in
  let m = Tv.value (read t ~sid:"pmdk:open.magic" Layout.off_magic) in
  if m <> Layout.magic then raise (Corrupt_pool "bad magic");
  t

let root t = Tv.value (read t ~sid:"pmdk:root" Layout.off_root)
