(* Pool layout constants. The header mirrors what libpmemobj keeps at the
   start of a pool: identification, the root object, allocator state and
   the transaction undo-log arena. All fields are 8-byte words. *)

let magic = 0x5749_5443 (* "WITC" *)

let off_magic = 0
let off_root = 8
let off_root_size = 16
let off_alloc_head = 24
let off_free_head = 32
let off_tx_state = 40
let off_tx_count = 48
let off_tx_tail = 56

let log_area = 64
let log_size = 256 * 1024
let heap_start = log_area + log_size

(* Allocation block: [size:8][pad:8][user bytes...]; user addr is
   returned. The 16-byte header keeps user addresses 16-aligned, so a
   16-byte record write never straddles a cache line and is a single
   atomic store event — the property FAST-style entry moves rely on. *)
let block_header = 16

let align16 n = (n + 15) land lnot 15
