(* The persistent heap allocator: a bump pointer plus an exact-fit free
   list, with all metadata in the pool so allocation state survives
   crashes. The correct persist order is: block header, then bump
   pointer / free-list head, each made durable before the block is handed
   to the application. With [alloc_bug] the bump-pointer update is written
   but not persisted — the paper's libpmemobj Bug #1. *)

open Nvm

exception Out_of_memory

let pool_end pool = Pmem.size (Ctx.pmem (Pool.ctx pool))

(* Pop the free-list head if it fits exactly, else bump. *)
let alloc pool size =
  let ctx = Pool.ctx pool in
  let size = Layout.align16 (max size 16) in
  let free = Ctx.read_u64 ctx ~sid:"pmdk:alloc.free_head" Layout.off_free_head in
  let exact_fit =
    Tv.to_bool free
    && Tv.value
         (Ctx.read_u64 ctx ~sid:"pmdk:alloc.free_size"
            (Tv.value free - Layout.block_header))
       = size
  in
  if exact_fit then begin
    let next = Ctx.read_u64 ctx ~sid:"pmdk:alloc.free_next" (Tv.value free) in
    Ctx.write_u64 ctx ~sid:"pmdk:alloc.pop" Layout.off_free_head next;
    Ctx.persist ctx ~sid:"pmdk:alloc.pop_persist" Layout.off_free_head 8;
    Tv.value free
  end
  else begin
    let head = Ctx.read_u64 ctx ~sid:"pmdk:alloc.head" Layout.off_alloc_head in
    let block = Tv.value head in
    let user = block + Layout.block_header in
    if user + size > pool_end pool then raise Out_of_memory;
    Ctx.write_u64 ctx ~sid:"pmdk:alloc.block_size" block (Tv.const size);
    Ctx.flush ctx ~sid:"pmdk:alloc.block_flush" block;
    let head' = Tv.add head (Tv.const (Layout.block_header + size)) in
    Ctx.write_u64 ctx ~sid:"pmdk:alloc.bump" Layout.off_alloc_head head';
    if (Pool.config pool).alloc_bug && size >= 128 then
      (* BUG (paper Bug 1, C-O, PMDK issue 4945): the large-object
         allocation path never flushes the new bump pointer, so the
         allocation is lost on crash while persisted application pointers
         already reference the block — the recovered heap hands the same
         region out again. *)
      ()
    else begin
      Ctx.flush ctx ~sid:"pmdk:alloc.bump_flush" Layout.off_alloc_head;
      Ctx.fence ctx ~sid:"pmdk:alloc.bump_fence"
    end;
    user
  end

(* Zeroing allocation, as pmemobj_tx_zalloc: the block is zeroed and the
   zeroes persisted before the caller links it anywhere. *)
let zalloc pool size =
  let ctx = Pool.ctx pool in
  let user = alloc pool size in
  let size = Layout.align16 (max size 16) in
  Ctx.write_bytes ctx ~sid:"pmdk:zalloc.zero" user
    (Tv.blob (String.make size '\000'));
  Ctx.persist ctx ~sid:"pmdk:zalloc.persist" user size;
  user

let free pool user =
  let ctx = Pool.ctx pool in
  let head = Ctx.read_u64 ctx ~sid:"pmdk:free.head" Layout.off_free_head in
  Ctx.write_u64 ctx ~sid:"pmdk:free.next" user head;
  Ctx.persist ctx ~sid:"pmdk:free.next_persist" user 8;
  Ctx.write_u64 ctx ~sid:"pmdk:free.push" Layout.off_free_head
    (Tv.const user);
  Ctx.persist ctx ~sid:"pmdk:free.push_persist" Layout.off_free_head 8
