(* Nestable timed spans with key/value attributes. A [buf] collects
   completed spans (wall-clock start + duration + nesting depth); the
   engine wraps its pipeline stages in [with_span], campaign workers ship
   their buffer back to the orchestrator over the result pipe, and
   [Trace_export] turns buffers into a Chrome trace_event file.

   Spans close strictly LIFO ([with_span] brackets a callback and closes
   on exception too), so the events of one buffer are always properly
   nested: two spans either do not overlap in time, or one contains the
   other and the inner one is deeper. [well_nested] checks exactly that
   and is asserted in tests over exported traces. *)

type event = {
  name : string;
  ts : float;                     (* start, seconds since the epoch *)
  dur : float;                    (* seconds *)
  depth : int;                    (* nesting depth at open (0 = top) *)
  attrs : (string * string) list;
}

type buf = {
  mutable events : event list;    (* completion order, most recent first *)
  mutable depth : int;            (* currently open spans *)
}

let create_buf () = { events = []; depth = 0 }

(* The shared per-process buffer, paired with [Metrics.default]:
   [Engine.run] clears it at entry, workers serialize it after the run. *)
let default_buf = create_buf ()

let clear b =
  b.events <- [];
  b.depth <- 0

(* Completed spans in start order (stable for equal timestamps: an outer
   span sorts before the inner spans it contains). *)
let events b =
  List.stable_sort
    (fun a b' -> if a.ts = b'.ts then compare a.depth b'.depth else compare a.ts b'.ts)
    (List.rev b.events)

(* Record a span with explicit timing at the current depth. The engine
   uses this to lay out the pipeline-fused gen/equiv stages as two
   adjacent logical spans whose durations are measured, not bracketed. *)
let add ?(buf = default_buf) ?(attrs = []) ~name ~ts ~dur () =
  buf.events <- { name; ts; dur = Float.max 0. dur; depth = buf.depth; attrs }
                :: buf.events

let with_span ?(buf = default_buf) ?(attrs = []) name f =
  let t0 = Unix.gettimeofday () in
  let depth = buf.depth in
  buf.depth <- depth + 1;
  let finish () =
    buf.depth <- depth;
    buf.events <-
      { name; ts = t0; dur = Unix.gettimeofday () -. t0; depth; attrs }
      :: buf.events
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* No span closes before a child it contains: for every pair of events,
   their intervals are either disjoint or nested, and containment implies
   strictly greater depth. [eps] absorbs clock granularity. *)
let well_nested ?(eps = 1e-6) evs =
  let contains a b =
    a.ts <= b.ts +. eps && b.ts +. b.dur <= a.ts +. a.dur +. eps
  in
  let disjoint a b =
    a.ts +. a.dur <= b.ts +. eps || b.ts +. b.dur <= a.ts +. eps
  in
  let pair_ok a b =
    if disjoint a b then true
    else if contains a b && a.depth < b.depth then true
    else if contains b a && b.depth < a.depth then true
    else false
  in
  let arr = Array.of_list evs in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (pair_ok arr.(i) arr.(j)) then ok := false
    done
  done;
  !ok

(* ---------- serialization (worker -> orchestrator) ---------- *)

let event_to_json e =
  Jsonx.Obj
    [ ("name", Jsonx.Str e.name);
      ("ts", Jsonx.Float e.ts);
      ("dur", Jsonx.Float e.dur);
      ("depth", Jsonx.Int e.depth);
      ("attrs",
       Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) e.attrs)) ]

let event_of_json j =
  match j with
  | Jsonx.Obj _ ->
    Some
      { name = Jsonx.str_field j "name";
        ts = Jsonx.float_field j "ts";
        dur = Jsonx.float_field j "dur";
        depth = Jsonx.int_field j "depth";
        attrs =
          (match Jsonx.member "attrs" j with
           | Some (Jsonx.Obj kvs) ->
             List.filter_map
               (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonx.to_str_opt v))
               kvs
           | _ -> []) }
  | _ -> None

let events_to_json evs = Jsonx.List (List.map event_to_json evs)

let events_of_json = function
  | Jsonx.List l -> List.filter_map event_of_json l
  | _ -> []
