(* Minimal JSON for the campaign journal and the CLI's --json output.
   The container has no yojson, so this carries its own encoder and a
   small recursive-descent parser — enough for full round-trips of our
   own output plus any well-formed JSON a user hand-edits into a
   journal. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- encoding ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    (* shortest decimal that round-trips: epoch-seconds span timestamps
       need the full mantissa or sub-second precision is destroyed *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec encode b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v -> if i > 0 then Buffer.add_char b ','; encode b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         escape_string b k;
         Buffer.add_char b ':';
         encode b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  encode b v;
  Buffer.contents b

(* ---------- decoding ---------- *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let fail p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    p.pos < String.length p.s
    && (match p.s.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c = c' -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected %C" c)

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.s && String.sub p.s p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p ("expected " ^ word)

let utf8_of_code b u =
  (* encode a unicode scalar value (from \uXXXX) as UTF-8 *)
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' ->
      p.pos <- p.pos + 1;
      (match peek p with
       | Some '"' -> Buffer.add_char b '"'; p.pos <- p.pos + 1
       | Some '\\' -> Buffer.add_char b '\\'; p.pos <- p.pos + 1
       | Some '/' -> Buffer.add_char b '/'; p.pos <- p.pos + 1
       | Some 'n' -> Buffer.add_char b '\n'; p.pos <- p.pos + 1
       | Some 't' -> Buffer.add_char b '\t'; p.pos <- p.pos + 1
       | Some 'r' -> Buffer.add_char b '\r'; p.pos <- p.pos + 1
       | Some 'b' -> Buffer.add_char b '\b'; p.pos <- p.pos + 1
       | Some 'f' -> Buffer.add_char b '\012'; p.pos <- p.pos + 1
       | Some 'u' ->
         p.pos <- p.pos + 1;
         if p.pos + 4 > String.length p.s then fail p "bad \\u escape";
         let hex = String.sub p.s p.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | Some u -> utf8_of_code b u; p.pos <- p.pos + 4
          | None -> fail p "bad \\u escape")
       | _ -> fail p "bad escape");
      go ()
    | Some c -> Buffer.add_char b c; p.pos <- p.pos + 1; go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    p.pos < String.length p.s && is_num_char p.s.[p.pos]
  do
    p.pos <- p.pos + 1
  done;
  let tok = String.sub p.s start (p.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt tok with
     | Some f -> Float f
     | None -> fail p ("bad number " ^ tok))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '"' -> Str (parse_string p)
  | Some '{' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some '}' then begin p.pos <- p.pos + 1; Obj [] end
    else begin
      let rec fields acc =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' -> p.pos <- p.pos + 1; fields ((k, v) :: acc)
        | Some '}' -> p.pos <- p.pos + 1; List.rev ((k, v) :: acc)
        | _ -> fail p "expected , or }"
      in
      Obj (fields [])
    end
  | Some '[' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some ']' then begin p.pos <- p.pos + 1; List [] end
    else begin
      let rec elems acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' -> p.pos <- p.pos + 1; elems (v :: acc)
        | Some ']' -> p.pos <- p.pos + 1; List.rev (v :: acc)
        | _ -> fail p "expected , or ]"
      in
      List (elems [])
    end
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected %C" c)

let of_string s =
  let p = { s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None

let int_field ?(default = 0) j k =
  Option.value ~default (Option.bind (member k j) to_int_opt)

let float_field ?(default = 0.) j k =
  Option.value ~default (Option.bind (member k j) to_float_opt)

let str_field ?(default = "") j k =
  Option.value ~default (Option.bind (member k j) to_str_opt)
