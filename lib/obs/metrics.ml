(* Process-local metrics registry: counters, gauges, and log2-bucketed
   histograms. The live registry is mutable and cheap to update from hot
   paths (one Hashtbl lookup + an array increment per observation); a
   [snapshot] is an immutable, name-sorted value that serializes through
   [Jsonx] and merges exactly.

   [merge] is associative and commutative (counters and histogram buckets
   add, gauges take the max, histogram min/max take min/max), so folding
   per-worker snapshots in any order — or any grouping — yields the same
   totals a single process observing everything would have produced.
   Campaign aggregation relies on this: the container pinned to one CPU
   means we assert merge exactness in tests instead of measuring parallel
   speedup.

   Histogram buckets: bucket 0 holds values <= 0; bucket k (k >= 1) holds
   values v with 2^(k-1) <= v < 2^k. [n_buckets - 1] is a clamp bucket
   for anything at or above 2^(n_buckets - 2). *)

type hist_state = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
  (* max-observation exemplar: the largest value seen and the event-log
     id ([Event.emit]) active when it was observed, -1 when none. Ties
     keep the larger event id, so merging per-worker snapshots is
     order-independent — a "last observation wins" exemplar would not
     merge deterministically. *)
  mutable h_ex_v : int;
  mutable h_ex_ev : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist_state) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16 }

(* The shared per-process registry. [Engine.run] resets it at entry so a
   run's snapshot covers exactly that run; campaign workers fork, run one
   engine, and ship the snapshot back over the result pipe. *)
let default = create ()

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

(* ---------- buckets ---------- *)

let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits of v, clamped to the last bucket *)
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (bits v 0) (n_buckets - 1)
  end

(* Inclusive lower / exclusive upper value bound of bucket [k]. Bucket 0
   is "<= 0" (lo = min_int); the last bucket is open-ended (hi = max_int). *)
let bucket_lo k = if k <= 0 then min_int else 1 lsl (k - 1)
let bucket_hi k =
  if k <= 0 then 1
  else if k >= n_buckets - 1 then max_int
  else 1 lsl k

(* ---------- recording ---------- *)

let incr ?(m = default) ?(n = 1) name =
  match Hashtbl.find_opt m.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add m.counters name (ref n)

let set_gauge ?(m = default) name v =
  match Hashtbl.find_opt m.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add m.gauges name (ref v)

(* Peak-tracking gauge: keeps the maximum value ever set. [merge] already
   combines gauges with Float.max, so per-worker peaks aggregate into the
   campaign-wide peak for free. *)
let set_gauge_max ?(m = default) name v =
  match Hashtbl.find_opt m.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add m.gauges name (ref v)

(* Live-heap observability (the streaming pipeline's memory bound is
   proved with these): [mem.heap_words] / [mem.live_words] are the current
   GC heap and live words, [mem.peak_heap_words] / [mem.peak_live_words]
   their maxima over the sampled points. [~full:true] runs [Gc.stat] — a
   full major collection, accurate live-word count, expensive — so hot
   loops sample with the default cheap [Gc.quick_stat] (heap words only)
   and reserve full samples for phase boundaries. *)
let sample_mem ?(m = default) ?(full = false) () =
  let q = Gc.quick_stat () in
  let heap = float_of_int q.Gc.heap_words in
  set_gauge ~m "mem.heap_words" heap;
  set_gauge_max ~m "mem.peak_heap_words" heap;
  if full then begin
    let s = Gc.stat () in
    let live = float_of_int s.Gc.live_words in
    set_gauge ~m "mem.live_words" live;
    set_gauge_max ~m "mem.peak_live_words" live
  end

let observe ?(m = default) ?(ev = -1) name v =
  let h =
    match Hashtbl.find_opt m.hists name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
          h_buckets = Array.make n_buckets 0; h_ex_v = min_int; h_ex_ev = -1 }
      in
      Hashtbl.add m.hists name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v > h.h_ex_v || (v = h.h_ex_v && ev > h.h_ex_ev) then begin
    h.h_ex_v <- v;
    h.h_ex_ev <- ev
  end;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

(* ---------- snapshots ---------- *)

type hist = {
  count : int;
  sum : int;
  min : int;                    (* max_int when count = 0 *)
  max : int;                    (* min_int when count = 0 *)
  buckets : (int * int) list;   (* bucket index -> count, sorted, no zeros *)
  exemplar : (int * int) option;
  (* (max value, event id at its observation; -1 if no event sink) —
     lets `witcher explain` link e.g. the longest replay to its image *)
}

type snapshot = {
  counters : (string * int) list;   (* sorted by name *)
  gauges : (string * float) list;   (* sorted by name *)
  hists : (string * hist) list;     (* sorted by name *)
}

let empty = { counters = []; gauges = []; hists = [] }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot (t : t) =
  let hist_of (h : hist_state) =
    let buckets = ref [] in
    for k = n_buckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then buckets := (k, h.h_buckets.(k)) :: !buckets
    done;
    { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
      buckets = !buckets;
      exemplar = (if h.h_count = 0 then None else Some (h.h_ex_v, h.h_ex_ev)) }
  in
  { counters = sorted_bindings t.counters (fun r -> !r);
    gauges = sorted_bindings t.gauges (fun r -> !r);
    hists = sorted_bindings t.hists hist_of }

(* Merge two sorted assoc lists, combining values under the same key with
   [f]. Keeps the result sorted, which is what makes snapshot equality
   structural and [merge] associative/commutative. *)
let rec merge_assoc f a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    if ka < kb then (ka, va) :: merge_assoc f ra b
    else if kb < ka then (kb, vb) :: merge_assoc f a rb
    else (ka, f va vb) :: merge_assoc f ra rb

let merge_hist a b =
  { count = a.count + b.count;
    sum = a.sum + b.sum;
    min = Stdlib.min a.min b.min;
    max = Stdlib.max a.max b.max;
    buckets = merge_assoc ( + ) a.buckets b.buckets;
    exemplar =
      (* lexicographic max over (value, event id): associative,
         commutative, and equal to what one process would have kept *)
      (match (a.exemplar, b.exemplar) with
       | None, e | e, None -> e
       | Some x, Some y -> Some (Stdlib.max x y)) }

let merge a b =
  { counters = merge_assoc ( + ) a.counters b.counters;
    gauges = merge_assoc Float.max a.gauges b.gauges;
    hists = merge_assoc merge_hist a.hists b.hists }

let merge_all = List.fold_left merge empty

let counter_value s name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let find_hist s name = List.assoc_opt name s.hists

(* ---------- estimates ---------- *)

let mean h = if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

(* Quantile estimate from the buckets: the upper edge of the bucket the
   rank falls into, clamped to the observed [min, max] (exact at q = 0
   and q = 1). Log2 buckets bound the relative error by 2x. *)
let quantile h q =
  if h.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec walk cum = function
      | [] -> float_of_int h.max
      | (k, n) :: rest ->
        if cum + n >= rank then
          let hi = bucket_hi k in
          let edge = if hi = max_int then float_of_int h.max
            else float_of_int (hi - 1)
          in
          edge
        else walk (cum + n) rest
    in
    let est = walk 0 h.buckets in
    Float.max (float_of_int h.min) (Float.min (float_of_int h.max) est)
  end

(* ---------- serialization ---------- *)

let hist_to_json h =
  Jsonx.Obj
    ([ ("count", Jsonx.Int h.count);
       ("sum", Jsonx.Int h.sum);
       ("min", Jsonx.Int (if h.count = 0 then 0 else h.min));
       ("max", Jsonx.Int (if h.count = 0 then 0 else h.max));
       ("buckets",
        Jsonx.List
          (List.map
             (fun (k, n) -> Jsonx.List [ Jsonx.Int k; Jsonx.Int n ])
             h.buckets)) ]
     @ (match h.exemplar with
        | None -> []
        | Some (v, ev) ->
          [ ("exemplar", Jsonx.List [ Jsonx.Int v; Jsonx.Int ev ]) ]))

let to_json s =
  Jsonx.Obj
    [ ("counters",
       Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) s.counters));
      ("gauges",
       Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) s.gauges));
      ("hists",
       Jsonx.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.hists)) ]

let hist_of_json j =
  let count = Jsonx.int_field j "count" in
  let buckets =
    match Jsonx.member "buckets" j with
    | Some (Jsonx.List l) ->
      List.filter_map
        (function
          | Jsonx.List [ k; n ] ->
            (match (Jsonx.to_int_opt k, Jsonx.to_int_opt n) with
             | Some k, Some n -> Some (k, n)
             | _ -> None)
          | _ -> None)
        l
    | _ -> []
  in
  { count;
    sum = Jsonx.int_field j "sum";
    min = (if count = 0 then max_int else Jsonx.int_field j "min");
    max = (if count = 0 then min_int else Jsonx.int_field j "max");
    buckets = List.sort compare buckets;
    exemplar =
      (match Jsonx.member "exemplar" j with
       | Some (Jsonx.List [ v; ev ]) ->
         (match (Jsonx.to_int_opt v, Jsonx.to_int_opt ev) with
          | Some v, Some ev -> Some (v, ev)
          | _ -> None)
       | _ -> None) }

let of_json j =
  let obj_bindings name =
    match Jsonx.member name j with Some (Jsonx.Obj kvs) -> kvs | _ -> []
  in
  match j with
  | Jsonx.Obj _ ->
    Ok
      { counters =
          List.filter_map
            (fun (k, v) -> Option.map (fun i -> (k, i)) (Jsonx.to_int_opt v))
            (obj_bindings "counters")
          |> List.sort compare;
        gauges =
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, f)) (Jsonx.to_float_opt v))
            (obj_bindings "gauges")
          |> List.sort compare;
        hists =
          List.map (fun (k, v) -> (k, hist_of_json v)) (obj_bindings "hists")
          |> List.sort (fun (a, _) (b, _) -> compare a b) }
  | _ -> Error "metrics snapshot is not an object"

(* ---------- rendering ---------- *)

(* Text table for `witcher run -v` and campaign reports: counters first,
   then one line per histogram with count/mean/p50/p99/max. *)
let render s =
  let b = Buffer.create 256 in
  if s.counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %12d\n" k v))
      s.counters
  end;
  if s.gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %12.3f\n" k v))
      s.gauges
  end;
  if s.hists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "  %-36s %8s %10s %8s %8s %8s\n" "histogram" "count"
         "mean" "p50" "p99" "max");
    List.iter
      (fun (k, h) ->
         Buffer.add_string b
           (Printf.sprintf "  %-36s %8d %10.1f %8.0f %8.0f %8d\n" k h.count
              (mean h) (quantile h 0.5) (quantile h 0.99)
              (if h.count = 0 then 0 else h.max)))
      s.hists
  end;
  Buffer.contents b
