(* Structured event log (DESIGN §8): the forensics backbone. One record
   per semantically meaningful occurrence in a pipeline run — op
   recorded, condition inferred, crash image generated/deferred, oracle
   built, verdict reached, class promoted, cluster emitted — each with a
   sequential id so later events can reference earlier ones and a
   post-hoc reader (`witcher explain`) can reconstruct the provenance
   chain image -> fence/op -> violated condition -> path-signature class
   -> verdict -> cluster without re-executing anything.

   The sink is process-local and caller-owned: the CLI (or a campaign
   worker) calls [start]/[stop] around [Engine.run]; the engine itself
   never resets it, unlike [Metrics.default]. Emission sites across the
   pipeline guard on [enabled] — a single ref read — so a run without a
   sink pays one predictable branch per would-be event and allocates
   nothing.

   Records are buffered in memory and written as JSONL at [stop]: one
   object per line, `{"i": <id>, "e": "<kind>", ...fields}`. Ids are
   sequential per sink (= per shard in a campaign); a merged stream is
   re-scoped on its `run` header events, whose "v" field versions the
   schema. Events deliberately carry no wall-clock timestamps: the log of
   a run is a pure function of (store, seed, config), which is what lets
   a golden file pin `explain` output byte-for-byte. *)

type t = {
  mutable seq : int;
  mutable rev_items : Jsonx.t list;   (* newest first *)
  path : string option;               (* write JSONL here at [stop] *)
  conds : (string, int) Hashtbl.t;    (* "rule|watch|req" -> cond event id *)
}

(* Schema version, carried on every `run` header event. Bump on any
   incompatible change to event kinds or field meanings; readers must
   skip runs with a version they do not know. *)
let version = 1

let on = ref false
let current : t option ref = ref None

(* Id of the most recent `image` event with action "test": the
   pipeline is fused (one image alive at a time, checked synchronously),
   so the verdict reached inside [on_image] — and any metric observed
   during the replay — belongs to this image. -1 when no sink. *)
let last_image_id = ref (-1)

let enabled () = !on

let start ?path () =
  current := Some { seq = 0; rev_items = []; path; conds = Hashtbl.create 32 };
  last_image_id := -1;
  on := true

let emit ?(fields = []) kind =
  match !current with
  | None -> -1
  | Some s ->
    let id = s.seq in
    s.seq <- id + 1;
    s.rev_items <-
      Jsonx.Obj (("i", Jsonx.Int id) :: ("e", Jsonx.Str kind) :: fields)
      :: s.rev_items;
    id

(* Interned violated-condition event: the first image referencing a
   (rule, watch site, req site) triple emits one `cond` record; every
   later image at the same condition reuses its id. *)
let cond_id ~rule ~watch ~req =
  match !current with
  | None -> -1
  | Some s ->
    let key = rule ^ "|" ^ watch ^ "|" ^ req in
    (match Hashtbl.find_opt s.conds key with
     | Some id -> id
     | None ->
       let id =
         emit "cond"
           ~fields:
             [ ("rule", Jsonx.Str rule); ("watch", Jsonx.Str watch);
               ("req", Jsonx.Str req) ]
       in
       Hashtbl.add s.conds key id;
       id)

(* Events emitted so far, oldest first. Usable while the sink is live
   (`run -v` renders its footer from the in-memory stream). *)
let items () =
  match !current with None -> [] | Some s -> List.rev s.rev_items

(* Close the sink: write the JSONL shard if a path was given, return the
   events, and disable emission. Never raises on I/O problems — losing a
   forensics shard must not fail the run that produced it. *)
let stop () =
  let its = items () in
  (match !current with
   | Some { path = Some p; _ } ->
     (try
        let oc = open_out p in
        List.iter
          (fun j ->
             output_string oc (Jsonx.to_string j);
             output_char oc '\n')
          its;
        close_out oc
      with Sys_error _ -> ())
   | _ -> ());
  current := None;
  on := false;
  last_image_id := -1;
  its
