(* Chrome trace_event JSON ("JSON Object Format"), loadable in Perfetto /
   chrome://tracing. One track per process: campaign workers each get
   their own pid row (named after the job they ran), the orchestrator
   gets a row of per-job spans, and a single `witcher run` exports its
   own pid. Spans become "X" (complete) events; ts/dur are microseconds.

   Nesting needs no explicit B/E pairing: Perfetto stacks X events on
   the same pid/tid by containment, which [Span.with_span]'s LIFO
   discipline guarantees. *)

type track = {
  pid : int;
  label : string;                 (* process_name shown on the track *)
  events : Span.event list;
}

let micros s = int_of_float (Float.round (s *. 1e6))

let event_json ~pid (e : Span.event) =
  Jsonx.Obj
    [ ("name", Jsonx.Str e.name);
      ("ph", Jsonx.Str "X");
      ("pid", Jsonx.Int pid);
      ("tid", Jsonx.Int pid);
      ("ts", Jsonx.Int (micros e.ts));
      ("dur", Jsonx.Int (Stdlib.max 1 (micros e.dur)));
      ("args",
       Jsonx.Obj
         (("depth", Jsonx.Int e.depth)
          :: List.map (fun (k, v) -> (k, Jsonx.Str v)) e.attrs)) ]

let meta_json ~pid ~label =
  Jsonx.Obj
    [ ("name", Jsonx.Str "process_name");
      ("ph", Jsonx.Str "M");
      ("pid", Jsonx.Int pid);
      ("tid", Jsonx.Int pid);
      ("args", Jsonx.Obj [ ("name", Jsonx.Str label) ]) ]

let to_json tracks =
  let events =
    List.concat_map
      (fun t ->
         meta_json ~pid:t.pid ~label:t.label
         :: List.map (event_json ~pid:t.pid) t.events)
      tracks
  in
  Jsonx.Obj
    [ ("traceEvents", Jsonx.List events);
      ("displayTimeUnit", Jsonx.Str "ms") ]

let to_string tracks = Jsonx.to_string (to_json tracks)

let write ~path tracks =
  let oc = open_out path in
  output_string oc (to_string tracks);
  output_char oc '\n';
  close_out oc

(* Merge tracks sharing a pid (a recycled worker pid must not produce two
   process_name metadata rows); first label wins, events concatenate. *)
let coalesce tracks =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
       match Hashtbl.find_opt tbl t.pid with
       | None ->
         order := t.pid :: !order;
         Hashtbl.add tbl t.pid t
       | Some prev ->
         Hashtbl.replace tbl t.pid
           { prev with events = prev.events @ t.events })
    tracks;
  List.rev_map (fun pid -> Hashtbl.find tbl pid) !order
