(* Reference (pre-fast-path) front end: the inference and image-generation
   algorithms as they were before sids were interned and the trace went
   struct-of-arrays. Kept verbatim in cost structure —

   - [infer] walks reconstructed events ([Trace.iter] + match), resolves
     taint members through [Trace.get], and backs the per-word condition
     and guardian indexes with hash tables of list refs; [conds_for]
     allocates a word list per lookup ([Infer.words]' [List.init]) and
     re-filters the bucket lists each time.
   - [generate] keeps its own tid -> store_ev hash table (the lookup the
     old Crash_sim provided), a per-word latest-store hash table, and
     string-keyed site caps (sids converted back to strings per image,
     like the old string-sid events).

   — so `bench/main.exe frontend` measures exactly the indexing and
   allocation costs the fast path removed, over the same trace and the
   same (shared) crash simulator backend. Both paths produce identical
   condition counts, image digest sequences, stats and cluster reports;
   the bench asserts this on every run.

   Two deliberate departures from the historical code, both needed for
   parity (documented here so the baseline isn't mistaken for bug-for-bug
   archaeology): the epoch dedup table is keyed on the condition tuple
   itself rather than its [Hashtbl.hash] (the collision bug fixed in the
   fast path — keeping the bug here would make parity flaky), and
   [path_hash] folds interned sid ints exactly like the fast path (the
   old string-hash fold partitions paths the same way but with different
   hash values, which would break cluster-report equality). *)

open Nvm

type t = {
  po_index : (int, Infer.po list ref) Hashtbl.t;  (* watch word -> conds *)
  guardian_index : (int, Infer.cell list ref) Hashtbl.t;
  mutable n_guardians : int;
  mutable n_po1 : int;
  mutable n_po2 : int;
  mutable n_po3 : int;
}

let n_ordering t = t.n_po1 + t.n_po2 + t.n_po3
let n_atomicity t = t.n_guardians * (t.n_guardians - 1) / 2
let n_guardians t = t.n_guardians

let cell_of_load (l : Trace.load_ev) : Infer.cell =
  { c_addr = l.l_addr; c_len = l.l_len; c_sid = l.l_sid }

let add_po (t : t) seen ~(watch : Infer.cell) ~(req : Infer.cell) rule =
  if not (Infer.overlap watch.c_addr watch.c_len req.c_addr req.c_len)
  then begin
    let key = (watch.c_addr, watch.c_len, req.c_addr, req.c_len, rule) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      (match rule with
       | Infer.PO1 -> t.n_po1 <- t.n_po1 + 1
       | Infer.PO2 -> t.n_po2 <- t.n_po2 + 1
       | Infer.PO3 -> t.n_po3 <- t.n_po3 + 1);
      let cond : Infer.po = { watch; req; rule } in
      List.iter
        (fun w ->
           match Hashtbl.find_opt t.po_index w with
           | Some l -> l := cond :: !l
           | None -> Hashtbl.add t.po_index w (ref [ cond ]))
        (Infer.words watch.c_addr watch.c_len)
    end
  end

let add_guardian t seen_g (cell : Infer.cell) =
  let key = (cell.c_addr, cell.c_len) in
  if not (Hashtbl.mem seen_g key) then begin
    Hashtbl.add seen_g key ();
    t.n_guardians <- t.n_guardians + 1;
    List.iter
      (fun w ->
         match Hashtbl.find_opt t.guardian_index w with
         | Some l -> l := cell :: !l
         | None -> Hashtbl.add t.guardian_index w (ref [ cell ]))
      (Infer.words cell.c_addr cell.c_len)
  end

let infer (trace : Trace.t) =
  let t =
    { po_index = Hashtbl.create 4096;
      guardian_index = Hashtbl.create 256;
      n_guardians = 0; n_po1 = 0; n_po2 = 0; n_po3 = 0 }
  in
  let seen = Hashtbl.create 8192 in
  let seen_g = Hashtbl.create 256 in
  let load_of tid =
    match Trace.get trace tid with
    | Trace.Load l -> Some l
    | _ -> None
  in
  Trace.iter
    (fun ev ->
       match ev with
       | Trace.Store s ->
         let y : Infer.cell =
           { c_addr = s.s_addr; c_len = s.s_len; c_sid = s.s_sid }
         in
         Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some l -> add_po t seen ~watch:y ~req:(cell_of_load l) Infer.PO1
              | None -> ())
           s.s_dd ();
         Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some l -> add_po t seen ~watch:y ~req:(cell_of_load l) Infer.PO2
              | None -> ())
           s.s_cd ()
       | Trace.Load l when not (Taint.is_empty l.l_cd) ->
         let y = cell_of_load l in
         Taint.fold
           (fun tid () ->
              match load_of tid with
              | Some g ->
                let x = cell_of_load g in
                if not (Infer.overlap x.c_addr x.c_len y.c_addr y.c_len) then begin
                  add_po t seen ~watch:x ~req:y Infer.PO3;
                  add_guardian t seen_g x
                end
              | None -> ())
           l.l_cd ()
       | _ -> ())
    trace;
  t

(* Conditions whose watch cell overlaps a store to [addr,len). *)
let conds_for t addr len =
  List.concat_map
    (fun w ->
       match Hashtbl.find_opt t.po_index w with
       | Some l ->
         List.filter
           (fun (c : Infer.po) ->
              Infer.overlap c.watch.c_addr c.watch.c_len addr len)
           !l
       | None -> [])
    (Infer.words addr len)

(* Guardian cells overlapping a store to [addr,len). *)
let guardians_for t addr len =
  List.concat_map
    (fun w ->
       match Hashtbl.find_opt t.guardian_index w with
       | Some l ->
         List.filter
           (fun (c : Infer.cell) -> Infer.overlap c.c_addr c.c_len addr len)
           !l
       | None -> [])
    (Infer.words addr len)

(* The pre-PR persistence simulator, verbatim in cost structure: per-store
   hash-table entries ([store_pos]/[store_ev]), boxed-event dispatch, and
   Set.Make-based feasibility. Digest seeding and mixing are identical to
   the fast simulator ([Trace.store_mix] is defined as
   [Pmem.mix_string (Pmem.mix h addr) data]), so the image digest
   sequences the bench compares are byte-for-byte equal. *)
module Sim_ref = struct
  type line_state = {
    seq : int Vec.t;
    mutable pending_upto : int;
    mutable guaranteed_upto : int;
  }

  type pos = { p_line : int; p_idx : int }

  type t = {
    lines : (int, line_state) Hashtbl.t;
    store_pos : (int, pos) Hashtbl.t;
    store_ev : (int, Trace.store_ev) Hashtbl.t;
    mutable touched : int list;
    persisted : Pmem.t;
    mutable bytes_materialized : int;
    mutable digest : int;
  }

  let create ~pool_size =
    { lines = Hashtbl.create 1024;
      store_pos = Hashtbl.create 4096;
      store_ev = Hashtbl.create 4096;
      touched = [];
      persisted = Pmem.create pool_size;
      bytes_materialized = 0;
      digest = 0x1505 }

  let line_state t line =
    match Hashtbl.find_opt t.lines line with
    | Some ls -> ls
    | None ->
      let ls =
        { seq = Vec.create ~dummy:(-1) (); pending_upto = 0; guaranteed_upto = 0 }
      in
      Hashtbl.add t.lines line ls;
      ls

  let on_store t (s : Trace.store_ev) =
    let line = Pmem.line_of_addr s.s_addr in
    let ls = line_state t line in
    Hashtbl.replace t.store_pos s.s_tid
      { p_line = line; p_idx = Vec.length ls.seq };
    Hashtbl.replace t.store_ev s.s_tid s;
    Vec.push ls.seq s.s_tid

  let on_flush t line =
    let ls = line_state t line in
    if ls.pending_upto < Vec.length ls.seq then begin
      ls.pending_upto <- Vec.length ls.seq;
      t.touched <- line :: t.touched
    end

  let on_fence t =
    List.iter
      (fun line ->
         let ls = line_state t line in
         for i = ls.guaranteed_upto to ls.pending_upto - 1 do
           let tid = Vec.get ls.seq i in
           let s = Hashtbl.find t.store_ev tid in
           Pmem.write_bytes t.persisted s.s_addr s.s_data;
           t.digest <- Pmem.mix_string (Pmem.mix t.digest s.s_addr) s.s_data
         done;
         if ls.guaranteed_upto < ls.pending_upto then
           ls.guaranteed_upto <- ls.pending_upto)
      t.touched;
    t.touched <- []

  let on_event t = function
    | Trace.Store s -> on_store t s
    | Trace.Flush f -> on_flush t f.f_line
    | Trace.Fence _ -> on_fence t
    | _ -> ()

  let is_guaranteed t tid =
    match Hashtbl.find_opt t.store_pos tid with
    | None -> false
    | Some p ->
      let ls = Hashtbl.find t.lines p.p_line in
      p.p_idx < ls.guaranteed_upto

  let closure_one t tid =
    match Hashtbl.find_opt t.store_pos tid with
    | None -> []
    | Some p ->
      let ls = Hashtbl.find t.lines p.p_line in
      let rec collect i acc =
        if i > p.p_idx then List.rev acc
        else collect (i + 1) (Vec.get ls.seq i :: acc)
      in
      collect ls.guaranteed_upto []

  let feasible_extras t ~persist ~avoid =
    if List.exists (is_guaranteed t) avoid then None
    else begin
      let module IS = Set.Make (Int) in
      let extras =
        List.fold_left
          (fun acc tid -> IS.union acc (IS.of_list (closure_one t tid)))
          IS.empty persist
      in
      if List.exists (fun a -> IS.mem a extras) avoid then None
      else Some (IS.elements extras)
    end

  let materialize t ~extras =
    let img = Pmem.cow t.persisted in
    List.iter
      (fun tid ->
         match Hashtbl.find_opt t.store_ev tid with
         | Some s ->
           Pmem.write_bytes img s.s_addr s.s_data;
           t.bytes_materialized <- t.bytes_materialized + s.s_len
         | None -> ())
      (List.sort compare extras);
    img

  let image_digest t img = Pmem.digest ~seed:t.digest img

  let bytes_materialized t = t.bytes_materialized
end

type epoch_cand =
  | C_po of Infer.po * int
  | C_guardian of Infer.cell * int

let generate ?(cfg = Crash_gen.default_cfg) ~trace ~(conds : t) ~pool_size
    ~on_image () =
  let open Crash_gen in
  let sim = Sim_ref.create ~pool_size in
  let stats =
    { candidates = 0; generated = 0; eligible = 0; deferred = 0; tested = 0;
      bytes_materialized = 0; per_op_images = Hashtbl.create 64 }
  in
  (* tid -> store event, populated per store: the lookup table the old
     Crash_sim carried *)
  let store_evs : (int, Trace.store_ev) Hashtbl.t = Hashtbl.create 4096 in
  let last_store_word : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let epoch : epoch_cand list ref = ref [] in
  let epoch_seen : (Infer.cell * Infer.cell * Infer.rule, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let site_count : (string * string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let img_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let path_hash = ref 0 in
  let stop = ref false in
  let bump_op_count op =
    Hashtbl.replace stats.per_op_images op
      (1 + Option.value ~default:0 (Hashtbl.find_opt stats.per_op_images op))
  in
  let latest_store_to (cell : Infer.cell) =
    List.fold_left
      (fun acc w ->
         match Hashtbl.find_opt last_store_word w with
         | Some tid ->
           (match Hashtbl.find_opt store_evs tid with
            | Some s when Infer.overlap s.s_addr s.s_len cell.c_addr cell.c_len ->
              (match acc with
               | Some best when best >= tid -> acc
               | _ -> Some tid)
            | _ -> acc)
         | None -> acc)
      None
      (Infer.words cell.c_addr cell.c_len)
  in
  let sid_of_store tid =
    match Hashtbl.find_opt store_evs tid with
    | Some s -> s.s_sid
    | None -> Sid.intern "?"
  in
  let site_ok key =
    let n = Option.value ~default:0 (Hashtbl.find_opt site_count key) in
    if n >= cfg.per_site_cap then false
    else begin
      Hashtbl.replace site_count key (n + 1);
      true
    end
  in
  let emit ~fence_tid ~op ~persist_tid ~avoid_tid ~viol ~site_key =
    if not !stop then begin
      match Sim_ref.feasible_extras sim ~persist:[ persist_tid ] ~avoid:[ avoid_tid ] with
      | None -> ()
      | Some extras ->
        stats.candidates <- stats.candidates + 1;
        let img_key = (fence_tid, Hashtbl.hash extras) in
        if not (Hashtbl.mem img_seen img_key) then begin
          Hashtbl.add img_seen img_key ();
          stats.generated <- stats.generated + 1;
          bump_op_count op;
          if stats.eligible < cfg.max_images && site_ok site_key then begin
            stats.eligible <- stats.eligible + 1;
            stats.tested <- stats.tested + 1;
            let img = Sim_ref.materialize sim ~extras in
            let image =
              { img; crash_tid = fence_tid; crash_op = op; viol;
                path_hash = !path_hash; path_sig = !path_hash;
                extras = Array.of_list extras;
                digest = Sim_ref.image_digest sim img }
            in
            match on_image image with
            | `Continue -> ()
            | `Stop -> stop := true
          end
        end
    end
  in
  let process_fence fence_tid fence_sid op =
    let generated_before = stats.generated in
    (match
       List.find_opt
         (function C_po (_, tid) | C_guardian (_, tid) ->
            not (Sim_ref.is_guaranteed sim tid))
         !epoch
     with
     | Some cand when not !stop ->
       let first_lost =
         match cand with C_po (_, tid) | C_guardian (_, tid) -> tid
       in
       stats.candidates <- stats.candidates + 1;
       let img_key = (fence_tid, 0) in
       if not (Hashtbl.mem img_seen img_key) then begin
         Hashtbl.add img_seen img_key ();
         stats.generated <- stats.generated + 1;
         bump_op_count op;
         let site_key = (Sid.to_string fence_sid, "baseline", 2) in
         if stats.eligible < cfg.max_images && site_ok site_key then begin
           stats.eligible <- stats.eligible + 1;
           stats.tested <- stats.tested + 1;
           let img = Sim_ref.materialize sim ~extras:[] in
           let image =
             { img; crash_tid = fence_tid; crash_op = op;
               viol =
                 Unpersisted_epoch
                   { fence_sid; first_lost_sid = sid_of_store first_lost };
               path_hash = !path_hash; path_sig = !path_hash; extras = [||];
               digest = Sim_ref.image_digest sim img }
           in
           match on_image image with
           | `Continue -> ()
           | `Stop -> stop := true
         end
       end
     | _ -> ());
    List.iter
      (function
        | C_po (po, sy_tid) ->
          (match latest_store_to po.Infer.req with
           | Some sx_tid when sx_tid <> sy_tid ->
             let viol =
               Ordering
                 { rule = po.rule;
                   watch_sid = sid_of_store sy_tid;
                   req_sid = sid_of_store sx_tid;
                   watch_tid = sy_tid; req_tid = sx_tid }
             in
             let site_key =
               (Sid.to_string (sid_of_store sy_tid),
                Sid.to_string (sid_of_store sx_tid), 0)
             in
             emit ~fence_tid ~op ~persist_tid:sy_tid ~avoid_tid:sx_tid
               ~viol ~site_key
           | _ -> ())
        | C_guardian _ -> ())
      !epoch;
    let guardian_stores =
      List.filter_map
        (function C_guardian (c, tid) -> Some (c, tid) | C_po _ -> None)
        !epoch
    in
    let pairs = ref 0 in
    let rec all_pairs = function
      | [] -> ()
      | (c1, t1) :: rest ->
        List.iter
          (fun (c2, t2) ->
             if t1 <> t2
             && not (Infer.overlap c1.Infer.c_addr c1.c_len c2.Infer.c_addr c2.c_len)
             && !pairs < cfg.max_pa_pairs_per_fence then begin
               incr pairs;
               let mk persisted lost =
                 Atomicity
                   { persisted_sid = sid_of_store persisted;
                     lost_sid = sid_of_store lost;
                     persisted_tid = persisted; lost_tid = lost }
               in
               emit ~fence_tid ~op ~persist_tid:t1 ~avoid_tid:t2
                 ~viol:(mk t1 t2)
                 ~site_key:(Sid.to_string (sid_of_store t1),
                            Sid.to_string (sid_of_store t2), 1);
               emit ~fence_tid ~op ~persist_tid:t2 ~avoid_tid:t1
                 ~viol:(mk t2 t1)
                 ~site_key:(Sid.to_string (sid_of_store t2),
                            Sid.to_string (sid_of_store t1), 1)
             end)
          rest;
        all_pairs rest
    in
    all_pairs guardian_stores;
    Obs.Metrics.observe "crash_gen.images_per_fence"
      (stats.generated - generated_before);
    epoch := [];
    Hashtbl.reset epoch_seen
  in
  Trace.iter
    (fun ev ->
       if not !stop then begin
         (match ev with
          | Trace.Op_begin _ -> path_hash := 0
          | Trace.Load l -> path_hash := path_hash_step !path_hash l.l_sid
          | Trace.Store s -> path_hash := path_hash_step !path_hash s.s_sid
          | _ -> ());
         (match ev with
          | Trace.Store s ->
            Hashtbl.replace store_evs s.s_tid s;
            List.iter
              (fun w -> Hashtbl.replace last_store_word w s.s_tid)
              (Infer.words s.s_addr s.s_len);
            List.iter
              (fun (po : Infer.po) ->
                 let key = (po.watch, po.req, po.rule) in
                 if not (Hashtbl.mem epoch_seen key) then begin
                   Hashtbl.add epoch_seen key ();
                   epoch := C_po (po, s.s_tid) :: !epoch
                 end)
              (conds_for conds s.s_addr s.s_len);
            List.iter
              (fun g -> epoch := C_guardian (g, s.s_tid) :: !epoch)
              (guardians_for conds s.s_addr s.s_len)
          | Trace.Fence f -> process_fence f.n_tid f.n_sid f.n_op
          | _ -> ());
         Sim_ref.on_event sim ev
       end)
    trace;
  stats.bytes_materialized <- Sim_ref.bytes_materialized sim;
  stats
