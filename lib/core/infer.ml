(* Inference of likely-correctness conditions (§4.2, Table 2).

   The trace already carries the Persistence Program Dependence Graph: a
   Store event's [s_dd] / [s_cd] are the NVM loads its value / enclosing
   branch guards derive from, and a Load event's [l_cd] are the guards of
   a guarded read. The rules:

   PO1  W(Y) -dd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO2  W(Y) -cd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO3  R(Y) -cd-> R(X)   ==>  P(Y) -hb-> W(X)   (X is a guardian)
   PA1  two guardians X, Y ==>  AP(X, Y)

   A condition is stored as {watch; req}: when a store to [watch] is
   observed, the latest store to [req] must already be persisted —
   otherwise an NVM state where the watch-store persisted and the
   req-store did not violates the condition. For PO1/PO2, watch = Y and
   req = X; for PO3 the guardian is the watched side (watch = X, req = Y).

   Conditions are keyed by dynamic NVM address ranges (cells), like the
   paper, so counts in Table 5 grow with the trace.

   Cost model: the inference walk reads events by index (kind tag + int
   fields + taint arrays) instead of reconstructing them, and the two
   word indexes are plain arrays indexed by 8-byte word number (pool
   sizes are a few MB, so at most pool_size/8 slots) rather than
   hash tables of list refs. [iter_words]/[iter_conds_for]/
   [iter_guardians_for] are the allocation-free forms of the (kept)
   list-returning API. *)

type rule = PO1 | PO2 | PO3

let rule_name = function PO1 -> "PO1" | PO2 -> "PO2" | PO3 -> "PO3"

type cell = {
  c_addr : int;
  c_len : int;
  c_sid : Nvm.Sid.t;
}

type po = {
  watch : cell;
  req : cell;
  rule : rule;
}

type t = {
  mutable po_index : po list array;        (* 8-byte word of watch -> conds *)
  mutable guardian_index : cell list array; (* word -> guardian cells *)
  mutable n_guardians : int;
  mutable n_po1 : int;
  mutable n_po2 : int;
  mutable n_po3 : int;
}

let n_ordering t = t.n_po1 + t.n_po2 + t.n_po3
let n_atomicity t = t.n_guardians * (t.n_guardians - 1) / 2
let n_guardians t = t.n_guardians

let overlap a1 l1 a2 l2 = a1 < a2 + l2 && a2 < a1 + l1

let words addr len =
  let first = addr lsr 3 and last = (addr + len - 1) lsr 3 in
  List.init (last - first + 1) (fun i -> first + i)

(* Allocation-free [words]: call [f] on each 8-byte word the range
   [addr, addr+len) touches, ascending. *)
let iter_words addr len f =
  for w = addr lsr 3 to (addr + len - 1) lsr 3 do
    f w
  done

let grow (type a) (arr : a list array) (needed : int) : a list array =
  let n = max (2 * Array.length arr) (needed + 1) in
  let b = Array.make n [] in
  Array.blit arr 0 b 0 (Array.length arr);
  b

(* Insert-only open-addressing set of int pairs, the dedup structure of
   the inference walk. Nearly every [add_po] call is a duplicate (one
   load feeds many stores of the same cells), so the per-call cost is
   what the walk's time is made of: a probe here is two array reads —
   no tuple allocation, no polymorphic [Hashtbl.hash] over five boxed
   fields. Keys must be >= 0 (cells pack as [addr * 2^24 + len], both
   bounded by the pool size); empty slots hold [min_int]. *)
module Pair_set = struct
  type t = {
    mutable k1 : int array;
    mutable k2 : int array;
    mutable count : int;
    mutable mask : int;     (* capacity - 1, capacity a power of two *)
  }

  let create cap =
    let cap =
      let c = ref 16 in
      while !c < cap do c := !c * 2 done;
      !c
    in
    { k1 = Array.make cap min_int; k2 = Array.make cap min_int;
      count = 0; mask = cap - 1 }

  let slot s a b =
    let h = (a * 0x9E3779B97F4A7C1) lxor (b * 0xC2B2AE3D27D4EB) in
    (h lxor (h lsr 29)) land s.mask

  let rec add_new s a b =
    let i = ref (slot s a b) in
    let k1 = s.k1 and k2 = s.k2 in
    let res = ref (-1) in
    while !res < 0 do
      let x = Array.unsafe_get k1 !i in
      if x = min_int then res := 1
      else if x = a && Array.unsafe_get k2 !i = b then res := 0
      else i := (!i + 1) land s.mask
    done;
    !res = 1
    && begin
      k1.(!i) <- a;
      k2.(!i) <- b;
      s.count <- s.count + 1;
      if 2 * s.count > s.mask then begin
        (* grow to keep the load factor under 1/2 *)
        let ok1 = s.k1 and ok2 = s.k2 in
        let cap = 2 * (s.mask + 1) in
        s.k1 <- Array.make cap min_int;
        s.k2 <- Array.make cap min_int;
        s.mask <- cap - 1;
        s.count <- 0;
        for j = 0 to Array.length ok1 - 1 do
          if ok1.(j) <> min_int then ignore (add_new s ok1.(j) ok2.(j))
        done
      end;
      true
    end
end

(* [addr * 2^24 + len] is injective while both fit 24 bits — pools are a
   few MB. Ranges beyond that (would need a >16MB pool) fall back to a
   key the packing cannot alias. *)
let pack_ok addr len = addr < 0x1000000 && len < 0x1000000
let pack addr len = (addr lsl 24) lor len

type seen = {
  pairs : Pair_set.t;
  (* exact fallback for cells the packing can't represent *)
  wide : (int * int * int * int * int, unit) Hashtbl.t;
}

let seen_add seen ~wa ~wl ~ra ~rl rid =
  if pack_ok wa wl && pack_ok ra rl then
    Pair_set.add_new seen.pairs (pack wa wl) ((pack ra rl * 4) + rid)
  else begin
    let key = (wa, wl, ra, rl, rid) in
    (not (Hashtbl.mem seen.wide key))
    && (Hashtbl.add seen.wide key (); true)
  end

let add_po t seen ~wa ~wl ~wsid ~ra ~rl ~rsid rule =
  if not (overlap wa wl ra rl) then begin
    let rid = match rule with PO1 -> 0 | PO2 -> 1 | PO3 -> 2 in
    if seen_add seen ~wa ~wl ~ra ~rl rid then begin
      (match rule with
       | PO1 -> t.n_po1 <- t.n_po1 + 1
       | PO2 -> t.n_po2 <- t.n_po2 + 1
       | PO3 -> t.n_po3 <- t.n_po3 + 1);
      let cond =
        { watch = { c_addr = wa; c_len = wl; c_sid = wsid };
          req = { c_addr = ra; c_len = rl; c_sid = rsid };
          rule }
      in
      iter_words wa wl
        (fun w ->
           if w >= Array.length t.po_index then
             t.po_index <- grow t.po_index w;
           t.po_index.(w) <- cond :: t.po_index.(w))
    end
  end

let add_guardian t seen_g ~addr ~len ~sid =
  if Pair_set.add_new seen_g addr len then begin
    t.n_guardians <- t.n_guardians + 1;
    let cell = { c_addr = addr; c_len = len; c_sid = sid } in
    iter_words addr len
      (fun w ->
         if w >= Array.length t.guardian_index then
           t.guardian_index <- grow t.guardian_index w;
         t.guardian_index.(w) <- cell :: t.guardian_index.(w))
  end

let infer (trace : Nvm.Trace.t) =
  let t =
    { po_index = Array.make 4096 [];
      guardian_index = Array.make 4096 [];
      n_guardians = 0; n_po1 = 0; n_po2 = 0; n_po3 = 0 }
  in
  let seen = { pairs = Pair_set.create 8192; wide = Hashtbl.create 16 } in
  let seen_g = Pair_set.create 256 in
  let k_load = Nvm.Trace.k_load in
  let k_store = Nvm.Trace.k_store in
  let n = Nvm.Trace.length trace in
  for i = 0 to n - 1 do
    let k = Nvm.Trace.kind_at trace i in
    if k = k_store then begin
      let wa = Nvm.Trace.addr_at trace i
      and wl = Nvm.Trace.len_at trace i
      and wsid = Nvm.Trace.sid_at trace i in
      let member rule tid =
        if Nvm.Trace.kind_at trace tid = k_load then
          add_po t seen ~wa ~wl ~wsid
            ~ra:(Nvm.Trace.addr_at trace tid)
            ~rl:(Nvm.Trace.len_at trace tid)
            ~rsid:(Nvm.Trace.sid_at trace tid) rule
      in
      Nvm.Taint.iter (member PO1) (Nvm.Trace.dd_at trace i);
      Nvm.Taint.iter (member PO2) (Nvm.Trace.cd_at trace i)
    end
    else if k = k_load then begin
      let cd = Nvm.Trace.cd_at trace i in
      if not (Nvm.Taint.is_empty cd) then begin
        let ra = Nvm.Trace.addr_at trace i
        and rl = Nvm.Trace.len_at trace i
        and rsid = Nvm.Trace.sid_at trace i in
        Nvm.Taint.iter
          (fun tid ->
             if Nvm.Trace.kind_at trace tid = k_load then begin
               let xa = Nvm.Trace.addr_at trace tid
               and xl = Nvm.Trace.len_at trace tid in
               if not (overlap xa xl ra rl) then begin
                 let xsid = Nvm.Trace.sid_at trace tid in
                 add_po t seen ~wa:xa ~wl:xl ~wsid:xsid ~ra ~rl ~rsid PO3;
                 add_guardian t seen_g ~addr:xa ~len:xl ~sid:xsid
               end
             end)
          cd
      end
    end
  done;
  t

(* Conditions whose watch cell overlaps a store to [addr,len), visited in
   the same order [conds_for] lists them (ascending words; within a word,
   newest condition first; a condition spanning several of the range's
   words is visited once per word, as before). *)
let iter_conds_for t addr len f =
  let n = Array.length t.po_index in
  iter_words addr len
    (fun w ->
       if w < n then
         List.iter
           (fun c -> if overlap c.watch.c_addr c.watch.c_len addr len then f c)
           t.po_index.(w))

let conds_for t addr len =
  let acc = ref [] in
  iter_conds_for t addr len (fun c -> acc := c :: !acc);
  List.rev !acc

(* Guardian cells overlapping a store to [addr,len). *)
let iter_guardians_for t addr len f =
  let n = Array.length t.guardian_index in
  iter_words addr len
    (fun w ->
       if w < n then
         List.iter
           (fun c -> if overlap c.c_addr c.c_len addr len then f c)
           t.guardian_index.(w))

let guardians_for t addr len =
  let acc = ref [] in
  iter_guardians_for t addr len (fun c -> acc := c :: !acc);
  List.rev !acc
