(* Inference of likely-correctness conditions (§4.2, Table 2).

   The trace already carries the Persistence Program Dependence Graph: a
   Store event's [s_dd] / [s_cd] are the NVM loads its value / enclosing
   branch guards derive from, and a Load event's [l_cd] are the guards of
   a guarded read. The rules:

   PO1  W(Y) -dd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO2  W(Y) -cd-> R(X)   ==>  P(X) -hb-> W(Y)
   PO3  R(Y) -cd-> R(X)   ==>  P(Y) -hb-> W(X)   (X is a guardian)
   PA1  two guardians X, Y ==>  AP(X, Y)

   A condition is stored as {watch; req}: when a store to [watch] is
   observed, the latest store to [req] must already be persisted —
   otherwise an NVM state where the watch-store persisted and the
   req-store did not violates the condition. For PO1/PO2, watch = Y and
   req = X; for PO3 the guardian is the watched side (watch = X, req = Y).

   Conditions are keyed by dynamic NVM address ranges (cells), like the
   paper, so counts in Table 5 grow with the trace.

   Cost model: the inference walk reads events by index (kind tag + int
   fields + taint arrays) instead of reconstructing them, and the two
   word indexes are plain arrays indexed by 8-byte word number (pool
   sizes are a few MB, so at most pool_size/8 slots) rather than
   hash tables of list refs. [iter_words]/[iter_conds_for]/
   [iter_guardians_for] are the allocation-free forms of the (kept)
   list-returning API. *)

type rule = PO1 | PO2 | PO3

let rule_name = function PO1 -> "PO1" | PO2 -> "PO2" | PO3 -> "PO3"

type cell = {
  c_addr : int;
  c_len : int;
  c_sid : Nvm.Sid.t;
}

type po = {
  watch : cell;
  req : cell;
  rule : rule;
}

let overlap a1 l1 a2 l2 = a1 < a2 + l2 && a2 < a1 + l1

let words addr len =
  let first = addr lsr 3 and last = (addr + len - 1) lsr 3 in
  List.init (last - first + 1) (fun i -> first + i)

(* Allocation-free [words]: call [f] on each 8-byte word the range
   [addr, addr+len) touches, ascending. *)
let iter_words addr len f =
  for w = addr lsr 3 to (addr + len - 1) lsr 3 do
    f w
  done

(* Cache-line-blocked word index (FAST-style hierarchical blocking): each
   8-byte pool word maps to a chain of 16-entry blocks, newest block at
   the chain head. An entry's (addr, len) lives in flat int arrays
   indexed by slot = block * 16 + j — the crash-generation walk's hot
   probe (overlap test against every condition on a word) is a linear
   scan of one or two 128-byte array stripes instead of a pointer chase
   through cons cells, and the payload array is only touched on a hit.

   Iteration order reproduces the cons-list layout this replaces exactly:
   newest entry first within a word (blocks newest-first, entries within
   a block scanned backwards), because candidate ordering feeds the
   cluster digests the frontend-parity benchmarks assert on. *)
module Windex = struct
  let block = 16

  type 'a t = {
    mutable heads : int array;  (* word -> newest block id, -1 = none *)
    mutable nexts : int array;  (* block id -> older block id, -1 = end *)
    mutable used : int array;   (* block id -> entries filled *)
    mutable addrs : int array;  (* slot = block id * 16 + j *)
    mutable lens : int array;
    mutable vals : 'a array;
    mutable n_blocks : int;
    dummy : 'a;
  }

  let create ~dummy words =
    { heads = Array.make words (-1); nexts = Array.make 64 (-1);
      used = Array.make 64 0; addrs = Array.make (64 * block) 0;
      lens = Array.make (64 * block) 0; vals = Array.make (64 * block) dummy;
      n_blocks = 0; dummy }

  let ensure_word t w =
    if w >= Array.length t.heads then begin
      let n = max (2 * Array.length t.heads) (w + 1) in
      let b = Array.make n (-1) in
      Array.blit t.heads 0 b 0 (Array.length t.heads);
      t.heads <- b
    end

  let grow_blocks t =
    let cap = Array.length t.used in
    let grow_int a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 cap; b
    in
    t.nexts <- grow_int t.nexts (-1);
    t.used <- grow_int t.used 0;
    let grow_slots a fill =
      let b = Array.make (2 * cap * block) fill in
      Array.blit a 0 b 0 (cap * block); b
    in
    t.addrs <- grow_slots t.addrs 0;
    t.lens <- grow_slots t.lens 0;
    t.vals <- grow_slots t.vals t.dummy

  let add t w ~addr ~len v =
    ensure_word t w;
    let head = t.heads.(w) in
    let b =
      if head >= 0 && t.used.(head) < block then head
      else begin
        if t.n_blocks >= Array.length t.used then grow_blocks t;
        let b = t.n_blocks in
        t.n_blocks <- b + 1;
        t.nexts.(b) <- head;
        t.used.(b) <- 0;
        t.heads.(w) <- b;
        b
      end
    in
    let s = (b * block) + t.used.(b) in
    t.addrs.(s) <- addr;
    t.lens.(s) <- len;
    t.vals.(s) <- v;
    t.used.(b) <- t.used.(b) + 1

  (* Entries on word [w] overlapping [addr, addr+len), newest first. *)
  let iter_word t w ~addr ~len f =
    if w < Array.length t.heads then begin
      let b = ref t.heads.(w) in
      while !b >= 0 do
        let base = !b * block in
        for j = t.used.(!b) - 1 downto 0 do
          let s = base + j in
          if overlap (Array.unsafe_get t.addrs s) (Array.unsafe_get t.lens s)
               addr len
          then f (Array.unsafe_get t.vals s)
        done;
        b := t.nexts.(!b)
      done
    end
end

(* Insert-only open-addressing set of int pairs, the dedup structure of
   the inference walk. Nearly every [add_po] call is a duplicate (one
   load feeds many stores of the same cells), so the per-call cost is
   what the walk's time is made of: a probe here is two array reads —
   no tuple allocation, no polymorphic [Hashtbl.hash] over five boxed
   fields. Keys must be >= 0 (cells pack as [addr * 2^24 + len], both
   bounded by the pool size); empty slots hold [min_int]. *)
module Pair_set = struct
  type t = {
    mutable keys : int array;  (* interleaved: k1 at 2i, k2 at 2i + 1 *)
    mutable count : int;
    mutable mask : int;     (* capacity - 1, capacity a power of two *)
  }

  (* Interleaving puts a probe's two key words on the same cache line;
     with linear probing a short collision run stays within one or two
     lines instead of touching two arrays per slot. *)
  let create cap =
    let cap =
      let c = ref 16 in
      while !c < cap do c := !c * 2 done;
      !c
    in
    { keys = Array.make (2 * cap) min_int; count = 0; mask = cap - 1 }

  let slot s a b =
    let h = (a * 0x9E3779B97F4A7C1) lxor (b * 0xC2B2AE3D27D4EB) in
    (h lxor (h lsr 29)) land s.mask

  let rec add_new s a b =
    let i = ref (slot s a b) in
    let keys = s.keys in
    let res = ref (-1) in
    while !res < 0 do
      let x = Array.unsafe_get keys (2 * !i) in
      if x = min_int then res := 1
      else if x = a && Array.unsafe_get keys ((2 * !i) + 1) = b then res := 0
      else i := (!i + 1) land s.mask
    done;
    !res = 1
    && begin
      keys.(2 * !i) <- a;
      keys.((2 * !i) + 1) <- b;
      s.count <- s.count + 1;
      if 2 * s.count > s.mask then begin
        (* grow to keep the load factor under 1/2 *)
        let okeys = s.keys in
        let cap = 2 * (s.mask + 1) in
        s.keys <- Array.make (2 * cap) min_int;
        s.mask <- cap - 1;
        s.count <- 0;
        for j = 0 to (Array.length okeys / 2) - 1 do
          if okeys.(2 * j) <> min_int then
            ignore (add_new s okeys.(2 * j) okeys.((2 * j) + 1))
        done
      end;
      true
    end
end

(* [addr * 2^24 + len] is injective while both fit 24 bits — pools are a
   few MB. Ranges beyond that (would need a >16MB pool) fall back to a
   key the packing cannot alias. *)
let pack_ok addr len = addr < 0x1000000 && len < 0x1000000
let pack addr len = (addr lsl 24) lor len

type seen = {
  pairs : Pair_set.t;
  (* exact fallback for cells the packing can't represent *)
  wide : (int * int * int * int * int, unit) Hashtbl.t;
}

type t = {
  po_index : po Windex.t;        (* 8-byte word of watch -> conds *)
  guardian_index : cell Windex.t; (* word -> guardian cells *)
  mutable n_guardians : int;
  mutable n_po1 : int;
  mutable n_po2 : int;
  mutable n_po3 : int;
  seen : seen;                   (* dedup state, lives across [feed] calls *)
  seen_g : Pair_set.t;
}

let n_ordering t = t.n_po1 + t.n_po2 + t.n_po3
let n_atomicity t = t.n_guardians * (t.n_guardians - 1) / 2
let n_guardians t = t.n_guardians

let seen_add seen ~wa ~wl ~ra ~rl rid =
  if pack_ok wa wl && pack_ok ra rl then
    Pair_set.add_new seen.pairs (pack wa wl) ((pack ra rl * 4) + rid)
  else begin
    let key = (wa, wl, ra, rl, rid) in
    (not (Hashtbl.mem seen.wide key))
    && (Hashtbl.add seen.wide key (); true)
  end

let add_po t seen ~wa ~wl ~wsid ~ra ~rl ~rsid rule =
  if not (overlap wa wl ra rl) then begin
    let rid = match rule with PO1 -> 0 | PO2 -> 1 | PO3 -> 2 in
    if seen_add seen ~wa ~wl ~ra ~rl rid then begin
      (match rule with
       | PO1 -> t.n_po1 <- t.n_po1 + 1
       | PO2 -> t.n_po2 <- t.n_po2 + 1
       | PO3 -> t.n_po3 <- t.n_po3 + 1);
      let cond =
        { watch = { c_addr = wa; c_len = wl; c_sid = wsid };
          req = { c_addr = ra; c_len = rl; c_sid = rsid };
          rule }
      in
      iter_words wa wl
        (fun w -> Windex.add t.po_index w ~addr:wa ~len:wl cond)
    end
  end

let add_guardian t seen_g ~addr ~len ~sid =
  if Pair_set.add_new seen_g addr len then begin
    t.n_guardians <- t.n_guardians + 1;
    let cell = { c_addr = addr; c_len = len; c_sid = sid } in
    iter_words addr len
      (fun w -> Windex.add t.guardian_index w ~addr ~len cell)
  end

let create () =
  let dummy_cell = { c_addr = 0; c_len = 0; c_sid = Nvm.Sid.intern "?" } in
  { po_index =
      Windex.create 4096
        ~dummy:{ watch = dummy_cell; req = dummy_cell; rule = PO1 };
    guardian_index = Windex.create 4096 ~dummy:dummy_cell;
    n_guardians = 0; n_po1 = 0; n_po2 = 0; n_po3 = 0;
    seen = { pairs = Pair_set.create 8192; wide = Hashtbl.create 16 };
    seen_g = Pair_set.create 256 }

(* Process the event at trace index [i]. The only trace reads are of [i]
   itself and of the (younger-than-window-pinned) loads in its taints, so
   feeding works over a windowed ring as well as a full trace. Feeding
   every index once, in order, is exactly the batch walk: condition
   discovery depends only on the prefix up to [i]. *)
let feed t (trace : Nvm.Trace.t) i =
  let k_load = Nvm.Trace.k_load in
  let k = Nvm.Trace.kind_at trace i in
  if k = Nvm.Trace.k_store then begin
    let wa = Nvm.Trace.addr_at trace i
    and wl = Nvm.Trace.len_at trace i
    and wsid = Nvm.Trace.sid_at trace i in
    let member rule tid =
      if Nvm.Trace.kind_at trace tid = k_load then
        add_po t t.seen ~wa ~wl ~wsid
          ~ra:(Nvm.Trace.addr_at trace tid)
          ~rl:(Nvm.Trace.len_at trace tid)
          ~rsid:(Nvm.Trace.sid_at trace tid) rule
    in
    Nvm.Taint.iter (member PO1) (Nvm.Trace.dd_at trace i);
    Nvm.Taint.iter (member PO2) (Nvm.Trace.cd_at trace i)
  end
  else if k = k_load then begin
    let cd = Nvm.Trace.cd_at trace i in
    if not (Nvm.Taint.is_empty cd) then begin
      let ra = Nvm.Trace.addr_at trace i
      and rl = Nvm.Trace.len_at trace i
      and rsid = Nvm.Trace.sid_at trace i in
      Nvm.Taint.iter
        (fun tid ->
           if Nvm.Trace.kind_at trace tid = k_load then begin
             let xa = Nvm.Trace.addr_at trace tid
             and xl = Nvm.Trace.len_at trace tid in
             if not (overlap xa xl ra rl) then begin
               let xsid = Nvm.Trace.sid_at trace tid in
               add_po t t.seen ~wa:xa ~wl:xl ~wsid:xsid ~ra ~rl ~rsid PO3;
               add_guardian t t.seen_g ~addr:xa ~len:xl ~sid:xsid
             end
           end)
        cd
    end
  end

let infer (trace : Nvm.Trace.t) =
  let t = create () in
  for i = 0 to Nvm.Trace.length trace - 1 do
    feed t trace i
  done;
  t

(* Conditions whose watch cell overlaps a store to [addr,len), visited in
   the same order [conds_for] lists them (ascending words; within a word,
   newest condition first; a condition spanning several of the range's
   words is visited once per word, as before). *)
let iter_conds_for t addr len f =
  iter_words addr len (fun w -> Windex.iter_word t.po_index w ~addr ~len f)

let conds_for t addr len =
  let acc = ref [] in
  iter_conds_for t addr len (fun c -> acc := c :: !acc);
  List.rev !acc

(* Guardian cells overlapping a store to [addr,len). *)
let iter_guardians_for t addr len f =
  iter_words addr len
    (fun w -> Windex.iter_word t.guardian_index w ~addr ~len f)

let guardians_for t addr len =
  let acc = ref [] in
  iter_guardians_for t addr len (fun c -> acc := c :: !acc);
  List.rev !acc
