(* Human-readable reproduction of the paper's tables and figures. All
   output is plain text so `dune exec bench/main.exe` regenerates the
   rows/series the paper reports. *)

let line width = String.make width '-'

(* Table 1: comparison with existing crash-consistency testing tools. *)
let table1 () =
  String.concat "\n"
    [ "Table 1. Comparison with existing crash consistency testing tools";
      line 100;
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "Tool" "Input space"
        "NVM state exploration" "Validation oracle";
      line 100;
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "Yat / PMReorder"
        "user test case" "exhaustive" "user-provided oracle";
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "Jaaru" "user test case"
        "model checking w/ pruning" "visible manifestation";
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "PMTest / XFDetector"
        "user test case" "manual annotation" "user-provided oracle";
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "Agamotto"
        "symbolic execution" "PM-aware search" "user-provided oracle";
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "PMDebugger" "user test case"
        "user-provided oracle" "user-provided oracle";
      Printf.sprintf "%-22s | %-24s | %-32s | %s" "WITCHER (this work)"
        "user test case" "likely-correctness conditions" "output equivalence";
      line 100 ]

(* Table 2: the inference rules. *)
let table2 () =
  String.concat "\n"
    [ "Table 2. Likely-correctness condition inference rules";
      line 88;
      Printf.sprintf "%-4s | %-22s | %-26s | %s" "#" "Hint (dependency)"
        "Likely-correctness condition" "Violating NVM image";
      line 88;
      Printf.sprintf "%-4s | %-22s | %-26s | %s" "PO1" "W(Y) -dd-> R(X)"
        "P(X) -hb-> W(Y)" "Y persisted, X unpersisted";
      Printf.sprintf "%-4s | %-22s | %-26s | %s" "PO2" "W(Y) -cd-> R(X)"
        "P(X) -hb-> W(Y)" "Y persisted, X unpersisted";
      Printf.sprintf "%-4s | %-22s | %-26s | %s" "PO3" "R(Y) -cd-> R(X)"
        "P(Y) -hb-> W(X)" "X persisted, Y unpersisted";
      Printf.sprintf "%-4s | %-22s | %-26s | %s" "PA1" "guardians X, Y (PO3)"
        "AP(X, Y)" "exactly one of X, Y persisted";
      line 88 ]

let result_header () =
  Printf.sprintf "%-18s | %4s %4s | %4s %5s %5s %4s | %9s %9s | %8s %8s %8s | %8s | %7s"
    "Program" "C-O" "C-A" "P-U" "P-EFL" "P-EFE" "P-EL" "#ord-cond" "#atm-cond"
    "#img-gen" "#img-tst" "#mismtch" "#cluster" "time(s)"

let result_row (r : Engine.result) =
  let total_time = r.t_record +. r.t_infer +. r.t_gen +. r.t_equiv in
  Printf.sprintf "%-18s | %4d %4d | %4d %5d %5d %4d | %9d %9d | %8d %8d %8d | %8d | %7.1f"
    r.name r.c_o r.c_a
    (Perf.n_bugs r.perf.p_u) (Perf.n_bugs r.perf.p_efl)
    (Perf.n_bugs r.perf.p_efe) (Perf.n_bugs r.perf.p_el)
    r.n_ord_conds r.n_atom_conds
    r.images_generated r.images_tested r.n_mismatch r.n_clusters total_time

(* Per-stage timing and replay-work line for one store (`witcher run -v`,
   `bench validate`): where the pipeline wall-clock goes, and how much
   replay/copy work the zero-copy validation path actually did. *)
let timing_line (r : Engine.result) =
  Printf.sprintf
    "%-18s record %.3fs | infer %.3fs | gen %.3fs | equiv %.3fs | \
     replay-ops %d (early-stops %d) | materialized %.2f MB over %d images | \
     oracle-runs %d (ops saved %d) | memo-hits %d | ckpt %.2f MB"
    r.name r.t_record r.t_infer r.t_gen r.t_equiv r.replay_ops
    r.replay_early_stops
    (float_of_int r.bytes_materialized /. 1024. /. 1024.)
    r.images_tested
    r.oracle_runs r.oracle_ops_saved r.memo_hits
    (float_of_int r.ckpt_bytes /. 1024. /. 1024.)

(* Pruning summary for a non-exhaustive run (`witcher run --prune ...`):
   how many classes the eligible images collapsed into, how much
   validation was elided, and how often divergence forced expansion. *)
let prune_line (r : Engine.result) =
  let total = r.images_tested + r.images_elided in
  let pct =
    if total = 0 then 0.
    else 100. *. float_of_int r.images_elided /. float_of_int total
  in
  Printf.sprintf
    "%-18s prune=%s | classes %d | reps %d | expanded %d class(es) | \
     validated %d | elided %d images (%.1f%%) | seed-memo hits %d"
    r.name
    (Prune.Policy.name r.prune_policy)
    r.prune_classes r.prune_reps r.prune_expansions r.images_tested
    r.images_elided pct r.seed_memo_hits

(* Fence-batched checking summary (`witcher run -v`, DESIGN §5): how many
   fence groups formed, how dense they were, and how much replay work
   verdict inheritance skipped. *)
let batch_line (r : Engine.result) =
  let per_fence =
    if r.batch_fences = 0 then 0.
    else float_of_int r.batch_images /. float_of_int r.batch_fences
  in
  Printf.sprintf
    "%-18s batch=on | fences %d | images %d (%.1f/fence) | inherit-hits %d | \
     replay-ops saved %d"
    r.name r.batch_fences r.batch_images per_fence r.inherit_hits
    r.inherit_ops_saved

(* Streaming-pipeline summary (`witcher run --stream`, DESIGN §9): how
   far the trace window slid, how the checkpoint ring churned, and the
   observed live-heap high-water mark. *)
let stream_line (r : Engine.result) =
  Printf.sprintf
    "%-18s stream=on | window retirements %d | ckpt-ring evictions %d | \
     peak live heap %.1f MB"
    r.name r.window_retirements r.ckpt_ring_evictions
    (float_of_int (r.peak_live_words * 8) /. 1024. /. 1024.)

(* Table 4-style detailed bug list for one store. *)
let bug_list (r : Engine.result) =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i (rep : Cluster.report) ->
       Buffer.add_string buf
         (Fmt.str "  %2d. %a\n" (i + 1) Cluster.pp_report rep))
    r.bug_reports;
  List.iter
    (fun (kind, counts) ->
       List.iter
         (fun (sid, n) ->
            Buffer.add_string buf
              (Printf.sprintf "  perf %-5s %-48s x%d\n" kind sid n))
         counts)
    [ "P-U", Perf.bug_sites r.perf.p_u;
      "P-EFL", Perf.bug_sites r.perf.p_efl;
      "P-EFE", Perf.bug_sites r.perf.p_efe;
      "P-EL", Perf.bug_sites r.perf.p_el ];
  Buffer.contents buf

(* Figure 4: ASCII series of cumulative test-space sizes per operation. *)
let figure4 ~name (s : Yat.series) ~step =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Figure 4 (%s): cumulative crash states vs op index\n" name);
  Buffer.add_string buf
    (Printf.sprintf "%6s | %18s | %14s\n" "op" "Yat (log10 states)" "Witcher images");
  let n = Array.length s.yat_log10 in
  let rec go i =
    if i < n then begin
      Buffer.add_string buf
        (Printf.sprintf "%6d | %18.1f | %14d\n" i s.yat_log10.(i) s.witcher.(i));
      go (min (i + step) (if i = n - 1 then n else n - 1 + (n - 1 - i)))
    end
  in
  (* print every [step]-th op plus the last one *)
  let rec go2 i =
    if i < n - 1 then begin
      Buffer.add_string buf
        (Printf.sprintf "%6d | %18.1f | %14d\n" i s.yat_log10.(i) s.witcher.(i));
      go2 (i + step)
    end
  in
  ignore go;
  go2 0;
  if n > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%6d | %18.1f | %14d\n" (n - 1)
         s.yat_log10.(n - 1) s.witcher.(n - 1));
  Buffer.contents buf
