(* The §7.5 random-sampling baseline: draw uniformly random *feasible*
   crash states (random per-line prefixes at random fences), ignoring
   likely-correctness conditions, and check them with the same output
   equivalence oracle. The paper ran 100M such states per program for a
   week and found at most one or two of Witcher's bugs; here the sample
   size is a parameter and the comparison point is bugs-per-tested-image. *)

open Nvm

type result = {
  sampled : int;
  mismatches : int;
  distinct_crash_sites : int;  (* distinct (op kind, fence sid) that failed *)
}

let run ?(seed = 7) ?(samples_per_fence = 2) ~trace ~pool_size
    ~(check : img:Pmem.t -> crash_op:int -> Equiv.verdict) () =
  let rng = Random.State.make [| seed |] in
  let sim = Crash_sim.create ~trace ~pool_size in
  let sampled = ref 0 in
  let mismatches = ref 0 in
  let sites = Hashtbl.create 16 in
  Trace.iter
    (fun ev ->
       (match ev with
        | Trace.Fence f ->
          for _ = 1 to samples_per_fence do
            let extras = Crash_sim.random_feasible_extras sim rng in
            let img = Crash_sim.materialize sim ~extras in
            incr sampled;
            match check ~img ~crash_op:f.n_op with
            | Equiv.Consistent -> ()
            | Equiv.Inconsistent _ ->
              incr mismatches;
              Hashtbl.replace sites (f.n_sid, f.n_op) ()
          done
        | _ -> ());
       Crash_sim.on_event sim ev)
    trace;
  { sampled = !sampled; mismatches = !mismatches;
    distinct_crash_sites = Hashtbl.length sites }
