(* The end-to-end Witcher pipeline (Figure 2): trace -> inference -> crash
   image generation -> output equivalence checking, plus the trace-based
   performance detector. Produces one Table 5-style result per store. *)

type cfg = {
  workload : Workload.cfg;
  crash : Crash_gen.cfg;
  fuel : int;  (* access budget for resumed executions *)
  (* Oracle/replay optimizations (DESIGN §5); each independently
     toggleable, all verdict-equivalent to the reference checker. *)
  lazy_oracle : bool;  (* build rolled-back oracles on first divergence *)
  memo : bool;         (* digest-keyed verdict memoization *)
  ckpt_stride : int;   (* record-time checkpoint every N ops; 0 = off *)
}

let default_cfg =
  { workload = Workload.default; crash = Crash_gen.default_cfg;
    fuel = 3_000_000; lazy_oracle = true; memo = true; ckpt_stride = 32 }

type result = {
  name : string;
  n_ops : int;
  trace_len : int;
  n_loads : int;
  n_stores : int;
  n_flushes : int;
  n_fences : int;
  n_ord_conds : int;
  n_atom_conds : int;
  n_guardians : int;
  images_generated : int;
  images_tested : int;
  n_mismatch : int;          (* tested images failing equivalence *)
  n_clusters : int;
  c_o : int;                 (* distinct ordering bug site-pairs *)
  c_a : int;                 (* distinct atomicity bug site-pairs *)
  perf : Perf.t;
  bug_reports : Cluster.report list;   (* one per distinct root cause *)
  site_pairs : Cluster.report list;
  all_clusters : Cluster.report list;
  per_op_images : (int, int) Hashtbl.t;
  replay_ops : int;          (* store ops re-executed across all resumes *)
  replay_early_stops : int;  (* replays the incremental checker cut short *)
  bytes_materialized : int;  (* bytes copied to build crash images *)
  oracle_runs : int;         (* rolled-back oracles actually built *)
  oracle_ops_saved : int;    (* oracle ops elided by laziness/checkpoints *)
  memo_hits : int;           (* verdicts served from the digest memo *)
  ckpt_bytes : int;          (* record-time checkpoint memory footprint *)
  t_record : float;
  t_infer : float;
  t_gen : float;             (* crash-image generation (trace walk + COW) *)
  t_equiv : float;           (* output-equivalence checking (replays) *)
}

(* Wall-clock, not CPU time: campaign workers run in parallel processes,
   and per-phase timings must stay comparable to the sweep's elapsed
   time. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* One engine run owns the process-local observability state: the default
   metrics registry and span buffer are reset at entry, so the snapshot a
   campaign worker ships (or `witcher run -v` prints) covers exactly this
   run. Stage spans carry measured durations; [stage.gen]/[stage.equiv]
   are pipeline-fused in reality, so they are laid out as two adjacent
   logical spans tiling the fused loop's interval (DESIGN §6). *)
let run ?(cfg = default_cfg) (module S : Store_intf.S) =
  Obs.Metrics.reset Obs.Metrics.default;
  Obs.Span.clear Obs.Span.default_buf;
  Obs.Span.with_span ~attrs:[ ("store", S.name) ] "engine.run" @@ fun () ->
  let wl = if S.supports_scan then cfg.workload else Workload.no_scan cfg.workload in
  let ops = Workload.generate wl in
  let rec_t0 = Unix.gettimeofday () in
  let recorded, t_record =
    timed (fun () -> Driver.record ~ckpt_stride:cfg.ckpt_stride (module S) ops)
  in
  Obs.Span.add ~name:"stage.record" ~ts:rec_t0 ~dur:t_record
    ~attrs:[ ("n_ops", string_of_int (Array.length recorded.ops)) ] ();
  let inf_t0 = Unix.gettimeofday () in
  let conds, t_infer = timed (fun () -> Infer.infer recorded.trace) in
  Obs.Span.add ~name:"stage.infer" ~ts:inf_t0 ~dur:t_infer ();
  let perf = Perf.detect recorded.trace in
  let checker =
    Equiv.create ~fuel:cfg.fuel ~lazy_oracle:cfg.lazy_oracle ~memo:cfg.memo
      ~checkpoints:recorded.checkpoints (module S : Store_intf.S)
      ~ops:recorded.ops ~committed:recorded.outputs
  in
  let clusters = Cluster.create ~store_name:S.name in
  let n_mismatch = ref 0 in
  let op_desc_of k =
    if k = 0 then "create" else Op.desc recorded.ops.(k - 1)
  in
  (* Generation and checking are pipeline-fused (one image alive at a
     time), so the stage split is measured around each Equiv.check call:
     t_equiv is the replay/compare time, t_gen the rest of the walk. *)
  let t_equiv_acc = ref 0. in
  let on_image (image : Crash_gen.image) =
    let t0 = Unix.gettimeofday () in
    let verdict =
      Equiv.check ~digest:image.digest checker ~img:image.img
        ~crash_op:image.crash_op
    in
    t_equiv_acc := !t_equiv_acc +. (Unix.gettimeofday () -. t0);
    (match verdict with
     | Equiv.Consistent -> ()
     | Equiv.Inconsistent _ ->
       incr n_mismatch;
       Cluster.add clusters ~image ~op_desc:(op_desc_of image.crash_op) ~verdict);
    `Continue
  in
  let check_t0 = Unix.gettimeofday () in
  let stats, t_check =
    timed (fun () ->
        Crash_gen.generate ~cfg:cfg.crash ~trace:recorded.trace ~conds
          ~pool_size:recorded.pool_size ~on_image ())
  in
  let t_equiv = !t_equiv_acc in
  let t_gen = Float.max 0. (t_check -. t_equiv) in
  (* The two fused stages tile [check_t0, check_t0 + t_check): their span
     durations sum exactly to the loop's wall-clock, so stage spans and
     the journal's t_* fields agree (asserted by the obs-smoke alias). *)
  Obs.Span.add ~name:"stage.gen" ~ts:check_t0 ~dur:t_gen
    ~attrs:[ ("images_generated", string_of_int stats.generated);
             ("images_tested", string_of_int stats.tested) ] ();
  Obs.Span.add ~name:"stage.equiv" ~ts:(check_t0 +. t_gen)
    ~dur:(Float.max 0. (t_check -. t_gen)) ();
  let estats = Equiv.stats checker in
  let bug_reports = Cluster.root_causes clusters in
  let site_pairs = Cluster.site_pairs clusters in
  (* §4.5: an unpersisted store is only a *performance* bug if it passes
     output equivalence checking; sites implicated in a correctness bug
     are dropped from P-U. *)
  List.iter
    (fun (r : Cluster.report) ->
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.watch_sid);
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.req_sid))
    site_pairs;
  let count kind =
    List.length (List.filter (fun (r : Cluster.report) -> r.kind = kind) bug_reports)
  in
  let n_loads, n_stores, n_flushes, n_fences = Nvm.Trace.stats recorded.trace in
  { name = S.name;
    n_ops = List.length ops;
    trace_len = Nvm.Trace.length recorded.trace;
    n_loads; n_stores; n_flushes; n_fences;
    n_ord_conds = Infer.n_ordering conds;
    n_atom_conds = Infer.n_atomicity conds;
    n_guardians = Infer.n_guardians conds;
    images_generated = stats.generated;
    images_tested = stats.tested;
    n_mismatch = !n_mismatch;
    n_clusters = Cluster.n_clusters clusters;
    c_o = count Cluster.C_ordering;
    c_a = count Cluster.C_atomicity;
    perf;
    bug_reports;
    site_pairs;
    all_clusters = Cluster.reports clusters;
    per_op_images = stats.per_op_images;
    replay_ops = estats.Equiv.n_replay_ops;
    replay_early_stops = estats.Equiv.n_early_stops;
    bytes_materialized = stats.bytes_materialized;
    oracle_runs = estats.Equiv.n_oracle_runs;
    oracle_ops_saved = estats.Equiv.n_oracle_ops_saved;
    memo_hits = estats.Equiv.n_memo_hits;
    ckpt_bytes = List.length recorded.checkpoints * recorded.pool_size;
    t_record; t_infer; t_gen; t_equiv }
