(* The end-to-end Witcher pipeline (Figure 2): trace -> inference -> crash
   image generation -> output equivalence checking, plus the trace-based
   performance detector. Produces one Table 5-style result per store. *)

type cfg = {
  workload : Workload.cfg;
  crash : Crash_gen.cfg;
  fuel : int;  (* access budget for resumed executions *)
  (* Oracle/replay optimizations (DESIGN §5); each independently
     toggleable, all verdict-equivalent to the reference checker. *)
  lazy_oracle : bool;  (* build rolled-back oracles on first divergence *)
  memo : bool;         (* digest-keyed verdict memoization *)
  ckpt_stride : int;   (* record-time checkpoint every N ops; 0 = off *)
  batch : bool;        (* fence-batched checking with verdict inheritance *)
  (* Path-representative image pruning (DESIGN §7). *)
  prune : Prune.Policy.t;
  expand_budget : int; (* spot-check validations per equivalence class *)
  sig_depth : int;     (* truncate pruning signatures to the op's last K
                          sites; 0 = full path (cluster keys always full) *)
  (* Streaming pipeline (DESIGN §9). *)
  traffic : Traffic.cfg option;
      (* YCSB-style generator instead of [workload]; honored by both
         engines so streaming A/B comparisons run the same ops *)
  stream_seg_shift : int;  (* ring segment size: 2^shift trace events *)
  stream_window : int;     (* live window, in segments *)
  ckpt_ring : int;         (* checkpoint-ring capacity (streaming only) *)
}

let default_cfg =
  { workload = Workload.default; crash = Crash_gen.default_cfg;
    fuel = 3_000_000; lazy_oracle = true; memo = true; ckpt_stride = 32;
    batch = true; prune = Prune.Policy.Exhaustive; expand_budget = 3;
    sig_depth = 0;
    traffic = None; stream_seg_shift = 14; stream_window = 8; ckpt_ring = 8 }

type result = {
  name : string;
  n_ops : int;
  trace_len : int;
  n_loads : int;
  n_stores : int;
  n_flushes : int;
  n_fences : int;
  n_ord_conds : int;
  n_atom_conds : int;
  n_guardians : int;
  images_generated : int;
  images_tested : int;
  n_mismatch : int;          (* tested images failing equivalence *)
  n_clusters : int;
  c_o : int;                 (* distinct ordering bug site-pairs *)
  c_a : int;                 (* distinct atomicity bug site-pairs *)
  perf : Perf.t;
  bug_reports : Cluster.report list;   (* one per distinct root cause *)
  site_pairs : Cluster.report list;
  all_clusters : Cluster.report list;
  per_op_images : (int, int) Hashtbl.t;
  replay_ops : int;          (* store ops re-executed across all resumes *)
  replay_early_stops : int;  (* replays the incremental checker cut short *)
  bytes_materialized : int;  (* bytes copied to build crash images *)
  oracle_runs : int;         (* rolled-back oracles actually built *)
  oracle_ops_saved : int;    (* oracle ops elided by laziness/checkpoints *)
  memo_hits : int;           (* verdicts served from the digest memo *)
  ckpt_bytes : int;          (* record-time checkpoint memory footprint *)
  (* Fence-batched checking (DESIGN §5); all zero when batch is off. *)
  batch_on : bool;
  batch_fences : int;        (* fence groups opened by the batched path *)
  batch_images : int;        (* images routed through a fence group *)
  inherit_hits : int;        (* verdicts inherited from a group sibling *)
  inherit_ops_saved : int;   (* replay ops those inherited checks skipped *)
  (* Path-representative pruning (DESIGN §7); all zero under Exhaustive. *)
  prune_policy : Prune.Policy.t;
  prune_classes : int;       (* path-signature equivalence classes seen *)
  prune_reps : int;          (* representative + spot-check validations *)
  images_deferred : int;     (* eligible images elided at decision time *)
  images_elided : int;       (* deferred images never validated at all *)
  prune_expansions : int;    (* classes promoted back to full validation *)
  seed_memo_hits : int;      (* classes elided via the cross-seed memo *)
  class_outcomes : (string * bool) list;  (* stable class key -> consistent *)
  (* Streaming pipeline (DESIGN §9); stream_on = false in batch runs. *)
  stream_on : bool;
  window_retirements : int;  (* ring segments recycled (both passes) *)
  ckpt_ring_evictions : int; (* checkpoints dropped as the ring rotated *)
  peak_live_words : int;     (* max GC live words sampled during the run *)
  t_record : float;
  t_infer : float;
  t_gen : float;             (* crash-image generation (trace walk + COW) *)
  t_equiv : float;           (* output-equivalence checking (replays) *)
}

(* Final full-heap sample of a run, returning its peak live words. The
   cheap periodic samples track heap words only; the full samples (phase
   boundaries, every few thousand streamed ops, and this closing one)
   feed the live-words peak. *)
let sampled_peak_live_words () =
  Obs.Metrics.sample_mem ~full:true ();
  let s : Obs.Metrics.snapshot = Obs.Metrics.snapshot Obs.Metrics.default in
  match List.assoc_opt "mem.peak_live_words" s.Obs.Metrics.gauges with
  | Some v -> int_of_float v
  | None -> 0

(* Wall-clock, not CPU time: campaign workers run in parallel processes,
   and per-phase timings must stay comparable to the sweep's elapsed
   time. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* One engine run owns the process-local observability state: the default
   metrics registry and span buffer are reset at entry, so the snapshot a
   campaign worker ships (or `witcher run -v` prints) covers exactly this
   run. Stage spans carry measured durations; [stage.gen]/[stage.equiv]
   are pipeline-fused in reality, so they are laid out as two adjacent
   logical spans tiling the fused loop's interval (DESIGN §6). *)
let run ?(cfg = default_cfg) ?(class_memo = fun (_ : string) -> None)
    (module S : Store_intf.S) =
  Obs.Metrics.reset Obs.Metrics.default;
  Obs.Span.clear Obs.Span.default_buf;
  Obs.Span.with_span ~attrs:[ ("store", S.name) ] "engine.run" @@ fun () ->
  (* The event sink is caller-owned (CLI / campaign worker), not reset
     here: a `run` header event scopes this run's ids within the shard. *)
  if Obs.Event.enabled () then
    ignore
      (Obs.Event.emit "run"
         ~fields:
           [ ("v", Obs.Jsonx.Int Obs.Event.version);
             ("store", Obs.Jsonx.Str S.name);
             ("seed", Obs.Jsonx.Int cfg.workload.Workload.seed);
             ("n_ops", Obs.Jsonx.Int cfg.workload.Workload.n_ops);
             ("max_images", Obs.Jsonx.Int cfg.crash.Crash_gen.max_images);
             ("policy", Obs.Jsonx.Str (Prune.Policy.name cfg.prune)) ]);
  let wl = if S.supports_scan then cfg.workload else Workload.no_scan cfg.workload in
  let ops =
    match cfg.traffic with
    | Some tc ->
      Traffic.generate (if S.supports_scan then tc else Traffic.no_scan tc)
    | None -> Workload.generate wl
  in
  let rec_t0 = Unix.gettimeofday () in
  let recorded, t_record =
    timed (fun () ->
        Driver.record ~ckpt_stride:cfg.ckpt_stride
          ?events_hint:(Option.map Traffic.events_hint cfg.traffic)
          (module S) ops)
  in
  Obs.Span.add ~name:"stage.record" ~ts:rec_t0 ~dur:t_record
    ~attrs:[ ("n_ops", string_of_int (Array.length recorded.ops)) ] ();
  let inf_t0 = Unix.gettimeofday () in
  let conds, t_infer = timed (fun () -> Infer.infer recorded.trace) in
  Obs.Span.add ~name:"stage.infer" ~ts:inf_t0 ~dur:t_infer ();
  let perf = Perf.detect recorded.trace in
  let checker =
    Equiv.create ~fuel:cfg.fuel ~lazy_oracle:cfg.lazy_oracle ~memo:cfg.memo
      ~checkpoints:recorded.checkpoints (module S : Store_intf.S)
      ~ops:recorded.ops ~committed:recorded.outputs
  in
  if cfg.batch then
    Equiv.enable_batch checker
      ~addr_len:(fun tid ->
        ( Nvm.Trace.addr_at recorded.trace tid,
          Nvm.Trace.len_at recorded.trace tid ));
  let clusters = Cluster.create ~store_name:S.name in
  let n_mismatch = ref 0 in
  let op_desc_of k =
    if k = 0 then "create" else Op.desc recorded.ops.(k - 1)
  in
  (* Interned operation type per op index: cluster keys and pruning
     signatures share it without touching strings per image. *)
  let op_kind_sids =
    Array.init
      (Array.length recorded.ops + 1)
      (fun k -> Nvm.Sid.intern (Cluster.op_kind_of_desc (op_desc_of k)))
  in
  (* Pruning signatures use the (possibly truncated) [cd_path_sig] /
     [path_sig] digest; cluster keys keep digesting the full path. At the
     default sig_depth 0 the two coincide. *)
  let sig_of_cand (c : Crash_gen.cand) =
    let watch, req = Crash_gen.violation_sids c.cd_viol in
    Prune.Path_sig.make ~op_kind:op_kind_sids.(c.cd_crash_op)
      ~path:c.cd_path_sig ~watch ~req
  in
  let prune_sig (image : Crash_gen.image) =
    let watch, req = Crash_gen.violation_sids image.viol in
    Prune.Path_sig.make ~op_kind:op_kind_sids.(image.crash_op)
      ~path:image.path_sig ~watch ~req
  in
  (* Generation and checking are pipeline-fused (one image alive at a
     time), so the stage split is measured around each Equiv.check call:
     t_equiv is the replay/compare time, t_gen the rest of the walk. *)
  let t_equiv_acc = ref 0. in
  (* Provenance tag for the verdict currently being reached: why the
     image under check was admitted. Set by the decide hook (or the
     policy branch) immediately before [on_image] fires — valid because
     generation and checking are pipeline-fused and sequential. *)
  let prov = ref "exhaustive" in
  (* One `slice` event per would-be cluster: the trace events touching
     the violated condition's addresses, up to the crash point. *)
  let slices_done : (Prune.Path_sig.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let emit_slice (image : Crash_gen.image) =
    let trace = recorded.trace in
    let watch, req = Crash_gen.violation_sids image.viol in
    let upto = min image.crash_tid (Nvm.Trace.length trace - 1) in
    (* address ranges written by the condition's sites before the crash *)
    let ranges = ref [] in
    for tid = 0 to upto do
      if Nvm.Trace.kind_at trace tid = Nvm.Trace.k_store then begin
        let sid = Nvm.Trace.sid_at trace tid in
        if (sid = watch || sid = req) && List.length !ranges < 8 then begin
          let r = (Nvm.Trace.addr_at trace tid, Nvm.Trace.len_at trace tid) in
          if not (List.mem r !ranges) then ranges := r :: !ranges
        end
      end
    done;
    let overlaps addr len =
      List.exists (fun (a, l) -> Infer.overlap addr len a l) !ranges
    in
    let cap = 48 in
    let rev_entries = ref [] in
    let total = ref 0 in
    for tid = 0 to upto do
      let k = Nvm.Trace.kind_at trace tid in
      if (k = Nvm.Trace.k_store || k = Nvm.Trace.k_flush)
      && overlaps (Nvm.Trace.addr_at trace tid) (Nvm.Trace.len_at trace tid)
      then begin
        incr total;
        let kind = if k = Nvm.Trace.k_store then "store" else "flush" in
        rev_entries :=
          Obs.Jsonx.List
            [ Obs.Jsonx.Int tid; Obs.Jsonx.Str kind;
              Obs.Jsonx.Str (Nvm.Sid.to_string (Nvm.Trace.sid_at trace tid));
              Obs.Jsonx.Int (Nvm.Trace.addr_at trace tid);
              Obs.Jsonx.Int (Nvm.Trace.len_at trace tid);
              Obs.Jsonx.Int (Nvm.Trace.op_at trace tid) ]
          :: !rev_entries
      end
    done;
    (* keep the tail: the events nearest the crash carry the story *)
    let rec take n l = if n = 0 then [] else
        match l with [] -> [] | x :: r -> x :: take (n - 1) r
    in
    let entries = List.rev (take cap !rev_entries) in
    ignore
      (Obs.Event.emit "slice"
         ~fields:
           [ ("image", Obs.Jsonx.Int !Obs.Event.last_image_id);
             ("crash", Obs.Jsonx.Int image.crash_tid);
             ("entries", Obs.Jsonx.List entries);
             ("truncated", Obs.Jsonx.Bool (!total > cap)) ])
  in
  (* Check one image and feed the cluster table; [observe] additionally
     reports the verdict to the pruning registry (pass 1 only). *)
  let check_image ?observe (image : Crash_gen.image) =
    let t0 = Unix.gettimeofday () in
    let memo_before = (Equiv.stats checker).Equiv.n_memo_hits in
    let inherit_before = (Equiv.stats checker).Equiv.n_inherit_hits in
    let verdict =
      Equiv.check ~digest:image.digest ~fence:image.crash_tid
        ~extras:image.extras checker ~img:image.img ~crash_op:image.crash_op
    in
    t_equiv_acc := !t_equiv_acc +. (Unix.gettimeofday () -. t0);
    (match observe with
     | None -> ()
     | Some f -> f image (verdict = Equiv.Consistent));
    if Obs.Event.enabled () then begin
      let sig_ =
        Cluster.signature ~op_kind:op_kind_sids.(image.crash_op) image
      in
      let skey = Prune.Path_sig.stable_key sig_ in
      let memo_hit = (Equiv.stats checker).Equiv.n_memo_hits > memo_before in
      let inherit_hit =
        (Equiv.stats checker).Equiv.n_inherit_hits > inherit_before
      in
      let fields =
        [ ("image", Obs.Jsonx.Int !Obs.Event.last_image_id);
          ("class", Obs.Jsonx.Str skey);
          ("consistent", Obs.Jsonx.Bool (verdict = Equiv.Consistent));
          ("memo", Obs.Jsonx.Bool memo_hit);
          ("inherit", Obs.Jsonx.Bool inherit_hit);
          ("prov", Obs.Jsonx.Str !prov) ]
        @ (match verdict with
           | Equiv.Consistent -> []
           | Equiv.Inconsistent v ->
             [ ("first_diff", Obs.Jsonx.Int v.first_diff);
               ("got", Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.got));
               ("expect_committed",
                Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.expect_committed));
               ("expect_rolled_back",
                Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.expect_rolled_back));
               ("crashed", Obs.Jsonx.Bool v.crashed) ])
      in
      ignore (Obs.Event.emit "verdict" ~fields);
      match verdict with
      | Equiv.Inconsistent _ when not (Hashtbl.mem slices_done sig_) ->
        Hashtbl.add slices_done sig_ ();
        emit_slice image
      | _ -> ()
    end;
    (match verdict with
     | Equiv.Consistent -> ()
     | Equiv.Inconsistent _ ->
       incr n_mismatch;
       Cluster.add clusters ~image ~op_kind:op_kind_sids.(image.crash_op)
         ~verdict);
    `Continue
  in
  let reg = ref None in
  let expanded_tested = ref 0 in
  let check_t0 = Unix.gettimeofday () in
  let stats, t_check =
    timed (fun () ->
        match cfg.prune with
        | Prune.Policy.Exhaustive ->
          Crash_gen.generate ~cfg:cfg.crash ~sig_depth:cfg.sig_depth
            ~trace:recorded.trace ~conds ~pool_size:recorded.pool_size
            ~on_image:check_image ()
        | Prune.Policy.Sample stride ->
          (* blind §7.5-style statistical fallback: every stride-th
             eligible image, no class tracking, no expansion *)
          let i = ref (-1) in
          let decide (_ : Crash_gen.cand) =
            incr i;
            if !i mod stride = 0 then begin
              prov := "sample";
              `Test
            end
            else `Defer
          in
          Crash_gen.generate ~cfg:cfg.crash ~decide ~sig_depth:cfg.sig_depth
            ~trace:recorded.trace ~conds ~pool_size:recorded.pool_size
            ~on_image:check_image ()
        | Prune.Policy.Representative ->
          let r =
            Prune.Equiv_class.create
              ~expand:(Prune.Expand.create ~budget:cfg.expand_budget)
              ~memo:class_memo ()
          in
          reg := Some r;
          (* Pass 1: one representative (plus spot-checks) per class;
             deferred members are remembered by their stable
             (fence, persist-set) identity, not by image — a materialized
             image aliases the live simulator pool and dies at the next
             trace event. *)
          let decide (c : Crash_gen.cand) =
            match
              Prune.Equiv_class.decide r ~sig_:(sig_of_cand c)
                ~member:(c.cd_fence_tid, c.cd_key)
            with
            | `Test ->
              prov := Prune.Equiv_class.last_reason r;
              `Test
            | `Defer -> `Defer
          in
          let observe image consistent =
            Prune.Equiv_class.observe r ~sig_:(prune_sig image) ~consistent
          in
          let stats =
            Crash_gen.generate ~cfg:cfg.crash ~decide ~sig_depth:cfg.sig_depth
              ~trace:recorded.trace ~conds ~pool_size:recorded.pool_size
              ~on_image:(check_image ~observe) ()
          in
          (* Expansion waves. Generation is deterministic over the same
             trace and config, so re-running it with a decide hook that
             admits an explicit member set re-materializes precisely
             those images; the Equiv checker (and its digest memo)
             carries over. The first wave holds every promoted class's
             deferred members plus one tail spot-check per collapsed
             class — the latest deferred member, the highest-value extra
             check since divergence typically appears late as corruption
             accumulates. Verdicts observed during a wave can promote
             further classes, whose remaining members form the next
             wave; the loop reaches a fixpoint because each class
             expands at most once. *)
          let tested_extra = Hashtbl.create 256 in
          let expanded_sigs = Hashtbl.create 64 in
          let next_wave () =
            let want = Hashtbl.create 256 in
            List.iter
              (fun (sig_, members) ->
                 if not (Hashtbl.mem expanded_sigs sig_) then begin
                   Hashtbl.add expanded_sigs sig_ ();
                   List.iter
                     (fun m ->
                        if not (Hashtbl.mem tested_extra m) then
                          Hashtbl.replace want m ())
                     members
                 end)
              (Prune.Equiv_class.promoted_deferred r);
            want
          in
          let wave = ref (next_wave ()) in
          let tails = Hashtbl.create 16 in
          List.iter
            (fun (_sig, m) ->
               if not (Hashtbl.mem tested_extra m) then begin
                 Hashtbl.replace !wave m ();
                 Hashtbl.replace tails m ()
               end)
            (Prune.Equiv_class.tail_spots r);
          let pass = ref 0 in
          while Hashtbl.length !wave > 0 do
            incr pass;
            let want = !wave in
            let decide (c : Crash_gen.cand) =
              let m = (c.cd_fence_tid, c.cd_key) in
              if Hashtbl.mem want m then begin
                Hashtbl.replace tested_extra m ();
                prov :=
                  (if Hashtbl.mem tails m then "tail"
                   else "wave:" ^ string_of_int !pass);
                `Test
              end
              else `Defer
            in
            (* each wanted member materializes exactly once; cut the
               re-walk short as soon as the last one has been checked *)
            let remaining = ref (Hashtbl.length want) in
            let on_image image =
              ignore (check_image ~observe image);
              decr remaining;
              if !remaining = 0 then `Stop else `Continue
            in
            let stats_w =
              Crash_gen.generate ~cfg:cfg.crash ~decide ~pass:!pass
                ~sig_depth:cfg.sig_depth ~trace:recorded.trace ~conds
                ~pool_size:recorded.pool_size ~on_image ()
            in
            expanded_tested := !expanded_tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.tested <-
              stats.Crash_gen.tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.bytes_materialized <-
              stats.Crash_gen.bytes_materialized
              + stats_w.Crash_gen.bytes_materialized;
            wave := next_wave ()
          done;
          stats)
  in
  (* Close the last open fence group so the images-per-batch histogram
     covers every group. *)
  Equiv.flush_batch checker;
  let t_equiv = !t_equiv_acc in
  let t_gen = Float.max 0. (t_check -. t_equiv) in
  (* The two fused stages tile [check_t0, check_t0 + t_check): their span
     durations sum exactly to the loop's wall-clock, so stage spans and
     the journal's t_* fields agree (asserted by the obs-smoke alias). *)
  Obs.Span.add ~name:"stage.gen" ~ts:check_t0 ~dur:t_gen
    ~attrs:[ ("images_generated", string_of_int stats.generated);
             ("images_tested", string_of_int stats.tested) ] ();
  Obs.Span.add ~name:"stage.equiv" ~ts:(check_t0 +. t_gen)
    ~dur:(Float.max 0. (t_check -. t_gen)) ();
  let estats = Equiv.stats checker in
  let bug_reports = Cluster.root_causes clusters in
  let site_pairs = Cluster.site_pairs clusters in
  (* §4.5: an unpersisted store is only a *performance* bug if it passes
     output equivalence checking; sites implicated in a correctness bug
     are dropped from P-U. *)
  List.iter
    (fun (r : Cluster.report) ->
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.watch_sid);
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.req_sid))
    site_pairs;
  let count kind =
    List.length (List.filter (fun (r : Cluster.report) -> r.kind = kind) bug_reports)
  in
  let prune_classes, prune_reps, prune_expansions, seed_memo_hits,
      class_outcomes =
    match !reg with
    | Some r ->
      ( Prune.Equiv_class.n_classes r, Prune.Equiv_class.n_reps r,
        Prune.Equiv_class.n_promoted r, Prune.Equiv_class.n_memo_hits r,
        Prune.Equiv_class.outcomes r )
    | None -> (0, 0, 0, 0, [])
  in
  let images_deferred = stats.deferred in
  let images_elided = stats.deferred - !expanded_tested in
  if cfg.prune <> Prune.Policy.Exhaustive then begin
    Obs.Metrics.incr ~n:prune_classes "prune.classes";
    Obs.Metrics.incr ~n:prune_reps "prune.reps";
    Obs.Metrics.incr ~n:images_elided "prune.images_elided";
    Obs.Metrics.incr ~n:prune_expansions "prune.expansions";
    Obs.Metrics.incr ~n:seed_memo_hits "prune.seed_memo_hits"
  end;
  (* End-of-run forensics: one `class` event per pruning class, one
     `cluster` event per failing cluster (flagged when it is a root
     cause), and a `summary` of the headline counters. *)
  if Obs.Event.enabled () then begin
    (match !reg with
     | Some r ->
       List.iter
         (fun (ci : Prune.Equiv_class.info) ->
            ignore
              (Obs.Event.emit "class"
                 ~fields:
                   [ ("class", Obs.Jsonx.Str ci.i_skey);
                     ("op_kind",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.op_kind));
                     ("path", Obs.Jsonx.Int ci.i_sig.Prune.Path_sig.path);
                     ("watch",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.watch));
                     ("req",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.req));
                     ("members", Obs.Jsonx.Int ci.i_members);
                     ("deferred", Obs.Jsonx.Int ci.i_deferred);
                     ("spots", Obs.Jsonx.Int ci.i_spots);
                     ("promoted", Obs.Jsonx.Bool ci.i_promoted);
                     ("memo_hit", Obs.Jsonx.Bool ci.i_memo_hit);
                     ("prediction",
                      match ci.i_prediction with
                      | None -> Obs.Jsonx.Null
                      | Some b -> Obs.Jsonx.Bool b) ]))
         (Prune.Equiv_class.classes_info r)
     | None -> ());
    (* one root marker per (kind, watch) — the same notion as
       [Cluster.root_causes] but picked in the deterministic keyed
       order, so the event stream never leaks Hashtbl iteration *)
    let root_seen = Hashtbl.create 8 in
    List.iter
      (fun (skey, (rep : Cluster.report)) ->
         let root =
           let k = (rep.Cluster.kind, rep.Cluster.watch_sid) in
           if Hashtbl.mem root_seen k then false
           else begin
             Hashtbl.add root_seen k ();
             true
           end
         in
         ignore
           (Obs.Event.emit "cluster"
              ~fields:
                [ ("class", Obs.Jsonx.Str skey);
                  ("kind",
                   Obs.Jsonx.Str
                     (match rep.kind with
                      | Cluster.C_ordering -> "C-O"
                      | Cluster.C_atomicity -> "C-A"));
                  ("rule", Obs.Jsonx.Str rep.rule);
                  ("op", Obs.Jsonx.Str rep.op_desc);
                  ("watch", Obs.Jsonx.Str rep.watch_sid);
                  ("req", Obs.Jsonx.Str rep.req_sid);
                  ("count", Obs.Jsonx.Int rep.count);
                  ("crash", Obs.Jsonx.Int rep.example_crash_tid);
                  ("first_diff", Obs.Jsonx.Int rep.example_first_diff);
                  ("got", Obs.Jsonx.Str (Fmt.str "%a" Output.pp rep.example_got));
                  ("expected",
                   Obs.Jsonx.Str (Fmt.str "%a" Output.pp rep.example_expected));
                  ("crashed", Obs.Jsonx.Bool rep.crashed);
                  ("root", Obs.Jsonx.Bool root) ]))
      (Cluster.reports_keyed clusters);
    ignore
      (Obs.Event.emit "summary"
         ~fields:
           [ ("images_generated", Obs.Jsonx.Int stats.generated);
             ("images_tested", Obs.Jsonx.Int stats.tested);
             ("images_deferred", Obs.Jsonx.Int images_deferred);
             ("images_elided", Obs.Jsonx.Int images_elided);
             ("n_mismatch", Obs.Jsonx.Int !n_mismatch);
             ("n_clusters", Obs.Jsonx.Int (Cluster.n_clusters clusters));
             ("memo_hits", Obs.Jsonx.Int estats.Equiv.n_memo_hits);
             ("oracle_runs", Obs.Jsonx.Int estats.Equiv.n_oracle_runs);
             ("prune_classes", Obs.Jsonx.Int prune_classes);
             ("prune_expansions", Obs.Jsonx.Int prune_expansions) ])
  end;
  let n_loads, n_stores, n_flushes, n_fences = Nvm.Trace.stats recorded.trace in
  { name = S.name;
    n_ops = List.length ops;
    trace_len = Nvm.Trace.length recorded.trace;
    n_loads; n_stores; n_flushes; n_fences;
    n_ord_conds = Infer.n_ordering conds;
    n_atom_conds = Infer.n_atomicity conds;
    n_guardians = Infer.n_guardians conds;
    images_generated = stats.generated;
    images_tested = stats.tested;
    n_mismatch = !n_mismatch;
    n_clusters = Cluster.n_clusters clusters;
    c_o = count Cluster.C_ordering;
    c_a = count Cluster.C_atomicity;
    perf;
    bug_reports;
    site_pairs;
    all_clusters = Cluster.reports clusters;
    per_op_images = stats.per_op_images;
    replay_ops = estats.Equiv.n_replay_ops;
    replay_early_stops = estats.Equiv.n_early_stops;
    bytes_materialized = stats.bytes_materialized;
    oracle_runs = estats.Equiv.n_oracle_runs;
    oracle_ops_saved = estats.Equiv.n_oracle_ops_saved;
    memo_hits = estats.Equiv.n_memo_hits;
    ckpt_bytes = List.length recorded.checkpoints * recorded.pool_size;
    batch_on = cfg.batch;
    batch_fences = estats.Equiv.n_batch_fences;
    batch_images = estats.Equiv.n_batch_images;
    inherit_hits = estats.Equiv.n_inherit_hits;
    inherit_ops_saved = estats.Equiv.n_inherit_ops_saved;
    prune_policy = cfg.prune;
    prune_classes; prune_reps; images_deferred; images_elided;
    prune_expansions; seed_memo_hits; class_outcomes;
    stream_on = false; window_retirements = 0; ckpt_ring_evictions = 0;
    peak_live_words = sampled_peak_live_words ();
    t_record; t_infer; t_gen; t_equiv }

(* The bounded-memory streaming engine (DESIGN §9). Two deterministic
   passes over the same op stream, both recording into a windowed ring
   trace ([Trace.create ~ring_shift]) whose segments are recycled as the
   window slides:

   - Pass A (ingest): instrumented execution; [Infer.feed] and
     [Perf.feed] consume each event as it is appended, so by the end the
     condition set equals the batch engine's post-hoc walk (condition
     discovery only ever looks backward). Committed outputs double as the
     committed oracle, exactly as in batch. Segments a younger event
     still taint-references stay pinned (a condition spanning the window
     boundary keeps its loads alive).

   - Pass B (validate): taintless re-execution — identical event stream,
     empty dependence edges — feeding [Crash_gen.stream_feed] against the
     COMPLETE condition set; images are generated and checked at each
     fence while the workload continues. Dirty stores pin their segment
     (their payloads build crash images) until [Crash_sim] reports them
     guaranteed; the [ckpt_stride] snapshots generalize to a bounded ring
     of the [ckpt_ring] newest, so oracles resume from the nearest
     snapshot and old pools are dropped as the window slides. Expansion
     waves of the representative policy are further full passes.

   Verdict parity with [run] is by construction: both engines feed the
   same event indices in the same order to the same inference, generation
   and checking code; the window only changes which trace bytes are still
   resident, never what is computed from them. A window too small for the
   store's reference distance raises [Nvm.Trace.Retired] loudly. *)
let run_stream ?(cfg = default_cfg)
    ?(class_memo = fun (_ : string) -> None) (module S : Store_intf.S) =
  Obs.Metrics.reset Obs.Metrics.default;
  Obs.Span.clear Obs.Span.default_buf;
  Obs.Span.with_span ~attrs:[ ("store", S.name) ] "engine.run_stream"
  @@ fun () ->
  if Obs.Event.enabled () then
    ignore
      (Obs.Event.emit "run"
         ~fields:
           [ ("v", Obs.Jsonx.Int Obs.Event.version);
             ("store", Obs.Jsonx.Str S.name);
             ("seed", Obs.Jsonx.Int cfg.workload.Workload.seed);
             ("n_ops", Obs.Jsonx.Int cfg.workload.Workload.n_ops);
             ("max_images", Obs.Jsonx.Int cfg.crash.Crash_gen.max_images);
             ("policy", Obs.Jsonx.Str (Prune.Policy.name cfg.prune));
             ("stream", Obs.Jsonx.Bool true) ]);
  let ops =
    match cfg.traffic with
    | Some tc ->
      Traffic.generate_array
        (if S.supports_scan then tc else Traffic.no_scan tc)
    | None ->
      Array.of_list
        (Workload.generate
           (if S.supports_scan then cfg.workload
            else Workload.no_scan cfg.workload))
  in
  let n = Array.length ops in
  let seg_shift = cfg.stream_seg_shift in
  let window_events = cfg.stream_window lsl seg_shift in
  let pool_size = S.pool_size in
  let retirements = ref 0 in
  let evictions = ref 0 in
  let sample index =
    if index land 4095 = 0 then Obs.Metrics.sample_mem ~full:true ()
    else if index land 255 = 0 then Obs.Metrics.sample_mem ()
  in
  let ev_op index desc =
    if Obs.Event.enabled () then
      ignore
        (Obs.Event.emit "op"
           ~fields:
             [ ("op", Obs.Jsonx.Int index); ("desc", Obs.Jsonx.Str desc) ])
  in
  (* ---- pass A: instrumented ingest with incremental inference ---- *)
  let rec_t0 = Unix.gettimeofday () in
  let trace_a = Nvm.Trace.create ~ring_shift:seg_shift () in
  let conds = Infer.create () in
  let perf_st = Perf.create () in
  let (outputs, perf), t_record =
    timed (fun () ->
        let pmem = Nvm.Pmem.create pool_size in
        let ctx = Nvm.Ctx.create ~trace:trace_a ~mode:Nvm.Ctx.Record pmem in
        let cursor = ref 0 in
        let feed_new () =
          let len = Nvm.Trace.length trace_a in
          for i = !cursor to len - 1 do
            Infer.feed conds trace_a i;
            Perf.feed perf_st trace_a i
          done;
          cursor := len;
          let r =
            Nvm.Trace.retire_to trace_a ~target:(len - window_events)
          in
          if r > 0 then begin
            retirements := !retirements + r;
            Obs.Metrics.incr ~n:r "stream.window_retirements"
          end
        in
        Nvm.Ctx.op_begin ctx ~index:0 ~desc:"create";
        ev_op 0 "create";
        let store = S.create ctx in
        Nvm.Ctx.op_end ctx ~index:0;
        feed_new ();
        let outputs =
          Array.mapi
            (fun i op ->
               let index = i + 1 in
               Nvm.Ctx.op_begin ctx ~index ~desc:(Op.desc op);
               ev_op index (Op.desc op);
               let out = S.exec store op in
               Nvm.Ctx.op_end ctx ~index;
               feed_new ();
               sample index;
               out)
            ops
        in
        Obs.Metrics.incr ~n:n "driver.record_ops";
        (outputs, Perf.finish perf_st))
  in
  Obs.Span.add ~name:"stage.record" ~ts:rec_t0 ~dur:t_record
    ~attrs:[ ("n_ops", string_of_int n); ("stream", "true") ] ();
  Obs.Metrics.sample_mem ~full:true ();
  let trace_len = Nvm.Trace.length trace_a in
  let n_loads, n_stores, n_flushes, n_fences = Nvm.Trace.stats trace_a in
  (* ---- shared validation plumbing (mirrors [run]) ---- *)
  let checker =
    Equiv.create ~fuel:cfg.fuel ~lazy_oracle:cfg.lazy_oracle ~memo:cfg.memo
      ~checkpoints:[] (module S : Store_intf.S) ~ops ~committed:outputs
  in
  (* The batch checker reads store ranges off the trace of whichever
     validation pass is live; tids are pass-invariant. *)
  let btrace = ref trace_a in
  if cfg.batch then
    Equiv.enable_batch checker
      ~addr_len:(fun tid ->
        (Nvm.Trace.addr_at !btrace tid, Nvm.Trace.len_at !btrace tid));
  let clusters = Cluster.create ~store_name:S.name in
  let n_mismatch = ref 0 in
  let op_desc_of k = if k = 0 then "create" else Op.desc ops.(k - 1) in
  let op_kind_sids =
    Array.init (n + 1) (fun k ->
        Nvm.Sid.intern (Cluster.op_kind_of_desc (op_desc_of k)))
  in
  let sig_of_cand (c : Crash_gen.cand) =
    let watch, req = Crash_gen.violation_sids c.cd_viol in
    Prune.Path_sig.make ~op_kind:op_kind_sids.(c.cd_crash_op)
      ~path:c.cd_path_sig ~watch ~req
  in
  let prune_sig (image : Crash_gen.image) =
    let watch, req = Crash_gen.violation_sids image.viol in
    Prune.Path_sig.make ~op_kind:op_kind_sids.(image.crash_op)
      ~path:image.path_sig ~watch ~req
  in
  let t_equiv_acc = ref 0. in
  let prov = ref "exhaustive" in
  let slices_done : (Prune.Path_sig.t, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Bug slice over the live window only: retired events are gone, and
     the events nearest the crash carry the story anyway. *)
  let emit_slice (image : Crash_gen.image) =
    let trace = !btrace in
    let watch, req = Crash_gen.violation_sids image.viol in
    let lo = Nvm.Trace.live_floor trace in
    let upto = min image.crash_tid (Nvm.Trace.length trace - 1) in
    let ranges = ref [] in
    for tid = lo to upto do
      if Nvm.Trace.kind_at trace tid = Nvm.Trace.k_store then begin
        let sid = Nvm.Trace.sid_at trace tid in
        if (sid = watch || sid = req) && List.length !ranges < 8 then begin
          let r = (Nvm.Trace.addr_at trace tid, Nvm.Trace.len_at trace tid) in
          if not (List.mem r !ranges) then ranges := r :: !ranges
        end
      end
    done;
    let overlaps addr len =
      List.exists (fun (a, l) -> Infer.overlap addr len a l) !ranges
    in
    let cap = 48 in
    let rev_entries = ref [] in
    let total = ref 0 in
    for tid = lo to upto do
      let k = Nvm.Trace.kind_at trace tid in
      if (k = Nvm.Trace.k_store || k = Nvm.Trace.k_flush)
      && overlaps (Nvm.Trace.addr_at trace tid) (Nvm.Trace.len_at trace tid)
      then begin
        incr total;
        let kind = if k = Nvm.Trace.k_store then "store" else "flush" in
        rev_entries :=
          Obs.Jsonx.List
            [ Obs.Jsonx.Int tid; Obs.Jsonx.Str kind;
              Obs.Jsonx.Str (Nvm.Sid.to_string (Nvm.Trace.sid_at trace tid));
              Obs.Jsonx.Int (Nvm.Trace.addr_at trace tid);
              Obs.Jsonx.Int (Nvm.Trace.len_at trace tid);
              Obs.Jsonx.Int (Nvm.Trace.op_at trace tid) ]
          :: !rev_entries
      end
    done;
    let rec take n l =
      if n = 0 then []
      else match l with [] -> [] | x :: r -> x :: take (n - 1) r
    in
    let entries = List.rev (take cap !rev_entries) in
    ignore
      (Obs.Event.emit "slice"
         ~fields:
           [ ("image", Obs.Jsonx.Int !Obs.Event.last_image_id);
             ("crash", Obs.Jsonx.Int image.crash_tid);
             ("entries", Obs.Jsonx.List entries);
             ("truncated", Obs.Jsonx.Bool (!total > cap)) ])
  in
  let check_image ?observe (image : Crash_gen.image) =
    let t0 = Unix.gettimeofday () in
    let memo_before = (Equiv.stats checker).Equiv.n_memo_hits in
    let inherit_before = (Equiv.stats checker).Equiv.n_inherit_hits in
    let verdict =
      Equiv.check ~digest:image.digest ~fence:image.crash_tid
        ~extras:image.extras checker ~img:image.img ~crash_op:image.crash_op
    in
    t_equiv_acc := !t_equiv_acc +. (Unix.gettimeofday () -. t0);
    (match observe with
     | None -> ()
     | Some f -> f image (verdict = Equiv.Consistent));
    if Obs.Event.enabled () then begin
      let sig_ =
        Cluster.signature ~op_kind:op_kind_sids.(image.crash_op) image
      in
      let skey = Prune.Path_sig.stable_key sig_ in
      let memo_hit = (Equiv.stats checker).Equiv.n_memo_hits > memo_before in
      let inherit_hit =
        (Equiv.stats checker).Equiv.n_inherit_hits > inherit_before
      in
      let fields =
        [ ("image", Obs.Jsonx.Int !Obs.Event.last_image_id);
          ("class", Obs.Jsonx.Str skey);
          ("consistent", Obs.Jsonx.Bool (verdict = Equiv.Consistent));
          ("memo", Obs.Jsonx.Bool memo_hit);
          ("inherit", Obs.Jsonx.Bool inherit_hit);
          ("prov", Obs.Jsonx.Str !prov) ]
        @ (match verdict with
           | Equiv.Consistent -> []
           | Equiv.Inconsistent v ->
             [ ("first_diff", Obs.Jsonx.Int v.first_diff);
               ("got", Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.got));
               ("expect_committed",
                Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.expect_committed));
               ("expect_rolled_back",
                Obs.Jsonx.Str (Fmt.str "%a" Output.pp v.expect_rolled_back));
               ("crashed", Obs.Jsonx.Bool v.crashed) ])
      in
      ignore (Obs.Event.emit "verdict" ~fields);
      match verdict with
      | Equiv.Inconsistent _ when not (Hashtbl.mem slices_done sig_) ->
        Hashtbl.add slices_done sig_ ();
        emit_slice image
      | _ -> ()
    end;
    (match verdict with
     | Equiv.Consistent -> ()
     | Equiv.Inconsistent _ ->
       incr n_mismatch;
       Cluster.add clusters ~image ~op_kind:op_kind_sids.(image.crash_op)
         ~verdict);
    `Continue
  in
  (* ---- pass B: taintless re-execution feeding generate + check ---- *)
  let run_pass ~decide ~pass ~on_image =
    let tr = Nvm.Trace.create ~ring_shift:seg_shift () in
    btrace := tr;
    let pmem = Nvm.Pmem.create pool_size in
    let ctx =
      Nvm.Ctx.create ~trace:tr ~taintless:true ~mode:Nvm.Ctx.Record pmem
    in
    let gen =
      Crash_gen.stream_create ~cfg:cfg.crash ~decide ~pass
        ~sig_depth:cfg.sig_depth ~trace:tr ~conds ~pool_size ~on_image ()
    in
    (* Dirty stores pin their segment (image materialization reads their
       payloads); the simulator unpins each as its fence guarantees it. *)
    Nvm.Crash_sim.set_on_guarantee gen.Crash_gen.g_sim
      (fun tid -> Nvm.Trace.unpin tr tid);
    let cursor = ref 0 in
    let feed_new () =
      let len = Nvm.Trace.length tr in
      for i = !cursor to len - 1 do
        if Nvm.Trace.kind_at tr i = Nvm.Trace.k_store then Nvm.Trace.pin tr i;
        gen.Crash_gen.g_feed i
      done;
      cursor := len;
      (* The fence-batched checker resolves its extras' store ranges off
         the trace lazily at group flush; flush any open group before
         events can retire so those lookups never chase a recycled
         segment. (Under sparse sampling a group can stay open across an
         arbitrary stretch of trace.) *)
      let target = len - window_events in
      if target > Nvm.Trace.live_floor tr then Equiv.flush_batch checker;
      let r = Nvm.Trace.retire_to tr ~target in
      if r > 0 && pass = 0 then begin
        retirements := !retirements + r;
        Obs.Metrics.incr ~n:r "stream.window_retirements"
      end
    in
    (* Checkpoint ring: flat snapshots every [ckpt_stride] ops, newest
       [ckpt_ring] kept. Checkpoints only shorten oracle replays, so
       rotation is verdict-neutral. *)
    let ckpts = ref [] in
    let n_ckpts = ref 0 in
    let take_ckpt index =
      if cfg.ckpt_stride > 0 && index mod cfg.ckpt_stride = 0 && index < n
      then begin
        ckpts := (index, Nvm.Pmem.copy pmem) :: !ckpts;
        incr n_ckpts;
        Obs.Metrics.incr ~n:pool_size "driver.ckpt_bytes";
        if !n_ckpts > cfg.ckpt_ring then begin
          let rec drop_last = function
            | [] | [ _ ] -> []
            | c :: rest -> c :: drop_last rest
          in
          ckpts := drop_last !ckpts;
          decr n_ckpts;
          if pass = 0 then begin
            incr evictions;
            Obs.Metrics.incr "stream.ckpt_ring_evictions"
          end
        end;
        Equiv.set_checkpoints checker !ckpts
      end
    in
    Nvm.Ctx.op_begin ctx ~index:0 ~desc:"create";
    let store = S.create ctx in
    Nvm.Ctx.op_end ctx ~index:0;
    feed_new ();
    let i = ref 0 in
    while !i < n && not (gen.Crash_gen.g_stopped ()) do
      let index = !i + 1 in
      Nvm.Ctx.op_begin ctx ~index ~desc:(Op.desc ops.(!i));
      let out = S.exec store ops.(!i) in
      Nvm.Ctx.op_end ctx ~index;
      (* The two passes must replay the same execution bit-for-bit; a
         store with hidden nondeterminism would silently break parity. *)
      if not (Output.equal out outputs.(!i)) then
        failwith
          (Printf.sprintf
             "Engine.run_stream: %s diverged between passes at op %d"
             S.name index);
      feed_new ();
      take_ckpt index;
      if pass = 0 then begin
        sample index;
        if index land 63 = 0 then
          Equiv.forget_before checker ~floor:(index - 1)
      end;
      incr i
    done;
    gen.Crash_gen.g_finish ()
  in
  let reg = ref None in
  let expanded_tested = ref 0 in
  let check_t0 = Unix.gettimeofday () in
  let stats, t_check =
    timed (fun () ->
        match cfg.prune with
        | Prune.Policy.Exhaustive ->
          run_pass ~decide:(fun _ -> `Test) ~pass:0 ~on_image:check_image
        | Prune.Policy.Sample stride ->
          let i = ref (-1) in
          let decide (_ : Crash_gen.cand) =
            incr i;
            if !i mod stride = 0 then begin
              prov := "sample";
              `Test
            end
            else `Defer
          in
          run_pass ~decide ~pass:0 ~on_image:check_image
        | Prune.Policy.Representative ->
          let r =
            Prune.Equiv_class.create
              ~expand:(Prune.Expand.create ~budget:cfg.expand_budget)
              ~memo:class_memo ()
          in
          reg := Some r;
          let decide (c : Crash_gen.cand) =
            match
              Prune.Equiv_class.decide r ~sig_:(sig_of_cand c)
                ~member:(c.cd_fence_tid, c.cd_key)
            with
            | `Test ->
              prov := Prune.Equiv_class.last_reason r;
              `Test
            | `Defer -> `Defer
          in
          let observe image consistent =
            Prune.Equiv_class.observe r ~sig_:(prune_sig image) ~consistent
          in
          let stats =
            run_pass ~decide ~pass:0 ~on_image:(check_image ~observe)
          in
          (* Expansion waves: each is one more deterministic validation
             pass admitting exactly the promoted members (see [run]). *)
          let tested_extra = Hashtbl.create 256 in
          let expanded_sigs = Hashtbl.create 64 in
          let next_wave () =
            let want = Hashtbl.create 256 in
            List.iter
              (fun (sig_, members) ->
                 if not (Hashtbl.mem expanded_sigs sig_) then begin
                   Hashtbl.add expanded_sigs sig_ ();
                   List.iter
                     (fun m ->
                        if not (Hashtbl.mem tested_extra m) then
                          Hashtbl.replace want m ())
                     members
                 end)
              (Prune.Equiv_class.promoted_deferred r);
            want
          in
          let wave = ref (next_wave ()) in
          let tails = Hashtbl.create 16 in
          List.iter
            (fun (_sig, m) ->
               if not (Hashtbl.mem tested_extra m) then begin
                 Hashtbl.replace !wave m ();
                 Hashtbl.replace tails m ()
               end)
            (Prune.Equiv_class.tail_spots r);
          let pass = ref 0 in
          while Hashtbl.length !wave > 0 do
            incr pass;
            let want = !wave in
            let decide (c : Crash_gen.cand) =
              let m = (c.cd_fence_tid, c.cd_key) in
              if Hashtbl.mem want m then begin
                Hashtbl.replace tested_extra m ();
                prov :=
                  (if Hashtbl.mem tails m then "tail"
                   else "wave:" ^ string_of_int !pass);
                `Test
              end
              else `Defer
            in
            let remaining = ref (Hashtbl.length want) in
            let on_image image =
              ignore (check_image ~observe image);
              decr remaining;
              if !remaining = 0 then `Stop else `Continue
            in
            let stats_w = run_pass ~decide ~pass:!pass ~on_image in
            expanded_tested := !expanded_tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.tested <-
              stats.Crash_gen.tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.bytes_materialized <-
              stats.Crash_gen.bytes_materialized
              + stats_w.Crash_gen.bytes_materialized;
            wave := next_wave ()
          done;
          stats)
  in
  Equiv.flush_batch checker;
  let t_equiv = !t_equiv_acc in
  let t_gen = Float.max 0. (t_check -. t_equiv) in
  Obs.Span.add ~name:"stage.gen" ~ts:check_t0 ~dur:t_gen
    ~attrs:[ ("images_generated", string_of_int stats.generated);
             ("images_tested", string_of_int stats.tested) ] ();
  Obs.Span.add ~name:"stage.equiv" ~ts:(check_t0 +. t_gen)
    ~dur:(Float.max 0. (t_check -. t_gen)) ();
  let estats = Equiv.stats checker in
  let bug_reports = Cluster.root_causes clusters in
  let site_pairs = Cluster.site_pairs clusters in
  List.iter
    (fun (r : Cluster.report) ->
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.watch_sid);
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.req_sid))
    site_pairs;
  let count kind =
    List.length
      (List.filter (fun (r : Cluster.report) -> r.kind = kind) bug_reports)
  in
  let prune_classes, prune_reps, prune_expansions, seed_memo_hits,
      class_outcomes =
    match !reg with
    | Some r ->
      ( Prune.Equiv_class.n_classes r, Prune.Equiv_class.n_reps r,
        Prune.Equiv_class.n_promoted r, Prune.Equiv_class.n_memo_hits r,
        Prune.Equiv_class.outcomes r )
    | None -> (0, 0, 0, 0, [])
  in
  let images_deferred = stats.deferred in
  let images_elided = stats.deferred - !expanded_tested in
  if cfg.prune <> Prune.Policy.Exhaustive then begin
    Obs.Metrics.incr ~n:prune_classes "prune.classes";
    Obs.Metrics.incr ~n:prune_reps "prune.reps";
    Obs.Metrics.incr ~n:images_elided "prune.images_elided";
    Obs.Metrics.incr ~n:prune_expansions "prune.expansions";
    Obs.Metrics.incr ~n:seed_memo_hits "prune.seed_memo_hits"
  end;
  (* End-of-run forensics, mirroring [run]: `class`/`cluster` events so
     `witcher explain` and the -v footer read streaming logs identically. *)
  if Obs.Event.enabled () then begin
    (match !reg with
     | Some r ->
       List.iter
         (fun (ci : Prune.Equiv_class.info) ->
            ignore
              (Obs.Event.emit "class"
                 ~fields:
                   [ ("class", Obs.Jsonx.Str ci.i_skey);
                     ("op_kind",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.op_kind));
                     ("path", Obs.Jsonx.Int ci.i_sig.Prune.Path_sig.path);
                     ("watch",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.watch));
                     ("req",
                      Obs.Jsonx.Str
                        (Nvm.Sid.to_string ci.i_sig.Prune.Path_sig.req));
                     ("members", Obs.Jsonx.Int ci.i_members);
                     ("deferred", Obs.Jsonx.Int ci.i_deferred);
                     ("spots", Obs.Jsonx.Int ci.i_spots);
                     ("promoted", Obs.Jsonx.Bool ci.i_promoted);
                     ("memo_hit", Obs.Jsonx.Bool ci.i_memo_hit);
                     ("prediction",
                      match ci.i_prediction with
                      | None -> Obs.Jsonx.Null
                      | Some b -> Obs.Jsonx.Bool b) ]))
         (Prune.Equiv_class.classes_info r)
     | None -> ());
    let root_seen = Hashtbl.create 8 in
    List.iter
      (fun (skey, (rep : Cluster.report)) ->
         let root =
           let k = (rep.Cluster.kind, rep.Cluster.watch_sid) in
           if Hashtbl.mem root_seen k then false
           else begin
             Hashtbl.add root_seen k ();
             true
           end
         in
         ignore
           (Obs.Event.emit "cluster"
              ~fields:
                [ ("class", Obs.Jsonx.Str skey);
                  ("kind",
                   Obs.Jsonx.Str
                     (match rep.kind with
                      | Cluster.C_ordering -> "C-O"
                      | Cluster.C_atomicity -> "C-A"));
                  ("rule", Obs.Jsonx.Str rep.rule);
                  ("op", Obs.Jsonx.Str rep.op_desc);
                  ("watch", Obs.Jsonx.Str rep.watch_sid);
                  ("req", Obs.Jsonx.Str rep.req_sid);
                  ("count", Obs.Jsonx.Int rep.count);
                  ("crash", Obs.Jsonx.Int rep.example_crash_tid);
                  ("first_diff", Obs.Jsonx.Int rep.example_first_diff);
                  ("got", Obs.Jsonx.Str (Fmt.str "%a" Output.pp rep.example_got));
                  ("expected",
                   Obs.Jsonx.Str (Fmt.str "%a" Output.pp rep.example_expected));
                  ("crashed", Obs.Jsonx.Bool rep.crashed);
                  ("root", Obs.Jsonx.Bool root) ]))
      (Cluster.reports_keyed clusters);
    ignore
      (Obs.Event.emit "summary"
         ~fields:
           [ ("images_generated", Obs.Jsonx.Int stats.generated);
             ("images_tested", Obs.Jsonx.Int stats.tested);
             ("images_deferred", Obs.Jsonx.Int images_deferred);
             ("images_elided", Obs.Jsonx.Int images_elided);
             ("n_mismatch", Obs.Jsonx.Int !n_mismatch);
             ("n_clusters", Obs.Jsonx.Int (Cluster.n_clusters clusters));
             ("window_retirements", Obs.Jsonx.Int !retirements);
             ("ckpt_ring_evictions", Obs.Jsonx.Int !evictions) ])
  end;
  { name = S.name;
    n_ops = n;
    trace_len;
    n_loads; n_stores; n_flushes; n_fences;
    n_ord_conds = Infer.n_ordering conds;
    n_atom_conds = Infer.n_atomicity conds;
    n_guardians = Infer.n_guardians conds;
    images_generated = stats.generated;
    images_tested = stats.tested;
    n_mismatch = !n_mismatch;
    n_clusters = Cluster.n_clusters clusters;
    c_o = count Cluster.C_ordering;
    c_a = count Cluster.C_atomicity;
    perf;
    bug_reports;
    site_pairs;
    all_clusters = Cluster.reports clusters;
    per_op_images = stats.per_op_images;
    replay_ops = estats.Equiv.n_replay_ops;
    replay_early_stops = estats.Equiv.n_early_stops;
    bytes_materialized = stats.bytes_materialized;
    oracle_runs = estats.Equiv.n_oracle_runs;
    oracle_ops_saved = estats.Equiv.n_oracle_ops_saved;
    memo_hits = estats.Equiv.n_memo_hits;
    ckpt_bytes = (min cfg.ckpt_ring ((max 1 n) / max 1 cfg.ckpt_stride)) * pool_size;
    batch_on = cfg.batch;
    batch_fences = estats.Equiv.n_batch_fences;
    batch_images = estats.Equiv.n_batch_images;
    inherit_hits = estats.Equiv.n_inherit_hits;
    inherit_ops_saved = estats.Equiv.n_inherit_ops_saved;
    prune_policy = cfg.prune;
    prune_classes; prune_reps; images_deferred; images_elided;
    prune_expansions; seed_memo_hits; class_outcomes;
    stream_on = true;
    window_retirements = !retirements;
    ckpt_ring_evictions = !evictions;
    peak_live_words = sampled_peak_live_words ();
    t_record; t_infer = 0.; t_gen; t_equiv }
