(* The end-to-end Witcher pipeline (Figure 2): trace -> inference -> crash
   image generation -> output equivalence checking, plus the trace-based
   performance detector. Produces one Table 5-style result per store. *)

type cfg = {
  workload : Workload.cfg;
  crash : Crash_gen.cfg;
  fuel : int;  (* access budget for resumed executions *)
  (* Oracle/replay optimizations (DESIGN §5); each independently
     toggleable, all verdict-equivalent to the reference checker. *)
  lazy_oracle : bool;  (* build rolled-back oracles on first divergence *)
  memo : bool;         (* digest-keyed verdict memoization *)
  ckpt_stride : int;   (* record-time checkpoint every N ops; 0 = off *)
  (* Path-representative image pruning (DESIGN §7). *)
  prune : Prune.Policy.t;
  expand_budget : int; (* spot-check validations per equivalence class *)
}

let default_cfg =
  { workload = Workload.default; crash = Crash_gen.default_cfg;
    fuel = 3_000_000; lazy_oracle = true; memo = true; ckpt_stride = 32;
    prune = Prune.Policy.Exhaustive; expand_budget = 3 }

type result = {
  name : string;
  n_ops : int;
  trace_len : int;
  n_loads : int;
  n_stores : int;
  n_flushes : int;
  n_fences : int;
  n_ord_conds : int;
  n_atom_conds : int;
  n_guardians : int;
  images_generated : int;
  images_tested : int;
  n_mismatch : int;          (* tested images failing equivalence *)
  n_clusters : int;
  c_o : int;                 (* distinct ordering bug site-pairs *)
  c_a : int;                 (* distinct atomicity bug site-pairs *)
  perf : Perf.t;
  bug_reports : Cluster.report list;   (* one per distinct root cause *)
  site_pairs : Cluster.report list;
  all_clusters : Cluster.report list;
  per_op_images : (int, int) Hashtbl.t;
  replay_ops : int;          (* store ops re-executed across all resumes *)
  replay_early_stops : int;  (* replays the incremental checker cut short *)
  bytes_materialized : int;  (* bytes copied to build crash images *)
  oracle_runs : int;         (* rolled-back oracles actually built *)
  oracle_ops_saved : int;    (* oracle ops elided by laziness/checkpoints *)
  memo_hits : int;           (* verdicts served from the digest memo *)
  ckpt_bytes : int;          (* record-time checkpoint memory footprint *)
  (* Path-representative pruning (DESIGN §7); all zero under Exhaustive. *)
  prune_policy : Prune.Policy.t;
  prune_classes : int;       (* path-signature equivalence classes seen *)
  prune_reps : int;          (* representative + spot-check validations *)
  images_deferred : int;     (* eligible images elided at decision time *)
  images_elided : int;       (* deferred images never validated at all *)
  prune_expansions : int;    (* classes promoted back to full validation *)
  seed_memo_hits : int;      (* classes elided via the cross-seed memo *)
  class_outcomes : (string * bool) list;  (* stable class key -> consistent *)
  t_record : float;
  t_infer : float;
  t_gen : float;             (* crash-image generation (trace walk + COW) *)
  t_equiv : float;           (* output-equivalence checking (replays) *)
}

(* Wall-clock, not CPU time: campaign workers run in parallel processes,
   and per-phase timings must stay comparable to the sweep's elapsed
   time. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* One engine run owns the process-local observability state: the default
   metrics registry and span buffer are reset at entry, so the snapshot a
   campaign worker ships (or `witcher run -v` prints) covers exactly this
   run. Stage spans carry measured durations; [stage.gen]/[stage.equiv]
   are pipeline-fused in reality, so they are laid out as two adjacent
   logical spans tiling the fused loop's interval (DESIGN §6). *)
let run ?(cfg = default_cfg) ?(class_memo = fun (_ : string) -> None)
    (module S : Store_intf.S) =
  Obs.Metrics.reset Obs.Metrics.default;
  Obs.Span.clear Obs.Span.default_buf;
  Obs.Span.with_span ~attrs:[ ("store", S.name) ] "engine.run" @@ fun () ->
  let wl = if S.supports_scan then cfg.workload else Workload.no_scan cfg.workload in
  let ops = Workload.generate wl in
  let rec_t0 = Unix.gettimeofday () in
  let recorded, t_record =
    timed (fun () -> Driver.record ~ckpt_stride:cfg.ckpt_stride (module S) ops)
  in
  Obs.Span.add ~name:"stage.record" ~ts:rec_t0 ~dur:t_record
    ~attrs:[ ("n_ops", string_of_int (Array.length recorded.ops)) ] ();
  let inf_t0 = Unix.gettimeofday () in
  let conds, t_infer = timed (fun () -> Infer.infer recorded.trace) in
  Obs.Span.add ~name:"stage.infer" ~ts:inf_t0 ~dur:t_infer ();
  let perf = Perf.detect recorded.trace in
  let checker =
    Equiv.create ~fuel:cfg.fuel ~lazy_oracle:cfg.lazy_oracle ~memo:cfg.memo
      ~checkpoints:recorded.checkpoints (module S : Store_intf.S)
      ~ops:recorded.ops ~committed:recorded.outputs
  in
  let clusters = Cluster.create ~store_name:S.name in
  let n_mismatch = ref 0 in
  let op_desc_of k =
    if k = 0 then "create" else Op.desc recorded.ops.(k - 1)
  in
  (* Interned operation type per op index: cluster keys and pruning
     signatures share it without touching strings per image. *)
  let op_kind_sids =
    Array.init
      (Array.length recorded.ops + 1)
      (fun k -> Nvm.Sid.intern (Cluster.op_kind_of_desc (op_desc_of k)))
  in
  let sig_of_cand (c : Crash_gen.cand) =
    let watch, req = Crash_gen.violation_sids c.cd_viol in
    Prune.Path_sig.make ~op_kind:op_kind_sids.(c.cd_crash_op)
      ~path:c.cd_path_hash ~watch ~req
  in
  (* Generation and checking are pipeline-fused (one image alive at a
     time), so the stage split is measured around each Equiv.check call:
     t_equiv is the replay/compare time, t_gen the rest of the walk. *)
  let t_equiv_acc = ref 0. in
  (* Check one image and feed the cluster table; [observe] additionally
     reports the verdict to the pruning registry (pass 1 only). *)
  let check_image ?observe (image : Crash_gen.image) =
    let t0 = Unix.gettimeofday () in
    let verdict =
      Equiv.check ~digest:image.digest checker ~img:image.img
        ~crash_op:image.crash_op
    in
    t_equiv_acc := !t_equiv_acc +. (Unix.gettimeofday () -. t0);
    (match observe with
     | None -> ()
     | Some f -> f image (verdict = Equiv.Consistent));
    (match verdict with
     | Equiv.Consistent -> ()
     | Equiv.Inconsistent _ ->
       incr n_mismatch;
       Cluster.add clusters ~image ~op_kind:op_kind_sids.(image.crash_op)
         ~verdict);
    `Continue
  in
  let reg = ref None in
  let expanded_tested = ref 0 in
  let check_t0 = Unix.gettimeofday () in
  let stats, t_check =
    timed (fun () ->
        match cfg.prune with
        | Prune.Policy.Exhaustive ->
          Crash_gen.generate ~cfg:cfg.crash ~trace:recorded.trace ~conds
            ~pool_size:recorded.pool_size ~on_image:check_image ()
        | Prune.Policy.Sample stride ->
          (* blind §7.5-style statistical fallback: every stride-th
             eligible image, no class tracking, no expansion *)
          let i = ref (-1) in
          let decide (_ : Crash_gen.cand) =
            incr i;
            if !i mod stride = 0 then `Test else `Defer
          in
          Crash_gen.generate ~cfg:cfg.crash ~decide ~trace:recorded.trace
            ~conds ~pool_size:recorded.pool_size ~on_image:check_image ()
        | Prune.Policy.Representative ->
          let r =
            Prune.Equiv_class.create
              ~expand:(Prune.Expand.create ~budget:cfg.expand_budget)
              ~memo:class_memo ()
          in
          reg := Some r;
          (* Pass 1: one representative (plus spot-checks) per class;
             deferred members are remembered by their stable
             (fence, persist-set) identity, not by image — a materialized
             image aliases the live simulator pool and dies at the next
             trace event. *)
          let decide (c : Crash_gen.cand) =
            Prune.Equiv_class.decide r ~sig_:(sig_of_cand c)
              ~member:(c.cd_fence_tid, c.cd_key)
          in
          let observe image consistent =
            Prune.Equiv_class.observe r
              ~sig_:(Cluster.signature
                       ~op_kind:op_kind_sids.(image.Crash_gen.crash_op) image)
              ~consistent
          in
          let stats =
            Crash_gen.generate ~cfg:cfg.crash ~decide ~trace:recorded.trace
              ~conds ~pool_size:recorded.pool_size
              ~on_image:(check_image ~observe) ()
          in
          (* Expansion waves. Generation is deterministic over the same
             trace and config, so re-running it with a decide hook that
             admits an explicit member set re-materializes precisely
             those images; the Equiv checker (and its digest memo)
             carries over. The first wave holds every promoted class's
             deferred members plus one tail spot-check per collapsed
             class — the latest deferred member, the highest-value extra
             check since divergence typically appears late as corruption
             accumulates. Verdicts observed during a wave can promote
             further classes, whose remaining members form the next
             wave; the loop reaches a fixpoint because each class
             expands at most once. *)
          let tested_extra = Hashtbl.create 256 in
          let expanded_sigs = Hashtbl.create 64 in
          let next_wave () =
            let want = Hashtbl.create 256 in
            List.iter
              (fun (sig_, members) ->
                 if not (Hashtbl.mem expanded_sigs sig_) then begin
                   Hashtbl.add expanded_sigs sig_ ();
                   List.iter
                     (fun m ->
                        if not (Hashtbl.mem tested_extra m) then
                          Hashtbl.replace want m ())
                     members
                 end)
              (Prune.Equiv_class.promoted_deferred r);
            want
          in
          let wave = ref (next_wave ()) in
          List.iter
            (fun (_sig, m) ->
               if not (Hashtbl.mem tested_extra m) then
                 Hashtbl.replace !wave m ())
            (Prune.Equiv_class.tail_spots r);
          while Hashtbl.length !wave > 0 do
            let want = !wave in
            let decide (c : Crash_gen.cand) =
              let m = (c.cd_fence_tid, c.cd_key) in
              if Hashtbl.mem want m then begin
                Hashtbl.replace tested_extra m ();
                `Test
              end
              else `Defer
            in
            (* each wanted member materializes exactly once; cut the
               re-walk short as soon as the last one has been checked *)
            let remaining = ref (Hashtbl.length want) in
            let on_image image =
              ignore (check_image ~observe image);
              decr remaining;
              if !remaining = 0 then `Stop else `Continue
            in
            let stats_w =
              Crash_gen.generate ~cfg:cfg.crash ~decide ~trace:recorded.trace
                ~conds ~pool_size:recorded.pool_size ~on_image ()
            in
            expanded_tested := !expanded_tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.tested <-
              stats.Crash_gen.tested + stats_w.Crash_gen.tested;
            stats.Crash_gen.bytes_materialized <-
              stats.Crash_gen.bytes_materialized
              + stats_w.Crash_gen.bytes_materialized;
            wave := next_wave ()
          done;
          stats)
  in
  let t_equiv = !t_equiv_acc in
  let t_gen = Float.max 0. (t_check -. t_equiv) in
  (* The two fused stages tile [check_t0, check_t0 + t_check): their span
     durations sum exactly to the loop's wall-clock, so stage spans and
     the journal's t_* fields agree (asserted by the obs-smoke alias). *)
  Obs.Span.add ~name:"stage.gen" ~ts:check_t0 ~dur:t_gen
    ~attrs:[ ("images_generated", string_of_int stats.generated);
             ("images_tested", string_of_int stats.tested) ] ();
  Obs.Span.add ~name:"stage.equiv" ~ts:(check_t0 +. t_gen)
    ~dur:(Float.max 0. (t_check -. t_gen)) ();
  let estats = Equiv.stats checker in
  let bug_reports = Cluster.root_causes clusters in
  let site_pairs = Cluster.site_pairs clusters in
  (* §4.5: an unpersisted store is only a *performance* bug if it passes
     output equivalence checking; sites implicated in a correctness bug
     are dropped from P-U. *)
  List.iter
    (fun (r : Cluster.report) ->
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.watch_sid);
       Hashtbl.remove perf.Perf.p_u.sites (Nvm.Sid.intern r.req_sid))
    site_pairs;
  let count kind =
    List.length (List.filter (fun (r : Cluster.report) -> r.kind = kind) bug_reports)
  in
  let prune_classes, prune_reps, prune_expansions, seed_memo_hits,
      class_outcomes =
    match !reg with
    | Some r ->
      ( Prune.Equiv_class.n_classes r, Prune.Equiv_class.n_reps r,
        Prune.Equiv_class.n_promoted r, Prune.Equiv_class.n_memo_hits r,
        Prune.Equiv_class.outcomes r )
    | None -> (0, 0, 0, 0, [])
  in
  let images_deferred = stats.deferred in
  let images_elided = stats.deferred - !expanded_tested in
  if cfg.prune <> Prune.Policy.Exhaustive then begin
    Obs.Metrics.incr ~n:prune_classes "prune.classes";
    Obs.Metrics.incr ~n:prune_reps "prune.reps";
    Obs.Metrics.incr ~n:images_elided "prune.images_elided";
    Obs.Metrics.incr ~n:prune_expansions "prune.expansions";
    Obs.Metrics.incr ~n:seed_memo_hits "prune.seed_memo_hits"
  end;
  let n_loads, n_stores, n_flushes, n_fences = Nvm.Trace.stats recorded.trace in
  { name = S.name;
    n_ops = List.length ops;
    trace_len = Nvm.Trace.length recorded.trace;
    n_loads; n_stores; n_flushes; n_fences;
    n_ord_conds = Infer.n_ordering conds;
    n_atom_conds = Infer.n_atomicity conds;
    n_guardians = Infer.n_guardians conds;
    images_generated = stats.generated;
    images_tested = stats.tested;
    n_mismatch = !n_mismatch;
    n_clusters = Cluster.n_clusters clusters;
    c_o = count Cluster.C_ordering;
    c_a = count Cluster.C_atomicity;
    perf;
    bug_reports;
    site_pairs;
    all_clusters = Cluster.reports clusters;
    per_op_images = stats.per_op_images;
    replay_ops = estats.Equiv.n_replay_ops;
    replay_early_stops = estats.Equiv.n_early_stops;
    bytes_materialized = stats.bytes_materialized;
    oracle_runs = estats.Equiv.n_oracle_runs;
    oracle_ops_saved = estats.Equiv.n_oracle_ops_saved;
    memo_hits = estats.Equiv.n_memo_hits;
    ckpt_bytes = List.length recorded.checkpoints * recorded.pool_size;
    prune_policy = cfg.prune;
    prune_classes; prune_reps; images_deferred; images_elided;
    prune_expansions; seed_memo_hits; class_outcomes;
    t_record; t_infer; t_gen; t_equiv }
