(* YCSB-style traffic generation for large-scale runs. [Workload] is the
   paper's coverage-biased test-case generator and stays the default for
   bug hunting at a few hundred ops; this module produces the *load* a
   deployed KV store sees — zipfian hot keys, a fixed get/put/delete/scan
   mix, optional bursts — at sizes where [Workload]'s O(n) key-list scans
   would be quadratic. Everything is O(1) per op after an O(key_space)
   zeta precomputation, so a million-op stream generates in milliseconds.

   The key space is bounded and preloaded: the first [preload] ops insert
   keys 1..preload, so the steady-state phase runs against a populated
   store and the live set never outgrows the fixed pool sizes the
   registry stores declare. Inserts recycle deleted keys before minting
   fresh ones for the same reason. Generation is fully determined by
   [seed]. *)

type cfg = {
  name : string;            (* preset label, for reports *)
  n_ops : int;              (* total ops, including the preload prefix *)
  key_space : int;          (* distinct keys, 1..key_space *)
  preload : int;            (* keys inserted up front *)
  value_len : int;
  seed : int;
  p_insert : float;
  p_update : float;
  p_delete : float;
  p_query : float;
  p_scan : float;
  zipf_theta : float;       (* 0. = uniform; YCSB default 0.99 *)
  scan_len : int;           (* max keys per scan *)
  burst_every : int;        (* ~1 burst per this many ops; 0 = no bursts *)
  burst_len : int;          (* ops pinned to one hot key per burst *)
}

let base =
  { name = "mixed"; n_ops = 1000; key_space = 512; preload = 256;
    value_len = 8; seed = 42; p_insert = 0.10; p_update = 0.30;
    p_delete = 0.10; p_query = 0.45; p_scan = 0.05; zipf_theta = 0.99;
    scan_len = 8; burst_every = 64; burst_len = 8 }

(* The standard YCSB core workloads (A..F), plus the [base] mixed blend
   that also exercises deletes. D's "latest" distribution and F's
   read-modify-write degenerate to zipfian reads + inserts / updates
   under a KV interface with atomic ops. *)
let presets =
  [ ("ycsb-a", { base with name = "ycsb-a"; p_insert = 0.; p_update = 0.5;
                 p_delete = 0.; p_query = 0.5; p_scan = 0. });
    ("ycsb-b", { base with name = "ycsb-b"; p_insert = 0.; p_update = 0.05;
                 p_delete = 0.; p_query = 0.95; p_scan = 0. });
    ("ycsb-c", { base with name = "ycsb-c"; p_insert = 0.; p_update = 0.;
                 p_delete = 0.; p_query = 1.0; p_scan = 0. });
    ("ycsb-d", { base with name = "ycsb-d"; p_insert = 0.05; p_update = 0.;
                 p_delete = 0.; p_query = 0.95; p_scan = 0. });
    ("ycsb-e", { base with name = "ycsb-e"; p_insert = 0.05; p_update = 0.;
                 p_delete = 0.; p_query = 0.; p_scan = 0.95 });
    ("ycsb-f", { base with name = "ycsb-f"; p_insert = 0.; p_update = 0.5;
                 p_delete = 0.; p_query = 0.5; p_scan = 0. });
    ("mixed", base) ]

let names = List.map fst presets

let of_name name = List.assoc_opt name presets

let no_scan cfg =
  { cfg with p_query = cfg.p_query +. cfg.p_scan; p_scan = 0. }

(* Trace-capacity hint: events per op vary by store (tens to a few
   hundred); 96 covers the registry's median stores so the SoA columns
   are sized once. Over-estimating only costs address space. *)
let events_hint cfg = 96 * (cfg.n_ops + 1)

(* Bounded zipfian sampler over [1, n] (Gray et al., the YCSB generator):
   O(n) zeta precomputation, O(1) per sample. Rank 1 is the hottest key.
   theta <= 0 degenerates to uniform. *)
type zipf = {
  z_n : int;
  z_theta : float;
  z_zetan : float;
  z_eta : float;
  z_alpha : float;
}

let zipf_create n theta =
  if theta <= 0. then
    { z_n = n; z_theta = 0.; z_zetan = 0.; z_eta = 0.; z_alpha = 0. }
  else begin
    let zeta m =
      let s = ref 0. in
      for i = 1 to m do
        s := !s +. (1. /. Float.pow (float_of_int i) theta)
      done;
      !s
    in
    let zetan = zeta n in
    let zeta2 = zeta 2 in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (zeta2 /. zetan))
    in
    { z_n = n; z_theta = theta; z_zetan = zetan; z_eta = eta; z_alpha = alpha }
  end

let zipf_sample z rng =
  if z.z_theta <= 0. then 1 + Random.State.int rng z.z_n
  else begin
    let u = Random.State.float rng 1.0 in
    let uz = u *. z.z_zetan in
    if uz < 1. then 1
    else if uz < 1. +. Float.pow 0.5 z.z_theta then 2
    else
      let k =
        1
        + int_of_float
            (float_of_int z.z_n
             *. Float.pow ((z.z_eta *. u) -. z.z_eta +. 1.) z.z_alpha)
      in
      if k < 1 then 1 else if k > z.z_n then z.z_n else k
  end

let value_of cfg rng k =
  let tag = Random.State.int rng 0x10000 in
  let s = Printf.sprintf "v%dk%x" k tag in
  if String.length s >= cfg.value_len then String.sub s 0 cfg.value_len
  else s ^ String.make (cfg.value_len - String.length s) '_'

let generate_array cfg =
  let rng = Random.State.make [| cfg.seed; 0x7af1c |] in
  let z = zipf_create cfg.key_space cfg.zipf_theta in
  let preload = min cfg.preload (min cfg.key_space cfg.n_ops) in
  (* key liveness + a recycle stack, both O(1) per op *)
  let live = Bytes.make (cfg.key_space + 1) '\000' in
  let freed = Array.make (cfg.key_space + 1) 0 in
  let n_freed = ref 0 in
  let next_fresh = ref (preload + 1) in
  let n_live = ref 0 in
  let mark_live k =
    if Bytes.get live k = '\000' then begin
      Bytes.set live k '\001';
      incr n_live
    end
  in
  let burst_key = ref 0 in
  let burst_left = ref 0 in
  (* Hot-key pick: zipfian rank doubles as the key id, so rank-1 keys are
     the preloaded (certainly live early on) ones. During a burst every
     pick returns the pinned key. *)
  let hot_key () =
    if !burst_left > 0 then begin
      decr burst_left;
      !burst_key
    end
    else begin
      let k = zipf_sample z rng in
      if cfg.burst_every > 0
      && cfg.burst_len > 1
      && Random.State.int rng cfg.burst_every = 0 then begin
        burst_key := k;
        burst_left := cfg.burst_len - 1
      end;
      k
    end
  in
  let insert_key () =
    if !n_freed > 0 then begin
      decr n_freed;
      Some freed.(!n_freed)
    end
    else if !next_fresh <= cfg.key_space then begin
      let k = !next_fresh in
      incr next_fresh;
      Some k
    end
    else None  (* key space saturated: degrade to an update *)
  in
  let pick () =
    let r = Random.State.float rng 1.0 in
    if r < cfg.p_insert then
      match insert_key () with
      | Some k ->
        mark_live k;
        Op.Insert (k, value_of cfg rng k)
      | None -> Op.Update (hot_key (), value_of cfg rng 0)
    else if r < cfg.p_insert +. cfg.p_update then
      Op.Update (hot_key (), value_of cfg rng 0)
    else if r < cfg.p_insert +. cfg.p_update +. cfg.p_delete then begin
      let k = hot_key () in
      if Bytes.get live k = '\001' && !n_live > 1 then begin
        Bytes.set live k '\000';
        decr n_live;
        freed.(!n_freed) <- k;
        incr n_freed;
        Op.Delete k
      end
      else Op.Query k  (* deleting a dead key teaches us nothing *)
    end
    else if r < cfg.p_insert +. cfg.p_update +. cfg.p_delete +. cfg.p_query
    then Op.Query (hot_key ())
    else Op.Scan (hot_key (), 1 + Random.State.int rng (max 1 cfg.scan_len))
  in
  Array.init cfg.n_ops (fun i ->
      if i < preload then begin
        let k = i + 1 in
        mark_live k;
        Op.Insert (k, value_of cfg rng k)
      end
      else pick ())

let generate cfg = Array.to_list (generate_array cfg)
