(* Output equivalence checking (§4.4). A crash NVM image is consistent iff
   the execution resumed from it produces, for every operation after the
   crashed one, the same outputs as one of the two oracles:

   - committed: the crashed operation fully executed — the outputs of the
     original no-crash run;
   - rolled back: the crashed operation never executed — the outputs of a
     fresh run with that operation removed.

   Divergence from both is a true crash-consistency bug (no false
   positives). Rolled-back oracles are memoized per crashed operation.

   The checker is incremental: the resumed execution streams each output
   through it (Driver.resume_stream) and it tracks which of the two
   oracles is still live. The moment both are ruled out the replay is
   aborted — an inconsistent image costs O(first divergence) instead of
   O(suffix), and since buggy images tend to diverge early this is the
   dominant saving of the zero-copy validation path. Consistent images
   still replay in full (one oracle stays live to the end), so the
   verdict is exactly the one the full-replay comparison would reach. *)

type verdict =
  | Consistent
  | Inconsistent of {
      first_diff : int;           (* trace op index of first diverging op *)
      got : Output.t;
      expect_committed : Output.t;
      expect_rolled_back : Output.t;
      crashed : bool;             (* divergence was a visible crash *)
    }

(* Replay-work accounting for the per-stage timing split: how many store
   operations the resumed executions actually ran, and how many replays
   the incremental checker cut short. *)
type stats = {
  mutable n_checks : int;
  mutable n_replay_ops : int;   (* ops executed across all resumes *)
  mutable n_early_stops : int;  (* replays aborted before the suffix end *)
}

type t = {
  store : Store_intf.instance;
  ops : Op.t array;
  committed : Output.t array;   (* outputs of ops.(i), trace index i+1 *)
  rolled_back : (int, Output.t array) Hashtbl.t;  (* crash op -> oracle *)
  fuel : int;
  stats : stats;
}

let create ?(fuel = 3_000_000) store ~ops ~committed =
  { store; ops; committed; rolled_back = Hashtbl.create 64; fuel;
    stats = { n_checks = 0; n_replay_ops = 0; n_early_stops = 0 } }

let stats t = t.stats

(* Oracle for a crash at trace op index k: outputs of ops after k when
   op k is rolled back. k = 0 (creation) rolls back to the committed
   behaviour (the pool is simply re-created). *)
let rolled_back_oracle t k =
  match Hashtbl.find_opt t.rolled_back k with
  | Some o -> o
  | None ->
    let n = Array.length t.ops in
    let oracle =
      if k = 0 then Array.sub t.committed 0 n
      else begin
        Obs.Metrics.incr "equiv.oracle_runs";
        let ops' =
          List.filteri (fun i _ -> i <> k - 1) (Array.to_list t.ops)
        in
        let outs = Driver.run_quiet t.store ops' in
        (* outputs for ops k+1..n are at positions k-1 .. n-2 *)
        Array.sub outs (k - 1) (n - k)
      end
    in
    Hashtbl.replace t.rolled_back k oracle;
    oracle

(* Reference verdict over fully-materialized output arrays; the streaming
   checker must agree with it. [committed] and [rolled_back] give oracle
   outputs by suffix position. The reported [first_diff] is the earliest
   index at which the resumed run diverges from *either* oracle: the two
   oracles may die at different indices, and the earliest divergence is
   where the inconsistency starts. *)
let verdict_of_outputs ~crash_op ~(got : Output.t array)
    ~(committed : int -> Output.t) ~(rolled_back : int -> Output.t) =
  let suffix_len = Array.length got in
  let matches oracle_at =
    let rec go i =
      i >= suffix_len || (Output.equal got.(i) (oracle_at i) && go (i + 1))
    in
    go 0
  in
  if suffix_len = 0 || matches committed || matches rolled_back then
    Consistent
  else begin
    let rec first i =
      if i >= suffix_len then suffix_len - 1 (* unreachable: both diverged *)
      else if not (Output.equal got.(i) (committed i))
           || not (Output.equal got.(i) (rolled_back i)) then i
      else first (i + 1)
    in
    let i = first 0 in
    let crashed =
      Array.exists (function Output.Crashed _ -> true | _ -> false) got
    in
    Inconsistent
      { first_diff = crash_op + i + 1;
        got = got.(i);
        expect_committed = committed i;
        expect_rolled_back = rolled_back i;
        crashed }
  end

let check t ~img ~crash_op =
  let n = Array.length t.ops in
  let k = crash_op in
  let suffix_len = n - k in
  t.stats.n_checks <- t.stats.n_checks + 1;
  if suffix_len <= 0 then Consistent  (* crash after the last op *)
  else begin
    let committed_suffix i = t.committed.(k + i) in
    let rb = rolled_back_oracle t k in
    let c_live = ref true and r_live = ref true in
    (* earliest index diverging from either oracle, and the output there *)
    let first_div = ref (-1) in
    let div_got = ref Output.Ok in
    let crashed = ref false in
    let stopped_at = ref (-1) in
    let on_output i out =
      (match out with Output.Crashed _ -> crashed := true | _ -> ());
      let c_ok = !c_live && Output.equal out (committed_suffix i) in
      let r_ok = !r_live && Output.equal out rb.(i) in
      if !first_div < 0
      && (not (Output.equal out (committed_suffix i))
          || not (Output.equal out rb.(i))) then begin
        first_div := i;
        div_got := out
      end;
      c_live := c_ok;
      r_live := r_ok;
      if not c_ok && not r_ok then begin
        stopped_at := i;
        `Stop
      end
      else `Continue
    in
    let executed =
      Driver.resume_stream t.store ~image:img ~ops:t.ops ~from_op:k
        ~fuel:t.fuel ~on_output
    in
    t.stats.n_replay_ops <- t.stats.n_replay_ops + executed;
    Obs.Metrics.incr "equiv.checks";
    Obs.Metrics.incr ~n:executed "equiv.replay_ops";
    Obs.Metrics.observe "equiv.replay_len" executed;
    if !c_live || !r_live then Consistent
    else begin
      if !stopped_at < suffix_len - 1 then begin
        t.stats.n_early_stops <- t.stats.n_early_stops + 1;
        Obs.Metrics.incr "equiv.early_stops";
        (* how deep into the suffix the replay got before both oracles
           died: the early-abort saving is suffix_len - depth per image *)
        Obs.Metrics.observe "equiv.early_stop_depth" !stopped_at
      end;
      let i = !first_div in
      Inconsistent
        { first_diff = k + i + 1;
          got = !div_got;
          expect_committed = committed_suffix i;
          expect_rolled_back = rb.(i);
          crashed = !crashed }
    end
  end
