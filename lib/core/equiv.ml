(* Output equivalence checking (§4.4). A crash NVM image is consistent iff
   the execution resumed from it produces, for every operation after the
   crashed one, the same outputs as one of the two oracles:

   - committed: the crashed operation fully executed — the outputs of the
     original no-crash run;
   - rolled back: the crashed operation never executed — the outputs of a
     fresh run with that operation removed.

   Divergence from both is a true crash-consistency bug (no false
   positives). Rolled-back oracles are memoized per crashed operation.

   The checker is incremental: the resumed execution streams each output
   through it (Driver.resume_stream) and it tracks which of the two
   oracles is still live. The moment both are ruled out the replay is
   aborted — an inconsistent image costs O(first divergence) instead of
   O(suffix), and since buggy images tend to diverge early this is the
   dominant saving of the zero-copy validation path. Consistent images
   still replay in full (one oracle stays live to the end), so the
   verdict is exactly the one the full-replay comparison would reach.

   Three further optimizations, each independently toggleable and each
   verdict-equivalent to the reference [verdict_of_outputs]:

   - lazy oracles: the rolled-back oracle is only built at the first
     committed-oracle divergence, so images that track the committed run
     to the end (the common case) never pay the O(n) oracle run;
   - checkpointed oracles: with record-time snapshots every K ops, a
     forced oracle resumes from the checkpoint preceding the crash op
     instead of re-running from scratch — O(n - k + K) per oracle;
   - digest memoization: images at the same crash op with equal content
     digests (stamped by Crash_gen) reuse the first image's verdict. *)

type verdict =
  | Consistent
  | Inconsistent of {
      first_diff : int;           (* trace op index of first diverging op *)
      got : Output.t;
      expect_committed : Output.t;
      expect_rolled_back : Output.t;
      crashed : bool;             (* divergence was a visible crash *)
    }

(* Replay-work accounting for the per-stage timing split: how many store
   operations the resumed executions actually ran, and how many replays
   the incremental checker cut short. *)
type stats = {
  mutable n_checks : int;
  mutable n_replay_ops : int;   (* ops executed across all resumes *)
  mutable n_early_stops : int;  (* replays aborted before the suffix end *)
  mutable n_oracle_runs : int;  (* rolled-back oracles actually built *)
  mutable n_oracle_ops_saved : int;  (* ops elided by laziness/checkpoints *)
  mutable n_memo_hits : int;    (* verdicts served from the digest memo *)
}

type t = {
  store : Store_intf.instance;
  ops : Op.t array;
  committed : Output.t array;   (* outputs of ops.(i), trace index i+1 *)
  rolled_back : (int, Output.t array) Hashtbl.t;  (* crash op -> oracle *)
  fuel : int;
  lazy_oracle : bool;           (* defer the oracle to first divergence *)
  memo_on : bool;               (* digest-keyed verdict memoization *)
  checkpoints : (int * Nvm.Pmem.t) array;  (* record snapshots, ascending *)
  memo : (int * int, verdict) Hashtbl.t;  (* (crash op, digest) -> verdict *)
  elided : (int, unit) Hashtbl.t;  (* crash ops checked oracle-free so far *)
  stats : stats;
}

let create ?(fuel = 3_000_000) ?(lazy_oracle = true) ?(memo = true)
    ?(checkpoints = []) store ~ops ~committed =
  let checkpoints =
    let a = Array.of_list checkpoints in
    Array.sort (fun (i, _) (j, _) -> compare i j) a;
    a
  in
  { store; ops; committed; rolled_back = Hashtbl.create 64; fuel;
    lazy_oracle; memo_on = memo; checkpoints;
    memo = Hashtbl.create 256; elided = Hashtbl.create 64;
    stats = { n_checks = 0; n_replay_ops = 0; n_early_stops = 0;
              n_oracle_runs = 0; n_oracle_ops_saved = 0; n_memo_hits = 0 } }

let stats t = t.stats

(* Reference oracle construction: a fresh run with op k removed. *)
let oracle_full_rerun t k =
  let n = Array.length t.ops in
  let ops' = List.filteri (fun i _ -> i <> k - 1) (Array.to_list t.ops) in
  let outs = Driver.run_quiet t.store ops' in
  (* outputs for ops k+1..n are at positions k-1 .. n-2 *)
  Array.sub outs (k - 1) (n - k)

(* Oracle for a crash at trace op index k: outputs of ops after k when
   op k is rolled back. k = 0 (creation) rolls back to the committed
   behaviour (the pool is simply re-created). With checkpoints, the
   oracle for k >= 1 resumes from the latest snapshot taken at or before
   op k - 1 and replays only the suffix — the per-oracle cost drops from
   O(n) to O(n - k + stride). Any checkpoint-resume failure falls back to
   the full re-run, so checkpointing can never change a verdict's
   availability, only its cost. *)
let rolled_back_oracle t k =
  match Hashtbl.find_opt t.rolled_back k with
  | Some o -> o
  | None ->
    let n = Array.length t.ops in
    let oracle =
      if k = 0 then Array.sub t.committed 0 n
      else begin
        t.stats.n_oracle_runs <- t.stats.n_oracle_runs + 1;
        Obs.Metrics.incr "equiv.oracle_runs";
        (* A lazily elided oracle being forced after all: give back the
           provisional saving before accounting the real cost. *)
        if Hashtbl.mem t.elided k then begin
          Hashtbl.remove t.elided k;
          t.stats.n_oracle_ops_saved <-
            t.stats.n_oracle_ops_saved - (n - 1);
          Obs.Metrics.incr ~n:(-(n - 1)) "equiv.oracle_ops_saved"
        end;
        let ckpt =
          Array.fold_left
            (fun acc (j, p) -> if j <= k - 1 then Some (j, p) else acc)
            None t.checkpoints
        in
        let ev_oracle via from_op =
          if Obs.Event.enabled () then
            ignore
              (Obs.Event.emit "oracle"
                 ~fields:
                   [ ("op", Obs.Jsonx.Int k); ("via", Obs.Jsonx.Str via);
                     ("from_op", Obs.Jsonx.Int from_op) ])
        in
        match ckpt with
        | Some (j, pool) ->
          (try
             let o =
               Driver.oracle_from_checkpoint t.store ~checkpoint:pool
                 ~ops:t.ops ~from_op:j ~skip:k
             in
             t.stats.n_oracle_ops_saved <- t.stats.n_oracle_ops_saved + j;
             Obs.Metrics.incr ~n:j "equiv.oracle_ops_saved";
             ev_oracle "ckpt" j;
             o
           with _ -> ev_oracle "full" 0; oracle_full_rerun t k)
        | None -> ev_oracle "full" 0; oracle_full_rerun t k
      end
    in
    Hashtbl.replace t.rolled_back k oracle;
    oracle

(* Reference verdict over fully-materialized output arrays; the streaming
   checker must agree with it. [committed] and [rolled_back] give oracle
   outputs by suffix position. The reported [first_diff] is the earliest
   index at which the resumed run diverges from *either* oracle: the two
   oracles may die at different indices, and the earliest divergence is
   where the inconsistency starts. *)
let verdict_of_outputs ~crash_op ~(got : Output.t array)
    ~(committed : int -> Output.t) ~(rolled_back : int -> Output.t) =
  let suffix_len = Array.length got in
  let matches oracle_at =
    let rec go i =
      i >= suffix_len || (Output.equal got.(i) (oracle_at i) && go (i + 1))
    in
    go 0
  in
  if suffix_len = 0 || matches committed || matches rolled_back then
    Consistent
  else begin
    let rec first i =
      if i >= suffix_len then suffix_len - 1 (* unreachable: both diverged *)
      else if not (Output.equal got.(i) (committed i))
           || not (Output.equal got.(i) (rolled_back i)) then i
      else first (i + 1)
    in
    let i = first 0 in
    let crashed =
      Array.exists (function Output.Crashed _ -> true | _ -> false) got
    in
    Inconsistent
      { first_diff = crash_op + i + 1;
        got = got.(i);
        expect_committed = committed i;
        expect_rolled_back = rolled_back i;
        crashed }
  end

let check_replay t ~img ~crash_op =
  let n = Array.length t.ops in
  let k = crash_op in
  let suffix_len = n - k in
  let committed_suffix i = t.committed.(k + i) in
  (* In lazy mode the rolled-back oracle stays unforced while the replay
     tracks the committed oracle; the common consistent image never pays
     the oracle run at all. *)
  let rb = ref (if t.lazy_oracle then None else Some (rolled_back_oracle t k)) in
  let got = Array.make suffix_len Output.Ok in  (* streamed prefix buffer *)
  let c_live = ref true and r_live = ref true in
  (* earliest index diverging from either oracle, and the output there *)
  let first_div = ref (-1) in
  let div_got = ref Output.Ok in
  let crashed = ref false in
  let stopped_at = ref (-1) in
  (* Force the oracle at the first committed divergence (index [upto] + 1)
     and rescan the buffered prefix against it, reconstructing exactly the
     r_live / first_div state the eager checker would hold here: while the
     oracle was deferred every output matched the committed oracle, so the
     prefix scan is the only comparison that was skipped. *)
  let force_rb upto =
    let o = rolled_back_oracle t k in
    rb := Some o;
    let i = ref 0 in
    while !r_live && !i <= upto do
      if not (Output.equal got.(!i) o.(!i)) then begin
        r_live := false;
        if !first_div < 0 then begin
          first_div := !i;
          div_got := got.(!i)
        end
      end;
      incr i
    done;
    o
  in
  let on_output i out =
    (match out with Output.Crashed _ -> crashed := true | _ -> ());
    got.(i) <- out;
    let c_eq = Output.equal out (committed_suffix i) in
    match !rb with
    | None when c_eq -> `Continue  (* tracking committed, oracle deferred *)
    | (None | Some _) as cur ->
      let o = match cur with Some o -> o | None -> force_rb (i - 1) in
      let r_eq = Output.equal out o.(i) in
      let c_ok = !c_live && c_eq in
      let r_ok = !r_live && r_eq in
      if !first_div < 0 && (not c_eq || not r_eq) then begin
        first_div := i;
        div_got := out
      end;
      c_live := c_ok;
      r_live := r_ok;
      if not c_ok && not r_ok then begin
        stopped_at := i;
        `Stop
      end
      else `Continue
  in
  let executed =
    Driver.resume_stream t.store ~image:img ~ops:t.ops ~from_op:k
      ~fuel:t.fuel ~on_output
  in
  t.stats.n_replay_ops <- t.stats.n_replay_ops + executed;
  Obs.Metrics.incr "equiv.checks";
  Obs.Metrics.incr ~n:executed "equiv.replay_ops";
  (* exemplar: links the histogram's max replay back to the image event
     whose check drove it (the fused pipeline makes the attribution
     exact); -1 outside an event-logged run *)
  Obs.Metrics.observe ~ev:!Obs.Event.last_image_id "equiv.replay_len" executed;
  if !c_live || !r_live then begin
    (* Consistent with the oracle never forced: one full oracle run (the
       eager checker's run_quiet for this crash op) was elided. Counted
       once per crash op and repaid in [rolled_back_oracle] if a later
       image at the same op forces it. *)
    (match !rb with
     | None
       when k > 0
         && not (Hashtbl.mem t.rolled_back k)
         && not (Hashtbl.mem t.elided k) ->
       Hashtbl.add t.elided k ();
       t.stats.n_oracle_ops_saved <- t.stats.n_oracle_ops_saved + (n - 1);
       Obs.Metrics.incr ~n:(n - 1) "equiv.oracle_ops_saved"
     | _ -> ());
    Consistent
  end
  else begin
    if !stopped_at < suffix_len - 1 then begin
      t.stats.n_early_stops <- t.stats.n_early_stops + 1;
      Obs.Metrics.incr "equiv.early_stops";
      (* how deep into the suffix the replay got before both oracles
         died: the early-abort saving is suffix_len - depth per image *)
      Obs.Metrics.observe "equiv.early_stop_depth" !stopped_at
    end;
    let i = !first_div in
    let o = match !rb with Some o -> o | None -> assert false in
    Inconsistent
      { first_diff = k + i + 1;
        got = !div_got;
        expect_committed = committed_suffix i;
        expect_rolled_back = o.(i);
        crashed = !crashed }
  end

(* [digest], when provided (Crash_gen stamps one on every image), keys the
   verdict memo: two images at the same crash op with equal digests hold
   byte-identical guaranteed content, so the replay verdict of the first
   is returned for the second without resuming anything. *)
let check ?digest t ~img ~crash_op =
  let n = Array.length t.ops in
  let suffix_len = n - crash_op in
  t.stats.n_checks <- t.stats.n_checks + 1;
  if suffix_len <= 0 then Consistent  (* crash after the last op *)
  else begin
    let memo_key =
      match digest with
      | Some d when t.memo_on -> Some (crash_op, d)
      | _ -> None
    in
    match Option.bind memo_key (Hashtbl.find_opt t.memo) with
    | Some v ->
      t.stats.n_memo_hits <- t.stats.n_memo_hits + 1;
      Obs.Metrics.incr "equiv.memo_hits";
      v
    | None ->
      let v = check_replay t ~img ~crash_op in
      (match memo_key with
       | Some key -> Hashtbl.replace t.memo key v
       | None -> ());
      v
  end
