(* Output equivalence checking (§4.4). A crash NVM image is consistent iff
   the execution resumed from it produces, for every operation after the
   crashed one, the same outputs as one of the two oracles:

   - committed: the crashed operation fully executed — the outputs of the
     original no-crash run;
   - rolled back: the crashed operation never executed — the outputs of a
     fresh run with that operation removed.

   Divergence from both is a true crash-consistency bug (no false
   positives). Rolled-back oracles are memoized per crashed operation.

   The checker is incremental: the resumed execution streams each output
   through it (Driver.resume_stream) and it tracks which of the two
   oracles is still live. The moment both are ruled out the replay is
   aborted — an inconsistent image costs O(first divergence) instead of
   O(suffix), and since buggy images tend to diverge early this is the
   dominant saving of the zero-copy validation path. Consistent images
   still replay in full (one oracle stays live to the end), so the
   verdict is exactly the one the full-replay comparison would reach.

   Three further optimizations, each independently toggleable and each
   verdict-equivalent to the reference [verdict_of_outputs]:

   - lazy oracles: the rolled-back oracle is only built at the first
     committed-oracle divergence, so images that track the committed run
     to the end (the common case) never pay the O(n) oracle run;
   - checkpointed oracles: with record-time snapshots every K ops, a
     forced oracle resumes from the checkpoint preceding the crash op
     instead of re-running from scratch — O(n - k + K) per oracle;
   - digest memoization: images at the same crash op with equal content
     digests (stamped by Crash_gen) reuse the first image's verdict.

   A fourth, [enable_batch], groups the images of one fence: they share
   the persisted base pool and differ only on the words written by the
   stores in the symmetric difference of their extras sets. Each replayed
   image records the word-granular read set of its resumed execution
   (Nvm.Wset via Driver.resume_stream ~read_track); a later image of the
   same fence whose delta words miss that read set would replay
   bit-identically, so its verdict is inherited without resuming
   anything. Replays are deterministic given the bytes they read, which
   makes inheritance verdict-exact, not approximate. Oracle runs are
   never read-tracked: they execute against fresh or checkpointed pools
   that do not vary across the fence group. *)

type verdict =
  | Consistent
  | Inconsistent of {
      first_diff : int;           (* trace op index of first diverging op *)
      got : Output.t;
      expect_committed : Output.t;
      expect_rolled_back : Output.t;
      crashed : bool;             (* divergence was a visible crash *)
    }

(* Replay-work accounting for the per-stage timing split: how many store
   operations the resumed executions actually ran, and how many replays
   the incremental checker cut short. *)
type stats = {
  mutable n_checks : int;
  mutable n_replay_ops : int;   (* ops executed across all resumes *)
  mutable n_early_stops : int;  (* replays aborted before the suffix end *)
  mutable n_oracle_runs : int;  (* rolled-back oracles actually built *)
  mutable n_oracle_ops_saved : int;  (* ops elided by laziness/checkpoints *)
  mutable n_memo_hits : int;    (* verdicts served from the digest memo *)
  mutable n_batch_fences : int; (* fence groups opened by the batched path *)
  mutable n_batch_images : int; (* images that went through a fence group *)
  mutable n_inherit_hits : int; (* verdicts inherited from a group sibling *)
  mutable n_inherit_ops_saved : int;  (* replay ops those replays would cost *)
}

(* One checked image of the current fence group: its extras set, the word
   read set of its replay, its verdict, and the replay length (the saving
   a later inheritor is credited with). *)
type batch_entry = {
  e_extras : int array;
  e_rset : Nvm.Wset.t;
  e_verdict : verdict;
  e_replay : int;
}

type batch_state = {
  mutable bs_fence : int;            (* fence tid of the open group, -1 none *)
  mutable bs_entries : batch_entry list;  (* newest first *)
  mutable bs_count : int;            (* images seen in the open group *)
  mutable bs_free : Nvm.Wset.t list; (* recycled read sets *)
  bs_addr_len : int -> int * int;    (* store tid -> written byte range *)
}

type t = {
  store : Store_intf.instance;
  ops : Op.t array;
  committed : Output.t array;   (* outputs of ops.(i), trace index i+1 *)
  rolled_back : (int, Output.t array) Hashtbl.t;  (* crash op -> oracle *)
  fuel : int;
  lazy_oracle : bool;           (* defer the oracle to first divergence *)
  memo_on : bool;               (* digest-keyed verdict memoization *)
  mutable checkpoints : (int * Nvm.Pmem.t) array;  (* record snapshots, ascending *)
  memo : (int * int, verdict) Hashtbl.t;  (* (crash op, digest) -> verdict *)
  elided : (int, unit) Hashtbl.t;  (* crash ops checked oracle-free so far *)
  mutable batch : batch_state option;  (* fence batching, off by default *)
  stats : stats;
}

let create ?(fuel = 3_000_000) ?(lazy_oracle = true) ?(memo = true)
    ?(checkpoints = []) store ~ops ~committed =
  let checkpoints =
    let a = Array.of_list checkpoints in
    Array.sort (fun (i, _) (j, _) -> compare i j) a;
    a
  in
  { store; ops; committed; rolled_back = Hashtbl.create 64; fuel;
    lazy_oracle; memo_on = memo; checkpoints;
    memo = Hashtbl.create 256; elided = Hashtbl.create 64; batch = None;
    stats = { n_checks = 0; n_replay_ops = 0; n_early_stops = 0;
              n_oracle_runs = 0; n_oracle_ops_saved = 0; n_memo_hits = 0;
              n_batch_fences = 0; n_batch_images = 0; n_inherit_hits = 0;
              n_inherit_ops_saved = 0 } }

let stats t = t.stats

(* Replace the checkpoint set. The streaming engine maintains a bounded
   ring of snapshots and re-points the checker as it rotates; checkpoints
   only change which snapshot an oracle resumes from (cost), never the
   oracle's outputs, so swapping them mid-run is verdict-neutral. *)
let set_checkpoints t checkpoints =
  let a = Array.of_list checkpoints in
  Array.sort (fun (i, _) (j, _) -> compare i j) a;
  t.checkpoints <- a

let drop_matching_keys tbl pred =
  let dead = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) tbl [] in
  List.iter (Hashtbl.remove tbl) dead

(* Drop per-crash-op caches below [floor]. As the streaming window slides,
   no future image can crash below the floor, so memoized verdicts,
   rolled-back oracles and lazy-elision marks for those ops can never be
   consulted again — holding them is what would make the checker's heap
   grow with the whole run. *)
let forget_before t ~floor =
  drop_matching_keys t.rolled_back (fun op -> op < floor);
  drop_matching_keys t.elided (fun op -> op < floor);
  drop_matching_keys t.memo (fun (op, _) -> op < floor)

(* Fence batching. [addr_len tid] must give the byte range written by the
   store with that trace id (the caller has the trace; this module does
   not). The fence key passed to [check ~fence] is the fence's trace id,
   unique per fence event, so consecutive checks of one fence's images
   land in one group. *)
let enable_batch t ~addr_len =
  t.batch <-
    Some { bs_fence = -1; bs_entries = []; bs_count = 0; bs_free = [];
           bs_addr_len = addr_len }

let close_group bs =
  if bs.bs_count > 0 then
    Obs.Metrics.observe "equiv.batch_group_images" bs.bs_count;
  List.iter (fun e -> bs.bs_free <- e.e_rset :: bs.bs_free) bs.bs_entries;
  bs.bs_entries <- [];
  bs.bs_count <- 0;
  bs.bs_fence <- -1

(* Close the open fence group (records the final images-per-batch
   histogram sample); call once after the last image of a run. *)
let flush_batch t = match t.batch with Some bs -> close_group bs | None -> ()

let acquire_wset bs =
  match bs.bs_free with
  | w :: rest -> bs.bs_free <- rest; Nvm.Wset.clear w; w
  | [] -> Nvm.Wset.create ()

(* Would [extras] replay exactly like entry [e]? The two images differ
   only on the words written by stores in the symmetric difference of
   the extras sets (shared extras write identical payloads onto the
   shared persisted base). If none of those words were read by [e]'s
   replay, the replay from the new image reads the same bytes, executes
   the same path, and reaches the same verdict. *)
let entry_inherits bs e (extras : int array) =
  let delta_clean tid =
    let addr, len = bs.bs_addr_len tid in
    not (Nvm.Wset.mem_range e.e_rset addr len)
  in
  let a = e.e_extras and b = extras in
  let la = Array.length a and lb = Array.length b in
  let rec walk i j =
    if i < la && j < lb then begin
      let x = Array.unsafe_get a i and y = Array.unsafe_get b j in
      if x = y then walk (i + 1) (j + 1)
      else if x < y then delta_clean x && walk (i + 1) j
      else delta_clean y && walk i (j + 1)
    end
    else if i < la then delta_clean a.(i) && walk (i + 1) j
    else if j < lb then delta_clean b.(j) && walk i (j + 1)
    else true
  in
  walk 0 0

(* Reference oracle construction: a fresh run with op k removed. *)
let oracle_full_rerun t k =
  let n = Array.length t.ops in
  let ops' = List.filteri (fun i _ -> i <> k - 1) (Array.to_list t.ops) in
  let outs = Driver.run_quiet t.store ops' in
  (* outputs for ops k+1..n are at positions k-1 .. n-2 *)
  Array.sub outs (k - 1) (n - k)

(* Oracle for a crash at trace op index k: outputs of ops after k when
   op k is rolled back. k = 0 (creation) rolls back to the committed
   behaviour (the pool is simply re-created). With checkpoints, the
   oracle for k >= 1 resumes from the latest snapshot taken at or before
   op k - 1 and replays only the suffix — the per-oracle cost drops from
   O(n) to O(n - k + stride). Any checkpoint-resume failure falls back to
   the full re-run, so checkpointing can never change a verdict's
   availability, only its cost. *)
let rolled_back_oracle t k =
  match Hashtbl.find_opt t.rolled_back k with
  | Some o -> o
  | None ->
    let n = Array.length t.ops in
    let oracle =
      if k = 0 then Array.sub t.committed 0 n
      else begin
        t.stats.n_oracle_runs <- t.stats.n_oracle_runs + 1;
        Obs.Metrics.incr "equiv.oracle_runs";
        (* A lazily elided oracle being forced after all: give back the
           provisional saving before accounting the real cost. *)
        if Hashtbl.mem t.elided k then begin
          Hashtbl.remove t.elided k;
          t.stats.n_oracle_ops_saved <-
            t.stats.n_oracle_ops_saved - (n - 1);
          Obs.Metrics.incr ~n:(-(n - 1)) "equiv.oracle_ops_saved"
        end;
        let ckpt =
          Array.fold_left
            (fun acc (j, p) -> if j <= k - 1 then Some (j, p) else acc)
            None t.checkpoints
        in
        let ev_oracle via from_op =
          if Obs.Event.enabled () then
            ignore
              (Obs.Event.emit "oracle"
                 ~fields:
                   [ ("op", Obs.Jsonx.Int k); ("via", Obs.Jsonx.Str via);
                     ("from_op", Obs.Jsonx.Int from_op) ])
        in
        match ckpt with
        | Some (j, pool) ->
          (try
             let o =
               Driver.oracle_from_checkpoint t.store ~checkpoint:pool
                 ~ops:t.ops ~from_op:j ~skip:k
             in
             t.stats.n_oracle_ops_saved <- t.stats.n_oracle_ops_saved + j;
             Obs.Metrics.incr ~n:j "equiv.oracle_ops_saved";
             ev_oracle "ckpt" j;
             o
           with _ -> ev_oracle "full" 0; oracle_full_rerun t k)
        | None -> ev_oracle "full" 0; oracle_full_rerun t k
      end
    in
    Hashtbl.replace t.rolled_back k oracle;
    oracle

(* Reference verdict over fully-materialized output arrays; the streaming
   checker must agree with it. [committed] and [rolled_back] give oracle
   outputs by suffix position. The reported [first_diff] is the earliest
   index at which the resumed run diverges from *either* oracle: the two
   oracles may die at different indices, and the earliest divergence is
   where the inconsistency starts. *)
let verdict_of_outputs ~crash_op ~(got : Output.t array)
    ~(committed : int -> Output.t) ~(rolled_back : int -> Output.t) =
  let suffix_len = Array.length got in
  let matches oracle_at =
    let rec go i =
      i >= suffix_len || (Output.equal got.(i) (oracle_at i) && go (i + 1))
    in
    go 0
  in
  if suffix_len = 0 || matches committed || matches rolled_back then
    Consistent
  else begin
    let rec first i =
      if i >= suffix_len then suffix_len - 1 (* unreachable: both diverged *)
      else if not (Output.equal got.(i) (committed i))
           || not (Output.equal got.(i) (rolled_back i)) then i
      else first (i + 1)
    in
    let i = first 0 in
    let crashed =
      Array.exists (function Output.Crashed _ -> true | _ -> false) got
    in
    Inconsistent
      { first_diff = crash_op + i + 1;
        got = got.(i);
        expect_committed = committed i;
        expect_rolled_back = rolled_back i;
        crashed }
  end

let check_replay ?read_track t ~img ~crash_op =
  let n = Array.length t.ops in
  let k = crash_op in
  let suffix_len = n - k in
  let committed_suffix i = t.committed.(k + i) in
  (* In lazy mode the rolled-back oracle stays unforced while the replay
     tracks the committed oracle; the common consistent image never pays
     the oracle run at all. *)
  let rb = ref (if t.lazy_oracle then None else Some (rolled_back_oracle t k)) in
  let got = Array.make suffix_len Output.Ok in  (* streamed prefix buffer *)
  let c_live = ref true and r_live = ref true in
  (* earliest index diverging from either oracle, and the output there *)
  let first_div = ref (-1) in
  let div_got = ref Output.Ok in
  let crashed = ref false in
  let stopped_at = ref (-1) in
  (* Force the oracle at the first committed divergence (index [upto] + 1)
     and rescan the buffered prefix against it, reconstructing exactly the
     r_live / first_div state the eager checker would hold here: while the
     oracle was deferred every output matched the committed oracle, so the
     prefix scan is the only comparison that was skipped. *)
  let force_rb upto =
    let o = rolled_back_oracle t k in
    rb := Some o;
    let i = ref 0 in
    while !r_live && !i <= upto do
      if not (Output.equal got.(!i) o.(!i)) then begin
        r_live := false;
        if !first_div < 0 then begin
          first_div := !i;
          div_got := got.(!i)
        end
      end;
      incr i
    done;
    o
  in
  let on_output i out =
    (match out with Output.Crashed _ -> crashed := true | _ -> ());
    got.(i) <- out;
    let c_eq = Output.equal out (committed_suffix i) in
    match !rb with
    | None when c_eq -> `Continue  (* tracking committed, oracle deferred *)
    | (None | Some _) as cur ->
      let o = match cur with Some o -> o | None -> force_rb (i - 1) in
      let r_eq = Output.equal out o.(i) in
      let c_ok = !c_live && c_eq in
      let r_ok = !r_live && r_eq in
      if !first_div < 0 && (not c_eq || not r_eq) then begin
        first_div := i;
        div_got := out
      end;
      c_live := c_ok;
      r_live := r_ok;
      if not c_ok && not r_ok then begin
        stopped_at := i;
        `Stop
      end
      else `Continue
  in
  let executed =
    Driver.resume_stream ?read_track t.store ~image:img ~ops:t.ops ~from_op:k
      ~fuel:t.fuel ~on_output
  in
  t.stats.n_replay_ops <- t.stats.n_replay_ops + executed;
  Obs.Metrics.incr "equiv.checks";
  Obs.Metrics.incr ~n:executed "equiv.replay_ops";
  (* exemplar: links the histogram's max replay back to the image event
     whose check drove it (the fused pipeline makes the attribution
     exact); -1 outside an event-logged run *)
  Obs.Metrics.observe ~ev:!Obs.Event.last_image_id "equiv.replay_len" executed;
  if !c_live || !r_live then begin
    (* Consistent with the oracle never forced: one full oracle run (the
       eager checker's run_quiet for this crash op) was elided. Counted
       once per crash op and repaid in [rolled_back_oracle] if a later
       image at the same op forces it. *)
    (match !rb with
     | None
       when k > 0
         && not (Hashtbl.mem t.rolled_back k)
         && not (Hashtbl.mem t.elided k) ->
       Hashtbl.add t.elided k ();
       t.stats.n_oracle_ops_saved <- t.stats.n_oracle_ops_saved + (n - 1);
       Obs.Metrics.incr ~n:(n - 1) "equiv.oracle_ops_saved"
     | _ -> ());
    Consistent
  end
  else begin
    if !stopped_at < suffix_len - 1 then begin
      t.stats.n_early_stops <- t.stats.n_early_stops + 1;
      Obs.Metrics.incr "equiv.early_stops";
      (* how deep into the suffix the replay got before both oracles
         died: the early-abort saving is suffix_len - depth per image *)
      Obs.Metrics.observe "equiv.early_stop_depth" !stopped_at
    end;
    let i = !first_div in
    let o = match !rb with Some o -> o | None -> assert false in
    Inconsistent
      { first_diff = k + i + 1;
        got = !div_got;
        expect_committed = committed_suffix i;
        expect_rolled_back = o.(i);
        crashed = !crashed }
  end

(* Batched check of one image within its fence group: try to inherit a
   sibling's verdict, else replay with read tracking and record an entry
   for later siblings. Inherited images are not recorded — their read
   sets equal the donor's, so recording them adds scan cost without new
   inheritance power. *)
let max_group_entries = 64

let check_grouped t bs ~img ~crash_op ~fence ~extras =
  if fence <> bs.bs_fence then begin
    close_group bs;
    bs.bs_fence <- fence;
    t.stats.n_batch_fences <- t.stats.n_batch_fences + 1;
    Obs.Metrics.incr "equiv.batch_fences"
  end;
  bs.bs_count <- bs.bs_count + 1;
  t.stats.n_batch_images <- t.stats.n_batch_images + 1;
  match List.find_opt (fun e -> entry_inherits bs e extras) bs.bs_entries with
  | Some e ->
    t.stats.n_inherit_hits <- t.stats.n_inherit_hits + 1;
    t.stats.n_inherit_ops_saved <- t.stats.n_inherit_ops_saved + e.e_replay;
    Obs.Metrics.incr "equiv.inherit_hits";
    Obs.Metrics.incr ~n:e.e_replay "equiv.inherit_ops_saved";
    e.e_verdict
  | None ->
    let rset = acquire_wset bs in
    let replay_before = t.stats.n_replay_ops in
    let v = check_replay ~read_track:rset t ~img ~crash_op in
    if List.length bs.bs_entries < max_group_entries then
      bs.bs_entries <-
        { e_extras = extras; e_rset = rset; e_verdict = v;
          e_replay = t.stats.n_replay_ops - replay_before }
        :: bs.bs_entries
    else bs.bs_free <- rset :: bs.bs_free;
    v

(* [digest], when provided (Crash_gen stamps one on every image), keys the
   verdict memo: two images at the same crash op with equal digests hold
   byte-identical guaranteed content, so the replay verdict of the first
   is returned for the second without resuming anything.

   [fence]/[extras] (Crash_gen stamps both) route the check through the
   fence group when batching is enabled. The memo is consulted first — a
   memo hit drops the image from the batch before any replay — and an
   inherited verdict is memoized like a replayed one. *)
let check ?digest ?fence ?extras t ~img ~crash_op =
  let n = Array.length t.ops in
  let suffix_len = n - crash_op in
  t.stats.n_checks <- t.stats.n_checks + 1;
  if suffix_len <= 0 then Consistent  (* crash after the last op *)
  else begin
    let memo_key =
      match digest with
      | Some d when t.memo_on -> Some (crash_op, d)
      | _ -> None
    in
    match Option.bind memo_key (Hashtbl.find_opt t.memo) with
    | Some v ->
      t.stats.n_memo_hits <- t.stats.n_memo_hits + 1;
      Obs.Metrics.incr "equiv.memo_hits";
      v
    | None ->
      let v =
        match t.batch, fence, extras with
        | Some bs, Some fence, Some extras ->
          check_grouped t bs ~img ~crash_op ~fence ~extras
        | _ -> check_replay t ~img ~crash_op
      in
      (match memo_key with
       | Some key -> Hashtbl.replace t.memo key v
       | None -> ());
      v
  end
