(* Crash NVM image generation (§4.3). A second walk over the trace drives
   the cache/NVM simulator; before executing each fence — the only points
   where the guaranteed-persistent state changes — every likely-correctness
   condition that a store of the ending epoch could violate is checked for
   feasibility:

   - ordering P(X) -hb-> W(Y): a store S_Y to the watched cell happened
     this epoch; the latest store S_X to the required cell is not yet
     guaranteed; persisting closure(S_Y) without S_X is feasible under
     per-line prefix order. The image persists Y but not X.
   - atomicity AP(X, Y): two stores to distinct guardian cells are both
     unguaranteed before the fence; two images persist exactly one of
     them.

   Each feasible violation is materialized into a concrete pool image and
   handed to [on_image] immediately (pipeline-fused with output
   equivalence checking, so only one image is alive at a time).

   Images are deduplicated by (crash point, extra persist-set) and capped
   per static site pair, since thousands of dynamic violations share a
   root cause (§4.4); generated-vs-tested counts are both reported.

   The walk is index-based (kind tags + int fields, no event
   reconstruction), the per-word latest-store map is a flat array indexed
   by 8-byte word (pool sizes are a few MB), and sids are interned ints
   throughout — [violation] carries [Sid.t]; report layers convert back
   to strings. *)

open Nvm

type violation =
  | Ordering of {
      rule : Infer.rule;
      watch_sid : Sid.t;    (* the store that persisted too early *)
      req_sid : Sid.t;      (* the store left unpersisted *)
      watch_tid : int;
      req_tid : int;
    }
  | Atomicity of {
      persisted_sid : Sid.t;
      lost_sid : Sid.t;
      persisted_tid : int;
      lost_tid : int;
    }
  | Unpersisted_epoch of {
      (* nothing of the current epoch was evicted: every dirty store is
         lost at once — the state that exposes missing-persist and
         premature-side-effect (e.g. free-before-unlink) bugs *)
      fence_sid : Sid.t;
      first_lost_sid : Sid.t;
    }

let violation_sids = function
  | Ordering o -> (o.watch_sid, o.req_sid)
  | Atomicity a -> (a.persisted_sid, a.lost_sid)
  | Unpersisted_epoch u -> (u.fence_sid, u.first_lost_sid)

type image = {
  img : Pmem.t;
  crash_tid : int;   (* tid of the fence we crash before *)
  crash_op : int;    (* trace op index containing the crash *)
  viol : violation;
  path_hash : int;   (* execution path of the crashed op up to the crash *)
  path_sig : int;    (* path digest truncated to the last [sig_depth] sites;
                        equals [path_hash] at the default depth 0 *)
  extras : int array;  (* sorted store tids persisted beyond the guaranteed
                          base; drives fence-batched verdict inheritance *)
  digest : int;      (* 64-bit content digest; keys the verdict memo *)
}

type stats = {
  mutable candidates : int;      (* feasible violations found *)
  mutable generated : int;       (* distinct images *)
  mutable eligible : int;        (* within the image budget and site caps *)
  mutable deferred : int;        (* eligible but elided by the decide hook *)
  mutable tested : int;          (* images passed to on_image (post-cap) *)
  mutable bytes_materialized : int;  (* bytes copied to build the images *)
  per_op_images : (int, int) Hashtbl.t;  (* op index -> images generated *)
}

(* A candidate eligible image, described before materialization: what the
   pruning layer's decide hook sees. [(cd_fence_tid, cd_key)] identifies
   the image — it is exactly the dedup key — and is stable across
   generation passes over the same trace, which is what lets Engine re-run
   [generate] to materialize the deferred members of a promoted class. *)
type cand = {
  cd_fence_tid : int;   (* tid of the fence we crash before *)
  cd_crash_op : int;    (* trace op index containing the crash *)
  cd_key : int;         (* hash of the extra persist-set; 0 = baseline *)
  cd_viol : violation;
  cd_path_hash : int;
  cd_path_sig : int;    (* truncated path digest, see [image.path_sig] *)
}

type cfg = {
  max_images : int;        (* global budget of tested images *)
  per_site_cap : int;      (* tested images per (sid, sid, kind) site *)
  max_pa_pairs_per_fence : int;
}

let default_cfg = { max_images = 4000; per_site_cap = 6; max_pa_pairs_per_fence = 16 }

type epoch_cand =
  | C_po of Infer.po * int            (* condition, sy tid *)
  | C_guardian of Infer.cell * int    (* guardian cell, store tid *)

(* The execution-path fold is shared with lib/prune so cluster keys and
   pruning classes digest identically (and stably across processes). *)
let path_hash_step = Prune.Path_sig.step

(* Incremental generator handle: [stream_feed] consumes one trace index,
   [stream_finish] settles the stats. Built so the batch [generate] below
   is exactly "feed every index in order" — the streaming engine gets the
   same candidate/image stream by construction. *)
type gen = {
  g_feed : int -> unit;
  g_stopped : unit -> bool;
  g_finish : unit -> stats;
  g_sim : Crash_sim.t;
}

(* [sig_depth] > 0 truncates the per-image path digest to the op's last
   [sig_depth] load/store sites: long-path ops (rehashes, splits) whose
   tails agree then share a pruning class even when their prefixes differ.
   Only the pruning signature coarsens — [path_hash], and so cluster keys,
   always digest the full path. Depth 0 (default) keeps both identical. *)
let stream_create ?(cfg = default_cfg) ?(decide = fun (_ : cand) -> `Test)
    ?(pass = 0) ?(sig_depth = 0) ~trace ~(conds : Infer.t) ~pool_size
    ~on_image () =
  let sim = Crash_sim.create ~trace ~pool_size in
  let stats =
    { candidates = 0; generated = 0; eligible = 0; deferred = 0; tested = 0;
      bytes_materialized = 0; per_op_images = Hashtbl.create 64 }
  in
  (* 8-byte word -> tid/addr/len/sid of the latest store touching it,
     tid -1 = none. Grown on demand: pools are up to 16MB but stores touch
     a small dense prefix, and eagerly clearing pool-sized arrays would
     dominate small runs. The addr/len/sid columns shadow the store's
     trace fields so [latest_store_to] never reads the trace — over a
     windowed ring the latest store to a word may be long retired (and by
     the retirement invariant, guaranteed), and these probes must not
     fault on it. *)
  let last_store_word = ref (Array.make 4096 (-1)) in
  let last_store_addr = ref (Array.make 4096 0) in
  let last_store_len = ref (Array.make 4096 0) in
  let last_store_sid = ref (Array.make 4096 0) in
  let last_store_cap = (pool_size + 7) lsr 3 in
  let ensure_word w =
    if w >= Array.length !last_store_word then begin
      let cap = Array.length !last_store_word in
      let n = min last_store_cap (max (2 * cap) (w + 1)) in
      let grow r fill =
        let b = Array.make n fill in
        Array.blit !r 0 b 0 cap;
        r := b
      in
      grow last_store_word (-1);
      grow last_store_addr 0;
      grow last_store_len 0;
      grow last_store_sid 0
    end
  in
  let epoch : epoch_cand list ref = ref [] in
  (* Keyed on the condition itself (structural equality), so two distinct
     conditions can never alias an entry the way the old
     [Hashtbl.hash (watch, req, rule)] key could on a hash collision. *)
  let epoch_seen : (Infer.po, unit) Hashtbl.t = Hashtbl.create 64 in
  let site_count : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let img_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let path_hash = ref 0 in
  (* Per-op window of load/store sids backing the truncated signature.
     Maintained only when sig_depth > 0; [cur_sig] is refreshed once per
     fence (the only points that mint images). *)
  let op_sites = ref (Array.make 64 0) in
  let op_nsites = ref 0 in
  let push_site sid =
    if !op_nsites >= Array.length !op_sites then begin
      let b = Array.make (2 * Array.length !op_sites) 0 in
      Array.blit !op_sites 0 b 0 !op_nsites;
      op_sites := b
    end;
    !op_sites.(!op_nsites) <- sid;
    incr op_nsites
  in
  let cur_sig = ref 0 in
  let refresh_sig () =
    if sig_depth <= 0 then cur_sig := !path_hash
    else begin
      let n = !op_nsites in
      let start = if n > sig_depth then n - sig_depth else 0 in
      let h = ref 0 in
      for i = start to n - 1 do
        h := path_hash_step !h !op_sites.(i)
      done;
      cur_sig := !h
    end
  in
  let stop = ref false in
  let bump_op_count op =
    Hashtbl.replace stats.per_op_images op
      (1 + Option.value ~default:0 (Hashtbl.find_opt stats.per_op_images op))
  in
  (* Latest store whose range overlaps the cell, if any, with its sid:
     O(words of cell) array reads against the shadow columns — identical
     values to the store's trace fields, valid even if the store's trace
     segment has been retired. *)
  let latest_store_to (cell : Infer.cell) =
    let best = ref (-1) in
    let best_sid = ref 0 in
    let arr = !last_store_word in
    let addrs = !last_store_addr
    and lens = !last_store_len
    and sids = !last_store_sid in
    let n = Array.length arr in
    Infer.iter_words cell.c_addr cell.c_len
      (fun w ->
         if w < n then begin
           let tid = arr.(w) in
           if tid > !best
           && Infer.overlap addrs.(w) lens.(w) cell.c_addr cell.c_len
           then begin
             best := tid;
             best_sid := sids.(w)
           end
         end);
    if !best < 0 then None else Some (!best, !best_sid)
  in
  let sid_of_store tid = Trace.sid_at trace tid in
  (* Event-log record for an eligible image, tested or deferred. Emitted
     here, not in Engine: only the generator holds the simulator state
     (guaranteed/in-flight counts) and the extra persist-set that define
     the image's persistence-interval timeline. [pass] distinguishes the
     first generation walk (0) from expansion-wave re-walks (>= 1). *)
  let ev_image ~action ~fence_tid ~op ~key ~viol ~extras ~digest =
    (* a deferred candidate was already logged by the first walk; waves
       (pass > 0) re-log only what they actually materialize *)
    if Obs.Event.enabled () && not (action = "defer" && pass > 0) then begin
      let rule =
        match viol with
        | Ordering o -> Infer.rule_name o.rule
        | Atomicity _ -> "PA1"
        | Unpersisted_epoch _ -> "EPOCH"
      in
      let watch, req = violation_sids viol in
      let cid =
        Obs.Event.cond_id ~rule ~watch:(Sid.to_string watch)
          ~req:(Sid.to_string req)
      in
      let extras_j =
        Obs.Jsonx.List
          (List.map
             (fun tid ->
                Obs.Jsonx.Obj
                  [ ("tid", Obs.Jsonx.Int tid);
                    ("sid", Obs.Jsonx.Str (Sid.to_string (Trace.sid_at trace tid)));
                    ("addr", Obs.Jsonx.Int (Trace.addr_at trace tid));
                    ("len", Obs.Jsonx.Int (Trace.len_at trace tid)) ])
             extras)
      in
      let fields =
        [ ("action", Obs.Jsonx.Str action);
          ("crash_op", Obs.Jsonx.Int op);
          ("fence", Obs.Jsonx.Int fence_tid);
          ("key", Obs.Jsonx.Int key);
          ("path", Obs.Jsonx.Int !path_hash);
          ("cond", Obs.Jsonx.Int cid);
          ("guaranteed", Obs.Jsonx.Int (Crash_sim.n_guaranteed sim));
          ("dirty", Obs.Jsonx.Int (Crash_sim.n_dirty sim));
          ("pass", Obs.Jsonx.Int pass);
          ("extras", extras_j) ]
        @ (match digest with
           | None -> []
           | Some d -> [ ("digest", Obs.Jsonx.Int d) ])
      in
      let id = Obs.Event.emit "image" ~fields in
      if action = "test" then Obs.Event.last_image_id := id
    end
  in
  let site_ok key =
    let n = Option.value ~default:0 (Hashtbl.find_opt site_count key) in
    if n >= cfg.per_site_cap then false
    else begin
      Hashtbl.replace site_count key (n + 1);
      true
    end
  in
  let emit ~fence_tid ~op ~persist_tid ~avoid_tid ~viol ~site_key =
    if not !stop then begin
      match Crash_sim.feasible_extras sim ~persist:[ persist_tid ] ~avoid:[ avoid_tid ] with
      | None -> ()
      | Some extras ->
        stats.candidates <- stats.candidates + 1;
        let ekey = Hashtbl.hash extras in
        let img_key = (fence_tid, ekey) in
        if not (Hashtbl.mem img_seen img_key) then begin
          Hashtbl.add img_seen img_key ();
          stats.generated <- stats.generated + 1;
          bump_op_count op;
          (* eligibility (budget + site caps) is decided before the prune
             hook and counted on [eligible], not [tested], so the
             eligible stream is identical whatever [decide] elides — the
             invariant the deterministic expansion pass relies on *)
          if stats.eligible < cfg.max_images && site_ok site_key then begin
            stats.eligible <- stats.eligible + 1;
            match
              decide
                { cd_fence_tid = fence_tid; cd_crash_op = op; cd_key = ekey;
                  cd_viol = viol; cd_path_hash = !path_hash;
                  cd_path_sig = !cur_sig }
            with
            | `Defer ->
              stats.deferred <- stats.deferred + 1;
              ev_image ~action:"defer" ~fence_tid ~op ~key:ekey ~viol ~extras
                ~digest:None
            | `Test ->
              stats.tested <- stats.tested + 1;
              let img = Crash_sim.materialize sim ~extras in
              let digest = Crash_sim.image_digest sim img in
              ev_image ~action:"test" ~fence_tid ~op ~key:ekey ~viol ~extras
                ~digest:(Some digest);
              let image =
                { img; crash_tid = fence_tid; crash_op = op; viol;
                  path_hash = !path_hash; path_sig = !cur_sig;
                  extras = Array.of_list extras; digest }
              in
              match on_image image with
              | `Continue -> ()
              | `Stop -> stop := true
          end
        end
    end
  in
  let process_fence fence_tid fence_sid op =
    refresh_sig ();
    let generated_before = stats.generated in
    (* Baseline image: the crash evicted nothing — only already-guaranteed
       stores survive. Always feasible; one per fence, capped per fence
       site. It catches bugs whose inconsistent state is exactly "the
       epoch's work vanished while an earlier side effect (an allocator
       free, an unflushed item) is durable". *)
    (match
       List.find_opt
         (function C_po (_, tid) | C_guardian (_, tid) ->
            not (Crash_sim.is_guaranteed sim tid))
         !epoch
     with
     | Some cand when not !stop ->
       let first_lost =
         match cand with C_po (_, tid) | C_guardian (_, tid) -> tid
       in
       (* Count the candidate before the dedup check, exactly like [emit]:
          [candidates] is "feasible violations found", of which [generated]
          is the deduplicated subset. *)
       stats.candidates <- stats.candidates + 1;
       let img_key = (fence_tid, 0) in
       if not (Hashtbl.mem img_seen img_key) then begin
         Hashtbl.add img_seen img_key ();
         stats.generated <- stats.generated + 1;
         bump_op_count op;
         (* kind 2 partitions baseline sites from ordering (0) and
            atomicity (1); -1 stands in for the old "baseline" label *)
         let site_key = (fence_sid, -1, 2) in
         if stats.eligible < cfg.max_images && site_ok site_key then begin
           stats.eligible <- stats.eligible + 1;
           let viol =
             Unpersisted_epoch
               { fence_sid; first_lost_sid = sid_of_store first_lost }
           in
           match
             decide
               { cd_fence_tid = fence_tid; cd_crash_op = op; cd_key = 0;
                 cd_viol = viol; cd_path_hash = !path_hash;
                 cd_path_sig = !cur_sig }
           with
           | `Defer ->
             stats.deferred <- stats.deferred + 1;
             ev_image ~action:"defer" ~fence_tid ~op ~key:0 ~viol ~extras:[]
               ~digest:None
           | `Test ->
             stats.tested <- stats.tested + 1;
             let img = Crash_sim.materialize sim ~extras:[] in
             let digest = Crash_sim.image_digest sim img in
             ev_image ~action:"test" ~fence_tid ~op ~key:0 ~viol ~extras:[]
               ~digest:(Some digest);
             let image =
               { img; crash_tid = fence_tid; crash_op = op; viol;
                 path_hash = !path_hash; path_sig = !cur_sig; extras = [||];
                 digest }
             in
             match on_image image with
             | `Continue -> ()
             | `Stop -> stop := true
         end
       end
     | _ -> ());
    (* Ordering violations: one per (condition, sy) candidate. *)
    List.iter
      (function
        | C_po (po, sy_tid) ->
          (match latest_store_to po.Infer.req with
           | Some (sx_tid, sx_sid) when sx_tid <> sy_tid ->
             let viol =
               Ordering
                 { rule = po.rule;
                   watch_sid = sid_of_store sy_tid;
                   req_sid = sx_sid;
                   watch_tid = sy_tid; req_tid = sx_tid }
             in
             let site_key = (sid_of_store sy_tid, sx_sid, 0) in
             emit ~fence_tid ~op ~persist_tid:sy_tid ~avoid_tid:sx_tid
               ~viol ~site_key
           | _ -> ())
        | C_guardian _ -> ())
      !epoch;
    (* Atomicity violations between guardian stores of this epoch. *)
    let guardian_stores =
      List.filter_map
        (function C_guardian (c, tid) -> Some (c, tid) | C_po _ -> None)
        !epoch
    in
    let pairs = ref 0 in
    let rec all_pairs = function
      | [] -> ()
      | (c1, t1) :: rest ->
        List.iter
          (fun (c2, t2) ->
             if t1 <> t2
             && not (Infer.overlap c1.Infer.c_addr c1.c_len c2.Infer.c_addr c2.c_len)
             && !pairs < cfg.max_pa_pairs_per_fence then begin
               incr pairs;
               let mk persisted lost =
                 Atomicity
                   { persisted_sid = sid_of_store persisted;
                     lost_sid = sid_of_store lost;
                     persisted_tid = persisted; lost_tid = lost }
               in
               emit ~fence_tid ~op ~persist_tid:t1 ~avoid_tid:t2
                 ~viol:(mk t1 t2)
                 ~site_key:(sid_of_store t1, sid_of_store t2, 1);
               emit ~fence_tid ~op ~persist_tid:t2 ~avoid_tid:t1
                 ~viol:(mk t2 t1)
                 ~site_key:(sid_of_store t2, sid_of_store t1, 1)
             end)
          rest;
        all_pairs rest
    in
    all_pairs guardian_stores;
    Obs.Metrics.observe "crash_gen.images_per_fence"
      (stats.generated - generated_before);
    epoch := [];
    Hashtbl.reset epoch_seen
  in
  let feed tid =
    if not !stop then begin
      let k = Trace.kind_at trace tid in
      if k = Trace.k_op_begin then begin
        path_hash := 0;
        op_nsites := 0
      end
      else if k = Trace.k_load || k = Trace.k_store then begin
        let sid = Trace.sid_at trace tid in
        path_hash := path_hash_step !path_hash sid;
        if sig_depth > 0 then push_site sid
      end;
      if k = Trace.k_store then begin
        let addr = Trace.addr_at trace tid and len = Trace.len_at trace tid in
        let sid = Trace.sid_at trace tid in
        ensure_word ((addr + len - 1) lsr 3);
        Infer.iter_words addr len
          (fun w ->
             !last_store_word.(w) <- tid;
             !last_store_addr.(w) <- addr;
             !last_store_len.(w) <- len;
             !last_store_sid.(w) <- sid);
        (* Register condition candidates watching this store. *)
        Infer.iter_conds_for conds addr len
          (fun po ->
             if not (Hashtbl.mem epoch_seen po) then begin
               Hashtbl.add epoch_seen po ();
               epoch := C_po (po, tid) :: !epoch
             end);
        Infer.iter_guardians_for conds addr len
          (fun g -> epoch := C_guardian (g, tid) :: !epoch)
      end
      else if k = Trace.k_fence then
        process_fence tid (Trace.sid_at trace tid) (Trace.op_at trace tid);
      Crash_sim.on_index sim tid
    end
  in
  let finish () =
    stats.bytes_materialized <- Crash_sim.bytes_materialized sim;
    stats
  in
  { g_feed = feed; g_stopped = (fun () -> !stop); g_finish = finish;
    g_sim = sim }

let generate ?cfg ?decide ?pass ?sig_depth ~trace ~(conds : Infer.t)
    ~pool_size ~on_image () =
  let g =
    stream_create ?cfg ?decide ?pass ?sig_depth ~trace ~conds ~pool_size
      ~on_image ()
  in
  let n = Trace.length trace in
  let i = ref 0 in
  while (not (g.g_stopped ())) && !i < n do
    g.g_feed !i;
    incr i
  done;
  g.g_finish ()
