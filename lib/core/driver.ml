(* Runs a store against a test case in three modes:

   - [record]: instrumented run producing the trace and the committed
     outputs (these double as the "committed" oracle for every crash
     point, §4.4).
   - [run_quiet]: uninstrumented run for rolled-back oracles.
   - [resume]: attach to a crash NVM image, run recovery and the suffix of
     the test case; any visible failure (simulated segfault, fuel
     exhaustion, corrupt pool) marks the remaining outputs [Crashed].

   Operation indices in the trace: index 0 is store creation, index k >= 1
   is [ops.(k - 1)]. *)

open Nvm

type recorded = {
  ops : Op.t array;
  outputs : Output.t array;
  trace : Trace.t;
  pool_size : int;
  final_image : string;  (* snapshot after the full run *)
  checkpoints : (int * Pmem.t) list;
  (* (op index, flat pool snapshot after that op), ascending; every
     checkpointed pool is immutable and reusable across oracle runs *)
}

let record ?(ckpt_stride = 0) ?(boxed = false) ?events_hint
    (module S : Store_intf.S) ops =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let pmem = Pmem.create S.pool_size in
  let ctx = Ctx.create ~boxed ?events_hint ~mode:Record pmem in
  let ev_op index desc =
    if Obs.Event.enabled () then
      ignore
        (Obs.Event.emit "op"
           ~fields:
             [ ("op", Obs.Jsonx.Int index); ("desc", Obs.Jsonx.Str desc) ])
  in
  Ctx.op_begin ctx ~index:0 ~desc:"create";
  ev_op 0 "create";
  let store = S.create ctx in
  Ctx.op_end ctx ~index:0;
  let checkpoints = ref [] in
  let outputs =
    Array.mapi
      (fun i op ->
         let index = i + 1 in
         Ctx.op_begin ctx ~index ~desc:(Op.desc op);
         ev_op index (Op.desc op);
         let out = S.exec store op in
         Ctx.op_end ctx ~index;
         (* Checkpoints must be flat copies: the record pool keeps
            mutating, so an O(1) COW view here would alias live bytes. *)
         if ckpt_stride > 0 && index mod ckpt_stride = 0 && index < n then begin
           checkpoints := (index, Pmem.copy pmem) :: !checkpoints;
           Obs.Metrics.incr ~n:S.pool_size "driver.ckpt_bytes";
           if Obs.Event.enabled () then
             ignore
               (Obs.Event.emit "ckpt" ~fields:[ ("op", Obs.Jsonx.Int index) ])
         end;
         out)
      ops
  in
  Obs.Metrics.incr ~n:(Array.length ops) "driver.record_ops";
  { ops; outputs; trace = Ctx.trace ctx; pool_size = S.pool_size;
    final_image = Pmem.snapshot pmem; checkpoints = List.rev !checkpoints }

(* Uninstrumented execution of an arbitrary op list; used for rolled-back
   oracles. Must be deterministic w.r.t. [record] modulo the removed op. *)
let run_quiet (module S : Store_intf.S) ops =
  Obs.Metrics.incr "driver.quiet_runs";
  let pmem = Pmem.create S.pool_size in
  let ctx = Ctx.create ~mode:Quiet pmem in
  let store = S.create ctx in
  Array.of_list (List.map (S.exec store) ops)

(* Rolled-back oracle from a record-time checkpoint: resume (open +
   recover) a COW view of the pool state after op [from_op], replay trace
   ops [from_op + 1 .. n] skipping [skip], and return the outputs of ops
   [skip + 1 .. n] — O(n - from_op) store ops instead of the O(n) full
   re-run. The checkpointed image is fully consistent (all ops up to
   [from_op] committed cleanly), so recovery must behave exactly like the
   uninterrupted run; any exception here is a driver-level failure the
   caller handles by falling back to [run_quiet]. *)
let oracle_from_checkpoint (module S : Store_intf.S) ~checkpoint ~ops ~from_op
    ~skip =
  let n = Array.length ops in
  Obs.Metrics.incr "driver.ckpt_resumes";
  let ctx = Ctx.create ~mode:Quiet (Pmem.cow checkpoint) in
  let store = S.open_ ctx in
  let out = Array.make (n - skip) Output.Ok in
  for idx = from_op + 1 to n do
    if idx <> skip then begin
      let o = S.exec store ops.(idx - 1) in
      if idx > skip then out.(idx - skip - 1) <- o
    end
  done;
  out

(* A resumed execution runs over a possibly corrupted image: any exception
   it raises — simulated segfault, livelock fuel, corrupt metadata tripping
   OCaml runtime checks — is a visible crash, which the paper counts as a
   detected inconsistency. *)
let describe_failure = function
  | Pmem.Fault f -> Printf.sprintf "segfault@%d+%d" f.addr f.len
  | Ctx.Fuel_exhausted -> "livelock"
  | Pmdk.Pool.Corrupt_pool m -> "corrupt-pool:" ^ m
  | Pmdk.Alloc.Out_of_memory -> "heap-exhausted"
  | Pmdk.Tx.Log_full -> "tx-log-full"
  | Stack_overflow -> "stack-overflow"
  | e -> "exception:" ^ Printexc.to_string e

(* Resume from a crash image: open + recover, then run ops with trace
   indices [from_op + 1 .. n], streaming each output through [on_output]
   as soon as it is available. [on_output i out] may return [`Stop] to
   abort the replay — the incremental equivalence checker uses this to
   cut a replay short the moment both oracles are ruled out, so an
   inconsistent image costs O(first divergence) instead of O(suffix).

   A visible failure (simulated segfault, fuel exhaustion, corrupt pool)
   marks every remaining output [Crashed] without executing anything
   further; those backfilled outputs still stream through [on_output].

   Returns the number of operations the replay actually attempted to
   execute (the crashing op counts: its work was done).

   [?read_track] logs the word range of every NVM read into the given
   set. The fence-batched checker uses it to prove two same-fence images
   replay identically: the fresh pool built on the [Corrupt_pool] path is
   image-independent, but we track it too — a superset read set only
   makes inheritance more conservative, never unsound. *)
let resume_stream ?read_track (module S : Store_intf.S) ~image ~ops ~from_op
    ~fuel ~(on_output : int -> Output.t -> [ `Continue | `Stop ]) =
  let n = Array.length ops in
  let suffix_len = n - from_op in
  let executed = ref 0 in
  Obs.Metrics.incr "driver.resumes";
  let ctx = Ctx.create ~mode:Quiet ~fuel image in
  Ctx.set_read_track ctx read_track;
  let fail_from i msg =
    let out = Output.Crashed msg in
    let rec go i =
      if i < suffix_len then
        match on_output i out with `Stop -> () | `Continue -> go (i + 1)
    in
    go i
  in
  let opened =
    try `Store (S.open_ ctx) with
    | Pmdk.Pool.Corrupt_pool _ ->
      (* The crash predates pool initialization: the magic never became
         durable. A real deployment re-creates the pool file, which is the
         rolled-back behaviour for the creation op. *)
      (try
         let fresh = Pmem.create S.pool_size in
         let ctx' = Ctx.create ~mode:Quiet ~fuel fresh in
         Ctx.set_read_track ctx' read_track;
         `Store (S.create ctx')
       with e -> `Err (describe_failure e))
    | e -> `Err (describe_failure e)
  in
  (match opened with
   | `Err msg -> fail_from 0 msg
   | `Store store ->
     let rec go i =
       if i < suffix_len then begin
         incr executed;
         match S.exec store ops.(from_op + i) with
         | out ->
           (match on_output i out with `Stop -> () | `Continue -> go (i + 1))
         | exception e -> fail_from i (describe_failure e)
       end
     in
     go 0);
  !executed

(* Full replay into an array: [resume_stream] with no early abort.
   Returns exactly [n - from_op] outputs. *)
let resume (module S : Store_intf.S) ~image ~ops ~from_op ~fuel =
  let suffix_len = max (Array.length ops - from_op) 0 in
  let results = Array.make (max suffix_len 1) (Output.Crashed "unreached") in
  ignore
    (resume_stream (module S) ~image ~ops ~from_op ~fuel
       ~on_output:(fun i out -> results.(i) <- out; `Continue));
  Array.sub results 0 suffix_len
