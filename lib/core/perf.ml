(* Trace-based performance-bug detection (§4.5). No crash simulation is
   needed; a single walk tracking the persistence state in program order
   finds:

   - P-U   unpersisted: a store never covered by any flush by the end of
           the trace — the data behaves as volatile and should live in
           DRAM;
   - P-EFL extra flush: a flush of a line with no unflushed dirty store;
   - P-EFE extra fence: a fence with no preceding flush since the last
           fence;
   - P-EL  extra logging: a tx_add_range whose region was already fully
           logged in the same transaction.

   Like the paper we report *bugs* as distinct static sites; raw dynamic
   occurrence counts are kept for the reports. Sites are keyed by
   interned sid; [bug_sites] converts back to strings for the report
   layers. *)

type counts = {
  sites : (Nvm.Sid.t, int) Hashtbl.t;  (* sid -> occurrences *)
}

type t = {
  p_u : counts;
  p_efl : counts;
  p_efe : counts;
  p_el : counts;
}

let mk () = { sites = Hashtbl.create 16 }

let hit c sid =
  Hashtbl.replace c.sites sid (1 + Option.value ~default:0 (Hashtbl.find_opt c.sites sid))

let n_bugs c = Hashtbl.length c.sites
let n_occurrences c = Hashtbl.fold (fun _ n acc -> acc + n) c.sites 0
let bug_sites c =
  Hashtbl.fold (fun sid n acc -> (Nvm.Sid.to_string sid, n) :: acc) c.sites []
  |> List.sort compare

type line_track = {
  mutable unflushed : (int * Nvm.Sid.t) list;  (* store tid, sid: dirty, no flush yet *)
}

(* Incremental walk state: [feed] consumes one event (reading only that
   trace index, so it works over a windowed ring), [finish] settles the
   end-of-trace P-U rule. [detect] below is the batch composition. *)
type stream = {
  acc : t;
  lines : (int, line_track) Hashtbl.t;
  mutable flush_since_fence : int;
  tx_logs : (int, (int * int) list ref) Hashtbl.t;
      (* per transaction: logged intervals (addr, len) *)
}

let create () =
  { acc = { p_u = mk (); p_efl = mk (); p_efe = mk (); p_el = mk () };
    lines = Hashtbl.create 1024;
    flush_since_fence = 0;
    tx_logs = Hashtbl.create 16 }

let track st line =
  match Hashtbl.find_opt st.lines line with
  | Some l -> l
  | None ->
    let l = { unflushed = [] } in
    Hashtbl.add st.lines line l;
    l

let feed st (trace : Nvm.Trace.t) i =
  let t = st.acc in
  let k = Nvm.Trace.kind_at trace i in
  if k = Nvm.Trace.k_store then begin
    let l = track st (Nvm.Pmem.line_of_addr (Nvm.Trace.addr_at trace i)) in
    l.unflushed <- (i, Nvm.Trace.sid_at trace i) :: l.unflushed
  end
  else if k = Nvm.Trace.k_flush then begin
    st.flush_since_fence <- st.flush_since_fence + 1;
    let l = track st (Nvm.Trace.addr_at trace i) in
    if l.unflushed = [] then hit t.p_efl (Nvm.Trace.sid_at trace i)
    else l.unflushed <- []
  end
  else if k = Nvm.Trace.k_fence then begin
    if st.flush_since_fence = 0 then hit t.p_efe (Nvm.Trace.sid_at trace i);
    st.flush_since_fence <- 0
  end
  else if k = Nvm.Trace.k_log_range then begin
    let tx = Nvm.Trace.tx_at trace i in
    let logs =
      match Hashtbl.find_opt st.tx_logs tx with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add st.tx_logs tx l;
        l
    in
    let g_addr = Nvm.Trace.addr_at trace i in
    let g_len = Nvm.Trace.len_at trace i in
    let covered =
      (* fully contained in the union of previously logged ranges;
         we check containment in a single range, which matches the
         redundant-logging pattern in practice *)
      List.exists
        (fun (a, len) -> g_addr >= a && g_addr + g_len <= a + len)
        !logs
    in
    if covered then hit t.p_el (Nvm.Trace.sid_at trace i)
    else logs := (g_addr, g_len) :: !logs
  end

let finish st =
  (* Anything still unflushed at the end never gets persisted: P-U. *)
  Hashtbl.iter
    (fun _ l ->
       List.iter (fun (_tid, sid) -> hit st.acc.p_u sid) l.unflushed)
    st.lines;
  st.acc

let detect (trace : Nvm.Trace.t) =
  let st = create () in
  for i = 0 to Nvm.Trace.length trace - 1 do
    feed st trace i
  done;
  finish st
