(* Simplified re-creations of the prior tools Witcher is compared against
   in §7.6. Both operate on the same trace; what distinguishes them from
   Witcher (and drives the comparison's outcome) is the *oracle*:

   - [agamotto]: universal bug oracles only — data left unpersisted that a
     later operation reads (missing flush/fence), plus the PMDK
     transaction checker (store inside an open transaction to an unlogged
     range). It has no application-specific oracle, so persistence
     ordering/atomicity violations that need semantic validation are
     invisible to it.

   - [pmtest]: annotation-driven ordering assertions. An annotation
     declares "the latest store at site A must be durable whenever site B
     executes"; unannotated sites are unchecked, which is exactly the
     failure mode the paper describes (a missing annotation is a false
     negative). Annotations may also be wrong: an assertion can fire on a
     benign state (the Redis root-zeroing false positive of §7.6), which
     output equivalence would have pruned. *)

open Nvm

type agamotto_result = {
  missing_persist_sites : (string * int) list;  (* sid, occurrences *)
  missing_log_sites : (string * int) list;
  redundant_flush_sites : (string * int) list;
  redundant_fence_sites : (string * int) list;
}

let agamotto (trace : Trace.t) =
  let perf = Perf.detect trace in
  (* Unflushed stores whose cell is read by a *later operation*: universal
     missing-persist oracle. *)
  let flushed_lines_after : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* line -> tid of last flush *)
  Trace.iter
    (fun ev ->
       match ev with
       | Trace.Flush f -> Hashtbl.replace flushed_lines_after f.f_line f.f_tid
       | _ -> ())
    trace;
  let store_flushed (s : Trace.store_ev) =
    match Hashtbl.find_opt flushed_lines_after (Pmem.line_of_addr s.s_addr) with
    | Some flush_tid -> flush_tid > s.s_tid
    | None -> false
  in
  let unflushed_words : (int, Trace.store_ev) Hashtbl.t = Hashtbl.create 256 in
  Trace.iter
    (fun ev ->
       match ev with
       | Trace.Store s when not (store_flushed s) ->
         List.iter
           (fun w -> Hashtbl.replace unflushed_words w s)
           (Infer.words s.s_addr s.s_len)
       | _ -> ())
    trace;
  let missing : (Sid.t, int) Hashtbl.t = Hashtbl.create 16 in
  Trace.iter
    (fun ev ->
       match ev with
       | Trace.Load l ->
         List.iter
           (fun w ->
              match Hashtbl.find_opt unflushed_words w with
              | Some s when l.l_op > s.s_op && l.l_tid > s.s_tid ->
                Hashtbl.replace missing s.s_sid
                  (1 + Option.value ~default:0 (Hashtbl.find_opt missing s.s_sid))
              | _ -> ())
           (Infer.words l.l_addr l.l_len)
       | _ -> ())
    trace;
  (* Transaction checker: stores inside an open tx to unlogged ranges. *)
  let missing_log : (Sid.t, int) Hashtbl.t = Hashtbl.create 16 in
  let open_tx = ref None in
  let logged : (int * int) list ref = ref [] in
  Trace.iter
    (fun ev ->
       match ev with
       | Trace.Tx_begin x -> open_tx := Some x.t_tx; logged := []
       | Trace.Tx_commit _ | Trace.Tx_abort _ -> open_tx := None
       | Trace.Log_range g when !open_tx <> None ->
         logged := (g.g_addr, g.g_len) :: !logged
       | Trace.Store s when !open_tx <> None ->
         (* PMDK-internal bookkeeping (header + log arena) is exempt. *)
         if s.s_addr >= Pmdk.Layout.heap_start
         && not
              (List.exists
                 (fun (a, len) -> s.s_addr >= a && s.s_addr + s.s_len <= a + len)
                 !logged)
         then
           Hashtbl.replace missing_log s.s_sid
             (1 + Option.value ~default:0 (Hashtbl.find_opt missing_log s.s_sid))
       | _ -> ())
    trace;
  let to_list h =
    Hashtbl.fold (fun k v acc -> (Sid.to_string k, v) :: acc) h []
    |> List.sort compare
  in
  { missing_persist_sites = to_list missing;
    missing_log_sites = to_list missing_log;
    redundant_flush_sites = Perf.bug_sites perf.p_efl;
    redundant_fence_sites = Perf.bug_sites perf.p_efe }

(* Two annotation forms, mirroring PMTest's assertions: an ordering
   assertion ("the latest store at [before] must be durable when a store
   at [after] executes") and a transaction assertion ("stores at [sid]
   must happen inside an open transaction" — the TX checker that flags
   Redis's benign root zeroing, §7.6). *)
type annotation =
  | Ordered of { before : string; after : string }
  | In_tx of { sid : string }

type pmtest_violation = {
  ann : annotation;
  at_tid : int;
  occurrences : int;
}

let pmtest (trace : Trace.t) ~pool_size ~(annotations : annotation list) =
  let sim = Crash_sim.create ~trace ~pool_size in
  let last_by_sid : (Sid.t, int) Hashtbl.t = Hashtbl.create 64 in
  let hits : (annotation, int * int) Hashtbl.t = Hashtbl.create 16 in
  let in_tx = ref false in
  let record ann tid =
    let tid0, n = Option.value ~default:(tid, 0) (Hashtbl.find_opt hits ann) in
    Hashtbl.replace hits ann (tid0, n + 1)
  in
  Trace.iter
    (fun ev ->
       (match ev with
        | Trace.Tx_begin _ -> in_tx := true
        | Trace.Tx_commit _ | Trace.Tx_abort _ -> in_tx := false
        | Trace.Store s ->
          List.iter
            (fun ann ->
               match ann with
               | Ordered { before; after } ->
                 if Sid.intern after = s.s_sid then (
                   match Hashtbl.find_opt last_by_sid (Sid.intern before) with
                   | Some before_tid
                     when not (Crash_sim.is_guaranteed sim before_tid) ->
                     record ann s.s_tid
                   | _ -> ())
               | In_tx { sid } ->
                 if Sid.intern sid = s.s_sid && not !in_tx then
                   record ann s.s_tid)
            annotations;
          Hashtbl.replace last_by_sid s.s_sid s.s_tid
        | _ -> ());
       Crash_sim.on_event sim ev)
    trace;
  Hashtbl.fold
    (fun ann (tid, n) acc -> { ann; at_tid = tid; occurrences = n } :: acc)
    hits []
  |> List.sort (fun a b -> compare a.ann b.ann)
