(* Bug-report clustering (§4.4). Many failing images share one root cause;
   Witcher clusters them by operation type and execution path of the
   crashed operation, and we additionally record the violated condition's
   static sites, which lets the engine map clusters back to the seeded
   ground-truth defects. *)

type kind = C_ordering | C_atomicity

type report = {
  store_name : string;
  kind : kind;
  op_desc : string;         (* operation type of the crashed op *)
  path_hash : int;
  watch_sid : string;       (* persisted-too-early site *)
  req_sid : string;         (* left-unpersisted / lost site *)
  rule : string;
  mutable count : int;      (* failing images in this cluster *)
  example_crash_tid : int;
  example_first_diff : int;
  example_got : Output.t;
  example_expected : Output.t;
  crashed : bool;           (* resumption crashed visibly *)
}

type t = {
  store_name : string;
  (* keyed on the pruning layer's path signature — bug-report clusters and
     pruning equivalence classes are one notion (DESIGN §7) *)
  clusters : (Prune.Path_sig.t, report) Hashtbl.t;
}

let create ~store_name = { store_name; clusters = Hashtbl.create 64 }

let op_kind_of_desc desc =
  match String.index_opt desc '(' with
  | Some i -> String.sub desc 0 i
  | None -> desc

(* The signature of an image's would-be cluster: also what Engine feeds
   the [Prune.Equiv_class] registry, so a class and a cluster coincide.
   [op_kind] is the interned operation type of the crashed op. *)
let signature ~op_kind (image : Crash_gen.image) =
  let watch, req = Crash_gen.violation_sids image.viol in
  Prune.Path_sig.make ~op_kind ~path:image.path_hash ~watch ~req

let add t ~(image : Crash_gen.image) ~op_kind ~(verdict : Equiv.verdict) =
  match verdict with
  | Equiv.Consistent -> ()
  | Equiv.Inconsistent v ->
    let watch_sid, req_sid = Crash_gen.violation_sids image.viol in
    let kind, rule =
      match image.viol with
      | Crash_gen.Ordering o -> C_ordering, Infer.rule_name o.rule
      | Crash_gen.Atomicity _ -> C_atomicity, "PA1"
      | Crash_gen.Unpersisted_epoch _ -> C_ordering, "EPOCH"
    in
    let key = signature ~op_kind image in
    match Hashtbl.find_opt t.clusters key with
    | Some r -> r.count <- r.count + 1
    | None ->
      Hashtbl.add t.clusters key
        { store_name = t.store_name; kind; op_desc = Nvm.Sid.to_string op_kind;
          path_hash = image.path_hash;
          watch_sid = Nvm.Sid.to_string watch_sid;
          req_sid = Nvm.Sid.to_string req_sid; rule;
          count = 1;
          example_crash_tid = image.crash_tid;
          example_first_diff = v.first_diff;
          example_got = v.got;
          example_expected = v.expect_committed;
          crashed = v.crashed }

let reports t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.clusters []
  |> List.sort (fun a b ->
      compare (a.watch_sid, a.req_sid, a.op_desc) (b.watch_sid, b.req_sid, b.op_desc))

(* Reports with their path-signature keys: [reports] order, but with the
   stable class key breaking (watch, req, op) ties — [reports]' order of
   tied clusters leaks Hashtbl iteration over process-local sid ints,
   and the event log must be a pure function of (store, seed, config). *)
let reports_keyed t =
  Hashtbl.fold (fun k r acc -> (Prune.Path_sig.stable_key k, r) :: acc)
    t.clusters []
  |> List.sort (fun (ka, a) (kb, b) ->
      compare (a.watch_sid, a.req_sid, a.op_desc, ka)
        (b.watch_sid, b.req_sid, b.op_desc, kb))

let n_clusters t = Hashtbl.length t.clusters

(* Distinct root causes: the static site that persisted too early (or
   whose epoch vanished). Multiple clusters and site pairs share one root
   cause (§7.4); this is the count comparable to the paper's Table 4/5
   bug numbers. *)
let root_causes t =
  (* representative per root cause chosen in [reports_keyed] order: a
     raw [Hashtbl.iter] would elect whichever tied cluster the
     process-local sid ints happened to bucket first, and the batch and
     streaming engines intern sids on different schedules *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (_, r) ->
       if Hashtbl.mem seen (r.kind, r.watch_sid) then None
       else begin
         Hashtbl.add seen (r.kind, r.watch_sid) ();
         Some r
       end)
    (reports_keyed t)
  |> List.sort (fun a b -> compare (a.watch_sid, a.req_sid) (b.watch_sid, b.req_sid))

(* Distinct static-site pairs, a tighter proxy for distinct root causes
   than raw clusters (multiple clusters may share a root cause, §7.4).
   Representative per pair is the first in [reports_keyed] order, for
   the same cross-engine determinism as [root_causes]. *)
let site_pairs t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (_, r) ->
       if Hashtbl.mem seen (r.kind, r.watch_sid, r.req_sid) then None
       else begin
         Hashtbl.add seen (r.kind, r.watch_sid, r.req_sid) ();
         Some r
       end)
    (reports_keyed t)
  |> List.sort (fun a b -> compare (a.watch_sid, a.req_sid) (b.watch_sid, b.req_sid))

let pp_report ppf (r : report) =
  Fmt.pf ppf "[%s] %s %s op=%s crash@%d first_diff=op%d got=%a expected=%a%s@,   persisted-early: %s@,   unpersisted:     %s"
    r.store_name
    (match r.kind with C_ordering -> "C-O" | C_atomicity -> "C-A")
    r.rule r.op_desc r.example_crash_tid r.example_first_diff
    Output.pp r.example_got Output.pp r.example_expected
    (if r.crashed then " [visible crash]" else "")
    r.watch_sid r.req_sid
