(* Yat-style exhaustive testing, in two forms:

   - [estimate]: counts (in log10, since the paper reports up to 10^31)
     how many crash states an exhaustive tool would validate along a
     trace. At each fence crash point with m not-yet-guaranteed stores,
     Yat permutes the uncommitted updates: sum_{k<=m} m!/(m-k)! ~ e * m!
     states. The per-operation cumulative series is Figure 4's Yat curve;
     the spikes are rehash / split-merge operations.

   - [exhaustive]: for tiny traces, actually enumerates every feasible
     crash image at every fence (per-line prefix products) so unit tests
     can cross-check that condition-guided pruning does not miss bugs a
     full search would find on the same test case (§7.5). *)

open Nvm

(* log10(n!) with memoization. *)
let log10_fact =
  let tbl = ref [| 0.0 |] in
  fun n ->
    let cur = Array.length !tbl in
    if n >= cur then begin
      let next = Array.make (n + 64) 0.0 in
      Array.blit !tbl 0 next 0 cur;
      for i = cur to n + 63 do
        next.(i) <- next.(i - 1) +. log10 (float_of_int i)
      done;
      tbl := next
    end;
    !tbl.(n)

(* log10(10^a + 10^b) *)
let log10_add a b =
  let hi = max a b and lo = min a b in
  if hi -. lo > 15.0 then hi else hi +. log10 (1.0 +. (10.0 ** (lo -. hi)))

let log10_e = log10 (exp 1.0)

type series = {
  (* cumulative log10 of Yat crash states after each op (index = op) *)
  yat_log10 : float array;
  (* cumulative Witcher images generated after each op *)
  witcher : int array;
}

(* Build Figure 4's two curves from a trace and the per-op image counts
   produced by Crash_gen. *)
let estimate ~trace ~pool_size ~(per_op_images : (int, int) Hashtbl.t) ~n_ops =
  let sim = Crash_sim.create ~trace ~pool_size in
  let yat = Array.make (n_ops + 1) neg_infinity in
  let total = ref neg_infinity in
  (* Yat permutes the uncommitted stores of each reordering window (the
     stores since the previous fence). *)
  let epoch_stores = ref 0 in
  Trace.iter
    (fun ev ->
       (match ev with
        | Trace.Store _ -> incr epoch_stores
        | Trace.Fence f ->
          let m = !epoch_stores in
          epoch_stores := 0;
          if m > 0 then begin
            let states = log10_fact m +. log10_e in
            total := log10_add !total states;
            let op = min f.n_op n_ops in
            if op >= 0 then yat.(op) <- !total
          end
        | _ -> ());
       Crash_sim.on_event sim ev)
    trace;
  (* forward-fill ops with no fence *)
  let last = ref 0.0 in
  Array.iteri
    (fun i v -> if v = neg_infinity then yat.(i) <- !last else last := v)
    yat;
  let witcher = Array.make (n_ops + 1) 0 in
  Hashtbl.iter
    (fun op n -> if op >= 0 && op <= n_ops then witcher.(op) <- witcher.(op) + n)
    per_op_images;
  let acc = ref 0 in
  Array.iteri (fun i n -> acc := !acc + n; witcher.(i) <- !acc) witcher;
  { yat_log10 = yat; witcher }

type image = {
  img : Pmem.t;
  crash_tid : int;
  crash_op : int;
}

(* Enumerate all feasible crash images; only sensible for tiny traces. *)
let exhaustive ?(per_fence_limit = 512) ?(max_images = 100_000) ~trace ~pool_size
    ~on_image () =
  let sim = Crash_sim.create ~trace ~pool_size in
  let count = ref 0 in
  let stop = ref false in
  Trace.iter
    (fun ev ->
       if not !stop then begin
         (match ev with
          | Trace.Fence f ->
            let sets = Crash_sim.all_feasible_extras sim ~limit:per_fence_limit in
            List.iter
              (fun extras ->
                 if not !stop then begin
                   incr count;
                   if !count > max_images then stop := true
                   else begin
                     let img = Crash_sim.materialize sim ~extras in
                     match on_image { img; crash_tid = f.n_tid; crash_op = f.n_op } with
                     | `Continue -> ()
                     | `Stop -> stop := true
                   end
                 end)
              sets
          | _ -> ());
         Crash_sim.on_event sim ev
       end)
    trace;
  !count
