(* The instrumented execution context. Store implementations perform every
   NVM access through this module; in [Record] mode each access appends a
   trace event carrying the data/control dependencies Witcher's inference
   needs (§4.1-4.2). In [Quiet] mode (oracle runs, crash-image resumption)
   accesses hit the pool directly with no tracing and no taint.

   Stores are split at cache-line boundaries so that every Store event
   lives on exactly one line; the crash simulator and image builder rely
   on this to keep per-line persist-order reasoning exact.

   Store code passes sids as strings; [Ctx] interns them on entry (see
   Sid: a one-entry physical-equality memo makes the per-access cost of
   re-interning a loop's literal effectively zero) and the trace records
   only the int.

   [fuel] bounds the number of accesses: resuming from a corrupted crash
   image can loop forever (e.g. a B+tree whose root points to a sibling);
   running dry raises [Fuel_exhausted], which the driver reports as a
   visible crash, itself an output divergence. *)

exception Fuel_exhausted

type mode = Record | Quiet

type t = {
  pmem : Pmem.t;
  mode : mode;
  trace : Trace.t;             (* empty and unused in Quiet mode *)
  taints : bool;               (* false: record events, skip taint tracking *)
  mutable cd_stack : Taint.t list;
  mutable op_cd : Taint.t;     (* pointer-chase guards, cleared per op *)
  mutable cd : Taint.t;        (* cached union of cd_stack + op_cd *)
  mutable op : int;
  mutable fuel : int;
  mutable tx_counter : int;
  mutable rtrack : Wset.t option;
      (* when set, every successful NVM read logs its word range; used by
         the fence-batched checker to decide verdict inheritance *)
}

(* [trace] records into a caller-supplied trace (the streaming engine
   passes a windowed ring). [taintless] appends the identical event
   sequence — same tids, same payloads — but with empty taints and no
   guard bookkeeping: the streaming validation pass re-executes the
   deterministic workload only to regenerate event positions and store
   payloads, and never reads dependence edges, so it skips their cost. *)
let create ?(boxed = false) ?(fuel = 100_000_000) ?trace ?events_hint
    ?(taintless = false) ~mode pmem =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~boxed ?events_hint ()
  in
  { pmem; mode; trace; taints = not taintless; cd_stack = [];
    op_cd = Taint.empty; cd = Taint.empty; op = -1; fuel; tx_counter = 0;
    rtrack = None }

let set_read_track t w = t.rtrack <- w

let[@inline] track t addr len =
  match t.rtrack with None -> () | Some w -> Wset.add_range w addr len

let pmem t = t.pmem
let trace t = t.trace
let mode t = t.mode
let current_op t = t.op

let burn t =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then raise Fuel_exhausted

let recording t = t.mode = Record

(* Reads *)

let read_u64 t ~sid addr =
  burn t;
  let v = Pmem.read_u64 t.pmem addr in
  track t addr 8;
  if recording t then begin
    let tid =
      Trace.add_load t.trace ~sid:(Sid.intern sid) ~addr ~len:8 ~cd:t.cd
        ~op:t.op
    in
    if t.taints then Tv.make ~taint:(Taint.singleton tid) v else Tv.const v
  end
  else Tv.const v

let read_u8 t ~sid addr =
  burn t;
  let v = Pmem.read_u8 t.pmem addr in
  track t addr 1;
  if recording t then begin
    let tid =
      Trace.add_load t.trace ~sid:(Sid.intern sid) ~addr ~len:1 ~cd:t.cd
        ~op:t.op
    in
    if t.taints then Tv.make ~taint:(Taint.singleton tid) v else Tv.const v
  end
  else Tv.const v

let read_bytes t ~sid addr len =
  burn t;
  let s = Pmem.read_bytes t.pmem addr len in
  track t addr len;
  if recording t then begin
    let tid =
      Trace.add_load t.trace ~sid:(Sid.intern sid) ~addr ~len ~cd:t.cd
        ~op:t.op
    in
    if t.taints then Tv.blob ~taint:(Taint.singleton tid) s else Tv.blob s
  end
  else Tv.blob s

(* Writes. [emit_store] splits at cache-line boundaries. *)

let emit_store t ~sid addr data dd =
  let len = String.length data in
  let sid = Sid.intern sid in
  let rec go addr off =
    if off < len then begin
      let line_end = (Pmem.line_of_addr addr + 1) * Pmem.line_size in
      let chunk = min (len - off) (line_end - addr) in
      ignore
        (Trace.add_store_sub t.trace ~sid ~addr ~src:data ~src_off:off
           ~len:chunk ~dd ~cd:t.cd ~op:t.op);
      go (addr + chunk) (off + chunk)
    end
  in
  go addr 0

let write_u64 t ~sid addr tv =
  burn t;
  Pmem.write_u64 t.pmem addr (Tv.value tv);
  if recording t then begin
    if addr land (Pmem.line_size - 1) <= Pmem.line_size - 8 then
      (* fits one line: skip the split loop and the intermediate string *)
      ignore
        (Trace.add_store_u64 t.trace ~sid:(Sid.intern sid) ~addr
           ~v:(Tv.value tv) ~dd:(Tv.taint tv) ~cd:t.cd ~op:t.op)
    else begin
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int (Tv.value tv));
      emit_store t ~sid addr (Bytes.to_string b) (Tv.taint tv)
    end
  end

let write_u8 t ~sid addr tv =
  burn t;
  Pmem.write_u8 t.pmem addr (Tv.value tv);
  if recording t then
    emit_store t ~sid addr
      (String.make 1 (Char.chr (Tv.value tv land 0xff)))
      (Tv.taint tv)

let write_bytes t ~sid addr blob =
  burn t;
  let s = Tv.blob_value blob in
  Pmem.write_bytes t.pmem addr s;
  if recording t then emit_store t ~sid addr s (Tv.blob_taint blob)

(* Persistence primitives *)

let flush t ~sid addr =
  burn t;
  if recording t then
    ignore
      (Trace.add_flush t.trace ~sid:(Sid.intern sid)
         ~line:(Pmem.line_of_addr addr) ~op:t.op)

let flush_range t ~sid addr len =
  if len > 0 then begin
    let first = Pmem.line_of_addr addr in
    let last = Pmem.line_of_addr (addr + len - 1) in
    for line = first to last do
      flush t ~sid (line * Pmem.line_size)
    done
  end

let fence t ~sid =
  burn t;
  if recording t then
    ignore (Trace.add_fence t.trace ~sid:(Sid.intern sid) ~op:t.op)

(* flush_range + fence: PMDK's pmem_persist *)
let persist t ~sid addr len =
  flush_range t ~sid addr len;
  fence t ~sid

(* Transactions (used by Pmdk.Tx; events feed extra-logging detection) *)

let fresh_tx t =
  t.tx_counter <- t.tx_counter + 1;
  t.tx_counter

let log_range t ~sid ~tx addr len =
  if recording t then begin
    let tid = Trace.next_tid t.trace in
    Trace.push t.trace
      (Log_range { g_tid = tid; g_sid = Sid.intern sid; g_addr = addr;
                   g_len = len; g_tx = tx; g_op = t.op })
  end

let tx_begin t ~tx =
  if recording t then
    Trace.push t.trace
      (Tx_begin { t_tid = Trace.next_tid t.trace; t_tx = tx; t_op = t.op })

let tx_commit t ~tx =
  if recording t then
    Trace.push t.trace
      (Tx_commit { t_tid = Trace.next_tid t.trace; t_tx = tx; t_op = t.op })

let tx_abort t ~tx =
  if recording t then
    Trace.push t.trace
      (Tx_abort { t_tid = Trace.next_tid t.trace; t_tx = tx; t_op = t.op })

(* Control dependencies. [if_] branches on a tainted condition; while the
   chosen branch runs, every access is control-dependent on the loads in
   the guard's taint — rules PO2/PO3 read these edges back off the trace. *)

let push_guard t taint =
  t.cd_stack <- taint :: t.cd_stack;
  t.cd <- Taint.union t.cd taint

let pop_guard t =
  match t.cd_stack with
  | [] -> invalid_arg "Ctx.pop_guard: empty guard stack"
  | _ :: rest ->
    t.cd_stack <- rest;
    t.cd <- Taint.union (Taint.union_list rest) t.op_cd

(* Pointer-chase dependency: a load used as an address. Everything the
   current operation does afterwards is only reachable through this
   pointer, so the load guards the rest of the op — this is how the PDG's
   address-level data dependencies surface (e.g. "the table pointer is a
   guardian of the rehashed slots"). Cleared at op boundaries. *)
let read_ptr t ~sid addr =
  burn t;
  let v = Pmem.read_u64 t.pmem addr in
  track t addr 8;
  if recording t then begin
    let tid =
      Trace.add_load t.trace ~sid:(Sid.intern sid) ~addr ~len:8 ~cd:t.cd
        ~op:t.op
    in
    if t.taints then begin
      let taint = Taint.singleton tid in
      t.op_cd <- Taint.union t.op_cd taint;
      t.cd <- Taint.union t.cd taint;
      Tv.make ~taint v
    end
    else Tv.const v
  end
  else Tv.const v

let with_guard t taint f =
  if Taint.is_empty taint || not (recording t) then f ()
  else begin
    push_guard t taint;
    match f () with
    | v -> pop_guard t; v
    | exception e -> pop_guard t; raise e
  end

let if_ t cond ~then_ ~else_ =
  with_guard t (Tv.taint cond) (if Tv.to_bool cond then then_ else else_)

let when_ t cond f =
  if_ t cond ~then_:f ~else_:(fun () -> ())

(* Operation boundaries *)

let op_begin t ~index ~desc =
  t.op <- index;
  t.op_cd <- Taint.empty;
  t.cd <- Taint.union_list t.cd_stack;
  if recording t then
    Trace.push t.trace
      (Op_begin { o_tid = Trace.next_tid t.trace; o_index = index; o_desc = desc })

let op_end t ~index =
  if recording t then
    Trace.push t.trace
      (Op_end { o_tid = Trace.next_tid t.trace; o_index = index })
