(* Interned static-instruction-site identifiers.

   A sid names a static source site ("level_hash:insert.token"); traces
   carry one per event, and the front end (inference, crash-image
   generation, clustering keys, perf-bug site caps) compares and hashes
   sids constantly. Interning turns every sid into a small dense [int]
   backed by one global string table, so the hot paths do integer
   compares and array reads; [to_string] recovers the original label at
   report boundaries, keeping every human/JSON output byte-identical.

   The table is global and append-only: sid ints stay valid for the
   whole process, across traces and engine runs, which is what lets a
   trace store them in unboxed int arrays. Interning is amortized by a
   one-entry memo: OCaml shares each string literal per occurrence, so
   the common pattern — a site's instrumentation running in a loop —
   hits the physical-equality check without touching the hash table. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 512
let names : string Vec.t = Vec.create ~dummy:"" ()

(* id 0 is always the empty sid, so the memo's initial state is valid *)
let () =
  Vec.push names "";
  Hashtbl.add table "" 0

(* last interned (string, id); physical equality on the string *)
let memo_s = ref ""
let memo_i = ref 0

let intern_slow s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = Vec.length names in
    Vec.push names s;
    Hashtbl.add table s i;
    i

let intern s =
  if s == !memo_s then !memo_i
  else begin
    let i = intern_slow s in
    memo_s := s;
    memo_i := i;
    i
  end

let to_string i = Vec.get names i

let count () = Vec.length names

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i

let pp ppf i = Fmt.string ppf (to_string i)
