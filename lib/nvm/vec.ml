(* A minimal growable array. OCaml 5.1 predates Stdlib.Dynarray, and the
   trace recorder needs amortized O(1) append over hundreds of thousands of
   events, so we carry our own. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

(* [capacity] preallocates the backing array: bulk ingest (the traffic
   generator's million-op traces) passes its expected size so the push
   loop never pays a large grow-and-copy. *)
let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max 16 capacity) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

(* Drop the first [k] elements, shifting the rest down in place and
   clearing the tail (so dropped boxed values can be collected). Backs
   Crash_sim's per-line sequence compaction. *)
let drop_front t k =
  if k < 0 || k > t.len then invalid_arg "Vec.drop_front";
  if k > 0 then begin
    Array.blit t.data k t.data 0 (t.len - k);
    Array.fill t.data (t.len - k) k t.dummy;
    t.len <- t.len - k
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let clear t = t.len <- 0
