(* The simulated NVM pool: a bounded, byte-addressable image. In PMDK an
   NVM image is a regular file holding the persistent heap (§4.3 fn. 3);
   here it is either a flat [Bytes.t] or a copy-on-write view: a
   read-only base image plus a cache-line-granular overlay.

   Flat pools back live executions (record / oracle runs). COW pools back
   crash images: [cow] is O(1) instead of an O(pool_size) copy, reads
   fall through to the base, and the first write to a line copies just
   that 64-byte line into the overlay — so a 4-16 MB pool snapshot costs
   only the dirty lines the resumed execution actually touches. The base
   MUST stay unmodified while the overlay is alive; [Crash_sim] guarantees
   this by checking each image before feeding the next trace event, and
   [copy] detaches an image into an independent flat pool.

   Out-of-bounds accesses raise [Fault], the simulated segmentation fault:
   resuming from a corrupted crash image may follow garbage pointers, and
   the paper treats such visible crashes as detected inconsistencies. *)

exception Fault of { addr : int; len : int }

let line_size = 64
let line_of_addr addr = addr lsr 6

type cow = {
  base : Bytes.t;                      (* read-only while overlay lives *)
  overlay : (int, Bytes.t) Hashtbl.t;  (* line -> private line copy *)
  (* one-line lookup cache: replayed ops have strong line locality *)
  mutable cl : int;                    (* cached line, -1 = invalid *)
  mutable cb : Bytes.t;                (* buffer holding that line *)
  mutable co : int;                    (* addr - co indexes into cb *)
  mutable cow_bytes : int;             (* bytes copied into the overlay *)
}

type repr =
  | Flat of Bytes.t
  | Cow of cow

type t = {
  repr : repr;
  size : int;
}

let create size =
  if size <= 0 then invalid_arg "Pmem.create";
  { repr = Flat (Bytes.make size '\000'); size }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    raise (Fault { addr; len })

(* ---------- COW internals ---------- *)

(* Buffer + offset for reading [addr .. addr+len) when it fits one line. *)
let cow_ro c addr =
  let line = addr lsr 6 in
  if c.cl = line then (c.cb, c.co)
  else
    match Hashtbl.find_opt c.overlay line with
    | Some b ->
      let co = line lsl 6 in
      c.cl <- line; c.cb <- b; c.co <- co;
      (b, co)
    | None ->
      c.cl <- line; c.cb <- c.base; c.co <- 0;
      (c.base, 0)

(* Private (writable) copy of [line], created on first write. Re-points
   the read cache at the new copy so a stale base-resident entry for this
   line can never be read back. *)
let cow_rw c size line =
  match Hashtbl.find_opt c.overlay line with
  | Some b -> b
  | None ->
    let start = line lsl 6 in
    let len = min line_size (size - start) in
    let b = Bytes.create len in
    Bytes.blit c.base start b 0 len;
    Hashtbl.add c.overlay line b;
    c.cow_bytes <- c.cow_bytes + len;
    c.cl <- line; c.cb <- b; c.co <- start;
    b

let cow_write c size addr s off len =
  let rec go addr off remaining =
    if remaining > 0 then begin
      let line = addr lsr 6 in
      let line_end = (line + 1) * line_size in
      let chunk = min remaining (line_end - addr) in
      let b = cow_rw c size line in
      Bytes.blit_string s off b (addr - (line lsl 6)) chunk;
      go (addr + chunk) (off + chunk) (remaining - chunk)
    end
  in
  go addr off len

let cow_read c addr len =
  let out = Bytes.create len in
  let rec go addr off remaining =
    if remaining > 0 then begin
      let line_end = ((addr lsr 6) + 1) * line_size in
      let chunk = min remaining (line_end - addr) in
      let buf, base_off = cow_ro c addr in
      Bytes.blit buf (addr - base_off) out off chunk;
      go (addr + chunk) (off + chunk) (remaining - chunk)
    end
  in
  go addr 0 len;
  Bytes.unsafe_to_string out

(* ---------- accesses ---------- *)

let read_u64 t addr =
  check t addr 8;
  match t.repr with
  | Flat buf -> Int64.to_int (Bytes.get_int64_le buf addr)
  | Cow c ->
    if addr land (line_size - 1) <= line_size - 8 then
      let buf, off = cow_ro c addr in
      Int64.to_int (Bytes.get_int64_le buf (addr - off))
    else
      Int64.to_int
        (Bytes.get_int64_le (Bytes.of_string (cow_read c addr 8)) 0)

let write_u64 t addr v =
  check t addr 8;
  match t.repr with
  | Flat buf -> Bytes.set_int64_le buf addr (Int64.of_int v)
  | Cow c ->
    if addr land (line_size - 1) <= line_size - 8 then begin
      let b = cow_rw c t.size (addr lsr 6) in
      Bytes.set_int64_le b (addr land (line_size - 1)) (Int64.of_int v)
    end
    else begin
      let tmp = Bytes.create 8 in
      Bytes.set_int64_le tmp 0 (Int64.of_int v);
      cow_write c t.size addr (Bytes.unsafe_to_string tmp) 0 8
    end

let read_u8 t addr =
  check t addr 1;
  match t.repr with
  | Flat buf -> Char.code (Bytes.get buf addr)
  | Cow c ->
    let buf, off = cow_ro c addr in
    Char.code (Bytes.get buf (addr - off))

let write_u8 t addr v =
  check t addr 1;
  match t.repr with
  | Flat buf -> Bytes.set buf addr (Char.chr (v land 0xff))
  | Cow c ->
    let b = cow_rw c t.size (addr lsr 6) in
    Bytes.set b (addr land (line_size - 1)) (Char.chr (v land 0xff))

let read_bytes t addr len =
  check t addr len;
  match t.repr with
  | Flat buf -> Bytes.sub_string buf addr len
  | Cow c -> cow_read c addr len

let write_bytes t addr s =
  let len = String.length s in
  check t addr len;
  match t.repr with
  | Flat buf -> Bytes.blit_string s 0 buf addr len
  | Cow c -> cow_write c t.size addr s 0 len

(* Write [s[off .. off+len)] at [addr] without building a substring; the
   Trace arena uses this to replay store payloads zero-copy. *)
let write_sub t addr s off len =
  check t addr len;
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Pmem.write_sub";
  match t.repr with
  | Flat buf -> Bytes.blit_string s off buf addr len
  | Cow c -> cow_write c t.size addr s off len

(* ---------- whole-pool operations ---------- *)

let flatten t =
  match t.repr with
  | Flat buf -> Bytes.copy buf
  | Cow c ->
    let out = Bytes.copy c.base in
    Hashtbl.iter
      (fun line b -> Bytes.blit b 0 out (line lsl 6) (Bytes.length b))
      c.overlay;
    out

let snapshot t =
  match t.repr with
  | Flat buf -> Bytes.to_string buf
  | Cow _ -> Bytes.unsafe_to_string (flatten t)

let of_snapshot s =
  { repr = Flat (Bytes.of_string s); size = String.length s }

(* An independent flat pool with the same contents; detaches a COW image
   from its base. *)
let copy t = { repr = Flat (flatten t); size = t.size }

(* O(1) copy-on-write view of [t]. [t]'s bytes MUST NOT change while the
   view is in use (writes to the view never touch [t]). *)
let rec cow t =
  match t.repr with
  | Flat buf ->
    { repr =
        Cow { base = buf; overlay = Hashtbl.create 32;
              cl = -1; cb = Bytes.empty; co = 0; cow_bytes = 0 };
      size = t.size }
  | Cow _ -> cow (copy t)

let is_cow t = match t.repr with Cow _ -> true | Flat _ -> false

(* Lines copied into the overlay so far (0 for a flat pool). *)
let overlay_lines t =
  match t.repr with Flat _ -> 0 | Cow c -> Hashtbl.length c.overlay

(* Bytes physically copied to build this view: O(dirty lines), compared
   to [size t] for the flat-copy path. *)
let cow_bytes t =
  match t.repr with Flat _ -> 0 | Cow c -> c.cow_bytes

(* ---------- content digests ---------- *)

(* FNV-1a-style 64-bit mixing (widths wrap to OCaml's 63-bit int, which
   is fine: digests are only compared for equality). *)
let mix h v = (h lxor v) * 0x100000001b3

let mix_string h s =
  let len = String.length s in
  let h = ref (mix h len) in
  let b = Bytes.unsafe_of_string s in
  let i = ref 0 in
  while !i + 8 <= len do
    h := mix !h (Int64.to_int (Bytes.get_int64_le b !i));
    i := !i + 8
  done;
  while !i < len do
    h := mix !h (Char.code (String.unsafe_get s !i));
    incr i
  done;
  !h

(* [mix_sub h s off len] = [mix_string h (String.sub s off len)] without
   materializing the substring. *)
let mix_sub h s off len =
  let h = ref (mix h len) in
  let b = Bytes.unsafe_of_string s in
  let i = ref 0 in
  while !i + 8 <= len do
    h := mix !h (Int64.to_int (Bytes.get_int64_le b (off + !i)));
    i := !i + 8
  done;
  while !i < len do
    h := mix !h (Char.code (String.unsafe_get s (off + !i)));
    incr i
  done;
  !h

(* 64-bit content digest. For a COW view, pass the digest of the base as
   [seed] (Crash_sim maintains it incrementally): only the overlay lines
   are folded in, so digesting a crash image is O(dirty lines), never
   O(pool_size). Overlay lines are folded in line order, so two views
   over the same base with the same overlay content get equal digests.
   For a flat pool the whole buffer is folded — the O(size) reference
   path, used by tests. *)
let digest ?(seed = 0x1505) t =
  match t.repr with
  | Flat buf -> mix_string seed (Bytes.unsafe_to_string buf)
  | Cow c ->
    let lines = Hashtbl.fold (fun line b acc -> (line, b) :: acc) c.overlay [] in
    let lines = List.sort (fun (a, _) (b, _) -> compare a b) lines in
    List.fold_left
      (fun h (line, b) -> mix_string (mix h line) (Bytes.unsafe_to_string b))
      seed lines
