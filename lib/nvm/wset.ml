(* Word-granular read sets for fence-batched validation.

   A [Wset.t] records which 8-byte pool words a replay has read. The
   batched checker uses it to decide verdict inheritance: two crash
   images of the same fence differ only on the words written by stores
   in the symmetric difference of their extras sets, so if none of
   those words intersect a finished replay's read set, the new image's
   replay is bit-identical and its verdict can be reused.

   Representation: a growable bitmap, one bit per pool word, 32 bits
   per array slot. Stores (and therefore most reads) touch a small
   dense prefix of the pool, so the backing array stays short; it only
   grows when a replay actually dereferences a high address. [clear]
   zeroes just the used prefix, which makes recycling a set across
   fence groups cheap. *)

type t = { mutable bits : int array; mutable hi : int }
(* [hi] is one past the highest slot ever set; slots >= hi are 0. *)

let create () = { bits = Array.make 64 0; hi = 0 }

let clear t =
  if t.hi > 0 then Array.fill t.bits 0 t.hi 0;
  t.hi <- 0

let[@inline] slot_of_word w = w lsr 5
let[@inline] bit_of_word w = 1 lsl (w land 31)

let grow t slot =
  let n = ref (Array.length t.bits) in
  while slot >= !n do
    n := !n * 2
  done;
  let bits = Array.make !n 0 in
  Array.blit t.bits 0 bits 0 t.hi;
  t.bits <- bits

(* Mark every pool word overlapping the byte range [addr, addr+len). *)
let add_range t addr len =
  if len > 0 then begin
    let w0 = addr asr 3 and w1 = (addr + len - 1) asr 3 in
    for w = w0 to w1 do
      let s = slot_of_word w in
      if s >= Array.length t.bits then grow t s;
      t.bits.(s) <- t.bits.(s) lor bit_of_word w;
      if s >= t.hi then t.hi <- s + 1
    done
  end

(* Does the byte range [addr, addr+len) touch any recorded word? *)
let mem_range t addr len =
  len > 0
  &&
  let w0 = addr asr 3 and w1 = (addr + len - 1) asr 3 in
  let rec probe w =
    if w > w1 then false
    else
      let s = slot_of_word w in
      if s < t.hi && t.bits.(s) land bit_of_word w <> 0 then true
      else probe (w + 1)
  in
  probe w0

let is_empty t =
  let rec all_zero i = i >= t.hi || (t.bits.(i) = 0 && all_zero (i + 1)) in
  all_zero 0
