(* Execution traces. Every instrumented NVM access appends one event; the
   Witcher pipeline (inference, crash-image generation, performance-bug
   detection) consumes the trace post hoc, mirroring §4.1 of the paper.

   A [sid] is the static-instruction-id analogue: a stable source-site
   label such as "level_hash:insert.token", interned to an int (Sid.t).
   Events carry the dynamic trace id (tid), which is the event's index in
   the trace.

   Two representations live behind one API:

   - SoA (the default): hot event fields in unboxed int arrays (kind tag,
     sid, address, length, op index) with store payloads appended to one
     shared [Bytes] arena and taints in two parallel arrays. Recording an
     event is a handful of array writes; reading hot fields ([kind_at],
     [addr_at], ...) never allocates. The pipeline's fast paths consume
     these directly.

   - Boxed: the pre-fast-path layout, one allocated [event] per entry in
     a Vec. Kept as the reference cost model for `bench/main.exe
     frontend` and the parity properties; select it with
     [create ~boxed:true] (or [Ctx.create ~boxed:true]).

   [get]/[iter] reconstruct [event] values on demand for either
   representation, so existing consumers are unaffected. *)

type store_ev = {
  s_tid : int;
  s_sid : Sid.t;
  s_addr : int;
  s_len : int;
  s_data : string;
  s_dd : Taint.t;  (* loads the stored value is data-dependent on *)
  s_cd : Taint.t;  (* loads the store is control-dependent on *)
  s_op : int;      (* index of the enclosing test-case operation *)
}

type load_ev = {
  l_tid : int;
  l_sid : Sid.t;
  l_addr : int;
  l_len : int;
  l_cd : Taint.t;
  l_op : int;
}

type event =
  | Load of load_ev
  | Store of store_ev
  | Flush of { f_tid : int; f_sid : Sid.t; f_line : int; f_op : int }
  | Fence of { n_tid : int; n_sid : Sid.t; n_op : int }
  | Log_range of { g_tid : int; g_sid : Sid.t; g_addr : int; g_len : int; g_tx : int; g_op : int }
  | Tx_begin of { t_tid : int; t_tx : int; t_op : int }
  | Tx_commit of { t_tid : int; t_tx : int; t_op : int }
  | Tx_abort of { t_tid : int; t_tx : int; t_op : int }
  | Op_begin of { o_tid : int; o_index : int; o_desc : string }
  | Op_end of { o_tid : int; o_index : int }

(* Event kind tags, the SoA discriminant. Exposed for the index-based
   fast paths (Infer/Crash_gen/Perf walk kinds without reconstructing
   events). *)
let k_load = 0
let k_store = 1
let k_flush = 2
let k_fence = 3
let k_log_range = 4
let k_tx_begin = 5
let k_tx_commit = 6
let k_tx_abort = 7
let k_op_begin = 8
let k_op_end = 9

(* Struct-of-arrays event storage. Field use per kind:
     load:      sid addr      len          op
     store:     sid addr      len          op  aux=arena offset  dd cd
     flush:     sid a=line                 op
     fence:     sid                        op
     log_range: sid addr      len          op  aux=tx
     tx_*:                                 op  aux=tx
     op_begin:      a=desc idx             op=index
     op_end:                               op=index *)
type soa = {
  mutable kind : Bytes.t;
  mutable f_sid : int array;
  mutable f_a : int array;       (* addr / line / desc index *)
  mutable f_b : int array;       (* length *)
  mutable f_op : int array;
  mutable f_aux : int array;     (* arena offset / tx id *)
  mutable f_dd : Taint.t array;
  mutable f_cd : Taint.t array;
  mutable arena : Bytes.t;       (* store payloads, concatenated *)
  mutable arena_len : int;
  descs : string Vec.t;          (* op_begin descriptions *)
}

type repr =
  | Boxed of event Vec.t
  | Soa of soa

type t = {
  repr : repr;
  mutable len : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_flushes : int;
  mutable n_fences : int;
}

let dummy_event = Fence { n_tid = -1; n_sid = 0; n_op = -1 }

let soa_create () =
  { kind = Bytes.create 4096;
    f_sid = Array.make 4096 0;
    f_a = Array.make 4096 0;
    f_b = Array.make 4096 0;
    f_op = Array.make 4096 0;
    f_aux = Array.make 4096 0;
    f_dd = Array.make 4096 Taint.empty;
    f_cd = Array.make 4096 Taint.empty;
    arena = Bytes.create 8192;
    arena_len = 0;
    descs = Vec.create ~dummy:"" }

let create ?(boxed = false) () =
  { repr = (if boxed then Boxed (Vec.create ~dummy:dummy_event) else Soa (soa_create ()));
    len = 0; n_loads = 0; n_stores = 0; n_flushes = 0; n_fences = 0 }

let length t = t.len
let next_tid t = t.len

let grow_int (a : int array) n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let soa_ensure s i =
  let cap = Array.length s.f_sid in
  if i >= cap then begin
    let n = max (2 * cap) (i + 1) in
    let k = Bytes.make n '\000' in
    Bytes.blit s.kind 0 k 0 cap;
    s.kind <- k;
    s.f_sid <- grow_int s.f_sid n;
    s.f_a <- grow_int s.f_a n;
    s.f_b <- grow_int s.f_b n;
    s.f_op <- grow_int s.f_op n;
    s.f_aux <- grow_int s.f_aux n;
    let dd = Array.make n Taint.empty in
    Array.blit s.f_dd 0 dd 0 cap;
    s.f_dd <- dd;
    let cd = Array.make n Taint.empty in
    Array.blit s.f_cd 0 cd 0 cap;
    s.f_cd <- cd
  end

(* Reserve [n] arena bytes; returns the offset they start at. *)
let arena_reserve s n =
  let cap = Bytes.length s.arena in
  if s.arena_len + n > cap then begin
    let newcap = max (2 * cap) (s.arena_len + n) in
    let b = Bytes.create newcap in
    Bytes.blit s.arena 0 b 0 s.arena_len;
    s.arena <- b
  end;
  let off = s.arena_len in
  s.arena_len <- off + n;
  off

(* ---------- fast append API (used by Ctx's recording paths) ---------- *)

let add_load t ~sid ~addr ~len ~cd ~op =
  let tid = t.len in
  t.n_loads <- t.n_loads + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v
       (Load { l_tid = tid; l_sid = sid; l_addr = addr; l_len = len;
               l_cd = cd; l_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_load);
     s.f_sid.(tid) <- sid; s.f_a.(tid) <- addr; s.f_b.(tid) <- len;
     s.f_op.(tid) <- op; s.f_cd.(tid) <- cd);
  t.len <- tid + 1;
  tid

let soa_store_fields s tid ~sid ~addr ~len ~off ~dd ~cd ~op =
  Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_store);
  s.f_sid.(tid) <- sid; s.f_a.(tid) <- addr; s.f_b.(tid) <- len;
  s.f_op.(tid) <- op; s.f_aux.(tid) <- off;
  s.f_dd.(tid) <- dd; s.f_cd.(tid) <- cd

(* Append a store whose payload is [src[src_off .. src_off+len)]. *)
let add_store_sub t ~sid ~addr ~src ~src_off ~len ~dd ~cd ~op =
  let tid = t.len in
  t.n_stores <- t.n_stores + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v
       (Store { s_tid = tid; s_sid = sid; s_addr = addr; s_len = len;
                s_data = String.sub src src_off len; s_dd = dd; s_cd = cd;
                s_op = op })
   | Soa s ->
     soa_ensure s tid;
     let off = arena_reserve s len in
     Bytes.blit_string src src_off s.arena off len;
     soa_store_fields s tid ~sid ~addr ~len ~off ~dd ~cd ~op);
  t.len <- tid + 1;
  tid

(* Append an 8-byte little-endian store without building an intermediate
   string (the u64-write fast path; the value must fit one line). *)
let add_store_u64 t ~sid ~addr ~v ~dd ~cd ~op =
  let tid = t.len in
  t.n_stores <- t.n_stores + 1;
  (match t.repr with
   | Boxed v_ ->
     let b = Bytes.create 8 in
     Bytes.set_int64_le b 0 (Int64.of_int v);
     Vec.push v_
       (Store { s_tid = tid; s_sid = sid; s_addr = addr; s_len = 8;
                s_data = Bytes.unsafe_to_string b; s_dd = dd; s_cd = cd;
                s_op = op })
   | Soa s ->
     soa_ensure s tid;
     let off = arena_reserve s 8 in
     Bytes.set_int64_le s.arena off (Int64.of_int v);
     soa_store_fields s tid ~sid ~addr ~len:8 ~off ~dd ~cd ~op);
  t.len <- tid + 1;
  tid

let add_flush t ~sid ~line ~op =
  let tid = t.len in
  t.n_flushes <- t.n_flushes + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v (Flush { f_tid = tid; f_sid = sid; f_line = line; f_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_flush);
     s.f_sid.(tid) <- sid; s.f_a.(tid) <- line; s.f_op.(tid) <- op);
  t.len <- tid + 1;
  tid

let add_fence t ~sid ~op =
  let tid = t.len in
  t.n_fences <- t.n_fences + 1;
  (match t.repr with
   | Boxed v -> Vec.push v (Fence { n_tid = tid; n_sid = sid; n_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_fence);
     s.f_sid.(tid) <- sid; s.f_op.(tid) <- op);
  t.len <- tid + 1;
  tid

(* ---------- generic append (rare event kinds, tests) ---------- *)

let push t ev =
  match t.repr with
  | Boxed v ->
    (match ev with
     | Load _ -> t.n_loads <- t.n_loads + 1
     | Store _ -> t.n_stores <- t.n_stores + 1
     | Flush _ -> t.n_flushes <- t.n_flushes + 1
     | Fence _ -> t.n_fences <- t.n_fences + 1
     | _ -> ());
    Vec.push v ev;
    t.len <- t.len + 1
  | Soa s ->
    let tid = t.len in
    (match ev with
     | Load l ->
       ignore (add_load t ~sid:l.l_sid ~addr:l.l_addr ~len:l.l_len
                 ~cd:l.l_cd ~op:l.l_op)
     | Store st ->
       ignore (add_store_sub t ~sid:st.s_sid ~addr:st.s_addr ~src:st.s_data
                 ~src_off:0 ~len:(String.length st.s_data) ~dd:st.s_dd
                 ~cd:st.s_cd ~op:st.s_op)
     | Flush f -> ignore (add_flush t ~sid:f.f_sid ~line:f.f_line ~op:f.f_op)
     | Fence f -> ignore (add_fence t ~sid:f.n_sid ~op:f.n_op)
     | Log_range g ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_log_range);
       s.f_sid.(tid) <- g.g_sid; s.f_a.(tid) <- g.g_addr;
       s.f_b.(tid) <- g.g_len; s.f_op.(tid) <- g.g_op; s.f_aux.(tid) <- g.g_tx;
       t.len <- tid + 1
     | Tx_begin { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_begin);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Tx_commit { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_commit);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Tx_abort { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_abort);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Op_begin o ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_op_begin);
       s.f_a.(tid) <- Vec.length s.descs;
       Vec.push s.descs o.o_desc;
       s.f_op.(tid) <- o.o_index;
       t.len <- tid + 1
     | Op_end o ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_op_end);
       s.f_op.(tid) <- o.o_index;
       t.len <- tid + 1)

(* ---------- index-based fast reads (no allocation on SoA) ---------- *)

let kind_at t i =
  match t.repr with
  | Soa s -> Char.code (Bytes.unsafe_get s.kind i)
  | Boxed v ->
    (match Vec.get v i with
     | Load _ -> k_load | Store _ -> k_store | Flush _ -> k_flush
     | Fence _ -> k_fence | Log_range _ -> k_log_range
     | Tx_begin _ -> k_tx_begin | Tx_commit _ -> k_tx_commit
     | Tx_abort _ -> k_tx_abort | Op_begin _ -> k_op_begin
     | Op_end _ -> k_op_end)

let sid_at t i =
  match t.repr with
  | Soa s -> s.f_sid.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_sid | Store s -> s.s_sid | Flush f -> f.f_sid
     | Fence f -> f.n_sid | Log_range g -> g.g_sid
     | Tx_begin _ | Tx_commit _ | Tx_abort _ | Op_begin _ | Op_end _ -> 0)

(* addr for loads/stores/log ranges, line for flushes *)
let addr_at t i =
  match t.repr with
  | Soa s -> s.f_a.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_addr | Store s -> s.s_addr | Flush f -> f.f_line
     | Log_range g -> g.g_addr
     | Fence _ | Tx_begin _ | Tx_commit _ | Tx_abort _ | Op_begin _
     | Op_end _ -> 0)

let len_at t i =
  match t.repr with
  | Soa s -> s.f_b.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_len | Store s -> s.s_len | Log_range g -> g.g_len
     | _ -> 0)

let op_at t i =
  match t.repr with
  | Soa s -> s.f_op.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_op | Store s -> s.s_op | Flush f -> f.f_op
     | Fence f -> f.n_op | Log_range g -> g.g_op
     | Tx_begin x -> x.t_op | Tx_commit x -> x.t_op | Tx_abort x -> x.t_op
     | Op_begin o -> o.o_index | Op_end o -> o.o_index)

let tx_at t i =
  match t.repr with
  | Soa s -> s.f_aux.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Log_range g -> g.g_tx
     | Tx_begin x -> x.t_tx | Tx_commit x -> x.t_tx | Tx_abort x -> x.t_tx
     | _ -> 0)

let dd_at t i =
  match t.repr with
  | Soa s -> s.f_dd.(i)
  | Boxed v -> (match Vec.get v i with Store s -> s.s_dd | _ -> Taint.empty)

let cd_at t i =
  match t.repr with
  | Soa s -> s.f_cd.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> s.s_cd | Load l -> l.l_cd | _ -> Taint.empty)

let store_data t i =
  match t.repr with
  | Soa s -> Bytes.sub_string s.arena s.f_aux.(i) s.f_b.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> s.s_data
     | _ -> invalid_arg "Trace.store_data: not a store")

(* Write store [i]'s payload into [pmem] at its recorded address, straight
   from the arena — no intermediate string on the SoA path. *)
let store_write t i pmem =
  match t.repr with
  | Soa s ->
    (* The alias is read synchronously inside [write_sub] and never
       retained, so the arena's later growth/appends cannot be observed
       through it. *)
    Pmem.write_sub pmem s.f_a.(i) (Bytes.unsafe_to_string s.arena)
      s.f_aux.(i) s.f_b.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> Pmem.write_bytes pmem s.s_addr s.s_data
     | _ -> invalid_arg "Trace.store_write: not a store")

(* Fold store [i] (address + payload) into a content digest; equal to
   [Pmem.mix_string (Pmem.mix h addr) data]. *)
let store_mix t h i =
  match t.repr with
  | Soa s ->
    Pmem.mix_sub (Pmem.mix h s.f_a.(i)) (Bytes.unsafe_to_string s.arena)
      s.f_aux.(i) s.f_b.(i)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> Pmem.mix_string (Pmem.mix h s.s_addr) s.s_data
     | _ -> invalid_arg "Trace.store_mix: not a store")

(* ---------- event reconstruction (compat API) ---------- *)

let soa_get s i =
  match Char.code (Bytes.unsafe_get s.kind i) with
  | 0 ->
    Load { l_tid = i; l_sid = s.f_sid.(i); l_addr = s.f_a.(i);
           l_len = s.f_b.(i); l_cd = s.f_cd.(i); l_op = s.f_op.(i) }
  | 1 ->
    Store { s_tid = i; s_sid = s.f_sid.(i); s_addr = s.f_a.(i);
            s_len = s.f_b.(i);
            s_data = Bytes.sub_string s.arena s.f_aux.(i) s.f_b.(i);
            s_dd = s.f_dd.(i); s_cd = s.f_cd.(i); s_op = s.f_op.(i) }
  | 2 -> Flush { f_tid = i; f_sid = s.f_sid.(i); f_line = s.f_a.(i); f_op = s.f_op.(i) }
  | 3 -> Fence { n_tid = i; n_sid = s.f_sid.(i); n_op = s.f_op.(i) }
  | 4 ->
    Log_range { g_tid = i; g_sid = s.f_sid.(i); g_addr = s.f_a.(i);
                g_len = s.f_b.(i); g_tx = s.f_aux.(i); g_op = s.f_op.(i) }
  | 5 -> Tx_begin { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 6 -> Tx_commit { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 7 -> Tx_abort { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 8 ->
    Op_begin { o_tid = i; o_index = s.f_op.(i);
               o_desc = Vec.get s.descs s.f_a.(i) }
  | _ -> Op_end { o_tid = i; o_index = s.f_op.(i) }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  match t.repr with
  | Boxed v -> Vec.get v i
  | Soa s -> soa_get s i

let iter f t =
  match t.repr with
  | Boxed v -> Vec.iter f v
  | Soa s -> for i = 0 to t.len - 1 do f (soa_get s i) done

let iteri f t =
  match t.repr with
  | Boxed v -> Vec.iteri f v
  | Soa s -> for i = 0 to t.len - 1 do f i (soa_get s i) done

let tid_of = function
  | Load l -> l.l_tid
  | Store s -> s.s_tid
  | Flush f -> f.f_tid
  | Fence f -> f.n_tid
  | Log_range g -> g.g_tid
  | Tx_begin x -> x.t_tid
  | Tx_commit x -> x.t_tid
  | Tx_abort x -> x.t_tid
  | Op_begin o -> o.o_tid
  | Op_end o -> o.o_tid

let op_of = function
  | Load l -> l.l_op
  | Store s -> s.s_op
  | Flush f -> f.f_op
  | Fence f -> f.n_op
  | Log_range g -> g.g_op
  | Tx_begin x -> x.t_op
  | Tx_commit x -> x.t_op
  | Tx_abort x -> x.t_op
  | Op_begin o -> o.o_index
  | Op_end o -> o.o_index

let stats t = (t.n_loads, t.n_stores, t.n_flushes, t.n_fences)

let is_boxed t = match t.repr with Boxed _ -> true | Soa _ -> false

let pp_event ppf = function
  | Load l -> Fmt.pf ppf "%6d L  %a @%d+%d" l.l_tid Sid.pp l.l_sid l.l_addr l.l_len
  | Store s -> Fmt.pf ppf "%6d S  %a @%d+%d" s.s_tid Sid.pp s.s_sid s.s_addr s.s_len
  | Flush f -> Fmt.pf ppf "%6d FL %a line=%d" f.f_tid Sid.pp f.f_sid f.f_line
  | Fence f -> Fmt.pf ppf "%6d FE %a" f.n_tid Sid.pp f.n_sid
  | Log_range g -> Fmt.pf ppf "%6d LG %a @%d+%d tx=%d" g.g_tid Sid.pp g.g_sid g.g_addr g.g_len g.g_tx
  | Tx_begin x -> Fmt.pf ppf "%6d TB tx=%d" x.t_tid x.t_tx
  | Tx_commit x -> Fmt.pf ppf "%6d TC tx=%d" x.t_tid x.t_tx
  | Tx_abort x -> Fmt.pf ppf "%6d TA tx=%d" x.t_tid x.t_tx
  | Op_begin o -> Fmt.pf ppf "%6d OB #%d %s" o.o_tid o.o_index o.o_desc
  | Op_end o -> Fmt.pf ppf "%6d OE #%d" o.o_tid o.o_index
