(* Execution traces. Every instrumented NVM access appends one event; the
   Witcher pipeline (inference, crash-image generation, performance-bug
   detection) consumes the trace post hoc, mirroring §4.1 of the paper.

   A [sid] is the static-instruction-id analogue: a stable source-site
   label such as "level_hash:insert.token", interned to an int (Sid.t).
   Events carry the dynamic trace id (tid), which is the event's index in
   the trace.

   Two representations live behind one API:

   - SoA (the default): hot event fields in unboxed int arrays (kind tag,
     sid, address, length, op index) with store payloads appended to one
     shared [Bytes] arena and taints in two parallel arrays. Recording an
     event is a handful of array writes; reading hot fields ([kind_at],
     [addr_at], ...) never allocates. The pipeline's fast paths consume
     these directly.

   - Boxed: the pre-fast-path layout, one allocated [event] per entry in
     a Vec. Kept as the reference cost model for `bench/main.exe
     frontend` and the parity properties; select it with
     [create ~boxed:true] (or [Ctx.create ~boxed:true]).

   [get]/[iter] reconstruct [event] values on demand for either
   representation, so existing consumers are unaffected. *)

type store_ev = {
  s_tid : int;
  s_sid : Sid.t;
  s_addr : int;
  s_len : int;
  s_data : string;
  s_dd : Taint.t;  (* loads the stored value is data-dependent on *)
  s_cd : Taint.t;  (* loads the store is control-dependent on *)
  s_op : int;      (* index of the enclosing test-case operation *)
}

type load_ev = {
  l_tid : int;
  l_sid : Sid.t;
  l_addr : int;
  l_len : int;
  l_cd : Taint.t;
  l_op : int;
}

type event =
  | Load of load_ev
  | Store of store_ev
  | Flush of { f_tid : int; f_sid : Sid.t; f_line : int; f_op : int }
  | Fence of { n_tid : int; n_sid : Sid.t; n_op : int }
  | Log_range of { g_tid : int; g_sid : Sid.t; g_addr : int; g_len : int; g_tx : int; g_op : int }
  | Tx_begin of { t_tid : int; t_tx : int; t_op : int }
  | Tx_commit of { t_tid : int; t_tx : int; t_op : int }
  | Tx_abort of { t_tid : int; t_tx : int; t_op : int }
  | Op_begin of { o_tid : int; o_index : int; o_desc : string }
  | Op_end of { o_tid : int; o_index : int }

(* Event kind tags, the SoA discriminant. Exposed for the index-based
   fast paths (Infer/Crash_gen/Perf walk kinds without reconstructing
   events). *)
let k_load = 0
let k_store = 1
let k_flush = 2
let k_fence = 3
let k_log_range = 4
let k_tx_begin = 5
let k_tx_commit = 6
let k_tx_abort = 7
let k_op_begin = 8
let k_op_end = 9

(* Struct-of-arrays event storage. Field use per kind:
     load:      sid addr      len          op
     store:     sid addr      len          op  aux=arena offset  dd cd
     flush:     sid a=line                 op
     fence:     sid                        op
     log_range: sid addr      len          op  aux=tx
     tx_*:                                 op  aux=tx
     op_begin:      a=desc idx             op=index
     op_end:                               op=index *)
type soa = {
  mutable kind : Bytes.t;
  mutable f_sid : int array;
  mutable f_a : int array;       (* addr / line / desc index *)
  mutable f_b : int array;       (* length *)
  mutable f_op : int array;
  mutable f_aux : int array;     (* arena offset / tx id *)
  mutable f_dd : Taint.t array;
  mutable f_cd : Taint.t array;
  mutable arena : Bytes.t;       (* store payloads, concatenated *)
  mutable arena_len : int;
  descs : string Vec.t;          (* op_begin descriptions *)
}

(* Ring representation: the streaming pipeline's bounded-memory trace. A
   sequence of fixed-size SoA segments (2^seg_shift events each) indexed
   by slot; [retire_to] recycles a contiguous prefix of segments once the
   engine no longer needs them, so a million-op ingest holds only the
   sliding window (plus pinned segments) live. Tids keep their global
   meaning — accessors on a retired tid raise [Retired] loudly instead of
   silently returning recycled data. *)

exception Retired of { tid : int; floor : int }

let () =
  Printexc.register_printer (function
    | Retired { tid; floor } ->
      Some
        (Printf.sprintf
           "Nvm.Trace.Retired: tid %d is below the live floor %d (the \
            windowed trace recycled its segment; raise the streaming \
            window)"
           tid floor)
    | _ -> None)

type rseg = {
  mutable r_base : int;          (* tid of index 0; -1 while on the free list *)
  r_phys : int;                  (* stable physical id (see [slot_pos]) *)
  r_kind : Bytes.t;
  r_sid : int array;
  r_a : int array;
  r_b : int array;
  r_op : int array;
  r_aux : int array;
  r_dd : Taint.t array;
  r_cd : Taint.t array;
  mutable r_arena : Bytes.t;
  mutable r_arena_len : int;
  r_descs : string Vec.t;
  mutable r_min_taint : int;     (* oldest load any event in the seg references *)
  mutable r_pins : int;          (* external pins (e.g. dirty-store payloads) *)
}

type ring = {
  rg_shift : int;
  rg_mask : int;
  mutable rg_slots : rseg option array;  (* seg_id mod n_slots -> segment *)
  mutable rg_free : rseg list;
  mutable rg_floor : int;                (* first live tid *)
  mutable rg_phys : int;                 (* segments ever allocated *)
  mutable rg_retired : int;              (* segments recycled so far *)
  mutable rg_head : rseg option;         (* append cache: segment of len-1 *)
}

type repr =
  | Boxed of event Vec.t
  | Soa of soa
  | Ring of ring

type t = {
  repr : repr;
  mutable len : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_flushes : int;
  mutable n_fences : int;
}

let dummy_event = Fence { n_tid = -1; n_sid = 0; n_op = -1 }

(* [cap] is a capacity hint (expected event count): a caller that knows
   the trace size up front — the traffic generator does — preallocates
   the columns once instead of paying log2(n) grow-and-copy passes. *)
let soa_create ?(cap = 4096) () =
  let cap = max 4096 cap in
  { kind = Bytes.create cap;
    f_sid = Array.make cap 0;
    f_a = Array.make cap 0;
    f_b = Array.make cap 0;
    f_op = Array.make cap 0;
    f_aux = Array.make cap 0;
    f_dd = Array.make cap Taint.empty;
    f_cd = Array.make cap Taint.empty;
    arena = Bytes.create (2 * cap);
    arena_len = 0;
    descs = Vec.create ~dummy:"" () }

let ring_create shift =
  if shift < 4 || shift > 24 then invalid_arg "Trace.create: ring_shift";
  Ring
    { rg_shift = shift; rg_mask = (1 lsl shift) - 1;
      rg_slots = Array.make 16 None; rg_free = []; rg_floor = 0;
      rg_phys = 0; rg_retired = 0; rg_head = None }

(* [ring_shift]: use the windowed ring representation with segments of
   2^ring_shift events. [events_hint]: expected total event count, used
   to presize the SoA columns. *)
let create ?(boxed = false) ?events_hint ?ring_shift () =
  let repr =
    if boxed then Boxed (Vec.create ~dummy:dummy_event ())
    else
      match ring_shift with
      | Some shift -> ring_create shift
      | None -> Soa (soa_create ?cap:events_hint ())
  in
  { repr; len = 0; n_loads = 0; n_stores = 0; n_flushes = 0; n_fences = 0 }

let length t = t.len
let next_tid t = t.len

let grow_int (a : int array) n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let soa_ensure s i =
  let cap = Array.length s.f_sid in
  if i >= cap then begin
    let n = max (2 * cap) (i + 1) in
    let k = Bytes.make n '\000' in
    Bytes.blit s.kind 0 k 0 cap;
    s.kind <- k;
    s.f_sid <- grow_int s.f_sid n;
    s.f_a <- grow_int s.f_a n;
    s.f_b <- grow_int s.f_b n;
    s.f_op <- grow_int s.f_op n;
    s.f_aux <- grow_int s.f_aux n;
    let dd = Array.make n Taint.empty in
    Array.blit s.f_dd 0 dd 0 cap;
    s.f_dd <- dd;
    let cd = Array.make n Taint.empty in
    Array.blit s.f_cd 0 cd 0 cap;
    s.f_cd <- cd
  end

(* Reserve [n] arena bytes; returns the offset they start at. *)
let arena_reserve s n =
  let cap = Bytes.length s.arena in
  if s.arena_len + n > cap then begin
    let newcap = max (2 * cap) (s.arena_len + n) in
    let b = Bytes.create newcap in
    Bytes.blit s.arena 0 b 0 s.arena_len;
    s.arena <- b
  end;
  let off = s.arena_len in
  s.arena_len <- off + n;
  off

(* ---------- ring internals ---------- *)

let rseg_alloc rg =
  match rg.rg_free with
  | s :: rest ->
    rg.rg_free <- rest;
    s
  | [] ->
    let n = 1 lsl rg.rg_shift in
    let phys = rg.rg_phys in
    rg.rg_phys <- phys + 1;
    { r_base = -1; r_phys = phys;
      r_kind = Bytes.create n;
      r_sid = Array.make n 0; r_a = Array.make n 0; r_b = Array.make n 0;
      r_op = Array.make n 0; r_aux = Array.make n 0;
      r_dd = Array.make n Taint.empty; r_cd = Array.make n Taint.empty;
      r_arena = Bytes.create (n * 8); r_arena_len = 0;
      r_descs = Vec.create ~dummy:"" ();
      r_min_taint = max_int; r_pins = 0 }

(* Live segments always form one contiguous seg-id range (retirement is
   prefix-only), so seg_id mod n_slots is injective as long as the live
   span fits; double the slot table when it would not. *)
let ring_grow_slots rg =
  let slots = Array.make (2 * Array.length rg.rg_slots) None in
  Array.iter
    (function
      | Some s ->
        slots.((s.r_base lsr rg.rg_shift) mod Array.length slots) <- Some s
      | None -> ())
    rg.rg_slots;
  rg.rg_slots <- slots

(* Open the segment that will hold [tid] (a segment boundary). *)
let ring_open rg tid =
  let seg_id = tid lsr rg.rg_shift in
  while seg_id - (rg.rg_floor lsr rg.rg_shift) + 1 > Array.length rg.rg_slots
  do ring_grow_slots rg done;
  let s = rseg_alloc rg in
  s.r_base <- seg_id lsl rg.rg_shift;
  s.r_min_taint <- max_int;
  s.r_pins <- 0;
  s.r_arena_len <- 0;
  Vec.clear s.r_descs;
  rg.rg_slots.(seg_id mod Array.length rg.rg_slots) <- Some s;
  rg.rg_head <- Some s;
  s

(* Segment for appending at [tid]; appends are strictly sequential. *)
let ring_rw rg tid =
  if tid land rg.rg_mask = 0 then ring_open rg tid
  else
    match rg.rg_head with
    | Some s when s.r_base = tid land lnot rg.rg_mask -> s
    | _ -> ring_open rg tid

(* Segment holding live tid [tid]; raises on retired tids. *)
let ring_ro rg tid =
  if tid < rg.rg_floor then raise (Retired { tid; floor = rg.rg_floor });
  match rg.rg_slots.((tid lsr rg.rg_shift) mod Array.length rg.rg_slots) with
  | Some s when s.r_base = tid land lnot rg.rg_mask -> s
  | _ -> raise (Retired { tid; floor = rg.rg_floor })

let ring_note_taint s taint =
  if not (Taint.is_empty taint) then begin
    let m = Taint.min_elt taint in
    if m < s.r_min_taint then s.r_min_taint <- m
  end

let ring_arena_reserve s n =
  let cap = Bytes.length s.r_arena in
  if s.r_arena_len + n > cap then begin
    let newcap = max (2 * cap) (s.r_arena_len + n) in
    let b = Bytes.create newcap in
    Bytes.blit s.r_arena 0 b 0 s.r_arena_len;
    s.r_arena <- b
  end;
  let off = s.r_arena_len in
  s.r_arena_len <- off + n;
  off

(* ---------- windowed retirement (ring only) ---------- *)

let live_floor t = match t.repr with Ring rg -> rg.rg_floor | _ -> 0

let retired_segments t =
  match t.repr with Ring rg -> rg.rg_retired | _ -> 0

let is_live t tid =
  tid >= 0 && tid < t.len
  && (match t.repr with Ring rg -> tid >= rg.rg_floor | _ -> true)

let seg_events t = match t.repr with Ring rg -> 1 lsl rg.rg_shift | _ -> 0

(* Pin/unpin the segment containing [tid]: a pinned segment survives
   [retire_to] no matter how far the window slides. The streaming engine
   pins segments holding dirty (never-persisted) stores, whose payloads
   crash-image materialization may still need arbitrarily late. *)
let pin t tid =
  match t.repr with
  | Ring rg ->
    let s = ring_ro rg tid in
    s.r_pins <- s.r_pins + 1
  | _ -> ()

let unpin t tid =
  match t.repr with
  | Ring rg ->
    let s = ring_ro rg tid in
    if s.r_pins > 0 then s.r_pins <- s.r_pins - 1
  | _ -> ()

(* A stable dense index for live tids: phys-segment id * seg size + the
   offset within the segment. Bounded by [slot_capacity], valid until
   the tid's segment is retired — side tables (Crash_sim's position
   maps) keyed by it stay O(window) instead of O(trace). *)
let slot_pos t tid =
  match t.repr with
  | Ring rg ->
    let s = ring_ro rg tid in
    (s.r_phys lsl rg.rg_shift) lor (tid land rg.rg_mask)
  | _ -> tid

let slot_capacity t =
  match t.repr with Ring rg -> rg.rg_phys lsl rg.rg_shift | _ -> t.len

(* Retire (recycle) the longest contiguous prefix of segments that lie
   wholly below [target], skipping any segment that is pinned or that a
   newer live event still taint-references (a condition spanning the
   window boundary pins its segment). Returns the number of segments
   retired. *)
let retire_to t ~target =
  match t.repr with
  | Boxed _ | Soa _ -> 0
  | Ring rg ->
    if t.len = 0 then 0
    else begin
      let shift = rg.rg_shift in
      let lo = rg.rg_floor lsr shift and hi = (t.len - 1) lsr shift in
      let n = hi - lo + 1 in
      (* min_after.(i - lo) = oldest taint referenced by any segment newer
         than seg i *)
      let min_after = Array.make n max_int in
      let acc = ref max_int in
      for id = hi downto lo do
        min_after.(id - lo) <- !acc;
        (match rg.rg_slots.(id mod Array.length rg.rg_slots) with
         | Some s when s.r_base = id lsl shift ->
           if s.r_min_taint < !acc then acc := s.r_min_taint
         | _ -> ())
      done;
      let retired = ref 0 in
      let continue_ = ref true in
      let id = ref lo in
      (* never retire the head (still-appending) segment *)
      while !continue_ && !id < hi do
        let seg_end = (!id + 1) lsl shift in
        (match rg.rg_slots.(!id mod Array.length rg.rg_slots) with
         | Some s when s.r_base = !id lsl shift ->
           if seg_end <= target && s.r_pins = 0
              && min_after.(!id - lo) >= seg_end
           then begin
             rg.rg_slots.(!id mod Array.length rg.rg_slots) <- None;
             s.r_base <- -1;
             Array.fill s.r_dd 0 (Array.length s.r_dd) Taint.empty;
             Array.fill s.r_cd 0 (Array.length s.r_cd) Taint.empty;
             rg.rg_free <- s :: rg.rg_free;
             rg.rg_floor <- seg_end;
             rg.rg_retired <- rg.rg_retired + 1;
             incr retired
           end
           else continue_ := false
         | _ -> continue_ := false);
        incr id
      done;
      !retired
    end

(* ---------- fast append API (used by Ctx's recording paths) ---------- *)

let add_load t ~sid ~addr ~len ~cd ~op =
  let tid = t.len in
  t.n_loads <- t.n_loads + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v
       (Load { l_tid = tid; l_sid = sid; l_addr = addr; l_len = len;
               l_cd = cd; l_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_load);
     s.f_sid.(tid) <- sid; s.f_a.(tid) <- addr; s.f_b.(tid) <- len;
     s.f_op.(tid) <- op; s.f_cd.(tid) <- cd
   | Ring rg ->
     let s = ring_rw rg tid in
     let i = tid land rg.rg_mask in
     Bytes.unsafe_set s.r_kind i (Char.unsafe_chr k_load);
     s.r_sid.(i) <- sid; s.r_a.(i) <- addr; s.r_b.(i) <- len;
     s.r_op.(i) <- op; s.r_cd.(i) <- cd;
     ring_note_taint s cd);
  t.len <- tid + 1;
  tid

let soa_store_fields s tid ~sid ~addr ~len ~off ~dd ~cd ~op =
  Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_store);
  s.f_sid.(tid) <- sid; s.f_a.(tid) <- addr; s.f_b.(tid) <- len;
  s.f_op.(tid) <- op; s.f_aux.(tid) <- off;
  s.f_dd.(tid) <- dd; s.f_cd.(tid) <- cd

let ring_store_fields rg s tid ~sid ~addr ~len ~off ~dd ~cd ~op =
  let i = tid land rg.rg_mask in
  Bytes.unsafe_set s.r_kind i (Char.unsafe_chr k_store);
  s.r_sid.(i) <- sid; s.r_a.(i) <- addr; s.r_b.(i) <- len;
  s.r_op.(i) <- op; s.r_aux.(i) <- off;
  s.r_dd.(i) <- dd; s.r_cd.(i) <- cd;
  ring_note_taint s dd;
  ring_note_taint s cd

(* Append a store whose payload is [src[src_off .. src_off+len)]. *)
let add_store_sub t ~sid ~addr ~src ~src_off ~len ~dd ~cd ~op =
  let tid = t.len in
  t.n_stores <- t.n_stores + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v
       (Store { s_tid = tid; s_sid = sid; s_addr = addr; s_len = len;
                s_data = String.sub src src_off len; s_dd = dd; s_cd = cd;
                s_op = op })
   | Soa s ->
     soa_ensure s tid;
     let off = arena_reserve s len in
     Bytes.blit_string src src_off s.arena off len;
     soa_store_fields s tid ~sid ~addr ~len ~off ~dd ~cd ~op
   | Ring rg ->
     let s = ring_rw rg tid in
     let off = ring_arena_reserve s len in
     Bytes.blit_string src src_off s.r_arena off len;
     ring_store_fields rg s tid ~sid ~addr ~len ~off ~dd ~cd ~op);
  t.len <- tid + 1;
  tid

(* Append an 8-byte little-endian store without building an intermediate
   string (the u64-write fast path; the value must fit one line). *)
let add_store_u64 t ~sid ~addr ~v ~dd ~cd ~op =
  let tid = t.len in
  t.n_stores <- t.n_stores + 1;
  (match t.repr with
   | Boxed v_ ->
     let b = Bytes.create 8 in
     Bytes.set_int64_le b 0 (Int64.of_int v);
     Vec.push v_
       (Store { s_tid = tid; s_sid = sid; s_addr = addr; s_len = 8;
                s_data = Bytes.unsafe_to_string b; s_dd = dd; s_cd = cd;
                s_op = op })
   | Soa s ->
     soa_ensure s tid;
     let off = arena_reserve s 8 in
     Bytes.set_int64_le s.arena off (Int64.of_int v);
     soa_store_fields s tid ~sid ~addr ~len:8 ~off ~dd ~cd ~op
   | Ring rg ->
     let s = ring_rw rg tid in
     let off = ring_arena_reserve s 8 in
     Bytes.set_int64_le s.r_arena off (Int64.of_int v);
     ring_store_fields rg s tid ~sid ~addr ~len:8 ~off ~dd ~cd ~op);
  t.len <- tid + 1;
  tid

let add_flush t ~sid ~line ~op =
  let tid = t.len in
  t.n_flushes <- t.n_flushes + 1;
  (match t.repr with
   | Boxed v ->
     Vec.push v (Flush { f_tid = tid; f_sid = sid; f_line = line; f_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_flush);
     s.f_sid.(tid) <- sid; s.f_a.(tid) <- line; s.f_op.(tid) <- op
   | Ring rg ->
     let s = ring_rw rg tid in
     let i = tid land rg.rg_mask in
     Bytes.unsafe_set s.r_kind i (Char.unsafe_chr k_flush);
     s.r_sid.(i) <- sid; s.r_a.(i) <- line; s.r_op.(i) <- op);
  t.len <- tid + 1;
  tid

let add_fence t ~sid ~op =
  let tid = t.len in
  t.n_fences <- t.n_fences + 1;
  (match t.repr with
   | Boxed v -> Vec.push v (Fence { n_tid = tid; n_sid = sid; n_op = op })
   | Soa s ->
     soa_ensure s tid;
     Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_fence);
     s.f_sid.(tid) <- sid; s.f_op.(tid) <- op
   | Ring rg ->
     let s = ring_rw rg tid in
     let i = tid land rg.rg_mask in
     Bytes.unsafe_set s.r_kind i (Char.unsafe_chr k_fence);
     s.r_sid.(i) <- sid; s.r_op.(i) <- op);
  t.len <- tid + 1;
  tid

(* ---------- generic append (rare event kinds, tests) ---------- *)

let push t ev =
  match t.repr with
  | Boxed v ->
    (match ev with
     | Load _ -> t.n_loads <- t.n_loads + 1
     | Store _ -> t.n_stores <- t.n_stores + 1
     | Flush _ -> t.n_flushes <- t.n_flushes + 1
     | Fence _ -> t.n_fences <- t.n_fences + 1
     | _ -> ());
    Vec.push v ev;
    t.len <- t.len + 1
  | Soa s ->
    let tid = t.len in
    (match ev with
     | Load l ->
       ignore (add_load t ~sid:l.l_sid ~addr:l.l_addr ~len:l.l_len
                 ~cd:l.l_cd ~op:l.l_op)
     | Store st ->
       ignore (add_store_sub t ~sid:st.s_sid ~addr:st.s_addr ~src:st.s_data
                 ~src_off:0 ~len:(String.length st.s_data) ~dd:st.s_dd
                 ~cd:st.s_cd ~op:st.s_op)
     | Flush f -> ignore (add_flush t ~sid:f.f_sid ~line:f.f_line ~op:f.f_op)
     | Fence f -> ignore (add_fence t ~sid:f.n_sid ~op:f.n_op)
     | Log_range g ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_log_range);
       s.f_sid.(tid) <- g.g_sid; s.f_a.(tid) <- g.g_addr;
       s.f_b.(tid) <- g.g_len; s.f_op.(tid) <- g.g_op; s.f_aux.(tid) <- g.g_tx;
       t.len <- tid + 1
     | Tx_begin { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_begin);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Tx_commit { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_commit);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Tx_abort { t_tx; t_op; _ } ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_tx_abort);
       s.f_op.(tid) <- t_op; s.f_aux.(tid) <- t_tx;
       t.len <- tid + 1
     | Op_begin o ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_op_begin);
       s.f_a.(tid) <- Vec.length s.descs;
       Vec.push s.descs o.o_desc;
       s.f_op.(tid) <- o.o_index;
       t.len <- tid + 1
     | Op_end o ->
       soa_ensure s tid;
       Bytes.unsafe_set s.kind tid (Char.unsafe_chr k_op_end);
       s.f_op.(tid) <- o.o_index;
       t.len <- tid + 1)
  | Ring rg ->
    let tid = t.len in
    let simple kind ~sid ~a ~b ~op ~aux =
      let s = ring_rw rg tid in
      let i = tid land rg.rg_mask in
      Bytes.unsafe_set s.r_kind i (Char.unsafe_chr kind);
      s.r_sid.(i) <- sid; s.r_a.(i) <- a; s.r_b.(i) <- b;
      s.r_op.(i) <- op; s.r_aux.(i) <- aux;
      t.len <- tid + 1
    in
    (match ev with
     | Load l ->
       ignore (add_load t ~sid:l.l_sid ~addr:l.l_addr ~len:l.l_len
                 ~cd:l.l_cd ~op:l.l_op)
     | Store st ->
       ignore (add_store_sub t ~sid:st.s_sid ~addr:st.s_addr ~src:st.s_data
                 ~src_off:0 ~len:(String.length st.s_data) ~dd:st.s_dd
                 ~cd:st.s_cd ~op:st.s_op)
     | Flush f -> ignore (add_flush t ~sid:f.f_sid ~line:f.f_line ~op:f.f_op)
     | Fence f -> ignore (add_fence t ~sid:f.n_sid ~op:f.n_op)
     | Log_range g ->
       simple k_log_range ~sid:g.g_sid ~a:g.g_addr ~b:g.g_len ~op:g.g_op
         ~aux:g.g_tx
     | Tx_begin { t_tx; t_op; _ } ->
       simple k_tx_begin ~sid:0 ~a:0 ~b:0 ~op:t_op ~aux:t_tx
     | Tx_commit { t_tx; t_op; _ } ->
       simple k_tx_commit ~sid:0 ~a:0 ~b:0 ~op:t_op ~aux:t_tx
     | Tx_abort { t_tx; t_op; _ } ->
       simple k_tx_abort ~sid:0 ~a:0 ~b:0 ~op:t_op ~aux:t_tx
     | Op_begin o ->
       let s = ring_rw rg tid in
       let i = tid land rg.rg_mask in
       Bytes.unsafe_set s.r_kind i (Char.unsafe_chr k_op_begin);
       s.r_sid.(i) <- 0; s.r_b.(i) <- 0; s.r_aux.(i) <- 0;
       s.r_a.(i) <- Vec.length s.r_descs;
       Vec.push s.r_descs o.o_desc;
       s.r_op.(i) <- o.o_index;
       t.len <- tid + 1
     | Op_end o -> simple k_op_end ~sid:0 ~a:0 ~b:0 ~op:o.o_index ~aux:0)

(* ---------- index-based fast reads (no allocation on SoA) ---------- *)

let kind_at t i =
  match t.repr with
  | Soa s -> Char.code (Bytes.unsafe_get s.kind i)
  | Ring rg ->
    let s = ring_ro rg i in
    Char.code (Bytes.unsafe_get s.r_kind (i land rg.rg_mask))
  | Boxed v ->
    (match Vec.get v i with
     | Load _ -> k_load | Store _ -> k_store | Flush _ -> k_flush
     | Fence _ -> k_fence | Log_range _ -> k_log_range
     | Tx_begin _ -> k_tx_begin | Tx_commit _ -> k_tx_commit
     | Tx_abort _ -> k_tx_abort | Op_begin _ -> k_op_begin
     | Op_end _ -> k_op_end)

let sid_at t i =
  match t.repr with
  | Soa s -> s.f_sid.(i)
  | Ring rg -> (ring_ro rg i).r_sid.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_sid | Store s -> s.s_sid | Flush f -> f.f_sid
     | Fence f -> f.n_sid | Log_range g -> g.g_sid
     | Tx_begin _ | Tx_commit _ | Tx_abort _ | Op_begin _ | Op_end _ -> 0)

(* addr for loads/stores/log ranges, line for flushes *)
let addr_at t i =
  match t.repr with
  | Soa s -> s.f_a.(i)
  | Ring rg -> (ring_ro rg i).r_a.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_addr | Store s -> s.s_addr | Flush f -> f.f_line
     | Log_range g -> g.g_addr
     | Fence _ | Tx_begin _ | Tx_commit _ | Tx_abort _ | Op_begin _
     | Op_end _ -> 0)

let len_at t i =
  match t.repr with
  | Soa s -> s.f_b.(i)
  | Ring rg -> (ring_ro rg i).r_b.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_len | Store s -> s.s_len | Log_range g -> g.g_len
     | _ -> 0)

let op_at t i =
  match t.repr with
  | Soa s -> s.f_op.(i)
  | Ring rg -> (ring_ro rg i).r_op.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Load l -> l.l_op | Store s -> s.s_op | Flush f -> f.f_op
     | Fence f -> f.n_op | Log_range g -> g.g_op
     | Tx_begin x -> x.t_op | Tx_commit x -> x.t_op | Tx_abort x -> x.t_op
     | Op_begin o -> o.o_index | Op_end o -> o.o_index)

let tx_at t i =
  match t.repr with
  | Soa s -> s.f_aux.(i)
  | Ring rg -> (ring_ro rg i).r_aux.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Log_range g -> g.g_tx
     | Tx_begin x -> x.t_tx | Tx_commit x -> x.t_tx | Tx_abort x -> x.t_tx
     | _ -> 0)

let dd_at t i =
  match t.repr with
  | Soa s -> s.f_dd.(i)
  | Ring rg -> (ring_ro rg i).r_dd.(i land rg.rg_mask)
  | Boxed v -> (match Vec.get v i with Store s -> s.s_dd | _ -> Taint.empty)

let cd_at t i =
  match t.repr with
  | Soa s -> s.f_cd.(i)
  | Ring rg -> (ring_ro rg i).r_cd.(i land rg.rg_mask)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> s.s_cd | Load l -> l.l_cd | _ -> Taint.empty)

let store_data t i =
  match t.repr with
  | Soa s -> Bytes.sub_string s.arena s.f_aux.(i) s.f_b.(i)
  | Ring rg ->
    let s = ring_ro rg i in
    let j = i land rg.rg_mask in
    Bytes.sub_string s.r_arena s.r_aux.(j) s.r_b.(j)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> s.s_data
     | _ -> invalid_arg "Trace.store_data: not a store")

(* Write store [i]'s payload into [pmem] at its recorded address, straight
   from the arena — no intermediate string on the SoA path. *)
let store_write t i pmem =
  match t.repr with
  | Soa s ->
    (* The alias is read synchronously inside [write_sub] and never
       retained, so the arena's later growth/appends cannot be observed
       through it. *)
    Pmem.write_sub pmem s.f_a.(i) (Bytes.unsafe_to_string s.arena)
      s.f_aux.(i) s.f_b.(i)
  | Ring rg ->
    let s = ring_ro rg i in
    let j = i land rg.rg_mask in
    Pmem.write_sub pmem s.r_a.(j) (Bytes.unsafe_to_string s.r_arena)
      s.r_aux.(j) s.r_b.(j)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> Pmem.write_bytes pmem s.s_addr s.s_data
     | _ -> invalid_arg "Trace.store_write: not a store")

(* Fold store [i] (address + payload) into a content digest; equal to
   [Pmem.mix_string (Pmem.mix h addr) data]. *)
let store_mix t h i =
  match t.repr with
  | Soa s ->
    Pmem.mix_sub (Pmem.mix h s.f_a.(i)) (Bytes.unsafe_to_string s.arena)
      s.f_aux.(i) s.f_b.(i)
  | Ring rg ->
    let s = ring_ro rg i in
    let j = i land rg.rg_mask in
    Pmem.mix_sub (Pmem.mix h s.r_a.(j)) (Bytes.unsafe_to_string s.r_arena)
      s.r_aux.(j) s.r_b.(j)
  | Boxed v ->
    (match Vec.get v i with
     | Store s -> Pmem.mix_string (Pmem.mix h s.s_addr) s.s_data
     | _ -> invalid_arg "Trace.store_mix: not a store")

(* ---------- event reconstruction (compat API) ---------- *)

let soa_get s i =
  match Char.code (Bytes.unsafe_get s.kind i) with
  | 0 ->
    Load { l_tid = i; l_sid = s.f_sid.(i); l_addr = s.f_a.(i);
           l_len = s.f_b.(i); l_cd = s.f_cd.(i); l_op = s.f_op.(i) }
  | 1 ->
    Store { s_tid = i; s_sid = s.f_sid.(i); s_addr = s.f_a.(i);
            s_len = s.f_b.(i);
            s_data = Bytes.sub_string s.arena s.f_aux.(i) s.f_b.(i);
            s_dd = s.f_dd.(i); s_cd = s.f_cd.(i); s_op = s.f_op.(i) }
  | 2 -> Flush { f_tid = i; f_sid = s.f_sid.(i); f_line = s.f_a.(i); f_op = s.f_op.(i) }
  | 3 -> Fence { n_tid = i; n_sid = s.f_sid.(i); n_op = s.f_op.(i) }
  | 4 ->
    Log_range { g_tid = i; g_sid = s.f_sid.(i); g_addr = s.f_a.(i);
                g_len = s.f_b.(i); g_tx = s.f_aux.(i); g_op = s.f_op.(i) }
  | 5 -> Tx_begin { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 6 -> Tx_commit { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 7 -> Tx_abort { t_tid = i; t_tx = s.f_aux.(i); t_op = s.f_op.(i) }
  | 8 ->
    Op_begin { o_tid = i; o_index = s.f_op.(i);
               o_desc = Vec.get s.descs s.f_a.(i) }
  | _ -> Op_end { o_tid = i; o_index = s.f_op.(i) }

let ring_get rg tid =
  let s = ring_ro rg tid in
  let i = tid land rg.rg_mask in
  match Char.code (Bytes.unsafe_get s.r_kind i) with
  | 0 ->
    Load { l_tid = tid; l_sid = s.r_sid.(i); l_addr = s.r_a.(i);
           l_len = s.r_b.(i); l_cd = s.r_cd.(i); l_op = s.r_op.(i) }
  | 1 ->
    Store { s_tid = tid; s_sid = s.r_sid.(i); s_addr = s.r_a.(i);
            s_len = s.r_b.(i);
            s_data = Bytes.sub_string s.r_arena s.r_aux.(i) s.r_b.(i);
            s_dd = s.r_dd.(i); s_cd = s.r_cd.(i); s_op = s.r_op.(i) }
  | 2 -> Flush { f_tid = tid; f_sid = s.r_sid.(i); f_line = s.r_a.(i);
                 f_op = s.r_op.(i) }
  | 3 -> Fence { n_tid = tid; n_sid = s.r_sid.(i); n_op = s.r_op.(i) }
  | 4 ->
    Log_range { g_tid = tid; g_sid = s.r_sid.(i); g_addr = s.r_a.(i);
                g_len = s.r_b.(i); g_tx = s.r_aux.(i); g_op = s.r_op.(i) }
  | 5 -> Tx_begin { t_tid = tid; t_tx = s.r_aux.(i); t_op = s.r_op.(i) }
  | 6 -> Tx_commit { t_tid = tid; t_tx = s.r_aux.(i); t_op = s.r_op.(i) }
  | 7 -> Tx_abort { t_tid = tid; t_tx = s.r_aux.(i); t_op = s.r_op.(i) }
  | 8 ->
    Op_begin { o_tid = tid; o_index = s.r_op.(i);
               o_desc = Vec.get s.r_descs s.r_a.(i) }
  | _ -> Op_end { o_tid = tid; o_index = s.r_op.(i) }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  match t.repr with
  | Boxed v -> Vec.get v i
  | Soa s -> soa_get s i
  | Ring rg -> ring_get rg i

(* On the ring representation, [iter]/[iteri] cover only the live window
   (retired prefixes are gone by construction). *)
let iter f t =
  match t.repr with
  | Boxed v -> Vec.iter f v
  | Soa s -> for i = 0 to t.len - 1 do f (soa_get s i) done
  | Ring rg -> for i = rg.rg_floor to t.len - 1 do f (ring_get rg i) done

let iteri f t =
  match t.repr with
  | Boxed v -> Vec.iteri f v
  | Soa s -> for i = 0 to t.len - 1 do f i (soa_get s i) done
  | Ring rg -> for i = rg.rg_floor to t.len - 1 do f i (ring_get rg i) done

let tid_of = function
  | Load l -> l.l_tid
  | Store s -> s.s_tid
  | Flush f -> f.f_tid
  | Fence f -> f.n_tid
  | Log_range g -> g.g_tid
  | Tx_begin x -> x.t_tid
  | Tx_commit x -> x.t_tid
  | Tx_abort x -> x.t_tid
  | Op_begin o -> o.o_tid
  | Op_end o -> o.o_tid

let op_of = function
  | Load l -> l.l_op
  | Store s -> s.s_op
  | Flush f -> f.f_op
  | Fence f -> f.n_op
  | Log_range g -> g.g_op
  | Tx_begin x -> x.t_op
  | Tx_commit x -> x.t_op
  | Tx_abort x -> x.t_op
  | Op_begin o -> o.o_index
  | Op_end o -> o.o_index

let stats t = (t.n_loads, t.n_stores, t.n_flushes, t.n_fences)

let is_boxed t = match t.repr with Boxed _ -> true | _ -> false
let is_ring t = match t.repr with Ring _ -> true | _ -> false

let pp_event ppf = function
  | Load l -> Fmt.pf ppf "%6d L  %a @%d+%d" l.l_tid Sid.pp l.l_sid l.l_addr l.l_len
  | Store s -> Fmt.pf ppf "%6d S  %a @%d+%d" s.s_tid Sid.pp s.s_sid s.s_addr s.s_len
  | Flush f -> Fmt.pf ppf "%6d FL %a line=%d" f.f_tid Sid.pp f.f_sid f.f_line
  | Fence f -> Fmt.pf ppf "%6d FE %a" f.n_tid Sid.pp f.n_sid
  | Log_range g -> Fmt.pf ppf "%6d LG %a @%d+%d tx=%d" g.g_tid Sid.pp g.g_sid g.g_addr g.g_len g.g_tx
  | Tx_begin x -> Fmt.pf ppf "%6d TB tx=%d" x.t_tid x.t_tx
  | Tx_commit x -> Fmt.pf ppf "%6d TC tx=%d" x.t_tid x.t_tx
  | Tx_abort x -> Fmt.pf ppf "%6d TA tx=%d" x.t_tid x.t_tx
  | Op_begin o -> Fmt.pf ppf "%6d OB #%d %s" o.o_tid o.o_index o.o_desc
  | Op_end o -> Fmt.pf ppf "%6d OE #%d" o.o_tid o.o_index
