(* The cache/NVM persistence state machine (§4.3.1). Walking a trace in
   program order, it tracks for every cache line which stores are

   - dirty: written but with no durability guarantee — the line may be
     evicted (persisted) at any moment, or lost on crash;
   - pending: covered by a flush since they were written — durable after
     the next fence;
   - guaranteed: flushed and fenced — durable in every reachable crash
     state.

   Feasibility of a crash NVM state follows the two x86 rules the paper
   states: a fence makes all previously flushed stores durable, and stores
   to the same cache line persist in program order (x86-TSO), so a chosen
   persist-set must be per-line prefix-closed and must contain every
   guaranteed store.

   The simulator is backed by the trace it walks: store positions live in
   two tid-indexed int arrays and store payloads are read straight out of
   the trace's arena ([Trace.store_write]/[store_mix]), so feeding a store
   is two array writes and persisting one is an arena blit — no per-store
   hash table entries or event reconstruction on the hot path. Feed events
   with [on_index] (by trace index, allocation-free) or the [on_event]
   compatibility wrapper.

   The module incrementally maintains [persisted], the pool image holding
   exactly the guaranteed stores; [materialize] returns an O(1)
   copy-on-write view of it with the chosen feasible set of extra
   (evicted-early) stores applied to the overlay — O(extras) work instead
   of an O(pool_size) copy. Same-line stores become guaranteed in program
   order, so the incremental application yields the correct final bytes.

   Lifetime: a materialized image aliases [persisted] as its read-only
   base, so it is valid until the next [on_event] (which may mutate
   [persisted] at a fence). The pipeline checks each image before feeding
   the next trace event; callers that retain an image longer must detach
   it with [Pmem.copy]. *)

(* Per-line sequence indices are absolute (count stores ever fed on the
   line); [dropped] entries have been compacted off the front of [seq]
   once guaranteed — queries never look below [guaranteed_upto], so the
   physical Vec holds only the not-yet-guaranteed tail plus a bounded
   guaranteed fringe. *)
type line_state = {
  seq : int Vec.t;                 (* store tids on this line, program order *)
  mutable dropped : int;           (* guaranteed prefix compacted off [seq] *)
  mutable pending_upto : int;      (* seq prefix covered by a flush *)
  mutable guaranteed_upto : int;   (* seq prefix that is durable *)
}

type t = {
  trace : Trace.t;
  ring : bool;                     (* windowed trace: key side tables by slot *)
  lines : (int, line_state) Hashtbl.t;
  mutable pos_line : int array;    (* store slot -> cache line, -1 = not fed *)
  mutable pos_idx : int array;     (* store slot -> index in line's seq *)
  mutable touched : int list;      (* lines flushed since last fence *)
  persisted : Pmem.t;
  mutable n_guaranteed : int;
  mutable n_dirty : int;           (* stores with no guarantee yet *)
  mutable images_materialized : int;
  mutable bytes_materialized : int; (* bytes written to build images *)
  mutable digest : int;            (* digest of [persisted]'s content *)
  mutable on_guarantee : (int -> unit) option;
      (* called with each store tid as it becomes guaranteed; the streaming
         engine unpins the store's trace segment here *)
}

let create ~trace ~pool_size =
  let ring = Trace.is_ring trace in
  let n = max 16 (if ring then Trace.slot_capacity trace else Trace.length trace) in
  { trace;
    ring;
    lines = Hashtbl.create 1024;
    pos_line = Array.make n (-1);
    pos_idx = Array.make n (-1);
    touched = [];
    persisted = Pmem.create pool_size;
    n_guaranteed = 0;
    n_dirty = 0;
    images_materialized = 0;
    bytes_materialized = 0;
    digest = 0x1505;
    on_guarantee = None }

let set_on_guarantee t f = t.on_guarantee <- Some f

(* Position-map key. Over a windowed (ring) trace, tid-indexed arrays
   would grow with the whole run; [Trace.slot_pos] is dense over the live
   window, so the maps stay O(window). A recycled slot is overwritten when
   its new store is fed; queries are only meaningful for live tids. *)
let[@inline] pos t tid = if t.ring then Trace.slot_pos t.trace tid else tid

let ensure t p =
  let cap = Array.length t.pos_idx in
  if p >= cap then begin
    let n = max (2 * cap) (p + 1) in
    let grow a =
      let b = Array.make n (-1) in
      Array.blit a 0 b 0 cap;
      b
    in
    t.pos_line <- grow t.pos_line;
    t.pos_idx <- grow t.pos_idx
  end

let line_state t line =
  match Hashtbl.find_opt t.lines line with
  | Some ls -> ls
  | None ->
    let ls = { seq = Vec.create ~dummy:(-1) (); dropped = 0;
               pending_upto = 0; guaranteed_upto = 0 } in
    Hashtbl.add t.lines line ls;
    ls

(* Absolute number of stores ever fed on the line / absolute get. *)
let[@inline] seq_len ls = ls.dropped + Vec.length ls.seq
let[@inline] seq_get ls i = Vec.get ls.seq (i - ls.dropped)

(* Keep the guaranteed fringe retained in [seq] bounded: once it exceeds
   this, the prefix is blitted away. Amortized O(1) per store. *)
let compact_threshold = 1024

let compact ls =
  let excess = ls.guaranteed_upto - ls.dropped in
  if excess >= compact_threshold then begin
    Vec.drop_front ls.seq excess;
    ls.dropped <- ls.guaranteed_upto
  end

let on_store_tid t tid =
  let line = Pmem.line_of_addr (Trace.addr_at t.trace tid) in
  let ls = line_state t line in
  let p = pos t tid in
  ensure t p;
  t.pos_line.(p) <- line;
  t.pos_idx.(p) <- seq_len ls;
  Vec.push ls.seq tid;
  t.n_dirty <- t.n_dirty + 1

let on_flush t line =
  let ls = line_state t line in
  if ls.pending_upto < seq_len ls then begin
    ls.pending_upto <- seq_len ls;
    t.touched <- line :: t.touched
  end

let on_fence t =
  Obs.Metrics.incr "crash_sim.fences";
  List.iter
    (fun line ->
       let ls = line_state t line in
       for i = ls.guaranteed_upto to ls.pending_upto - 1 do
         let tid = seq_get ls i in
         Trace.store_write t.trace tid t.persisted;
         (* Incremental content digest of [persisted]: same guaranteed
            store sequence => same digest. Identical content reached by
            different sequences may digest differently, which only costs
            a missed memo hit, never a wrong one. *)
         t.digest <- Trace.store_mix t.trace t.digest tid;
         t.n_guaranteed <- t.n_guaranteed + 1;
         t.n_dirty <- t.n_dirty - 1;
         match t.on_guarantee with None -> () | Some f -> f tid
       done;
       if ls.guaranteed_upto < ls.pending_upto then begin
         ls.guaranteed_upto <- ls.pending_upto;
         compact ls
       end)
    t.touched;
  t.touched <- []

(* Feed the event at trace index [i]; non-persistence events are ignored.
   The fast path: dispatches on the kind tag without building an event. *)
let on_index t i =
  let k = Trace.kind_at t.trace i in
  if k = Trace.k_store then on_store_tid t i
  else if k = Trace.k_flush then on_flush t (Trace.addr_at t.trace i)
  else if k = Trace.k_fence then on_fence t

(* Feed any trace event (compatibility wrapper; events must come from the
   trace this simulator was created over). *)
let on_event t = function
  | Trace.Store s -> on_store_tid t s.s_tid
  | Trace.Flush f -> on_flush t f.f_line
  | Trace.Fence _ -> on_fence t
  | Trace.Load _ | Trace.Log_range _ | Trace.Tx_begin _ | Trace.Tx_commit _
  | Trace.Tx_abort _ | Trace.Op_begin _ | Trace.Op_end _ -> ()

(* A tid below a windowed trace's live floor: its segment was retired,
   which the streaming engine only allows once every store in it is
   guaranteed (dirty stores pin their segment). Queries must not touch
   its (recycled) slot, and may answer from the invariant instead. *)
let[@inline] retired t tid = t.ring && tid < Trace.live_floor t.trace

let fed t tid =
  tid >= 0
  && (retired t tid
      || (let p = pos t tid in
          p < Array.length t.pos_idx && t.pos_idx.(p) >= 0))

let is_guaranteed t tid =
  retired t tid
  || (fed t tid
      && (let p = pos t tid in
          let ls = Hashtbl.find t.lines t.pos_line.(p) in
          t.pos_idx.(p) < ls.guaranteed_upto))

let store_event t tid =
  if retired t tid || not (fed t tid) then None
  else match Trace.get t.trace tid with
    | Trace.Store s -> Some s
    | _ -> None

let n_guaranteed t = t.n_guaranteed
let n_dirty t = t.n_dirty

(* All not-yet-guaranteed stores on [tid]'s line up to and including it:
   the minimal extra persist-set making [tid] durable (x86-TSO per-line
   order). Returns tids in program order. *)
let closure_one t tid =
  if retired t tid || not (fed t tid) then []
  else begin
    let p = pos t tid in
    let ls = Hashtbl.find t.lines t.pos_line.(p) in
    let p_idx = t.pos_idx.(p) in
    let rec collect i acc =
      if i > p_idx then List.rev acc
      else collect (i + 1) (seq_get ls i :: acc)
    in
    collect ls.guaranteed_upto []
  end

(* Minimal feasible extra persist-set making every tid in [persist]
   durable while leaving every tid in [avoid] non-durable. [None] if a
   requirement conflicts: an [avoid] store is already guaranteed or is
   forced in by per-line prefix closure.

   The all-singletons case — exactly what [Crash_gen.emit] issues for
   every candidate — avoids the sorted-merge machinery entirely:
   [closure_one] already returns a sorted distinct list (per-line seq
   positions ascend with tid), so the closure IS the answer and the
   avoid check is one membership scan. *)
let feasible_extras t ~persist ~avoid =
  if List.exists (is_guaranteed t) avoid then None
  else
    match persist with
    | [ p ] ->
      let extras = closure_one t p in
      if List.exists (fun a -> List.memq a extras) avoid then None
      else Some extras
    | _ ->
      let module IS = Set.Make (Int) in
      let extras =
        List.fold_left
          (fun acc tid -> IS.union acc (IS.of_list (closure_one t tid)))
          IS.empty persist
      in
      if List.exists (fun a -> IS.mem a extras) avoid then None
      else Some (IS.elements extras)

(* Concrete crash image: guaranteed stores plus [extras] (program order).
   Returns a COW view over [persisted]; see the lifetime note above. *)
let materialize t ~extras =
  let img = Pmem.cow t.persisted in
  List.iter
    (fun tid ->
       if fed t tid then begin
         Trace.store_write t.trace tid img;
         let len = Trace.len_at t.trace tid in
         t.bytes_materialized <- t.bytes_materialized + len;
         Obs.Metrics.incr ~n:len "crash_sim.bytes_materialized"
       end)
    (List.sort compare extras);
  t.images_materialized <- t.images_materialized + 1;
  Obs.Metrics.incr "crash_sim.images_materialized";
  (* COW build cost of this image: how many 64B lines the extras dirtied.
     The distribution backs the zero-copy scaling argument (DESIGN §6). *)
  Obs.Metrics.observe "crash_sim.overlay_lines" (Pmem.overlay_lines img);
  img

(* The pre-COW materialization path: a full flat copy of the pool. Kept as
   the reference for bit-exactness tests and the legacy-cost baseline in
   `bench/main.exe validate`; the pipeline itself always uses
   [materialize]. *)
let materialize_copy t ~extras =
  let img = Pmem.copy t.persisted in
  List.iter
    (fun tid -> if fed t tid then Trace.store_write t.trace tid img)
    (List.sort compare extras);
  img

let images_materialized t = t.images_materialized
let bytes_materialized t = t.bytes_materialized

let digest t = t.digest

(* Digest of a crash image materialized from [persisted]: the base digest
   plus the image's overlay (the chosen extras), O(extras) work. Images
   with equal digests hold byte-identical guaranteed content, so a
   verdict computed for one is valid for the other (same crash op). *)
let image_digest t img = Pmem.digest ~seed:t.digest img

(* Statistics used by the Yat test-space estimator: number of dirty (not
   yet guaranteed) stores per line, at the current point. *)
let dirty_per_line t =
  Hashtbl.fold
    (fun _line ls acc ->
       let d = seq_len ls - ls.guaranteed_upto in
       if d > 0 then d :: acc else acc)
    t.lines []

(* A uniformly random feasible extra persist-set: an independent random
   prefix of the dirty stores of every line (per-line prefix closure is
   feasibility). Used by the §7.5 random-exploration baseline. *)
let random_feasible_extras t rng =
  Hashtbl.fold
    (fun _line ls acc ->
       let d = seq_len ls - ls.guaranteed_upto in
       if d = 0 then acc
       else begin
         let k = Random.State.int rng (d + 1) in
         let rec take i acc =
           if i >= k then acc
           else take (i + 1) (seq_get ls (ls.guaranteed_upto + i) :: acc)
         in
         take 0 acc
       end)
    t.lines []

(* Every feasible extra persist-set at the current point, up to [limit]
   (cartesian product of per-line prefixes). Exhaustive-testing (Yat)
   support for tiny traces. *)
let all_feasible_extras t ~limit =
  let per_line =
    Hashtbl.fold
      (fun _line ls acc ->
         let d = seq_len ls - ls.guaranteed_upto in
         if d = 0 then acc
         else begin
           let prefixes =
             List.init (d + 1) (fun k ->
                 List.init k (fun i -> seq_get ls (ls.guaranteed_upto + i)))
           in
           prefixes :: acc
         end)
      t.lines []
  in
  let rec product acc = function
    | [] -> acc
    | prefixes :: rest ->
      if List.length acc * List.length prefixes > limit then
        (* truncate: keep the empty-prefix choice plus as many as fit *)
        let budget = max 1 (limit / max 1 (List.length acc)) in
        let prefixes = List.filteri (fun i _ -> i < budget) prefixes in
        product
          (List.concat_map (fun set -> List.map (fun p -> p @ set) prefixes) acc)
          rest
      else
        product
          (List.concat_map (fun set -> List.map (fun p -> p @ set) prefixes) acc)
          rest
  in
  product [ [] ] per_line
