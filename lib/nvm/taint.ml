(* Taint sets identify the NVM loads a value derives from. Each element is
   the trace id (tid) of a Load event. Taint flows through Tv arithmetic
   and through control-dependency scopes in Ctx; a Store event records the
   taint of the stored value (data dependency) and of the enclosing branch
   guards (control dependency). These edges are exactly the Persistence
   Program Dependence Graph of Witcher §4.2.2.

   Representation: hybrid. Nearly every taint in a real trace carries 0-2
   elements (a load feeding a store, a guard pair), so the common case is
   a flat sorted array of distinct tids — no per-node allocation, unions
   are a single merge pass, membership is a binary search. Deep guard
   nests and long dependence chains, however, accumulate sets whose
   elements are dense in tid-space (consecutive loads of one op); those
   switch to a word bitmap where union and intersection run one OR/AND
   per 32 tids.

   The representation is canonical — a pure function of the set: bitmaps
   are used exactly when the set has more than [small_max] elements and
   spans at most one bitmap word per element (so a bitmap is never larger
   than the array it replaces). Canonical form keeps [equal] a cheap
   structural comparison. Bitmap bases are 32-aligned and the word array
   is trimmed (first and last words non-zero), which makes the encoding
   of a given set unique. The empty set is one shared value, and unions
   return an argument physically whenever the result equals it, so the
   common guard-stack pattern (re-unioning an unchanged scope) allocates
   nothing. *)

type bits = { base : int; words : int array; card : int }
(* base multiple of 32; bit b of words.(i) = member base + 32i + b;
   words trimmed at both ends; card > small_max; length words <= card *)

type t =
  | Small of int array (* sorted, distinct *)
  | Bits of bits

let small_max = 8

let empty : t = Small [||]

let is_empty = function Small a -> Array.length a = 0 | Bits _ -> false

let singleton x : t = Small [| x |]

let cardinal = function Small a -> Array.length a | Bits b -> b.card

let[@inline] pc32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24

(* Canonical constructor from a sorted distinct array. *)
let of_sorted (arr : int array) : t =
  let n = Array.length arr in
  if n = 0 then empty
  else if n <= small_max then Small arr
  else begin
    let lo = arr.(0) lsr 5 and hi = arr.(n - 1) lsr 5 in
    if hi - lo + 1 > n then Small arr
    else begin
      let words = Array.make (hi - lo + 1) 0 in
      Array.iter
        (fun x ->
           let w = (x lsr 5) - lo in
           words.(w) <- words.(w) lor (1 lsl (x land 31)))
        arr;
      Bits { base = lo lsl 5; words; card = n }
    end
  end

let bits_elements base (words : int array) card =
  let out = Array.make card 0 and k = ref 0 in
  for i = 0 to Array.length words - 1 do
    let w = Array.unsafe_get words i in
    if w <> 0 then
      for b = 0 to 31 do
        if w land (1 lsl b) <> 0 then begin
          Array.unsafe_set out !k (base + (i lsl 5) + b);
          incr k
        end
      done
  done;
  out

let mem x (t : t) =
  match t with
  | Small a ->
    let lo = ref 0 and hi = ref (Array.length a) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let v = Array.unsafe_get a mid in
      if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
    done;
    !found
  | Bits b ->
    x >= b.base
    &&
    let w = (x - b.base) lsr 5 in
    w < Array.length b.words && b.words.(w) land (1 lsl (x land 31)) <> 0

(* Merge two sorted distinct arrays; physical subset reuse on [a]/[b]. *)
let union_arrays (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
    if x < y then (Array.unsafe_set out !k x; incr i)
    else if y < x then (Array.unsafe_set out !k y; incr j)
    else (Array.unsafe_set out !k x; incr i; incr j);
    incr k
  done;
  while !i < la do
    Array.unsafe_set out !k (Array.unsafe_get a !i); incr i; incr k
  done;
  while !j < lb do
    Array.unsafe_set out !k (Array.unsafe_get b !j); incr j; incr k
  done;
  if !k = la then a
  else if !k = lb then b
  else if !k = la + lb then out
  else Array.sub out 0 !k

(* sub, shifted [off] words into sup, is bitwise contained in sup. *)
let subset_words (sub : int array) off (sup : int array) =
  let ok = ref true in
  for i = 0 to Array.length sub - 1 do
    let s = Array.unsafe_get sub i in
    if Array.unsafe_get sup (off + i) land s <> s then ok := false
  done;
  !ok

(* Union of a Small payload into a Bits set; [tb] is the Bits value for
   physical reuse when s ⊆ b. *)
let union_small_bits (s : int array) b tb : t =
  let ls = Array.length s in
  if ls = 0 then tb
  else begin
    let missing = ref 0 in
    Array.iter
      (fun x ->
         let inb =
           x >= b.base
           &&
           let w = (x - b.base) lsr 5 in
           w < Array.length b.words && b.words.(w) land (1 lsl (x land 31)) <> 0
         in
         if not inb then incr missing)
      s;
    if !missing = 0 then tb
    else begin
      let b_lo = b.base lsr 5 in
      let b_hi = b_lo + Array.length b.words - 1 in
      let lo = min (s.(0) lsr 5) b_lo and hi = max (s.(ls - 1) lsr 5) b_hi in
      let card = b.card + !missing in
      if hi - lo + 1 <= card then begin
        let words = Array.make (hi - lo + 1) 0 in
        Array.blit b.words 0 words (b_lo - lo) (Array.length b.words);
        Array.iter
          (fun x ->
             let w = (x lsr 5) - lo in
             words.(w) <- words.(w) lor (1 lsl (x land 31)))
          s;
        Bits { base = lo lsl 5; words; card }
      end
      else
        of_sorted (union_arrays s (bits_elements b.base b.words b.card))
    end
  end

let union (ta : t) (tb : t) : t =
  if ta == tb then ta
  else
    match ta, tb with
    | Small a, Small b ->
      let la = Array.length a and lb = Array.length b in
      if la = 0 then tb
      else if lb = 0 then ta
      else
        let r = union_arrays a b in
        if r == a then ta else if r == b then tb else of_sorted r
    | Small s, Bits b -> union_small_bits s b tb
    | Bits b, Small s -> union_small_bits s b ta
    | Bits a, Bits b ->
      let a_lo = a.base lsr 5 and b_lo = b.base lsr 5 in
      let a_n = Array.length a.words and b_n = Array.length b.words in
      let a_hi = a_lo + a_n - 1 and b_hi = b_lo + b_n - 1 in
      if b_lo >= a_lo && b_hi <= a_hi && subset_words b.words (b_lo - a_lo) a.words
      then ta
      else if a_lo >= b_lo && a_hi <= b_hi
              && subset_words a.words (a_lo - b_lo) b.words
      then tb
      else begin
        let lo = min a_lo b_lo and hi = max a_hi b_hi in
        let words = Array.make (hi - lo + 1) 0 in
        Array.blit a.words 0 words (a_lo - lo) a_n;
        let card = ref a.card in
        for i = 0 to b_n - 1 do
          let k = b_lo - lo + i in
          let before = Array.unsafe_get words k in
          let w = before lor Array.unsafe_get b.words i in
          Array.unsafe_set words k w;
          card := !card + pc32 w - pc32 before
        done;
        if hi - lo + 1 <= !card then Bits { base = lo lsl 5; words; card = !card }
        else of_sorted (bits_elements (lo lsl 5) words !card)
      end

let add x t = union (singleton x) t

(* Intersection: one AND per 32 tids on the bitmap path. Used by the
   batched checker's dependence queries; small sets fall back to a merge
   walk. *)
let inter (ta : t) (tb : t) : t =
  if ta == tb then ta
  else
    match ta, tb with
    | Small a, Small b ->
      let la = Array.length a and lb = Array.length b in
      if la = 0 then ta
      else if lb = 0 then tb
      else begin
        let out = Array.make (min la lb) 0 in
        let i = ref 0 and j = ref 0 and k = ref 0 in
        while !i < la && !j < lb do
          let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
          if x < y then incr i
          else if y < x then incr j
          else (Array.unsafe_set out !k x; incr i; incr j; incr k)
        done;
        if !k = 0 then empty else of_sorted (Array.sub out 0 !k)
      end
    | Small s, Bits _ ->
      of_sorted (Array.of_seq (Seq.filter (fun x -> mem x tb) (Array.to_seq s)))
    | Bits _, Small s ->
      of_sorted (Array.of_seq (Seq.filter (fun x -> mem x ta) (Array.to_seq s)))
    | Bits a, Bits b ->
      let a_lo = a.base lsr 5 and b_lo = b.base lsr 5 in
      let a_hi = a_lo + Array.length a.words - 1 in
      let b_hi = b_lo + Array.length b.words - 1 in
      let lo = max a_lo b_lo and hi = min a_hi b_hi in
      if lo > hi then empty
      else begin
        let words = Array.make (hi - lo + 1) 0 in
        let card = ref 0 in
        for k = lo to hi do
          let w =
            Array.unsafe_get a.words (k - a_lo)
            land Array.unsafe_get b.words (k - b_lo)
          in
          Array.unsafe_set words (k - lo) w;
          card := !card + pc32 w
        done;
        if !card = 0 then empty
        else of_sorted (bits_elements (lo lsl 5) words !card)
      end

let iter f (t : t) =
  match t with
  | Small a ->
    for i = 0 to Array.length a - 1 do
      f (Array.unsafe_get a i)
    done
  | Bits b ->
    for i = 0 to Array.length b.words - 1 do
      let w = Array.unsafe_get b.words i in
      if w <> 0 then
        for bit = 0 to 31 do
          if w land (1 lsl bit) <> 0 then f (b.base + (i lsl 5) + bit)
        done
    done

let fold f (t : t) init =
  let acc = ref init in
  iter (fun x -> acc := f x !acc) t;
  !acc

let elements (t : t) =
  match t with
  | Small a -> Array.to_list a
  | Bits b -> Array.to_list (bits_elements b.base b.words b.card)

let of_list l : t =
  match l with
  | [] -> empty
  | [ x ] -> singleton x
  | l -> of_sorted (Array.of_list (List.sort_uniq Stdlib.compare l))

(* Canonical representation: equal sets have equal structure. *)
let equal (ta : t) (tb : t) =
  ta == tb
  ||
  match ta, tb with
  | Small a, Small b ->
    Array.length a = Array.length b
    && (let ok = ref true in
        for i = 0 to Array.length a - 1 do
          if Array.unsafe_get a i <> Array.unsafe_get b i then ok := false
        done;
        !ok)
  | Bits a, Bits b ->
    a.base = b.base && a.card = b.card
    && Array.length a.words = Array.length b.words
    && (let ok = ref true in
        for i = 0 to Array.length a.words - 1 do
          if Array.unsafe_get a.words i <> Array.unsafe_get b.words i then
            ok := false
        done;
        !ok)
  | _ -> false

(* Smallest element, or [max_int] for the empty set. O(1) on the sorted
   Small representation, O(1 word) on Bits (words are trimmed, so the
   first word is non-zero). The windowed-trace retirement rule uses this
   to find the oldest load a live event still references. *)
let min_elt (t : t) =
  match t with
  | Small [||] -> max_int
  | Small a -> a.(0)
  | Bits b ->
    let w = b.words.(0) in
    let bit = ref 0 in
    while w land (1 lsl !bit) = 0 do incr bit done;
    b.base + !bit

let union_list = List.fold_left union empty

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
