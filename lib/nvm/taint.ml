(* Taint sets identify the NVM loads a value derives from. Each element is
   the trace id (tid) of a Load event. Taint flows through Tv arithmetic
   and through control-dependency scopes in Ctx; a Store event records the
   taint of the stored value (data dependency) and of the enclosing branch
   guards (control dependency). These edges are exactly the Persistence
   Program Dependence Graph of Witcher §4.2.2.

   Representation: a sorted array of distinct tids. Nearly every taint in
   a real trace carries 0-2 elements (a load feeding a store, a guard
   pair), so flat arrays beat the balanced tree Set.Make builds: no
   per-node allocation, unions are a single merge pass, and membership is
   a binary search. The empty set is one shared value, and unions return
   an argument physically whenever the result equals it, so the common
   guard-stack pattern (re-unioning an unchanged scope) allocates
   nothing. *)

type t = int array

let empty : t = [||]

let is_empty t = Array.length t = 0

let singleton x : t = [| x |]

let cardinal = Array.length

let mem x (t : t) =
  let lo = ref 0 and hi = ref (Array.length t) in
  let found = ref false in
  while not !found && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get t mid in
    if v = x then found := true
    else if v < x then lo := mid + 1
    else hi := mid
  done;
  !found

(* Merge two sorted distinct arrays. Fast paths: empty sides, and the
   frequent subset cases, which return an argument physically. *)
let union (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else if a == b then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let x = Array.unsafe_get a !i and y = Array.unsafe_get b !j in
      if x < y then (Array.unsafe_set out !k x; incr i)
      else if y < x then (Array.unsafe_set out !k y; incr j)
      else (Array.unsafe_set out !k x; incr i; incr j);
      incr k
    done;
    while !i < la do
      Array.unsafe_set out !k (Array.unsafe_get a !i); incr i; incr k
    done;
    while !j < lb do
      Array.unsafe_set out !k (Array.unsafe_get b !j); incr j; incr k
    done;
    if !k = la then a           (* b ⊆ a: reuse a *)
    else if !k = lb then b      (* a ⊆ b: reuse b *)
    else if !k = la + lb then out
    else Array.sub out 0 !k
  end

let add x t = union (singleton x) t

let elements (t : t) = Array.to_list t

let fold f (t : t) init =
  let acc = ref init in
  for i = 0 to Array.length t - 1 do
    acc := f (Array.unsafe_get t i) !acc
  done;
  !acc

let iter f (t : t) =
  for i = 0 to Array.length t - 1 do
    f (Array.unsafe_get t i)
  done

let of_list l : t =
  match l with
  | [] -> empty
  | [ x ] -> singleton x
  | l -> Array.of_list (List.sort_uniq Stdlib.compare l)

let equal (a : t) (b : t) =
  a == b
  || (Array.length a = Array.length b
      && (let ok = ref true in
          for i = 0 to Array.length a - 1 do
            if Array.unsafe_get a i <> Array.unsafe_get b i then ok := false
          done;
          !ok))

let union_list = List.fold_left union empty

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
