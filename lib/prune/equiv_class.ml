(* The equivalence-class registry (DESIGN §7): groups eligible crash-image
   candidates by [Path_sig], validates one representative per class (plus
   [Expand]'s spot-checks), and defers the rest. [decide] is called once
   per eligible candidate in generation order; [observe] feeds each
   validated member's verdict back so divergence promotes the class.

   Members are opaque ['a] descriptors, not images: a materialized image
   aliases the live simulator pool and dies at the next trace event, so
   deferred members are re-materialized by a deterministic second
   generation pass over the promoted classes (Engine), keyed by the
   descriptors collected here. *)

type 'a cls = {
  sig_ : Path_sig.t;
  skey : string;                    (* stable cross-process class name *)
  memo_hit : bool;                  (* predicted consistent by a prior seed *)
  mutable n_members : int;
  mutable prediction : bool option; (* Some true = predicted consistent *)
  mutable promoted : bool;
  mutable spots_used : int;
  mutable deferred : 'a list;       (* newest first *)
}

type 'a t = {
  classes : (Path_sig.t, 'a cls) Hashtbl.t;
  expand : Expand.t;
  memo : string -> bool option;     (* cross-seed class-outcome lookup *)
  mutable n_reps : int;             (* representative + spot validations *)
  mutable n_inline_expanded : int;  (* validated because class already promoted *)
  mutable n_deferred : int;
  mutable n_memo_hits : int;
  mutable n_promoted : int;
  mutable last_reason : string;
  (* why the most recent [decide] said `Test: "rep" | "spot" |
     "inline-expand". Generation is pipeline-fused (the decided image is
     checked before the next decide), so the engine reads this as the
     verdict's provenance tag for the event log. *)
}

let create ?(expand = Expand.default) ?(memo = fun _ -> None) () =
  { classes = Hashtbl.create 256; expand; memo; n_reps = 0;
    n_inline_expanded = 0; n_deferred = 0; n_memo_hits = 0; n_promoted = 0;
    last_reason = "" }

let defer t c member =
  c.deferred <- member :: c.deferred;
  t.n_deferred <- t.n_deferred + 1;
  `Defer

(* Decision for the eligible candidate [member] of class [sig_]. The
   first member of an unknown class is its representative; a class a
   prior seed proved consistent starts predicted-consistent and defers
   even its first member (the cross-seed elision), subject to the same
   spot-checks as any other prediction. *)
let decide t ~sig_ ~member =
  match Hashtbl.find_opt t.classes sig_ with
  | None ->
    let skey = Path_sig.stable_key sig_ in
    let memo_hit = t.memo skey = Some true in
    let c =
      { sig_; skey; memo_hit; n_members = 1;
        prediction = (if memo_hit then Some true else None);
        promoted = false; spots_used = 0; deferred = [] }
    in
    Hashtbl.add t.classes sig_ c;
    if memo_hit then begin
      t.n_memo_hits <- t.n_memo_hits + 1;
      defer t c member
    end
    else begin
      t.n_reps <- t.n_reps + 1;
      t.last_reason <- "rep";
      `Test
    end
  | Some c ->
    let m = c.n_members in
    c.n_members <- m + 1;
    if c.promoted then begin
      t.n_inline_expanded <- t.n_inline_expanded + 1;
      t.last_reason <- "inline-expand";
      `Test
    end
    else if Expand.want_spot t.expand ~member_index:m ~spots_used:c.spots_used
    then begin
      c.spots_used <- c.spots_used + 1;
      t.n_reps <- t.n_reps + 1;
      t.last_reason <- "spot";
      `Test
    end
    else defer t c member

let promote t c =
  if not c.promoted then begin
    c.promoted <- true;
    t.n_promoted <- t.n_promoted + 1;
    if Obs.Event.enabled () then
      ignore
        (Obs.Event.emit "promote"
           ~fields:
             [ ("class", Obs.Jsonx.Str c.skey);
               ("members", Obs.Jsonx.Int c.n_members) ])
  end

(* Feed back the verdict of a member [decide] said to test. *)
let observe t ~sig_ ~consistent =
  match Hashtbl.find_opt t.classes sig_ with
  | None -> ()
  | Some c ->
    if not c.promoted then
      match Expand.on_verdict t.expand ~prediction:c.prediction ~consistent with
      | Expand.Set_prediction -> c.prediction <- Some consistent
      | Expand.Keep -> ()
      | Expand.Promote ->
        c.prediction <- Some consistent;
        promote t c

(* Deferred members of every promoted class, for the expansion pass. *)
let promoted_deferred t =
  Hashtbl.fold
    (fun _ c acc -> if c.promoted && c.deferred <> [] then (c.sig_, c.deferred) :: acc else acc)
    t.classes []

(* Tail spot-checks: the most recently deferred member of every
   unpromoted class predicted consistent. Corruption accumulates over a
   workload, so the typical divergent class is consistent early and
   inconsistent late — its representative (the earliest member) and the
   power-of-two spots all pass while the tail fails. One extra check per
   collapsed class catches exactly that shape; a disagreeing tail
   promotes the class through the ordinary [observe] path. *)
let tail_spots t =
  Hashtbl.fold
    (fun _ c acc ->
       match c.prediction, c.deferred with
       | Some true, m :: _ when not c.promoted -> (c.sig_, m) :: acc
       | _ -> acc)
    t.classes []

(* (stable key, class proved consistent) for every class that got at
   least one verdict (or a memo prediction): the journal payload future
   seeds dedup against. A class is exportable as consistent only when it
   was never promoted and its prediction is Consistent. *)
let outcomes t =
  Hashtbl.fold
    (fun _ c acc ->
       match c.prediction with
       | None -> acc
       | Some p -> (c.skey, p && not c.promoted) :: acc)
    t.classes []
  |> List.sort compare

(* Per-class forensics for the end-of-run `class` events: everything the
   registry knows about a class, in stable-key order (deterministic
   event streams need a deterministic fold). *)
type info = {
  i_skey : string;
  i_sig : Path_sig.t;
  i_members : int;
  i_deferred : int;
  i_spots : int;
  i_promoted : bool;
  i_memo_hit : bool;
  i_prediction : bool option;
}

let classes_info t =
  Hashtbl.fold
    (fun _ c acc ->
       { i_skey = c.skey; i_sig = c.sig_; i_members = c.n_members;
         i_deferred = List.length c.deferred; i_spots = c.spots_used;
         i_promoted = c.promoted; i_memo_hit = c.memo_hit;
         i_prediction = c.prediction }
       :: acc)
    t.classes []
  |> List.sort (fun a b -> compare a.i_skey b.i_skey)

let last_reason t = t.last_reason

let n_classes t = Hashtbl.length t.classes
let n_reps t = t.n_reps
let n_inline_expanded t = t.n_inline_expanded
let n_deferred t = t.n_deferred
let n_memo_hits t = t.n_memo_hits
let n_promoted t = t.n_promoted
