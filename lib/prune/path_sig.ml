(* Path signatures: the equivalence-class key for crash-image pruning
   (DESIGN §7). A candidate image is summarized by the operation type of
   the crashed op, the execution-path digest of that op up to the crash
   point, and the violated condition's static site pair — all interned
   [Nvm.Sid] ids and ints, so building, hashing and comparing a signature
   allocates nothing on the hot path.

   The path digest folds a *stable* per-site hash (a function of the
   site's string label, memoized per interned id) rather than the raw sid
   int: sid ints are assigned in interning order, which differs across
   processes, seeds and store subsets, while the label-derived hash is the
   same everywhere. That stability is what lets [stable_key] name a class
   across campaign workers and seeds (the cross-seed memo), and it is why
   both crash-generation front ends must fold their path hashes through
   [step]. *)

open Nvm

type t = {
  op_kind : Sid.t;  (* operation type of the crashed op, e.g. "insert" *)
  path : int;       (* stable digest of the op's load/store site sequence *)
  watch : Sid.t;    (* persisted-too-early / first-guardian site *)
  req : Sid.t;      (* left-unpersisted / second-guardian site *)
}

(* ---------- stable per-site hash, memoized by interned id ---------- *)

(* FNV-1a over the site label, folded to 24 bits — same width the old
   [sid land 0xffffff] fold used, so path digests keep their magnitude. *)
let label_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land 0x3fffffff)
    s;
  !h land 0xffffff

(* sid -> label hash, grown on demand; -1 = not yet computed *)
let memo = ref (Array.make 1024 (-1))

let site_hash (sid : Sid.t) =
  let cap = Array.length !memo in
  if sid >= cap then begin
    let b = Array.make (max (2 * cap) (sid + 1)) (-1) in
    Array.blit !memo 0 b 0 cap;
    memo := b
  end;
  let h = !memo.(sid) in
  if h >= 0 then h
  else begin
    let h = label_hash (Sid.to_string sid) in
    !memo.(sid) <- h;
    h
  end

(* One step of the execution-path fold: called per load/store event while
   walking an op's trace. Same recurrence as the pre-prune path hash, but
   over the stable site hash. *)
let step h sid = (h * 131) + site_hash sid

let make ~op_kind ~path ~watch ~req = { op_kind; path; watch; req }

let equal (a : t) (b : t) =
  a.path = b.path && Sid.equal a.op_kind b.op_kind
  && Sid.equal a.watch b.watch && Sid.equal a.req b.req

let compare (a : t) (b : t) = Stdlib.compare a b

let hash (s : t) =
  Hashtbl.hash (s.op_kind, s.path land max_int, s.watch, s.req)

(* Cross-process class name: every component rendered through its string
   label (the path digest is already label-derived), so the same logical
   class gets the same key in every worker and at every seed. *)
let stable_key (s : t) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "witcher-psig-v1|%s|%d|%s|%s"
          (Sid.to_string s.op_kind) s.path (Sid.to_string s.watch)
          (Sid.to_string s.req)))

let pp ppf (s : t) =
  Fmt.pf ppf "%a@%x[%a,%a]" Sid.pp s.op_kind (s.path land 0xffffff) Sid.pp
    s.watch Sid.pp s.req
