(* Divergence-driven expansion policy (DESIGN §7). The representative's
   verdict becomes the class's prediction; spot-checked members that
   agree keep the class collapsed, and any member disagreeing with the
   prediction promotes the whole class back into the validation queue,
   so pruning degrades to exhaustive validation on divergence instead of
   silently dropping members. An inconsistent *first* verdict is not
   divergence: the class's cluster is already reported through the
   representative (class signature = cluster key), so its deferred
   members could only re-count the same bug, never find a new one. *)

type t = {
  budget : int;  (* spot-check validations per class beyond the representative *)
}

let default = { budget = 3 }

let create ~budget = { budget = max 0 budget }

(* Spot-check the member at this (0-based) arrival index? Powers of two
   give logarithmic coverage of large classes: a class of n members gets
   ~log2 n checks, so a heterogeneous class is caught with high
   probability without re-testing everything. *)
let is_spot_index m = m >= 1 && m land (m - 1) = 0

let want_spot t ~member_index ~spots_used =
  is_spot_index member_index && spots_used < t.budget

type verdict_action =
  | Set_prediction  (* first verdict: becomes the class's prediction *)
  | Promote         (* divergence: validate every deferred member *)
  | Keep            (* verdict matches the prediction *)

let on_verdict (_ : t) ~prediction ~consistent =
  match prediction with
  | None -> Set_prediction
  | Some p -> if p = consistent then Keep else Promote
