(* Crash-image pruning policy (DESIGN §7). [Exhaustive] validates every
   eligible image (the pre-prune pipeline); [Representative] validates one
   representative per path-signature equivalence class plus logarithmic
   spot-checks, expanding a whole class on any divergence; [Sample n] is
   the blind statistical fallback the paper concedes to in §7.5 — every
   n-th eligible image, no soundness story. *)

type t = Exhaustive | Representative | Sample of int

let name = function
  | Exhaustive -> "exhaustive"
  | Representative -> "representative"
  | Sample n -> Printf.sprintf "sample:%d" n

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exhaustive" -> Ok Exhaustive
  | "representative" | "repr" -> Ok Representative
  | "sample" -> Ok (Sample 4)
  | s when String.length s > 7 && String.sub s 0 7 = "sample:" ->
    (match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
     | Some n when n >= 1 -> Ok (Sample n)
     | _ -> Error (Printf.sprintf "bad sample stride in %S" s))
  | s ->
    Error
      (Printf.sprintf
         "unknown prune policy %S (expected exhaustive, representative or \
          sample:N)" s)

let pp ppf p = Fmt.string ppf (name p)
