(* Fold a campaign journal into Table 4/5-style reports: one row per
   (store, variant) summed across seeds, plus campaign totals and the
   wall-clock speedup the worker pool bought over a sequential sweep. *)

type row = {
  store : string;
  variant : Job.variant;
  jobs : int;
  ok : int;
  failed : int;
  timeout : int;
  c_o : int;
  c_a : int;
  p_u : int;
  p_efl : int;
  p_efe : int;
  p_el : int;
  images_tested : int;
  n_mismatch : int;
  replay_ops : int;         (* ops re-executed by resumed runs *)
  bytes_materialized : int; (* bytes copied to build crash images *)
  oracle_runs : int;        (* rolled-back oracles actually built *)
  oracle_ops_saved : int;   (* oracle ops elided by laziness/checkpoints *)
  memo_hits : int;          (* verdicts served from the digest memo *)
  ckpt_bytes : int;         (* record-time checkpoint memory *)
  batch_fences : int;       (* fence groups opened by batched checking *)
  inherit_hits : int;       (* verdicts inherited from a fence sibling *)
  batch_saved : int;        (* replay ops inherited verdicts skipped *)
  prune_classes : int;      (* path-signature equivalence classes *)
  prune_reps : int;         (* representatives + spot-checks validated *)
  images_elided : int;      (* images never validated thanks to pruning *)
  prune_expansions : int;   (* classes promoted back to full validation *)
  seed_memo_hits : int;     (* classes elided via the cross-seed memo *)
  stream_jobs : int;        (* jobs run by the bounded-memory engine *)
  window_retirements : int; (* trace segments recycled by the window *)
  ckpt_ring_evictions : int;(* checkpoints dropped by the bounded ring *)
  peak_live_words : int;    (* max (not sum) GC live-heap peak, words *)
  t_equiv : float;          (* summed equivalence-checking stage time *)
  wall : float;             (* summed per-job wall-clock *)
}

type t = {
  rows : row list;
  total : row;              (* store = "TOTAL" *)
  sequential_wall : float;  (* sum of every job's wall-clock *)
  metrics : Obs.Metrics.snapshot;
  (* exact merge of every worker's metrics snapshot: [Obs.Metrics.merge]
     is associative and commutative, so this equals what one process
     running the whole matrix would have observed *)
}

let empty_row store variant =
  { store; variant; jobs = 0; ok = 0; failed = 0; timeout = 0; c_o = 0;
    c_a = 0; p_u = 0; p_efl = 0; p_efe = 0; p_el = 0; images_tested = 0;
    n_mismatch = 0; replay_ops = 0; bytes_materialized = 0; oracle_runs = 0;
    oracle_ops_saved = 0; memo_hits = 0; ckpt_bytes = 0; batch_fences = 0;
    inherit_hits = 0; batch_saved = 0; prune_classes = 0;
    prune_reps = 0; images_elided = 0; prune_expansions = 0;
    seed_memo_hits = 0; stream_jobs = 0; window_retirements = 0;
    ckpt_ring_evictions = 0; peak_live_words = 0; t_equiv = 0.; wall = 0. }

let add_record row (r : Journal.record) =
  let ok, failed, timeout, counts =
    match r.status with
    | Journal.Job_ok -> (1, 0, 0, r.result)
    | Journal.Job_failed _ -> (0, 1, 0, None)
    | Journal.Job_timeout -> (0, 0, 1, None)
  in
  let f k = match counts with None -> 0 | Some j -> Jsonx.int_field j k in
  (* nested under "prune" and absent entirely in exhaustive / pre-prune
     journals; the default-0 read keeps old sweeps aggregating *)
  let p k =
    match Option.bind counts (Jsonx.member "prune") with
    | None -> 0
    | Some pj -> Jsonx.int_field pj k
  in
  (* nested under "batch"; absent in batch-off runs and every pre-batch
     journal, which aggregate as zeros *)
  let b k =
    match Option.bind counts (Jsonx.member "batch") with
    | None -> 0
    | Some bj -> Jsonx.int_field bj k
  in
  (* nested under "stream"; absent in batch-engine runs and every
     pre-streaming journal, which aggregate as zeros *)
  let stream_j = Option.bind counts (Jsonx.member "stream") in
  let s k =
    match stream_j with None -> 0 | Some sj -> Jsonx.int_field sj k
  in
  { row with
    jobs = row.jobs + 1;
    ok = row.ok + ok;
    failed = row.failed + failed;
    timeout = row.timeout + timeout;
    c_o = row.c_o + f "c_o";
    c_a = row.c_a + f "c_a";
    p_u = row.p_u + f "p_u";
    p_efl = row.p_efl + f "p_efl";
    p_efe = row.p_efe + f "p_efe";
    p_el = row.p_el + f "p_el";
    images_tested = row.images_tested + f "images_tested";
    n_mismatch = row.n_mismatch + f "n_mismatch";
    (* absent in journals written before the t_gen/t_equiv split; the
       accessors default to 0 so old sweeps still aggregate *)
    replay_ops = row.replay_ops + f "replay_ops";
    bytes_materialized = row.bytes_materialized + f "bytes_materialized";
    (* likewise absent in pre-oracle-memoization journals *)
    oracle_runs = row.oracle_runs + f "oracle_runs";
    oracle_ops_saved = row.oracle_ops_saved + f "oracle_ops_saved";
    memo_hits = row.memo_hits + f "memo_hits";
    ckpt_bytes = row.ckpt_bytes + f "ckpt_bytes";
    batch_fences = row.batch_fences + b "fences";
    inherit_hits = row.inherit_hits + b "inherit_hits";
    batch_saved = row.batch_saved + b "replay_ops_saved";
    prune_classes = row.prune_classes + p "classes";
    prune_reps = row.prune_reps + p "reps";
    images_elided = row.images_elided + p "elided";
    prune_expansions = row.prune_expansions + p "expansions";
    seed_memo_hits = row.seed_memo_hits + p "seed_memo_hits";
    stream_jobs = row.stream_jobs + (if stream_j = None then 0 else 1);
    window_retirements = row.window_retirements + s "window_retirements";
    ckpt_ring_evictions = row.ckpt_ring_evictions + s "ckpt_ring_evictions";
    (* a peak is a high-water mark: campaign-wide it is the max over
       jobs (workers run sequentially per slot), never a sum *)
    peak_live_words = max row.peak_live_words (s "peak_live_words");
    t_equiv =
      (row.t_equiv
       +. match counts with None -> 0. | Some j -> Jsonx.float_field j "t_equiv");
    wall = row.wall +. r.t_wall }

let of_records (records : Journal.record list) =
  (* preserve first-seen (registry/journal) order for the rows *)
  let order = ref [] in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (r : Journal.record) ->
       let k = (r.spec.Job.store, r.spec.Job.variant) in
       let row =
         match Hashtbl.find_opt tbl k with
         | Some row -> row
         | None ->
           order := k :: !order;
           empty_row r.spec.Job.store r.spec.Job.variant
       in
       Hashtbl.replace tbl k (add_record row r))
    records;
  let rows = List.rev_map (fun k -> Hashtbl.find tbl k) !order in
  let total =
    List.fold_left
      (fun acc (row : row) ->
         { acc with
           jobs = acc.jobs + row.jobs;
           ok = acc.ok + row.ok;
           failed = acc.failed + row.failed;
           timeout = acc.timeout + row.timeout;
           c_o = acc.c_o + row.c_o;
           c_a = acc.c_a + row.c_a;
           p_u = acc.p_u + row.p_u;
           p_efl = acc.p_efl + row.p_efl;
           p_efe = acc.p_efe + row.p_efe;
           p_el = acc.p_el + row.p_el;
           images_tested = acc.images_tested + row.images_tested;
           n_mismatch = acc.n_mismatch + row.n_mismatch;
           replay_ops = acc.replay_ops + row.replay_ops;
           bytes_materialized = acc.bytes_materialized + row.bytes_materialized;
           oracle_runs = acc.oracle_runs + row.oracle_runs;
           oracle_ops_saved = acc.oracle_ops_saved + row.oracle_ops_saved;
           memo_hits = acc.memo_hits + row.memo_hits;
           ckpt_bytes = acc.ckpt_bytes + row.ckpt_bytes;
           batch_fences = acc.batch_fences + row.batch_fences;
           inherit_hits = acc.inherit_hits + row.inherit_hits;
           batch_saved = acc.batch_saved + row.batch_saved;
           prune_classes = acc.prune_classes + row.prune_classes;
           prune_reps = acc.prune_reps + row.prune_reps;
           images_elided = acc.images_elided + row.images_elided;
           prune_expansions = acc.prune_expansions + row.prune_expansions;
           seed_memo_hits = acc.seed_memo_hits + row.seed_memo_hits;
           stream_jobs = acc.stream_jobs + row.stream_jobs;
           window_retirements =
             acc.window_retirements + row.window_retirements;
           ckpt_ring_evictions =
             acc.ckpt_ring_evictions + row.ckpt_ring_evictions;
           peak_live_words = max acc.peak_live_words row.peak_live_words;
           t_equiv = acc.t_equiv +. row.t_equiv;
           wall = acc.wall +. row.wall })
      (empty_row "TOTAL" Job.Buggy) rows
  in
  let metrics =
    Obs.Metrics.merge_all (List.filter_map Journal.obs_metrics records)
  in
  { rows; total; sequential_wall = total.wall; metrics }

let status_cell row =
  if row.failed = 0 && row.timeout = 0 then "ok"
  else Printf.sprintf "%dF/%dT" row.failed row.timeout

let row_line row =
  Printf.sprintf "%-16s %-6s | %4d %4d %6s | %4d %4d | %4d %5d %5d %4d | %8d %8d | %8d %7.2f | %7d %8d %6d | %5d %8d | %5d %5d %7d %6d | %8.1f | %8.1f"
    row.store
    (if row.store = "TOTAL" then "" else Job.variant_name row.variant)
    row.jobs row.ok (status_cell row) row.c_o row.c_a row.p_u row.p_efl
    row.p_efe row.p_el row.images_tested row.n_mismatch row.replay_ops
    (float_of_int row.bytes_materialized /. 1024. /. 1024.)
    row.oracle_runs row.oracle_ops_saved row.memo_hits
    row.inherit_hits row.batch_saved
    row.prune_classes row.prune_reps row.images_elided row.prune_expansions
    row.t_equiv row.wall

let header () =
  Printf.sprintf "%-16s %-6s | %4s %4s %6s | %4s %4s | %4s %5s %5s %4s | %8s %8s | %8s %7s | %7s %8s %6s | %5s %8s | %5s %5s %7s %6s | %8s | %8s"
    "store" "var" "jobs" "ok" "status" "C-O" "C-A" "P-U" "P-EFL" "P-EFE"
    "P-EL" "#img-tst" "#mismtch" "#replay" "mat-MB" "#oracle" "#o-saved"
    "#memo" "#inh" "#i-saved" "#cls" "#rep" "#elide" "#expnd" "equiv(s)" "wall(s)"

(* [elapsed] is the campaign's real wall-clock; the speedup line compares
   it against running every job back to back on one core. *)
let to_text ?elapsed ?j t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (header ());
  Buffer.add_char b '\n';
  Buffer.add_string b (String.make (String.length (header ())) '-');
  Buffer.add_char b '\n';
  List.iter
    (fun row -> Buffer.add_string b (row_line row); Buffer.add_char b '\n')
    t.rows;
  Buffer.add_string b (String.make (String.length (header ())) '-');
  Buffer.add_char b '\n';
  Buffer.add_string b (row_line t.total);
  Buffer.add_char b '\n';
  if t.total.stream_jobs > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "streaming: %d job(s); %d window retirement(s); %d checkpoint \
          eviction(s); peak live heap %.1f MB\n"
         t.total.stream_jobs t.total.window_retirements
         t.total.ckpt_ring_evictions
         (float_of_int (t.total.peak_live_words * 8) /. 1024. /. 1024.));
  (match elapsed with
   | Some e when e >= 0.01 ->
     Buffer.add_string b
       (Printf.sprintf
          "campaign wall-clock %.1fs%s; sequential estimate %.1fs; speedup %.2fx\n"
          e
          (match j with Some j -> Printf.sprintf " (-j %d)" j | None -> "")
          t.sequential_wall
          (t.sequential_wall /. e))
   | _ -> ());
  if t.metrics <> Obs.Metrics.empty then begin
    Buffer.add_string b "\ncampaign metrics (merged across workers):\n";
    Buffer.add_string b (Obs.Metrics.render t.metrics)
  end;
  Buffer.contents b

let row_json row =
  Jsonx.Obj
    [ ("store", Jsonx.Str row.store);
      ("variant", Jsonx.Str (Job.variant_name row.variant));
      ("jobs", Jsonx.Int row.jobs);
      ("ok", Jsonx.Int row.ok);
      ("failed", Jsonx.Int row.failed);
      ("timeout", Jsonx.Int row.timeout);
      ("c_o", Jsonx.Int row.c_o);
      ("c_a", Jsonx.Int row.c_a);
      ("p_u", Jsonx.Int row.p_u);
      ("p_efl", Jsonx.Int row.p_efl);
      ("p_efe", Jsonx.Int row.p_efe);
      ("p_el", Jsonx.Int row.p_el);
      ("images_tested", Jsonx.Int row.images_tested);
      ("n_mismatch", Jsonx.Int row.n_mismatch);
      ("replay_ops", Jsonx.Int row.replay_ops);
      ("bytes_materialized", Jsonx.Int row.bytes_materialized);
      ("oracle_runs", Jsonx.Int row.oracle_runs);
      ("oracle_ops_saved", Jsonx.Int row.oracle_ops_saved);
      ("memo_hits", Jsonx.Int row.memo_hits);
      ("ckpt_bytes", Jsonx.Int row.ckpt_bytes);
      ("batch_fences", Jsonx.Int row.batch_fences);
      ("inherit_hits", Jsonx.Int row.inherit_hits);
      ("batch_saved", Jsonx.Int row.batch_saved);
      ("prune_classes", Jsonx.Int row.prune_classes);
      ("prune_reps", Jsonx.Int row.prune_reps);
      ("images_elided", Jsonx.Int row.images_elided);
      ("prune_expansions", Jsonx.Int row.prune_expansions);
      ("seed_memo_hits", Jsonx.Int row.seed_memo_hits);
      ("stream_jobs", Jsonx.Int row.stream_jobs);
      ("window_retirements", Jsonx.Int row.window_retirements);
      ("ckpt_ring_evictions", Jsonx.Int row.ckpt_ring_evictions);
      ("peak_live_words", Jsonx.Int row.peak_live_words);
      ("t_equiv", Jsonx.Float row.t_equiv);
      ("wall", Jsonx.Float row.wall) ]

let to_json ?elapsed ?j t =
  let extra =
    (match elapsed with
     | Some e ->
       [ ("elapsed", Jsonx.Float e);
         ("speedup",
          Jsonx.Float (if e > 0. then t.sequential_wall /. e else 0.)) ]
     | None -> [])
    @ (match j with Some j -> [ ("jobs_in_parallel", Jsonx.Int j) ] | None -> [])
  in
  Jsonx.Obj
    ([ ("rows", Jsonx.List (List.map row_json t.rows));
       ("total", row_json t.total);
       ("sequential_wall", Jsonx.Float t.sequential_wall);
       ("metrics", Obs.Metrics.to_json t.metrics) ]
     @ extra)
