(* A campaign job: one (store, variant, seed, engine-config) cell of the
   evaluation matrix. Jobs carry a stable content-derived key so that a
   journal written by one sweep can be resumed by a later one: the key
   depends only on what the job *is*, never on when or where it ran. *)

type variant = Buggy | Fixed

type spec = {
  store : string;
  variant : variant;
  seed : int;
  n_ops : int;
  max_images : int;
  prune : Prune.Policy.t;
  expand_budget : int;
}

let default_expand_budget = 3

let variant_name = function Buggy -> "buggy" | Fixed -> "fixed"

let variant_of_string = function
  | "buggy" -> Some Buggy
  | "fixed" -> Some Fixed
  | _ -> None

(* Bump the version tag if the fields that define a job ever change
   meaning; old journal entries then no longer match and re-run.
   Exhaustive jobs keep the v1 key string exactly — a pre-prune journal
   resumes under a pruning-aware binary without re-running anything —
   while non-default policies extend it, so changing the policy changes
   the cell. *)
let key spec =
  let base =
    Printf.sprintf "witcher-job-v1|%s|%s|%d|%d|%d" spec.store
      (variant_name spec.variant)
      spec.seed spec.n_ops spec.max_images
  in
  let tagged =
    match spec.prune with
    | Prune.Policy.Exhaustive -> base
    | p ->
      Printf.sprintf "%s|prune=%s|eb=%d" base (Prune.Policy.name p)
        spec.expand_budget
  in
  Digest.to_hex (Digest.string tagged)

let describe spec =
  let prune =
    match spec.prune with
    | Prune.Policy.Exhaustive -> ""
    | p -> " prune=" ^ Prune.Policy.name p
  in
  Printf.sprintf "%s/%s seed=%d n=%d%s" spec.store
    (variant_name spec.variant)
    spec.seed spec.n_ops prune

let to_json spec =
  Jsonx.Obj
    ([ ("store", Jsonx.Str spec.store);
       ("variant", Jsonx.Str (variant_name spec.variant));
       ("seed", Jsonx.Int spec.seed);
       ("n_ops", Jsonx.Int spec.n_ops);
       ("max_images", Jsonx.Int spec.max_images) ]
     @
     match spec.prune with
     | Prune.Policy.Exhaustive -> []
     | p ->
       [ ("prune", Jsonx.Str (Prune.Policy.name p));
         ("expand_budget", Jsonx.Int spec.expand_budget) ])

let of_json j =
  match
    ( Option.bind (Jsonx.member "store" j) Jsonx.to_str_opt,
      Option.bind (Jsonx.member "variant" j) Jsonx.to_str_opt )
  with
  | Some store, Some v ->
    (match variant_of_string v with
     | None -> Error ("bad variant " ^ v)
     | Some variant ->
       (* journals written before the pruning layer carry no prune
          fields; they mean exhaustive validation *)
       let prune =
         match Option.bind (Jsonx.member "prune" j) Jsonx.to_str_opt with
         | None -> Ok Prune.Policy.Exhaustive
         | Some s -> Prune.Policy.of_string s
       in
       (match prune with
        | Error e -> Error e
        | Ok prune ->
          Ok
            { store;
              variant;
              seed = Jsonx.int_field j "seed";
              n_ops = Jsonx.int_field j "n_ops";
              max_images = Jsonx.int_field j "max_images";
              prune;
              expand_budget =
                Jsonx.int_field ~default:default_expand_budget j
                  "expand_budget" }))
  | _ -> Error "job spec missing store/variant"
