(* The fault-isolated executor: a [Unix.fork]-based worker pool. Every
   job runs in its own child process, so an OCaml exception, a runaway
   allocation, a livelock, or a genuine crash takes down one worker —
   the parent records a [`Failed]/[`Timeout] outcome and keeps the rest
   of the sweep running.

   Protocol: the child runs [run_job] and writes a v2 envelope on a pipe:

     {"v": 2, "payload": <job JSON>, "obs": {"pid", "metrics", "spans"}}

   then [Unix._exit]s (0 on success, 3 after catching an exception, in
   which case the payload is {"error": msg}). "obs" carries the worker's
   [Obs.Metrics] snapshot and [Obs.Span] buffer so the orchestrator can
   merge per-worker metrics exactly and export one trace track per
   worker pid. A payload with no envelope (a raw object, as older tools
   or hostile test run_jobs produce) is accepted as-is with no obs.

   The parent polls: it drains pipes opportunistically (so a child never
   blocks on a full pipe buffer), reaps exits with [waitpid WNOHANG],
   SIGKILLs any child past its wall-clock deadline, and fires [on_tick]
   once per poll round so the orchestrator can render a heartbeat. *)

type outcome =
  | Ok of Jsonx.t           (* child exited 0; payload parsed *)
  | Failed of string        (* exception, unclean exit, or external kill *)
  | Timeout                 (* exceeded the deadline; killed by the pool *)

type job_result = {
  spec : Job.spec;
  outcome : outcome;
  obs : Jsonx.t option;     (* worker observability envelope, if any *)
  t_wall : float;           (* spawn-to-reap wall-clock seconds *)
}

type slot = {
  spec : Job.spec;
  fd : Unix.file_descr;     (* read end of the result pipe *)
  buf : Buffer.t;
  start : float;
}

let drain_nonblock fd buf =
  let bytes = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd bytes 0 4096 with
    | 0 -> ()
    | n -> Buffer.add_subbytes buf bytes 0 n; go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_to_eof fd buf =
  Unix.clear_nonblock fd;
  let bytes = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd bytes 0 4096 with
    | 0 -> ()
    | n -> Buffer.add_subbytes buf bytes 0 n; go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* The worker's observability payload, captured after [run_job]: whatever
   the run left in the process-local registry and span buffer. Never let
   a serialization problem turn a finished job into a failure. *)
let obs_json () =
  try
    Jsonx.Obj
      [ ("pid", Jsonx.Int (Unix.getpid ()));
        ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot Obs.Metrics.default));
        ("spans", Obs.Span.events_to_json (Obs.Span.events Obs.Span.default_buf)) ]
  with _ -> Jsonx.Obj [ ("pid", Jsonx.Int (Unix.getpid ())) ]

let child_main w run_job spec =
  (* In the child: never return, never run the parent's at_exit. *)
  let payload, code =
    match run_job spec with
    | payload -> (payload, 0)
    | exception e ->
      (Jsonx.Obj [ ("error", Jsonx.Str (Printexc.to_string e)) ], 3)
  in
  let envelope =
    Jsonx.Obj [ ("v", Jsonx.Int 2); ("payload", payload); ("obs", obs_json ()) ]
  in
  (try
     let s = Jsonx.to_string envelope in
     let b = Bytes.of_string s in
     let rec write_all off =
       if off < Bytes.length b then
         let n = Unix.write w b off (Bytes.length b - off) in
         write_all (off + n)
     in
     write_all 0;
     Unix.close w
   with _ -> ());
  Unix._exit code

let spawn run_job spec =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    child_main w run_job spec
  | pid ->
    Unix.close w;
    Unix.set_nonblock r;
    (pid, { spec; fd = r; buf = Buffer.create 512; start = Unix.gettimeofday () })

(* Split a wire value into (payload, obs). Only a v2 envelope is
   unwrapped; anything else is a bare payload. *)
let unwrap j =
  match (Jsonx.member "v" j, Jsonx.member "payload" j) with
  | Some (Jsonx.Int 2), Some payload -> (payload, Jsonx.member "obs" j)
  | _ -> (j, None)

let outcome_of ~killed ~payload status =
  let parsed () =
    match Jsonx.of_string (String.trim payload) with
    | Result.Ok j -> Result.Ok (unwrap j)
    | Result.Error e -> Result.Error e
  in
  match status with
  | Unix.WEXITED 0 ->
    (match parsed () with
     | Result.Ok (j, obs) -> (Ok j, obs)
     | Result.Error e -> (Failed ("unparseable worker output: " ^ e), None))
  | Unix.WEXITED n ->
    let msg, obs =
      match parsed () with
      | Result.Ok (j, obs) ->
        let m = Jsonx.str_field j "error" in
        ((if m <> "" then m else Printf.sprintf "worker exit %d" n), obs)
      | Result.Error _ -> (Printf.sprintf "worker exit %d" n, None)
    in
    (Failed msg, obs)
  | Unix.WSIGNALED _ when killed -> (Timeout, None)
  | Unix.WSIGNALED s -> (Failed (Printf.sprintf "worker killed by signal %d" s), None)
  | Unix.WSTOPPED s -> (Failed (Printf.sprintf "worker stopped by signal %d" s), None)

(* Run [jobs] with at most [j] concurrent workers and a per-job
   wall-clock [timeout] (seconds). [on_done] fires in the parent, in
   completion order, exactly once per job. [on_tick] fires once per poll
   round with the in-flight jobs and their elapsed seconds — the
   orchestrator's heartbeat hook. *)
let run ?(on_tick = fun ~now:_ ~running:_ -> ()) ~jobs ~j ~timeout ~run_job
    ~on_done () =
  let j = max 1 j in
  let pending = Queue.create () in
  List.iter (fun s -> Queue.add s pending) jobs;
  let running : (int, slot) Hashtbl.t = Hashtbl.create 16 in
  let killed : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  while not (Queue.is_empty pending) || Hashtbl.length running > 0 do
    let progressed = ref false in
    while Hashtbl.length running < j && not (Queue.is_empty pending) do
      let spec = Queue.pop pending in
      let pid, slot = spawn run_job spec in
      Hashtbl.add running pid slot;
      progressed := true
    done;
    let now = Unix.gettimeofday () in
    on_tick ~now
      ~running:
        (Hashtbl.fold
           (fun _ (s : slot) acc -> (s.spec, now -. s.start) :: acc)
           running []);
    let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) running [] in
    List.iter
      (fun pid ->
         let slot = Hashtbl.find running pid in
         drain_nonblock slot.fd slot.buf;
         match Unix.waitpid [ Unix.WNOHANG ] pid with
         | 0, _ ->
           if now -. slot.start > timeout && not (Hashtbl.mem killed pid)
           then begin
             Hashtbl.add killed pid ();
             try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
           end
         | _, status ->
           drain_to_eof slot.fd slot.buf;
           Unix.close slot.fd;
           Hashtbl.remove running pid;
           let was_killed = Hashtbl.mem killed pid in
           Hashtbl.remove killed pid;
           let outcome, obs =
             outcome_of ~killed:was_killed
               ~payload:(Buffer.contents slot.buf) status
           in
           on_done
             { spec = slot.spec; outcome; obs;
               t_wall = Unix.gettimeofday () -. slot.start };
           progressed := true)
      pids;
    if not !progressed then ignore (Unix.select [] [] [] 0.02)
  done
