(* The campaign planner: expand (stores × variants × seeds) against the
   registry into a deterministic, registry-ordered job list. Planning is
   pure — validation errors (unknown store names) surface here, before
   any worker forks. *)

type cfg = {
  stores : string list option;  (* None = whole registry *)
  seeds : int list;
  fixed_too : bool;             (* also test every repaired variant *)
  n_ops : int;
  max_images : int;
  prune : Prune.Policy.t;
  expand_budget : int;
}

let default =
  { stores = None; seeds = [ 42 ]; fixed_too = false; n_ops = 200;
    max_images = 4000; prune = Prune.Policy.Exhaustive;
    expand_budget = Job.default_expand_budget }

let registry_names () =
  List.map (fun (e : Stores.Registry.entry) -> e.name) Stores.Registry.all

(* Jobs come out store-major in registry order, then variant, then seed:
   stable input order means job keys and journals diff cleanly between
   sweeps. *)
let plan (cfg : cfg) : (Job.spec list, string) result =
  let names =
    match cfg.stores with None -> registry_names () | Some l -> l
  in
  let unknown =
    List.filter (fun n -> Stores.Registry.find n = None) names
  in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown store(s): %s (try `witcher list`)"
         (String.concat ", " unknown))
  else if cfg.seeds = [] then Error "empty seed list"
  else if cfg.n_ops <= 0 then Error "n_ops must be positive"
  else
    let variants = if cfg.fixed_too then [ Job.Buggy; Job.Fixed ] else [ Job.Buggy ] in
    Ok
      (List.concat_map
         (fun store ->
            List.concat_map
              (fun variant ->
                 List.map
                   (fun seed ->
                      { Job.store; variant; seed; n_ops = cfg.n_ops;
                        max_images = cfg.max_images; prune = cfg.prune;
                        expand_budget = cfg.expand_budget })
                   cfg.seeds)
              variants)
         names)
