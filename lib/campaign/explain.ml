(* `witcher explain`: post-hoc bug forensics from on-disk artifacts.

   Input is an event stream (a single run's `--events` file, or the
   merged per-worker shards of a campaign) and optionally a campaign
   journal. Nothing is re-executed: every fact below is read back from
   the [Obs.Event] records the pipeline emitted, joined on their ids —

     cluster --class--> verdict --image--> image --cond--> condition
                                    \--> slice, oracle, class record

   A stream is split into runs on its `run` header events (ids restart
   per shard, so they are only meaningful within a run); header versions
   the reader does not know are skipped rather than misread. Journals
   from before the event log (PR 6 era) still explain, degraded to their
   bug-report lines plus a "no event data" note. *)

module W = Witcher

(* ---------- small Jsonx helpers ---------- *)

let bool_field ?(default = false) j k =
  match Jsonx.member k j with Some (Jsonx.Bool b) -> b | _ -> default

let str = Jsonx.str_field
let int_f = Jsonx.int_field

(* ---------- stream model ---------- *)

type run = {
  header : Jsonx.t;
  by_id : (int, Jsonx.t) Hashtbl.t;
  items : Jsonx.t list;            (* this run's events, oldest first *)
}

type source =
  | Events of run list
  | Journal_only of Journal.record list  (* pre-event degradation *)

let is_kind k j = str j "e" = k

let split_runs items =
  let runs = ref [] in
  let cur = ref None in
  let flush () =
    match !cur with
    | Some (h, rev) ->
      let items = List.rev rev in
      let by_id = Hashtbl.create 256 in
      List.iter (fun j -> Hashtbl.replace by_id (int_f ~default:(-1) j "i") j) items;
      runs := { header = h; by_id; items } :: !runs;
      cur := None
    | None -> ()
  in
  List.iter
    (fun j ->
       if is_kind "run" j then begin
         flush ();
         (* only open a run scope for schema versions we understand *)
         if int_f j "v" = Obs.Event.version then cur := Some (j, [ j ])
       end
       else
         match !cur with
         | Some (h, rev) -> cur := Some (h, j :: rev)
         | None -> ())
    items;
  flush ();
  List.rev !runs

let parse_lines ic =
  let items = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Jsonx.of_string line with
         | Ok j -> items := j :: !items
         | Error _ -> ()
     done
   with End_of_file -> ());
  List.rev !items

let load_events_file path =
  let ic = open_in path in
  let items = parse_lines ic in
  close_in ic;
  split_runs items

(* Resolve an explain input path: a campaign output directory (merged
   events.jsonl, falling back to journal.jsonl), an events file, or a
   bare journal file. *)
let load path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else if Sys.is_directory path then begin
    let ev = Filename.concat path "events.jsonl" in
    let jr = Filename.concat path "journal.jsonl" in
    if Sys.file_exists ev then Ok (Events (load_events_file ev))
    else if Sys.file_exists jr then Ok (Journal_only (Journal.load jr))
    else Error (Printf.sprintf "%s: neither events.jsonl nor journal.jsonl" path)
  end
  else begin
    let ic = open_in path in
    let first = try Some (input_line ic) with End_of_file -> None in
    close_in ic;
    match Option.map Jsonx.of_string first with
    | Some (Ok j) when Jsonx.member "e" j <> None ->
      Ok (Events (load_events_file path))
    | Some (Ok j) when Jsonx.member "job" j <> None ->
      Ok (Journal_only (Journal.load path))
    | _ -> Error (Printf.sprintf "%s: not an event stream or journal" path)
  end

(* ---------- provenance resolution ---------- *)

type bug = { b_run : run; b_cluster : Jsonx.t }

(* Every `cluster` event is a bug cluster (only inconsistent images
   cluster); stream order is deterministic, so bug numbering is too. *)
let bugs runs =
  List.concat_map
    (fun r ->
       List.filter_map
         (fun j -> if is_kind "cluster" j then Some { b_run = r; b_cluster = j } else None)
         r.items)
    runs

type forensics = {
  f_bug : bug;
  f_verdict : Jsonx.t option;   (* first inconsistent verdict of the class *)
  f_image : Jsonx.t option;
  f_cond : Jsonx.t option;
  f_slice : Jsonx.t option;
  f_oracle : Jsonx.t option;
  f_class : Jsonx.t option;     (* pruning-class record, representative mode *)
  f_ops : (int, string) Hashtbl.t;  (* op index -> description *)
}

let resolve (b : bug) =
  let skey = str b.b_cluster "class" in
  let ops = Hashtbl.create 64 in
  let verdict = ref None and cls = ref None in
  List.iter
    (fun j ->
       match str j "e" with
       | "op" -> Hashtbl.replace ops (int_f j "op") (str j "desc")
       | "verdict"
         when !verdict = None && str j "class" = skey
           && not (bool_field j "consistent") ->
         verdict := Some j
       | "class" when str j "class" = skey -> cls := Some j
       | _ -> ())
    b.b_run.items;
  let image =
    Option.bind !verdict (fun v ->
        let id = int_f ~default:(-1) v "image" in
        if id < 0 then None else Hashtbl.find_opt b.b_run.by_id id)
  in
  let cond =
    Option.bind image (fun i ->
        let id = int_f ~default:(-1) i "cond" in
        if id < 0 then None else Hashtbl.find_opt b.b_run.by_id id)
  in
  let image_id =
    match image with None -> -1 | Some i -> int_f ~default:(-1) i "i"
  in
  let slice =
    if image_id < 0 then None
    else
      List.find_opt
        (fun j -> is_kind "slice" j && int_f ~default:(-1) j "image" = image_id)
        b.b_run.items
  in
  let oracle =
    Option.bind image (fun i ->
        let k = int_f ~default:(-1) i "crash_op" in
        List.find_opt
          (fun j -> is_kind "oracle" j && int_f ~default:(-1) j "op" = k)
          b.b_run.items)
  in
  { f_bug = b; f_verdict = !verdict; f_image = image; f_cond = cond;
    f_slice = slice; f_oracle = oracle; f_class = !cls; f_ops = ops }

(* Chain-resolution check, used by the qcheck property: every verdict
   must link to a real tested image whose condition id resolves, and
   every cluster must be backed by an inconsistent verdict of its class.
   Returns the first dangling link found. *)
let check_chains items =
  let runs = split_runs items in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  List.iter
    (fun r ->
       List.iter
         (fun j ->
            match str j "e" with
            | "verdict" ->
              let id = int_f ~default:(-1) j "image" in
              (match Hashtbl.find_opt r.by_id id with
               | None -> fail "verdict %d: dangling image id %d" (int_f j "i") id
               | Some img ->
                 if not (is_kind "image" img) || str img "action" <> "test" then
                   fail "verdict %d: image id %d is not a tested image" (int_f j "i") id
                 else begin
                   let cid = int_f ~default:(-1) img "cond" in
                   match Hashtbl.find_opt r.by_id cid with
                   | Some c when is_kind "cond" c -> ()
                   | _ -> fail "image %d: dangling cond id %d" id cid
                 end)
            | "cluster" ->
              let skey = str j "class" in
              if not
                   (List.exists
                      (fun v ->
                         is_kind "verdict" v && str v "class" = skey
                         && not (bool_field v "consistent"))
                      r.items)
              then fail "cluster %d: no inconsistent verdict for class %s" (int_f j "i") skey
            | "slice" ->
              let id = int_f ~default:(-1) j "image" in
              (match Hashtbl.find_opt r.by_id id with
               | Some img when is_kind "image" img -> ()
               | _ -> fail "slice %d: dangling image id %d" (int_f j "i") id)
            | _ -> ())
         r.items)
    runs;
  match !problem with None -> Ok (List.length runs) | Some s -> Error s

(* ---------- rendering ---------- *)

let skey_short s = if String.length s > 12 then String.sub s 0 12 else s

let bug_headline i (b : bug) =
  let c = b.b_cluster in
  Printf.sprintf "bug %d: %s seed %d — %s %s op=%s  class %s%s" (i + 1)
    (str b.b_run.header "store") (int_f b.b_run.header "seed")
    (str c "kind") (str c "rule") (str c "op")
    (skey_short (str c "class"))
    (if bool_field c "root" then "  [root cause]" else "")

(* The `run -v` footer: one line per bug, read straight off the event
   stream so the CLI summary and `explain` can never disagree. *)
let bug_footer_lines items =
  let runs = split_runs items in
  List.mapi
    (fun i b ->
       let f = resolve b in
       let prov =
         match f.f_verdict with
         | None -> "?"
         | Some v ->
           str v "prov" ^ (if bool_field v "memo" then "+memo" else "")
       in
       Printf.sprintf "%s  first_diff=op%d prov=%s"
         (bug_headline i b)
         (int_f f.f_bug.b_cluster "first_diff")
         prov)
    (bugs runs)

let render_bug_text buf i (b : bug) =
  let f = resolve b in
  let c = b.b_cluster in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  add "%s\n" (bug_headline i b);
  add "  sites      : persisted-early %s | unpersisted %s\n" (str c "watch")
    (str c "req");
  add "  cluster    : %d failing image(s), example crash tid %d\n"
    (int_f c "count") (int_f c "crash");
  (match f.f_image with
   | None -> add "  (no tested-image event for this cluster's class)\n"
   | Some img ->
     let k = int_f img "crash_op" in
     let desc =
       match Hashtbl.find_opt f.f_ops k with Some d -> d | None -> "?"
     in
     add "  crash      : before fence tid %d in op %d %s\n" (int_f img "fence")
       k desc;
     let extras =
       match Jsonx.member "extras" img with Some (Jsonx.List l) -> l | _ -> []
     in
     add "  persistence: %d store(s) guaranteed, %d in-flight at the fence; \
          %d extra persisted\n"
       (int_f img "guaranteed") (int_f img "dirty") (List.length extras);
     List.iter
       (fun e ->
          add "      + tid %d %s @%d+%d\n" (int_f e "tid") (str e "sid")
            (int_f e "addr") (int_f e "len"))
       extras);
  (match f.f_cond with
   | None -> ()
   | Some cond ->
     add "  condition  : %s — persist %s before making %s visible\n"
       (str cond "rule") (str cond "req") (str cond "watch"));
  (match f.f_slice with
   | None -> ()
   | Some s ->
     let entries =
       match Jsonx.member "entries" s with Some (Jsonx.List l) -> l | _ -> []
     in
     add "  slice      : %d event(s) touching the condition's addresses \
          before the crash%s\n"
       (List.length entries)
       (if bool_field s "truncated" then " (tail shown)" else "");
     List.iter
       (function
         | Jsonx.List
             [ Jsonx.Int tid; Jsonx.Str kind; Jsonx.Str sid; Jsonx.Int addr;
               Jsonx.Int len; Jsonx.Int op ] ->
           add "      tid %-5d %-5s %-40s @%d+%d (op %d)\n" tid kind sid addr
             len op
         | _ -> ())
       entries);
  (match f.f_verdict with
   | None -> add "  (no verdict event for this cluster's class)\n"
   | Some v ->
     let fd = int_f v "first_diff" in
     let desc =
       match Hashtbl.find_opt f.f_ops fd with Some d -> d | None -> "?"
     in
     add "  divergence : op %d %s: got %s | committed %s | rolled-back %s%s\n"
       fd desc (str v "got")
       (str v "expect_committed")
       (str v "expect_rolled_back")
       (if bool_field v "crashed" then "  [visible crash]" else "");
     (match f.f_oracle with
      | Some o when str o "via" = "ckpt" ->
        add "  oracle     : rolled-back oracle resumed from checkpoint at op %d\n"
          (int_f o "from_op")
      | Some _ -> add "  oracle     : rolled-back oracle built by full re-run\n"
      | None -> ());
     let prov = str v "prov" in
     let memo = if bool_field v "memo" then "; memoized verdict" else "" in
     (match f.f_class with
      | None -> add "  provenance : %s%s\n" prov memo
      | Some cl ->
        add "  provenance : %s%s; class of %d member(s), %d deferred, \
             %d spot-check(s)%s%s\n"
          prov memo (int_f cl "members") (int_f cl "deferred")
          (int_f cl "spots")
          (if bool_field cl "promoted" then ", promoted" else "")
          (if bool_field cl "memo_hit" then ", cross-seed memo hit" else "")))

let no_event_note =
  "note: no event data recorded (pre-forensics journal or a campaign run \
   without --events);\nshowing journal bug reports only — re-run with \
   --events for full forensics.\n"

let render_journal_only buf (records : Journal.record list) =
  Buffer.add_string buf no_event_note;
  let i = ref 0 in
  List.iter
    (fun (r : Journal.record) ->
       match r.result with
       | None -> ()
       | Some res ->
         let reports =
           match Jsonx.member "bug_reports" res with
           | Some (Jsonx.List l) -> l
           | _ -> []
         in
         List.iter
           (fun rep ->
              incr i;
              Buffer.add_string buf
                (Printf.sprintf
                   "bug %d: %s %s %s op=%s watch=%s req=%s count=%d\n" !i
                   (str res "store") (str rep "kind") (str rep "rule")
                   (str rep "op") (str rep "watch_sid") (str rep "req_sid")
                   (int_f rep "count")))
           reports)
    records

(* Render the full text report. [bug] (1-based) restricts to one bug;
   [Error] means the selection was out of range. *)
let render_text ?bug source =
  let buf = Buffer.create 1024 in
  (match source with
   | Journal_only records ->
     render_journal_only buf records;
     (match bug with
      | Some _ ->
        Buffer.add_string buf "(--bug selection requires event data)\n"
      | None -> ())
   | Events runs ->
     let all = bugs runs in
     (match all with
      | [] -> Buffer.add_string buf "no bug clusters in the event stream.\n"
      | _ ->
        let selected =
          match bug with
          | None -> List.mapi (fun i b -> (i, b)) all
          | Some k ->
            (match List.nth_opt all (k - 1) with
             | Some b -> [ (k - 1, b) ]
             | None -> [])
        in
        if selected = [] then
          Buffer.add_string buf
            (Printf.sprintf "no such bug: %d (stream has %d)\n"
               (Option.value ~default:0 bug) (List.length all))
        else
          List.iteri
            (fun n (i, b) ->
               if n > 0 then Buffer.add_char buf '\n';
               render_bug_text buf i b)
            selected));
  Buffer.contents buf

(* JSON rendering: the resolved chain per bug, raw event objects under
   stable keys — machine-readable without re-deriving any joins. *)
let render_json ?bug source =
  match source with
  | Journal_only records ->
    Jsonx.Obj
      [ ("events", Jsonx.Bool false);
        ("note", Jsonx.Str "no event data recorded");
        ("bugs",
         Jsonx.List
           (List.concat_map
              (fun (r : Journal.record) ->
                 match r.result with
                 | None -> []
                 | Some res ->
                   (match Jsonx.member "bug_reports" res with
                    | Some (Jsonx.List l) -> l
                    | _ -> []))
              records)) ]
  | Events runs ->
    let all = bugs runs in
    let selected =
      match bug with
      | None -> all
      | Some k -> (match List.nth_opt all (k - 1) with Some b -> [ b ] | None -> [])
    in
    let opt k = function None -> [] | Some j -> [ (k, j) ] in
    Jsonx.Obj
      [ ("events", Jsonx.Bool true);
        ("bugs",
         Jsonx.List
           (List.map
              (fun b ->
                 let f = resolve b in
                 Jsonx.Obj
                   ([ ("store", Jsonx.Str (str b.b_run.header "store"));
                      ("seed", Jsonx.Int (int_f b.b_run.header "seed"));
                      ("cluster", b.b_cluster) ]
                    @ opt "verdict" f.f_verdict
                    @ opt "image" f.f_image
                    @ opt "cond" f.f_cond
                    @ opt "slice" f.f_slice
                    @ opt "oracle" f.f_oracle
                    @ opt "class" f.f_class))
              selected)) ]
