(* The campaign journal: one JSON line per completed job, appended as
   jobs finish and fsync-free by design — a crashed sweep loses at most
   the in-flight jobs, and `--resume` re-runs exactly the missing keys.

   [result_json] is *the* machine-readable encoding of an
   [Engine.result]; `witcher run --json` prints the same object, so a
   single-store run and a campaign cell are byte-compatible. *)

module W = Witcher

type status = Job_ok | Job_failed of string | Job_timeout

type record = {
  spec : Job.spec;
  key : string;
  status : status;
  t_wall : float;
  result : Jsonx.t option;  (* the [result_json] payload when Job_ok *)
  obs : Jsonx.t option;     (* worker pid + metrics snapshot + span buffer *)
}

let status_name = function
  | Job_ok -> "ok"
  | Job_failed _ -> "failed"
  | Job_timeout -> "timeout"

(* ---------- Engine.result -> JSON ---------- *)

let report_json (r : W.Cluster.report) =
  Jsonx.Obj
    [ ("kind",
       Jsonx.Str (match r.kind with
           | W.Cluster.C_ordering -> "C-O"
           | W.Cluster.C_atomicity -> "C-A"));
      ("rule", Jsonx.Str r.rule);
      ("op", Jsonx.Str r.op_desc);
      ("watch_sid", Jsonx.Str r.watch_sid);
      ("req_sid", Jsonx.Str r.req_sid);
      ("count", Jsonx.Int r.count) ]

let perf_json (c : W.Perf.counts) =
  Jsonx.Obj
    [ ("n_bugs", Jsonx.Int (W.Perf.n_bugs c));
      ("n_occurrences", Jsonx.Int (W.Perf.n_occurrences c));
      ("sites",
       Jsonx.List
         (List.map
            (fun (sid, n) ->
               Jsonx.Obj [ ("sid", Jsonx.Str sid); ("count", Jsonx.Int n) ])
            (W.Perf.bug_sites c))) ]

(* Pruning block, emitted only for non-exhaustive runs: exhaustive
   results stay byte-identical to pre-prune journals (the golden-run test
   and any old tooling reading new journals both rely on that). *)
let prune_json (r : W.Engine.result) =
  match r.prune_policy with
  | Prune.Policy.Exhaustive -> []
  | p ->
    [ ("prune",
       Jsonx.Obj
         [ ("policy", Jsonx.Str (Prune.Policy.name p));
           ("classes", Jsonx.Int r.prune_classes);
           ("reps", Jsonx.Int r.prune_reps);
           ("deferred", Jsonx.Int r.images_deferred);
           ("elided", Jsonx.Int r.images_elided);
           ("expansions", Jsonx.Int r.prune_expansions);
           ("seed_memo_hits", Jsonx.Int r.seed_memo_hits);
           ("class_outcomes",
            Jsonx.List
              (List.map
                 (fun (k, ok) ->
                    Jsonx.Obj [ ("k", Jsonx.Str k); ("ok", Jsonx.Bool ok) ])
                 r.class_outcomes)) ]) ]

(* Batch block, emitted only when fence-batched checking ran: batch-off
   results stay byte-identical to pre-batch journals, and pre-batch
   journals (no "batch" member) keep parsing and aggregating as zeros. *)
let batch_json (r : W.Engine.result) =
  if not r.batch_on then []
  else
    [ ("batch",
       Jsonx.Obj
         [ ("fences", Jsonx.Int r.batch_fences);
           ("images", Jsonx.Int r.batch_images);
           ("inherit_hits", Jsonx.Int r.inherit_hits);
           ("replay_ops_saved", Jsonx.Int r.inherit_ops_saved) ]) ]

(* Streaming block, emitted only when the bounded-memory engine ran:
   batch-engine results stay byte-identical to pre-streaming journals,
   and pre-streaming journals (no "stream" member) keep parsing and
   aggregating as zeros. *)
let stream_json (r : W.Engine.result) =
  if not r.stream_on then []
  else
    [ ("stream",
       Jsonx.Obj
         [ ("window_retirements", Jsonx.Int r.window_retirements);
           ("ckpt_ring_evictions", Jsonx.Int r.ckpt_ring_evictions);
           ("peak_live_words", Jsonx.Int r.peak_live_words) ]) ]

let result_json (r : W.Engine.result) =
  Jsonx.Obj
    ([ ("store", Jsonx.Str r.name);
      ("n_ops", Jsonx.Int r.n_ops);
      ("trace_len", Jsonx.Int r.trace_len);
      ("n_loads", Jsonx.Int r.n_loads);
      ("n_stores", Jsonx.Int r.n_stores);
      ("n_flushes", Jsonx.Int r.n_flushes);
      ("n_fences", Jsonx.Int r.n_fences);
      ("n_ord_conds", Jsonx.Int r.n_ord_conds);
      ("n_atom_conds", Jsonx.Int r.n_atom_conds);
      ("n_guardians", Jsonx.Int r.n_guardians);
      ("images_generated", Jsonx.Int r.images_generated);
      ("images_tested", Jsonx.Int r.images_tested);
      ("n_mismatch", Jsonx.Int r.n_mismatch);
      ("n_clusters", Jsonx.Int r.n_clusters);
      ("c_o", Jsonx.Int r.c_o);
      ("c_a", Jsonx.Int r.c_a);
      ("p_u", Jsonx.Int (W.Perf.n_bugs r.perf.p_u));
      ("p_efl", Jsonx.Int (W.Perf.n_bugs r.perf.p_efl));
      ("p_efe", Jsonx.Int (W.Perf.n_bugs r.perf.p_efe));
      ("p_el", Jsonx.Int (W.Perf.n_bugs r.perf.p_el));
      ("bug_reports", Jsonx.List (List.map report_json r.bug_reports));
      ("perf",
       Jsonx.Obj
         [ ("p_u", perf_json r.perf.p_u);
           ("p_efl", perf_json r.perf.p_efl);
           ("p_efe", perf_json r.perf.p_efe);
           ("p_el", perf_json r.perf.p_el) ]);
      ("replay_ops", Jsonx.Int r.replay_ops);
      ("replay_early_stops", Jsonx.Int r.replay_early_stops);
      ("bytes_materialized", Jsonx.Int r.bytes_materialized);
      ("oracle_runs", Jsonx.Int r.oracle_runs);
      ("oracle_ops_saved", Jsonx.Int r.oracle_ops_saved);
      ("memo_hits", Jsonx.Int r.memo_hits);
      ("ckpt_bytes", Jsonx.Int r.ckpt_bytes);
      ("t_record", Jsonx.Float r.t_record);
      ("t_infer", Jsonx.Float r.t_infer);
      ("t_gen", Jsonx.Float r.t_gen);
      ("t_equiv", Jsonx.Float r.t_equiv);
      (* pre-split readers summed generation + checking as t_check; keep
         emitting it so old tooling can read new journals *)
      ("t_check", Jsonx.Float (r.t_gen +. r.t_equiv)) ]
     @ batch_json r @ prune_json r @ stream_json r)

(* ---------- records ---------- *)

let record ?obs ~spec ~t_wall outcome =
  let status, result =
    match (outcome : Pool.outcome) with
    | Pool.Ok payload -> (Job_ok, Some payload)
    | Pool.Failed msg -> (Job_failed msg, None)
    | Pool.Timeout -> (Job_timeout, None)
  in
  { spec; key = Job.key spec; status; t_wall; result; obs }

let record_to_json r =
  let base =
    [ ("key", Jsonx.Str r.key);
      ("job", Job.to_json r.spec);
      ("status", Jsonx.Str (status_name r.status));
      ("t_wall", Jsonx.Float r.t_wall) ]
  in
  let extra =
    match r.status, r.result with
    | Job_failed msg, _ -> [ ("error", Jsonx.Str msg) ]
    | _, Some payload -> [ ("result", payload) ]
    | _, None -> []
  in
  let obs = match r.obs with Some o -> [ ("obs", o) ] | None -> [] in
  Jsonx.Obj (base @ extra @ obs)

let record_of_json j =
  match Jsonx.member "job" j with
  | None -> Error "journal line missing job"
  | Some job_j ->
    (match Job.of_json job_j with
     | Error e -> Error e
     | Ok spec ->
       let status =
         match Jsonx.str_field j "status" with
         | "ok" -> Job_ok
         | "timeout" -> Job_timeout
         | _ -> Job_failed (Jsonx.str_field ~default:"unknown" j "error")
       in
       Ok
         { spec;
           key = Jsonx.str_field ~default:(Job.key spec) j "key";
           status;
           t_wall = Jsonx.float_field j "t_wall";
           result = Jsonx.member "result" j;
           obs = Jsonx.member "obs" j })

let append oc r =
  output_string oc (Jsonx.to_string (record_to_json r));
  output_char oc '\n';
  flush oc

(* Load a journal, skipping blank and malformed lines (a half-written
   last line from a killed sweep must not poison the resume). *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Jsonx.of_string line with
           | Error _ -> ()
           | Ok j ->
             (match record_of_json j with
              | Error _ -> ()
              | Ok r -> records := r :: !records)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

(* Keys that already have a terminal journal entry: [Job_ok] and
   [Job_failed] are terminal; a [Job_timeout] is re-run on resume so a
   transiently overloaded machine doesn't freeze a Timeout verdict into
   the campaign forever. *)
(* ---------- worker observability accessors ---------- *)

let obs_pid r =
  match r.obs with
  | Some o ->
    (match Jsonx.member "pid" o with
     | Some v -> Jsonx.to_int_opt v
     | None -> None)
  | None -> None

let obs_metrics r =
  Option.bind r.obs (fun o ->
      Option.bind (Jsonx.member "metrics" o) (fun m ->
          Result.to_option (Obs.Metrics.of_json m)))

let obs_spans r =
  match Option.bind r.obs (Jsonx.member "spans") with
  | Some s -> Obs.Span.events_of_json s
  | None -> []

let completed_keys records =
  let t = Hashtbl.create 64 in
  List.iter
    (fun r ->
       match r.status with
       | Job_ok | Job_failed _ -> Hashtbl.replace t r.key ()
       | Job_timeout -> ())
    records;
  t
