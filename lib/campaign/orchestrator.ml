(* Campaign orchestration: plan -> (resume filter) -> fork pool ->
   journal -> aggregate. This is the `witcher campaign` entry point and
   the piece the tests drive directly.

   All human-facing output of a sweep — per-job progress lines, the
   periodic heartbeat, and the CLI's banner/summary lines — flows
   through the single [cfg.progress] sink (one choke point instead of
   raw eprintf at call sites), so tests can capture it and the CLI can
   decide once how to flush it. *)

module W = Witcher

type cfg = {
  j : int;                  (* worker processes *)
  timeout : float;          (* per-job wall-clock budget, seconds *)
  out_dir : string;
  resume : bool;
  progress : string -> unit;  (* the one output choke point *)
  heartbeat : float option; (* render a live status line every N seconds *)
  trace_out : string option;  (* write a Chrome trace here after the sweep *)
  events : string option;   (* merge per-worker event shards here *)
}

let default_cfg =
  { j = 1; timeout = 300.; out_dir = "campaign-out"; resume = false;
    progress = ignore; heartbeat = None; trace_out = None; events = None }

(* The sink `witcher campaign` uses: stderr, flushed per line. *)
let stderr_progress line = Printf.eprintf "%s\n%!" line

type summary = {
  executed : int;           (* jobs actually run this invocation *)
  skipped : int;            (* jobs satisfied by the journal (--resume) *)
  records : Journal.record list;  (* full journal after the run *)
  aggregate : Aggregate.t;
  elapsed : float;
  journal_path : string;
  report_txt_path : string;
  report_json_path : string;
  trace_path : string option;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

(* What one worker does: look the store up, build the engine config the
   job spec describes, run the pipeline, return the per-job JSON. Runs
   inside the forked child; [memo] is the orchestrator's cross-seed class
   memo, captured (as of fork time) for representative-mode jobs. *)
let default_run_job ?memo ?events_dir (spec : Job.spec) =
  match Stores.Registry.find spec.store with
  | None -> failwith ("unknown store " ^ spec.store)
  | Some e ->
    let instance =
      match spec.variant with
      | Job.Buggy -> e.buggy ()
      | Job.Fixed -> e.fixed ()
    in
    let cfg =
      { W.Engine.default_cfg with
        workload = { W.Workload.default with n_ops = spec.n_ops;
                     seed = spec.seed };
        crash = { W.Crash_gen.default_cfg with max_images = spec.max_images };
        prune = spec.prune; expand_budget = spec.expand_budget }
    in
    let class_memo =
      match memo with None -> None | Some m -> Some (Seed_memo.fn m spec)
    in
    (* Event shard: one file per job key, written by the forked child.
       Keyed on Job.key so the post-sweep merge is a pure function of
       the matrix, independent of worker scheduling. *)
    (match events_dir with
     | Some d -> Obs.Event.start ~path:(Filename.concat d (Job.key spec ^ ".jsonl")) ()
     | None -> ());
    let result = Journal.result_json (W.Engine.run ~cfg ?class_memo instance) in
    if events_dir <> None then ignore (Obs.Event.stop ());
    result

let progress_line ~done_ ~total (jr : Pool.job_result) =
  let tag =
    match jr.outcome with
    | Pool.Ok _ -> "ok"
    | Pool.Failed _ -> "FAILED"
    | Pool.Timeout -> "TIMEOUT"
  in
  let detail =
    match jr.outcome with Pool.Failed m -> " (" ^ m ^ ")" | _ -> ""
  in
  Printf.sprintf "[%-7s] %d/%d %s %.1fs%s" tag done_ total
    (Job.describe jr.spec) jr.t_wall detail

(* One heartbeat line: sweep progress, what every in-flight worker is
   chewing on (and for how long), and an ETA derived from the
   sequential-estimate metric (mean per-job wall so far, divided across
   the worker slots — the same estimate the final report's speedup line
   uses, which matters on 1-CPU hosts where elapsed != sum of walls). *)
let heartbeat_line ~done_ ~total ~wall_sum ~j ~running =
  let eta =
    if done_ = 0 then ""
    else begin
      let avg = wall_sum /. float_of_int done_ in
      let not_started = total - done_ - List.length running in
      let seq_remaining =
        List.fold_left
          (fun acc (_, elapsed) -> acc +. Float.max 0. (avg -. elapsed))
          (avg *. float_of_int (max 0 not_started))
          running
      in
      Printf.sprintf ", eta ~%.0fs" (seq_remaining /. float_of_int (max 1 j))
    end
  in
  let workers =
    match running with
    | [] -> "idle"
    | l ->
      String.concat "; "
        (List.map
           (fun (spec, elapsed) ->
              Printf.sprintf "%s %.1fs" (Job.describe spec) elapsed)
           (List.sort
              (fun (a, _) (b, _) -> compare (Job.describe a) (Job.describe b))
              l))
  in
  Printf.sprintf "heartbeat: %d/%d done%s | %s" done_ total eta workers

(* One Chrome-trace track per worker pid (job-labelled, coalesced when a
   pid is recycled across jobs), plus an orchestrator track holding one
   span per job so the sweep's scheduling is visible end to end. *)
let trace_tracks ~t_end (records : Journal.record list) =
  let worker_tracks =
    List.filter_map
      (fun (r : Journal.record) ->
         match (Journal.obs_pid r, Journal.obs_spans r) with
         | Some pid, (_ :: _ as events) ->
           Some { Obs.Trace_export.pid; label = Job.describe r.spec; events }
         | _ -> None)
      records
  in
  let orch_events =
    (* journal records carry only per-job wall; anchor each job span so
       it ends when the sweep did minus the jobs journaled after it —
       an approximation only used for the overview track, the per-worker
       stage spans carry the measured timings *)
    let _, evs =
      List.fold_right
        (fun (r : Journal.record) (stop, acc) ->
           let ts = stop -. r.t_wall in
           ( ts,
             { Obs.Span.name = Job.describe r.spec; ts; dur = r.t_wall;
               depth = 0;
               attrs = [ ("status", Journal.status_name r.status) ] }
             :: acc ))
        records (t_end, [])
    in
    evs
  in
  Obs.Trace_export.coalesce
    ({ Obs.Trace_export.pid = Unix.getpid (); label = "orchestrator";
       events = orch_events }
     :: worker_tracks)

(* Run [jobs] under [cfg]. [run_job] defaults to the registry-backed
   engine runner; the tests substitute hostile ones. *)
let run_matrix ?run_job (cfg : cfg) ~jobs =
  mkdir_p cfg.out_dir;
  let journal_path = Filename.concat cfg.out_dir "journal.jsonl" in
  let prior = if cfg.resume then Journal.load journal_path else [] in
  if not cfg.resume && Sys.file_exists journal_path then
    Sys.remove journal_path;
  let done_keys = Journal.completed_keys prior in
  (* Cross-seed class memo: seeded from the resumed journal (so a resumed
     sweep keeps its dedup), grown as results land. Workers capture it at
     fork time; the default runner consults it per job. *)
  let memo = Seed_memo.of_records prior in
  let events_dir =
    match cfg.events with
    | None -> None
    | Some _ ->
      let d = Filename.concat cfg.out_dir "events" in
      mkdir_p d;
      Some d
  in
  let run_job =
    match run_job with
    | Some f -> f
    | None -> fun spec -> default_run_job ~memo ?events_dir spec
  in
  let to_run, skipped =
    List.partition (fun s -> not (Hashtbl.mem done_keys (Job.key s))) jobs
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 journal_path
  in
  let t0 = Unix.gettimeofday () in
  let total = List.length to_run in
  let executed = ref 0 in
  let wall_sum = ref 0. in
  let last_beat = ref t0 in
  let on_tick ~now ~running =
    match cfg.heartbeat with
    | Some period when now -. !last_beat >= period ->
      last_beat := now;
      cfg.progress
        (heartbeat_line ~done_:!executed ~total ~wall_sum:!wall_sum ~j:cfg.j
           ~running)
    | _ -> ()
  in
  Pool.run ~on_tick ~jobs:to_run ~j:cfg.j ~timeout:cfg.timeout ~run_job
    ~on_done:(fun jr ->
        incr executed;
        wall_sum := !wall_sum +. jr.t_wall;
        let record =
          Journal.record ?obs:jr.obs ~spec:jr.spec ~t_wall:jr.t_wall
            jr.outcome
        in
        Seed_memo.add_record memo record;
        Journal.append oc record;
        cfg.progress (progress_line ~done_:!executed ~total jr))
    ();
  close_out oc;
  let elapsed = Unix.gettimeofday () -. t0 in
  let records = Journal.load journal_path in
  (* Aggregate only this campaign's matrix (not unrelated journal rows),
     in matrix order; if a key appears twice — a timed-out job re-run on
     resume — the later record wins. *)
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (r : Journal.record) -> Hashtbl.replace by_key r.key r)
    records;
  let matrix_records =
    List.filter_map (fun s -> Hashtbl.find_opt by_key (Job.key s)) jobs
  in
  let aggregate = Aggregate.of_records matrix_records in
  let report_txt_path = Filename.concat cfg.out_dir "report.txt" in
  let report_json_path = Filename.concat cfg.out_dir "report.json" in
  let txt = Aggregate.to_text ~elapsed ~j:cfg.j aggregate in
  let oc = open_out report_txt_path in
  output_string oc txt;
  close_out oc;
  let oc = open_out report_json_path in
  output_string oc (Jsonx.to_string (Aggregate.to_json ~elapsed ~j:cfg.j aggregate));
  output_char oc '\n';
  close_out oc;
  (* Merge event shards in matrix (jobs-list) order — deterministic for a
     given matrix regardless of which worker ran what when. Shards left
     over from resumed (skipped) jobs merge too, so the merged stream
     covers the whole matrix. *)
  (match cfg.events with
   | None -> ()
   | Some path ->
     mkdir_p (Filename.dirname path);
     let oc = open_out path in
     List.iter
       (fun spec ->
          let shard =
            Filename.concat (Filename.concat cfg.out_dir "events")
              (Job.key spec ^ ".jsonl")
          in
          if Sys.file_exists shard then begin
            let ic = open_in shard in
            (try
               while true do
                 output_string oc (input_line ic);
                 output_char oc '\n'
               done
             with End_of_file -> ());
            close_in ic
          end)
       jobs;
     close_out oc);
  let trace_path =
    match cfg.trace_out with
    | None -> None
    | Some path ->
      mkdir_p (Filename.dirname path);
      Obs.Trace_export.write ~path
        (trace_tracks ~t_end:(Unix.gettimeofday ()) matrix_records);
      Some path
  in
  { executed = !executed;
    skipped = List.length skipped;
    records = matrix_records;
    aggregate;
    elapsed;
    journal_path;
    report_txt_path;
    report_json_path;
    trace_path }
