(* The campaign's JSON module now lives in [Obs.Jsonx] (the observability
   layer needs it below this library in the dependency stack: metrics
   snapshots and Chrome-trace export serialize through it). Re-exported
   here so [Campaign.Jsonx] keeps working for every existing caller, with
   [t] equal to [Obs.Jsonx.t]. *)

include Obs.Jsonx
