(* Cross-seed class dedup (DESIGN §7.3). Representative-mode jobs journal
   the outcome of every path-signature class they validated; within one
   campaign, later jobs of the same (store, variant, n_ops, max_images)
   cell family consult those outcomes so seed k+1 never revalidates a
   class seed k already proved consistent — its members are deferred from
   the start, subject to the same spot-check schedule as any local
   prediction, so a seed-dependent divergence still promotes the class.

   The memo is held by the orchestrator (parent process) and is captured
   by each worker at fork time: jobs started after a result lands see it,
   in-flight jobs don't — best-effort dedup, never a correctness gate. *)

type t = {
  (* cell family -> stable class key -> class proved consistent *)
  cells : (string, (string, bool) Hashtbl.t) Hashtbl.t;
}

let create () = { cells = Hashtbl.create 16 }

(* Deliberately excludes the seed (that is the point) and the prune
   policy/budget: outcomes come only from representative-mode results,
   and an exhaustive job never consults the memo. *)
let cell_key (spec : Job.spec) =
  Printf.sprintf "%s|%s|%d|%d" spec.store
    (Job.variant_name spec.variant)
    spec.n_ops spec.max_images

let cell t spec =
  let k = cell_key spec in
  match Hashtbl.find_opt t.cells k with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 256 in
    Hashtbl.add t.cells k h;
    h

(* Harvest the class outcomes of one job's [result_json] payload. A class
   ever recorded inconsistent stays inconsistent (false wins): eliding on
   it would hide a known-divergent class. *)
let add_result t ~(spec : Job.spec) (result : Jsonx.t) =
  match Option.bind (Jsonx.member "prune" result) (Jsonx.member "class_outcomes") with
  | Some (Jsonx.List l) ->
    let h = cell t spec in
    List.iter
      (fun o ->
         match
           ( Option.bind (Jsonx.member "k" o) Jsonx.to_str_opt,
             Jsonx.member "ok" o )
         with
         | Some k, Some (Jsonx.Bool ok) ->
           let ok = ok && Hashtbl.find_opt h k <> Some false in
           Hashtbl.replace h k ok
         | _ -> ())
      l
  | _ -> ()

let add_record t (r : Journal.record) =
  match r.status, r.result with
  | Journal.Job_ok, Some result -> add_result t ~spec:r.spec result
  | _ -> ()

let of_records records =
  let t = create () in
  List.iter (add_record t) records;
  t

let lookup t (spec : Job.spec) skey =
  Option.bind
    (Hashtbl.find_opt t.cells (cell_key spec))
    (fun h -> Hashtbl.find_opt h skey)

(* The [Engine.run ~class_memo] closure for one job. *)
let fn t (spec : Job.spec) = fun skey -> lookup t spec skey

let n_classes t =
  Hashtbl.fold (fun _ h acc -> acc + Hashtbl.length h) t.cells 0
