(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) against the simulated-NVM reproduction, plus Bechamel
   micro-benchmarks for the pipeline stages.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table5 fig4  # selected sections
     WITCHER_OPS=500 dune exec bench/main.exe # larger workloads

   The paper ran 2,000-operation test cases per program on a 32-core Xeon
   for hours; the default here is 200 operations so the full suite runs
   in minutes. Shapes, not absolute numbers, are the reproduction target
   (see EXPERIMENTS.md). *)

module W = Witcher
module R = Stores.Registry

let n_ops =
  try int_of_string (Sys.getenv "WITCHER_OPS") with _ -> 200

let engine_cfg =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops } }

let line = String.make 118 '-'

let section name =
  Printf.printf "\n%s\n== %s\n%s\n" line name line

(* memoize engine runs: several sections reuse them *)
let results : (string, W.Engine.result) Hashtbl.t = Hashtbl.create 32
let recorded : (string, W.Driver.recorded) Hashtbl.t = Hashtbl.create 32

let run_store (e : R.entry) =
  match Hashtbl.find_opt results e.name with
  | Some r -> r
  | None ->
    let r = W.Engine.run ~cfg:engine_cfg (e.buggy ()) in
    Hashtbl.replace results e.name r;
    r

let record_store (e : R.entry) =
  match Hashtbl.find_opt recorded e.name with
  | Some r -> r
  | None ->
    let module S = (val e.buggy ()) in
    let wl =
      if S.supports_scan then { W.Workload.default with n_ops }
      else W.Workload.no_scan { W.Workload.default with n_ops }
    in
    let r = W.Driver.record (module S) (W.Workload.generate wl) in
    Hashtbl.replace recorded e.name r;
    r

(* --- Table 1 & 2: static comparisons --- *)

let table1 () =
  section "Table 1: comparison with existing crash-consistency testing tools";
  print_endline (W.Report.table1 ())

let table2 () =
  section "Table 2: likely-correctness condition inference rules";
  print_endline (W.Report.table2 ());
  (* live demonstration: the rules firing on the Level-Hashing trace *)
  let e = Option.get (R.find "level-hash") in
  let r = record_store e in
  let conds = W.Infer.infer r.trace in
  Printf.printf
    "\nLive on level-hash (%d ops): %d ordering conditions (PO1+PO2+PO3), \
     %d guardians => %d atomicity conditions\n"
    n_ops (W.Infer.n_ordering conds) (W.Infer.n_guardians conds)
    (W.Infer.n_atomicity conds)

(* --- Table 3: the tested programs --- *)

let table3 () =
  section "Table 3: tested NVM programs";
  Printf.printf "%-16s | %-13s | %-4s | %-22s | %s\n" "Program" "Group" "Lib"
    "Core NVM construct" "Seeded paper bug ids";
  print_endline line;
  List.iter
    (fun (e : R.entry) ->
       Printf.printf "%-16s | %-13s | %-4s | %-22s | %s\n" e.name
         (R.group_name e.group)
         (match e.lib with `LL -> "LL" | `TX -> "TX")
         e.construct
         (String.concat "," (List.map string_of_int e.paper_bug_ids)))
    R.all

(* --- Table 4: detected correctness bugs --- *)

let table4 () =
  section "Table 4: correctness bugs discovered by Witcher (root causes)";
  let total_co = ref 0 and total_ca = ref 0 in
  List.iter
    (fun (e : R.entry) ->
       if e.group <> R.Non_kv then begin
         let r = run_store e in
         total_co := !total_co + r.c_o;
         total_ca := !total_ca + r.c_a;
         if r.bug_reports <> [] then begin
           Printf.printf "\n%s (seeded paper bugs: %s) -> %d C-O, %d C-A\n"
             e.name
             (String.concat "," (List.map string_of_int e.paper_bug_ids))
             r.c_o r.c_a;
           List.iteri
             (fun i (rep : W.Cluster.report) ->
                Printf.printf "  %2d. %s\n" (i + 1)
                  (Fmt.str "%a" W.Cluster.pp_report rep))
             r.bug_reports
         end
       end)
    R.all;
  Printf.printf "\nTotal: %d C-O + %d C-A root causes across the fleet \
                 (paper: 25 C-O + 22 C-A from 2000-op runs)\n"
    !total_co !total_ca

(* --- Table 5: per-store statistics --- *)

let table5 () =
  section "Table 5: detected bugs and per-store Witcher statistics";
  print_endline (W.Report.result_header ());
  print_endline line;
  let tot = Array.make 12 0 in
  List.iter
    (fun (e : R.entry) ->
       let r = run_store e in
       print_endline (W.Report.result_row r);
       let p n i = tot.(i) <- tot.(i) + n in
       p r.c_o 0; p r.c_a 1;
       p (W.Perf.n_bugs r.perf.p_u) 2;
       p (W.Perf.n_bugs r.perf.p_efl) 3;
       p (W.Perf.n_bugs r.perf.p_efe) 4;
       p (W.Perf.n_bugs r.perf.p_el) 5;
       p r.n_ord_conds 6; p r.n_atom_conds 7;
       p r.images_generated 8; p r.images_tested 9;
       p r.n_mismatch 10; p r.n_clusters 11)
    R.all;
  print_endline line;
  Printf.printf
    "%-18s | %4d %4d | %4d %5d %5d %4d | %9d %9d | %8d %8d %8d | %8d |\n"
    "Total" tot.(0) tot.(1) tot.(2) tot.(3) tot.(4) tot.(5) tot.(6) tot.(7)
    tot.(8) tot.(9) tot.(10) tot.(11);
  (* negative control: fixed variants must be clean *)
  Printf.printf "\nFixed-variant control (all must report 0 correctness bugs):\n";
  List.iter
    (fun (e : R.entry) ->
       let r = W.Engine.run ~cfg:engine_cfg (e.fixed ()) in
       Printf.printf "  %-18s C-O=%d C-A=%d %s\n" e.name r.c_o r.c_a
         (if r.c_o + r.c_a = 0 then "[clean]" else "[UNEXPECTED]"))
    R.all

(* --- Figure 4: test-space comparison with Yat --- *)

let fig4 () =
  section "Figure 4: crash-state test space, Yat (exhaustive) vs Witcher";
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let rec_ = record_store e in
       let r = run_store e in
       let series =
         W.Yat.estimate ~trace:rec_.trace ~pool_size:rec_.pool_size
           ~per_op_images:r.per_op_images ~n_ops
       in
       print_endline (W.Report.figure4 ~name series ~step:(max 1 (n_ops / 12)));
       let last = Array.length series.yat_log10 - 1 in
       Printf.printf
         "  => Yat would validate ~10^%.0f states; Witcher tests %d images \
          (paper: 10^31 vs ~5.5x10^4 for level-hash at 2000 ops)\n\n"
         series.yat_log10.(last) series.witcher.(last))
    [ "level-hash"; "fast-fair"; "cceh" ]

(* --- 7.5: random state sampling baseline --- *)

let random_baseline () =
  section "Random NVM-state sampling vs likely-correctness-condition pruning (7.5)";
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let rec_ = record_store e in
       let r = run_store e in
       let module S = (val e.buggy ()) in
       let checker =
         W.Equiv.create (module S) ~ops:rec_.ops ~committed:rec_.outputs
       in
       let check ~img ~crash_op = W.Equiv.check checker ~img ~crash_op in
       let rnd =
         W.Random_explore.run ~trace:rec_.trace ~pool_size:rec_.pool_size
           ~samples_per_fence:1 ~check ()
       in
       Printf.printf
         "%-12s witcher: %4d images -> %3d mismatches, %2d root causes | random: %4d images -> %3d mismatches at %d crash sites\n"
         name r.images_tested r.n_mismatch (r.c_o + r.c_a) rnd.sampled
         rnd.mismatches rnd.distinct_crash_sites)
    [ "level-hash"; "fast-fair"; "cceh" ];
  print_endline
    "\n(The paper sampled 100M random states per program for ~a week and\n\
     \ found at most 1-2 of Witcher's bugs; random mismatch counts here are\n\
     \ dominated by a few shallow states while guided images pinpoint\n\
     \ distinct root causes.)"

(* --- 7.6: comparison with Agamotto / PMTest oracles --- *)

let compare_tools () =
  section "Tool comparison: universal / annotation oracles vs output equivalence (7.6)";
  let stores = [ "b-tree"; "rb-tree"; "hashmap-atomic"; "p-clht"; "memcached"; "redis" ] in
  Printf.printf "%-16s | %22s | %30s | %s\n" "Program"
    "Witcher (corr., perf)" "Agamotto-style (universal)" "notes";
  print_endline line;
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let rec_ = record_store e in
       let r = run_store e in
       let aga = W.Baselines.agamotto rec_.trace in
       let perf_bugs =
         W.Perf.n_bugs r.perf.p_u + W.Perf.n_bugs r.perf.p_efl
         + W.Perf.n_bugs r.perf.p_efe + W.Perf.n_bugs r.perf.p_el
       in
       Printf.printf "%-16s | %11d, %8d | miss-persist:%3d miss-log:%3d | %s\n"
         name (r.c_o + r.c_a) perf_bugs
         (List.length aga.missing_persist_sites)
         (List.length aga.missing_log_sites)
         (if r.c_o + r.c_a > 0
            && aga.missing_persist_sites = [] && aga.missing_log_sites = []
          then "app-specific bugs invisible to universal oracles"
          else ""))
    stores;
  (* the Redis benign-store false positive *)
  let e = Option.get (R.find "redis") in
  let rec_ = record_store e in
  let anns = [ W.Baselines.In_tx { sid = "redis:init.zero_root" } ] in
  let viol = W.Baselines.pmtest rec_.trace ~pool_size:rec_.pool_size ~annotations:anns in
  let r = run_store e in
  Printf.printf
    "\nPMTest-style annotation on redis:init.zero_root: %d violation(s) flagged.\n\
     Witcher on the same trace: %d correctness bugs - the unprotected store\n\
     rewrites zeroes with zeroes, so output equivalence prunes the false\n\
     positive exactly as in 7.6.\n"
    (List.length viol) (r.c_o + r.c_a)

(* --- 7.7: non-key-value programs --- *)

let nonkv () =
  section "Non-key-value NVM programs: persistent array and queue (7.7)";
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let r = run_store e in
       Printf.printf "%s\n" (W.Report.result_row r);
       List.iteri
         (fun i (rep : W.Cluster.report) ->
            Printf.printf "  %2d. %s\n" (i + 1)
              (Fmt.str "%a" W.Cluster.pp_report rep))
         r.bug_reports)
    [ "p-array"; "p-queue" ];
  print_endline
    "(The paper found one known bug in the persistent array and none in\n\
     the queue; the array's realloc-ordering defect is the seeded one.)"

(* --- validate: zero-copy validation path vs legacy full-copy replay --- *)

let max_images =
  try int_of_string (Sys.getenv "WITCHER_MAX_IMAGES")
  with _ -> W.Crash_gen.default_cfg.max_images

(* Machine-readable rows collected by sections for --json / BENCH.json. *)
let json_sections : (string * Obs.Jsonx.t) list ref = ref []

let validate () =
  section "Zero-copy validation: COW images + streaming checks vs full-copy replay";
  Printf.printf "%-12s | %8s %8s | %10s %11s %7s | %10s %11s %7s\n"
    "store" "#img" "#mismtch" "legacy(s)" "zerocopy(s)" "speedup"
    "replay-ops" "early-stops" "mat-MB";
  print_endline line;
  let rows = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let rec_ = record_store e in
       let conds = W.Infer.infer rec_.trace in
       let crash_cfg = { W.Crash_gen.default_cfg with max_images } in
       let fuel = W.Engine.default_cfg.fuel in
       let gen on_image =
         W.Crash_gen.generate ~cfg:crash_cfg ~trace:rec_.trace ~conds
           ~pool_size:rec_.pool_size ~on_image ()
       in
       let key = function
         | W.Equiv.Consistent -> -1
         | W.Equiv.Inconsistent d -> d.first_diff
       in
       (* Legacy validation, reproducing the pre-refactor cost model:
          detach each image into a flat full-pool copy, replay the whole
          suffix into an array, then compare against both oracles. *)
       let module S = (val e.buggy ()) in
       let legacy_checker =
         W.Equiv.create ~fuel (module S) ~ops:rec_.ops ~committed:rec_.outputs
       in
       let legacy = ref [] in
       let t_legacy = ref 0. in
       let _ =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let flat = Nvm.Pmem.copy img.img in
             let k = img.crash_op in
             let got =
               W.Driver.resume (module S) ~image:flat ~ops:rec_.ops
                 ~from_op:k ~fuel
             in
             let rb = W.Equiv.rolled_back_oracle legacy_checker k in
             let v =
               W.Equiv.verdict_of_outputs ~crash_op:k ~got
                 ~committed:(fun i -> rec_.outputs.(k + i))
                 ~rolled_back:(fun i -> rb.(i))
             in
             t_legacy := !t_legacy +. (Unix.gettimeofday () -. t0);
             legacy := (k, key v) :: !legacy;
             `Continue)
       in
       (* Zero-copy validation: check each COW overlay in place with the
          streaming checker; replays abort once both oracles are dead. *)
       let module S2 = (val e.buggy ()) in
       let checker =
         W.Equiv.create ~fuel (module S2) ~ops:rec_.ops ~committed:rec_.outputs
       in
       let stream = ref [] in
       let t_stream = ref 0. in
       let gstats =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let v = W.Equiv.check checker ~img:img.img ~crash_op:img.crash_op in
             t_stream := !t_stream +. (Unix.gettimeofday () -. t0);
             stream := (img.crash_op, key v) :: !stream;
             `Continue)
       in
       if !legacy <> !stream then
         Printf.printf "!! %-10s verdict sequences DIFFER between paths\n" name;
       let mismatches =
         List.length (List.filter (fun (_, d) -> d >= 0) !stream)
       in
       let st = W.Equiv.stats checker in
       let speedup = if !t_stream > 0. then !t_legacy /. !t_stream else 0. in
       Printf.printf "%-12s | %8d %8d | %10.2f %11.2f %6.2fx | %10d %11d %7.2f\n"
         name (List.length !stream) mismatches !t_legacy !t_stream speedup
         st.W.Equiv.n_replay_ops st.W.Equiv.n_early_stops
         (float_of_int gstats.W.Crash_gen.bytes_materialized /. 1024. /. 1024.);
       rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("images", Obs.Jsonx.Int (List.length !stream));
             ("mismatches", Obs.Jsonx.Int mismatches);
             ("legacy_time_s", Obs.Jsonx.Float !t_legacy);
             ("zerocopy_time_s", Obs.Jsonx.Float !t_stream);
             ("speedup", Obs.Jsonx.Float speedup);
             ("replay_ops", Obs.Jsonx.Int st.W.Equiv.n_replay_ops);
             ("early_stops", Obs.Jsonx.Int st.W.Equiv.n_early_stops);
             ("bytes_materialized",
              Obs.Jsonx.Int gstats.W.Crash_gen.bytes_materialized);
             ("parity", Obs.Jsonx.Bool (!legacy = !stream)) ]
         :: !rows)
    [ "level-hash"; "fast-fair" ];
  print_endline
    "\n(Both paths must produce identical per-image verdicts; any divergence\n\
     \ is flagged above. The zero-copy path materializes O(dirty-lines)\n\
     \ overlays instead of full pool copies and aborts each replay as soon\n\
     \ as both oracles are ruled out.)";
  Printf.printf "\nPer-stage pipeline timing (full engine run):\n";
  List.iter
    (fun name ->
       let r = run_store (Option.get (R.find name)) in
       print_endline ("  " ^ W.Report.timing_line r))
    [ "level-hash"; "fast-fair" ];
  json_sections :=
    ("validate", Obs.Jsonx.List (List.rev !rows)) :: !json_sections

(* --- oracle: lazy + checkpointed + memoized checking vs eager legacy --- *)

let oracle () =
  section
    "Oracle memoization: lazy + checkpointed + digest-memoized checking vs \
     eager oracles";
  Printf.printf
    "%-12s | %6s %8s | %9s %6s %7s | %7s %7s %8s %6s %7s\n"
    "store" "#img" "#mismtch" "legacy(s)" "opt(s)" "speedup"
    "orc-leg" "orc-opt" "ops-savd" "#memo" "ckpt-MB";
  print_endline line;
  let ckpt_stride = W.Engine.default_cfg.ckpt_stride in
  let fuel = W.Engine.default_cfg.fuel in
  let speedups = ref [] in
  let rows = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       (* Record locally (not via [record_store]): this run carries
          checkpoints, and dropping the binding after the iteration keeps
          only one store's snapshots alive at a time. *)
       let module S = (val e.buggy ()) in
       let wl =
         if S.supports_scan then { W.Workload.default with n_ops }
         else W.Workload.no_scan { W.Workload.default with n_ops }
       in
       let rec_ =
         W.Driver.record ~ckpt_stride (module S) (W.Workload.generate wl)
       in
       let conds = W.Infer.infer rec_.trace in
       let crash_cfg = { W.Crash_gen.default_cfg with max_images } in
       let gen on_image =
         W.Crash_gen.generate ~cfg:crash_cfg ~trace:rec_.trace ~conds
           ~pool_size:rec_.pool_size ~on_image ()
       in
       let key = function
         | W.Equiv.Consistent -> -1
         | W.Equiv.Inconsistent d -> d.first_diff
       in
       (* Pass A — legacy: every rolled-back oracle built eagerly by a
          full O(n) re-run, every image replayed (the pre-memoization
          checker). *)
       let legacy_checker =
         W.Equiv.create ~fuel ~lazy_oracle:false ~memo:false (module S)
           ~ops:rec_.ops ~committed:rec_.outputs
       in
       let legacy = ref [] in
       let t_legacy = ref 0. in
       let _ =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let v =
               W.Equiv.check legacy_checker ~img:img.img ~crash_op:img.crash_op
             in
             t_legacy := !t_legacy +. (Unix.gettimeofday () -. t0);
             legacy := (img.crash_op, key v) :: !legacy;
             `Continue)
       in
       (* Pass B — optimized: lazy oracles resumed from record-time
          checkpoints, digest-keyed verdict memo. *)
       let checker =
         W.Equiv.create ~fuel ~checkpoints:rec_.checkpoints (module S)
           ~ops:rec_.ops ~committed:rec_.outputs
       in
       let opt = ref [] in
       let t_opt = ref 0. in
       let _ =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let v =
               W.Equiv.check ~digest:img.digest checker ~img:img.img
                 ~crash_op:img.crash_op
             in
             t_opt := !t_opt +. (Unix.gettimeofday () -. t0);
             opt := (img.crash_op, key v) :: !opt;
             `Continue)
       in
       (* Hard parity assertion: the optimizations must be invisible in
          the verdicts. *)
       if !legacy <> !opt then
         failwith
           (Printf.sprintf
              "bench oracle: %s verdict sequences differ between legacy and \
               optimized checkers" name);
       let mismatches = List.length (List.filter (fun (_, d) -> d >= 0) !opt) in
       let stl = W.Equiv.stats legacy_checker in
       let sto = W.Equiv.stats checker in
       let speedup = if !t_opt > 0. then !t_legacy /. !t_opt else 0. in
       speedups := (name, speedup) :: !speedups;
       Printf.printf
         "%-12s | %6d %8d | %9.2f %6.2f %6.2fx | %7d %7d %8d %6d %7.2f\n"
         name (List.length !opt) mismatches !t_legacy !t_opt speedup
         stl.W.Equiv.n_oracle_runs sto.W.Equiv.n_oracle_runs
         sto.W.Equiv.n_oracle_ops_saved sto.W.Equiv.n_memo_hits
         (float_of_int (List.length rec_.checkpoints * rec_.pool_size)
          /. 1024. /. 1024.);
       rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("images", Obs.Jsonx.Int (List.length !opt));
             ("mismatches", Obs.Jsonx.Int mismatches);
             ("legacy_time_s", Obs.Jsonx.Float !t_legacy);
             ("optimized_time_s", Obs.Jsonx.Float !t_opt);
             ("speedup", Obs.Jsonx.Float speedup);
             ("oracle_runs_legacy", Obs.Jsonx.Int stl.W.Equiv.n_oracle_runs);
             ("oracle_runs_opt", Obs.Jsonx.Int sto.W.Equiv.n_oracle_runs);
             ("oracle_ops_saved", Obs.Jsonx.Int sto.W.Equiv.n_oracle_ops_saved);
             ("memo_hits", Obs.Jsonx.Int sto.W.Equiv.n_memo_hits);
             ("ckpt_bytes",
              Obs.Jsonx.Int (List.length rec_.checkpoints * rec_.pool_size));
             ("parity", Obs.Jsonx.Bool true) ]
         :: !rows)
    [ "level-hash"; "fast-fair"; "cceh" ];
  let fast =
    List.length (List.filter (fun (_, s) -> s >= 1.5) !speedups)
  in
  Printf.printf
    "\n%d/%d stores at >= 1.5x validation-stage speedup (per-image verdicts \
     identical on all).\n"
    fast (List.length !speedups);
  json_sections :=
    ("oracle", Obs.Jsonx.List (List.rev !rows)) :: !json_sections

(* --- batch: fence-batched validation vs per-image checking --- *)

let batch () =
  section
    "Fence-batched validation: per-image checkers vs one shared batched \
     checker with verdict inheritance (DESIGN §5)";
  Printf.printf
    "%-12s | %6s %8s | %9s %8s %7s | %6s %7s %6s %8s %6s\n"
    "store" "#img" "#mismtch" "perimg(s)" "batch(s)" "speedup"
    "#fence" "img/fnc" "#inh" "ops-savd" "#memo";
  print_endline line;
  let ckpt_stride = W.Engine.default_cfg.ckpt_stride in
  let fuel = W.Engine.default_cfg.fuel in
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let module S = (val e.buggy ()) in
       let wl =
         if S.supports_scan then { W.Workload.default with n_ops }
         else W.Workload.no_scan { W.Workload.default with n_ops }
       in
       let rec_ =
         W.Driver.record ~ckpt_stride (module S) (W.Workload.generate wl)
       in
       let conds = W.Infer.infer rec_.trace in
       let crash_cfg = { W.Crash_gen.default_cfg with max_images } in
       let gen on_image =
         W.Crash_gen.generate ~cfg:crash_cfg ~trace:rec_.trace ~conds
           ~pool_size:rec_.pool_size ~on_image ()
       in
       let key = function
         | W.Equiv.Consistent -> -1
         | W.Equiv.Inconsistent d -> d.first_diff
       in
       let op_kind_of (img : W.Crash_gen.image) =
         let op_desc =
           if img.crash_op = 0 then "create"
           else W.Op.desc rec_.ops.(img.crash_op - 1)
         in
         Nvm.Sid.intern (W.Cluster.op_kind_of_desc op_desc)
       in
       (* Pass A — per-image cost model: a FRESH eager checker per image,
          so every verdict pays its own oracle construction and its own
          full replay. Nothing — oracles, memo entries, read sets — is
          shared across images. *)
       let a_verdicts = ref [] in
       let cl_a = W.Cluster.create ~store_name:name in
       let t_a = ref 0. in
       let a_replay = ref 0 in
       let _ =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let checker =
               W.Equiv.create ~fuel ~lazy_oracle:false ~memo:false (module S)
                 ~ops:rec_.ops ~committed:rec_.outputs
             in
             let v =
               W.Equiv.check checker ~img:img.img ~crash_op:img.crash_op
             in
             t_a := !t_a +. (Unix.gettimeofday () -. t0);
             a_replay :=
               !a_replay + (W.Equiv.stats checker).W.Equiv.n_replay_ops;
             a_verdicts := (img.crash_op, key v) :: !a_verdicts;
             W.Cluster.add cl_a ~image:img ~op_kind:(op_kind_of img)
               ~verdict:v;
             `Continue)
       in
       (* Pass B — fence-batched: one shared checker with checkpoints,
          lazy oracles and the digest memo, plus fence grouping: all
          images generated at one fence form a group, and a sibling whose
          extras-delta misses a finished replay's read set inherits that
          verdict without replaying. *)
       let checker =
         W.Equiv.create ~fuel ~checkpoints:rec_.checkpoints (module S)
           ~ops:rec_.ops ~committed:rec_.outputs
       in
       W.Equiv.enable_batch checker ~addr_len:(fun tid ->
           (Nvm.Trace.addr_at rec_.trace tid, Nvm.Trace.len_at rec_.trace tid));
       let b_verdicts = ref [] in
       let cl_b = W.Cluster.create ~store_name:name in
       let t_b = ref 0. in
       let _ =
         gen (fun (img : W.Crash_gen.image) ->
             let t0 = Unix.gettimeofday () in
             let v =
               W.Equiv.check ~digest:img.digest ~fence:img.crash_tid
                 ~extras:img.extras checker ~img:img.img ~crash_op:img.crash_op
             in
             t_b := !t_b +. (Unix.gettimeofday () -. t0);
             b_verdicts := (img.crash_op, key v) :: !b_verdicts;
             W.Cluster.add cl_b ~image:img ~op_kind:(op_kind_of img)
               ~verdict:v;
             `Continue)
       in
       let t0 = Unix.gettimeofday () in
       W.Equiv.flush_batch checker;
       t_b := !t_b +. (Unix.gettimeofday () -. t0);
       (* Hard parity: batching must be invisible in the verdicts — the
          per-image verdict sequence (crash op + first divergent output)
          and the clustered bug reports must be bit-identical. *)
       if List.rev !a_verdicts <> List.rev !b_verdicts then
         failwith
           (Printf.sprintf
              "bench batch: %s verdict sequences differ between per-image \
               and fence-batched checking" name);
       if W.Cluster.reports cl_a <> W.Cluster.reports cl_b then
         failwith
           (Printf.sprintf
              "bench batch: %s cluster reports differ between per-image and \
               fence-batched checking" name);
       let mismatches =
         List.length (List.filter (fun (_, d) -> d >= 0) !b_verdicts)
       in
       let st = W.Equiv.stats checker in
       let speedup = if !t_b > 0. then !t_a /. !t_b else 0. in
       speedups := (name, speedup) :: !speedups;
       let per_fence =
         if st.W.Equiv.n_batch_fences = 0 then 0.
         else
           float_of_int st.W.Equiv.n_batch_images
           /. float_of_int st.W.Equiv.n_batch_fences
       in
       Printf.printf
         "%-12s | %6d %8d | %9.2f %8.2f %6.2fx | %6d %7.1f %6d %8d %6d\n"
         name (List.length !b_verdicts) mismatches !t_a !t_b speedup
         st.W.Equiv.n_batch_fences per_fence st.W.Equiv.n_inherit_hits
         st.W.Equiv.n_inherit_ops_saved st.W.Equiv.n_memo_hits;
       rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("images", Obs.Jsonx.Int (List.length !b_verdicts));
             ("mismatches", Obs.Jsonx.Int mismatches);
             ("per_image_time_s", Obs.Jsonx.Float !t_a);
             ("batched_time_s", Obs.Jsonx.Float !t_b);
             ("speedup", Obs.Jsonx.Float speedup);
             ("per_image_replay_ops", Obs.Jsonx.Int !a_replay);
             ("batched_replay_ops", Obs.Jsonx.Int st.W.Equiv.n_replay_ops);
             ("batch_fences", Obs.Jsonx.Int st.W.Equiv.n_batch_fences);
             ("batch_images", Obs.Jsonx.Int st.W.Equiv.n_batch_images);
             ("inherit_hits", Obs.Jsonx.Int st.W.Equiv.n_inherit_hits);
             ("inherit_ops_saved",
              Obs.Jsonx.Int st.W.Equiv.n_inherit_ops_saved);
             ("memo_hits", Obs.Jsonx.Int st.W.Equiv.n_memo_hits);
             ("parity", Obs.Jsonx.Bool true) ]
         :: !rows)
    [ "level-hash"; "fast-fair"; "cceh"; "wort"; "b-tree" ];
  let fast = List.length (List.filter (fun (_, s) -> s >= 1.5) !speedups) in
  Printf.printf
    "\n%d/%d stores at >= 1.5x checking speedup (per-image verdict sequence \
     and cluster reports identical on all).\n"
    fast (List.length !speedups);
  json_sections :=
    ("batch", Obs.Jsonx.List (List.rev !rows)) :: !json_sections

(* --- frontend: interned sids + SoA trace + indexed lookup vs reference --- *)

let frontend_reps =
  try int_of_string (Sys.getenv "WITCHER_FRONTEND_REPS") with _ -> 3

let frontend () =
  section
    "Front-end fast path: record + infer + generate, fast vs reference \
     (pre-interning) path";
  Printf.printf
    "%-12s | %7s | %8s %8s %6s | %8s %8s %6s | %8s %8s %6s | %8s\n"
    "store" "#events" "rec-ref" "rec-fast" "x" "inf-ref" "inf-fast" "x"
    "gen-ref" "gen-fast" "x" "combined";
  print_endline line;
  let crash_cfg = { W.Crash_gen.default_cfg with max_images } in
  let rows = ref [] in
  let speedups = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let ops =
         let module S = (val e.buggy ()) in
         let wl =
           if S.supports_scan then { W.Workload.default with n_ops }
           else W.Workload.no_scan { W.Workload.default with n_ops }
         in
         W.Workload.generate wl
       in
       (* One warm-up call, then the average of [frontend_reps] timed
          runs after a major collection: single-shot wall-clock on a
          1-CPU container is dominated by allocator warm-up and GC
          scheduling noise. Both paths get the identical treatment. *)
       let time f =
         ignore (f ());
         Gc.full_major ();
         let t0 = Unix.gettimeofday () in
         let r = ref (f ()) in
         for _ = 2 to frontend_reps do r := f () done;
         ((Unix.gettimeofday () -. t0) /. float_of_int frontend_reps, !r)
       in
       (* Stage 1: record. The reference path stores one boxed event per
          trace node; the fast path appends to the int-array columns. *)
       let t_rec_ref, rec_ref =
         time (fun () -> W.Driver.record ~boxed:true (e.buggy ()) ops)
       in
       let t_rec_fast, rec_fast =
         time (fun () -> W.Driver.record (e.buggy ()) ops)
       in
       let n_ev = Nvm.Trace.length rec_fast.trace in
       if Nvm.Trace.length rec_ref.trace <> n_ev then
         failwith
           (Printf.sprintf "bench frontend: %s trace lengths differ" name);
       for i = 0 to n_ev - 1 do
         if Nvm.Trace.get rec_ref.trace i <> Nvm.Trace.get rec_fast.trace i
         then
           failwith
             (Printf.sprintf "bench frontend: %s traces differ at tid %d"
                name i)
       done;
       if rec_ref.outputs <> rec_fast.outputs then
         failwith
           (Printf.sprintf "bench frontend: %s committed outputs differ" name);
       (* Stage 2: infer. *)
       let t_inf_ref, conds_ref =
         time (fun () -> W.Frontend_ref.infer rec_ref.trace)
       in
       let t_inf_fast, conds_fast =
         time (fun () -> W.Infer.infer rec_fast.trace)
       in
       if
         ( conds_ref.W.Frontend_ref.n_po1, conds_ref.W.Frontend_ref.n_po2,
           conds_ref.W.Frontend_ref.n_po3, conds_ref.W.Frontend_ref.n_guardians )
         <> ( conds_fast.W.Infer.n_po1, conds_fast.W.Infer.n_po2,
              conds_fast.W.Infer.n_po3, conds_fast.W.Infer.n_guardians )
       then
         failwith
           (Printf.sprintf
              "bench frontend: %s inferred condition counts differ \
               (ref %d/%d/%d/%d vs fast %d/%d/%d/%d)"
              name conds_ref.W.Frontend_ref.n_po1 conds_ref.W.Frontend_ref.n_po2
              conds_ref.W.Frontend_ref.n_po3 conds_ref.W.Frontend_ref.n_guardians
              conds_fast.W.Infer.n_po1 conds_fast.W.Infer.n_po2
              conds_fast.W.Infer.n_po3 conds_fast.W.Infer.n_guardians);
       (* Stage 3: generate. Collect the image digest sequence and feed
          every image into a cluster table (with a synthetic verdict, so
          no replays run) — both must be identical across paths, which
          pins down crash points, persist sets, path hashes and violated
          sites, not just counts. *)
       let run_gen gen =
         let once () =
           let digests = ref [] in
           let cl = W.Cluster.create ~store_name:name in
           let some_out = rec_fast.outputs.(0) in
           let on_image (img : W.Crash_gen.image) =
             digests := img.digest :: !digests;
             let op_desc =
               if img.crash_op = 0 then "create"
               else W.Op.desc rec_fast.ops.(img.crash_op - 1)
             in
             let op_kind =
               Nvm.Sid.intern (W.Cluster.op_kind_of_desc op_desc)
             in
             W.Cluster.add cl ~image:img ~op_kind
               ~verdict:
                 (W.Equiv.Inconsistent
                    { first_diff = img.crash_op; got = some_out;
                      expect_committed = some_out;
                      expect_rolled_back = some_out; crashed = false });
             `Continue
           in
           let stats = gen on_image in
           (stats, List.rev !digests, W.Cluster.reports cl)
         in
         let t, (stats, digests, reports) = time once in
         (stats, digests, reports, t)
       in
       let stats_ref, dig_ref, reps_ref, t_gen_ref =
         run_gen (fun on_image ->
             W.Frontend_ref.generate ~cfg:crash_cfg ~trace:rec_ref.trace
               ~conds:conds_ref ~pool_size:rec_ref.pool_size ~on_image ())
       in
       let stats_fast, dig_fast, reps_fast, t_gen_fast =
         run_gen (fun on_image ->
             W.Crash_gen.generate ~cfg:crash_cfg ~trace:rec_fast.trace
               ~conds:conds_fast ~pool_size:rec_fast.pool_size ~on_image ())
       in
       if dig_ref <> dig_fast then
         failwith
           (Printf.sprintf
              "bench frontend: %s image digest sequences differ (%d vs %d \
               images)"
              name (List.length dig_ref) (List.length dig_fast));
       if
         ( stats_ref.W.Crash_gen.candidates, stats_ref.generated,
           stats_ref.tested, stats_ref.bytes_materialized )
         <> ( stats_fast.W.Crash_gen.candidates, stats_fast.generated,
              stats_fast.tested, stats_fast.bytes_materialized )
       then failwith (Printf.sprintf "bench frontend: %s stats differ" name);
       if reps_ref <> reps_fast then
         failwith
           (Printf.sprintf "bench frontend: %s cluster reports differ" name);
       let t_ref = t_rec_ref +. t_inf_ref +. t_gen_ref in
       let t_fast = t_rec_fast +. t_inf_fast +. t_gen_fast in
       let x a b = if b > 0. then a /. b else 0. in
       let combined = x t_ref t_fast in
       speedups := (name, combined) :: !speedups;
       Printf.printf
         "%-12s | %7d | %8.3f %8.3f %5.2fx | %8.3f %8.3f %5.2fx | %8.3f \
          %8.3f %5.2fx | %7.2fx\n"
         name n_ev t_rec_ref t_rec_fast (x t_rec_ref t_rec_fast)
         t_inf_ref t_inf_fast (x t_inf_ref t_inf_fast)
         t_gen_ref t_gen_fast (x t_gen_ref t_gen_fast) combined;
       rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("events", Obs.Jsonx.Int n_ev);
             ("n_ord_conds", Obs.Jsonx.Int (W.Infer.n_ordering conds_fast));
             ("n_atom_conds", Obs.Jsonx.Int (W.Infer.n_atomicity conds_fast));
             ("n_guardians", Obs.Jsonx.Int (W.Infer.n_guardians conds_fast));
             ("images_generated", Obs.Jsonx.Int stats_fast.W.Crash_gen.generated);
             ("images_tested", Obs.Jsonx.Int stats_fast.W.Crash_gen.tested);
             ("t_record_ref", Obs.Jsonx.Float t_rec_ref);
             ("t_record_fast", Obs.Jsonx.Float t_rec_fast);
             ("t_infer_ref", Obs.Jsonx.Float t_inf_ref);
             ("t_infer_fast", Obs.Jsonx.Float t_inf_fast);
             ("t_gen_ref", Obs.Jsonx.Float t_gen_ref);
             ("t_gen_fast", Obs.Jsonx.Float t_gen_fast);
             ("speedup_record", Obs.Jsonx.Float (x t_rec_ref t_rec_fast));
             ("speedup_infer", Obs.Jsonx.Float (x t_inf_ref t_inf_fast));
             ("speedup_gen", Obs.Jsonx.Float (x t_gen_ref t_gen_fast));
             ("speedup_combined", Obs.Jsonx.Float combined) ]
         :: !rows)
    [ "level-hash"; "fast-fair"; "cceh" ];
  let fast = List.length (List.filter (fun (_, s) -> s >= 1.5) !speedups) in
  Printf.printf
    "\n%d/%d stores at >= 1.5x combined record+infer+gen speedup (trace, \
     condition-count, digest-sequence, stats and cluster-report parity \
     asserted on all).\n"
    fast (List.length !speedups);
  json_sections :=
    ("frontend", Obs.Jsonx.List (List.rev !rows)) :: !json_sections

(* --- prune: path-representative pruning vs exhaustive validation --- *)

let prune_ops =
  let s =
    try Sys.getenv "WITCHER_PRUNE_OPS" with Not_found -> "200,1000,2000"
  in
  List.filter_map int_of_string_opt
    (List.map String.trim (String.split_on_char ',' s))

let prune () =
  section
    "Path-representative pruning: Exhaustive vs Representative validation \
     (lib/prune)";
  (* The default crash config's per-site cap is itself a blunt pruner: at
     2000 ops it squeezes the eligible stream down to a few hundred
     images, leaving class-based pruning nothing to elide. This section
     benchmarks the configuration the subsystem exists for: caps opened
     up and the equivalence-class registry deciding which images are
     worth validating. Both policies see the identical eligible stream. *)
  let crash =
    { W.Crash_gen.default_cfg with
      max_images = 200_000; per_site_cap = 10_000 }
  in
  Printf.printf
    "%-12s | %5s | %8s | %8s %8s | %8s %8s %6s %6s | %6s %7s | %s\n"
    "store" "ops" "#img-gen" "exh-#val" "exh-t(s)" "rep-#val" "rep-t(s)"
    "#cls" "#expnd" "elide%" "recall%" "parity";
  print_endline line;
  let rows = ref [] in
  (* Found-bug sets at the paper's bug granularity: distinct (kind,
     site-pair) keys, the unit Table 4/5 counts. Cluster *recall* (how
     many of exhaustive's path-level clusters the pruned run also
     reports) is printed per row; at small workloads it is 100% (the
     qcheck gate in test/ asserts exact cluster parity there), at larger
     ones a collapsed class can hide a mid-sequence divergent member, so
     it is reported rather than asserted. *)
  let bug_key (r : W.Cluster.report) = (r.kind, r.watch_sid, r.req_sid) in
  let keys rs = List.sort_uniq compare (List.map bug_key rs) in
  let cluster_key (r : W.Cluster.report) =
    (r.kind, r.op_desc, r.path_hash, r.watch_sid, r.req_sid, r.rule)
  in
  let cluster_keys rs = List.sort_uniq compare (List.map cluster_key rs) in
  let baseline_200 = ref 0. in
  let worst_rep = ref 0. in
  let n_min = List.fold_left min (List.hd prune_ops) prune_ops in
  (* Representative results at the smallest op count, kept as the
     baseline for the --sig-depth elision-delta sub-report below. *)
  let base_for_sig = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       List.iter
         (fun n ->
            let cfg policy =
              { W.Engine.default_cfg with
                workload = { W.Workload.default with n_ops = n };
                crash; prune = policy }
            in
            let timed policy =
              let t0 = Unix.gettimeofday () in
              let r = W.Engine.run ~cfg:(cfg policy) (e.buggy ()) in
              (r, Unix.gettimeofday () -. t0)
            in
            let ex, t_ex = timed Prune.Policy.Exhaustive in
            let rp, t_rp = timed Prune.Policy.Representative in
            (* Hard parity: pruning must report the same found-bug set
               (distinct kind + site pairs, and the same root-cause
               counts) as exhaustive validation. *)
            let parity =
              keys ex.all_clusters = keys rp.all_clusters
              && (ex.c_o, ex.c_a) = (rp.c_o, rp.c_a)
            in
            if not parity then begin
              let kx = keys ex.all_clusters and kr = keys rp.all_clusters in
              let show (kind, w, rq) =
                Printf.sprintf "  %s %s -> %s"
                  (match kind with
                   | W.Cluster.C_ordering -> "C-O"
                   | W.Cluster.C_atomicity -> "C-A")
                  w rq
              in
              List.iter
                (fun k ->
                   if not (List.mem k kr) then
                     print_endline ("missed by representative:\n" ^ show k))
                kx;
              List.iter
                (fun k ->
                   if not (List.mem k kx) then
                     print_endline ("only in representative:\n" ^ show k))
                kr;
              failwith
                (Printf.sprintf
                   "bench prune: %s at %d ops: Representative found %d bug \
                    site-pairs (%d C-O, %d C-A), Exhaustive %d (%d, %d) - \
                    pruning missed or invented bugs"
                   name n (List.length kr) rp.c_o rp.c_a (List.length kx)
                   ex.c_o ex.c_a)
            end;
            let n_cl_ex = List.length (cluster_keys ex.all_clusters) in
            let n_cl_common =
              List.length
                (List.filter
                   (fun k -> List.mem k (cluster_keys ex.all_clusters))
                   (cluster_keys rp.all_clusters))
            in
            let recall =
              if n_cl_ex = 0 then 100.
              else 100. *. float_of_int n_cl_common /. float_of_int n_cl_ex
            in
            if n = 200 then baseline_200 := max !baseline_200 t_ex;
            if n = n_min then base_for_sig := (name, rp) :: !base_for_sig;
            if n = List.fold_left max 0 prune_ops then
              worst_rep := max !worst_rep t_rp;
            let total = rp.images_tested + rp.images_elided in
            let elide_pct =
              if total = 0 then 0.
              else 100. *. float_of_int rp.images_elided /. float_of_int total
            in
            Printf.printf
              "%-12s | %5d | %8d | %8d %8.2f | %8d %8.2f %6d %6d | %5.1f%% %6.1f%% | %s\n"
              name n ex.images_generated ex.images_tested t_ex
              rp.images_tested t_rp rp.prune_classes rp.prune_expansions
              elide_pct recall
              (if parity then "ok" else "FAIL");
            rows :=
              Obs.Jsonx.Obj
                [ ("store", Obs.Jsonx.Str name);
                  ("n_ops", Obs.Jsonx.Int n);
                  ("images_generated", Obs.Jsonx.Int ex.images_generated);
                  ("exhaustive_validated", Obs.Jsonx.Int ex.images_tested);
                  ("exhaustive_time_s", Obs.Jsonx.Float t_ex);
                  ("representative_validated", Obs.Jsonx.Int rp.images_tested);
                  ("representative_time_s", Obs.Jsonx.Float t_rp);
                  ("classes", Obs.Jsonx.Int rp.prune_classes);
                  ("representatives", Obs.Jsonx.Int rp.prune_reps);
                  ("expansions", Obs.Jsonx.Int rp.prune_expansions);
                  ("images_elided", Obs.Jsonx.Int rp.images_elided);
                  ("elide_pct", Obs.Jsonx.Float elide_pct);
                  ("bug_site_pairs", Obs.Jsonx.Int (List.length (keys rp.all_clusters)));
                  ("cluster_recall_pct", Obs.Jsonx.Float recall);
                  ("parity", Obs.Jsonx.Bool parity) ]
              :: !rows)
         prune_ops)
    [ "level-hash"; "fast-fair"; "cceh" ];
  print_endline line;
  if !baseline_200 > 0. && !worst_rep > 0. then
    Printf.printf
      "\nWall-clock check: slowest Representative run at %d ops = %.2fs vs \
       200-op Exhaustive baseline = %.2fs (%s)\n"
      (List.fold_left max 0 prune_ops) !worst_rep !baseline_200
      (if !worst_rep <= !baseline_200 then "within baseline"
       else Printf.sprintf "%.1fx baseline" (!worst_rep /. !baseline_200));
  print_endline
    "\n(Found-bug-set parity — distinct kind+site-pairs and root-cause\n\
     \ counts — is asserted per row; any divergence aborts the benchmark.\n\
     \ Representative validates one image per path-signature class plus\n\
     \ logarithmic and tail spot checks, and re-expands a class\n\
     \ exhaustively when any verdict diverges; recall%% reports how many\n\
     \ of exhaustive's path-level clusters survive the pruning.)";
  (* Sub-report: truncated path signatures (--sig-depth K). Hashing only
     the crashing op's last K sites merges more images per class. The
     divergence-driven expansion safety net stays on, but it only fires
     on *validated* members — on short-path stores (cceh) a coarse class
     can hide a divergent elided member, so found-bug parity is reported
     per row rather than asserted: the delta IS the measurement, and the
     reason --sig-depth defaults to 0. *)
  let sig_depth =
    try int_of_string (Sys.getenv "WITCHER_SIG_DEPTH") with _ -> 4
  in
  Printf.printf
    "\nTruncated path signatures (--sig-depth %d vs full path, %d ops, \
     Representative):\n"
    sig_depth n_min;
  Printf.printf "%-12s | %6s %6s | %7s %7s %7s | %6s | %s\n"
    "store" "cls-0" "cls-K" "elide-0" "elide-K" "delta" "#expnd" "parity";
  let sig_rows = ref [] in
  List.iter
    (fun (name, (rp0 : W.Engine.result)) ->
       let e = Option.get (R.find name) in
       let cfg =
         { W.Engine.default_cfg with
           workload = { W.Workload.default with n_ops = n_min };
           crash; prune = Prune.Policy.Representative; sig_depth }
       in
       let rk = W.Engine.run ~cfg (e.buggy ()) in
       let elide (r : W.Engine.result) =
         let total = r.images_tested + r.images_elided in
         if total = 0 then 0.
         else 100. *. float_of_int r.images_elided /. float_of_int total
       in
       let parity =
         keys rp0.all_clusters = keys rk.all_clusters
         && (rp0.c_o, rp0.c_a) = (rk.c_o, rk.c_a)
       in
       Printf.printf
         "%-12s | %6d %6d | %6.1f%% %6.1f%% %+6.1f%% | %6d | %s\n"
         name rp0.prune_classes rk.prune_classes (elide rp0) (elide rk)
         (elide rk -. elide rp0) rk.prune_expansions
         (if parity then "ok" else "FAIL");
       sig_rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("n_ops", Obs.Jsonx.Int n_min);
             ("sig_depth", Obs.Jsonx.Int sig_depth);
             ("classes_full", Obs.Jsonx.Int rp0.prune_classes);
             ("classes_truncated", Obs.Jsonx.Int rk.prune_classes);
             ("elide_pct_full", Obs.Jsonx.Float (elide rp0));
             ("elide_pct_truncated", Obs.Jsonx.Float (elide rk));
             ("elide_pct_delta", Obs.Jsonx.Float (elide rk -. elide rp0));
             ("expansions", Obs.Jsonx.Int rk.prune_expansions);
             ("parity", Obs.Jsonx.Bool parity) ]
         :: !sig_rows)
    (List.rev !base_for_sig);
  print_endline
    "(sig-depth trades recall for elision: a FAIL row means the coarse\n\
     \ signature hid a divergent elided member — expected on short-path\n\
     \ stores, and why --sig-depth defaults to 0/full.)";
  json_sections :=
    ("prune_sig_depth", Obs.Jsonx.List (List.rev !sig_rows))
    :: ("prune", Obs.Jsonx.List (List.rev !rows))
    :: !json_sections

(* --- stream: bounded-memory streaming engine vs the batch pipeline --- *)

let stream_parity_ops =
  try int_of_string (Sys.getenv "WITCHER_STREAM_PARITY_OPS") with _ -> 2000

let stream_perf_ops =
  try int_of_string (Sys.getenv "WITCHER_STREAM_PERF_OPS") with _ -> 100_000

let stream_max_images =
  try int_of_string (Sys.getenv "WITCHER_STREAM_MAX_IMAGES") with _ -> 150

let stream () =
  section
    "Streaming pipeline: bounded-memory run_stream vs batch run (DESIGN §9)";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Everything verdict-shaped in a result; timings and memory excluded. *)
  let fingerprint (r : W.Engine.result) =
    ( ( r.n_mismatch, r.n_clusters, r.c_o, r.c_a,
        r.images_generated, r.images_tested ),
      List.sort compare r.all_clusters,
      List.sort compare r.site_pairs,
      List.sort compare r.bug_reports )
  in
  (* Part 1 - hard verdict parity at paper scale. run_stream is a
     bounded-memory re-plumbing of run, not a different analysis: with a
     deliberately small window (8 x 1024 events vs a trace tens of times
     larger) and a 4-deep checkpoint ring, every verdict-shaped field
     must match the batch engine exactly. Any divergence aborts. *)
  Printf.printf
    "Verdict parity at %d ops (window 8 x 1024 events, ckpt ring 4):\n\n"
    stream_parity_ops;
  Printf.printf "%-12s | %8s %8s %8s | %6s %6s | %8s %8s | %9s %9s | %s\n"
    "store" "#img-gen" "#img-tst" "#mismtch" "C-O" "C-A" "retired" "evicted"
    "batch(s)" "strm(s)" "parity";
  print_endline line;
  let parity_rows = ref [] in
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let c =
         { W.Engine.default_cfg with
           workload =
             { W.Workload.default with n_ops = stream_parity_ops };
           crash = { W.Crash_gen.default_cfg with max_images } }
       in
       let sc =
         { c with
           W.Engine.stream_seg_shift = 10; stream_window = 8; ckpt_ring = 4 }
       in
       let b, t_b = timed (fun () -> W.Engine.run ~cfg:c (e.buggy ())) in
       let s, t_s =
         timed (fun () -> W.Engine.run_stream ~cfg:sc (e.buggy ()))
       in
       if fingerprint b <> fingerprint s then
         failwith
           (Printf.sprintf
              "bench stream: %s at %d ops: stream/batch verdict divergence \
               (batch: %d mismatch %d clusters %d gen %d tested; \
               stream: %d mismatch %d clusters %d gen %d tested)"
              name stream_parity_ops b.n_mismatch b.n_clusters
              b.images_generated b.images_tested s.n_mismatch s.n_clusters
              s.images_generated s.images_tested);
       Printf.printf
         "%-12s | %8d %8d %8d | %6d %6d | %8d %8d | %9.2f %9.2f | ok\n"
         name s.images_generated s.images_tested s.n_mismatch s.c_o s.c_a
         s.window_retirements s.ckpt_ring_evictions t_b t_s;
       parity_rows :=
         Obs.Jsonx.Obj
           [ ("store", Obs.Jsonx.Str name);
             ("n_ops", Obs.Jsonx.Int stream_parity_ops);
             ("images_generated", Obs.Jsonx.Int s.images_generated);
             ("images_tested", Obs.Jsonx.Int s.images_tested);
             ("n_mismatch", Obs.Jsonx.Int s.n_mismatch);
             ("window_retirements", Obs.Jsonx.Int s.window_retirements);
             ("ckpt_ring_evictions", Obs.Jsonx.Int s.ckpt_ring_evictions);
             ("batch_time_s", Obs.Jsonx.Float t_b);
             ("stream_time_s", Obs.Jsonx.Float t_s);
             ("parity", Obs.Jsonx.Bool true) ]
         :: !parity_rows)
    [ "level-hash"; "fast-fair"; "cceh" ];
  print_endline line;
  (* Part 2 - peak memory and throughput at scale, on the YCSB-A traffic
     stream with the sampling default `witcher run --stream` applies at
     this op count. Each engine runs in a forked child so the parent can
     read the child's own GC high-water mark: top_heap_words is
     process-monotonic, so A/B in one process would let the first run's
     peak mask the second's. The batch engine gets its checkpoint stride
     opened up to ~n/64 - at 100k ops the default stride of 32 would
     materialize thousands of full pool snapshots; the streaming engine
     runs the identical stride but keeps only its 8-deep ring. *)
  let sample_stride = max 1 (stream_perf_ops / 1000) in
  let perf_cfg =
    let tc =
      match W.Traffic.of_name "ycsb-a" with
      | Some t -> { t with W.Traffic.n_ops = stream_perf_ops }
      | None -> failwith "bench stream: ycsb-a traffic preset missing"
    in
    { W.Engine.default_cfg with
      workload = { W.Workload.default with n_ops = stream_perf_ops };
      traffic = Some tc;
      crash = { W.Crash_gen.default_cfg with max_images = stream_max_images };
      fuel = max W.Engine.default_cfg.fuel (stream_perf_ops * 300);
      prune = Prune.Policy.Sample sample_stride;
      ckpt_stride =
        max W.Engine.default_cfg.ckpt_stride (stream_perf_ops / 64) }
  in
  let measure name f =
    flush stdout;
    let r_fd, w_fd = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close r_fd;
      let r, wall = timed f in
      let st = Gc.quick_stat () in
      let oc = Unix.out_channel_of_descr w_fd in
      Printf.fprintf oc "%d %d %f %d %d %d %d\n" st.Gc.top_heap_words
        (r : W.Engine.result).peak_live_words wall r.n_mismatch r.n_clusters
        r.images_generated r.images_tested;
      flush oc;
      exit 0
    | pid ->
      Unix.close w_fd;
      let ic = Unix.in_channel_of_descr r_fd in
      let payload =
        try Some (input_line ic) with End_of_file -> None
      in
      close_in ic;
      let _, status = Unix.waitpid [] pid in
      (match status, payload with
       | Unix.WEXITED 0, Some line ->
         Scanf.sscanf line "%d %d %f %d %d %d %d"
           (fun top live wall m cl gen tst -> (top, live, wall, m, cl, gen, tst))
       | _ ->
         failwith
           (Printf.sprintf
              "bench stream: %s child at %d ops did not complete" name
              stream_perf_ops))
  in
  let e = Option.get (R.find "level-hash") in
  Printf.printf
    "\nPeak memory / throughput on level-hash, ycsb-a traffic, %d ops \
     (Sample %d, max %d images, forked children):\n\n"
    stream_perf_ops sample_stride stream_max_images;
  let b_top, b_live, b_wall, b_m, b_cl, b_gen, b_tst =
    measure "batch" (fun () -> W.Engine.run ~cfg:perf_cfg (e.buggy ()))
  in
  let s_top, s_live, s_wall, s_m, s_cl, s_gen, s_tst =
    measure "stream" (fun () -> W.Engine.run_stream ~cfg:perf_cfg (e.buggy ()))
  in
  if (b_m, b_cl, b_gen, b_tst) <> (s_m, s_cl, s_gen, s_tst) then
    failwith
      (Printf.sprintf
         "bench stream: verdict divergence at %d ops (batch: %d mismatch \
          %d clusters %d gen %d tested; stream: %d mismatch %d clusters \
          %d gen %d tested)"
         stream_perf_ops b_m b_cl b_gen b_tst s_m s_cl s_gen s_tst);
  let mb w = float_of_int (w * 8) /. 1024. /. 1024. in
  Printf.printf "%-8s | %14s | %14s | %8s | %9s | %8s %8s\n"
    "engine" "peak-live(MB)" "top-heap(MB)" "wall(s)" "ops/s" "#img-tst"
    "#mismtch";
  print_endline line;
  Printf.printf "%-8s | %14.1f | %14.1f | %8.2f | %9.0f | %8d %8d\n"
    "batch" (mb b_live) (mb b_top) b_wall
    (float_of_int stream_perf_ops /. b_wall) b_tst b_m;
  Printf.printf "%-8s | %14.1f | %14.1f | %8.2f | %9.0f | %8d %8d\n"
    "stream" (mb s_live) (mb s_top) s_wall
    (float_of_int stream_perf_ops /. s_wall) s_tst s_m;
  print_endline line;
  let live_ratio =
    if b_live = 0 then 1. else float_of_int s_live /. float_of_int b_live
  in
  let thr_ratio = if s_wall = 0. then 1. else b_wall /. s_wall in
  let live_ok = live_ratio <= 0.35 and thr_ok = thr_ratio >= 0.9 in
  Printf.printf
    "\nstream peak live heap = %.1f%% of batch (target <= 35%%: %s); \
     throughput = %.2fx batch (target >= 0.9x: %s)\n"
    (100. *. live_ratio)
    (if live_ok then "ok" else "MISS")
    thr_ratio
    (if thr_ok then "ok" else "MISS");
  (* The memory/throughput targets are the acceptance bar at the full
     100k-op scale; the shrunk bench-stream CI config (where the window
     is a large fraction of the whole trace) only reports them. *)
  if stream_perf_ops >= 100_000 && not (live_ok && thr_ok) then
    failwith
      (Printf.sprintf
         "bench stream: targets missed at %d ops (live ratio %.2f, \
          throughput ratio %.2f)"
         stream_perf_ops live_ratio thr_ratio);
  json_sections :=
    ( "stream",
      Obs.Jsonx.Obj
        [ ("parity", Obs.Jsonx.List (List.rev !parity_rows));
          ("perf",
           Obs.Jsonx.Obj
             [ ("store", Obs.Jsonx.Str "level-hash");
               ("traffic", Obs.Jsonx.Str "ycsb-a");
               ("n_ops", Obs.Jsonx.Int stream_perf_ops);
               ("sample_stride", Obs.Jsonx.Int sample_stride);
               ("max_images", Obs.Jsonx.Int stream_max_images);
               ("batch_peak_live_mb", Obs.Jsonx.Float (mb b_live));
               ("batch_top_heap_mb", Obs.Jsonx.Float (mb b_top));
               ("batch_wall_s", Obs.Jsonx.Float b_wall);
               ("stream_peak_live_mb", Obs.Jsonx.Float (mb s_live));
               ("stream_top_heap_mb", Obs.Jsonx.Float (mb s_top));
               ("stream_wall_s", Obs.Jsonx.Float s_wall);
               ("live_ratio", Obs.Jsonx.Float live_ratio);
               ("throughput_ratio", Obs.Jsonx.Float thr_ratio);
               ("live_target_met", Obs.Jsonx.Bool live_ok);
               ("throughput_target_met", Obs.Jsonx.Bool thr_ok) ]) ] )
    :: !json_sections

(* --- Bechamel micro-benchmarks: pipeline stage costs --- *)

let micro () =
  section "Pipeline stage micro-benchmarks (Bechamel)";
  let open Bechamel in
  let e = Option.get (R.find "level-hash") in
  let small_ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 50 })
  in
  let rec_ = W.Driver.record (e.buggy ()) small_ops in
  let conds = W.Infer.infer rec_.trace in
  let t_record =
    Test.make ~name:"record-trace"
      (Staged.stage (fun () -> ignore (W.Driver.record (e.buggy ()) small_ops)))
  in
  let t_infer =
    Test.make ~name:"infer-conditions"
      (Staged.stage (fun () -> ignore (W.Infer.infer rec_.trace)))
  in
  let t_perf =
    Test.make ~name:"perf-detect"
      (Staged.stage (fun () -> ignore (W.Perf.detect rec_.trace)))
  in
  let t_gen =
    Test.make ~name:"crash-gen+equiv"
      (Staged.stage (fun () ->
           let store = e.buggy () in
           let checker =
             W.Equiv.create store ~ops:rec_.ops ~committed:rec_.outputs
           in
           ignore
             (W.Crash_gen.generate
                ~cfg:{ W.Crash_gen.default_cfg with max_images = 50 }
                ~trace:rec_.trace ~conds ~pool_size:rec_.pool_size
                ~on_image:(fun img ->
                    ignore (W.Equiv.check checker ~img:img.img ~crash_op:img.crash_op);
                    `Continue)
                ())))
  in
  let grouped =
    Test.make_grouped ~name:"witcher" [ t_record; t_infer; t_perf; t_gen ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name v ->
       match Analyze.OLS.estimates v with
       | Some (est :: _) ->
         Printf.printf "  %-28s %12.0f ns/run (%.3f ms)\n" name est (est /. 1e6)
       | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    res

let sections =
  [ "table1", table1; "table2", table2; "table3", table3; "table4", table4;
    "table5", table5; "fig4", fig4; "random", random_baseline;
    "compare", compare_tools; "nonkv", nonkv; "validate", validate;
    "oracle", oracle; "batch", batch; "frontend", frontend; "prune", prune;
    "stream", stream; "micro", micro ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--" && a <> "--json") args in
  let chosen =
    if args = [] || List.mem "all" args then List.map fst sections else args
  in
  Printf.printf "Witcher reproduction benchmarks (%d-op workloads; set \
                 WITCHER_OPS to change)\n" n_ops;
  List.iter
    (fun name ->
       match List.assoc_opt name sections with
       | Some f -> f ()
       | None -> Printf.printf "unknown section %S\n" name)
    chosen;
  (* `bench/main.exe all --json` (or any section list with --json) dumps
     the machine-readable rows the sections collected into BENCH.json. *)
  if json then begin
    (* Merge with an existing BENCH.json rather than clobbering it, so
       `bench/main.exe frontend --json` and `bench/main.exe prune --json`
       accumulate their sections into one document. Sections re-run now
       replace their previous rows. *)
    let prior =
      if Sys.file_exists "BENCH.json" then
        try
          let ic = open_in_bin "BENCH.json" in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          match Obs.Jsonx.of_string s with
          | Ok (Obs.Jsonx.Obj kvs) ->
            List.filter
              (fun (k, _) ->
                 k <> "n_ops" && k <> "max_images" && k <> "sections"
                 && not (List.mem_assoc k !json_sections))
              kvs
          | _ -> []
        with _ -> []
      else []
    in
    let body = prior @ List.rev !json_sections in
    let doc =
      Obs.Jsonx.Obj
        (("n_ops", Obs.Jsonx.Int n_ops)
         :: ("max_images", Obs.Jsonx.Int max_images)
         :: ("sections", Obs.Jsonx.List
               (List.map (fun (k, _) -> Obs.Jsonx.Str k) body))
         :: body)
    in
    let oc = open_out "BENCH.json" in
    output_string oc (Obs.Jsonx.to_string doc);
    output_char oc '\n';
    close_out oc;
    print_endline "\nwrote BENCH.json"
  end
