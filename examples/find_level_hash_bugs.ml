(* Scenario: reproduce the paper's running example (Figures 1 and 3).

   Builds the exact four-operation test case of Figure 3(a) —
   insert(k,v0); delete(k); insert(k,v1); query(k) — against Level
   Hashing, prints the trace of the third insert, the inferred
   likely-correctness conditions, and the crash NVM image whose resumed
   execution returns the resurrected old value v0 (the paper's IMG1). *)

module W = Witcher
open Nvm

let () =
  let k = 77 in
  let ops =
    [ W.Op.Insert (k, "v0______"); W.Op.Delete k; W.Op.Insert (k, "v1______");
      W.Op.Query k ]
  in
  let module S = (val Stores.Level_hash.buggy ()) in
  let recorded = W.Driver.record (module S) ops in
  Printf.printf "Figure 3(a) test case on buggy Level Hashing:\n";
  List.iteri (fun i op -> Printf.printf "  op%d %s\n" (i + 1) (W.Op.desc op)) ops;
  Printf.printf "\ncommitted outputs: %s\n\n"
    (String.concat " "
       (Array.to_list (Array.map W.Output.to_string recorded.outputs)));
  let conds = W.Infer.infer recorded.trace in
  Printf.printf
    "inferred %d ordering + %d atomicity likely-correctness conditions\n"
    (W.Infer.n_ordering conds) (W.Infer.n_atomicity conds);
  let checker =
    W.Equiv.create (module S) ~ops:recorded.ops ~committed:recorded.outputs
  in
  let shown = ref 0 in
  let on_image (image : W.Crash_gen.image) =
    (match W.Equiv.check checker ~img:(Pmem.copy image.img) ~crash_op:image.crash_op with
     | W.Equiv.Consistent -> ()
     | W.Equiv.Inconsistent v when !shown = 0 ->
       incr shown;
       Printf.printf
         "\nIMG1 equivalent found: crash in op%d, image violates a \
          likely-correctness condition\n" image.crash_op;
       (match image.viol with
        | W.Crash_gen.Ordering o ->
          Printf.printf "  violated: %s — %s persisted while %s was not\n"
            (W.Infer.rule_name o.rule)
            (Sid.to_string o.watch_sid) (Sid.to_string o.req_sid)
        | W.Crash_gen.Atomicity a ->
          Printf.printf "  violated: AP — %s persisted without %s\n"
            (Sid.to_string a.persisted_sid) (Sid.to_string a.lost_sid)
        | W.Crash_gen.Unpersisted_epoch u ->
          Printf.printf "  violated: epoch lost at %s\n"
            (Sid.to_string u.fence_sid));
       Printf.printf
         "  resumed query(k) returned %s; oracles allow only the committed \
          (v1) or rolled-back (notfound) outputs\n"
         (W.Output.to_string v.got)
     | W.Equiv.Inconsistent _ -> ());
    `Continue
  in
  ignore
    (W.Crash_gen.generate ~trace:recorded.trace ~conds
       ~pool_size:recorded.pool_size ~on_image ());
  if !shown = 0 then
    print_endline "no inconsistent image found (unexpected for the buggy port)"
