(* Tests for likely-correctness condition inference (Table 2 rules) and
   crash-image generation, built around hand-written mini-programs that
   reproduce the paper's Figure 1 / Figure 3 patterns. *)

open Nvm
module W = Witcher

(* A miniature guarded-protection writer/reader like Level Hashing:
   writer stores value then token; reader checks the token before
   reading the value. *)
let figure1_trace ~writer_ordered =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"insert";
  let value_addr = 128 and token_addr = 192 in
  Ctx.write_u64 ctx ~sid:"w.value" value_addr (Tv.const 42);
  if writer_ordered then
    Ctx.persist ctx ~sid:"w.value_persist" value_addr 8;
  Ctx.write_u64 ctx ~sid:"w.token" token_addr Tv.one;
  Ctx.persist ctx ~sid:"w.token_persist" token_addr 8;
  Ctx.op_end ctx ~index:0;
  Ctx.op_begin ctx ~index:1 ~desc:"query";
  let tok = Ctx.read_u64 ctx ~sid:"r.token" token_addr in
  Ctx.when_ ctx tok (fun () ->
      ignore (Ctx.read_u64 ctx ~sid:"r.value" value_addr));
  Ctx.op_end ctx ~index:1;
  Ctx.trace ctx

let test_po3_guardian () =
  let trace = figure1_trace ~writer_ordered:true in
  let conds = W.Infer.infer trace in
  Alcotest.(check bool) "has ordering conditions" true
    (W.Infer.n_ordering conds > 0);
  Alcotest.(check int) "token is the (single) guardian" 1
    (W.Infer.n_guardians conds);
  (* the PO3 condition watches the token cell *)
  let watching = W.Infer.conds_for conds 192 8 in
  Alcotest.(check bool) "token cell watched" true
    (List.exists (fun (c : W.Infer.po) -> c.rule = W.Infer.PO3) watching)

let test_po1_data_dep () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  let x = Ctx.read_u64 ctx ~sid:"r.x" 128 in
  Ctx.write_u64 ctx ~sid:"w.y" 256 (Tv.add x (Tv.const 3));
  let conds = W.Infer.infer (Ctx.trace ctx) in
  let watching = W.Infer.conds_for conds 256 8 in
  Alcotest.(check bool) "PO1 on y" true
    (List.exists
       (fun (c : W.Infer.po) -> c.rule = W.Infer.PO1 && c.req.c_addr = 128)
       watching)

let test_po2_control_dep () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  let x = Ctx.read_u64 ctx ~sid:"r.x" 128 in
  Ctx.if_ ctx (Tv.eq x Tv.zero)
    ~then_:(fun () -> Ctx.write_u64 ctx ~sid:"w.y" 256 (Tv.const 3))
    ~else_:(fun () -> ());
  let conds = W.Infer.infer (Ctx.trace ctx) in
  let watching = W.Infer.conds_for conds 256 8 in
  Alcotest.(check bool) "PO2 on y" true
    (List.exists
       (fun (c : W.Infer.po) -> c.rule = W.Infer.PO2 && c.req.c_addr = 128)
       watching)

let test_same_cell_no_condition () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  let x = Ctx.read_u64 ctx ~sid:"r.x" 128 in
  Ctx.write_u64 ctx ~sid:"w.x" 128 (Tv.add x Tv.one);
  let conds = W.Infer.infer (Ctx.trace ctx) in
  Alcotest.(check int) "counter increments infer nothing" 0
    (W.Infer.n_ordering conds)

(* Crash-image generation on the buggy Figure 1 writer: an image must
   exist where the token persisted and the value did not. *)
let test_violating_image_generated () =
  let trace = figure1_trace ~writer_ordered:false in
  let conds = W.Infer.infer trace in
  let found = ref false in
  let on_image (img : W.Crash_gen.image) =
    let tok = Pmem.read_u64 img.img 192 in
    let v = Pmem.read_u64 img.img 128 in
    if tok = 1 && v = 0 then found := true;
    `Continue
  in
  ignore (W.Crash_gen.generate ~trace ~conds ~pool_size:4096 ~on_image ());
  Alcotest.(check bool) "token-persisted/value-lost image" true !found

(* On the ordered writer, no image may show the violation: feasibility
   must refuse it. *)
let test_no_violation_when_ordered () =
  let trace = figure1_trace ~writer_ordered:true in
  let conds = W.Infer.infer trace in
  let bad = ref false in
  let on_image (img : W.Crash_gen.image) =
    if Pmem.read_u64 img.img 192 = 1 && Pmem.read_u64 img.img 128 = 0 then
      bad := true;
    `Continue
  in
  ignore (W.Crash_gen.generate ~trace ~conds ~pool_size:4096 ~on_image ());
  Alcotest.(check bool) "ordered writer admits no violating image" false !bad

(* Every generated image must contain all guaranteed stores. *)
let test_images_contain_guaranteed () =
  let e = Option.get (Stores.Registry.find "level-hash") in
  let module S = (val e.buggy ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 40 })
  in
  let r = W.Driver.record (module S) ops in
  let conds = W.Infer.infer r.trace in
  (* track guaranteed stores alongside generation via a parallel sim *)
  let ok = ref true and n = ref 0 in
  let on_image (img : W.Crash_gen.image) =
    incr n;
    (* the pool magic was persisted at creation: must be in every image *)
    if Pmem.read_u64 img.img 0 <> Pmdk.Layout.magic then ok := false;
    `Continue
  in
  ignore (W.Crash_gen.generate ~trace:r.trace ~conds ~pool_size:r.pool_size ~on_image ());
  Alcotest.(check bool) "images generated" true (!n > 0);
  Alcotest.(check bool) "guaranteed stores present" true !ok

(* Candidate accounting: [stats.candidates] counts every feasible
   violation before image dedup, in both the [emit] and the baseline
   paths; [generated] counts the distinct images. Two PO1 conditions
   watching the same store produce the same extra persist-set, so the
   second is deduplicated: 2 emit candidates + 1 baseline candidate, but
   only 1 + 1 distinct images. *)
let test_candidate_accounting () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  Ctx.write_u64 ctx ~sid:"w.x1" 128 (Tv.const 7);
  Ctx.write_u64 ctx ~sid:"w.x2" 192 (Tv.const 9);
  let a = Ctx.read_u64 ctx ~sid:"r.x1" 128 in
  let b = Ctx.read_u64 ctx ~sid:"r.x2" 192 in
  Ctx.write_u64 ctx ~sid:"w.y" 256 (Tv.add a b);
  Ctx.persist ctx ~sid:"w.y_persist" 256 8;
  Ctx.op_end ctx ~index:0;
  let trace = Ctx.trace ctx in
  let conds = W.Infer.infer trace in
  (* both conditions watch the y cell *)
  Alcotest.(check int) "two PO1 conditions on y" 2
    (List.length (W.Infer.conds_for conds 256 8));
  let stats =
    W.Crash_gen.generate ~trace ~conds ~pool_size:4096
      ~on_image:(fun _ -> `Continue) ()
  in
  Alcotest.(check int) "candidates counted pre-dedup" 3 stats.candidates;
  Alcotest.(check int) "distinct images post-dedup" 2 stats.generated;
  Alcotest.(check int) "all distinct images tested" 2 stats.tested;
  Alcotest.(check bool) "candidates >= generated" true
    (stats.candidates >= stats.generated)

(* Yat estimator sanity. *)
let test_yat_log10_fact () =
  let f = W.Yat.log10_fact in
  Alcotest.(check (float 1e-6)) "0!" 0.0 (f 0);
  Alcotest.(check (float 1e-6)) "5!" (log10 120.0) (f 5);
  Alcotest.(check bool) "monotone" true (f 100 > f 99)

let test_yat_exhaustive_beats_witcher_count () =
  let e = Option.get (Stores.Registry.find "level-hash") in
  let module S = (val e.buggy ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 6 })
  in
  let r = W.Driver.record (module S) ops in
  let conds = W.Infer.infer r.trace in
  let witcher = ref 0 in
  ignore
    (W.Crash_gen.generate ~trace:r.trace ~conds ~pool_size:r.pool_size
       ~on_image:(fun _ -> incr witcher; `Continue) ());
  let yat =
    W.Yat.exhaustive ~per_fence_limit:64 ~max_images:20000 ~trace:r.trace
      ~pool_size:r.pool_size ~on_image:(fun _ -> `Continue) ()
  in
  Alcotest.(check bool) "exhaustive explores more states" true (yat > !witcher)

let suite =
  [ Alcotest.test_case "PO3 guardian inference" `Quick test_po3_guardian;
    Alcotest.test_case "PO1 from data dependency" `Quick test_po1_data_dep;
    Alcotest.test_case "PO2 from control dependency" `Quick test_po2_control_dep;
    Alcotest.test_case "same-cell deps are skipped" `Quick test_same_cell_no_condition;
    Alcotest.test_case "violating image generated (Fig 1b)" `Quick
      test_violating_image_generated;
    Alcotest.test_case "no violating image when ordered" `Quick
      test_no_violation_when_ordered;
    Alcotest.test_case "images contain guaranteed stores" `Quick
      test_images_contain_guaranteed;
    Alcotest.test_case "candidate accounting is pre-dedup" `Quick
      test_candidate_accounting;
    Alcotest.test_case "yat log10 factorial" `Quick test_yat_log10_fact;
    Alcotest.test_case "yat exhaustive > witcher images" `Quick
      test_yat_exhaustive_beats_witcher_count ]
