(* Observability layer tests: histogram bucket geometry, quantile
   estimates on known distributions, merge algebra (associative,
   commutative, and exact w.r.t. a single-process registry — the
   property campaign aggregation depends on), span nesting, and the
   Chrome-trace exporter. *)

module M = Obs.Metrics
module S = Obs.Span
module T = Obs.Trace_export
module J = Obs.Jsonx

(* ---------- buckets ---------- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "v<=0 goes to bucket 0" 0 (M.bucket_of 0);
  Alcotest.(check int) "negative goes to bucket 0" 0 (M.bucket_of (-7));
  Alcotest.(check int) "1 -> bucket 1" 1 (M.bucket_of 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (M.bucket_of 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (M.bucket_of 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (M.bucket_of 4);
  Alcotest.(check int) "1023 -> bucket 10" 10 (M.bucket_of 1023);
  Alcotest.(check int) "1024 -> bucket 11" 11 (M.bucket_of 1024);
  Alcotest.(check int) "max_int clamps to last bucket" (M.n_buckets - 1)
    (M.bucket_of max_int);
  (* every positive v lands inside [bucket_lo k, bucket_hi k); the last
     bucket is the open-ended clamp, where hi = max_int is inclusive *)
  List.iter
    (fun v ->
       let k = M.bucket_of v in
       Alcotest.(check bool)
         (Printf.sprintf "lo <= %d < hi for bucket %d" v k)
         true
         (M.bucket_lo k <= v
          && (v < M.bucket_hi k || k = M.n_buckets - 1)))
    [ 1; 2; 3; 4; 5; 7; 8; 63; 64; 65; 4095; 4096; 1_000_000; max_int ]

let test_quantiles_known_distribution () =
  let m = M.create () in
  (* uniform 1..1000: p50 true value 500, p99 true value 990 *)
  for v = 1 to 1000 do
    M.observe ~m "u" v
  done;
  let h = Option.get (M.find_hist (M.snapshot m) "u") in
  Alcotest.(check int) "count" 1000 h.M.count;
  Alcotest.(check bool) "mean close to 500.5" true
    (Float.abs (M.mean h -. 500.5) < 0.001);
  let p50 = M.quantile h 0.5 in
  (* log2 buckets bound the error by one bucket: 500 lives in [256,512) *)
  Alcotest.(check bool) "p50 within its bucket's reach" true
    (p50 >= 256. && p50 <= 1000.);
  let p99 = M.quantile h 0.99 in
  Alcotest.(check bool) "p99 within a factor of 2" true
    (p99 >= 512. && p99 <= 1000.);
  Alcotest.(check bool) "q=1 is the exact max" true (M.quantile h 1.0 = 1000.);
  Alcotest.(check bool) "q=0 is at least the min" true (M.quantile h 0.0 >= 1.);
  (* a constant distribution estimates exactly *)
  let m2 = M.create () in
  for _ = 1 to 50 do M.observe ~m:m2 "c" 42 done;
  let hc = Option.get (M.find_hist (M.snapshot m2) "c") in
  Alcotest.(check bool) "constant p50 = 42 (clamped to max)" true
    (M.quantile hc 0.5 = 42.)

(* ---------- merge algebra ---------- *)

(* Random snapshot: a random op sequence applied to a fresh registry.
   [with_gauges:false] restricts to counters + histograms, the part of
   the algebra that must be *exact* under partitioning (gauges merge by
   max, which is associative/commutative but not partition-exact). *)
let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 0 80)
      (triple (int_range 0 2) (int_range 0 3) (int_range (-4) 2000)))

let apply_ops ~with_gauges m ops =
  List.iter
    (fun (kind, name_i, v) ->
       let name = Printf.sprintf "m%d" name_i in
       match kind with
       | 0 -> M.incr ~m ~n:v name
       | 1 -> if with_gauges then M.set_gauge ~m name (float_of_int v)
         else M.observe ~m name v
       | _ -> M.observe ~m name v)
    ops

let snap_of ~with_gauges ops =
  let m = M.create () in
  apply_ops ~with_gauges m ops;
  M.snapshot m

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge is commutative" ~count:200
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (a, b) ->
       let sa = snap_of ~with_gauges:true a
       and sb = snap_of ~with_gauges:true b in
       M.merge sa sb = M.merge sb sa)

let prop_merge_associative =
  QCheck2.Test.make ~name:"merge is associative" ~count:200
    QCheck2.Gen.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
       let sa = snap_of ~with_gauges:true a
       and sb = snap_of ~with_gauges:true b
       and sc = snap_of ~with_gauges:true c in
       M.merge sa (M.merge sb sc) = M.merge (M.merge sa sb) sc)

let prop_merge_partition_exact =
  (* splitting one op stream across workers and merging the snapshots
     reproduces the single-registry totals exactly — the multi-process
     aggregation guarantee the campaign report relies on *)
  QCheck2.Test.make ~name:"merge of a partition = single registry" ~count:200
    QCheck2.Gen.(pair ops_gen (int_range 0 100))
    (fun (ops, cut_pct) ->
       let n = List.length ops in
       let cut = cut_pct * n / 100 in
       let left = List.filteri (fun i _ -> i < cut) ops
       and right = List.filteri (fun i _ -> i >= cut) ops in
       let whole = snap_of ~with_gauges:false ops in
       let merged =
         M.merge (snap_of ~with_gauges:false left)
           (snap_of ~with_gauges:false right)
       in
       whole = merged)

let prop_merge_empty_identity =
  QCheck2.Test.make ~name:"empty is the merge identity" ~count:100 ops_gen
    (fun ops ->
       let s = snap_of ~with_gauges:true ops in
       M.merge s M.empty = s && M.merge M.empty s = s)

let test_snapshot_json_roundtrip () =
  let m = M.create () in
  M.incr ~m ~n:7 "a.count";
  M.incr ~m "b.count";
  M.set_gauge ~m "g" 2.5;
  for v = 1 to 100 do M.observe ~m "h" (v * 3) done;
  M.observe ~m "h" (-1);
  let s = M.snapshot m in
  match J.of_string (J.to_string (M.to_json s)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match M.of_json j with
     | Error e -> Alcotest.fail e
     | Ok s' ->
       Alcotest.(check bool) "snapshot survives JSON round-trip" true (s = s');
       Alcotest.(check int) "counter value" 7 (M.counter_value s' "a.count"))

(* ---------- spans ---------- *)

let test_span_nesting () =
  let buf = S.create_buf () in
  S.with_span ~buf "outer" (fun () ->
      S.with_span ~buf "child1" (fun () -> ignore (Sys.opaque_identity 1));
      S.with_span ~buf "child2" (fun () ->
          S.with_span ~buf "grandchild" (fun () -> ())));
  let evs = S.events buf in
  Alcotest.(check int) "four spans recorded" 4 (List.length evs);
  let by_name n = List.find (fun (e : S.event) -> e.name = n) evs in
  Alcotest.(check int) "outer at depth 0" 0 (by_name "outer").depth;
  Alcotest.(check int) "child at depth 1" 1 (by_name "child1").depth;
  Alcotest.(check int) "grandchild at depth 2" 2 (by_name "grandchild").depth;
  Alcotest.(check bool) "events are well nested" true (S.well_nested evs);
  Alcotest.(check bool) "outer listed first (start order)" true
    ((List.hd evs).name = "outer")

let test_span_closes_on_exception () =
  let buf = S.create_buf () in
  (try
     S.with_span ~buf "doomed" (fun () ->
         S.with_span ~buf "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let evs = S.events buf in
  Alcotest.(check int) "both spans recorded despite the raise" 2
    (List.length evs);
  Alcotest.(check bool) "depth restored" true (S.well_nested evs);
  (* the buffer is reusable: depth went back to 0 *)
  S.with_span ~buf "after" (fun () -> ());
  Alcotest.(check int) "post-exception span at depth 0" 0
    (List.find (fun (e : S.event) -> e.name = "after") (S.events buf)).S.depth

let test_span_json_roundtrip () =
  let buf = S.create_buf () in
  S.with_span ~buf ~attrs:[ ("store", "wort") ] "engine.run" (fun () ->
      S.with_span ~buf "stage.record" (fun () -> ()));
  let evs = S.events buf in
  let evs' = S.events_of_json (S.events_to_json evs) in
  Alcotest.(check int) "all events survive" (List.length evs)
    (List.length evs');
  List.iter2
    (fun (a : S.event) (b : S.event) ->
       Alcotest.(check string) "name" a.name b.name;
       Alcotest.(check int) "depth" a.depth b.depth;
       Alcotest.(check bool) "attrs" true (a.attrs = b.attrs))
    evs evs'

(* ---------- trace export ---------- *)

(* Deterministic synthetic tracks (explicit timings via [S.add]). *)
let synthetic_track pid label t0 =
  let buf = S.create_buf () in
  S.add ~buf ~name:"engine.run" ~ts:t0 ~dur:1.0 ();
  buf.S.depth <- 1;
  S.add ~buf ~name:"stage.record" ~ts:t0 ~dur:0.25 ();
  S.add ~buf ~name:"stage.gen" ~ts:(t0 +. 0.25) ~dur:0.5 ();
  S.add ~buf ~name:"stage.equiv" ~ts:(t0 +. 0.75) ~dur:0.25 ();
  buf.S.depth <- 0;
  { T.pid; label; events = S.events buf }

let x_events_of_json j =
  match J.member "traceEvents" j with
  | Some (J.List l) ->
    List.filter (fun e -> J.str_field e "ph" = "X") l
  | _ -> Alcotest.fail "no traceEvents array"

let test_trace_export_valid_and_nested () =
  let tracks = [ synthetic_track 100 "w1" 10.; synthetic_track 200 "w2" 10.5 ] in
  match J.of_string (T.to_string tracks) with
  | Error e -> Alcotest.fail ("trace JSON does not parse: " ^ e)
  | Ok j ->
    let xs = x_events_of_json j in
    Alcotest.(check int) "8 span events" 8 (List.length xs);
    let pids =
      List.sort_uniq compare (List.map (fun e -> J.int_field e "pid") xs)
    in
    Alcotest.(check (list int)) "one track per pid" [ 100; 200 ] pids;
    (* per pid, the exported events are still well nested *)
    List.iter
      (fun pid ->
         let evs =
           List.filter_map
             (fun e ->
                if J.int_field e "pid" <> pid then None
                else
                  Some
                    { S.name = J.str_field e "name";
                      ts = float_of_int (J.int_field e "ts") /. 1e6;
                      dur = float_of_int (J.int_field e "dur") /. 1e6;
                      depth =
                        (match J.member "args" e with
                         | Some a -> J.int_field a "depth"
                         | None -> 0);
                      attrs = [] })
             xs
         in
         Alcotest.(check bool)
           (Printf.sprintf "pid %d track well nested" pid)
           true
           (S.well_nested ~eps:2e-6 evs))
      [ 100; 200 ];
    (* each pid carries a process_name metadata row *)
    (match J.member "traceEvents" j with
     | Some (J.List l) ->
       let metas =
         List.filter (fun e -> J.str_field e "ph" = "M") l
         |> List.map (fun e -> J.int_field e "pid")
         |> List.sort_uniq compare
       in
       Alcotest.(check (list int)) "metadata per pid" [ 100; 200 ] metas
     | _ -> Alcotest.fail "no traceEvents")

let test_trace_coalesce_recycled_pid () =
  let t1 = synthetic_track 300 "job-a" 1. in
  let t2 = synthetic_track 300 "job-b" 5. in
  let merged = T.coalesce [ t1; t2 ] in
  Alcotest.(check int) "one track for the recycled pid" 1 (List.length merged);
  let t = List.hd merged in
  Alcotest.(check string) "first label wins" "job-a" t.T.label;
  Alcotest.(check int) "events concatenated" 8 (List.length t.T.events)

let suite =
  [ Alcotest.test_case "histogram bucket boundaries" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "quantile estimates on known distributions" `Quick
      test_quantiles_known_distribution;
    Alcotest.test_case "snapshot JSON roundtrip" `Quick
      test_snapshot_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_partition_exact;
    QCheck_alcotest.to_alcotest prop_merge_empty_identity;
    Alcotest.test_case "spans nest and record depth" `Quick test_span_nesting;
    Alcotest.test_case "spans close on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "span JSON roundtrip" `Quick test_span_json_roundtrip;
    Alcotest.test_case "chrome trace valid + nested + per-pid tracks" `Quick
      test_trace_export_valid_and_nested;
    Alcotest.test_case "trace coalesces recycled pids" `Quick
      test_trace_coalesce_recycled_pid ]
