(* Test runner: every suite registered under one alcotest binary.
   `dune runtest` runs everything; ALCOTEST_QUICK_TESTS=1 skips the
   slow end-to-end detection sweep. *)

let () =
  Alcotest.run "witcher"
    [ ("nvm", Test_nvm.suite);
      ("pmdk", Test_pmdk.suite);
      ("infer+crashgen", Test_infer_gen.suite);
      ("stores", Test_stores.suite);
      ("engine", Test_engine.suite);
      ("campaign", Test_campaign.suite);
      ("obs", Test_obs.suite);
      ("frontend", Test_frontend.suite);
      ("prune", Test_prune.suite);
      ("explain", Test_explain.suite);
      ("stream", Test_stream.suite) ]
