(* End-to-end pipeline tests: the headline soundness properties of the
   reproduction.

   - No false positives: every *fixed* store variant passes the full
     pipeline with zero correctness bugs (durable linearizability holds
     for every generated crash image).
   - Detection: every *buggy* variant's seeded defect classes are found.
   - Performance detection, workload determinism, oracles, clustering,
     and the 7.5/7.6 baselines. *)

module W = Witcher
module R = Stores.Registry

let cfg ~n_ops =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops };
    crash = { W.Crash_gen.default_cfg with max_images = 1500 } }

let fixed_clean_case (e : R.entry) =
  Alcotest.test_case (e.name ^ " fixed is durable-linearizable") `Slow
    (fun () ->
       let r = W.Engine.run ~cfg:(cfg ~n_ops:120) (e.fixed ()) in
       Alcotest.(check int) "C-O" 0 r.c_o;
       Alcotest.(check int) "C-A" 0 r.c_a;
       Alcotest.(check int) "mismatches" 0 r.n_mismatch)

let buggy_detected_case (e : R.entry) =
  Alcotest.test_case (e.name ^ " seeded bugs detected") `Slow (fun () ->
      let r = W.Engine.run ~cfg:(cfg ~n_ops:150) (e.buggy ()) in
      if e.paper_bug_ids <> [] then
        Alcotest.(check bool)
          (Printf.sprintf "found correctness bugs (got %d C-O, %d C-A)"
             r.c_o r.c_a)
          true
          (r.c_o + r.c_a > 0)
      else begin
        (* clean programs (wort, c-tree, redis, p-queue) must stay clean *)
        Alcotest.(check int) "C-O" 0 r.c_o;
        Alcotest.(check int) "C-A" 0 r.c_a
      end)

let detection_suites =
  List.concat_map
    (fun (e : R.entry) -> [ buggy_detected_case e; fixed_clean_case e ])
    R.all

(* Bug-class checks on the flagship stores. *)
let test_level_hash_classes () =
  let r = W.Engine.run ~cfg:(cfg ~n_ops:150) (Stores.Level_hash.buggy ()) in
  let has_site f =
    List.exists (fun (rep : W.Cluster.report) -> f rep) r.site_pairs
  in
  Alcotest.(check bool) "Figure 1(b): token-before-slot ordering" true
    (has_site (fun rep ->
         rep.kind = W.Cluster.C_ordering
         && rep.watch_sid = "lh:insert.token"));
  Alcotest.(check bool) "Figure 1(c): two-token atomicity" true
    (has_site (fun rep ->
         rep.kind = W.Cluster.C_atomicity
         && (rep.watch_sid = "lh:update.clear_old"
             || rep.watch_sid = "lh:update.set_new")));
  Alcotest.(check bool) "extra flush reported" true
    (W.Perf.n_bugs r.perf.p_efl > 0)

let test_memcached_stats_p_u () =
  let r = W.Engine.run ~cfg:(cfg ~n_ops:200) (Stores.Memcache_like.buggy ()) in
  Alcotest.(check bool)
    (Printf.sprintf "many unpersisted stat counters (got %d)"
       (W.Perf.n_bugs r.perf.p_u))
    true
    (W.Perf.n_bugs r.perf.p_u >= 15)

let test_uaf_detected () =
  let r = W.Engine.run ~cfg:(cfg ~n_ops:150) (Stores.Hashmap_tx.buggy ()) in
  Alcotest.(check bool) "use-after-free found" true (r.c_o + r.c_a > 0)

(* Oracle construction: rolled-back oracle differs from committed exactly
   when the removed op mattered. *)
let test_rolled_back_oracle () =
  let e = Option.get (R.find "level-hash") in
  let module S = (val e.fixed ()) in
  let ops = [ W.Op.Insert (1, "aaa"); W.Op.Query 1; W.Op.Query 2 ] in
  let r = W.Driver.record (module S) ops in
  let checker = W.Equiv.create (module S) ~ops:r.ops ~committed:r.outputs in
  ignore checker;
  let rb = W.Driver.run_quiet (module S) [ W.Op.Query 1; W.Op.Query 2 ] in
  Alcotest.(check string) "query 1 rolled back" "notfound"
    (W.Output.to_string rb.(0))

(* Workload generation: deterministic, biased toward used keys. *)
let test_workload_determinism () =
  let a = W.Workload.generate W.Workload.default in
  let b = W.Workload.generate W.Workload.default in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun x y -> Alcotest.(check string) "same op" (W.Op.desc x) (W.Op.desc y))
    a b;
  let c = W.Workload.generate { W.Workload.default with seed = 7 } in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2 (fun x y -> W.Op.desc x <> W.Op.desc y) a c)

let test_workload_bias () =
  let ops = W.Workload.generate { W.Workload.default with n_ops = 500 } in
  let inserted = Hashtbl.create 64 in
  let hits = ref 0 and lookups = ref 0 in
  List.iter
    (fun op ->
       match op with
       | W.Op.Insert (k, _) -> Hashtbl.replace inserted k ()
       | W.Op.Query k | W.Op.Delete k | W.Op.Update (k, _) | W.Op.Scan (k, _) ->
         incr lookups;
         if Hashtbl.mem inserted k then incr hits)
    ops;
  Alcotest.(check bool) "most non-inserts touch existing keys" true
    (float_of_int !hits /. float_of_int (max 1 !lookups) > 0.7)

(* Output equivalence ignores representation, compares values. *)
let test_output_equal () =
  Alcotest.(check bool) "found eq" true
    (W.Output.equal (W.Output.Found "x") (W.Output.Found "x"));
  Alcotest.(check bool) "crashed never equal" false
    (W.Output.equal (W.Output.Crashed "a") (W.Output.Crashed "a"));
  Alcotest.(check bool) "vals" true
    (W.Output.equal (W.Output.Vals [ "a"; "b" ]) (W.Output.Vals [ "a"; "b" ]))

(* Baselines (7.6): the Agamotto-style TX checker sees btree's missing
   log; the PMTest-style annotation flags the benign redis store that
   Witcher correctly ignores. *)
let test_agamotto_missing_log () =
  let module S = (val Stores.Btree_tx.buggy ()) in
  let ops =
    W.Workload.generate { W.Workload.default with n_ops = 150 }
  in
  let r = W.Driver.record (module S) ops in
  let aga = W.Baselines.agamotto r.trace in
  Alcotest.(check bool) "missing log seen" true (aga.missing_log_sites <> [])

let test_pmtest_redis_false_positive () =
  let module S = (val Stores.Redis_like.make ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 60 })
  in
  let r = W.Driver.record (module S) ops in
  let viol =
    W.Baselines.pmtest r.trace ~pool_size:r.pool_size
      ~annotations:[ W.Baselines.In_tx { sid = "redis:init.zero_root" } ]
  in
  Alcotest.(check bool) "annotation fires (false positive)" true (viol <> []);
  let res = W.Engine.run ~cfg:(cfg ~n_ops:60) (Stores.Redis_like.make ()) in
  Alcotest.(check int) "witcher prunes it" 0 (res.c_o + res.c_a)

(* Performance detectors on a hand trace. *)
let test_perf_detectors () =
  let open Nvm in
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  (* P-EFE: fence with no flush *)
  Ctx.fence ctx ~sid:"efe";
  (* P-EFL: flush twice *)
  Ctx.write_u64 ctx ~sid:"w" 128 Tv.one;
  Ctx.flush ctx ~sid:"fl1" 128;
  Ctx.flush ctx ~sid:"fl2" 128;
  Ctx.fence ctx ~sid:"fe";
  (* P-U: never flushed *)
  Ctx.write_u64 ctx ~sid:"pu" 512 Tv.one;
  let perf = W.Perf.detect (Ctx.trace ctx) in
  Alcotest.(check int) "P-EFE" 1 (W.Perf.n_bugs perf.p_efe);
  Alcotest.(check int) "P-EFL" 1 (W.Perf.n_bugs perf.p_efl);
  Alcotest.(check int) "P-U" 1 (W.Perf.n_bugs perf.p_u)

(* qcheck: for the fixed level-hash, every crash image Witcher generates
   passes output equivalence — the durable-linearizability property, at
   random seeds. *)
let prop_fixed_durable =
  QCheck2.Test.make ~name:"fixed level-hash durable-linearizable (seeds)"
    ~count:6
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let c =
         { W.Engine.default_cfg with
           workload = { W.Workload.default with n_ops = 60; seed };
           crash = { W.Crash_gen.default_cfg with max_images = 400 } }
       in
       let r = W.Engine.run ~cfg:c (Stores.Level_hash.fixed ()) in
       r.n_mismatch = 0)

let prop_buggy_found =
  QCheck2.Test.make ~name:"buggy level-hash caught (seeds)" ~count:6
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let c =
         { W.Engine.default_cfg with
           workload = { W.Workload.default with n_ops = 80; seed };
           crash = { W.Crash_gen.default_cfg with max_images = 600 } }
       in
       let r = W.Engine.run ~cfg:c (Stores.Level_hash.buggy ()) in
       r.c_o + r.c_a > 0)

(* first_diff reporting: when the resumed run diverges from the two
   oracles at different indices, the earliest divergence from either is
   the one reported (the pre-fix code looked for an index diverging from
   both at once and fell through to the start of the suffix). *)
let test_first_diff_earliest () =
  let open W.Output in
  let committed = [| Ok; Found "a"; Ok; Found "c" |] in
  let rolled_back = [| Ok; Ok; Ok; Found "d" |] in
  (* diverges from rolled-back at suffix index 1, from committed at 3 *)
  let got = [| Ok; Found "a"; Ok; Found "x" |] in
  match
    W.Equiv.verdict_of_outputs ~crash_op:5 ~got
      ~committed:(fun i -> committed.(i))
      ~rolled_back:(fun i -> rolled_back.(i))
  with
  | W.Equiv.Consistent -> Alcotest.fail "expected inconsistent"
  | W.Equiv.Inconsistent d ->
    Alcotest.(check int) "earliest divergence (crash_op 5 + idx 1 + 1)" 7
      d.first_diff;
    Alcotest.(check bool) "got at that index" true
      (W.Output.equal d.got (Found "a"))

(* The streaming checker must reach exactly the verdict the full-replay
   reference does, image by image, on a real buggy store. *)
let test_streaming_matches_reference () =
  let e = Option.get (R.find "level-hash") in
  let module S = (val e.buggy ()) in
  let wl = W.Workload.no_scan { W.Workload.default with n_ops = 60 } in
  let r = W.Driver.record (module S) (W.Workload.generate wl) in
  let conds = W.Infer.infer r.trace in
  let fuel = W.Engine.default_cfg.fuel in
  let checker =
    W.Equiv.create ~fuel (module S) ~ops:r.ops ~committed:r.outputs
  in
  let n = ref 0 and n_bad = ref 0 in
  ignore
    (W.Crash_gen.generate
       ~cfg:{ W.Crash_gen.default_cfg with max_images = 200 }
       ~trace:r.trace ~conds ~pool_size:r.pool_size
       ~on_image:(fun (img : W.Crash_gen.image) ->
           let k = img.crash_op in
           (* reference: full replay from a detached flat copy *)
           let got =
             W.Driver.resume (module S) ~image:(Nvm.Pmem.copy img.img)
               ~ops:r.ops ~from_op:k ~fuel
           in
           let rb = W.Equiv.rolled_back_oracle checker k in
           let reference =
             W.Equiv.verdict_of_outputs ~crash_op:k ~got
               ~committed:(fun i -> r.outputs.(k + i))
               ~rolled_back:(fun i -> rb.(i))
           in
           let streamed = W.Equiv.check checker ~img:img.img ~crash_op:k in
           incr n;
           (match reference, streamed with
            | W.Equiv.Consistent, W.Equiv.Consistent -> ()
            | W.Equiv.Inconsistent a, W.Equiv.Inconsistent b ->
              incr n_bad;
              Alcotest.(check int) "first_diff agrees" a.first_diff b.first_diff
            | _ -> Alcotest.fail "streaming and reference verdicts disagree");
           `Continue)
       ());
  Alcotest.(check bool) "covered consistent and inconsistent images" true
    (!n > 50 && !n_bad > 0 && !n_bad < !n)

(* qcheck: the optimized checker (lazy rolled-back oracles +
   checkpointed oracle construction + digest-keyed verdict memo) reaches
   exactly the verdict the reference [Equiv.verdict_of_outputs] computes
   on fully materialized outputs — and so does a checker with every
   optimization disabled — for random workloads on every registry
   store. *)
let prop_optimized_checker_parity =
  QCheck2.Test.make
    ~name:"optimized checker = reference, all stores (seeds)" ~count:3
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       List.for_all
         (fun (e : R.entry) ->
            let module S = (val e.buggy ()) in
            let wl =
              W.Workload.no_scan { W.Workload.default with n_ops = 30; seed }
            in
            let rec_ =
              W.Driver.record ~ckpt_stride:8 (module S)
                (W.Workload.generate wl)
            in
            let conds = W.Infer.infer rec_.trace in
            let fuel = W.Engine.default_cfg.fuel in
            let opt =
              W.Equiv.create ~fuel ~checkpoints:rec_.checkpoints (module S)
                ~ops:rec_.ops ~committed:rec_.outputs
            in
            let plain =
              W.Equiv.create ~fuel ~lazy_oracle:false ~memo:false (module S)
                ~ops:rec_.ops ~committed:rec_.outputs
            in
            let ok = ref true in
            ignore
              (W.Crash_gen.generate
                 ~cfg:{ W.Crash_gen.default_cfg with max_images = 100 }
                 ~trace:rec_.trace ~conds ~pool_size:rec_.pool_size
                 ~on_image:(fun (img : W.Crash_gen.image) ->
                     let k = img.crash_op in
                     let got =
                       W.Driver.resume (module S)
                         ~image:(Nvm.Pmem.copy img.img) ~ops:rec_.ops
                         ~from_op:k ~fuel
                     in
                     let img_copy = Nvm.Pmem.copy img.img in
                  let rb = W.Equiv.rolled_back_oracle plain k in
                     let reference =
                       W.Equiv.verdict_of_outputs ~crash_op:k ~got
                         ~committed:(fun i -> rec_.outputs.(k + i))
                         ~rolled_back:(fun i -> rb.(i))
                     in
                     let v_opt =
                       W.Equiv.check ~digest:img.digest opt ~img:img.img
                         ~crash_op:k
                     in
                     let v_plain =
                       W.Equiv.check plain ~img:img_copy ~crash_op:k
                     in
                     let key = function
                       | W.Equiv.Consistent -> -1
                       | W.Equiv.Inconsistent d -> d.first_diff
                     in
                     if key reference <> key v_opt
                        || key reference <> key v_plain
                     then ok := false;
                     if !ok then `Continue else `Stop)
                 ());
            !ok)
         R.all)

(* qcheck: fence-batched checking is invisible in the verdicts. Three
   checkers over the identical image stream — a plain per-image one
   (every optimization off), the optimized one (checkpoints + lazy
   oracles + memo), and the optimized one with fence batching and
   verdict inheritance on top — must all reach exactly the verdict the
   reference [Equiv.verdict_of_outputs] computes on fully materialized
   outputs, for random workloads on every registry store. *)
let prop_batched_checker_parity =
  QCheck2.Test.make
    ~name:"fence-batched checker = per-image = reference, all stores (seeds)"
    ~count:3
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       List.for_all
         (fun (e : R.entry) ->
            let module S = (val e.buggy ()) in
            let wl =
              W.Workload.no_scan { W.Workload.default with n_ops = 30; seed }
            in
            let rec_ =
              W.Driver.record ~ckpt_stride:8 (module S)
                (W.Workload.generate wl)
            in
            let conds = W.Infer.infer rec_.trace in
            let fuel = W.Engine.default_cfg.fuel in
            let plain =
              W.Equiv.create ~fuel ~lazy_oracle:false ~memo:false (module S)
                ~ops:rec_.ops ~committed:rec_.outputs
            in
            let batched =
              W.Equiv.create ~fuel ~checkpoints:rec_.checkpoints (module S)
                ~ops:rec_.ops ~committed:rec_.outputs
            in
            W.Equiv.enable_batch batched ~addr_len:(fun tid ->
                ( Nvm.Trace.addr_at rec_.trace tid,
                  Nvm.Trace.len_at rec_.trace tid ));
            let ok = ref true in
            ignore
              (W.Crash_gen.generate
                 ~cfg:{ W.Crash_gen.default_cfg with max_images = 100 }
                 ~trace:rec_.trace ~conds ~pool_size:rec_.pool_size
                 ~on_image:(fun (img : W.Crash_gen.image) ->
                     let k = img.crash_op in
                     let got =
                       W.Driver.resume (module S)
                         ~image:(Nvm.Pmem.copy img.img) ~ops:rec_.ops
                         ~from_op:k ~fuel
                     in
                     let img_copy = Nvm.Pmem.copy img.img in
                     let rb = W.Equiv.rolled_back_oracle plain k in
                     let reference =
                       W.Equiv.verdict_of_outputs ~crash_op:k ~got
                         ~committed:(fun i -> rec_.outputs.(k + i))
                         ~rolled_back:(fun i -> rb.(i))
                     in
                     let v_batched =
                       W.Equiv.check ~digest:img.digest ~fence:img.crash_tid
                         ~extras:img.extras batched ~img:img.img ~crash_op:k
                     in
                     let v_plain =
                       W.Equiv.check plain ~img:img_copy ~crash_op:k
                     in
                     let key = function
                       | W.Equiv.Consistent -> -1
                       | W.Equiv.Inconsistent d -> d.first_diff
                     in
                     if key reference <> key v_batched
                        || key reference <> key v_plain
                     then ok := false;
                     if !ok then `Continue else `Stop)
                 ());
            W.Equiv.flush_batch batched;
            !ok)
         R.all)

(* qcheck: full-engine parity — a batch-on run and a batch-off run must
   report identical mismatches, root causes and path-level clusters,
   under both exhaustive and representative pruning. *)
let prop_batch_engine_parity =
  QCheck2.Test.make
    ~name:"engine batch on = batch off (both prune policies, seeds)"
    ~count:2
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let ckey (r : W.Cluster.report) =
         (r.kind, r.op_desc, r.path_hash, r.watch_sid, r.req_sid, r.rule)
       in
       let keys (r : W.Engine.result) =
         List.sort_uniq compare (List.map ckey r.all_clusters)
       in
       List.for_all
         (fun (e : R.entry) ->
            List.for_all
              (fun prune ->
                 let c batch =
                   { W.Engine.default_cfg with
                     workload = { W.Workload.default with n_ops = 30; seed };
                     crash = { W.Crash_gen.default_cfg with max_images = 100 };
                     ckpt_stride = 8; prune; batch }
                 in
                 let a = W.Engine.run ~cfg:(c true) (e.buggy ()) in
                 let b = W.Engine.run ~cfg:(c false) (e.buggy ()) in
                 a.n_mismatch = b.n_mismatch && a.c_o = b.c_o
                 && a.c_a = b.c_a && keys a = keys b)
              [ Prune.Policy.Exhaustive; Prune.Policy.Representative ])
         R.all)

(* Recovery idempotence: opening a crash image twice must not change the
   observable state a third open sees. *)
let test_recovery_idempotent () =
  List.iter
    (fun name ->
       let e = Option.get (R.find name) in
       let module S = (val e.fixed ()) in
       let ops =
         W.Workload.generate
           (W.Workload.no_scan { W.Workload.default with n_ops = 60 })
       in
       let r = W.Driver.record (module S) ops in
       let img = Nvm.Pmem.of_snapshot r.final_image in
       let open_once () =
         let ctx = Nvm.Ctx.create ~mode:Nvm.Ctx.Quiet ~fuel:1_000_000 img in
         ignore (S.open_ ctx)
       in
       open_once ();
       let snap1 = Nvm.Pmem.snapshot img in
       open_once ();
       let snap2 = Nvm.Pmem.snapshot img in
       Alcotest.(check bool) (name ^ " recover twice = once") true
         (String.equal snap1 snap2))
    [ "level-hash"; "cceh"; "fast-fair"; "b-tree"; "hashmap-tx" ]

(* Clustering: many failing images with one root cause collapse. *)
let test_clustering_collapses () =
  let r = W.Engine.run ~cfg:(cfg ~n_ops:150) (Stores.Level_hash.buggy ()) in
  Alcotest.(check bool) "mismatches >= clusters" true
    (r.n_mismatch >= r.n_clusters);
  Alcotest.(check bool) "clusters >= root causes" true
    (r.n_clusters >= List.length r.bug_reports);
  Alcotest.(check bool) "root causes > 0" true (r.bug_reports <> [])

(* Report formatting must never raise and must mention the store name. *)
let test_report_smoke () =
  let r = W.Engine.run ~cfg:(cfg ~n_ops:60) (Stores.Cceh.buggy ()) in
  let row = W.Report.result_row r in
  Alcotest.(check bool) "row mentions store" true
    (String.length row > 0
     && String.sub row 0 4 = "cceh");
  let t1 = W.Report.table1 () and t2 = W.Report.table2 () in
  Alcotest.(check bool) "tables render" true
    (String.length t1 > 100 && String.length t2 > 100);
  ignore (W.Report.bug_list r)

(* The final committed image resumed from scratch equals the committed
   outputs: equivalence checking of a "crash after the last op" state. *)
let test_final_image_consistent () =
  let e = Option.get (R.find "fast-fair") in
  let module S = (val e.fixed ()) in
  let ops = W.Workload.generate { W.Workload.default with n_ops = 100 } in
  let r = W.Driver.record (module S) ops in
  (* replay only guaranteed stores (the real durable state), then re-run
     read-only queries for every key and compare to a fresh run *)
  let img = Nvm.Pmem.of_snapshot r.final_image in
  let checker = W.Equiv.create (module S) ~ops:r.ops ~committed:r.outputs in
  match W.Equiv.check checker ~img ~crash_op:(Array.length r.ops) with
  | W.Equiv.Consistent -> ()
  | W.Equiv.Inconsistent _ -> Alcotest.fail "final image diverged"

(* Random exploration runs and respects feasibility (no crash). *)
let test_random_explore_smoke () =
  let e = Option.get (R.find "level-hash") in
  let module S = (val e.fixed ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 30 })
  in
  let r = W.Driver.record (module S) ops in
  let checker = W.Equiv.create (module S) ~ops:r.ops ~committed:r.outputs in
  let res =
    W.Random_explore.run ~trace:r.trace ~pool_size:r.pool_size
      ~samples_per_fence:1
      ~check:(fun ~img ~crash_op -> W.Equiv.check checker ~img ~crash_op)
      ()
  in
  Alcotest.(check bool) "sampled" true (res.sampled > 0);
  Alcotest.(check int) "fixed store never diverges, even at random states"
    0 res.mismatches

(* Yat estimate is monotone and spikes with workload size. *)
let test_yat_estimate_monotone () =
  let e = Option.get (R.find "level-hash") in
  let module S = (val e.buggy ()) in
  let ops =
    W.Workload.generate (W.Workload.no_scan { W.Workload.default with n_ops = 120 })
  in
  let r = W.Driver.record (module S) ops in
  let series =
    W.Yat.estimate ~trace:r.trace ~pool_size:r.pool_size
      ~per_op_images:(Hashtbl.create 1) ~n_ops:120
  in
  let arr = series.yat_log10 in
  let ok = ref true in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < arr.(i - 1) -. 1e-9 then ok := false
  done;
  Alcotest.(check bool) "monotone cumulative" true !ok;
  Alcotest.(check bool) "nontrivial" true (arr.(Array.length arr - 1) > 1.0)

(* The CCEH fixed variant's directory recovery: force a half-rewritten
   chunk and check recovery repoints it to the coarse segment. *)
let test_cceh_recovery_via_pipeline () =
  let r =
    W.Engine.run
      ~cfg:
        { W.Engine.default_cfg with
          workload =
            W.Workload.no_scan
              { W.Workload.default with n_ops = 250; key_space = 300 } }
      (Stores.Cceh.fixed ())
  in
  Alcotest.(check int) "dense cceh fixed clean" 0 (r.c_o + r.c_a)

let suite =
  detection_suites
  @ [ Alcotest.test_case "level-hash bug classes" `Slow test_level_hash_classes;
      Alcotest.test_case "memcached stats P-U" `Slow test_memcached_stats_p_u;
      Alcotest.test_case "hashmap-tx UAF" `Slow test_uaf_detected;
      Alcotest.test_case "rolled-back oracle" `Quick test_rolled_back_oracle;
      Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
      Alcotest.test_case "workload key bias" `Quick test_workload_bias;
      Alcotest.test_case "output equality" `Quick test_output_equal;
      Alcotest.test_case "agamotto-style TX checker" `Quick
        test_agamotto_missing_log;
      Alcotest.test_case "pmtest redis false positive" `Quick
        test_pmtest_redis_false_positive;
      Alcotest.test_case "perf detectors (hand trace)" `Quick test_perf_detectors;
      Alcotest.test_case "recovery idempotence" `Quick test_recovery_idempotent;
      Alcotest.test_case "clustering collapses" `Slow test_clustering_collapses;
      Alcotest.test_case "report formatting" `Quick test_report_smoke;
      Alcotest.test_case "first_diff is earliest divergence" `Quick
        test_first_diff_earliest;
      Alcotest.test_case "streaming check = full-replay reference" `Slow
        test_streaming_matches_reference;
      Alcotest.test_case "final image consistent" `Quick test_final_image_consistent;
      Alcotest.test_case "random explore (fixed store clean)" `Quick
        test_random_explore_smoke;
      Alcotest.test_case "yat estimate monotone" `Quick test_yat_estimate_monotone;
      Alcotest.test_case "cceh fixed dense workload" `Slow
        test_cceh_recovery_via_pipeline;
      QCheck_alcotest.to_alcotest prop_fixed_durable;
      QCheck_alcotest.to_alcotest prop_buggy_found;
      QCheck_alcotest.to_alcotest prop_optimized_checker_parity;
      QCheck_alcotest.to_alcotest prop_batched_checker_parity;
      QCheck_alcotest.to_alcotest prop_batch_engine_parity ]
