(* Tests for the PMDK-like substrate: pool lifecycle, the persistent
   allocator (bump + exact-fit free list), and undo-log transactions
   including rollback-on-recovery via simulated crash images. *)

open Nvm
module W = Witcher

let fresh_ctx ?(size = 512 * 1024) mode = Ctx.create ~mode (Pmem.create size)

let test_pool_lifecycle () =
  let ctx = fresh_ctx Record in
  Ctx.op_begin ctx ~index:0 ~desc:"create";
  let pool = Pmdk.Pool.create ctx ~root_size:32 in
  let root = Pmdk.Pool.root pool in
  Alcotest.(check bool) "root in heap" true (root >= Pmdk.Layout.heap_start);
  Alcotest.(check bool) "initialized" true (Pmdk.Pool.is_initialized ctx);
  (* reopen over the same memory *)
  let ctx2 = Ctx.create ~mode:Quiet (Ctx.pmem ctx) in
  let pool2 = Pmdk.Pool.open_ ctx2 in
  Alcotest.(check int) "same root" root (Pmdk.Pool.root pool2)

let test_pool_corrupt () =
  let ctx = fresh_ctx Quiet in
  match Pmdk.Pool.open_ ctx with
  | _ -> Alcotest.fail "expected corrupt pool"
  | exception Pmdk.Pool.Corrupt_pool _ -> ()

let test_alloc_alignment_and_reuse () =
  let ctx = fresh_ctx Quiet in
  let pool = Pmdk.Pool.create ctx ~root_size:16 in
  let a = Pmdk.Alloc.alloc pool 48 in
  let b = Pmdk.Alloc.alloc pool 48 in
  Alcotest.(check bool) "16-aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 48);
  Pmdk.Alloc.free pool a;
  let c = Pmdk.Alloc.alloc pool 48 in
  Alcotest.(check int) "exact-fit reuse" a c;
  (* mismatched size does not reuse *)
  Pmdk.Alloc.free pool c;
  let d = Pmdk.Alloc.alloc pool 96 in
  Alcotest.(check bool) "no wrong-size reuse" true (d <> a)

let test_zalloc_zeroes () =
  let ctx = fresh_ctx Quiet in
  let pool = Pmdk.Pool.create ctx ~root_size:16 in
  let a = Pmdk.Alloc.alloc pool 32 in
  Ctx.write_bytes ctx ~sid:"junk" a (Tv.blob (String.make 32 'J'));
  Pmdk.Alloc.free pool a;
  let b = Pmdk.Alloc.zalloc pool 32 in
  Alcotest.(check int) "reused" a b;
  Alcotest.(check string) "zeroed" (String.make 32 '\000')
    (Pmem.read_bytes (Ctx.pmem ctx) b 32)

let test_tx_commit_and_abort () =
  let ctx = fresh_ctx Quiet in
  let pool = Pmdk.Pool.create ctx ~root_size:16 in
  let a = Pmdk.Alloc.zalloc pool 16 in
  Pmdk.Tx.run pool (fun tx ->
      Pmdk.Tx.add_range tx a 8;
      Ctx.write_u64 ctx ~sid:"w" a (Tv.const 7));
  Alcotest.(check int) "committed" 7 (Pmem.read_u64 (Ctx.pmem ctx) a);
  (match
     Pmdk.Tx.run pool (fun tx ->
         Pmdk.Tx.add_range tx a 8;
         Ctx.write_u64 ctx ~sid:"w" a (Tv.const 99);
         failwith "boom")
   with
   | () -> Alcotest.fail "expected exception"
   | exception Failure _ -> ());
  Alcotest.(check int) "aborted restores" 7 (Pmem.read_u64 (Ctx.pmem ctx) a)

(* Crash mid-transaction via the real pipeline: run a TX store, take the
   guaranteed-only image before the commit fence, recover, and check the
   undo restored the old value. *)
let test_tx_recovery_via_crash_image () =
  let ctx = fresh_ctx Record in
  Ctx.op_begin ctx ~index:0 ~desc:"create";
  let pool = Pmdk.Pool.create ctx ~root_size:16 in
  let a = Pmdk.Alloc.zalloc pool 16 in
  Ctx.write_u64 ctx ~sid:"init" a (Tv.const 1);
  Ctx.persist ctx ~sid:"init" a 8;
  Ctx.op_begin ctx ~index:1 ~desc:"tx";
  let tx = Pmdk.Tx.begin_ pool in
  Pmdk.Tx.add_range tx a 8;
  Ctx.write_u64 ctx ~sid:"dirty" a (Tv.const 2);
  (* crash here: replay the trace through the simulator and materialize
     the guaranteed-only state *)
  let sim =
    Crash_sim.create ~trace:(Ctx.trace ctx)
      ~pool_size:(Pmem.size (Ctx.pmem ctx))
  in
  Trace.iter (fun ev -> Crash_sim.on_event sim ev) (Ctx.trace ctx);
  let img = Crash_sim.materialize sim ~extras:[] in
  let ctx2 = Ctx.create ~mode:Quiet img in
  let pool2 = Pmdk.Pool.open_ ctx2 in
  Pmdk.Tx.recover pool2;
  Alcotest.(check int) "undo restored" 1 (Pmem.read_u64 img a)

let test_tx_log_events () =
  let ctx = fresh_ctx Record in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  let pool = Pmdk.Pool.create ctx ~root_size:16 in
  let a = Pmdk.Alloc.zalloc pool 16 in
  Pmdk.Tx.run pool (fun tx ->
      Pmdk.Tx.add_range tx a 8;
      Pmdk.Tx.add_range tx a 8;
      Ctx.write_u64 ctx ~sid:"w" a (Tv.const 5));
  let perf = W.Perf.detect (Ctx.trace ctx) in
  Alcotest.(check int) "redundant log detected" 1 (W.Perf.n_bugs perf.p_el)

let suite =
  [ Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
    Alcotest.test_case "pool corrupt detection" `Quick test_pool_corrupt;
    Alcotest.test_case "alloc alignment + exact-fit reuse" `Quick
      test_alloc_alignment_and_reuse;
    Alcotest.test_case "zalloc zeroes reused blocks" `Quick test_zalloc_zeroes;
    Alcotest.test_case "tx commit and abort" `Quick test_tx_commit_and_abort;
    Alcotest.test_case "tx recovery from crash image" `Quick
      test_tx_recovery_via_crash_image;
    Alcotest.test_case "tx redundant logging is P-EL" `Quick test_tx_log_events ]
