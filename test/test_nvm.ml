(* Unit and property tests for the NVM substrate: tainted values, the
   trace recorder, the pool, the instrumented context and, most
   importantly, the persistence state machine (flush/fence guarantees and
   per-line prefix-closure feasibility). *)

open Nvm

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Vec --- *)

let test_vec () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do Vec.push v i done;
  check "len" 100 (Vec.length v);
  check "get" 42 (Vec.get v 42);
  Vec.set v 42 7;
  check "set" 7 (Vec.get v 42);
  check "fold" (4950 - 42 + 7) (Vec.fold_left ( + ) 0 v)

(* --- Taint / Tv --- *)

let test_taint () =
  let t1 = Taint.singleton 1 and t2 = Taint.singleton 2 in
  let u = Taint.union t1 t2 in
  check "card" 2 (Taint.cardinal u);
  checkb "mem" true (Taint.mem 1 u);
  checkb "empty" true (Taint.is_empty Taint.empty)

let test_tv_arith () =
  let a = Tv.make ~taint:(Taint.singleton 1) 10 in
  let b = Tv.make ~taint:(Taint.singleton 2) 32 in
  let c = Tv.add a b in
  check "value" 42 (Tv.value c);
  check "taint union" 2 (Taint.cardinal (Tv.taint c));
  let d = Tv.eq a b in
  checkb "eq false" false (Tv.to_bool d);
  check "cmp taint" 2 (Taint.cardinal (Tv.taint d))

(* --- Pmem --- *)

let test_pmem () =
  let p = Pmem.create 256 in
  Pmem.write_u64 p 8 0xdeadbeef;
  check "u64" 0xdeadbeef (Pmem.read_u64 p 8);
  Pmem.write_bytes p 100 "hello";
  Alcotest.(check string) "bytes" "hello" (Pmem.read_bytes p 100 5);
  (match Pmem.read_u64 p 252 with
   | _ -> Alcotest.fail "expected fault"
   | exception Pmem.Fault _ -> ());
  let s = Pmem.snapshot p in
  let p' = Pmem.of_snapshot s in
  check "snapshot" 0xdeadbeef (Pmem.read_u64 p' 8)

let test_pmem_cow () =
  (* 300 bytes: the last line is partial (300 - 4*64 = 44 bytes) *)
  let base = Pmem.create 300 in
  Pmem.write_u64 base 8 0x1111;
  Pmem.write_bytes base 60 "cross-line";    (* spans lines 0 and 1 *)
  Pmem.write_u8 base 299 7;                 (* last byte of partial line *)
  let before = Pmem.snapshot base in
  let v = Pmem.cow base in
  checkb "is_cow" true (Pmem.is_cow v);
  check "no lines copied yet" 0 (Pmem.overlay_lines v);
  (* fall-through reads see the base *)
  check "ro u64" 0x1111 (Pmem.read_u64 v 8);
  Alcotest.(check string) "ro cross-line" "cross-line" (Pmem.read_bytes v 60 10);
  check "ro last byte" 7 (Pmem.read_u8 v 299);
  (* writes land in the overlay, never in the base *)
  Pmem.write_u64 v 8 0x2222;
  Pmem.write_bytes v 60 "CROSS-LINE";
  Pmem.write_u8 v 299 9;
  check "overlay u64" 0x2222 (Pmem.read_u64 v 8);
  Alcotest.(check string) "overlay cross-line" "CROSS-LINE"
    (Pmem.read_bytes v 60 10);
  check "overlay last byte" 9 (Pmem.read_u8 v 299);
  Alcotest.(check string) "base untouched" before (Pmem.snapshot base);
  check "base still original" 0x1111 (Pmem.read_u64 base 8);
  (* dirty-line accounting: lines 0, 1 and the partial line 4 *)
  check "overlay lines" 3 (Pmem.overlay_lines v);
  check "cow bytes" (64 + 64 + 44) (Pmem.cow_bytes v);
  (* snapshot merges overlay over base; copy detaches *)
  let d = Pmem.copy v in
  checkb "copy is flat" false (Pmem.is_cow d);
  Alcotest.(check string) "copy = view" (Pmem.snapshot v) (Pmem.snapshot d);
  Pmem.write_u64 d 16 0xffff;
  check "view unaffected by detached copy" 0 (Pmem.read_u64 v 16);
  (* bounds checking is preserved on the view *)
  (match Pmem.read_u64 v 296 with
   | _ -> Alcotest.fail "expected fault"
   | exception Pmem.Fault _ -> ())

(* qcheck: a COW view and a flat copy are indistinguishable under any
   sequence of in-bounds writes and reads, and the base never changes. *)
let prop_cow_equals_flat =
  let size = 300 in
  QCheck2.Test.make ~name:"cow view behaves like a flat pool" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 4) (int_range 0 (size - 1)) (int_range 0 255)))
    (fun ops ->
       let base = Pmem.create size in
       (* non-trivial base contents *)
       for i = 0 to (size / 8) - 1 do
         Pmem.write_u64 base (i * 8) (i * 0x01010101)
       done;
       let before = Pmem.snapshot base in
       let flat = Pmem.of_snapshot before in
       let v = Pmem.cow base in
       let ok = ref true in
       List.iter
         (fun (kind, addr, value) ->
            match kind with
            | 0 ->
              let addr = min addr (size - 8) in
              Pmem.write_u64 flat addr value;
              Pmem.write_u64 v addr value
            | 1 ->
              Pmem.write_u8 flat addr value;
              Pmem.write_u8 v addr value
            | 2 ->
              (* may straddle a line boundary or hit the partial line *)
              let s = String.make (min 20 (size - addr)) (Char.chr value) in
              Pmem.write_bytes flat addr s;
              Pmem.write_bytes v addr s
            | 3 ->
              let addr = min addr (size - 8) in
              ok := !ok && Pmem.read_u64 flat addr = Pmem.read_u64 v addr
            | _ ->
              let len = min 20 (size - addr) in
              ok := !ok
                    && Pmem.read_bytes flat addr len = Pmem.read_bytes v addr len)
         ops;
       !ok
       && Pmem.snapshot flat = Pmem.snapshot v
       && Pmem.snapshot base = before)

(* --- Ctx: tracing, guards, line splitting --- *)

let test_ctx_trace () =
  let p = Pmem.create 1024 in
  let ctx = Ctx.create ~mode:Record p in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  let v = Ctx.read_u64 ctx ~sid:"a" 0 in
  Ctx.write_u64 ctx ~sid:"b" 64 (Tv.add v Tv.one);
  let tr = Ctx.trace ctx in
  (* event 0 is Op_begin, 1 the load, 2 the store *)
  (match Trace.get tr 2 with
   | Trace.Store s ->
     check "dd card" 1 (Taint.cardinal s.s_dd);
     checkb "dd is load 1" true (Taint.mem 1 s.s_dd)
   | _ -> Alcotest.fail "expected store");
  (* guarded load carries cd *)
  let g = Ctx.read_u64 ctx ~sid:"guard" 8 in
  Ctx.when_ ctx (Tv.retaint Tv.one (Tv.taint g)) (fun () ->
      ignore (Ctx.read_u64 ctx ~sid:"inner" 16));
  (match Trace.get tr (Trace.length tr - 1) with
   | Trace.Load l -> checkb "cd nonempty" false (Taint.is_empty l.l_cd)
   | _ -> Alcotest.fail "expected load")

let test_ctx_line_split () =
  let p = Pmem.create 1024 in
  let ctx = Ctx.create ~mode:Record p in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  (* 16 bytes crossing a line boundary at 64 *)
  Ctx.write_bytes ctx ~sid:"x" 56 (Tv.blob (String.make 16 'z'));
  let tr = Ctx.trace ctx in
  check "two stores" 2 tr.n_stores;
  (match Trace.get tr 1, Trace.get tr 2 with
   | Trace.Store a, Trace.Store b ->
     check "first len" 8 a.s_len;
     check "second len" 8 b.s_len;
     check "second addr" 64 b.s_addr
   | _ -> Alcotest.fail "stores expected")

let test_ctx_fuel () =
  let p = Pmem.create 1024 in
  let ctx = Ctx.create ~mode:Quiet ~fuel:10 p in
  match
    for _ = 1 to 20 do ignore (Ctx.read_u64 ctx ~sid:"x" 0) done
  with
  | () -> Alcotest.fail "expected fuel exhaustion"
  | exception Ctx.Fuel_exhausted -> ()

(* --- Crash_sim: flush/fence semantics --- *)

(* The simulator is trace-backed: tests append events to a live trace and
   feed each one by index immediately, so assertions can interleave with
   the event stream exactly as before. *)
let sim_pair ~pool_size =
  let tr = Trace.create () in
  (tr, Crash_sim.create ~trace:tr ~pool_size)

let sim_store tr sim addr data =
  let tid =
    Trace.add_store_sub tr ~sid:(Sid.intern "s") ~addr ~src:data ~src_off:0
      ~len:(String.length data) ~dd:Taint.empty ~cd:Taint.empty ~op:0
  in
  Crash_sim.on_index sim tid;
  tid

let sim_flush tr sim line =
  Crash_sim.on_index sim (Trace.add_flush tr ~sid:(Sid.intern "fl") ~line ~op:0)

let sim_fence tr sim =
  Crash_sim.on_index sim (Trace.add_fence tr ~sid:(Sid.intern "fe") ~op:0)

let test_sim_guarantee () =
  let tr, sim = sim_pair ~pool_size:1024 in
  let t0 = sim_store tr sim 0 "aaaaaaaa" in
  checkb "dirty not guaranteed" false (Crash_sim.is_guaranteed sim t0);
  sim_flush tr sim 0;
  checkb "flushed not yet guaranteed" false (Crash_sim.is_guaranteed sim t0);
  sim_fence tr sim;
  checkb "fenced guaranteed" true (Crash_sim.is_guaranteed sim t0);
  (* a store after the flush is not covered *)
  let t1 = sim_store tr sim 8 "bbbbbbbb" in
  sim_fence tr sim;
  checkb "unflushed store survives fences" false (Crash_sim.is_guaranteed sim t1)

let test_sim_closure () =
  let tr, sim = sim_pair ~pool_size:1024 in
  (* two stores on line 0, one on line 1 *)
  let t0 = sim_store tr sim 0 "11111111" in
  let t1 = sim_store tr sim 8 "22222222" in
  let t2 = sim_store tr sim 64 "33333333" in
  (* persisting t1 forces t0 (same line, earlier), not t2 *)
  (match Crash_sim.feasible_extras sim ~persist:[ t1 ] ~avoid:[ t2 ] with
   | Some extras ->
     Alcotest.(check (list int)) "closure" [ t0; t1 ] (List.sort compare extras)
   | None -> Alcotest.fail "expected feasible");
  (* cannot persist t1 while avoiding t0 *)
  checkb "prefix conflict" true
    (Crash_sim.feasible_extras sim ~persist:[ t1 ] ~avoid:[ t0 ] = None)

let test_sim_materialize () =
  let tr, sim = sim_pair ~pool_size:1024 in
  ignore (sim_store tr sim 0 "11111111");
  ignore (sim_store tr sim 0 "22222222");
  sim_flush tr sim 0;
  sim_fence tr sim;
  (* both guaranteed; latest wins in the image *)
  let img = Crash_sim.materialize sim ~extras:[] in
  Alcotest.(check string) "latest bytes" "22222222" (Pmem.read_bytes img 0 8)

(* qcheck: any feasible extras set is per-line prefix-closed *)
let prop_prefix_closed =
  QCheck2.Test.make ~name:"feasible extras are per-line prefix-closed"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 31) (int_range 0 2)))
    (fun ops ->
       let tr, sim = sim_pair ~pool_size:4096 in
       let stores = ref [] in
       List.iter
         (fun (word, kind) ->
            match kind with
            | 0 | 1 ->
              let addr = word * 8 in
              let tid = sim_store tr sim addr "xxxxxxxx" in
              stores := (tid, addr) :: !stores
            | _ ->
              sim_flush tr sim (Pmem.line_of_addr (word * 8));
              sim_fence tr sim)
         ops;
       match !stores with
       | [] -> true
       | (t0, _) :: _ ->
         (match Crash_sim.feasible_extras sim ~persist:[ t0 ] ~avoid:[] with
          | None -> true
          | Some extras ->
            (* every extra's same-line predecessors are in the set or
               guaranteed *)
            List.for_all
              (fun e ->
                 List.for_all
                   (fun (t, a) ->
                      let e_addr = List.assoc e !stores in
                      if t < e
                      && Pmem.line_of_addr a = Pmem.line_of_addr e_addr then
                        List.mem t extras || Crash_sim.is_guaranteed sim t
                      else true)
                   !stores)
              extras))

(* qcheck: COW materialization is bit-identical to the pre-refactor
   full-copy path for every feasible extras set the generator reaches. *)
let prop_materialize_bit_identical =
  QCheck2.Test.make ~name:"cow materialize = full-copy materialize" ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 31) (int_range 0 2)))
    (fun ops ->
       let tr, sim = sim_pair ~pool_size:4096 in
       let store_tids = ref [] in
       List.iter
         (fun (word, kind) ->
            match kind with
            | 0 | 1 ->
              let k = List.length !store_tids in
              let tid =
                sim_store tr sim (word * 8)
                  (Printf.sprintf "%08d" (k * 7 mod 99999999))
              in
              store_tids := tid :: !store_tids
            | _ ->
              sim_flush tr sim (Pmem.line_of_addr (word * 8));
              sim_fence tr sim)
         ops;
       let extras_of tid =
         match Crash_sim.feasible_extras sim ~persist:[ tid ] ~avoid:[] with
         | Some e -> e
         | None -> []
       in
       let first_tid, last_tid =
         match List.rev !store_tids with
         | [] -> (0, 0)
         | first :: _ -> (first, List.hd !store_tids)
       in
       List.for_all
         (fun extras ->
            let cow_img = Crash_sim.materialize sim ~extras in
            let flat_img = Crash_sim.materialize_copy sim ~extras in
            Pmem.is_cow cow_img
            && Pmem.snapshot cow_img = Pmem.snapshot flat_img)
         [ []; extras_of first_tid; extras_of last_tid ])

let suite =
  [ Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "taint" `Quick test_taint;
    Alcotest.test_case "tv arithmetic taints" `Quick test_tv_arith;
    Alcotest.test_case "pmem bounds + snapshot" `Quick test_pmem;
    Alcotest.test_case "pmem cow view" `Quick test_pmem_cow;
    Alcotest.test_case "ctx records dd/cd" `Quick test_ctx_trace;
    Alcotest.test_case "ctx splits at line boundary" `Quick test_ctx_line_split;
    Alcotest.test_case "ctx fuel" `Quick test_ctx_fuel;
    Alcotest.test_case "sim flush+fence guarantee" `Quick test_sim_guarantee;
    Alcotest.test_case "sim per-line closure" `Quick test_sim_closure;
    Alcotest.test_case "sim materialize latest-wins" `Quick test_sim_materialize;
    QCheck_alcotest.to_alcotest prop_prefix_closed;
    QCheck_alcotest.to_alcotest prop_cow_equals_flat;
    QCheck_alcotest.to_alcotest prop_materialize_bit_identical ]
