(* Front-end fast-path tests: sid interning, epoch dedup, and full
   fast-vs-reference parity (record + infer + generate).

   [Frontend_ref] is the pre-interning front end kept as the parity
   baseline; these properties are what license every fast-path
   optimization (packed dedup sets, array indexes, singleton
   persist-set closure): identical condition counts, identical crash
   image digest sequences, identical generation stats. *)

open Nvm
module W = Witcher

(* --- Sid interning ------------------------------------------------- *)

let test_sid_roundtrip () =
  let labels = [ "a:ins.tok"; "b"; ""; "a:ins.tok2"; "x:y:z" ] in
  List.iter
    (fun s ->
       Alcotest.(check string) ("round-trip " ^ s) s
         (Sid.to_string (Sid.intern s)))
    labels;
  Alcotest.(check int) "empty sid is id 0" 0 (Sid.intern "")

let test_sid_idempotent () =
  let s = "frontend:test.site" in
  let i = Sid.intern s in
  (* memo hit (physically equal string) and hash path (fresh copy)
     must agree, and re-interning must not grow the table *)
  let n = Sid.count () in
  Alcotest.(check int) "memo path" i (Sid.intern s);
  Alcotest.(check int) "hash path" i (Sid.intern (String.init 18 (String.get s)));
  Alcotest.(check int) "no growth on re-intern" n (Sid.count ());
  Alcotest.(check bool) "distinct labels distinct ids" true
    (Sid.intern "frontend:test.other" <> i)

(* Sids stored in the compact trace survive push/get: the event read
   back at a store's tid carries the original label. *)
let test_sid_trace_stability () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  Ctx.write_u64 ctx ~sid:"stab.w" 128 (Tv.const 7);
  ignore (Ctx.read_u64 ctx ~sid:"stab.r" 128);
  Ctx.op_end ctx ~index:0;
  let trace = Ctx.trace ctx in
  let seen_w = ref false and seen_r = ref false in
  for i = 0 to Trace.length trace - 1 do
    let k = Trace.kind_at trace i in
    if k = Trace.k_store && Sid.to_string (Trace.sid_at trace i) = "stab.w"
    then seen_w := true;
    if k = Trace.k_load && Sid.to_string (Trace.sid_at trace i) = "stab.r"
    then seen_r := true
  done;
  Alcotest.(check bool) "store sid readable from trace" true !seen_w;
  Alcotest.(check bool) "load sid readable from trace" true !seen_r

(* --- Epoch dedup --------------------------------------------------- *)

(* Two *distinct* conditions violated at the same fence epoch must each
   produce a crash image. Regression for the epoch-dedup key: keying on
   a hash of the condition (instead of the condition itself) can
   conflate distinct conditions and silently drop one's image. *)
let test_epoch_dedup_distinct_conds () =
  let ctx = Ctx.create ~mode:Record (Pmem.create 4096) in
  Ctx.op_begin ctx ~index:0 ~desc:"t";
  Ctx.write_u64 ctx ~sid:"w.x1" 128 (Tv.const 7);
  Ctx.write_u64 ctx ~sid:"w.x2" 320 (Tv.const 9);
  let a = Ctx.read_u64 ctx ~sid:"r.x1" 128 in
  let b = Ctx.read_u64 ctx ~sid:"r.x2" 320 in
  Ctx.write_u64 ctx ~sid:"w.y" 256 (Tv.add a b);
  Ctx.persist ctx ~sid:"w.y_persist" 256 8;
  Ctx.op_end ctx ~index:0;
  let trace = Ctx.trace ctx in
  let conds = W.Infer.infer trace in
  (* two PO1 conditions watch y, one per req cell *)
  let watching = W.Infer.conds_for conds 256 8 in
  Alcotest.(check int) "two conditions on y" 2 (List.length watching);
  let x1_lost = ref false and x2_lost = ref false in
  let on_image (img : W.Crash_gen.image) =
    if Pmem.read_u64 img.img 256 = 16 then begin
      if Pmem.read_u64 img.img 128 = 0 then x1_lost := true;
      if Pmem.read_u64 img.img 320 = 0 then x2_lost := true
    end;
    `Continue
  in
  ignore (W.Crash_gen.generate ~trace ~conds ~pool_size:4096 ~on_image ());
  Alcotest.(check bool) "image with x1 unpersisted" true !x1_lost;
  Alcotest.(check bool) "image with x2 unpersisted" true !x2_lost

(* --- Fast-vs-reference parity -------------------------------------- *)

(* Run one store's workload through both front ends and compare
   everything observable: the traces, the condition counts, the crash
   image digest sequence and the generation stats. *)
let check_parity ~name ~n_ops ~seed ~max_images =
  let e = Option.get (Stores.Registry.find name) in
  let ops =
    let module S = (val e.buggy ()) in
    let wl =
      if S.supports_scan then { W.Workload.default with n_ops; seed }
      else W.Workload.no_scan { W.Workload.default with n_ops; seed }
    in
    W.Workload.generate wl
  in
  let rec_ref = W.Driver.record ~boxed:true (e.buggy ()) ops in
  let rec_fast = W.Driver.record (e.buggy ()) ops in
  if Trace.length rec_ref.trace <> Trace.length rec_fast.trace then
    QCheck2.Test.fail_reportf "%s: trace lengths differ" name;
  for i = 0 to Trace.length rec_fast.trace - 1 do
    if Trace.get rec_ref.trace i <> Trace.get rec_fast.trace i then
      QCheck2.Test.fail_reportf "%s: traces differ at tid %d" name i
  done;
  let conds_ref = W.Frontend_ref.infer rec_ref.trace in
  let conds_fast = W.Infer.infer rec_fast.trace in
  let counts_ref =
    ( conds_ref.W.Frontend_ref.n_po1, conds_ref.W.Frontend_ref.n_po2,
      conds_ref.W.Frontend_ref.n_po3, conds_ref.W.Frontend_ref.n_guardians )
  and counts_fast =
    ( conds_fast.W.Infer.n_po1, conds_fast.W.Infer.n_po2,
      conds_fast.W.Infer.n_po3, conds_fast.W.Infer.n_guardians )
  in
  if counts_ref <> counts_fast then
    QCheck2.Test.fail_reportf "%s: condition counts differ" name;
  let cfg = { W.Crash_gen.default_cfg with max_images } in
  let digests gen =
    let acc = ref [] in
    let stats =
      gen (fun (img : W.Crash_gen.image) ->
          acc := img.digest :: !acc;
          `Continue)
    in
    (List.rev !acc, stats)
  in
  let dig_ref, stats_ref =
    digests (fun on_image ->
        W.Frontend_ref.generate ~cfg ~trace:rec_ref.trace ~conds:conds_ref
          ~pool_size:rec_ref.pool_size ~on_image ())
  in
  let dig_fast, stats_fast =
    digests (fun on_image ->
        W.Crash_gen.generate ~cfg ~trace:rec_fast.trace ~conds:conds_fast
          ~pool_size:rec_fast.pool_size ~on_image ())
  in
  if dig_ref <> dig_fast then
    QCheck2.Test.fail_reportf "%s: digest sequences differ (%d vs %d images)"
      name (List.length dig_ref) (List.length dig_fast);
  if
    ( stats_ref.W.Crash_gen.candidates, stats_ref.generated, stats_ref.tested,
      stats_ref.bytes_materialized )
    <> ( stats_fast.W.Crash_gen.candidates, stats_fast.generated,
         stats_fast.tested, stats_fast.bytes_materialized )
  then QCheck2.Test.fail_reportf "%s: generation stats differ" name;
  true

let parity_stores =
  [ "level-hash"; "fast-fair"; "cceh"; "wort"; "woart"; "p-clht" ]

let prop_frontend_parity =
  QCheck2.Test.make ~name:"front-end fast path == reference (stores, seeds)"
    ~count:8
    QCheck2.Gen.(
      pair (int_range 0 (List.length parity_stores - 1)) (int_range 0 10_000))
    (fun (si, seed) ->
       check_parity ~name:(List.nth parity_stores si) ~n_ops:40 ~seed
         ~max_images:200)

(* --- Golden end-to-end JSON ---------------------------------------- *)

(* The exact CLI configuration behind test/golden_run_level_hash.json:
   `witcher run -s level-hash -n 60 --json`. The full pipeline run
   through the fast front end must reproduce the golden report
   byte-for-byte, timing fields aside. *)
let strip_keys = [ "t_record"; "t_infer"; "t_gen"; "t_equiv"; "t_check"; "obs" ]

let rec strip_timing (j : Obs.Jsonx.t) : Obs.Jsonx.t =
  match j with
  | Obs.Jsonx.Obj kvs ->
    Obs.Jsonx.Obj
      (List.filter_map
         (fun (k, v) ->
            if List.mem k strip_keys then None else Some (k, strip_timing v))
         kvs)
  | Obs.Jsonx.List l -> Obs.Jsonx.List (List.map strip_timing l)
  | j -> j

let test_golden_run () =
  let cfg =
    { W.Engine.default_cfg with
      workload = { W.Workload.default with n_ops = 60; seed = 42 };
      crash = { W.Crash_gen.default_cfg with max_images = 4000 } }
  in
  let e = Option.get (Stores.Registry.find "level-hash") in
  let r = W.Engine.run ~cfg (e.buggy ()) in
  let got = strip_timing (Campaign.Journal.result_json r) in
  let path =
    if Sys.file_exists "golden_run_level_hash.json" then
      "golden_run_level_hash.json"
    else "test/golden_run_level_hash.json"
  in
  let ic = open_in path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let want =
    match Obs.Jsonx.of_string raw with
    | Ok j -> strip_timing j
    | Error e -> Alcotest.failf "golden file does not parse: %s" e
  in
  Alcotest.(check string) "golden run report (timing stripped)"
    (Obs.Jsonx.to_string want) (Obs.Jsonx.to_string got)

let suite =
  [ Alcotest.test_case "sid round-trip" `Quick test_sid_roundtrip;
    Alcotest.test_case "sid idempotent re-intern" `Quick test_sid_idempotent;
    Alcotest.test_case "sid trace push/get stability" `Quick
      test_sid_trace_stability;
    Alcotest.test_case "epoch dedup keeps distinct conditions" `Quick
      test_epoch_dedup_distinct_conds;
    QCheck_alcotest.to_alcotest prop_frontend_parity;
    Alcotest.test_case "golden level-hash run (fast path)" `Slow
      test_golden_run ]
