(* lib/prune: path-signature equivalence classes, divergence-driven
   expansion, and the engine's Representative policy.

   The headline property is the parity gate: at small workloads, a
   Representative run must report the exact same bug clusters as an
   Exhaustive run — one validated image per class plus spot checks and
   divergence-driven expansion lose no bugs, only redundant validations.
   Everything else here pins the pieces: policy parsing, signature
   stability, the spot/promotion schedule, and the registry's
   bookkeeping. *)

module W = Witcher
module R = Stores.Registry
module P = Prune

(* --- Policy --- *)

let test_policy_parse () =
  let open P.Policy in
  Alcotest.(check string) "exhaustive" "exhaustive" (name Exhaustive);
  Alcotest.(check string) "representative" "representative" (name Representative);
  Alcotest.(check string) "sample" "sample:4" (name (Sample 4));
  let round s = Result.map name (of_string s) in
  Alcotest.(check (result string string)) "roundtrip exhaustive"
    (Ok "exhaustive") (round "exhaustive");
  Alcotest.(check (result string string)) "repr shorthand"
    (Ok "representative") (round "repr");
  Alcotest.(check (result string string)) "sample:7" (Ok "sample:7")
    (round "sample:7");
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (of_string "zap"));
  Alcotest.(check bool) "sample:0 rejected" true
    (Result.is_error (of_string "sample:0"))

(* --- Path_sig --- *)

let sid = Nvm.Sid.intern

let test_path_sig_basics () =
  let mk ?(op = "insert") ?(path = 42) ?(w = "site.a") ?(r = "site.b") () =
    P.Path_sig.make ~op_kind:(sid op) ~path ~watch:(sid w) ~req:(sid r)
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "equal" true (P.Path_sig.equal a b);
  Alcotest.(check int) "compare 0" 0 (P.Path_sig.compare a b);
  Alcotest.(check int) "hash agrees" (P.Path_sig.hash a) (P.Path_sig.hash b);
  Alcotest.(check bool) "op differs" false
    (P.Path_sig.equal a (mk ~op:"delete" ()));
  Alcotest.(check bool) "path differs" false
    (P.Path_sig.equal a (mk ~path:43 ()));
  Alcotest.(check bool) "watch differs" false
    (P.Path_sig.equal a (mk ~w:"site.c" ()));
  Alcotest.(check bool) "req differs" false
    (P.Path_sig.equal a (mk ~r:"site.c" ()))

(* The stable key must depend on the interned sites' *labels*, never on
   their interning order, so it can name a class across processes and
   across seeds (interning order follows first use, which follows the
   workload). *)
let test_path_sig_stable_key () =
  let a =
    P.Path_sig.make ~op_kind:(sid "insert") ~path:7
      ~watch:(sid "stable.w") ~req:(sid "stable.r")
  in
  Alcotest.(check string) "pinned across processes"
    (P.Path_sig.stable_key a)
    (P.Path_sig.stable_key
       (P.Path_sig.make ~op_kind:(sid "insert") ~path:7
          ~watch:(sid "stable.w") ~req:(sid "stable.r")));
  Alcotest.(check bool) "differs on path" true
    (P.Path_sig.stable_key a
     <> P.Path_sig.stable_key
          (P.Path_sig.make ~op_kind:(sid "insert") ~path:8
             ~watch:(sid "stable.w") ~req:(sid "stable.r")))

(* [step] must likewise fold the site's label, not its interning order:
   interning extra sids between two folds must not change the digest. *)
let test_path_step_label_stable () =
  let h1 = P.Path_sig.step 0 (sid "step.x") in
  for i = 0 to 99 do
    ignore (sid (Printf.sprintf "step.noise%d" i))
  done;
  let h2 = P.Path_sig.step 0 (sid "step.x") in
  Alcotest.(check int) "same label, same fold" h1 h2;
  Alcotest.(check bool) "different labels differ" true
    (P.Path_sig.step 0 (sid "step.x") <> P.Path_sig.step 0 (sid "step.y"))

(* --- Expand --- *)

let test_expand_spots () =
  let e = P.Expand.create ~budget:3 in
  let spot m used = P.Expand.want_spot e ~member_index:m ~spots_used:used in
  Alcotest.(check bool) "member 1" true (spot 1 0);
  Alcotest.(check bool) "member 2" true (spot 2 1);
  Alcotest.(check bool) "member 3 skipped" false (spot 3 2);
  Alcotest.(check bool) "member 4" true (spot 4 2);
  Alcotest.(check bool) "budget exhausted" false (spot 8 3)

let test_expand_on_verdict () =
  let e = P.Expand.default in
  let v prediction consistent = P.Expand.on_verdict e ~prediction ~consistent in
  (* the first verdict is the prediction, consistent or not: an
     inconsistent representative already reports its cluster, so its
     siblings could only re-count the same bug *)
  Alcotest.(check bool) "first consistent sets" true
    (v None true = P.Expand.Set_prediction);
  Alcotest.(check bool) "first inconsistent sets" true
    (v None false = P.Expand.Set_prediction);
  Alcotest.(check bool) "agreeing keeps" true
    (v (Some true) true = P.Expand.Keep);
  Alcotest.(check bool) "divergence promotes" true
    (v (Some true) false = P.Expand.Promote);
  Alcotest.(check bool) "divergence promotes (either way)" true
    (v (Some false) true = P.Expand.Promote)

(* --- Equiv_class registry --- *)

let sig_of i =
  P.Path_sig.make ~op_kind:(sid "op") ~path:i ~watch:(sid "w") ~req:(sid "r")

let test_registry_rep_and_defer () =
  let t = P.Equiv_class.create () in
  let s = sig_of 1 in
  Alcotest.(check bool) "first member tested" true
    (P.Equiv_class.decide t ~sig_:s ~member:0 = `Test);
  P.Equiv_class.observe t ~sig_:s ~consistent:true;
  (* arrival indices 1 and 2 are power-of-two spots; index 3 defers *)
  Alcotest.(check bool) "spot tested" true
    (P.Equiv_class.decide t ~sig_:s ~member:1 = `Test);
  P.Equiv_class.observe t ~sig_:s ~consistent:true;
  Alcotest.(check bool) "second spot tested" true
    (P.Equiv_class.decide t ~sig_:s ~member:2 = `Test);
  P.Equiv_class.observe t ~sig_:s ~consistent:true;
  Alcotest.(check bool) "non-spot deferred" true
    (P.Equiv_class.decide t ~sig_:s ~member:3 = `Defer);
  Alcotest.(check int) "one class" 1 (P.Equiv_class.n_classes t);
  Alcotest.(check int) "one deferral" 1 (P.Equiv_class.n_deferred t);
  Alcotest.(check int) "no promotion" 0 (P.Equiv_class.n_promoted t);
  Alcotest.(check bool) "nothing promoted" true
    (P.Equiv_class.promoted_deferred t = []);
  (* the consistent collapsed class exposes its newest member as a tail
     spot-check *)
  (match P.Equiv_class.tail_spots t with
   | [ (s', m) ] ->
     Alcotest.(check bool) "tail is the class" true (P.Path_sig.equal s s');
     Alcotest.(check int) "tail is newest deferred" 3 m
   | l -> Alcotest.failf "expected one tail spot, got %d" (List.length l))

let test_registry_promotion () =
  let t = P.Equiv_class.create () in
  let s = sig_of 2 in
  Alcotest.(check bool) "rep" true (P.Equiv_class.decide t ~sig_:s ~member:10 = `Test);
  P.Equiv_class.observe t ~sig_:s ~consistent:true;
  Alcotest.(check bool) "spot" true (P.Equiv_class.decide t ~sig_:s ~member:11 = `Test);
  (* the spot diverges from the consistent prediction: promote *)
  P.Equiv_class.observe t ~sig_:s ~consistent:false;
  Alcotest.(check int) "promoted" 1 (P.Equiv_class.n_promoted t);
  Alcotest.(check bool) "later members tested inline" true
    (P.Equiv_class.decide t ~sig_:s ~member:12 = `Test);
  Alcotest.(check int) "inline expansion counted" 1
    (P.Equiv_class.n_inline_expanded t);
  (* a promoted class is no longer a tail-spot candidate *)
  Alcotest.(check bool) "no tail spots" true (P.Equiv_class.tail_spots t = [])

let test_registry_memo () =
  let t =
    P.Equiv_class.create
      ~memo:(fun k -> if k = P.Path_sig.stable_key (sig_of 3) then Some true else None)
      ()
  in
  (* a class a prior seed proved consistent defers even its first member *)
  Alcotest.(check bool) "memoized class defers rep" true
    (P.Equiv_class.decide t ~sig_:(sig_of 3) ~member:0 = `Defer);
  Alcotest.(check int) "memo hit counted" 1 (P.Equiv_class.n_memo_hits t);
  (* unknown classes are unaffected *)
  Alcotest.(check bool) "other class tests rep" true
    (P.Equiv_class.decide t ~sig_:(sig_of 4) ~member:0 = `Test);
  (* outcomes exports the memo prediction for the deferred class *)
  let outs = P.Equiv_class.outcomes t in
  Alcotest.(check bool) "memoized class exported consistent" true
    (List.mem (P.Path_sig.stable_key (sig_of 3), true) outs)

let test_registry_outcomes_exclude_promoted () =
  let t = P.Equiv_class.create () in
  let s = sig_of 5 in
  ignore (P.Equiv_class.decide t ~sig_:s ~member:0);
  P.Equiv_class.observe t ~sig_:s ~consistent:true;
  ignore (P.Equiv_class.decide t ~sig_:s ~member:1);
  P.Equiv_class.observe t ~sig_:s ~consistent:false;
  Alcotest.(check bool) "promoted class never exported consistent" true
    (List.for_all
       (fun (k, ok) -> k <> P.Path_sig.stable_key s || not ok)
       (P.Equiv_class.outcomes t))

(* --- Engine integration --- *)

let cluster_key (r : W.Cluster.report) =
  (r.kind, r.op_desc, r.path_hash, r.watch_sid, r.req_sid, r.rule)

let cluster_keys (r : W.Engine.result) =
  List.sort_uniq compare (List.map cluster_key r.all_clusters)

let engine_cfg ?(seed = W.Workload.default.seed) ?(n_ops = 60)
    ?(prune = P.Policy.Exhaustive) () =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops; seed };
    crash = { W.Crash_gen.default_cfg with max_images = 600 };
    prune }

(* Representative mode must never change *what* is found, only how many
   images are validated to find it. *)
let test_representative_parity_level_hash () =
  let ex =
    W.Engine.run ~cfg:(engine_cfg ()) (Stores.Level_hash.buggy ())
  in
  let rp =
    W.Engine.run ~cfg:(engine_cfg ~prune:P.Policy.Representative ())
      (Stores.Level_hash.buggy ())
  in
  Alcotest.(check bool) "same clusters" true (cluster_keys ex = cluster_keys rp);
  Alcotest.(check int) "same root causes" (List.length ex.bug_reports)
    (List.length rp.bug_reports);
  Alcotest.(check bool) "validates no more than exhaustive" true
    (rp.images_tested <= ex.images_tested);
  Alcotest.(check int) "exhaustive defers nothing" 0 ex.images_deferred;
  Alcotest.(check int) "elided = deferred - expanded" rp.images_elided
    (rp.images_deferred - (rp.images_tested - rp.prune_reps));
  Alcotest.(check bool) "classes observed" true (rp.prune_classes > 0)

(* The qcheck parity gate (ISSUE 6): at <= 60 ops, Representative reports
   the exact same bug clusters as Exhaustive, across the registry stores,
   at random seeds. *)
let prop_representative_parity =
  QCheck2.Test.make
    ~name:"representative = exhaustive bug clusters, all stores (seeds)"
    ~count:3
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       List.for_all
         (fun (e : R.entry) ->
            let ex = W.Engine.run ~cfg:(engine_cfg ~seed ()) (e.buggy ()) in
            let rp =
              W.Engine.run
                ~cfg:(engine_cfg ~seed ~prune:P.Policy.Representative ())
                (e.buggy ())
            in
            cluster_keys ex = cluster_keys rp
            && rp.images_tested <= ex.images_tested)
         R.all)

(* Sample mode is the blind statistical fallback: it must run, validate
   roughly 1/stride of the eligible stream, and never invent bugs. *)
let test_sample_policy () =
  let ex = W.Engine.run ~cfg:(engine_cfg ()) (Stores.Level_hash.buggy ()) in
  let sp =
    W.Engine.run ~cfg:(engine_cfg ~prune:(P.Policy.Sample 4) ())
      (Stores.Level_hash.buggy ())
  in
  Alcotest.(check bool) "samples a fraction" true
    (sp.images_tested < ex.images_tested && sp.images_tested > 0);
  Alcotest.(check bool) "subset of exhaustive clusters" true
    (List.for_all
       (fun k -> List.mem k (cluster_keys ex))
       (cluster_keys sp))

(* Cross-seed memo: feeding seed A's class outcomes into seed A again
   must elide every consistent class (identical classes recur), while
   keeping every inconsistent class's cluster. *)
let test_class_memo_same_seed () =
  let cfg = engine_cfg ~prune:P.Policy.Representative () in
  let r1 = W.Engine.run ~cfg (Stores.Level_hash.buggy ()) in
  let memo = Hashtbl.create 64 in
  List.iter (fun (k, ok) -> Hashtbl.replace memo k ok) r1.class_outcomes;
  let r2 =
    W.Engine.run ~cfg ~class_memo:(Hashtbl.find_opt memo)
      (Stores.Level_hash.buggy ())
  in
  Alcotest.(check bool) "memo hits recorded" true (r2.seed_memo_hits > 0);
  Alcotest.(check bool) "fewer validations with memo" true
    (r2.images_tested < r1.images_tested);
  Alcotest.(check bool) "same clusters with memo" true
    (cluster_keys r1 = cluster_keys r2)

let suite =
  [ Alcotest.test_case "policy parse/print" `Quick test_policy_parse;
    Alcotest.test_case "path_sig equality" `Quick test_path_sig_basics;
    Alcotest.test_case "path_sig stable key" `Quick test_path_sig_stable_key;
    Alcotest.test_case "path step label-stable" `Quick test_path_step_label_stable;
    Alcotest.test_case "expand spot schedule" `Quick test_expand_spots;
    Alcotest.test_case "expand verdict policy" `Quick test_expand_on_verdict;
    Alcotest.test_case "registry rep/spot/defer" `Quick test_registry_rep_and_defer;
    Alcotest.test_case "registry promotion" `Quick test_registry_promotion;
    Alcotest.test_case "registry cross-seed memo" `Quick test_registry_memo;
    Alcotest.test_case "registry outcomes exclude promoted" `Quick
      test_registry_outcomes_exclude_promoted;
    Alcotest.test_case "representative parity (level-hash)" `Slow
      test_representative_parity_level_hash;
    Alcotest.test_case "sample policy" `Slow test_sample_policy;
    Alcotest.test_case "cross-seed memo elides" `Slow test_class_memo_same_seed;
    QCheck_alcotest.to_alcotest prop_representative_parity ]
