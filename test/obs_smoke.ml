(* End-to-end observability smoke check, run by the `obs-smoke` dune
   alias against the output directory of a tiny `witcher campaign
   --trace-out --heartbeat` sweep. Asserts the acceptance criteria that
   only hold across the full pipeline:

   - trace.json is valid JSON (parses with Jsonx), has one well-nested
     track per worker pid plus an orchestrator overview track;
   - per job, the stage span durations in the journal's obs payload sum
     to the journal's own t_record + t_infer + t_gen + t_equiv within
     max(5%, 20ms);
   - merging the per-worker metrics snapshots reproduces (a) the
     report.json "metrics" object and (b) exactly what a single process
     re-running every job observes — the merge-exactness guarantee. *)

module W = Witcher
module C = Campaign
module J = Obs.Jsonx
module M = Obs.Metrics
module S = Obs.Span

let fail fmt =
  Printf.ksprintf
    (fun s ->
       prerr_endline ("obs-smoke: FAIL: " ^ s);
       exit 1)
    fmt

let pass fmt = Printf.ksprintf (fun s -> print_endline ("obs-smoke: " ^ s)) fmt

let read_file path =
  if not (Sys.file_exists path) then fail "missing %s" path;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_file path =
  match J.of_string (read_file path) with
  | Error e -> fail "%s does not parse as JSON: %s" path e
  | Ok j -> j

(* ---------- trace.json ---------- *)

let check_trace dir =
  let trace = parse_file (Filename.concat dir "trace.json") in
  let events =
    match J.member "traceEvents" trace with
    | Some (J.List l) -> l
    | _ -> fail "trace.json has no traceEvents array"
  in
  if events = [] then fail "trace.json has no events";
  (* pid -> track label, from the "M" process_name metadata rows *)
  let labels = Hashtbl.create 8 in
  List.iter
    (fun e ->
       if J.str_field e "ph" = "M" then
         match J.member "args" e with
         | Some a -> Hashtbl.replace labels (J.int_field e "pid") (J.str_field a "name")
         | None -> ())
    events;
  let xs = List.filter (fun e -> J.str_field e "ph" = "X") events in
  let pids =
    List.sort_uniq compare (List.map (fun e -> J.int_field e "pid") xs)
  in
  let worker_pids =
    List.filter
      (fun pid -> Hashtbl.find_opt labels pid <> Some "orchestrator")
      pids
  in
  if List.length worker_pids < 2 then
    fail "expected >= 2 distinct worker pid tracks, got %d"
      (List.length worker_pids);
  if not (List.exists (fun pid -> Hashtbl.find_opt labels pid = Some "orchestrator") pids)
  then fail "trace has no orchestrator track";
  (* every pid's events must still be properly nested after the
     micros round-trip (eps absorbs the 1us rounding + min-duration) *)
  List.iter
    (fun pid ->
       let evs =
         List.filter_map
           (fun e ->
              if J.int_field e "pid" <> pid then None
              else
                Some
                  { S.name = J.str_field e "name";
                    ts = float_of_int (J.int_field e "ts") /. 1e6;
                    dur = float_of_int (J.int_field e "dur") /. 1e6;
                    depth =
                      (match J.member "args" e with
                       | Some a -> J.int_field a "depth"
                       | None -> 0);
                    attrs = [] })
           xs
       in
       if not (S.well_nested ~eps:5e-6 evs) then
         fail "trace events for pid %d are not well nested" pid)
    pids;
  pass "trace.json ok: %d span events across %d worker tracks + orchestrator"
    (List.length xs) (List.length worker_pids)

(* ---------- journal: span sums vs measured stage times ---------- *)

let stage_names = [ "stage.record"; "stage.infer"; "stage.gen"; "stage.equiv" ]

let check_span_sums (records : C.Journal.record list) =
  List.iter
    (fun (r : C.Journal.record) ->
       let result =
         match r.result with
         | Some j -> j
         | None -> fail "ok record %s has no result" (C.Job.describe r.spec)
       in
       let spans = C.Journal.obs_spans r in
       if spans = [] then
         fail "record %s carries no spans" (C.Job.describe r.spec);
       if not (List.exists (fun (e : S.event) -> e.name = "engine.run") spans)
       then fail "record %s has no engine.run span" (C.Job.describe r.spec);
       let span_sum =
         List.fold_left
           (fun acc (e : S.event) ->
              if List.mem e.name stage_names then acc +. e.dur else acc)
           0. spans
       in
       let journal_sum =
         J.float_field result "t_record" +. J.float_field result "t_infer"
         +. J.float_field result "t_gen" +. J.float_field result "t_equiv"
       in
       let tol = Float.max (0.05 *. journal_sum) 0.02 in
       if Float.abs (span_sum -. journal_sum) > tol then
         fail "%s: stage spans sum to %.4fs but journal times sum to %.4fs"
           (C.Job.describe r.spec) span_sum journal_sum)
    records;
  pass "stage span durations match journal stage times for %d jobs"
    (List.length records)

(* ---------- metrics: merged workers = report = single process ---------- *)

(* Re-run one job in this process exactly the way a campaign worker does
   (mirrors Orchestrator.default_run_job) and snapshot the registry. *)
let run_spec_in_process (spec : C.Job.spec) =
  match Stores.Registry.find spec.C.Job.store with
  | None -> fail "unknown store %s" spec.C.Job.store
  | Some e ->
    let instance =
      match spec.C.Job.variant with
      | C.Job.Buggy -> e.Stores.Registry.buggy ()
      | C.Job.Fixed -> e.Stores.Registry.fixed ()
    in
    let cfg =
      { W.Engine.default_cfg with
        workload =
          { W.Workload.default with n_ops = spec.C.Job.n_ops;
            seed = spec.C.Job.seed };
        crash =
          { W.Crash_gen.default_cfg with max_images = spec.C.Job.max_images } }
    in
    ignore (W.Engine.run ~cfg instance);
    M.snapshot M.default

let check_metrics dir (records : C.Journal.record list) =
  let snaps = List.filter_map C.Journal.obs_metrics records in
  if List.length snaps < 2 then
    fail "expected >= 2 worker metrics snapshots, got %d" (List.length snaps);
  let merged = M.merge_all snaps in
  if M.counter_value merged "equiv.checks" = 0 then
    fail "merged metrics carry no equiv.checks counter";
  if M.find_hist merged "crash_sim.overlay_lines" = None then
    fail "merged metrics carry no crash_sim.overlay_lines histogram";
  (* (a) report.json embeds the same merged snapshot *)
  let report = parse_file (Filename.concat dir "report.json") in
  (match J.member "metrics" report with
   | None -> fail "report.json has no metrics object"
   | Some m ->
     (match M.of_json m with
      | Error e -> fail "report.json metrics do not decode: %s" e
      | Ok s ->
        if s <> merged then
          fail "report.json metrics differ from merged journal snapshots"));
  (* (b) merge exactness: a single process re-running every job observes
     exactly the merged per-worker totals. Memory gauges (the mem.
     namespace) are GC-sampled and legitimately differ across processes,
     so they are asserted present but excluded from the comparison. *)
  (match List.assoc_opt "mem.peak_heap_words" merged.M.gauges with
   | Some v when v > 0. -> ()
   | _ -> fail "merged metrics carry no mem.peak_heap_words gauge");
  let strip_mem (s : M.snapshot) =
    { s with
      M.gauges =
        List.filter
          (fun (k, _) -> not (String.length k >= 4 && String.sub k 0 4 = "mem."))
          s.M.gauges }
  in
  let single =
    strip_mem
      (M.merge_all
         (List.map (fun (r : C.Journal.record) -> run_spec_in_process r.spec)
            records))
  in
  let merged = strip_mem merged in
  if single <> merged then begin
    prerr_endline "--- merged worker snapshots ---";
    prerr_endline (M.render merged);
    prerr_endline "--- single-process totals ---";
    prerr_endline (M.render single);
    fail "merged worker metrics differ from single-process totals"
  end;
  pass "metrics merge is exact across %d workers (and matches report.json)"
    (List.length snaps)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "obs-smoke-out" in
  let records = C.Journal.load (Filename.concat dir "journal.jsonl") in
  if records = [] then fail "no journal records in %s" dir;
  List.iter
    (fun (r : C.Journal.record) ->
       if r.status <> C.Journal.Job_ok then
         fail "job %s did not finish ok" (C.Job.describe r.spec))
    records;
  check_trace dir;
  check_span_sums records;
  check_metrics dir records;
  pass "all checks passed"
