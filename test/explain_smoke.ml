(* explain-smoke: the forensics pipeline end to end on a tiny campaign.

   - sweep a 2-store matrix with --events and assert the merged stream
     is a deterministic function of the matrix: re-merging (a --resume
     sweep that executes nothing) must reproduce it byte for byte;
   - assert every bug cluster in the merged stream resolves its full
     provenance chain (the dune rule then runs the real `witcher
     explain` on the output directory, which must exit 0);
   - assert the event sink is cheap: an engine run with events enabled
     stays within 5% (plus a small absolute epsilon against timer
     noise) of one with the sink off, min-of-3 each. *)

module W = Witcher
module C = Campaign

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("explain-smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "explain-smoke-out" in
  let merged = Filename.concat out "events.jsonl" in
  let jobs =
    match
      C.Planner.plan
        { C.Planner.default with
          stores = Some [ "level-hash"; "cceh" ];
          seeds = [ 1 ];
          n_ops = 20;
          max_images = 120 }
    with
    | Ok jobs -> jobs
    | Error e -> fail "planner: %s" e
  in
  let cfg resume =
    { C.Orchestrator.default_cfg with
      j = 2; out_dir = out; resume; events = Some merged }
  in
  let s1 = C.Orchestrator.run_matrix (cfg false) ~jobs in
  if s1.executed <> List.length jobs then
    fail "expected %d executed jobs, got %d" (List.length jobs) s1.executed;
  let first = read_file merged in
  if String.length first = 0 then fail "merged event stream is empty";
  (* resume sweep executes nothing but re-merges the shards: the merge
     must be a pure function of the matrix, not of scheduling *)
  let s2 = C.Orchestrator.run_matrix (cfg true) ~jobs in
  if s2.executed <> 0 then fail "resume sweep re-executed %d jobs" s2.executed;
  let second = read_file merged in
  if first <> second then fail "re-merged event stream differs byte-wise";

  (* every bug cluster must resolve its chain, post-hoc from disk *)
  (match C.Explain.load out with
   | Error e -> fail "explain load: %s" e
   | Ok (C.Explain.Journal_only _) -> fail "campaign output lost its event data"
   | Ok (C.Explain.Events runs) ->
     let bugs = C.Explain.bugs runs in
     if bugs = [] then fail "no bug clusters in the smoke matrix";
     List.iter
       (fun b ->
          let f = C.Explain.resolve b in
          let skey = C.Jsonx.str_field b.C.Explain.b_cluster "class" in
          if f.C.Explain.f_verdict = None then fail "bug %s: no verdict" skey;
          if f.C.Explain.f_image = None then fail "bug %s: no image" skey;
          if f.C.Explain.f_cond = None then fail "bug %s: no condition" skey)
       bugs;
     Printf.printf "explain-smoke: %d bug(s), chains resolve, merge deterministic\n"
       (List.length bugs));

  (* overhead guard: min-of-3 with the sink on vs off *)
  let ecfg =
    { W.Engine.default_cfg with
      workload = { W.Workload.default with n_ops = 20; seed = 1 };
      crash = { W.Crash_gen.default_cfg with max_images = 120 } }
  in
  let time_run ~events =
    let best = ref infinity in
    for _ = 1 to 3 do
      if events then Obs.Event.start ();
      let t0 = Unix.gettimeofday () in
      ignore (W.Engine.run ~cfg:ecfg (Stores.Level_hash.buggy ()));
      let dt = Unix.gettimeofday () -. t0 in
      if events then ignore (Obs.Event.stop ());
      if dt < !best then best := dt
    done;
    !best
  in
  ignore (time_run ~events:false);  (* warm caches *)
  let t_plain = time_run ~events:false in
  let t_events = time_run ~events:true in
  if t_events > (t_plain *. 1.05) +. 0.05 then
    fail "event sink overhead too high: %.4fs with events vs %.4fs without"
      t_events t_plain;
  Printf.printf "explain-smoke: overhead ok (%.4fs events vs %.4fs plain)\n"
    t_events t_plain
