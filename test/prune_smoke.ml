(* End-to-end pruning smoke check, run by the `prune-smoke` dune alias
   around a tiny `witcher campaign --prune representative` sweep. Two
   modes:

   - `pre <dir>`: after the initial sweep, assert every journal record
     carries the representative-policy job key and a prune block with
     the class/representative/elision/expansion counters and exported
     class outcomes; then truncate the journal to its first half,
     simulating a sweep killed mid-campaign (possibly mid-expansion —
     expansions happen inside a job, so the cut line is arbitrary
     relative to them).
   - `post <dir>`: after `--resume` re-ran exactly the missing keys,
     assert the journal again covers the full matrix with no duplicate
     keys, every record still passes the prune-block checks, and the
     aggregated report.json sums the prune columns. *)

module C = Campaign
module J = Obs.Jsonx

let fail fmt =
  Printf.ksprintf
    (fun s ->
       prerr_endline ("prune-smoke: FAIL: " ^ s);
       exit 1)
    fmt

let pass fmt = Printf.ksprintf (fun s -> print_endline ("prune-smoke: " ^ s)) fmt

let check_record (r : C.Journal.record) =
  let who = C.Job.describe r.spec in
  if r.status <> C.Journal.Job_ok then fail "job %s did not finish ok" who;
  if r.spec.prune <> Prune.Policy.Representative then
    fail "job %s does not carry the representative policy" who;
  (* the policy is part of the resume key, so a pre-prune (exhaustive)
     journal can never satisfy a representative-mode matrix by accident *)
  if r.key = C.Job.key { r.spec with prune = Prune.Policy.Exhaustive } then
    fail "key of %s does not depend on the prune policy" who;
  if r.key <> C.Job.key r.spec then
    fail "journal key of %s does not round-trip through the spec" who;
  let result =
    match r.result with Some j -> j | None -> fail "record %s has no result" who
  in
  let prune =
    match J.member "prune" result with
    | Some p -> p
    | None -> fail "record %s has no prune block" who
  in
  if J.str_field prune "policy" <> "representative" then
    fail "record %s prune.policy is not representative" who;
  let geti k =
    match Option.bind (J.member k prune) J.to_int_opt with
    | Some n -> n
    | None -> fail "record %s prune block lacks integer %S" who k
  in
  let classes = geti "classes" in
  let reps = geti "reps" in
  let deferred = geti "deferred" in
  let elided = geti "elided" in
  let expansions = geti "expansions" in
  let memo_hits = geti "seed_memo_hits" in
  if classes <= 0 then fail "record %s has no equivalence classes" who;
  if reps <= 0 then fail "record %s validated no representatives" who;
  if elided < 0 || elided > deferred then
    fail "record %s elided %d of %d deferred" who elided deferred;
  if expansions < 0 || memo_hits < 0 then
    fail "record %s has negative expansion/memo counters" who;
  (match J.member "class_outcomes" prune with
   | Some (J.List (_ :: _)) -> ()
   | _ -> fail "record %s exports no class outcomes" who);
  (classes, elided, expansions)

let load dir =
  let records = C.Journal.load (Filename.concat dir "journal.jsonl") in
  if records = [] then fail "no journal records in %s" dir;
  records

let keys_path dir = Filename.concat dir "prune-smoke-keys.txt"

let pre dir =
  let records = load dir in
  let totals = List.map check_record records in
  let classes = List.fold_left (fun a (c, _, _) -> a + c) 0 totals in
  let elided = List.fold_left (fun a (_, e, _) -> a + e) 0 totals in
  let expansions = List.fold_left (fun a (_, _, x) -> a + x) 0 totals in
  pass "%d jobs ok: %d classes, %d images elided, %d expansions recorded"
    (List.length records) classes elided expansions;
  (* remember the full matrix, then cut the journal in half *)
  let keys =
    List.sort compare (List.map (fun (r : C.Journal.record) -> r.key) records)
  in
  let oc = open_out (keys_path dir) in
  List.iter (fun k -> output_string oc (k ^ "\n")) keys;
  close_out oc;
  let journal = Filename.concat dir "journal.jsonl" in
  let ic = open_in journal in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  let keep = (List.length lines + 1) / 2 in
  let oc = open_out journal in
  List.iteri
    (fun i l -> if i < keep then output_string oc (l ^ "\n"))
    lines;
  close_out oc;
  pass "journal truncated to %d/%d records for the resume leg" keep
    (List.length lines)

let post dir =
  let records = load dir in
  List.iter (fun r -> ignore (check_record r)) records;
  let keys =
    List.sort compare (List.map (fun (r : C.Journal.record) -> r.key) records)
  in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    fail "resume re-ran an already-completed job (duplicate journal keys)";
  let ic = open_in (keys_path dir) in
  let expected = ref [] in
  (try
     while true do
       expected := input_line ic :: !expected
     done
   with End_of_file -> ());
  close_in ic;
  let expected = List.rev !expected in
  if keys <> expected then
    fail "resumed journal covers %d keys, initial sweep had %d"
      (List.length keys) (List.length expected);
  (* the aggregated report must carry the summed prune columns *)
  let report = Filename.concat dir "report.json" in
  let ic = open_in_bin report in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match J.of_string s with
   | Error e -> fail "report.json does not parse: %s" e
   | Ok j ->
     (match J.member "rows" j with
      | Some (J.List rows) ->
        let col k =
          List.fold_left (fun a r -> a + J.int_field r k) 0 rows
        in
        if col "prune_classes" <= 0 then
          fail "report.json aggregates zero prune classes";
        if col "images_elided" < 0 || col "prune_expansions" < 0 then
          fail "report.json prune columns are negative"
      | _ -> fail "report.json has no rows"));
  pass "resume completed the matrix: %d jobs, no duplicates, report sums ok"
    (List.length records)

let () =
  match Sys.argv with
  | [| _; "pre"; dir |] -> pre dir
  | [| _; "post"; dir |] -> post dir
  | _ ->
    prerr_endline "usage: prune_smoke (pre|post) <out-dir>";
    exit 2
