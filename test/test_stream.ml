(* Streaming engine: verdict parity with the batch engine, and the
   windowed ring trace's retirement machinery.

   The headline property (DESIGN §9): [Engine.run_stream] is a
   bounded-memory re-plumbing of [Engine.run], not a different analysis —
   over every registry store, random seeds and both pruning policies it
   must produce the identical mismatch count, cluster reports and image
   counts. The streaming config here uses a deliberately tiny window
   (4 segments of 128 events) so a few-thousand-event trace retires
   dozens of segments mid-run, plus a 2-deep checkpoint ring to force
   evictions — parity must survive both. *)

module W = Witcher
module R = Stores.Registry
module T = Nvm.Trace

let stream_cfg base =
  { base with
    W.Engine.stream_seg_shift = 7;
    stream_window = 4;
    ckpt_ring = 2 }

let cfg ~prune ~seed ~n_ops =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops; seed };
    crash = { W.Crash_gen.default_cfg with max_images = 1200 };
    prune }

(* Everything verdict-shaped in a result; timings and memory excluded. *)
let fingerprint (r : W.Engine.result) =
  ( ( r.n_mismatch, r.n_clusters, r.c_o, r.c_a,
      r.images_generated, r.images_tested ),
    List.sort compare r.all_clusters,
    List.sort compare r.site_pairs,
    List.sort compare r.bug_reports )

let check_parity ~prune ~seed ~n_ops (e : R.entry) =
  let c = cfg ~prune ~seed ~n_ops in
  let batch = W.Engine.run ~cfg:c (e.buggy ()) in
  let stream = W.Engine.run_stream ~cfg:(stream_cfg c) (e.buggy ()) in
  if not stream.stream_on then
    Alcotest.failf "%s: run_stream did not mark stream_on" e.name;
  if fingerprint batch <> fingerprint stream then
    Alcotest.failf
      "%s seed=%d n=%d %s: stream/batch divergence \
       (batch: %d mismatch %d clusters %d gen %d tested; \
       stream: %d mismatch %d clusters %d gen %d tested)"
      e.name seed n_ops
      (Prune.Policy.name prune)
      batch.n_mismatch batch.n_clusters batch.images_generated
      batch.images_tested stream.n_mismatch stream.n_clusters
      stream.images_generated stream.images_tested;
  stream

let parity_prop =
  QCheck.Test.make ~count:2 ~name:"stream = batch on every store"
    QCheck.(pair (int_range 1 10_000) (int_range 40 120))
    (fun (seed, n_ops) ->
       List.iter
         (fun (e : R.entry) ->
            List.iter
              (fun prune ->
                 ignore (check_parity ~prune ~seed ~n_ops e))
              [ Prune.Policy.Exhaustive; Prune.Policy.Representative ])
         R.all;
       true)

(* The tiny window must actually slide: with 4 x 128 live events and a
   multi-thousand-event trace, retirement is guaranteed, as are
   checkpoint-ring evictions with stride 32, ring 2 and 100+ ops. *)
let test_stream_counters () =
  let e =
    List.find (fun (e : R.entry) -> e.R.name = "level-hash") R.all
  in
  let r =
    check_parity ~prune:Prune.Policy.Exhaustive ~seed:7 ~n_ops:120 e
  in
  Alcotest.(check bool) "window retired segments" true
    (r.window_retirements > 0);
  Alcotest.(check bool) "checkpoint ring evicted" true
    (r.ckpt_ring_evictions > 0);
  Alcotest.(check bool) "peak live heap sampled" true
    (r.peak_live_words > 0)

let test_sample_policy_parity () =
  let e = List.find (fun (e : R.entry) -> e.R.name = "cceh") R.all in
  ignore
    (check_parity ~prune:(Prune.Policy.Sample 7) ~seed:3 ~n_ops:100 e)

(* Traffic-driven parity: the generator path (zipfian keys, preload,
   bursts) through both engines. *)
let test_traffic_parity () =
  let e = List.find (fun (e : R.entry) -> e.R.name = "fast-fair") R.all in
  let tc =
    match W.Traffic.of_name "mixed" with
    | Some t -> { t with W.Traffic.n_ops = 90; key_space = 64; preload = 24 }
    | None -> Alcotest.fail "mixed traffic preset missing"
  in
  let c =
    { (cfg ~prune:Prune.Policy.Exhaustive ~seed:1 ~n_ops:90) with
      W.Engine.traffic = Some tc }
  in
  let batch = W.Engine.run ~cfg:c (e.buggy ()) in
  let stream = W.Engine.run_stream ~cfg:(stream_cfg c) (e.buggy ()) in
  Alcotest.(check int) "mismatches" batch.n_mismatch stream.n_mismatch;
  Alcotest.(check int) "clusters" batch.n_clusters stream.n_clusters;
  Alcotest.(check int) "images" batch.images_generated
    stream.images_generated

(* ---------- windowed ring trace unit tests ---------- *)

let ring () = T.create ~ring_shift:4 ()  (* 16-event segments *)

let add_n tr n =
  for _ = 1 to n do
    ignore
      (T.add_load tr ~sid:(Nvm.Sid.intern "t:load") ~addr:0 ~len:8
         ~cd:Nvm.Taint.empty ~op:0)
  done

let test_ring_retires () =
  let tr = ring () in
  add_n tr 100;
  let r = T.retire_to tr ~target:(T.length tr - 32) in
  Alcotest.(check bool) "retired some segments" true (r >= 3);
  Alcotest.(check int) "floor advanced" (r * 16) (T.live_floor tr);
  Alcotest.(check int) "length unaffected" 100 (T.length tr);
  Alcotest.(check bool) "old tid not live" false (T.is_live tr 0);
  Alcotest.(check bool) "recent tid live" true (T.is_live tr 99);
  (match T.addr_at tr 0 with
   | _ -> Alcotest.fail "retired access must raise"
   | exception T.Retired _ -> ());
  (* slot reuse: capacity stays bounded by the live window *)
  add_n tr 200;
  ignore (T.retire_to tr ~target:(T.length tr - 32));
  Alcotest.(check bool) "slot capacity bounded"
    true
    (T.slot_capacity tr < T.length tr)

let test_ring_pin_blocks_retirement () =
  let tr = ring () in
  add_n tr 100;
  T.pin tr 3;  (* pins segment 0 *)
  let r = T.retire_to tr ~target:(T.length tr - 16) in
  Alcotest.(check int) "pinned head segment blocks retirement" 0 r;
  Alcotest.(check int) "floor unmoved" 0 (T.live_floor tr);
  T.unpin tr 3;
  let r = T.retire_to tr ~target:(T.length tr - 16) in
  Alcotest.(check bool) "unpinned: retirement proceeds" true (r > 0)

(* A condition spanning the window boundary: a *newer* event whose taint
   references an event in the oldest segment must keep that segment (and
   therefore everything after it) resident. *)
let test_ring_taint_spans_window () =
  let tr = ring () in
  let first =
    T.add_load tr ~sid:(Nvm.Sid.intern "t:load") ~addr:0 ~len:8
      ~cd:Nvm.Taint.empty ~op:0
  in
  add_n tr 60;
  (* a store whose data dependency reaches back to tid 0 *)
  ignore
    (T.add_store_u64 tr ~sid:(Nvm.Sid.intern "t:store") ~addr:64 ~v:1
       ~dd:(Nvm.Taint.singleton first) ~cd:Nvm.Taint.empty ~op:1);
  add_n tr 40;
  let r = T.retire_to tr ~target:(T.length tr - 16) in
  Alcotest.(check int) "taint-referenced segment is pinned" 0 r;
  Alcotest.(check int) "tid 0 still readable" 0 (T.addr_at tr first)

let suite =
  [ Alcotest.test_case "ring retires and recycles" `Quick test_ring_retires;
    Alcotest.test_case "pin blocks retirement" `Quick
      test_ring_pin_blocks_retirement;
    Alcotest.test_case "spanning taint pins segment" `Quick
      test_ring_taint_spans_window;
    Alcotest.test_case "streaming counters move" `Slow test_stream_counters;
    Alcotest.test_case "sample-policy parity" `Slow test_sample_policy_parity;
    Alcotest.test_case "traffic generator parity" `Slow test_traffic_parity;
    QCheck_alcotest.to_alcotest parity_prop ]
