(* Campaign subsystem tests: planner matrix shape and key stability,
   fault isolation (a failing or livelocking job must not abort its
   siblings), resume semantics, journal round-trips, and aggregate
   totals against independent Engine runs. *)

module W = Witcher
module C = Campaign

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let tmp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "witcher-campaign-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  C.Orchestrator.mkdir_p d;
  d

let orch_cfg ?(j = 2) ?(timeout = 120.) ?(resume = false) out_dir =
  { C.Orchestrator.default_cfg with j; timeout; out_dir; resume }

let spec ?(variant = C.Job.Buggy) ?(seed = 1) ?(n_ops = 40)
    ?(max_images = 200) ?(prune = Prune.Policy.Exhaustive)
    ?(expand_budget = C.Job.default_expand_budget) store =
  { C.Job.store; variant; seed; n_ops; max_images; prune; expand_budget }

(* ---------- planner ---------- *)

let test_planner_matrix () =
  let cfg =
    { C.Planner.default with
      stores = Some [ "level-hash"; "wort" ];
      seeds = [ 1; 2; 3 ];
      fixed_too = true;
      n_ops = 50 }
  in
  match C.Planner.plan cfg with
  | Error e -> Alcotest.fail e
  | Ok jobs ->
    Alcotest.(check int) "2 stores x 2 variants x 3 seeds" 12
      (List.length jobs);
    (* store-major, then variant, then seed *)
    let first = List.hd jobs in
    Alcotest.(check string) "first store" "level-hash" first.C.Job.store;
    Alcotest.(check int) "first seed" 1 first.C.Job.seed;
    let names = List.map (fun (j : C.Job.spec) -> j.store) jobs in
    Alcotest.(check bool) "level-hash jobs before wort jobs" true
      (List.filteri (fun i _ -> i < 6) names
       |> List.for_all (String.equal "level-hash"));
    (* every (store, variant, seed) cell distinct *)
    let keys = List.map C.Job.key jobs in
    Alcotest.(check int) "keys all distinct" 12
      (List.length (List.sort_uniq compare keys))

let test_planner_rejects_unknown () =
  match
    C.Planner.plan { C.Planner.default with stores = Some [ "nope" ] }
  with
  | Ok _ -> Alcotest.fail "planned an unknown store"
  | Error msg ->
    Alcotest.(check bool) "names the store" true (contains msg "nope")

let test_planner_default_is_whole_registry () =
  match C.Planner.plan C.Planner.default with
  | Error e -> Alcotest.fail e
  | Ok jobs ->
    Alcotest.(check int) "one job per registry entry"
      (List.length Stores.Registry.all)
      (List.length jobs)

let test_keys_deterministic () =
  let s = spec "level-hash" in
  Alcotest.(check string) "same spec, same key" (C.Job.key s) (C.Job.key s);
  Alcotest.(check bool) "seed changes key" true
    (C.Job.key s <> C.Job.key { s with seed = 2 });
  Alcotest.(check bool) "variant changes key" true
    (C.Job.key s <> C.Job.key { s with variant = C.Job.Fixed });
  Alcotest.(check bool) "n_ops changes key" true
    (C.Job.key s <> C.Job.key { s with n_ops = 41 })

(* ---------- journal round-trips ---------- *)

let test_journal_roundtrip () =
  let r =
    C.Journal.record ~spec:(spec "level-hash") ~t_wall:1.5
      (C.Pool.Ok (C.Jsonx.Obj [ ("c_o", C.Jsonx.Int 3) ]))
  in
  let j = C.Journal.record_to_json r in
  (match C.Jsonx.of_string (C.Jsonx.to_string j) with
   | Error e -> Alcotest.fail e
   | Ok parsed ->
     (match C.Journal.record_of_json parsed with
      | Error e -> Alcotest.fail e
      | Ok r' ->
        Alcotest.(check string) "key survives" r.key r'.C.Journal.key;
        Alcotest.(check bool) "status ok" true
          (r'.C.Journal.status = C.Journal.Job_ok);
        Alcotest.(check int) "payload survives" 3
          (match r'.C.Journal.result with
           | Some p -> C.Jsonx.int_field p "c_o"
           | None -> -1)));
  let rf =
    C.Journal.record ~spec:(spec "wort") ~t_wall:0.1
      (C.Pool.Failed "boom")
  in
  match
    C.Journal.record_of_json
      (Result.get_ok
         (C.Jsonx.of_string (C.Jsonx.to_string (C.Journal.record_to_json rf))))
  with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check bool) "failure message survives" true
      (r'.C.Journal.status = C.Journal.Job_failed "boom")

let test_journal_skips_garbage () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let good =
    C.Jsonx.to_string
      (C.Journal.record_to_json
         (C.Journal.record ~spec:(spec "wort") ~t_wall:0.2
            (C.Pool.Ok (C.Jsonx.Obj []))))
  in
  let oc = open_out path in
  output_string oc "this is not json\n";
  output_string oc (good ^ "\n");
  output_string oc "{\"key\": \"truncated";  (* half-written final line *)
  close_out oc;
  Alcotest.(check int) "only the valid line loads" 1
    (List.length (C.Journal.load path))

(* Journals written before the t_gen/t_equiv split carry a fused
   [t_check] and none of the replay/materialization counters. They must
   still parse, aggregate (new counters default to 0), and count as
   completed for --resume. *)
let test_presplit_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "level-hash" in
  let line =
    C.Jsonx.to_string
      (C.Jsonx.Obj
         [ ("key", C.Jsonx.Str (C.Job.key s));
           ("job", C.Job.to_json s);
           ("status", C.Jsonx.Str "ok");
           ("t_wall", C.Jsonx.Float 2.5);
           ("result",
            C.Jsonx.Obj
              [ ("store", C.Jsonx.Str "level-hash");
                ("c_o", C.Jsonx.Int 2);
                ("c_a", C.Jsonx.Int 1);
                ("images_tested", C.Jsonx.Int 99);
                ("n_mismatch", C.Jsonx.Int 7);
                ("t_check", C.Jsonx.Float 1.25) ]) ])
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-split line parses" 1 (List.length records);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "bug counts aggregate" 2 agg.total.c_o;
  Alcotest.(check int) "images aggregate" 99 agg.total.images_tested;
  Alcotest.(check int) "mismatches aggregate" 7 agg.total.n_mismatch;
  Alcotest.(check int) "replay_ops defaults to 0" 0 agg.total.replay_ops;
  Alcotest.(check int) "bytes_materialized defaults to 0" 0
    agg.total.bytes_materialized;
  Alcotest.(check bool) "t_equiv defaults to 0" true (agg.total.t_equiv = 0.);
  Alcotest.(check bool) "report renders" true
    (String.length (C.Aggregate.to_text agg) > 0);
  let done_ = C.Journal.completed_keys records in
  Alcotest.(check bool) "old key counts as completed for --resume" true
    (Hashtbl.mem done_ (C.Job.key s))

(* Journals written before the oracle-memoization work carry none of the
   oracle_runs / oracle_ops_saved / memo_hits / ckpt_bytes counters.
   They must still parse, aggregate (the counters default to 0), render,
   and count as completed for --resume. *)
let test_preoracle_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "cceh" in
  let line =
    C.Jsonx.to_string
      (C.Jsonx.Obj
         [ ("key", C.Jsonx.Str (C.Job.key s));
           ("job", C.Job.to_json s);
           ("status", C.Jsonx.Str "ok");
           ("t_wall", C.Jsonx.Float 3.0);
           ("result",
            C.Jsonx.Obj
              [ ("store", C.Jsonx.Str "cceh");
                ("c_o", C.Jsonx.Int 1);
                ("c_a", C.Jsonx.Int 0);
                ("images_tested", C.Jsonx.Int 250);
                ("n_mismatch", C.Jsonx.Int 4);
                ("replay_ops", C.Jsonx.Int 1234);
                ("bytes_materialized", C.Jsonx.Int 4096);
                ("t_gen", C.Jsonx.Float 0.5);
                ("t_equiv", C.Jsonx.Float 1.0) ]) ])
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-oracle line parses" 1 (List.length records);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "old counters aggregate" 1234 agg.total.replay_ops;
  Alcotest.(check int) "oracle_runs defaults to 0" 0 agg.total.oracle_runs;
  Alcotest.(check int) "oracle_ops_saved defaults to 0" 0
    agg.total.oracle_ops_saved;
  Alcotest.(check int) "memo_hits defaults to 0" 0 agg.total.memo_hits;
  Alcotest.(check int) "ckpt_bytes defaults to 0" 0 agg.total.ckpt_bytes;
  Alcotest.(check bool) "report renders" true
    (String.length (C.Aggregate.to_text agg) > 0);
  let done_ = C.Journal.completed_keys records in
  Alcotest.(check bool) "old key counts as completed for --resume" true
    (Hashtbl.mem done_ (C.Job.key s))

(* Journals written before the pruning layer carry no prune fields in
   either the job spec or the result payload. They must parse as
   exhaustive jobs under the unchanged v1 key (so --resume skips them),
   aggregate with every prune column defaulting to 0, and contribute
   nothing to the cross-seed class memo. *)
let test_preprune_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "level-hash" in
  (* hand-written line, independent of today's encoders; the key is the
     real v1 key so the resume check is meaningful *)
  let line =
    {|{"key":"|} ^ C.Job.key s
    ^ {|","job":{"store":"level-hash","variant":"buggy","seed":1,"n_ops":40,"max_images":200},"status":"ok","t_wall":1.5,"result":{"store":"level-hash","c_o":3,"c_a":2,"images_tested":120,"n_mismatch":9,"t_gen":0.4,"t_equiv":0.6}}|}
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-prune line parses" 1 (List.length records);
  let r = List.hd records in
  Alcotest.(check bool) "absent prune fields mean exhaustive" true
    (r.spec.C.Job.prune = Prune.Policy.Exhaustive);
  Alcotest.(check int) "expand budget defaults" C.Job.default_expand_budget
    r.spec.C.Job.expand_budget;
  Alcotest.(check bool) "old key matches today's exhaustive key" true
    (r.key = C.Job.key r.spec);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "bug counts aggregate" 3 agg.total.c_o;
  Alcotest.(check int) "prune_classes defaults to 0" 0 agg.total.prune_classes;
  Alcotest.(check int) "prune_reps defaults to 0" 0 agg.total.prune_reps;
  Alcotest.(check int) "images_elided defaults to 0" 0 agg.total.images_elided;
  Alcotest.(check int) "expansions default to 0" 0 agg.total.prune_expansions;
  Alcotest.(check int) "seed_memo_hits default to 0" 0 agg.total.seed_memo_hits;
  Alcotest.(check bool) "report renders" true
    (String.length (C.Aggregate.to_text agg) > 0);
  let done_ = C.Journal.completed_keys records in
  Alcotest.(check bool) "old key counts as completed for --resume" true
    (Hashtbl.mem done_ (C.Job.key s));
  Alcotest.(check int) "no class outcomes harvested" 0
    (C.Seed_memo.n_classes (C.Seed_memo.of_records records))

(* Journals written before fence-batched checking carry no "batch"
   member in the result payload. They must still parse, aggregate with
   every batch column defaulting to 0, render, and count as completed
   for --resume. *)
let test_prebatch_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "fast-fair" in
  (* hand-written line, independent of today's encoders *)
  let line =
    {|{"key":"|} ^ C.Job.key s
    ^ {|","job":{"store":"fast-fair","variant":"buggy","seed":1,"n_ops":40,"max_images":200},"status":"ok","t_wall":2.0,"result":{"store":"fast-fair","c_o":2,"c_a":0,"images_tested":150,"n_mismatch":11,"replay_ops":900,"t_gen":0.3,"t_equiv":0.7}}|}
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-batch line parses" 1 (List.length records);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "bug counts aggregate" 2 agg.total.c_o;
  Alcotest.(check int) "replay_ops aggregate" 900 agg.total.replay_ops;
  Alcotest.(check int) "batch_fences defaults to 0" 0 agg.total.batch_fences;
  Alcotest.(check int) "inherit_hits defaults to 0" 0 agg.total.inherit_hits;
  Alcotest.(check int) "batch_saved defaults to 0" 0 agg.total.batch_saved;
  Alcotest.(check bool) "report renders" true
    (String.length (C.Aggregate.to_text agg) > 0);
  let done_ = C.Journal.completed_keys records in
  Alcotest.(check bool) "old key counts as completed for --resume" true
    (Hashtbl.mem done_ (C.Job.key s))

(* Journals written before the streaming engine carry no "stream" member
   in the result payload. They must still parse, aggregate with every
   streaming column defaulting to 0 (and no streaming summary line in
   the report), and count as completed for --resume. *)
let test_prestream_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "cceh" in
  (* hand-written line, independent of today's encoders *)
  let line =
    {|{"key":"|} ^ C.Job.key s
    ^ {|","job":{"store":"cceh","variant":"buggy","seed":1,"n_ops":40,"max_images":200},"status":"ok","t_wall":1.1,"result":{"store":"cceh","c_o":4,"c_a":1,"images_tested":90,"n_mismatch":7,"t_gen":0.2,"t_equiv":0.5}}|}
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-stream line parses" 1 (List.length records);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "bug counts aggregate" 4 agg.total.c_o;
  Alcotest.(check int) "stream_jobs defaults to 0" 0 agg.total.stream_jobs;
  Alcotest.(check int) "window_retirements defaults to 0" 0
    agg.total.window_retirements;
  Alcotest.(check int) "ckpt_ring_evictions defaults to 0" 0
    agg.total.ckpt_ring_evictions;
  Alcotest.(check int) "peak_live_words defaults to 0" 0
    agg.total.peak_live_words;
  let txt = C.Aggregate.to_text agg in
  Alcotest.(check bool) "report renders" true (String.length txt > 0);
  Alcotest.(check bool) "no streaming summary for batch-only journals"
    false (contains txt "streaming:");
  let done_ = C.Journal.completed_keys records in
  Alcotest.(check bool) "old key counts as completed for --resume" true
    (Hashtbl.mem done_ (C.Job.key s))

(* Journals written before the forensics event log (no --events, no
   events.jsonl next to them) must still parse, aggregate, and explain:
   `witcher explain` degrades to the journal's bug reports plus an
   explicit "no event data" note rather than failing. *)
let test_preevent_journal_compat () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "journal.jsonl" in
  let s = spec "level-hash" in
  let line =
    {|{"key":"|} ^ C.Job.key s
    ^ {|","job":{"store":"level-hash","variant":"buggy","seed":1,"n_ops":40,"max_images":200},"status":"ok","t_wall":1.5,"result":{"store":"level-hash","c_o":1,"c_a":0,"images_tested":120,"n_mismatch":9,"t_gen":0.4,"t_equiv":0.6,"bug_reports":[{"kind":"C-O","rule":"PO3","op":"insert","watch_sid":"lh:insert.token","req_sid":"lh:insert.key","count":4}]}}|}
  in
  let oc = open_out path in
  output_string oc (line ^ "\n");
  close_out oc;
  (* still a valid journal for aggregate/resume *)
  let records = C.Journal.load path in
  Alcotest.(check int) "pre-event line parses" 1 (List.length records);
  let agg = C.Aggregate.of_records records in
  Alcotest.(check int) "bug counts aggregate" 1 agg.total.c_o;
  (* explain the bare journal file and the directory holding it: both
     resolve to the degraded journal-only source *)
  List.iter
    (fun input ->
       match C.Explain.load input with
       | Error e -> Alcotest.fail ("explain rejected pre-event input: " ^ e)
       | Ok source ->
         (match source with
          | C.Explain.Journal_only _ -> ()
          | C.Explain.Events _ ->
            Alcotest.fail "journal misread as an event stream");
         let txt = C.Explain.render_text source in
         Alcotest.(check bool) "degradation note present" true
           (contains txt "no event data");
         Alcotest.(check bool) "bug report line present" true
           (contains txt "lh:insert.token"))
    [ path; dir ]

(* ---------- fault isolation (fake stores, custom run_job) ---------- *)

let status_of records store =
  match
    List.find_opt
      (fun (r : C.Journal.record) -> r.spec.C.Job.store = store)
      records
  with
  | Some r -> r.status
  | None -> Alcotest.fail ("no journal record for " ^ store)

let test_failing_job_isolated () =
  let dir = tmp_dir () in
  let jobs = [ spec "alpha"; spec "bad"; spec "gamma" ] in
  let run_job (s : C.Job.spec) =
    if s.store = "bad" then failwith "deliberate fake-store crash";
    C.Jsonx.Obj [ ("c_o", C.Jsonx.Int 1) ]
  in
  let s = C.Orchestrator.run_matrix ~run_job (orch_cfg dir) ~jobs in
  Alcotest.(check int) "all three jobs ran" 3 s.executed;
  Alcotest.(check bool) "bad job failed" true
    (match status_of s.records "bad" with
     | C.Journal.Job_failed msg -> contains msg "deliberate"
     | _ -> false);
  List.iter
    (fun st ->
       Alcotest.(check bool) (st ^ " sibling unaffected") true
         (status_of s.records st = C.Journal.Job_ok))
    [ "alpha"; "gamma" ];
  Alcotest.(check int) "aggregate sees 1 failure" 1 s.aggregate.total.failed;
  Alcotest.(check int) "aggregate sees 2 ok" 2 s.aggregate.total.ok

let test_livelocked_job_killed () =
  let dir = tmp_dir () in
  let jobs = [ spec "alpha"; spec "hang"; spec "gamma" ] in
  let run_job (s : C.Job.spec) =
    if s.store = "hang" then
      (* livelock: the pool must SIGKILL this worker at the deadline *)
      while true do
        ignore (Unix.select [] [] [] 0.1)
      done;
    C.Jsonx.Obj []
  in
  let s =
    C.Orchestrator.run_matrix ~run_job (orch_cfg ~timeout:0.5 dir) ~jobs
  in
  Alcotest.(check bool) "hang timed out" true
    (status_of s.records "hang" = C.Journal.Job_timeout);
  Alcotest.(check int) "siblings completed" 2 s.aggregate.total.ok;
  Alcotest.(check int) "aggregate sees the timeout" 1
    s.aggregate.total.timeout

(* ---------- resume ---------- *)

let test_resume_skips_journaled () =
  let dir = tmp_dir () in
  let jobs = [ spec "a"; spec "b"; spec "c"; spec "d" ] in
  let run_job (_ : C.Job.spec) = C.Jsonx.Obj [] in
  let s1 = C.Orchestrator.run_matrix ~run_job (orch_cfg dir) ~jobs in
  Alcotest.(check int) "first sweep runs everything" 4 s1.executed;
  let s2 =
    C.Orchestrator.run_matrix ~run_job (orch_cfg ~resume:true dir) ~jobs
  in
  Alcotest.(check int) "resume executes nothing" 0 s2.executed;
  Alcotest.(check int) "resume skips everything" 4 s2.skipped;
  Alcotest.(check int) "aggregate still covers the matrix" 4
    s2.aggregate.total.jobs;
  (* growing the matrix re-runs only the new cell *)
  let s3 =
    C.Orchestrator.run_matrix ~run_job (orch_cfg ~resume:true dir)
      ~jobs:(jobs @ [ spec "e" ])
  in
  Alcotest.(check int) "only the new job runs" 1 s3.executed;
  Alcotest.(check int) "old jobs skipped" 4 s3.skipped

let test_resume_retries_timeouts () =
  let dir = tmp_dir () in
  let jobs = [ spec "flaky" ] in
  let hang = ref true in
  let run_job (_ : C.Job.spec) =
    if !hang then
      while true do
        ignore (Unix.select [] [] [] 0.1)
      done;
    C.Jsonx.Obj []
  in
  let s1 =
    C.Orchestrator.run_matrix ~run_job (orch_cfg ~timeout:0.5 dir) ~jobs
  in
  Alcotest.(check int) "timed out" 1 s1.aggregate.total.timeout;
  hang := false;
  let s2 =
    C.Orchestrator.run_matrix ~run_job
      (orch_cfg ~timeout:30. ~resume:true dir)
      ~jobs
  in
  Alcotest.(check int) "timeout retried on resume" 1 s2.executed;
  Alcotest.(check int) "retry succeeded and replaced the verdict" 1
    s2.aggregate.total.ok

(* ---------- real engine: parallel totals = sequential truth ---------- *)

let engine_cfg (s : C.Job.spec) =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops = s.n_ops; seed = s.seed };
    crash = { W.Crash_gen.default_cfg with max_images = s.max_images } }

let test_mini_campaign_totals () =
  let dir = tmp_dir () in
  let stores = [ "level-hash"; "wort"; "cceh" ] in
  let jobs = List.map (fun st -> spec st) stores in
  let s = C.Orchestrator.run_matrix (orch_cfg ~j:3 dir) ~jobs in
  Alcotest.(check int) "all ok" 3 s.aggregate.total.ok;
  (* the forked workers must report exactly what in-process runs report *)
  let expect =
    List.map
      (fun st ->
         let e = Option.get (Stores.Registry.find st) in
         W.Engine.run ~cfg:(engine_cfg (spec st)) (e.buggy ()))
      stores
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 expect in
  Alcotest.(check int) "C-O total" (sum (fun r -> r.W.Engine.c_o))
    s.aggregate.total.c_o;
  Alcotest.(check int) "C-A total" (sum (fun r -> r.W.Engine.c_a))
    s.aggregate.total.c_a;
  Alcotest.(check int) "images tested total"
    (sum (fun r -> r.W.Engine.images_tested))
    s.aggregate.total.images_tested;
  Alcotest.(check int) "mismatch total"
    (sum (fun r -> r.W.Engine.n_mismatch))
    s.aggregate.total.n_mismatch;
  (* reports got written *)
  Alcotest.(check bool) "report.txt exists" true
    (Sys.file_exists s.report_txt_path);
  Alcotest.(check bool) "report.json parses" true
    (match
       C.Jsonx.of_string
         (In_channel.with_open_text s.report_json_path In_channel.input_all)
     with
     | Ok _ -> true
     | Error _ -> false)

(* ---------- jsonx ---------- *)

let test_jsonx_roundtrip () =
  let v =
    C.Jsonx.Obj
      [ ("a", C.Jsonx.Int (-3));
        ("b", C.Jsonx.Str "quote\" backslash\\ newline\n tab\t");
        ("c", C.Jsonx.List [ C.Jsonx.Bool true; C.Jsonx.Null;
                             C.Jsonx.Float 1.25 ]);
        ("d", C.Jsonx.Obj [ ("nested", C.Jsonx.Str "ok") ]) ]
  in
  match C.Jsonx.of_string (C.Jsonx.to_string v) with
  | Error e -> Alcotest.fail e
  | Ok v' ->
    Alcotest.(check string) "roundtrip" (C.Jsonx.to_string v)
      (C.Jsonx.to_string v');
    Alcotest.(check int) "accessor" (-3) (C.Jsonx.int_field v' "a")

let test_jsonx_rejects_garbage () =
  List.iter
    (fun s ->
       match C.Jsonx.of_string s with
       | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
       | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "nul"; "1 2" ]

let suite =
  [ Alcotest.test_case "planner matrix shape" `Quick test_planner_matrix;
    Alcotest.test_case "planner rejects unknown stores" `Quick
      test_planner_rejects_unknown;
    Alcotest.test_case "planner defaults to whole registry" `Quick
      test_planner_default_is_whole_registry;
    Alcotest.test_case "job keys deterministic" `Quick test_keys_deterministic;
    Alcotest.test_case "journal record roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal tolerates torn lines" `Quick
      test_journal_skips_garbage;
    Alcotest.test_case "pre-split journal still aggregates" `Quick
      test_presplit_journal_compat;
    Alcotest.test_case "pre-oracle journal still aggregates" `Quick
      test_preoracle_journal_compat;
    Alcotest.test_case "pre-prune journal still aggregates" `Quick
      test_preprune_journal_compat;
    Alcotest.test_case "pre-batch journal still aggregates" `Quick
      test_prebatch_journal_compat;
    Alcotest.test_case "pre-stream journal still aggregates" `Quick
      test_prestream_journal_compat;
    Alcotest.test_case "pre-event journal still explains" `Quick
      test_preevent_journal_compat;
    Alcotest.test_case "failing job isolated from siblings" `Quick
      test_failing_job_isolated;
    Alcotest.test_case "livelocked job killed at deadline" `Quick
      test_livelocked_job_killed;
    Alcotest.test_case "resume skips journaled jobs" `Quick
      test_resume_skips_journaled;
    Alcotest.test_case "resume retries timeouts" `Quick
      test_resume_retries_timeouts;
    Alcotest.test_case "mini-campaign totals = independent runs" `Slow
      test_mini_campaign_totals;
    Alcotest.test_case "jsonx roundtrip" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx rejects garbage" `Quick test_jsonx_rejects_garbage ]
