(* Forensics tests (ISSUE 8): the event log and `witcher explain`.

   - Golden file: the explain text for the seeded level-hash bug is
     byte-stable — events carry no timestamps, so the whole log is a
     pure function of (store, seed, config).
   - qcheck property: every verdict event's provenance chain (verdict ->
     image -> condition, cluster -> verdict) resolves, across registry
     stores at random seeds and both exhaustive and representative
     pruning.
   - Acceptance: on level-hash / fast-fair / cceh at the default 200-op
     config, explain reconstructs a full chain for every reported bug
     purely from the on-disk event file — no re-execution. *)

module W = Witcher
module C = Campaign
module R = Stores.Registry

let tmp_file () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "witcher-explain-%d-%d.jsonl" (Unix.getpid ())
       (Random.bits ()))

let engine_cfg ?(n_ops = 60) ?(seed = 42) ?(max_images = 400)
    ?(prune = Prune.Policy.Exhaustive) () =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops; seed };
    crash = { W.Crash_gen.default_cfg with max_images };
    prune }

(* Run the pipeline with the event sink on; return (result, items). *)
let run_with_events ?path cfg instance =
  Obs.Event.start ?path ();
  let r = W.Engine.run ~cfg instance in
  let items = Obs.Event.stop () in
  (r, items)

(* ---------- golden explain text ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_explain () =
  let path = tmp_file () in
  let _, _ =
    run_with_events ~path (engine_cfg ()) (Stores.Level_hash.buggy ())
  in
  let source =
    match C.Explain.load path with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let got = C.Explain.render_text source in
  Sys.remove path;
  (* cwd is test/ under `dune runtest`, the workspace root under a bare
     `dune exec` — same dodge as the frontend golden test *)
  let golden =
    if Sys.file_exists "golden_explain_level_hash.txt" then
      "golden_explain_level_hash.txt"
    else "test/golden_explain_level_hash.txt"
  in
  let expect = read_file golden in
  if got <> expect then begin
    (* dump the mismatch so a legitimate change can refresh the golden *)
    let oc = open_out (golden ^ ".new") in
    output_string oc got;
    close_out oc;
    Alcotest.fail
      "explain text diverged from golden_explain_level_hash.txt (new \
       output written next to it as .new; promote it if the change is \
       intended)"
  end

(* ---------- provenance chains resolve (qcheck) ---------- *)

let prop_chains_resolve =
  QCheck2.Test.make
    ~name:"event provenance chains resolve, all stores (seeds)" ~count:3
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       List.for_all
         (fun (e : R.entry) ->
            (* alternate pruning policy by seed parity so both the
               exhaustive and the representative/expansion provenance
               paths are exercised *)
            let prune =
              if seed mod 2 = 0 then Prune.Policy.Exhaustive
              else Prune.Policy.Representative
            in
            let _, items =
              run_with_events
                (engine_cfg ~n_ops:40 ~seed ~max_images:200 ~prune ())
                (e.buggy ())
            in
            match C.Explain.check_chains items with
            | Ok _ -> true
            | Error msg ->
              QCheck2.Test.fail_reportf "store %s seed %d: %s" e.name seed
                msg)
         R.all)

(* ---------- full-chain acceptance, default config ---------- *)

let test_acceptance_default_config () =
  List.iter
    (fun store ->
       let e =
         match R.find store with
         | Some e -> e
         | None -> Alcotest.fail ("unknown store " ^ store)
       in
       let path = tmp_file () in
       let r, _ =
         run_with_events ~path
           { W.Engine.default_cfg with
             crash = { W.Crash_gen.default_cfg with max_images = 4000 } }
           (e.buggy ())
       in
       (* post-hoc only: everything below comes from the on-disk file *)
       let source =
         match C.Explain.load path with
         | Ok s -> s
         | Error err -> Alcotest.fail err
       in
       Sys.remove path;
       let runs =
         match source with
         | C.Explain.Events runs -> runs
         | C.Explain.Journal_only _ -> Alcotest.fail "expected event data"
       in
       let bugs = C.Explain.bugs runs in
       Alcotest.(check int)
         (store ^ ": one bug per reported cluster")
         (List.length r.all_clusters) (List.length bugs);
       Alcotest.(check bool)
         (store ^ ": bugs reported")
         true
         (bugs <> []);
       List.iter
         (fun b ->
            let f = C.Explain.resolve b in
            let present what o =
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s: %s resolved" store
                   (C.Jsonx.str_field b.C.Explain.b_cluster "class")
                   what)
                true (o <> None)
            in
            present "verdict" f.C.Explain.f_verdict;
            present "image" f.C.Explain.f_image;
            present "cond" f.C.Explain.f_cond;
            present "slice" f.C.Explain.f_slice)
         bugs;
       (* and the renderer accepts every per-bug selection *)
       List.iteri
         (fun i _ ->
            let txt = C.Explain.render_text ~bug:(i + 1) source in
            Alcotest.(check bool)
              (Printf.sprintf "%s: bug %d renders" store (i + 1))
              true
              (String.length txt > 0))
         bugs)
    [ "level-hash"; "fast-fair"; "cceh" ]

(* ---------- metrics exemplar links into the event stream ---------- *)

let test_exemplar_links_to_image () =
  let path = tmp_file () in
  let _, items =
    run_with_events ~path (engine_cfg ()) (Stores.Level_hash.buggy ())
  in
  Sys.remove path;
  let m = Obs.Metrics.snapshot Obs.Metrics.default in
  let h =
    match List.assoc_opt "equiv.replay_len" m.hists with
    | Some h -> h
    | None -> Alcotest.fail "no equiv.replay_len histogram"
  in
  match h.exemplar with
  | None -> Alcotest.fail "replay_len histogram has no exemplar"
  | Some (v, ev) ->
    Alcotest.(check int) "exemplar value is the histogram max" h.max v;
    (* the exemplar's event id must be a tested image in the stream *)
    let img =
      List.find_opt
        (fun j ->
           C.Jsonx.int_field ~default:(-1) j "i" = ev
           && C.Jsonx.str_field j "e" = "image")
        items
    in
    (match img with
     | Some j ->
       Alcotest.(check string) "exemplar image was materialized" "test"
         (C.Jsonx.str_field j "action")
     | None -> Alcotest.fail "exemplar event id is not an image event")

let suite =
  [ Alcotest.test_case "explain golden text (level-hash)" `Quick
      test_golden_explain;
    QCheck_alcotest.to_alcotest prop_chains_resolve;
    Alcotest.test_case "explain acceptance, default 200-op config" `Slow
      test_acceptance_default_config;
    Alcotest.test_case "histogram exemplar links to its image" `Quick
      test_exemplar_links_to_image ]
