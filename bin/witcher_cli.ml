(* The witcher command-line tool: run the crash-consistency pipeline on
   any registered store, sweep the whole registry as a parallel campaign,
   inspect traces, or list the registry.

     witcher list [--json]
     witcher run -s level-hash [--fixed] [-n 300] [--seed 7] [-v] [--json]
                 [--trace-out t.json] [--no-lazy-oracle] [--no-memo]
                 [--ckpt-stride N] [--events ev.jsonl]
                 [--stream] [--traffic ycsb-a] [--window N] [--ckpt-ring R]
     witcher campaign -j 4 [--stores a,b] [--seeds 1,2,3] [--fixed-too]
                      [--out dir] [--resume] [--heartbeat SECS]
                      [--trace-out t.json] [--events ev.jsonl]
     witcher explain out-dir-or-events-file [--bug K] [--json]
     witcher trace -s cceh -n 20 [--head 80]
     witcher perf -s memcached -n 200

   `--trace-out` writes a Chrome trace_event file (open in Perfetto or
   chrome://tracing): per-stage spans for a single run, one track per
   worker pid plus an orchestrator overview track for a campaign. *)

module W = Witcher
module R = Stores.Registry
module C = Campaign

let store_arg =
  let open Cmdliner in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "store" ] ~docv:"NAME"
        ~doc:"Store to test (see $(b,witcher list)).")

let ops_arg =
  let open Cmdliner in
  Arg.(value & opt int 200 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations in the test case.")

let seed_arg =
  let open Cmdliner in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let fixed_arg =
  let open Cmdliner in
  Arg.(value & flag & info [ "fixed" ] ~doc:"Test the repaired variant instead of the as-published one.")

let verbose_arg =
  let open Cmdliner in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every failing cluster, not just root causes.")

let max_images_arg =
  let open Cmdliner in
  Arg.(value & opt int 4000 & info [ "max-images" ] ~docv:"N" ~doc:"Crash-image test budget.")

let json_arg =
  let open Cmdliner in
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let trace_out_arg =
  let open Cmdliner in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON file (load it in Perfetto \
                 or chrome://tracing).")

let events_arg =
  let open Cmdliner in
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Record the structured forensics event log to $(docv) \
                 (JSONL); feed it to $(b,witcher explain) for post-hoc bug \
                 forensics.")

(* A/B switches for the oracle/replay optimizations (DESIGN §5). Exposed
   on `run` only: campaign job keys must stay a pure function of the
   (store, variant, seed, n, images) matrix cell. *)
let no_lazy_oracle_arg =
  let open Cmdliner in
  Arg.(value & flag
       & info [ "no-lazy-oracle" ]
           ~doc:"Build every rolled-back oracle eagerly (legacy behaviour) \
                 instead of deferring it to the first committed-oracle \
                 divergence.")

let no_memo_arg =
  let open Cmdliner in
  Arg.(value & flag
       & info [ "no-memo" ]
           ~doc:"Disable digest-keyed verdict memoization: replay every \
                 tested crash image even when its content digest matches an \
                 already-checked image at the same crash point.")

let no_batch_arg =
  let open Cmdliner in
  Arg.(value & flag
       & info [ "no-batch" ]
           ~doc:"Check each crash image with an independent replay instead \
                 of batching the images generated at one fence and \
                 inheriting verdicts across read-set-disjoint siblings.")

let sig_depth_arg =
  let open Cmdliner in
  Arg.(value & opt int W.Engine.default_cfg.sig_depth
       & info [ "sig-depth" ] ~docv:"K"
           ~doc:"Truncate the pruning path signature to the crashing \
                 operation's last $(docv) executed sites (0 = full path, \
                 the default). Coarser signatures merge more images into \
                 each equivalence class; divergence-driven expansion stays \
                 on as the safety net. Only affects non-exhaustive \
                 $(b,--prune) policies.")

let ckpt_stride_arg =
  let open Cmdliner in
  Arg.(value & opt int W.Engine.default_cfg.ckpt_stride
       & info [ "ckpt-stride" ] ~docv:"N"
           ~doc:"Snapshot the pool every $(docv) operations during record; \
                 rolled-back oracles resume from the nearest checkpoint \
                 instead of re-running from scratch. 0 disables \
                 checkpointing.")

(* Image-pruning policy (DESIGN §7). A cmdliner conv so bad values fail
   at argument parsing (exit 124-free: usage error, code 2-compatible). *)
let prune_conv =
  let open Cmdliner in
  Arg.conv
    ( (fun s ->
        match Prune.Policy.of_string s with
        | Ok p -> Ok p
        | Error e -> Error (`Msg e)),
      Prune.Policy.pp )

let prune_arg =
  let open Cmdliner in
  Arg.(value & opt (some prune_conv) None
       & info [ "prune" ] ~docv:"POLICY"
           ~doc:"Crash-image pruning policy: $(b,exhaustive) validates \
                 every eligible image, $(b,representative) validates one \
                 representative per execution-path equivalence class \
                 (expanding a class on any divergent verdict), \
                 $(b,sample:N) validates every N-th image (blind \
                 statistical fallback). Default: exhaustive, except \
                 $(b,--stream) runs of 100k+ operations, which default to \
                 sampling (\\u{00A7}7.5) scaled to the op count.")

(* Streaming-pipeline knobs (DESIGN \u{00A7}9). Run-only, like the other
   A/B switches: campaign job keys stay a pure function of the matrix
   cell. *)
let stream_arg =
  let open Cmdliner in
  Arg.(value & flag
       & info [ "stream" ]
           ~doc:"Use the bounded-memory streaming engine: ingest the \
                 workload into a windowed ring trace with online condition \
                 inference, then generate and validate crash images while \
                 a second deterministic pass executes, with a bounded \
                 checkpoint ring. Verdict-identical to the batch engine.")

let traffic_conv =
  let open Cmdliner in
  Arg.conv
    ( (fun s ->
        match W.Traffic.of_name s with
        | Some t -> Ok t
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown traffic preset %S (expected %s)" s
                  (String.concat ", " W.Traffic.names)))),
      fun ppf t -> Format.pp_print_string ppf t.W.Traffic.name )

let traffic_arg =
  let open Cmdliner in
  Arg.(value & opt (some traffic_conv) None
       & info [ "traffic" ] ~docv:"PRESET"
           ~doc:"Drive the store with YCSB-style generated traffic \
                 (zipfian hot keys, preload phase, bursts) instead of the \
                 coverage-biased workload generator; one of ycsb-a..f or \
                 mixed. $(b,-n) and $(b,--seed) still set the op count and \
                 seed.")

let window_arg =
  let open Cmdliner in
  Arg.(value & opt int W.Engine.default_cfg.stream_window
       & info [ "window" ] ~docv:"SEGS"
           ~doc:"Streaming live-window size, in trace segments (each 2^14 \
                 events); segments older than the window are recycled \
                 unless pinned by a dirty store or a spanning condition.")

let ckpt_ring_arg =
  let open Cmdliner in
  Arg.(value & opt int W.Engine.default_cfg.ckpt_ring
       & info [ "ckpt-ring" ] ~docv:"R"
           ~doc:"Streaming checkpoint-ring capacity: only the newest \
                 $(docv) pool snapshots are kept; oracles for older crash \
                 points replay from scratch.")

let expand_budget_arg =
  let open Cmdliner in
  Arg.(value & opt int W.Engine.default_cfg.expand_budget
       & info [ "expand-budget" ] ~docv:"N"
           ~doc:"Spot-check validations per equivalence class beyond the \
                 representative (powers-of-two member indices); a \
                 spot-check verdict diverging from the class prediction \
                 promotes the whole class back into the validation queue.")

(* Everything the campaign says to a human goes through this one sink. *)
let progress_sink = C.Orchestrator.stderr_progress

let lookup name =
  match R.find name with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown store %S; try `witcher list`\n" name;
    exit 2

let engine_cfg ?(lazy_oracle = W.Engine.default_cfg.lazy_oracle)
    ?(memo = W.Engine.default_cfg.memo)
    ?(batch = W.Engine.default_cfg.batch)
    ?(ckpt_stride = W.Engine.default_cfg.ckpt_stride)
    ?(prune = W.Engine.default_cfg.prune)
    ?(expand_budget = W.Engine.default_cfg.expand_budget)
    ?(sig_depth = W.Engine.default_cfg.sig_depth) ~ops ~seed
    ~max_images () =
  { W.Engine.default_cfg with
    workload = { W.Workload.default with n_ops = ops; seed };
    crash = { W.Crash_gen.default_cfg with max_images };
    lazy_oracle; memo; batch; ckpt_stride; prune; expand_budget; sig_depth }

let list_cmd json =
  if json then begin
    let entries =
      List.map
        (fun (e : R.entry) ->
           C.Jsonx.Obj
             [ ("name", C.Jsonx.Str e.name);
               ("group", C.Jsonx.Str (R.group_name e.group));
               ("lib", C.Jsonx.Str (match e.lib with `LL -> "LL" | `TX -> "TX"));
               ("construct", C.Jsonx.Str e.construct);
               ("paper_bug_ids",
                C.Jsonx.List (List.map (fun i -> C.Jsonx.Int i) e.paper_bug_ids)) ])
        R.all
    in
    print_endline (C.Jsonx.to_string (C.Jsonx.List entries))
  end
  else begin
    Printf.printf "%-16s %-13s %-4s %s\n" "name" "group" "lib" "construct";
    List.iter
      (fun (e : R.entry) ->
         Printf.printf "%-16s %-13s %-4s %s\n" e.name (R.group_name e.group)
           (match e.lib with `LL -> "LL" | `TX -> "TX")
           e.construct)
      R.all
  end;
  0

let run_cmd store fixed ops seed max_images no_lazy_oracle no_memo no_batch
    ckpt_stride prune expand_budget sig_depth stream traffic window ckpt_ring
    verbose json trace_out events =
  let e = lookup store in
  let instance = if fixed then e.fixed () else e.buggy () in
  (* unset --prune resolves by scale: exhaustive stays the default, but a
     100k+ op streaming run would drown in crash images, so it defaults
     to the paper's \u{00A7}7.5 sampling, thinned proportionally *)
  let prune =
    match prune with
    | Some p -> p
    | None ->
      if stream && ops >= 100_000 then Prune.Policy.Sample (max 1 (ops / 1000))
      else Prune.Policy.Exhaustive
  in
  let cfg =
    engine_cfg ~lazy_oracle:(not no_lazy_oracle) ~memo:(not no_memo)
      ~batch:(not no_batch) ~ckpt_stride ~prune ~expand_budget ~sig_depth
      ~ops ~seed ~max_images ()
  in
  let cfg =
    { cfg with
      W.Engine.traffic =
        Option.map (fun t -> { t with W.Traffic.n_ops = ops; seed }) traffic;
      stream_window = max 1 window;
      ckpt_ring = max 1 ckpt_ring;
      (* the replay fuel must cover a full workload suffix, or every
         long replay at 100k+ ops turns into a spurious "livelock"
         verdict; the default is kept at small scale (golden runs) *)
      fuel = max W.Engine.default_cfg.fuel (ops * 400);
      (* keep the batch engine's checkpoint count bounded at scale: the
         default 32-op stride would materialize thousands of pool
         snapshots on a 100k+ op batch run *)
      ckpt_stride =
        (if ckpt_stride = 0 then 0 else max ckpt_stride (ops / 64)) }
  in
  (* the event sink also powers the -v per-bug footer, so verbose runs
     record even without --events (to memory only) *)
  let ev_on = events <> None || verbose in
  if ev_on then Obs.Event.start ?path:events ();
  let r =
    if stream then W.Engine.run_stream ~cfg instance
    else W.Engine.run ~cfg instance
  in
  let ev_items = if ev_on then Obs.Event.stop () else [] in
  (* the run's observability state: [Engine.run] reset both at entry, so
     they cover exactly this pipeline execution *)
  let metrics = Obs.Metrics.snapshot Obs.Metrics.default in
  let spans = Obs.Span.events Obs.Span.default_buf in
  (match trace_out with
   | None -> ()
   | Some path ->
     Obs.Trace_export.write ~path
       [ { Obs.Trace_export.pid = Unix.getpid ();
           label = Printf.sprintf "witcher run %s" store; events = spans } ]);
  if json then begin
    (* a strict superset of the journal's result_json: same fields, plus
       the metrics snapshot and span buffer under "obs" *)
    let obs =
      C.Jsonx.Obj
        [ ("metrics", Obs.Metrics.to_json metrics);
          ("spans", Obs.Span.events_to_json spans) ]
    in
    let j =
      match C.Journal.result_json r with
      | C.Jsonx.Obj kvs -> C.Jsonx.Obj (kvs @ [ ("obs", obs) ])
      | j -> j
    in
    print_endline (C.Jsonx.to_string j)
  end
  else begin
    print_endline (W.Report.result_header ());
    print_endline (W.Report.result_row r);
    (match r.prune_policy with
     | Prune.Policy.Exhaustive -> ()
     | _ -> print_endline (W.Report.prune_line r));
    if r.stream_on then print_endline (W.Report.stream_line r);
    if verbose && r.batch_on then print_endline (W.Report.batch_line r);
    print_newline ();
    if r.bug_reports = [] then
      print_endline "No crash-consistency bugs detected."
    else begin
      Printf.printf "%d correctness root cause(s):\n" (List.length r.bug_reports);
      List.iteri
        (fun i rep ->
           Printf.printf "%2d. %s\n" (i + 1) (Fmt.str "%a" W.Cluster.pp_report rep))
        r.bug_reports
    end;
    if verbose then begin
      (* per-stage timing and work table: where the pipeline wall-clock
         went and what the replay/COW machinery actually did *)
      Printf.printf "\n%s\n" (W.Report.timing_line r);
      print_string (Obs.Metrics.render metrics);
      Printf.printf "\nAll %d clusters:\n" (List.length r.all_clusters);
      List.iter
        (fun rep -> Printf.printf "  %s\n" (Fmt.str "%a" W.Cluster.pp_report rep))
        r.all_clusters;
      (match C.Explain.bug_footer_lines ev_items with
       | [] -> ()
       | lines ->
         Printf.printf "\nBug forensics (see `witcher explain`):\n";
         List.iter (fun l -> Printf.printf "  %s\n" l) lines)
    end;
    print_newline ();
    print_string (W.Report.bug_list r)
  end;
  (* exit-code contract: campaigns and CI gate on this *)
  if r.bug_reports = [] then 0 else 1

let campaign_cmd jobs_n stores seeds fixed_too ops max_images prune
    expand_budget timeout out resume json heartbeat trace_out events =
  (* campaigns have no --stream, so an unset policy is plain exhaustive *)
  let prune = Option.value prune ~default:Prune.Policy.Exhaustive in
  let plan_cfg =
    { C.Planner.stores; seeds; fixed_too; n_ops = ops; max_images; prune;
      expand_budget }
  in
  match C.Planner.plan plan_cfg with
  | Error msg ->
    progress_sink (Printf.sprintf "campaign: %s" msg);
    2
  | Ok jobs ->
    let cfg =
      { C.Orchestrator.j = jobs_n; timeout; out_dir = out; resume;
        progress = progress_sink; heartbeat; trace_out; events }
    in
    progress_sink
      (Printf.sprintf "campaign: %d job(s), -j %d, journal %s"
         (List.length jobs) jobs_n
         (Filename.concat out "journal.jsonl"));
    let s = C.Orchestrator.run_matrix cfg ~jobs in
    progress_sink
      (Printf.sprintf "campaign: executed %d, skipped %d (journaled), %.1fs"
         s.executed s.skipped s.elapsed);
    (match s.trace_path with
     | Some p -> progress_sink (Printf.sprintf "campaign: trace written to %s" p)
     | None -> ());
    if json then
      print_endline
        (C.Jsonx.to_string
           (C.Aggregate.to_json ~elapsed:s.elapsed ~j:jobs_n s.aggregate))
    else
      print_string (C.Aggregate.to_text ~elapsed:s.elapsed ~j:jobs_n s.aggregate);
    if List.exists
         (fun (r : C.Journal.record) ->
            match r.status with
            | C.Journal.Job_failed _ | C.Journal.Job_timeout -> true
            | C.Journal.Job_ok -> false)
         s.records
    then 1
    else 0

(* `witcher explain`: pure post-hoc forensics — no store lookup, no
   re-execution; everything comes from the event stream / journal. *)
let explain_cmd path bug json =
  match C.Explain.load path with
  | Error msg ->
    Printf.eprintf "explain: %s\n" msg;
    2
  | Ok source ->
    let out_of_range =
      match (bug, source) with
      | Some k, C.Explain.Events runs ->
        k < 1 || k > List.length (C.Explain.bugs runs)
      | _ -> false
    in
    if json then
      print_endline (C.Jsonx.to_string (C.Explain.render_json ?bug source))
    else print_string (C.Explain.render_text ?bug source);
    if out_of_range then 2 else 0

let trace_cmd store ops seed head =
  let e = lookup store in
  let module S = (val e.buggy ()) in
  let wl = { W.Workload.default with n_ops = ops; seed } in
  let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
  let r = W.Driver.record (module S) (W.Workload.generate wl) in
  let loads, stores, flushes, fences = Nvm.Trace.stats r.trace in
  Printf.printf "trace: %d events (%d loads, %d stores, %d flushes, %d fences)\n"
    (Nvm.Trace.length r.trace) loads stores flushes fences;
  let n = min head (Nvm.Trace.length r.trace) in
  for i = 0 to n - 1 do
    Format.printf "%a@." Nvm.Trace.pp_event (Nvm.Trace.get r.trace i)
  done;
  0

let perf_cmd store ops seed =
  let e = lookup store in
  let module S = (val e.buggy ()) in
  let wl = { W.Workload.default with n_ops = ops; seed } in
  let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
  let r = W.Driver.record (module S) (W.Workload.generate wl) in
  let perf = W.Perf.detect r.trace in
  List.iter
    (fun (kind, c) ->
       Printf.printf "%s: %d bug site(s), %d occurrence(s)\n" kind
         (W.Perf.n_bugs c) (W.Perf.n_occurrences c);
       List.iter
         (fun (sid, n) -> Printf.printf "  %-48s x%d\n" sid n)
         (W.Perf.bug_sites c))
    [ "P-U (unpersisted)", perf.p_u;
      "P-EFL (extra flush)", perf.p_efl;
      "P-EFE (extra fence)", perf.p_efe;
      "P-EL (extra logging)", perf.p_el ];
  0

open Cmdliner

(* keep cmdliner's 123/124/125 conventions but replace its generic "0 on
   success" with the tool's contract *)
let non_ok_defaults =
  List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let run_exits =
  [ Cmd.Exit.info 0 ~doc:"no correctness root cause was found.";
    Cmd.Exit.info 1 ~doc:"at least one correctness root cause (C-O/C-A) was found.";
    Cmd.Exit.info 2 ~doc:"usage error: unknown store or bad flags." ]
  @ non_ok_defaults

let campaign_exits =
  [ Cmd.Exit.info 0 ~doc:"every job in the matrix completed.";
    Cmd.Exit.info 1 ~doc:"the sweep completed but some job failed or timed out.";
    Cmd.Exit.info 2 ~doc:"planning error: unknown store or empty matrix." ]
  @ non_ok_defaults

let run_man =
  [ `S Manpage.s_exit_status;
    `P "$(b,witcher run) exits 0 when the store shows no correctness \
        root cause, 1 when at least one C-O/C-A root cause is reported \
        (so CI pipelines and campaign scripts can gate on it), and 2 on \
        usage errors such as an unknown store name." ]

let list_t = Term.(const list_cmd $ json_arg)
let run_t =
  Term.(const run_cmd $ store_arg $ fixed_arg $ ops_arg $ seed_arg
        $ max_images_arg $ no_lazy_oracle_arg $ no_memo_arg $ no_batch_arg
        $ ckpt_stride_arg $ prune_arg $ expand_budget_arg $ sig_depth_arg
        $ stream_arg $ traffic_arg $ window_arg $ ckpt_ring_arg
        $ verbose_arg $ json_arg $ trace_out_arg $ events_arg)

let campaign_t =
  let j =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker processes to fork.")
  in
  let stores =
    Arg.(value & opt (some (list string)) None
         & info [ "stores" ] ~docv:"A,B,..."
             ~doc:"Comma-separated store subset (default: whole registry).")
  in
  let seeds =
    Arg.(value & opt (list int) [ 42 ]
         & info [ "seeds" ] ~docv:"S1,S2,..." ~doc:"Workload seeds to sweep.")
  in
  let fixed_too =
    Arg.(value & flag
         & info [ "fixed-too" ]
             ~doc:"Also run every store's repaired variant (Table 5 style).")
  in
  let timeout =
    Arg.(value & opt float 300.
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Per-job wall-clock budget; over-budget workers are killed \
                   and journaled as timeouts.")
  in
  let out =
    Arg.(value & opt string "campaign-out"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Output directory: journal.jsonl, report.txt, report.json.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Skip jobs whose key already has a terminal journal entry \
                   (timeouts are retried); without this flag the journal is \
                   restarted from scratch.")
  in
  let heartbeat =
    Arg.(value & opt (some float) None
         & info [ "heartbeat" ] ~docv:"SECS"
             ~doc:"Render a live status line every $(docv) seconds: jobs \
                   done/total, each worker's current job and elapsed time, \
                   and an ETA from the sequential-estimate metric.")
  in
  Term.(const campaign_cmd $ j $ stores $ seeds $ fixed_too $ ops_arg
        $ max_images_arg $ prune_arg $ expand_budget_arg $ timeout $ out
        $ resume $ json_arg $ heartbeat $ trace_out_arg $ events_arg)

let explain_t =
  let path =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"PATH"
             ~doc:"An --events file, a campaign output directory, or a \
                   journal.jsonl (degraded: no event data).")
  in
  let bug =
    Arg.(value & opt (some int) None
         & info [ "bug" ] ~docv:"K" ~doc:"Explain only bug number $(docv) \
                                          (1-based, as listed).")
  in
  Term.(const explain_cmd $ path $ bug $ json_arg)

let trace_t =
  let head =
    Arg.(value & opt int 60 & info [ "head" ] ~docv:"N" ~doc:"Events to print.")
  in
  Term.(const trace_cmd $ store_arg $ ops_arg $ seed_arg $ head)
let perf_t = Term.(const perf_cmd $ store_arg $ ops_arg $ seed_arg)

let cmds =
  [ Cmd.v (Cmd.info "list" ~doc:"List the registered NVM programs.") list_t;
    Cmd.v (Cmd.info "run" ~doc:"Run the full Witcher pipeline on a store."
             ~exits:run_exits ~man:run_man)
      run_t;
    Cmd.v
      (Cmd.info "campaign"
         ~doc:"Run the evaluation matrix (stores x variants x seeds) as a \
               parallel, resumable, fault-isolated sweep."
         ~exits:campaign_exits)
      campaign_t;
    Cmd.v
      (Cmd.info "explain"
         ~doc:"Reconstruct per-bug forensics (crash point, persistence \
               timeline, first divergence, prune provenance) from a \
               recorded event log — no re-execution."
         ~exits:
           ([ Cmd.Exit.info 0 ~doc:"forensics rendered (possibly degraded \
                                    to journal-only data).";
              Cmd.Exit.info 2 ~doc:"input unusable or bug selection out of \
                                    range." ]
            @ non_ok_defaults))
      explain_t;
    Cmd.v (Cmd.info "trace" ~doc:"Record and print an instrumented trace.") trace_t;
    Cmd.v (Cmd.info "perf" ~doc:"Run only the performance-bug detector.") perf_t ]

let () =
  let info =
    Cmd.info "witcher" ~version:"1.0.0"
      ~doc:"Systematic crash-consistency testing for (simulated) NVM key-value stores"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
