module W = Witcher
let () =
  let store = Stores.Fast_fair.fixed () in
  let module S = (val store) in
  let wl = W.Workload.no_scan { W.Workload.default with n_ops = 150 } in
  let wl = { wl with p_scan = 0.05; p_query = wl.p_query -. 0.05 } in
  ignore wl;
  let ops = W.Workload.generate { W.Workload.default with n_ops = 150 } in
  let r = W.Driver.record (module S) ops in
  for i = 440 to 500 do
    Format.printf "%a@." Nvm.Trace.pp_event (Nvm.Trace.get r.trace i)
  done
