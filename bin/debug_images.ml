(* Developer tool: run the pipeline on one store and dump full detail for
   every inconsistent crash image — crash op, violated condition, resumed
   outputs vs. both oracles. Usage: debug_images <store> <n_ops> [max]. *)

module W = Witcher

let () =
  let store_name = try Sys.argv.(1) with _ -> "fast-fair-fixed" in
  let n_ops = try int_of_string Sys.argv.(2) with _ -> 150 in
  let max_shown = try int_of_string Sys.argv.(3) with _ -> 5 in
  let store =
    let fixed = Filename.check_suffix store_name "-fixed" in
    let base =
      if fixed then String.sub store_name 0 (String.length store_name - 6)
      else store_name
    in
    match Stores.Registry.find base with
    | Some e -> if fixed then e.fixed () else e.buggy ()
    | None -> failwith "unknown store"
  in
  let module S = (val store) in
  let wl = { W.Workload.default with n_ops } in
  let wl = if S.supports_scan then wl else W.Workload.no_scan wl in
  let ops = W.Workload.generate wl in
  let recorded = W.Driver.record (module S) ops in
  let conds = W.Infer.infer recorded.trace in
  let checker =
    W.Equiv.create (module S) ~ops:recorded.ops ~committed:recorded.outputs
  in
  let shown = ref 0 in
  let on_image (image : W.Crash_gen.image) =
    (* resumption mutates the image; keep a pristine copy for the dump *)
    let pristine = Nvm.Pmem.copy image.img in
    (match W.Equiv.check checker ~img:image.img ~crash_op:image.crash_op with
     | W.Equiv.Consistent -> ()
     | W.Equiv.Inconsistent v ->
       incr shown;
       if !shown <= max_shown then begin
         let k = image.crash_op in
         Printf.printf "=== inconsistent image: crash_op=%d (%s) crash_tid=%d\n"
           k (if k = 0 then "create" else W.Op.desc recorded.ops.(k - 1))
           image.crash_tid;
         (match image.viol with
          | W.Crash_gen.Ordering o ->
            Printf.printf "  viol: %s watch=%s(t%d) req=%s(t%d)\n"
              (W.Infer.rule_name o.rule)
              (Nvm.Sid.to_string o.watch_sid) o.watch_tid
              (Nvm.Sid.to_string o.req_sid) o.req_tid
          | W.Crash_gen.Atomicity a ->
            Printf.printf "  viol: PA1 persisted=%s(t%d) lost=%s(t%d)\n"
              (Nvm.Sid.to_string a.persisted_sid) a.persisted_tid
              (Nvm.Sid.to_string a.lost_sid) a.lost_tid
          | W.Crash_gen.Unpersisted_epoch u ->
            Printf.printf "  viol: EPOCH fence=%s first_lost=%s\n"
              (Nvm.Sid.to_string u.fence_sid)
              (Nvm.Sid.to_string u.first_lost_sid));
         Printf.printf "  first_diff=op%d got=%s committed=%s\n" v.first_diff
           (W.Output.to_string v.got) (W.Output.to_string v.expect_committed);
         (* re-resume to print full suffix *)
         let got =
           W.Driver.resume (module S) ~image:pristine ~ops:recorded.ops
             ~from_op:k ~fuel:3_000_000
         in
         let n = Array.length recorded.ops in
         for i = 0 to min (n - k - 1) 200 do
           let idx = k + i in
           let c = recorded.outputs.(idx) in
           if not (W.Output.equal got.(i) c) then
             Printf.printf "    op%d %-24s got=%-20s committed=%s\n" (idx + 1)
               (W.Op.desc recorded.ops.(idx)) (W.Output.to_string got.(i))
               (W.Output.to_string c)
         done
       end);
    if !shown >= max_shown then `Stop else `Continue
  in
  let stats =
    W.Crash_gen.generate ~trace:recorded.trace ~conds
      ~pool_size:recorded.pool_size ~on_image ()
  in
  Printf.printf "done: generated=%d tested=%d inconsistent_shown=%d\n"
    stats.generated stats.tested !shown
